// dblocality reproduces the paper's headline result interactively: the
// db benchmark (SPECjvm98 _209_db analogue) runs once on the plain
// GenMS collector and once with HPM-guided object co-allocation, and
// the example reports the L1 miss reduction and speedup, plus the
// GenCopy comparison of Figure 6.
//
//	go run ./examples/dblocality
package main

import (
	"fmt"
	"log"

	"hpmvm/internal/bench"
	_ "hpmvm/internal/bench/workloads"
	"hpmvm/internal/core"
)

func main() {
	builder, ok := bench.Get("db")
	if !ok {
		log.Fatal("db workload not registered")
	}

	fmt.Println("running db on GenMS (baseline)...")
	base, _, err := bench.Run(builder, bench.RunConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("running db on GenMS + HPM-guided co-allocation...")
	co, sys, err := bench.Run(builder, bench.RunConfig{Coalloc: true, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("running db on GenCopy (copying comparator)...")
	gc, _, err := bench.Run(builder, bench.RunConfig{Collector: core.GenCopy, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Printf("%-22s %14s %14s %10s\n", "configuration", "cycles", "L1 misses", "GCs (m/M)")
	row := func(name string, r *bench.Result) {
		fmt.Printf("%-22s %14d %14d %6d/%d\n", name, r.Cycles, r.Cache.L1Misses, r.MinorGCs, r.MajorGCs)
	}
	row("GenMS baseline", base)
	row("GenMS + co-allocation", co)
	row("GenCopy", gc)

	fmt.Println()
	fmt.Printf("co-allocated pairs    : %d (internal fragmentation %.1f%%)\n",
		co.CoallocPairs, 100*co.Fragmentation)
	fmt.Printf("L1 miss reduction     : %.1f%%\n",
		100*(1-float64(co.Cache.L1Misses)/float64(base.Cache.L1Misses)))
	fmt.Printf("speedup vs GenMS      : %.1f%%\n",
		100*(1-float64(co.Cycles)/float64(base.Cycles)))
	fmt.Printf("speedup vs GenCopy    : %.1f%%\n",
		100*(1-float64(co.Cycles)/float64(gc.Cycles)))

	fmt.Println()
	fmt.Println("what the monitor saw:")
	fmt.Print(sys.Monitor.Report(4))
	fmt.Println("policy decisions:")
	for _, d := range sys.Policy.Decisions() {
		fmt.Printf("  %-24s %-9s pairs=%d\n", d.Field.QualifiedName(), d.Mode, d.Pairs)
	}
}
