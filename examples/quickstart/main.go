// Quickstart: build a small program against the VM's public API, run
// it on the simulated P4 with hardware performance monitoring enabled,
// and print what the monitor learned — which reference field causes
// the cache misses.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hpmvm/internal/bench"
	"hpmvm/internal/core"
	"hpmvm/internal/vm/bytecode"
	"hpmvm/internal/vm/classfile"
)

func main() {
	// 1. Define classes: an Item holds a reference to a payload array.
	u := classfile.NewUniverse()
	item := u.DefineClass("Item", nil)
	fPayload := u.AddField(item, "payload", classfile.KindRef)

	// 2. Write the program: allocate 8k items, then sweep their
	// payloads repeatedly — a pointer-chasing loop whose misses land
	// on the access path Item::payload -> int[].
	mainCl := u.DefineClass("Main", nil)
	entry := u.AddMethod(mainCl, "main", false, nil, classfile.KindVoid)
	b := bytecode.NewBuilder(u, entry)
	b.Local("items", classfile.KindRef)
	b.Local("it", classfile.KindRef)
	b.Local("i", classfile.KindInt)
	b.Local("round", classfile.KindInt)
	b.Local("sum", classfile.KindInt)
	b.Const(8000).NewArray(u.RefArray).Store("items")
	b.Label("mk")
	b.Load("i").Const(8000).If(bytecode.OpIfGE, "sweep")
	b.New(item).Store("it")
	b.Load("it").Const(32).NewArray(u.IntArray).PutField(fPayload)
	b.Load("items").Load("i").Load("it").AStore(classfile.KindRef)
	b.Inc("i", 1)
	b.Goto("mk")
	b.Label("sweep")
	b.Load("round").Const(60).If(bytecode.OpIfGE, "done")
	b.Const(0).Store("i")
	b.Label("walk")
	b.Load("i").Const(8000).If(bytecode.OpIfGE, "next")
	b.Load("sum").
		Load("items").Load("i").ALoad(classfile.KindRef).GetField(fPayload).Const(0).ALoad(classfile.KindInt).
		Add().Store("sum")
	b.Inc("i", 5)
	b.Goto("walk")
	b.Label("next")
	b.Inc("round", 1)
	b.Goto("sweep")
	b.Label("done")
	b.Load("sum").Result()
	b.Return()
	b.MustBuild()
	u.Layout()

	// 3. Wire the full platform: P4-like hierarchy, GenMS collector,
	// PEBS sampling of L1 misses at a 5000-event interval.
	sys := core.NewSystem(u, core.Options{
		HeapLimit:        16 << 20,
		Monitoring:       true,
		SamplingInterval: 5000,
	})
	if err := sys.Boot(bench.AllOptPlan(u, 2), nil); err != nil {
		log.Fatal(err)
	}
	if err := sys.Run(entry, 0); err != nil {
		log.Fatal(err)
	}

	// 4. Report.
	st := sys.Hier().Stats()
	fmt.Printf("program result : %v\n", sys.VM.Results())
	fmt.Printf("cycles         : %d (%d instructions, CPI %.2f)\n",
		sys.VM.Cycles(), sys.VM.CPU.Instret(),
		float64(sys.VM.Cycles())/float64(sys.VM.CPU.Instret()))
	fmt.Printf("L1 / L2 misses : %d / %d\n", st.L1Misses, st.L2Misses)
	minor, major := sys.GCStats()
	fmt.Printf("collections    : %d minor, %d major\n", minor, major)
	fmt.Println()
	fmt.Print(sys.Monitor.Report(5))
	fmt.Println("\nThe monitor has traced the raw PEBS samples back through the")
	fmt.Println("machine-code maps to the IR access path, charging the misses to")
	fmt.Println("Item::payload — exactly the feedback the co-allocating GC consumes.")
}
