// feedback reproduces the paper's Figure 8 scenario: db starts with a
// good co-allocation policy (String adjacent to its char[]); mid-run
// the GC is "manually instructed" to insert one cache line of padding
// between the pair — a deliberately poor placement. The monitoring
// loop observes that gapped pairs attract more misses per object than
// adjacent ones (or that the field's miss rate regresses) and reverts
// the decision; the miss rate returns to its old value.
//
//	go run ./examples/feedback
package main

import (
	"fmt"
	"log"
	"strings"

	"hpmvm/internal/bench"
	_ "hpmvm/internal/bench/workloads"
)

func main() {
	builder, ok := bench.Get("db")
	if !ok {
		log.Fatal("db workload not registered")
	}
	fmt.Println("running db with co-allocation; forcing a 128-byte gap at cycle 120M...")
	_, sys, err := bench.Run(builder, bench.RunConfig{
		Coalloc:    true,
		GapAtCycle: 120_000_000,
		Interval:   2500,
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\npolicy decision log:")
	for _, e := range sys.Policy.Events() {
		fmt.Printf("  %s\n", e)
	}

	// Render the String::value miss-rate series as a terminal plot.
	for _, fc := range sys.Monitor.HotFields() {
		if fc.Field.QualifiedName() != "String::value" {
			continue
		}
		fmt.Println("\nString::value miss rate over time (misses/Mcycle):")
		max := 1.0
		for _, s := range fc.RateSeries.Samples {
			if s.Value > max {
				max = s.Value
			}
		}
		for _, s := range fc.RateSeries.Samples {
			bar := int(40 * s.Value / max)
			fmt.Printf("  %12d | %-40s %6.0f\n", s.Time, strings.Repeat("#", bar), s.Value)
		}
	}
	fmt.Println("\nThe spike after the manual intervention and the recovery after the")
	fmt.Println("revert are the paper's Figure 8 shape: the runtime can tell that an")
	fmt.Println("optimization decision hurt, and undo it online.")
}
