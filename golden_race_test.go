//go:build race

package hpmvm_test

// goldenRaceSubset trims the golden-equivalence matrix under the race
// detector: race instrumentation slows the simulator an order of
// magnitude, so the -race lane pins a representative subset (the
// shortest workload plus an array-heavy and an allocation-heavy
// program) while the normal lane covers every registered workload.
var goldenRaceSubset = []string{"fop", "compress", "jess"}
