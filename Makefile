# CI entry points. `make ci` is the tier-1 gate plus the race check on
# the packages the parallel experiment engine touches.

GO ?= go

.PHONY: ci vet build test race bench experiments

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race check on the packages the parallel engine fans runs out of:
# the engine itself (and its determinism sweep), the workload
# builders it invokes concurrently, and the cache hot path every
# concurrent run hammers.
# Race instrumentation slows the workload suite well past go test's
# default 10m timeout, hence the explicit budget.
race:
	$(GO) test -race -timeout 60m ./internal/bench/... ./internal/hw/cache/...

# Cache hot-path microbenchmarks (BenchmarkHierarchyAccess*).
bench:
	$(GO) test -run '^$$' -bench BenchmarkHierarchy -benchtime=2s ./internal/hw/cache/

# Full paper regeneration with the perf record (see results/).
experiments:
	$(GO) run ./cmd/experiments -exp all -bench-json results/BENCH_experiments.json
