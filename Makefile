# CI entry points. `make ci` is the tier-1 gate plus the race check on
# the packages the parallel experiment engine touches.

GO ?= go

.PHONY: ci vet build test race bench bench-smoke profile experiments obs serve-smoke serve-bench-smoke serve-bench verify-sampling verify-opt perf-gate perf-baseline

ci: vet build test race verify-opt perf-gate bench-smoke serve-smoke serve-bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Sampled-simulation calibration sweep: on a 4-workload subset spanning
# the cache-behaviour extremes, each workload's calibrated region
# schedule (internal/bench/calibration.go) must keep the full-run cycle
# estimate within its documented bound of the cycle-exact simulation —
# 2% on the default schedule, 0.5% on the phase-structured jack
# workload's tighter table entry (DESIGN.md §12). The fig5 path test
# covers the heap-size sweep axis: sampled base and monitored-auto
# estimates at the sweep's extreme heap factors. Both tests run as part
# of `make test` (they live in the root package); this target is the
# focused, verbose entry point for re-calibrating after a change to the
# sampler, the schedule table or the cost model.
verify-sampling:
	$(GO) test -run 'TestSamplingCalibration|TestSamplingFig5Path' -v .

# Optimization-framework keystones (opt_test.go): the framework-managed
# co-allocation reproduces the recorded golden corpus bit-for-bit on
# every workload, an injected regressing decision is auto-reverted
# within one assessment window for all three managed kinds (coalloc,
# codelayout, swprefetch — the latter's polluting site set under the
# pressured geometry), and the prefetch-injection ablation never
# regresses the passive baseline while improving >= 3 workloads. All
# three tests also run under `make test`; this is the focused, verbose
# gate wired into `make ci`.
verify-opt:
	$(GO) test -run 'TestOptCoallocByteIdentical|TestOptRevertBadDecision|TestSwPrefetchAblation' -v .

# Race check on the packages the parallel engine fans runs out of:
# the engine itself (and its determinism sweep), the workload
# builders it invokes concurrently, the cache hot path every
# concurrent run hammers, the observability layer host-side
# consumers snapshot while producers emit, the hpmvmd serve layer
# (single-flight cache + bounded queue under 32 concurrent handler
# requests), and the core snapshot/restore keystone (byte-identical
# warm starts across collectors and policies).
# Race instrumentation slows the workload suite well past go test's
# default 10m timeout, hence the explicit budget. The root package
# contributes the golden-equivalence subset (fop/compress/jess), which
# pins the fast-path rewrite byte-for-byte under the race detector;
# internal/opt rides along because the manager's observer callbacks run
# inside every concurrently executing monitored run.
race:
	$(GO) test -race -timeout 60m . ./internal/bench/... ./internal/core/... ./internal/hw/cache/... ./internal/obs/... ./internal/opt/... ./internal/serve/... ./internal/api/... ./internal/client/... ./internal/stats/... ./cmd/perfstat/...

# Perf regression gate (cmd/perfstat): re-measure the simulator's
# throughput benchmark and compare against the checked-in baseline
# (results/BENCH_baseline.txt) with benchstat-style 95% CIs. The gate
# trips only on a statistically significant Mcycles/s drop beyond the
# threshold — overlapping CIs or sub-threshold deltas pass, so benign
# machine noise does not block CI. The second step proves the gate's
# teeth on the checked-in synthetic regression fixture: a run that
# somehow lost ~20% throughput MUST fail, so a silently broken
# comparator cannot pass CI. Refresh the baseline with `make
# perf-baseline` after an intentional perf change (on the reference
# machine — the baseline encodes its throughput).
perf-gate:
	$(GO) test -run '^$$' -bench 'BenchmarkSystemMcycles/compress' -benchtime=1x -count=5 . | tee /tmp/hpmvm-perfgate.txt
	$(GO) run ./cmd/perfstat -gate -threshold 5 results/BENCH_baseline.txt /tmp/hpmvm-perfgate.txt
	@! $(GO) run ./cmd/perfstat -gate cmd/perfstat/testdata/baseline.txt cmd/perfstat/testdata/regression.txt >/dev/null 2>&1 \
		|| { echo "perf-gate: comparator failed to flag the synthetic regression fixture"; exit 1; }
	@echo "perf-gate: synthetic regression fixture correctly rejected"

# Record the current machine's throughput as the perf-gate baseline.
perf-baseline:
	$(GO) test -run '^$$' -bench 'BenchmarkSystemMcycles/compress' -benchtime=1x -count=8 . | tee results/BENCH_baseline.txt

# End-to-end hpmvmd smoke test: boot the daemon, run the client-based
# protocol checks (scripts/servesmoke: cache byte-identity, warm-start
# dispositions, sampled estimates, v1+deprecated aliases, streaming,
# stable error codes), and verify clean SIGTERM drain.
serve-smoke:
	sh scripts/serve_smoke.sh

# Fleet smoke test: boot a 2-worker process fleet, re-run the protocol
# checks against the coordinator (byte-identity now spans worker
# processes), drive a short hpmvmbench burst with a minimum-RPS gate
# and the per-worker identity probe, and drain the whole process tree.
serve-bench-smoke:
	sh scripts/serve_bench_smoke.sh

# Full serve-layer load measurement: sweeps every traffic mix at
# several fleet sizes into results/BENCH_serve.json. Boot the target
# separately (hpmvmd -workers N) and label rows to match.
serve-bench:
	$(GO) run ./cmd/hpmvmbench -url http://127.0.0.1:8080 -mix all -out results/BENCH_serve.json

# Cache hot-path microbenchmarks (BenchmarkHierarchyAccess*).
bench:
	$(GO) test -run '^$$' -bench BenchmarkHierarchy -benchtime=2s ./internal/hw/cache/

# One-iteration compile-and-run of every hot-path microbenchmark:
# catches benchmarks that rot (build breaks, panics, bad metrics)
# without paying for a statistically meaningful measurement in CI.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkCPUStep|BenchmarkCPURunLoop' -benchtime=1x ./internal/hw/cpu/
	$(GO) test -run '^$$' -bench 'BenchmarkHierarchyAccess' -benchtime=1x ./internal/hw/cache/
	$(GO) test -run '^$$' -bench 'BenchmarkSystemMcycles/compress' -benchtime=1x .

# CPU and heap profiles of the fig2 hot loop (the simulator's
# steady-state inner loop). Inspect with `go tool pprof cpu.prof`; see
# DESIGN.md §11 for the profiling workflow this feeds.
profile:
	$(GO) run ./cmd/experiments -exp fig2 -workloads db -reps 1 -progress=false \
		-cpuprofile cpu.prof -memprofile mem.prof
	@echo "wrote cpu.prof and mem.prof — inspect with: $(GO) tool pprof cpu.prof"

# Full paper regeneration with the perf record (see results/).
experiments:
	$(GO) run ./cmd/experiments -exp all -bench-json results/BENCH_experiments.json

# Observability smoke test: unit tests for the obs package plus an
# instrumented end-to-end sweep writing the JSON exports to a scratch
# directory.
obs:
	$(GO) test ./internal/obs/
	$(GO) run ./cmd/experiments -exp none -workloads compress \
		-metrics-json /tmp/hpmvm-obs-metrics.json -trace /tmp/hpmvm-obs-trace.json
