# CI entry points. `make ci` is the tier-1 gate plus the race check on
# the packages the parallel experiment engine touches.

GO ?= go

.PHONY: ci vet build test race bench experiments obs serve-smoke

ci: vet build test race serve-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race check on the packages the parallel engine fans runs out of:
# the engine itself (and its determinism sweep), the workload
# builders it invokes concurrently, the cache hot path every
# concurrent run hammers, the observability layer host-side
# consumers snapshot while producers emit, the hpmvmd serve layer
# (single-flight cache + bounded queue under 32 concurrent handler
# requests), and the core snapshot/restore keystone (byte-identical
# warm starts across collectors and policies).
# Race instrumentation slows the workload suite well past go test's
# default 10m timeout, hence the explicit budget.
race:
	$(GO) test -race -timeout 60m ./internal/bench/... ./internal/core/... ./internal/hw/cache/... ./internal/obs/... ./internal/serve/...

# End-to-end hpmvmd smoke test: boot the daemon, issue the same run
# request twice, assert the replay is a byte-identical cache hit, and
# verify clean SIGTERM drain.
serve-smoke:
	sh scripts/serve_smoke.sh

# Cache hot-path microbenchmarks (BenchmarkHierarchyAccess*).
bench:
	$(GO) test -run '^$$' -bench BenchmarkHierarchy -benchtime=2s ./internal/hw/cache/

# Full paper regeneration with the perf record (see results/).
experiments:
	$(GO) run ./cmd/experiments -exp all -bench-json results/BENCH_experiments.json

# Observability smoke test: unit tests for the obs package plus an
# instrumented end-to-end sweep writing the JSON exports to a scratch
# directory.
obs:
	$(GO) test ./internal/obs/
	$(GO) run ./cmd/experiments -exp none -workloads compress \
		-metrics-json /tmp/hpmvm-obs-metrics.json -trace /tmp/hpmvm-obs-trace.json
