// Package snap defines the Checkpointable contract every stateful
// layer of the simulated system implements: a component serializes its
// mutable state into a versioned, deterministic binary blob
// (ComponentState) and can later restore itself from one. The contract
// is the substrate of core.System.Snapshot/Restore — checkpointing a
// whole simulation is the composition of its components' states.
//
// Design rules the contract imposes (DESIGN.md §10):
//
//   - Snapshot captures only *mutable* state. Configuration and wiring
//     (geometry, cost models, callbacks, observer hooks) are rebuilt by
//     constructing a fresh system from the same Options; a snapshot
//     restored under a different configuration is rejected at the
//     System level by a fingerprint check before any component sees it.
//   - Encoding is deterministic: map contents are serialized in sorted
//     key order, floats as IEEE-754 bit patterns, everything
//     little-endian and length-prefixed. Two snapshots of identical
//     simulator states are byte-identical.
//   - Every ComponentState carries the component name and a format
//     version; Restore fails (wrapping ErrDecode) on a name, version or
//     geometry mismatch rather than silently corrupting state.
//
// The package is dependency-free so every layer (hw, kernel, gc, vm,
// monitor, coalloc, obs) can import it without cycles.
package snap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ComponentState is one component's serialized mutable state.
type ComponentState struct {
	// Component names the producing component ("hw/cpu", "gc/genms", …).
	Component string
	// Version is the component's encoding format version; bumped when
	// the layout of Data changes incompatibly.
	Version uint32
	// Data is the deterministic binary encoding of the mutable state.
	Data []byte
}

// Checkpointable is implemented by every stateful layer of the
// simulated system. Snapshot must not perturb the component (no
// simulated cycles, no state changes); Restore overwrites the
// component's mutable state and fails without partial effects on a
// recognizably foreign or corrupt state.
type Checkpointable interface {
	Snapshot() ComponentState
	Restore(ComponentState) error
}

// ErrDecode is the sentinel wrapped by every snapshot decoding failure
// (unknown component, version skew, truncated or inconsistent data).
var ErrDecode = errors.New("snapshot decode error")

// Check validates a ComponentState header against the expected
// component name and version, wrapping ErrDecode on mismatch. Every
// Restore implementation calls it first.
func Check(st ComponentState, component string, version uint32) error {
	if st.Component != component {
		return fmt.Errorf("snap: %w: state for %q restored into %q", ErrDecode, st.Component, component)
	}
	if st.Version != version {
		return fmt.Errorf("snap: %w: %s version %d, want %d", ErrDecode, component, st.Version, version)
	}
	return nil
}

// Writer builds a deterministic little-endian binary encoding. The
// zero Writer is ready to use.
type Writer struct {
	buf []byte
}

// Bytes returns the encoded data.
func (w *Writer) Bytes() []byte { return w.buf }

// U64 appends one unsigned 64-bit word.
func (w *Writer) U64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// U32 appends one unsigned 32-bit word.
func (w *Writer) U32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}

// I64 appends one signed 64-bit word.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Bool appends one boolean as a single byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// F64 appends one float64 as its IEEE-754 bit pattern.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bytes8 appends a length-prefixed byte slice.
func (w *Writer) Bytes8(b []byte) {
	w.U64(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) { w.Bytes8([]byte(s)) }

// State appends a nested ComponentState (name, version, data).
func (w *Writer) State(st ComponentState) {
	w.String(st.Component)
	w.U32(st.Version)
	w.Bytes8(st.Data)
}

// Reader decodes data produced by Writer. Decoding errors are sticky:
// after the first failure every accessor returns a zero value and Err
// reports the failure, so decode sequences can run unchecked and
// validate once at the end.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over data.
func NewReader(data []byte) *Reader { return &Reader{buf: data} }

// Err returns the first decoding failure, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Close verifies the reader consumed its input exactly and had no
// decoding failure.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("snap: %w: %d trailing bytes", ErrDecode, len(r.buf)-r.off)
	}
	return nil
}

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("snap: %w: %s", ErrDecode, fmt.Sprintf(format, args...))
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.fail("truncated: need %d bytes at offset %d of %d", n, r.off, len(r.buf))
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U64 reads one unsigned 64-bit word.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// U32 reads one unsigned 32-bit word.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// I64 reads one signed 64-bit word.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Bool reads one boolean.
func (r *Reader) Bool() bool {
	b := r.take(1)
	if b == nil {
		return false
	}
	switch b[0] {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("invalid bool byte %d", b[0])
		return false
	}
}

// F64 reads one float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bytes8 reads a length-prefixed byte slice. The returned slice
// aliases the reader's buffer; copy it if it must outlive the input.
func (r *Reader) Bytes8() []byte {
	n := r.U64()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail("length prefix %d exceeds remaining %d bytes", n, len(r.buf)-r.off)
		return nil
	}
	return r.take(int(n))
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes8()) }

// State reads a nested ComponentState.
func (r *Reader) State() ComponentState {
	var st ComponentState
	st.Component = r.String()
	st.Version = r.U32()
	st.Data = append([]byte(nil), r.Bytes8()...)
	return st
}
