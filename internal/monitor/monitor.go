// Package monitor implements the paper's runtime monitoring
// infrastructure (§4): a collector "thread" that polls the perfmon
// kernel module for raw PEBS samples at an adaptive interval, maps
// each sample's program counter back to the method, bytecode
// instruction and IR instruction that caused it (via the machine-code
// maps), and maintains per-reference-field cache-miss counters and
// time series — the feedback the co-allocating garbage collector and
// the revert heuristic consume (§5.2–5.3).
package monitor

import (
	"fmt"
	"sort"

	"hpmvm/internal/gc/heap"
	"hpmvm/internal/hw/pebs"
	"hpmvm/internal/kernel/perfmon"
	"hpmvm/internal/obs"
	"hpmvm/internal/stats"
	"hpmvm/internal/vm/classfile"
	"hpmvm/internal/vm/compiler/opt"
	"hpmvm/internal/vm/mcmap"
	"hpmvm/internal/vm/runtime"
)

// Config controls the collector thread. The paper polls every
// 10–1000 ms and auto-targets 200 samples/second on runs lasting tens
// of seconds; simulated runs are ~100× shorter, so the defaults scale
// the polling and targeting constants by the same factor (documented
// in DESIGN.md) while keeping the hardware sampling intervals (25K,
// 50K, 100K events) identical to the paper's.
type Config struct {
	// PollMinCycles and PollMaxCycles bound the adaptive poll interval
	// of the collector thread (paper: 10 ms to 1000 ms).
	PollMinCycles uint64
	PollMaxCycles uint64

	// Auto enables adaptive control of the hardware sampling interval.
	Auto bool
	// AutoTargetPerMCycle is the target sample rate in samples per
	// million cycles (the paper's 200 samples/sec at 3 GHz, time-scaled).
	AutoTargetPerMCycle float64
	// AutoMinInterval and AutoMaxInterval clamp the adapted interval.
	AutoMinInterval uint64
	AutoMaxInterval uint64

	// JNICallCycles is charged per poll for crossing the native
	// boundary (the paper's pre-allocated-array JNI trick makes this a
	// single crossing per poll, §4.1).
	JNICallCycles uint64
	// DecodeCyclesPerSample is charged for mapping one raw sample to
	// method/bytecode/IR and updating counters.
	DecodeCyclesPerSample uint64
	// BatchCapacity is the size of the pre-allocated user-space sample
	// array (80 KB in the paper).
	BatchCapacity int

	// TrackFields, when non-empty, restricts time-series recording to
	// the named fields ("Class::field"); empty tracks every attributed
	// field.
	TrackFields []string
}

// DefaultConfig returns the scaled defaults.
func DefaultConfig() Config {
	return Config{
		PollMinCycles:         300_000,    // ~0.1 ms at 3 GHz
		PollMaxCycles:         10_000_000, // ~3.3 ms
		Auto:                  false,
		AutoTargetPerMCycle:   7,
		AutoMinInterval:       1_000,
		AutoMaxInterval:       10_000_000,
		JNICallCycles:         2_000,
		DecodeCyclesPerSample: 600,
		BatchCapacity:         80 * 1024 / pebs.SampleSize,
	}
}

// FieldCounter aggregates attributed events for one reference field.
type FieldCounter struct {
	Field *classfile.Field
	// Samples is the raw number of PEBS samples attributed to the
	// field; EstimatedMisses scales each sample by the sampling
	// interval in effect when it was taken.
	Samples         uint64
	EstimatedMisses uint64
	// Series records estimated misses per poll period (Figure 7a's
	// cumulative curve is built from it).
	Series stats.Series
	// RateSeries records the miss rate in estimated misses per
	// megacycle — periods have varying lengths (the poll interval is
	// adaptive), so rates are the comparable signal the co-allocation
	// policy and Figure 7b use.
	RateSeries stats.Series
	// Placement-variant attribution: samples whose data address fell
	// inside an adjacent or a gapped co-allocated cell (the A/B signal
	// the revert heuristic compares).
	AdjacentSamples uint64
	GappedSamples   uint64
	// periodSamples accumulates within the current poll period.
	periodSamples uint64
	periodWeight  uint64
	// phase-change detection state: the previous window's mean rate.
	prevWindowRate float64
}

// MethodCounter aggregates attributed events for one method body.
type MethodCounter struct {
	Method  *classfile.Method
	Samples uint64
	// ByBCI counts samples per bytecode index.
	ByBCI map[int32]uint64
	// ByIR counts samples per IR instruction ID (opt-compiled bodies).
	ByIR map[int32]uint64
}

// Stats summarizes monitor activity.
type Stats struct {
	Polls            uint64
	SamplesRead      uint64
	SamplesDecoded   uint64
	SamplesDropped   uint64 // PC not in any compiled method (VM/native)
	FieldsAttributed uint64 // samples charged to a reference field
	MonitorCycles    uint64 // cycles consumed by monitoring work

	// Per-space classification of the sampled data addresses: where in
	// the heap the misses actually land (nursery accesses are cheap
	// and transient; mature-space misses are what co-allocation
	// attacks).
	SamplesNursery  uint64
	SamplesMature   uint64
	SamplesLOS      uint64
	SamplesImmortal uint64
	SamplesOther    uint64 // stacks, dispatch tables, code
}

// Clock is the cycle counter the monitor schedules against and charges
// its own work to. A directly attached monitor uses the VM's CPU; a
// multiplexed sampling lane (bench) substitutes a per-lane virtual
// clock so many monitors can share one machine without charging each
// other's overhead.
type Clock interface {
	Cycles() uint64
	AddCycles(n uint64)
}

// Monitor is the collector thread. It implements runtime.Ticker; the
// VM's execution loop invokes Tick in "kernel" mode at Deadline.
type Monitor struct {
	vm     *runtime.VM
	module *perfmon.Module
	cfg    Config
	clock  Clock

	buf      []pebs.Sample // the pre-allocated user-space array
	deadline uint64
	pollGap  uint64

	fields  map[int]*FieldCounter
	methods map[int]*MethodCounter
	// pairsByMethod caches methodID -> (IR id -> field) from the opt
	// compiler's access-path analysis (the §5.2 "instructions of
	// interest" filter, built per compiled method).
	pairsByMethod map[int]map[int32]*classfile.Field

	observers []func(nowCycles uint64)
	sinks     []SampleFunc

	// phaseEvents records detected execution-phase changes (§5.3: "the
	// rate of events for each reference field is measured throughout
	// the execution and this allows detecting phase changes").
	phaseEvents []string

	lastAutoCycles uint64
	lastAutoEvents uint64

	st        Stats
	tracked   map[string]bool
	lastFlush uint64

	// obs, when non-nil, receives a poll event per Tick and a
	// phase-change event per detection (nil-gated).
	obs *obs.Observer

	// classify, when set, maps a sampled data address to its placement
	// variant (wired to the GenMS collector's ClassifyAddr).
	classify func(addr uint64) (coalloced, gapped bool)
}

// New builds a monitor over the VM and kernel module. Call Attach to
// start polling.
func New(vm *runtime.VM, module *perfmon.Module, cfg Config) *Monitor {
	m := &Monitor{
		vm:            vm,
		module:        module,
		cfg:           cfg,
		clock:         vm.CPU,
		buf:           make([]pebs.Sample, cfg.BatchCapacity),
		fields:        make(map[int]*FieldCounter),
		methods:       make(map[int]*MethodCounter),
		pairsByMethod: make(map[int]map[int32]*classfile.Field),
		pollGap:       cfg.PollMinCycles,
	}
	if len(cfg.TrackFields) > 0 {
		m.tracked = make(map[string]bool)
		for _, f := range cfg.TrackFields {
			m.tracked[f] = true
		}
	}
	vm.OnRecompile(func(methodID int) { delete(m.pairsByMethod, methodID) })
	return m
}

// SetClock replaces the cycle source the monitor polls against and
// charges into (default: the VM's CPU). Call before Attach or Arm.
func (m *Monitor) SetClock(c Clock) { m.clock = c }

// Arm initializes the poll deadline from the clock without registering
// with the VM's ticker loop — multiplexed sampling lanes schedule their
// own ticks through a translating wrapper.
func (m *Monitor) Arm() {
	m.deadline = m.clock.Cycles() + m.pollGap
}

// Attach registers the monitor with the VM's ticker loop.
func (m *Monitor) Attach() {
	m.Arm()
	m.vm.AddTicker(m)
}

// SetObserver attaches the observability layer: the monitor's counters
// are registered as sampled counters, each poll is traced and timed as
// a "monitor.poll" phase, and detected phase changes are traced.
// Passing nil detaches.
func (m *Monitor) SetObserver(o *obs.Observer) {
	m.obs = o
	if o == nil {
		return
	}
	o.RegisterSampled("monitor.polls", func() uint64 { return m.st.Polls })
	o.RegisterSampled("monitor.samples_read", func() uint64 { return m.st.SamplesRead })
	o.RegisterSampled("monitor.samples_decoded", func() uint64 { return m.st.SamplesDecoded })
	o.RegisterSampled("monitor.samples_dropped", func() uint64 { return m.st.SamplesDropped })
	o.RegisterSampled("monitor.fields_attributed", func() uint64 { return m.st.FieldsAttributed })
	o.RegisterSampled("monitor.cycles", func() uint64 { return m.st.MonitorCycles })
}

// SetClassifier installs the placement classifier used to attribute
// sampled misses to co-allocation placement variants.
func (m *Monitor) SetClassifier(fn func(addr uint64) (coalloced, gapped bool)) {
	m.classify = fn
}

// AddObserver registers a callback run after each poll has updated the
// counters (the co-allocation policy's feedback hook).
func (m *Monitor) AddObserver(fn func(nowCycles uint64)) {
	m.observers = append(m.observers, fn)
}

// SampleFunc receives one decoded sample: the faulting PC and data
// address, the method the PC was attributed to, and the hardware
// sampling interval in effect (each sample statistically represents
// that many events).
type SampleFunc func(pc, dataAddr uint64, methodID int, interval uint64)

// AddSink registers a per-sample consumer invoked during decode, after
// method attribution and before field attribution — the kind-agnostic
// routing seam optimizations that care about code placement (rather
// than reference fields) hang off. With no sinks registered, decode is
// unchanged.
func (m *Monitor) AddSink(fn SampleFunc) {
	m.sinks = append(m.sinks, fn)
}

// Deadline implements runtime.Ticker.
func (m *Monitor) Deadline() uint64 { return m.deadline }

// Flush performs one final poll outside the ticker schedule, draining
// any samples still buffered when the program ends (the collector
// thread's shutdown read).
func (m *Monitor) Flush() { m.Tick() }

// Tick implements runtime.Ticker: one poll of the collector thread.
func (m *Monitor) Tick() {
	c := m.clock
	startCycles := c.Cycles()
	m.st.Polls++

	// Cross into native code once per poll (pre-allocated array trick).
	c.AddCycles(m.cfg.JNICallCycles)
	n := m.module.ReadSamples(m.buf)
	m.st.SamplesRead += uint64(n)

	interval := m.module.Interval()
	for i := 0; i < n; i++ {
		m.decode(&m.buf[i], interval)
	}
	c.AddCycles(uint64(n) * m.cfg.DecodeCyclesPerSample)

	now := c.Cycles()
	m.flushPeriod(now)
	for _, fn := range m.observers {
		fn(now)
	}

	if m.cfg.Auto {
		m.adaptInterval(now)
	}
	m.adaptPollGap(n)
	m.st.MonitorCycles += c.Cycles() - startCycles
	m.deadline = c.Cycles() + m.pollGap
	if m.obs != nil {
		m.obs.Emit(obs.EvMonitorPoll, c.Cycles(), uint64(n), m.st.SamplesDecoded, m.st.SamplesDropped)
		m.obs.PhaseBegin("monitor.poll", startCycles)
		m.obs.PhaseEnd("monitor.poll", c.Cycles())
	}
}

// adaptPollGap sizes the next poll so the sample buffer cannot
// overflow: many samples -> poll sooner, few -> back off (§4.1: "the
// polling interval is adaptively set between 10ms and 1000ms").
func (m *Monitor) adaptPollGap(lastBatch int) {
	switch {
	case lastBatch > m.cfg.BatchCapacity/2:
		m.pollGap /= 2
	case lastBatch < m.cfg.BatchCapacity/8:
		m.pollGap *= 2
	}
	if m.pollGap < m.cfg.PollMinCycles {
		m.pollGap = m.cfg.PollMinCycles
	}
	if m.pollGap > m.cfg.PollMaxCycles {
		m.pollGap = m.cfg.PollMaxCycles
	}
}

// adaptInterval retargets the hardware sampling interval toward the
// configured samples-per-cycle rate (§6.3's fully autonomous mode).
func (m *Monitor) adaptInterval(now uint64) {
	ustats := m.module.UnitStats()
	dCycles := now - m.lastAutoCycles
	dEvents := ustats.EventsSeen - m.lastAutoEvents
	if dCycles < m.cfg.PollMinCycles {
		return
	}
	m.lastAutoCycles = now
	m.lastAutoEvents = ustats.EventsSeen

	wantSamples := m.cfg.AutoTargetPerMCycle * float64(dCycles) / 1e6
	if wantSamples <= 0 {
		return
	}
	iv := uint64(float64(dEvents) / wantSamples)
	if iv < m.cfg.AutoMinInterval {
		iv = m.cfg.AutoMinInterval
	}
	if iv > m.cfg.AutoMaxInterval {
		iv = m.cfg.AutoMaxInterval
	}
	m.module.SetInterval(iv)
}

// decode maps one raw sample to source constructs (§4.2).
func (m *Monitor) decode(s *pebs.Sample, interval uint64) {
	body, ok := m.vm.Table.Lookup(s.PC)
	if !ok {
		// Outside JIT-compiled code (VM internals, native library):
		// dropped immediately, as in the paper.
		m.st.SamplesDropped++
		return
	}
	m.st.SamplesDecoded++
	switch {
	case heap.InNursery(s.DataAddr):
		m.st.SamplesNursery++
	case heap.InMature(s.DataAddr):
		m.st.SamplesMature++
	case heap.InLOS(s.DataAddr):
		m.st.SamplesLOS++
	case heap.InImmortal(s.DataAddr):
		m.st.SamplesImmortal++
	default:
		m.st.SamplesOther++
	}

	mc := m.methods[body.Method.ID]
	if mc == nil {
		mc = &MethodCounter{Method: body.Method, ByBCI: make(map[int32]uint64), ByIR: make(map[int32]uint64)}
		m.methods[body.Method.ID] = mc
	}
	mc.Samples++
	if bci, ok := body.BytecodeAt(s.PC); ok {
		mc.ByBCI[bci]++
	}
	for _, fn := range m.sinks {
		fn(s.PC, s.DataAddr, body.Method.ID, interval)
	}
	if !body.Opt {
		return
	}
	irID, ok := body.IRAt(s.PC)
	if !ok {
		return
	}
	mc.ByIR[irID]++

	pairs := m.pairsFor(body)
	f, ok := pairs[irID]
	if !ok {
		return
	}
	fc := m.fields[f.ID]
	if fc == nil {
		fc = &FieldCounter{Field: f}
		fc.Series.Name = f.QualifiedName()
		fc.RateSeries.Name = f.QualifiedName() + ".rate"
		m.fields[f.ID] = fc
	}
	fc.Samples++
	fc.EstimatedMisses += interval
	fc.periodSamples++
	fc.periodWeight += interval
	if m.classify != nil {
		if co, gapped := m.classify(s.DataAddr); co {
			if gapped {
				fc.GappedSamples++
			} else {
				fc.AdjacentSamples++
			}
		}
	}
	m.st.FieldsAttributed++
}

// pairsFor lazily builds the IR-id -> field index for a method body
// from the opt compiler's access-path analysis.
func (m *Monitor) pairsFor(body *mcmap.MCMap) map[int32]*classfile.Field {
	id := body.Method.ID
	if p, ok := m.pairsByMethod[id]; ok {
		return p
	}
	p := make(map[int32]*classfile.Field)
	if info, ok := m.vm.OptInfo(id).(*opt.Result); ok && info != nil {
		for _, pair := range info.Pairs {
			p[int32(pair.S.Seq)] = pair.F
		}
	}
	m.pairsByMethod[id] = p
	return p
}

// flushPeriod closes the current measurement period on every tracked
// field counter, recording both the period's estimated misses and the
// length-normalized rate. Periods are half-open [start, end) over the
// cycle counter: a poll landing on the exact cycle the previous period
// closed at (elapsed == 0, possible only with zero-cost polls) leaves
// the period open rather than flushing a zero-length window — flushing
// would emit a bogus rate point and charge the period's samples to a
// window of length zero. Pinned by TestFlushPeriodBoundary.
func (m *Monitor) flushPeriod(now uint64) {
	elapsed := now - m.lastFlush
	if elapsed == 0 {
		return
	}
	m.lastFlush = now
	// Walk counters in field-ID order: detectPhaseChange appends to the
	// phase-event log, and map order would scramble same-poll entries.
	ids := make([]int, 0, len(m.fields))
	for id := range m.fields {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fc := m.fields[id]
		if m.tracked != nil && !m.tracked[fc.Field.QualifiedName()] {
			fc.periodSamples, fc.periodWeight = 0, 0
			continue
		}
		fc.Series.Add(now, float64(fc.periodWeight))
		fc.RateSeries.Add(now, float64(fc.periodWeight)*1e6/float64(elapsed))
		fc.periodSamples, fc.periodWeight = 0, 0
		m.detectPhaseChange(fc, now)
	}
}

// phaseWindow is the number of periods averaged on each side of the
// phase comparison, and phaseFactor the rate ratio that counts as a
// phase change.
const (
	phaseWindow = 4
	phaseFactor = 4.0
)

// detectPhaseChange compares the mean rate of the last window against
// the previous one and records a phase event on a large shift.
func (m *Monitor) detectPhaseChange(fc *FieldCounter, now uint64) {
	n := fc.RateSeries.Len()
	if n%phaseWindow != 0 || n < 2*phaseWindow {
		return
	}
	vals := fc.RateSeries.Values()
	cur := stats.Mean(vals[n-phaseWindow:])
	prev := stats.Mean(vals[n-2*phaseWindow : n-phaseWindow])
	if fc.prevWindowRate != 0 {
		prev = fc.prevWindowRate
	}
	fc.prevWindowRate = cur
	if prev <= 0 || cur <= 0 {
		return
	}
	ratio := cur / prev
	if ratio >= phaseFactor || ratio <= 1/phaseFactor {
		m.phaseEvents = append(m.phaseEvents,
			fmt.Sprintf("[cycle %d] phase change on %s: %.0f -> %.0f misses/Mcycle",
				now, fc.Field.QualifiedName(), prev, cur))
		if m.obs != nil {
			m.obs.Emit(obs.EvPhaseChange, now, uint64(fc.Field.ID), 0, 0)
		}
	}
}

// PhaseEvents returns the detected phase changes.
func (m *Monitor) PhaseEvents() []string { return m.phaseEvents }

// Field returns the counter for a field, or nil.
func (m *Monitor) Field(f *classfile.Field) *FieldCounter { return m.fields[f.ID] }

// FieldMisses returns the estimated misses charged to a field.
func (m *Monitor) FieldMisses(f *classfile.Field) uint64 {
	if fc := m.fields[f.ID]; fc != nil {
		return fc.EstimatedMisses
	}
	return 0
}

// FieldSamples returns the raw sample count charged to a field.
func (m *Monitor) FieldSamples(f *classfile.Field) uint64 {
	if fc := m.fields[f.ID]; fc != nil {
		return fc.Samples
	}
	return 0
}

// HotFields returns all attributed fields sorted by estimated misses,
// hottest first — the per-class ranking §5.4's GC consults.
func (m *Monitor) HotFields() []*FieldCounter {
	out := make([]*FieldCounter, 0, len(m.fields))
	for _, fc := range m.fields {
		out = append(out, fc)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].EstimatedMisses != out[j].EstimatedMisses {
			return out[i].EstimatedMisses > out[j].EstimatedMisses
		}
		return out[i].Field.ID < out[j].Field.ID
	})
	return out
}

// HotMethods returns method counters sorted by samples, hottest first.
func (m *Monitor) HotMethods() []*MethodCounter {
	out := make([]*MethodCounter, 0, len(m.methods))
	for _, mc := range m.methods {
		out = append(out, mc)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Samples != out[j].Samples {
			return out[i].Samples > out[j].Samples
		}
		return out[i].Method.ID < out[j].Method.ID
	})
	return out
}

// Stats returns a snapshot of monitor activity.
func (m *Monitor) Stats() Stats { return m.st }

// Report renders a small human-readable summary (examples use it).
// topN bounds the hot-field listing; values below zero are treated as
// zero (no listing) rather than slicing with a negative bound.
func (m *Monitor) Report(topN int) string {
	out := fmt.Sprintf("monitor: %d polls, %d samples decoded (%d dropped)\n",
		m.st.Polls, m.st.SamplesDecoded, m.st.SamplesDropped)
	if m.st.SamplesDecoded > 0 {
		out += fmt.Sprintf("  by space: %d nursery, %d mature, %d LOS, %d immortal, %d other\n",
			m.st.SamplesNursery, m.st.SamplesMature, m.st.SamplesLOS,
			m.st.SamplesImmortal, m.st.SamplesOther)
	}
	if topN < 0 {
		topN = 0
	}
	hf := m.HotFields()
	if len(hf) > topN {
		hf = hf[:topN]
	}
	for i, fc := range hf {
		out += fmt.Sprintf("  #%d %-28s %8d samples  ~%d misses\n",
			i+1, fc.Field.QualifiedName(), fc.Samples, fc.EstimatedMisses)
	}
	return out
}
