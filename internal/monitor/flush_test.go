package monitor

import (
	"math"
	"testing"

	"hpmvm/internal/vm/classfile"
)

// poll is one scripted flushPeriod invocation: the cycle counter at
// poll time and the sample weight attributed since the previous poll.
type poll struct {
	now    uint64
	weight uint64
}

// point is one expected Series/RateSeries entry.
type point struct {
	at     uint64
	misses float64
	rate   float64
}

// TestFlushPeriodBoundary pins the measurement-period convention:
// periods are half-open [start, end) over the cycle counter, so a poll
// landing on the exact cycle the previous period closed at (possible
// only with zero-cost polls) leaves the period open instead of
// flushing a zero-length window. The regression it guards: flushing at
// elapsed == 0 divided the period weight by zero — an infinite rate
// point that poisoned the rate series the co-allocation policy and the
// phase detector read — and silently discarded the weight accumulated
// since the boundary poll.
func TestFlushPeriodBoundary(t *testing.T) {
	cases := []struct {
		name      string
		polls     []poll
		want      []point
		lastFlush uint64
	}{
		{
			name:      "distinct polls close distinct periods",
			polls:     []poll{{100, 5}, {300, 8}},
			want:      []point{{100, 5, 5e6 / 100}, {300, 8, 8e6 / 200}},
			lastFlush: 300,
		},
		{
			name: "boundary poll leaves the period open",
			// The second poll lands exactly on the first period's close;
			// its weight must survive into the period closed at 150.
			polls:     []poll{{100, 5}, {100, 3}, {150, 2}},
			want:      []point{{100, 5, 5e6 / 100}, {150, 5, 5e6 / 50}},
			lastFlush: 150,
		},
		{
			name: "repeated boundary polls accumulate one period",
			polls: []poll{
				{100, 1}, {100, 1}, {100, 1}, {100, 1}, {200, 1},
			},
			want:      []point{{100, 1, 1e6 / 100}, {200, 4, 4e6 / 100}},
			lastFlush: 200,
		},
		{
			name: "poll at cycle zero never flushes",
			// The very first period starts at cycle 0; a poll still at 0
			// has nothing to close.
			polls:     []poll{{0, 4}, {80, 0}},
			want:      []point{{80, 4, 4e6 / 80}},
			lastFlush: 80,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			u := classfile.NewUniverse()
			cl := u.DefineClass("C", nil)
			f := u.AddField(cl, "f", classfile.KindRef)
			u.Layout()

			fc := &FieldCounter{Field: f}
			m := &Monitor{fields: map[int]*FieldCounter{f.ID: fc}}
			for _, p := range tc.polls {
				fc.periodSamples += p.weight
				fc.periodWeight += p.weight
				m.flushPeriod(p.now)
			}

			if m.lastFlush != tc.lastFlush {
				t.Errorf("lastFlush = %d, want %d", m.lastFlush, tc.lastFlush)
			}
			if got := fc.Series.Len(); got != len(tc.want) {
				t.Fatalf("series has %d points, want %d (%v)", got, len(tc.want), fc.Series.Samples)
			}
			if rl := fc.RateSeries.Len(); rl != fc.Series.Len() {
				t.Fatalf("rate series has %d points, misses series %d", rl, fc.Series.Len())
			}
			for i, w := range tc.want {
				s, r := fc.Series.Samples[i], fc.RateSeries.Samples[i]
				if s.Time != w.at || r.Time != w.at {
					t.Errorf("point %d at cycles %d/%d, want %d", i, s.Time, r.Time, w.at)
				}
				if s.Value != w.misses {
					t.Errorf("point %d misses = %v, want %v", i, s.Value, w.misses)
				}
				if math.Abs(r.Value-w.rate) > 1e-9 || math.IsInf(r.Value, 0) || math.IsNaN(r.Value) {
					t.Errorf("point %d rate = %v, want %v", i, r.Value, w.rate)
				}
			}
		})
	}
}
