package monitor

import (
	"fmt"
	"sort"

	"hpmvm/internal/snap"
	"hpmvm/internal/stats"
	"hpmvm/internal/vm/classfile"
)

// Snapshot/Restore implement snap.Checkpointable for the collector
// thread: the poll schedule, the per-field and per-method counter
// tables (with their time series), the phase-event log, the adaptive
// controller state and the activity counters. Field and method
// pointers are serialized as universe IDs and re-resolved on restore;
// the pairsByMethod cache is dropped and rebuilt lazily (its contents
// are a deterministic function of the compiled code).

const (
	snapComponent = "monitor"
	snapVersion   = 1
)

func encodeSeries(w *snap.Writer, s *stats.Series) {
	w.U64(uint64(len(s.Samples)))
	for _, sm := range s.Samples {
		w.U64(sm.Time)
		w.F64(sm.Value)
	}
}

func decodeSeries(r *snap.Reader, s *stats.Series) {
	n := r.U64()
	s.Samples = make([]stats.Sample, 0, n)
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		t := r.U64()
		v := r.F64()
		s.Samples = append(s.Samples, stats.Sample{Time: t, Value: v})
	}
}

func encodeI32MapU64(w *snap.Writer, m map[int32]uint64) {
	keys := make([]int32, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w.U64(uint64(len(keys)))
	for _, k := range keys {
		w.I64(int64(k))
		w.U64(m[k])
	}
}

func decodeI32MapU64(r *snap.Reader) map[int32]uint64 {
	n := r.U64()
	m := make(map[int32]uint64, n)
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		k := int32(r.I64())
		m[k] = r.U64()
	}
	return m
}

// Snapshot serializes the monitor's mutable state.
func (m *Monitor) Snapshot() snap.ComponentState {
	var w snap.Writer
	w.U64(m.deadline)
	w.U64(m.pollGap)

	fieldIDs := make([]int, 0, len(m.fields))
	for id := range m.fields {
		fieldIDs = append(fieldIDs, id)
	}
	sort.Ints(fieldIDs)
	w.U64(uint64(len(fieldIDs)))
	for _, id := range fieldIDs {
		fc := m.fields[id]
		w.I64(int64(id))
		w.U64(fc.Samples)
		w.U64(fc.EstimatedMisses)
		encodeSeries(&w, &fc.Series)
		encodeSeries(&w, &fc.RateSeries)
		w.U64(fc.AdjacentSamples)
		w.U64(fc.GappedSamples)
		w.U64(fc.periodSamples)
		w.U64(fc.periodWeight)
		w.F64(fc.prevWindowRate)
	}

	methodIDs := make([]int, 0, len(m.methods))
	for id := range m.methods {
		methodIDs = append(methodIDs, id)
	}
	sort.Ints(methodIDs)
	w.U64(uint64(len(methodIDs)))
	for _, id := range methodIDs {
		mc := m.methods[id]
		w.I64(int64(id))
		w.U64(mc.Samples)
		encodeI32MapU64(&w, mc.ByBCI)
		encodeI32MapU64(&w, mc.ByIR)
	}

	w.U64(uint64(len(m.phaseEvents)))
	for _, e := range m.phaseEvents {
		w.String(e)
	}
	w.U64(m.lastAutoCycles)
	w.U64(m.lastAutoEvents)

	st := m.st
	w.U64(st.Polls)
	w.U64(st.SamplesRead)
	w.U64(st.SamplesDecoded)
	w.U64(st.SamplesDropped)
	w.U64(st.FieldsAttributed)
	w.U64(st.MonitorCycles)
	w.U64(st.SamplesNursery)
	w.U64(st.SamplesMature)
	w.U64(st.SamplesLOS)
	w.U64(st.SamplesImmortal)
	w.U64(st.SamplesOther)
	w.U64(m.lastFlush)
	return snap.ComponentState{Component: snapComponent, Version: snapVersion, Data: w.Bytes()}
}

// Restore overwrites the monitor's mutable state. Field and method IDs
// must resolve in the VM's universe (they do whenever the restored
// system was booted from the same workload). Pair with Reattach on a
// restored system — Attach would reset the poll deadline.
func (m *Monitor) Restore(st snap.ComponentState) error {
	if err := snap.Check(st, snapComponent, snapVersion); err != nil {
		return err
	}
	u := m.vm.U
	r := snap.NewReader(st.Data)
	deadline := r.U64()
	pollGap := r.U64()

	nFields := r.U64()
	fields := make(map[int]*FieldCounter, nFields)
	for i := uint64(0); i < nFields && r.Err() == nil; i++ {
		id := int(r.I64())
		fc := &FieldCounter{}
		fc.Samples = r.U64()
		fc.EstimatedMisses = r.U64()
		decodeSeries(r, &fc.Series)
		decodeSeries(r, &fc.RateSeries)
		fc.AdjacentSamples = r.U64()
		fc.GappedSamples = r.U64()
		fc.periodSamples = r.U64()
		fc.periodWeight = r.U64()
		fc.prevWindowRate = r.F64()
		if r.Err() != nil {
			break
		}
		if id < 0 || id >= len(u.Fields()) {
			return fmt.Errorf("monitor: %w: field id %d not in universe", snap.ErrDecode, id)
		}
		fc.Field = u.Field(id)
		fc.Series.Name = fc.Field.QualifiedName()
		fc.RateSeries.Name = fc.Field.QualifiedName() + ".rate"
		fields[id] = fc
	}

	nMethods := r.U64()
	methods := make(map[int]*MethodCounter, nMethods)
	for i := uint64(0); i < nMethods && r.Err() == nil; i++ {
		id := int(r.I64())
		mc := &MethodCounter{}
		mc.Samples = r.U64()
		mc.ByBCI = decodeI32MapU64(r)
		mc.ByIR = decodeI32MapU64(r)
		if r.Err() != nil {
			break
		}
		if id < 0 || id >= len(u.Methods()) {
			return fmt.Errorf("monitor: %w: method id %d not in universe", snap.ErrDecode, id)
		}
		mc.Method = u.Method(id)
		methods[id] = mc
	}

	nPhase := r.U64()
	phaseEvents := make([]string, 0, nPhase)
	for i := uint64(0); i < nPhase && r.Err() == nil; i++ {
		phaseEvents = append(phaseEvents, r.String())
	}
	lastAutoCycles := r.U64()
	lastAutoEvents := r.U64()

	var mst Stats
	mst.Polls = r.U64()
	mst.SamplesRead = r.U64()
	mst.SamplesDecoded = r.U64()
	mst.SamplesDropped = r.U64()
	mst.FieldsAttributed = r.U64()
	mst.MonitorCycles = r.U64()
	mst.SamplesNursery = r.U64()
	mst.SamplesMature = r.U64()
	mst.SamplesLOS = r.U64()
	mst.SamplesImmortal = r.U64()
	mst.SamplesOther = r.U64()
	lastFlush := r.U64()
	if err := r.Close(); err != nil {
		return err
	}

	m.deadline = deadline
	m.pollGap = pollGap
	m.fields = fields
	m.methods = methods
	m.pairsByMethod = make(map[int]map[int32]*classfile.Field)
	m.phaseEvents = phaseEvents
	m.lastAutoCycles = lastAutoCycles
	m.lastAutoEvents = lastAutoEvents
	m.st = mst
	m.lastFlush = lastFlush
	return nil
}

// Reattach registers the monitor with the VM's ticker loop without
// resetting the restored poll deadline (Attach computes a fresh one).
func (m *Monitor) Reattach() {
	m.vm.AddTicker(m)
}

// Universe exposes the VM's class universe so policies layered on the
// monitor (coalloc) can re-resolve field IDs during their own Restore.
func (m *Monitor) Universe() *classfile.Universe { return m.vm.U }
