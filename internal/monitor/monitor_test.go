package monitor_test

import (
	"strings"
	"testing"

	"hpmvm/internal/core"
	"hpmvm/internal/hw/cache"
	"hpmvm/internal/monitor"
	"hpmvm/internal/vm/bytecode"
	"hpmvm/internal/vm/classfile"
	"hpmvm/internal/vm/runtime"
)

const (
	kInt  = classfile.KindInt
	kRef  = classfile.KindRef
	kVoid = classfile.KindVoid
)

// chaseProgram builds a pointer-chasing program whose misses
// concentrate on one access path: node.payload[i] with payload loaded
// through the reference field Node::payload — so samples should be
// attributed to Node::payload.
func chaseProgram(u *classfile.Universe) (*classfile.Method, *classfile.Field) {
	node := u.DefineClass("Node", nil)
	fpay := u.AddField(node, "payload", kRef)
	cl := u.DefineClass("Main", nil)
	main := u.AddMethod(cl, "main", false, nil, kVoid)
	b := bytecode.NewBuilder(u, main)
	b.Local("nodes", kRef)
	b.Local("i", kInt)
	b.Local("j", kInt)
	b.Local("n", kRef)
	b.Local("sum", kInt)
	// 6000 nodes, each with a 48-int payload: ~2.6 MB, far over L2.
	b.Const(6000).NewArray(u.RefArray).Store("nodes")
	b.Label("mk")
	b.Load("i").Const(6000).If(bytecode.OpIfGE, "scan")
	b.New(node).Store("n")
	b.Load("n").Const(48).NewArray(u.IntArray).PutField(fpay)
	b.Load("nodes").Load("i").Load("n").AStore(kRef)
	b.Inc("i", 1)
	b.Goto("mk")
	// Strided scans: node.payload[0] misses on every visit.
	b.Label("scan")
	b.Const(0).Store("j")
	b.Label("rounds")
	b.Load("j").Const(80).If(bytecode.OpIfGE, "done")
	b.Const(0).Store("i")
	b.Label("walk")
	b.Load("i").Const(6000).If(bytecode.OpIfGE, "jnext")
	b.Load("sum").
		Load("nodes").Load("i").ALoad(kRef).GetField(fpay).Const(0).ALoad(kInt).
		Add().Store("sum")
	b.Inc("i", 7) // stride to defeat the prefetcher
	b.Goto("walk")
	b.Label("jnext")
	b.Inc("j", 1)
	b.Goto("rounds")
	b.Label("done")
	b.Load("sum").Result()
	b.Return()
	b.MustBuild()
	return main, fpay
}

func runChase(t *testing.T, opts core.Options) (*core.System, *classfile.Field) {
	t.Helper()
	u := classfile.NewUniverse()
	main, fpay := chaseProgram(u)
	u.Layout()
	sys := core.NewSystem(u, opts)
	plan := make(runtime.CompilePlan)
	for _, m := range u.Methods() {
		if m.Code != nil {
			plan[m.ID] = 2
		}
	}
	if err := sys.Boot(plan, nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(main, 0); err != nil {
		t.Fatal(err)
	}
	return sys, fpay
}

func TestAttributionToAccessPath(t *testing.T) {
	sys, fpay := runChase(t, core.Options{
		HeapLimit:        16 << 20,
		Monitoring:       true,
		SamplingInterval: 2000,
	})
	st := sys.Monitor.Stats()
	if st.SamplesDecoded == 0 {
		t.Fatal("no samples decoded")
	}
	if got := sys.Monitor.FieldSamples(fpay); got == 0 {
		t.Fatalf("no samples attributed to %s (stats %+v)", fpay.QualifiedName(), st)
	}
	// Node::payload must be the hottest field by a wide margin.
	hot := sys.Monitor.HotFields()
	if len(hot) == 0 || hot[0].Field != fpay {
		t.Fatalf("hottest field = %v", hot)
	}
	if hot[0].EstimatedMisses == 0 || hot[0].Samples == 0 {
		t.Error("hot field counters empty")
	}
	// Estimated misses must be in the ballpark of samples * interval.
	if hot[0].EstimatedMisses != hot[0].Samples*2000 {
		t.Errorf("estimate %d != samples %d * interval", hot[0].EstimatedMisses, hot[0].Samples)
	}
}

func TestHotMethodsRanking(t *testing.T) {
	sys, _ := runChase(t, core.Options{
		HeapLimit:        16 << 20,
		Monitoring:       true,
		SamplingInterval: 2000,
	})
	hm := sys.Monitor.HotMethods()
	if len(hm) == 0 {
		t.Fatal("no method counters")
	}
	if hm[0].Method.Name != "main" {
		t.Errorf("hottest method = %s", hm[0].Method.QualifiedName())
	}
	if len(hm[0].ByBCI) == 0 || len(hm[0].ByIR) == 0 {
		t.Error("per-bytecode / per-IR counters empty")
	}
}

func TestAutoIntervalAdapts(t *testing.T) {
	sys, _ := runChase(t, core.Options{
		HeapLimit:  16 << 20,
		Monitoring: true,
		// SamplingInterval 0 selects auto mode.
	})
	// Auto mode must have retargeted the interval away from the
	// default configuration.
	if iv := sys.Module.Interval(); iv == 100_000 {
		t.Errorf("interval never adapted: %d", iv)
	}
	st := sys.Monitor.Stats()
	if st.Polls < 3 {
		t.Errorf("polls = %d", st.Polls)
	}
}

func TestTimeSeriesRecorded(t *testing.T) {
	sys, fpay := runChase(t, core.Options{
		HeapLimit:        16 << 20,
		Monitoring:       true,
		SamplingInterval: 2000,
	})
	fc := sys.Monitor.Field(fpay)
	if fc == nil {
		t.Fatal("no field counter")
	}
	if fc.Series.Len() < 2 || fc.RateSeries.Len() != fc.Series.Len() {
		t.Fatalf("series lengths: %d raw, %d rate", fc.Series.Len(), fc.RateSeries.Len())
	}
	// The cumulative series must be monotonically non-decreasing.
	prev := 0.0
	for _, s := range fc.Series.Cumulative().Samples {
		if s.Value < prev {
			t.Fatal("cumulative series decreased")
		}
		prev = s.Value
	}
}

func TestTrackFieldsFilter(t *testing.T) {
	u := classfile.NewUniverse()
	main, fpay := chaseProgram(u)
	u.Layout()
	sys := core.NewSystem(u, core.Options{
		HeapLimit:        16 << 20,
		Monitoring:       true,
		SamplingInterval: 2000,
		TrackFields:      []string{"Other::field"},
	})
	plan := make(runtime.CompilePlan)
	for _, m := range u.Methods() {
		if m.Code != nil {
			plan[m.ID] = 2
		}
	}
	if err := sys.Boot(plan, nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(main, 0); err != nil {
		t.Fatal(err)
	}
	fc := sys.Monitor.Field(fpay)
	if fc == nil {
		t.Skip("no samples attributed in this configuration")
	}
	if fc.Series.Len() != 0 {
		t.Error("untracked field recorded a series")
	}
	if fc.Samples == 0 {
		t.Error("counters must still accumulate for untracked fields")
	}
}

func TestMonitoringOverheadCharged(t *testing.T) {
	base, _ := runChase(t, core.Options{HeapLimit: 16 << 20})
	mon, _ := runChase(t, core.Options{HeapLimit: 16 << 20, Monitoring: true, SamplingInterval: 1000})
	if mon.VM.Cycles() <= base.VM.Cycles() {
		t.Errorf("monitoring run not slower: %d vs %d", mon.VM.Cycles(), base.VM.Cycles())
	}
	if mon.Monitor.Stats().MonitorCycles == 0 {
		t.Error("monitor cycles not accounted")
	}
}

func TestSpaceClassification(t *testing.T) {
	sys, _ := runChase(t, core.Options{
		HeapLimit:        16 << 20,
		Monitoring:       true,
		SamplingInterval: 2000,
	})
	st := sys.Monitor.Stats()
	total := st.SamplesNursery + st.SamplesMature + st.SamplesLOS + st.SamplesImmortal + st.SamplesOther
	if total != st.SamplesDecoded {
		t.Fatalf("space classification incomplete: %d of %d", total, st.SamplesDecoded)
	}
	// The chase program's misses are dominated by promoted (mature)
	// payload arrays plus the LOS node table.
	if st.SamplesMature == 0 {
		t.Errorf("no mature-space samples: %+v", st)
	}
}

func TestPhaseChangeDetection(t *testing.T) {
	// A program with a quiet phase followed by a missy phase must
	// produce a phase-change event for the hot field.
	u := classfile.NewUniverse()
	node := u.DefineClass("PNode", nil)
	fpay := u.AddField(node, "payload", kRef)
	cl := u.DefineClass("Main", nil)
	main := u.AddMethod(cl, "main", false, nil, kVoid)
	b := bytecode.NewBuilder(u, main)
	b.Local("nodes", kRef)
	b.Local("i", kInt)
	b.Local("j", kInt)
	b.Local("sum", kInt)
	b.Local("t", kRef)
	b.Const(6000).NewArray(u.RefArray).Store("nodes")
	b.Label("mk")
	b.Load("i").Const(6000).If(bytecode.OpIfGE, "missy")
	b.New(node).Store("t")
	b.Load("t").Const(48).NewArray(u.IntArray).PutField(fpay)
	b.Load("nodes").Load("i").Load("t").AStore(kRef)
	b.Inc("i", 1)
	b.Goto("mk")
	// Two phases of pointer chasing at very different intensities:
	// phase A interleaves sparse walks with long arithmetic pauses
	// (low miss rate); phase B chases densely back to back.
	b.Local("p", kInt)
	b.Label("missy")
	b.Const(0).Store("j")
	b.Label("roundsA")
	b.Load("j").Const(60).If(bytecode.OpIfGE, "phaseB")
	b.Const(0).Store("i")
	b.Label("walkA")
	b.Load("i").Const(6000).If(bytecode.OpIfGE, "pause")
	b.Load("sum").Load("nodes").Load("i").ALoad(kRef).GetField(fpay).Const(0).ALoad(kInt).Add().Store("sum")
	b.Load("i").Const(37).Add().Store("i")
	b.Goto("walkA")
	b.Label("pause")
	b.Const(0).Store("p")
	b.Label("spin")
	b.Load("p").Const(60_000).If(bytecode.OpIfGE, "jnA")
	b.Load("sum").Load("p").Add().Store("sum")
	b.Inc("p", 1)
	b.Goto("spin")
	b.Label("jnA")
	b.Inc("j", 1)
	b.Goto("roundsA")
	b.Label("phaseB")
	b.Const(0).Store("j")
	b.Label("roundsB")
	b.Load("j").Const(80).If(bytecode.OpIfGE, "done")
	b.Const(0).Store("i")
	b.Label("walkB")
	b.Load("i").Const(6000).If(bytecode.OpIfGE, "jnB")
	b.Load("sum").Load("nodes").Load("i").ALoad(kRef).GetField(fpay).Const(0).ALoad(kInt).Add().Store("sum")
	b.Load("i").Const(7).Add().Store("i")
	b.Goto("walkB")
	b.Label("jnB")
	b.Inc("j", 1)
	b.Goto("roundsB")
	b.Label("done")
	b.Load("sum").Result()
	b.Return()
	b.MustBuild()
	u.Layout()

	mc := monitor.DefaultConfig()
	mc.PollMaxCycles = 2_000_000
	sys := core.NewSystem(u, core.Options{
		HeapLimit:        16 << 20,
		Monitoring:       true,
		SamplingInterval: 500,
		MonitorConfig:    &mc,
	})
	plan := make(runtime.CompilePlan)
	for _, m := range u.Methods() {
		if m.Code != nil {
			plan[m.ID] = 2
		}
	}
	if err := sys.Boot(plan, nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(main, 0); err != nil {
		t.Fatal(err)
	}
	events := sys.Monitor.PhaseEvents()
	if len(events) == 0 {
		fc := sys.Monitor.Field(fpay)
		if fc != nil {
			t.Logf("rate series: %v", fc.RateSeries.Values())
		}
		t.Fatal("no phase change detected between quiet and missy phases")
	}
	t.Logf("phase events: %v", events)
}

func TestAlternativeEvents(t *testing.T) {
	// The P4 PEBS can sample L1, L2 or DTLB misses — one at a time
	// (§4.1). The attribution pipeline must work for each event kind.
	for _, ev := range []cache.EventKind{cache.EventL2Miss, cache.EventDTLBMiss} {
		sys, fpay := runChase(t, core.Options{
			HeapLimit:        16 << 20,
			Monitoring:       true,
			SamplingInterval: 200,
			Event:            ev,
		})
		if sys.Monitor.Stats().SamplesDecoded == 0 {
			t.Errorf("%v: no samples decoded", ev)
			continue
		}
		if sys.Monitor.FieldSamples(fpay) == 0 {
			t.Errorf("%v: nothing attributed to the hot field", ev)
		}
	}
}

// TestReportTopNClamp is the regression test for the Report slicing
// bug: topN below zero used to slice hf[:topN] and panic. Negative
// values now mean the same as zero (no hot-field listing), and values
// beyond the list length list everything.
func TestReportTopNClamp(t *testing.T) {
	sys, _ := runChase(t, core.Options{
		HeapLimit:        16 << 20,
		Monitoring:       true,
		SamplingInterval: 2000,
	})
	if len(sys.Monitor.HotFields()) == 0 {
		t.Fatal("no hot fields; the clamp needs a non-empty listing to bite")
	}

	neg := sys.Monitor.Report(-3) // panicked before the clamp
	zero := sys.Monitor.Report(0)
	if neg != zero {
		t.Errorf("Report(-3) != Report(0):\n%q\nvs\n%q", neg, zero)
	}
	if strings.Contains(zero, "#1") {
		t.Errorf("Report(0) lists fields:\n%s", zero)
	}

	one := sys.Monitor.Report(1)
	if !strings.Contains(one, "#1") {
		t.Errorf("Report(1) lists nothing:\n%s", one)
	}
	if strings.Contains(one, "#2") {
		t.Errorf("Report(1) lists more than one field:\n%s", one)
	}
	// A bound far beyond the list length is not an error either.
	if huge := sys.Monitor.Report(1 << 20); !strings.Contains(huge, "#1") {
		t.Errorf("Report(1<<20) lists nothing:\n%s", huge)
	}
}
