package freelist

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestSizeClasses(t *testing.T) {
	if CellSize(0) != 16 || CellSize(15) != 256 || CellSize(NumClasses-1) != 4096 {
		t.Errorf("boundary classes: %d %d %d", CellSize(0), CellSize(15), CellSize(NumClasses-1))
	}
	// The classes must be strictly increasing.
	for i := 1; i < NumClasses; i++ {
		if CellSize(i) <= CellSize(i-1) {
			t.Fatalf("class %d (%d) not larger than class %d (%d)", i, CellSize(i), i-1, CellSize(i-1))
		}
	}
}

func TestSizeClassForProperty(t *testing.T) {
	// Property: the selected class fits the request and is the
	// smallest class that does.
	f := func(raw uint16) bool {
		size := uint64(raw)%MaxCellSize + 1
		idx, ok := SizeClassFor(size)
		if !ok {
			return false
		}
		if CellSize(idx) < size {
			return false
		}
		if idx > 0 && CellSize(idx-1) >= size {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if _, ok := SizeClassFor(MaxCellSize + 1); ok {
		t.Error("oversized request got a class")
	}
}

func TestAllocFreeReuse(t *testing.T) {
	a := New(0x1000_0000, 0x1100_0000)
	x := a.Alloc(40) // class 48
	y := a.Alloc(40)
	if x == 0 || y == 0 || x == y {
		t.Fatalf("allocs: %#x %#x", x, y)
	}
	if cls, ok := a.CellOf(x); !ok || CellSize(cls) != 48 {
		t.Errorf("CellOf(x) = %d, %v", cls, ok)
	}
	a.Free(x)
	if _, ok := a.CellOf(x); ok {
		t.Error("freed cell still live")
	}
	z := a.Alloc(48)
	if z != x {
		t.Errorf("freed cell not reused: %#x vs %#x", z, x)
	}
}

func TestNoOverlapProperty(t *testing.T) {
	// Property: live cells never overlap, across interleaved
	// allocations and frees.
	f := func(ops []uint16) bool {
		a := New(0x1000_0000, 0x1040_0000)
		type cell struct{ addr, size uint64 }
		var live []cell
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				victim := int(op) % len(live)
				a.Free(live[victim].addr)
				live = append(live[:victim], live[victim+1:]...)
				continue
			}
			size := uint64(op)%MaxCellSize + 1
			addr := a.Alloc(size)
			if addr == 0 {
				continue
			}
			live = append(live, cell{addr, size})
		}
		for i := range live {
			for j := i + 1; j < len(live); j++ {
				a1, e1 := live[i].addr, live[i].addr+live[i].size
				a2, e2 := live[j].addr, live[j].addr+live[j].size
				if a1 < e2 && a2 < e1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSweep(t *testing.T) {
	a := New(0x1000_0000, 0x1100_0000)
	keep := a.Alloc(32)
	kill1 := a.Alloc(32)
	kill2 := a.Alloc(200)
	_ = kill1
	_ = kill2
	n := a.Sweep(func(addr uint64, cellSize uint64) bool { return addr == keep })
	if n != 2 {
		t.Errorf("swept %d cells, want 2", n)
	}
	if _, ok := a.CellOf(keep); !ok {
		t.Error("survivor freed")
	}
	if a.Stats().LiveCells != 1 {
		t.Errorf("LiveCells = %d", a.Stats().LiveCells)
	}
}

func TestFragmentationStats(t *testing.T) {
	a := New(0x1000_0000, 0x1100_0000)
	a.Alloc(17) // lands in a 32-byte cell: 15 bytes wasted
	st := a.Stats()
	if st.BytesRequested != 17 || st.BytesAllocated != 32 {
		t.Errorf("stats: %+v", st)
	}
	frag := st.InternalFragmentation()
	if frag < 0.45 || frag > 0.48 {
		t.Errorf("fragmentation = %v", frag)
	}
	if a.UsedBytes() != 32 {
		t.Errorf("UsedBytes = %d", a.UsedBytes())
	}
	if a.FootprintBytes() != BlockSize {
		t.Errorf("FootprintBytes = %d", a.FootprintBytes())
	}
}

func TestExhaustion(t *testing.T) {
	a := New(0x1000_0000, 0x1000_0000+BlockSize) // exactly one block
	var got int
	for a.Alloc(4096) != 0 {
		got++
	}
	if got != BlockSize/4096 {
		t.Errorf("allocated %d cells from one block, want %d", got, BlockSize/4096)
	}
}

func TestGuards(t *testing.T) {
	a := New(0x1000_0000, 0x1100_0000)
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("oversized alloc", func() { a.Alloc(MaxCellSize + 1) })
	expectPanic("double free", func() {
		x := a.Alloc(32)
		a.Free(x)
		a.Free(x)
	})
}

func TestCellsEnumeration(t *testing.T) {
	a := New(0x1000_0000, 0x1100_0000)
	x := a.Alloc(16)
	y := a.Alloc(16)
	cells := a.Cells()
	if len(cells) != 2 {
		t.Fatalf("Cells = %v", cells)
	}
	found := map[uint64]bool{x: false, y: false}
	for _, c := range cells {
		found[c] = true
	}
	if !found[x] || !found[y] {
		t.Error("Cells missing an allocation")
	}
}

// TestSweepDeterministic checks that the post-sweep allocation stream
// does not depend on map iteration order: sweeping decides the order
// freed cells re-enter the free lists, so two identical allocator
// histories must replay to identical addresses. (The collectors rely
// on this — object placement feeds the cache simulation, so any
// map-order leak here makes whole-run cycle counts nondeterministic.)
func TestSweepDeterministic(t *testing.T) {
	build := func() []uint64 {
		a := New(0x1000_0000, 0x1100_0000)
		var addrs []uint64
		for i := 0; i < 400; i++ {
			addrs = append(addrs, a.Alloc(uint64(16+(i%40)*16)))
		}
		// Kill a scattered subset, forcing frees into many classes and
		// at least one block release.
		dead := make(map[uint64]bool)
		for i, addr := range addrs {
			if i%3 != 0 {
				dead[addr] = true
			}
		}
		a.Sweep(func(addr uint64, _ uint64) bool { return !dead[addr] })
		var out []uint64
		for i := 0; i < 300; i++ {
			out = append(out, a.Alloc(uint64(16+(i%40)*16)))
		}
		return out
	}
	first := build()
	for trial := 0; trial < 3; trial++ {
		if got := build(); !reflect.DeepEqual(got, first) {
			t.Fatalf("trial %d: post-sweep allocation stream differs from first run", trial)
		}
	}
}
