// Package freelist implements the mark-sweep mature-space allocator:
// a segregated free-list over 40 size classes up to 4 KB (the VM
// default the paper uses, §5.1), carving fixed-size cells out of
// 64 KB blocks. Objects larger than the biggest size class belong in
// the large-object space.
//
// Co-allocation (§5.4) asks this allocator for a single cell big
// enough to hold a parent object and its hottest child back to back;
// the cell is drawn from the appropriate (larger) size class, which is
// exactly the internal-fragmentation trade-off the paper discusses.
package freelist

import (
	"fmt"
	"sort"
)

// NumClasses is the number of size classes (paper: 40).
const NumClasses = 40

// MaxCellSize is the largest cell the free list serves (paper: 4 KB).
const MaxCellSize = 4096

// BlockSize is the granularity at which the allocator carves memory
// out of the mature region.
const BlockSize = 65536

// sizeClasses lists the cell sizes: 16..256 in steps of 16, 320..1024
// in steps of 64, 1280..4096 in steps of 256 — 40 classes total.
var sizeClasses = buildSizeClasses()

func buildSizeClasses() [NumClasses]uint64 {
	var cs [NumClasses]uint64
	i := 0
	for sz := uint64(16); sz <= 256; sz += 16 {
		cs[i] = sz
		i++
	}
	for sz := uint64(320); sz <= 1024; sz += 64 {
		cs[i] = sz
		i++
	}
	for sz := uint64(1280); sz <= 4096; sz += 256 {
		cs[i] = sz
		i++
	}
	if i != NumClasses {
		panic(fmt.Sprintf("freelist: built %d size classes, want %d", i, NumClasses))
	}
	return cs
}

// SizeClassFor returns the index of the smallest size class holding
// size bytes, and whether one exists (false means LOS).
func SizeClassFor(size uint64) (int, bool) {
	if size > MaxCellSize {
		return 0, false
	}
	// Binary search over the 40 entries is overkill; scan regions.
	switch {
	case size <= 256:
		idx := int((size + 15) / 16)
		if idx == 0 {
			idx = 1
		}
		return idx - 1, true
	case size <= 1024:
		return 16 + int((size-256+63)/64) - 1, true
	default:
		return 28 + int((size-1024+255)/256) - 1, true
	}
}

// CellSize returns the byte size of cells in class idx.
func CellSize(idx int) uint64 { return sizeClasses[idx] }

// block is one 64 KB chunk dedicated to a single size class.
type block struct {
	base  uint64
	class int
	cells int
	live  int
}

// Allocator is the segregated free-list allocator over a contiguous
// mature region.
type Allocator struct {
	base, limit uint64
	cursor      uint64 // next fresh block

	free [NumClasses][]uint64 // free cells per class
	// blocks maps block base -> metadata, for sweeping.
	blocks map[uint64]*block
	// freeBlocks are fully empty blocks returned by ReleaseEmptyBlocks,
	// reusable by any size class.
	freeBlocks []uint64
	// allocated tracks the base address and class of every live cell.
	allocated map[uint64]int

	// Statistics.
	bytesRequested uint64 // sum of requested sizes
	bytesAllocated uint64 // sum of cell sizes handed out
	liveCells      uint64
	usedBytes      uint64 // bytes in cells currently allocated
	blockBytes     uint64 // bytes claimed from the region as blocks
}

// New creates an allocator over [base, limit).
func New(base, limit uint64) *Allocator {
	return &Allocator{
		base: base, limit: limit, cursor: base,
		blocks:    make(map[uint64]*block),
		allocated: make(map[uint64]int),
	}
}

// Alloc returns a cell of at least size bytes, or 0 if the region is
// exhausted. size must fit a size class; callers route larger requests
// to the LOS.
func (a *Allocator) Alloc(size uint64) uint64 {
	cls, ok := SizeClassFor(size)
	if !ok {
		panic(fmt.Sprintf("freelist: allocation of %d bytes exceeds max cell size", size))
	}
	if len(a.free[cls]) == 0 {
		if !a.refill(cls) {
			return 0
		}
	}
	n := len(a.free[cls])
	addr := a.free[cls][n-1]
	a.free[cls] = a.free[cls][:n-1]
	a.allocated[addr] = cls
	a.blocks[addr&^(BlockSize-1)].live++
	cell := sizeClasses[cls]
	a.bytesRequested += size
	a.bytesAllocated += cell
	a.usedBytes += cell
	a.liveCells++
	return addr
}

// refill dedicates a block (recycled or fresh) to class cls.
func (a *Allocator) refill(cls int) bool {
	var base uint64
	if n := len(a.freeBlocks); n > 0 {
		base = a.freeBlocks[n-1]
		a.freeBlocks = a.freeBlocks[:n-1]
	} else {
		if a.cursor+BlockSize > a.limit {
			return false
		}
		base = a.cursor
		a.cursor += BlockSize
	}
	b := &block{base: base, class: cls}
	a.blockBytes += BlockSize
	cell := sizeClasses[cls]
	b.cells = int(BlockSize / cell)
	for i := b.cells - 1; i >= 0; i-- {
		a.free[cls] = append(a.free[cls], b.base+uint64(i)*cell)
	}
	a.blocks[b.base] = b
	return true
}

// CellOf returns the cell base and size class for a live cell address,
// or ok=false if addr is not a live cell base.
func (a *Allocator) CellOf(addr uint64) (cls int, ok bool) {
	cls, ok = a.allocated[addr]
	return cls, ok
}

// Free releases the cell at addr.
func (a *Allocator) Free(addr uint64) {
	cls, ok := a.allocated[addr]
	if !ok {
		panic(fmt.Sprintf("freelist: free of unallocated cell %#x", addr))
	}
	delete(a.allocated, addr)
	a.free[cls] = append(a.free[cls], addr)
	a.blocks[addr&^(BlockSize-1)].live--
	a.usedBytes -= sizeClasses[cls]
	a.liveCells--
}

// Sweep visits every live cell and frees those for which keep returns
// false, then releases fully empty blocks back to the shared block
// pool (so the heap budget actually shrinks after a major collection).
// It returns the number of cells freed.
//
// Cells are visited in address order: the visit order decides both the
// keep-callback order and the order freed cells enter the per-class
// free lists (i.e. the addresses future allocations return), so
// iterating the allocated map directly would leak Go's randomized map
// iteration order into simulated object placement and make whole-run
// cycle counts differ between identical invocations.
func (a *Allocator) Sweep(keep func(addr uint64, cellSize uint64) bool) int {
	live := make([]uint64, 0, len(a.allocated))
	for addr := range a.allocated {
		live = append(live, addr)
	}
	sort.Slice(live, func(i, j int) bool { return live[i] < live[j] })
	var freed int
	for _, addr := range live {
		if !keep(addr, sizeClasses[a.allocated[addr]]) {
			a.Free(addr)
			freed++
		}
	}
	a.releaseEmptyBlocks()
	return freed
}

// releaseEmptyBlocks returns blocks with no live cells to the shared
// pool, purging their cells from the per-class free lists. Released
// bases join the pool in address order — the pool is a stack that
// later block claims pop from, so map-ordered release would randomize
// future block placement.
func (a *Allocator) releaseEmptyBlocks() {
	empty := make(map[uint64]bool)
	for base, b := range a.blocks {
		if b.live == 0 {
			empty[base] = true
		}
	}
	if len(empty) == 0 {
		return
	}
	for cls := range a.free {
		kept := a.free[cls][:0]
		for _, cell := range a.free[cls] {
			if !empty[cell&^(BlockSize-1)] {
				kept = append(kept, cell)
			}
		}
		a.free[cls] = kept
	}
	bases := make([]uint64, 0, len(empty))
	for base := range empty {
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	for _, base := range bases {
		delete(a.blocks, base)
		a.freeBlocks = append(a.freeBlocks, base)
		a.blockBytes -= BlockSize
	}
}

// Cells returns the base addresses of all live cells (unsorted).
func (a *Allocator) Cells() []uint64 {
	out := make([]uint64, 0, len(a.allocated))
	for addr := range a.allocated {
		out = append(out, addr)
	}
	return out
}

// Stats describes allocator occupancy and fragmentation.
type Stats struct {
	BytesRequested uint64 // application bytes asked for
	BytesAllocated uint64 // cell bytes handed out (>= requested)
	UsedBytes      uint64 // bytes in currently live cells
	BlockBytes     uint64 // bytes claimed from the region
	LiveCells      uint64
}

// InternalFragmentation returns the fraction of handed-out cell bytes
// wasted by size-class rounding.
func (s Stats) InternalFragmentation() float64 {
	if s.BytesAllocated == 0 {
		return 0
	}
	return 1 - float64(s.BytesRequested)/float64(s.BytesAllocated)
}

// Stats returns a snapshot of the allocator statistics.
func (a *Allocator) Stats() Stats {
	return Stats{
		BytesRequested: a.bytesRequested,
		BytesAllocated: a.bytesAllocated,
		UsedBytes:      a.usedBytes,
		BlockBytes:     a.blockBytes,
		LiveCells:      a.liveCells,
	}
}

// UsedBytes returns the bytes in live cells.
func (a *Allocator) UsedBytes() uint64 { return a.usedBytes }

// FootprintBytes returns the bytes claimed from the mature region
// (blocks are never returned).
func (a *Allocator) FootprintBytes() uint64 { return a.blockBytes }

// Reset drops every block and free list (used when a run is restarted).
func (a *Allocator) Reset() {
	*a = *New(a.base, a.limit)
}
