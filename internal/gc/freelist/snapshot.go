package freelist

import (
	"fmt"
	"sort"

	"hpmvm/internal/snap"
)

// Snapshot encoding helpers for the segregated free-list allocator,
// composed by the owning collector (genms) into its ComponentState.
// Order is load-bearing: the per-class free lists and the empty-block
// pool are stacks whose pop order decides future object placement, so
// both are serialized in their exact slice order. The blocks and
// allocated maps are serialized in sorted key order.

// Encode appends the allocator's mutable state to w.
func (a *Allocator) Encode(w *snap.Writer) {
	w.U64(a.base)
	w.U64(a.limit)
	w.U64(a.cursor)
	for cls := range a.free {
		w.U64(uint64(len(a.free[cls])))
		for _, cell := range a.free[cls] {
			w.U64(cell)
		}
	}
	bases := make([]uint64, 0, len(a.blocks))
	for base := range a.blocks {
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	w.U64(uint64(len(bases)))
	for _, base := range bases {
		b := a.blocks[base]
		w.U64(b.base)
		w.I64(int64(b.class))
		w.I64(int64(b.cells))
		w.I64(int64(b.live))
	}
	w.U64(uint64(len(a.freeBlocks)))
	for _, base := range a.freeBlocks {
		w.U64(base)
	}
	addrs := make([]uint64, 0, len(a.allocated))
	for addr := range a.allocated {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	w.U64(uint64(len(addrs)))
	for _, addr := range addrs {
		w.U64(addr)
		w.I64(int64(a.allocated[addr]))
	}
	w.U64(a.bytesRequested)
	w.U64(a.bytesAllocated)
	w.U64(a.liveCells)
	w.U64(a.usedBytes)
	w.U64(a.blockBytes)
}

// Decode restores the allocator's mutable state from r, verifying the
// snapshot covers the same region.
func (a *Allocator) Decode(r *snap.Reader) error {
	base := r.U64()
	limit := r.U64()
	if r.Err() == nil && (base != a.base || limit != a.limit) {
		return fmt.Errorf("freelist: %w: allocator covers [%#x,%#x), snapshot covers [%#x,%#x)",
			snap.ErrDecode, a.base, a.limit, base, limit)
	}
	cursor := r.U64()
	var free [NumClasses][]uint64
	for cls := range free {
		n := r.U64()
		if r.Err() != nil {
			break
		}
		free[cls] = make([]uint64, 0, n)
		for i := uint64(0); i < n && r.Err() == nil; i++ {
			free[cls] = append(free[cls], r.U64())
		}
	}
	nBlocks := r.U64()
	blocks := make(map[uint64]*block, nBlocks)
	for i := uint64(0); i < nBlocks && r.Err() == nil; i++ {
		b := &block{}
		b.base = r.U64()
		b.class = int(r.I64())
		b.cells = int(r.I64())
		b.live = int(r.I64())
		blocks[b.base] = b
	}
	nFreeBlocks := r.U64()
	freeBlocks := make([]uint64, 0, nFreeBlocks)
	for i := uint64(0); i < nFreeBlocks && r.Err() == nil; i++ {
		freeBlocks = append(freeBlocks, r.U64())
	}
	nAlloc := r.U64()
	allocated := make(map[uint64]int, nAlloc)
	for i := uint64(0); i < nAlloc && r.Err() == nil; i++ {
		addr := r.U64()
		allocated[addr] = int(r.I64())
	}
	bytesRequested := r.U64()
	bytesAllocated := r.U64()
	liveCells := r.U64()
	usedBytes := r.U64()
	blockBytes := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	a.cursor = cursor
	a.free = free
	a.blocks = blocks
	a.freeBlocks = freeBlocks
	a.allocated = allocated
	a.bytesRequested = bytesRequested
	a.bytesAllocated = bytesAllocated
	a.liveCells = liveCells
	a.usedBytes = usedBytes
	a.blockBytes = blockBytes
	return nil
}
