// Package gencopy implements the generational copying collector used
// as the Figure 6 comparator: the same Appel-style nursery as GenMS,
// but a semispace copying mature space. Copying generally improves
// mature-space locality (survivors are compacted in breadth-first
// order) at the cost of a copy reserve — half the mature budget is
// unusable — which is why GenMS + co-allocation wins at small heap
// sizes (§6.3, Figure 6).
package gencopy

import (
	"fmt"

	"hpmvm/internal/gc/heap"
	"hpmvm/internal/vm/classfile"
	"hpmvm/internal/vm/runtime"
)

// Config sizes the collector.
type Config struct {
	HeapLimit       uint64
	MinNursery      uint64
	MaxNursery      uint64
	PerObjectCycles uint64
}

// DefaultConfig returns a config with the given heap limit.
func DefaultConfig(heapLimit uint64) Config {
	return Config{
		HeapLimit:       heapLimit,
		MinNursery:      256 * 1024,
		MaxNursery:      1024 * 1024,
		PerObjectCycles: 12,
	}
}

// Stats describes collector activity.
type Stats struct {
	MinorGCs        uint64
	MajorGCs        uint64
	PromotedObjects uint64
	PromotedBytes   uint64
	CopiedObjects   uint64 // objects copied by major collections
	CopiedBytes     uint64
	GCCycles        uint64
	BarrierRecords  uint64
}

const semiSplit = (heap.MatureBase + heap.MatureEnd) / 2

// Collector is the GenCopy policy.
type Collector struct {
	vm  *runtime.VM
	cfg Config

	nursery *heap.BumpSpace
	semi    [2]*heap.BumpSpace
	active  int
	los     *heap.LargeObjectSpace

	remset []uint64
	stats  Stats
	queue  []uint64 // LOS scan queue during major GC
}

// New wires a GenCopy collector into the VM.
func New(vm *runtime.VM, cfg Config) *Collector {
	c := &Collector{
		vm:      vm,
		cfg:     cfg,
		nursery: heap.NewBumpSpace("nursery", heap.NurseryBase, heap.NurseryEnd),
		los:     heap.NewLOS(heap.LOSBase, heap.LOSEnd),
	}
	c.semi[0] = heap.NewBumpSpace("mature-0", heap.MatureBase, semiSplit)
	c.semi[1] = heap.NewBumpSpace("mature-1", semiSplit, heap.MatureEnd)
	c.resizeNursery()
	vm.CPU.Barrier = c.barrier
	vm.Collector = c
	return c
}

// Name implements runtime.Collector.
func (c *Collector) Name() string { return "GenCopy" }

// HeapLimit implements runtime.Collector.
func (c *Collector) HeapLimit() uint64 { return c.cfg.HeapLimit }

// Collections implements runtime.Collector.
func (c *Collector) Collections() (minor, major uint64) {
	return c.stats.MinorGCs, c.stats.MajorGCs
}

// Stats returns a snapshot.
func (c *Collector) Stats() Stats { return c.stats }

// MatureUsedBytes returns live bytes in the active semispace.
func (c *Collector) MatureUsedBytes() uint64 { return c.semi[c.active].Used() }

func (c *Collector) barrier(slot, value uint64) {
	if heap.InImmortal(slot) && (heap.InNursery(value) || heap.InMature(value) || heap.InLOS(value)) {
		// Immortal objects are immutable after setup by design
		// (DESIGN.md §7): the collectors do not scan the immortal
		// space, so such a store would create an untraced edge.
		panic(fmt.Sprintf("gencopy: reference store into immortal object (slot %#x <- %#x)", slot, value))
	}
	if heap.InNursery(value) && !heap.InNursery(slot) {
		c.remset = append(c.remset, slot)
		c.stats.BarrierRecords++
		c.vm.CPU.AddCycles(4)
	}
}

// usedBudget counts both semispaces' worth of budget (the copy
// reserve) plus LOS pages — the space-efficiency cost the paper
// contrasts with GenMS.
func (c *Collector) usedBudget() uint64 {
	return 2*c.semi[c.active].Used() + c.los.Used()
}

func (c *Collector) resizeNursery() bool {
	used := c.usedBudget()
	if used >= c.cfg.HeapLimit {
		return false
	}
	n := (c.cfg.HeapLimit - used) / 2
	if n > c.cfg.MaxNursery {
		n = c.cfg.MaxNursery
	}
	if n < c.cfg.MinNursery {
		if c.cfg.HeapLimit-used < c.cfg.MinNursery {
			return false
		}
		n = c.cfg.MinNursery
	}
	c.nursery.SetSoftLimit(n &^ 7)
	return true
}

// Alloc implements runtime.Collector.
func (c *Collector) Alloc(size uint64) uint64 {
	if size > runtime.LargeObjectThreshold {
		return c.allocLarge(size)
	}
	if a := c.nursery.Alloc(size); a != 0 {
		return a
	}
	c.MinorGC()
	if a := c.nursery.Alloc(size); a != 0 {
		return a
	}
	return 0
}

func (c *Collector) allocLarge(size uint64) uint64 {
	need := (size + heap.LOSPageSize - 1) &^ (heap.LOSPageSize - 1)
	if c.usedBudget()+need+c.cfg.MinNursery > c.cfg.HeapLimit {
		c.MinorGC()
		c.MajorGC()
		if c.usedBudget()+need+c.cfg.MinNursery > c.cfg.HeapLimit {
			return 0
		}
	}
	return c.los.Alloc(size)
}

// MinorGC promotes nursery survivors into the active semispace.
func (c *Collector) MinorGC() {
	start := c.vm.CPU.Cycles()
	c.stats.MinorGCs++
	vm := c.vm
	to := c.semi[c.active]

	var gray []uint64
	promote := func(obj uint64) uint64 {
		if dst, ok := vm.Forwarded(obj); ok {
			return dst
		}
		size := vm.SizeOf(obj)
		dst := to.Alloc(size)
		if dst == 0 {
			panic(fmt.Sprintf("gencopy: semispace exhausted promoting %d bytes", size))
		}
		vm.CopyObject(dst, obj, size)
		vm.SetForwarding(obj, dst)
		c.stats.PromotedObjects++
		c.stats.PromotedBytes += size
		gray = append(gray, dst)
		return dst
	}

	for _, r := range vm.CollectRoots() {
		if v := vm.RootGet(r); heap.InNursery(v) {
			vm.RootSet(r, promote(v))
		}
	}
	for _, slot := range c.remset {
		if v := vm.CPU.LoadWord(slot); heap.InNursery(v) {
			vm.CPU.StoreWord(slot, promote(v))
		}
	}
	c.remset = c.remset[:0]

	for len(gray) > 0 {
		obj := gray[len(gray)-1]
		gray = gray[:len(gray)-1]
		vm.CPU.AddCycles(c.cfg.PerObjectCycles)
		vm.ForEachRef(obj, func(slot uint64) {
			if v := vm.CPU.LoadWord(slot); heap.InNursery(v) {
				vm.CPU.StoreWord(slot, promote(v))
			}
		})
	}

	c.nursery.Reset()
	c.stats.GCCycles += c.vm.CPU.Cycles() - start

	if !c.resizeNursery() {
		c.MajorGC()
		if !c.resizeNursery() {
			// Even a major collection could not free enough budget:
			// hand out whatever remains, or close the nursery so the
			// next allocation reports OOM.
			rest := uint64(0)
			if c.cfg.HeapLimit > c.usedBudget() {
				rest = (c.cfg.HeapLimit - c.usedBudget()) &^ 7
			}
			if rest < 4096 {
				rest = 0
			}
			c.nursery.SetSoftLimit(rest)
		}
	}
}

// MajorGC copies the live mature population into the other semispace
// with a Cheney breadth-first scan, updating every root, to-space and
// large-object reference, then sweeps the large-object space. Must run
// with an empty nursery (it is always preceded by MinorGC).
func (c *Collector) MajorGC() {
	start := c.vm.CPU.Cycles()
	c.stats.MajorGCs++
	vm := c.vm
	from := c.semi[c.active]
	to := c.semi[1-c.active]
	to.Reset()

	c.queue = c.queue[:0]

	forward := func(obj uint64) uint64 {
		if dst, ok := vm.Forwarded(obj); ok {
			return dst
		}
		size := vm.SizeOf(obj)
		dst := to.Alloc(size)
		if dst == 0 {
			panic(fmt.Sprintf("gencopy: to-space exhausted copying %d bytes", size))
		}
		vm.CopyObject(dst, obj, size)
		vm.SetForwarding(obj, dst)
		c.stats.CopiedObjects++
		c.stats.CopiedBytes += size
		return dst
	}
	// visit processes a reference value, returning the (possibly
	// updated) reference.
	visit := func(v uint64) uint64 {
		if from.Contains(v) {
			return forward(v)
		}
		if heap.InLOS(v) {
			fl := vm.FlagsOf(v)
			if fl&classfile.FlagMark == 0 {
				vm.SetFlags(v, fl|classfile.FlagMark)
				c.queue = append(c.queue, v)
			}
		}
		return v
	}

	for _, r := range vm.CollectRoots() {
		v := vm.RootGet(r)
		nv := visit(v)
		if nv != v {
			vm.RootSet(r, nv)
		}
	}

	// Cheney scan of the to-space plus the LOS scan queue.
	scan := to.Base
	for scan < to.Base+to.Used() || len(c.queue) > 0 {
		var obj uint64
		if scan < to.Base+to.Used() {
			obj = scan
			scan += vm.SizeOf(obj)
		} else {
			obj = c.queue[len(c.queue)-1]
			c.queue = c.queue[:len(c.queue)-1]
		}
		vm.CPU.AddCycles(c.cfg.PerObjectCycles)
		vm.ForEachRef(obj, func(slot uint64) {
			v := vm.CPU.LoadWord(slot)
			nv := visit(v)
			if nv != v {
				vm.CPU.StoreWord(slot, nv)
			}
		})
	}

	// Sweep the LOS and clear marks.
	for _, obj := range c.los.Objects() {
		fl := vm.FlagsOf(obj)
		if fl&classfile.FlagMark == 0 {
			c.los.Free(obj)
		} else {
			vm.SetFlags(obj, fl&^classfile.FlagMark)
		}
	}

	from.Reset()
	c.active = 1 - c.active
	c.stats.GCCycles += c.vm.CPU.Cycles() - start
}
