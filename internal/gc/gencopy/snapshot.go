package gencopy

import (
	"fmt"

	"hpmvm/internal/snap"
)

// Snapshot/Restore implement snap.Checkpointable for the GenCopy
// collector: nursery, both semispaces plus the active index, the LOS,
// the remembered set (in insertion order) and the counters.

const (
	snapComponent = "gc/gencopy"
	snapVersion   = 1
)

// Snapshot serializes the collector's mutable state.
func (c *Collector) Snapshot() snap.ComponentState {
	var w snap.Writer
	c.nursery.Encode(&w)
	c.semi[0].Encode(&w)
	c.semi[1].Encode(&w)
	w.I64(int64(c.active))
	c.los.Encode(&w)
	w.U64(uint64(len(c.remset)))
	for _, slot := range c.remset {
		w.U64(slot)
	}
	st := c.stats
	w.U64(st.MinorGCs)
	w.U64(st.MajorGCs)
	w.U64(st.PromotedObjects)
	w.U64(st.PromotedBytes)
	w.U64(st.CopiedObjects)
	w.U64(st.CopiedBytes)
	w.U64(st.GCCycles)
	w.U64(st.BarrierRecords)
	return snap.ComponentState{Component: snapComponent, Version: snapVersion, Data: w.Bytes()}
}

// Restore overwrites the collector's mutable state.
func (c *Collector) Restore(st snap.ComponentState) error {
	if err := snap.Check(st, snapComponent, snapVersion); err != nil {
		return err
	}
	r := snap.NewReader(st.Data)
	if err := c.nursery.Decode(r); err != nil {
		return err
	}
	if err := c.semi[0].Decode(r); err != nil {
		return err
	}
	if err := c.semi[1].Decode(r); err != nil {
		return err
	}
	active := int(r.I64())
	if r.Err() == nil && active != 0 && active != 1 {
		return fmt.Errorf("gencopy: %w: active semispace index %d", snap.ErrDecode, active)
	}
	if err := c.los.Decode(r); err != nil {
		return err
	}
	nRem := r.U64()
	remset := make([]uint64, 0, nRem)
	for i := uint64(0); i < nRem && r.Err() == nil; i++ {
		remset = append(remset, r.U64())
	}
	var stats Stats
	stats.MinorGCs = r.U64()
	stats.MajorGCs = r.U64()
	stats.PromotedObjects = r.U64()
	stats.PromotedBytes = r.U64()
	stats.CopiedObjects = r.U64()
	stats.CopiedBytes = r.U64()
	stats.GCCycles = r.U64()
	stats.BarrierRecords = r.U64()
	if err := r.Close(); err != nil {
		return err
	}
	c.active = active
	c.remset = remset
	c.stats = stats
	c.queue = c.queue[:0]
	return nil
}
