package gencopy_test

import (
	"strings"
	"testing"

	"hpmvm/internal/gc/gencopy"
	"hpmvm/internal/vm/bytecode"
	"hpmvm/internal/vm/classfile"
	"hpmvm/internal/vm/vmtest"
)

const (
	kInt  = classfile.KindInt
	kRef  = classfile.KindRef
	kVoid = classfile.KindVoid
)

// buildChurnTree builds a program that keeps a linked structure live
// across nursery churn and repeated drops (forcing both minor and
// major copying collections), then checksums it.
func buildChurnTree(u *classfile.Universe, rounds, listLen, churn int64) (*classfile.Method, int64) {
	node := u.DefineClass("Node", nil)
	fn := u.AddField(node, "next", kRef)
	fv := u.AddField(node, "v", kInt)
	mainCl := u.DefineClass("Main", nil)
	main := u.AddMethod(mainCl, "main", false, nil, kVoid)
	b := bytecode.NewBuilder(u, main)
	b.Local("head", kRef)
	b.Local("p", kRef)
	b.Local("i", kInt)
	b.Local("round", kInt)
	b.Local("sum", kInt)
	b.Label("rounds")
	b.Load("round").Const(rounds).If(bytecode.OpIfGE, "verify")
	b.Null().Store("head")
	b.Const(0).Store("i")
	b.Label("mk")
	b.Load("i").Const(listLen).If(bytecode.OpIfGE, "churn")
	b.New(node).Store("p")
	b.Load("p").Load("i").PutField(fv)
	b.Load("p").Load("head").PutField(fn)
	b.Load("p").Store("head")
	b.Inc("i", 1)
	b.Goto("mk")
	b.Label("churn")
	b.Const(0).Store("i")
	b.Label("ch")
	b.Load("i").Const(churn).If(bytecode.OpIfGE, "rnext")
	b.New(node).Pop()
	b.Inc("i", 1)
	b.Goto("ch")
	b.Label("rnext")
	b.Inc("round", 1)
	b.Goto("rounds")
	// Sum the final list.
	b.Label("verify")
	b.Load("head").Store("p")
	b.Label("walk")
	b.Load("p").IfNull("done")
	b.Load("sum").Load("p").GetField(fv).Add().Store("sum")
	b.Load("p").GetField(fn).Store("p")
	b.Goto("walk")
	b.Label("done")
	b.Load("sum").Result()
	b.Return()
	b.MustBuild()
	return main, listLen * (listLen - 1) / 2
}

func TestGraphSurvivesCopyingCollections(t *testing.T) {
	u := classfile.NewUniverse()
	main, want := buildChurnTree(u, 6, 40_000, 60_000)
	u.Layout()
	got, vm, err := vmtest.Run(u, main, vmtest.Options{
		Heap: 8 << 20, GenCopy: true, Plan: vmtest.AllOpt(u, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != want {
		t.Fatalf("sum = %d, want %d", got[0], want)
	}
	col := vm.Collector.(*gencopy.Collector)
	minor, major := col.Collections()
	if minor < 3 {
		t.Errorf("minor GCs = %d", minor)
	}
	if major == 0 {
		t.Error("expected major (copying) collections")
	}
	if col.Stats().CopiedObjects == 0 {
		t.Error("major GC copied nothing")
	}
}

func TestCopyReserveCostsBudget(t *testing.T) {
	// The same live set that fits GenMS in a given heap OOMs GenCopy,
	// because half the mature budget is copy reserve — the paper's
	// space-efficiency argument for GenMS (§5.1, Figure 6).
	mk := func() (*classfile.Universe, *classfile.Method) {
		u := classfile.NewUniverse()
		main, _ := buildChurnTree(u, 1, 70_000, 0) // ~2.24 MB live
		u.Layout()
		return u, main
	}
	u1, m1 := mk()
	if _, _, err := vmtest.Run(u1, m1, vmtest.Options{Heap: 3 << 20}); err != nil {
		t.Fatalf("GenMS should fit: %v", err)
	}
	u2, m2 := mk()
	_, vm, err := vmtest.Run(u2, m2, vmtest.Options{Heap: 3 << 20, GenCopy: true})
	if err == nil {
		t.Fatal("GenCopy fit in a heap sized for GenMS live data")
	}
	if vm.Failure() == nil || !strings.Contains(vm.Failure().Error(), "out of memory") {
		t.Errorf("failure = %v", vm.Failure())
	}
}

func TestLargeObjectsSurviveMajor(t *testing.T) {
	u := classfile.NewUniverse()
	node := u.DefineClass("Holder", nil)
	fa := u.AddField(node, "arr", kRef)
	mainCl := u.DefineClass("Main", nil)
	main := u.AddMethod(mainCl, "main", false, nil, kVoid)
	b := bytecode.NewBuilder(u, main)
	b.Local("h", kRef)
	b.Local("i", kInt)
	b.New(node).Store("h")
	b.Load("h").Const(2048).NewArray(u.IntArray).PutField(fa) // 16 KB LOS array
	b.Load("h").GetField(fa).Const(9).Const(1234).AStore(kInt)
	// Force minors and majors via churn and dropped large arrays.
	b.Label("ch")
	b.Load("i").Const(200).If(bytecode.OpIfGE, "done")
	b.Const(2048).NewArray(u.IntArray).Pop()
	b.Inc("i", 1)
	b.Goto("ch")
	b.Label("done")
	b.Load("h").GetField(fa).Const(9).ALoad(kInt).Result()
	b.Return()
	b.MustBuild()
	u.Layout()
	got, vm, err := vmtest.Run(u, main, vmtest.Options{Heap: 2 << 20, GenCopy: true, Plan: vmtest.AllOpt(u, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1234 {
		t.Fatalf("LOS element = %d", got[0])
	}
	_, major := vm.Collector.Collections()
	if major == 0 {
		t.Error("expected major collections (dropped LOS arrays need them)")
	}
}
