// Package genms implements the generational mark-sweep collector the
// paper's optimization lives in (§5.1): bump-pointer allocation in an
// Appel-style variable-size nursery, promotion of survivors into a
// mark-and-sweep mature space managed by a 40-size-class free-list
// allocator, and a separate large-object space. During nursery tracing
// the collector consults a co-allocation advisor (driven by the HPM
// monitor's per-field cache-miss counts) and places hot parent/child
// object pairs into a single free-list cell so they share a cache line
// (§5.4).
package genms

import (
	"fmt"
	"sort"

	"hpmvm/internal/gc/freelist"
	"hpmvm/internal/gc/heap"
	"hpmvm/internal/obs"
	"hpmvm/internal/vm/classfile"
	"hpmvm/internal/vm/runtime"
)

// Advisor supplies co-allocation decisions. The production
// implementation (package coalloc) ranks reference fields by sampled
// cache misses; returning nil means "do not co-allocate for this
// class".
type Advisor interface {
	// HottestField returns the reference field of cl whose referent
	// should be co-allocated with the parent, or nil. gap is the
	// number of padding bytes to insert between parent and child
	// (normally 0; Figure 8 forces one cache line to demonstrate
	// online detection of a poor placement decision).
	HottestField(cl *classfile.Class) (f *classfile.Field, gap uint64)
	// CoallocationPerformed tells the advisor a pair was placed with
	// the given gap (for its per-placement-variant bookkeeping).
	CoallocationPerformed(f *classfile.Field, gap uint64)
}

// RankedAdvisor optionally extends Advisor with the full per-class
// candidate list of §5.4 ("the VM keeps a list of the reference fields
// for each class type sorted by number of associated cache misses"):
// when the hottest field's child is ineligible at promotion time
// (already forwarded, not in the nursery, or too large for a shared
// cell), the collector falls back to the next-ranked field.
type RankedAdvisor interface {
	Advisor
	// RankedFields returns cl's candidate reference fields hottest
	// first, with their placement gaps.
	RankedFields(cl *classfile.Class) []RankedField
}

// RankedField is one co-allocation candidate.
type RankedField struct {
	Field *classfile.Field
	Gap   uint64
}

// Config sizes the collector.
type Config struct {
	// HeapLimit is the total heap budget in bytes (nursery + mature +
	// LOS), the knob the paper sweeps from 1x to 4x the minimum.
	HeapLimit uint64
	// MinNursery and MaxNursery bound the Appel-style nursery.
	MinNursery uint64
	MaxNursery uint64
	// PerObjectCycles is the bookkeeping cost charged per object
	// processed during tracing (on top of the real memory traffic).
	PerObjectCycles uint64
}

// DefaultConfig returns a config with the given heap limit.
func DefaultConfig(heapLimit uint64) Config {
	return Config{
		HeapLimit:       heapLimit,
		MinNursery:      256 * 1024,
		MaxNursery:      1024 * 1024,
		PerObjectCycles: 12,
	}
}

// Stats describes collector activity.
type Stats struct {
	MinorGCs        uint64
	MajorGCs        uint64
	PromotedObjects uint64
	PromotedBytes   uint64
	CoallocPairs    uint64 // §6.3 "number of co-allocated objects"
	CoallocBytes    uint64
	SweptCells      uint64
	GCCycles        uint64 // simulated cycles spent collecting
	BarrierRecords  uint64 // remembered-set insertions
	Fragmentation   float64
}

// Collector is the GenMS policy.
type Collector struct {
	vm  *runtime.VM
	cfg Config

	nursery *heap.BumpSpace
	mature  *freelist.Allocator
	los     *heap.LargeObjectSpace

	remset []uint64
	// pairs maps a co-allocated cell's parent address to the child
	// address inside the same cell, for sweeping.
	pairs map[uint64]uint64
	// ranges records every co-allocated cell for address
	// classification (sorted by start; rebuilt lazily after inserts).
	ranges      []pairRange
	rangesDirty bool

	advisor Advisor

	// obs, when non-nil, receives EvGCStart/EvGCEnd events and
	// "gc.minor"/"gc.major" phase timings per collection (nil-gated).
	obs *obs.Observer

	stats Stats
	queue []uint64
}

// New wires a GenMS collector into the VM (installs the write barrier).
func New(vm *runtime.VM, cfg Config) *Collector {
	c := &Collector{
		vm:      vm,
		cfg:     cfg,
		nursery: heap.NewBumpSpace("nursery", heap.NurseryBase, heap.NurseryEnd),
		mature:  freelist.New(heap.MatureBase, heap.MatureEnd),
		los:     heap.NewLOS(heap.LOSBase, heap.LOSEnd),
		pairs:   make(map[uint64]uint64),
	}
	c.resizeNursery()
	vm.CPU.Barrier = c.barrier
	vm.Collector = c
	return c
}

// SetAdvisor installs (or removes) the co-allocation advisor.
func (c *Collector) SetAdvisor(a Advisor) { c.advisor = a }

// SetObserver attaches the observability layer: the collector's
// counters are registered as sampled counters and every collection is
// traced with start/end events and a phase timing. Passing nil
// detaches.
func (c *Collector) SetObserver(o *obs.Observer) {
	c.obs = o
	if o == nil {
		return
	}
	o.RegisterSampled("gc.minor", func() uint64 { return c.stats.MinorGCs })
	o.RegisterSampled("gc.major", func() uint64 { return c.stats.MajorGCs })
	o.RegisterSampled("gc.promoted_objects", func() uint64 { return c.stats.PromotedObjects })
	o.RegisterSampled("gc.promoted_bytes", func() uint64 { return c.stats.PromotedBytes })
	o.RegisterSampled("gc.coalloc_pairs", func() uint64 { return c.stats.CoallocPairs })
	o.RegisterSampled("gc.coalloc_bytes", func() uint64 { return c.stats.CoallocBytes })
	o.RegisterSampled("gc.swept_cells", func() uint64 { return c.stats.SweptCells })
	o.RegisterSampled("gc.cycles", func() uint64 { return c.stats.GCCycles })
	o.RegisterSampled("gc.barrier_records", func() uint64 { return c.stats.BarrierRecords })
}

// gcGen values for EvGCStart/EvGCEnd Arg0.
const (
	genMinor = 0
	genMajor = 1
)

// pairRange describes one co-allocated cell for address classification.
type pairRange struct {
	start, end uint64
	gapped     bool
}

// ClassifyAddr reports whether addr falls inside a co-allocated cell
// and whether that cell used a gapped placement. The monitor uses this
// to attribute sampled misses to placement variants (§5.3: assessing
// the effect of individual optimization decisions).
func (c *Collector) ClassifyAddr(addr uint64) (coalloced, gapped bool) {
	if c.rangesDirty {
		sort.Slice(c.ranges, func(i, j int) bool { return c.ranges[i].start < c.ranges[j].start })
		c.rangesDirty = false
	}
	i := sort.Search(len(c.ranges), func(i int) bool { return c.ranges[i].end > addr })
	if i < len(c.ranges) && addr >= c.ranges[i].start {
		return true, c.ranges[i].gapped
	}
	return false, false
}

// Name implements runtime.Collector.
func (c *Collector) Name() string { return "GenMS" }

// HeapLimit implements runtime.Collector.
func (c *Collector) HeapLimit() uint64 { return c.cfg.HeapLimit }

// Collections implements runtime.Collector.
func (c *Collector) Collections() (minor, major uint64) {
	return c.stats.MinorGCs, c.stats.MajorGCs
}

// Stats returns a snapshot including current fragmentation.
func (c *Collector) Stats() Stats {
	s := c.stats
	s.Fragmentation = c.mature.Stats().InternalFragmentation()
	return s
}

// MatureUsedBytes returns live-cell bytes in the mature space.
func (c *Collector) MatureUsedBytes() uint64 { return c.mature.UsedBytes() }

// barrier is the reference-store write barrier: remember slots outside
// the nursery that point into it.
func (c *Collector) barrier(slot, value uint64) {
	if heap.InImmortal(slot) && (heap.InNursery(value) || heap.InMature(value) || heap.InLOS(value)) {
		// Immortal objects are immutable after setup by design
		// (DESIGN.md §7): the collectors do not scan the immortal
		// space, so such a store would create an untraced edge.
		panic(fmt.Sprintf("genms: reference store into immortal object (slot %#x <- %#x)", slot, value))
	}
	if heap.InNursery(value) && !heap.InNursery(slot) {
		c.remset = append(c.remset, slot)
		c.stats.BarrierRecords++
		c.vm.CPU.AddCycles(4)
	}
}

// Alloc implements runtime.Collector.
func (c *Collector) Alloc(size uint64) uint64 {
	if size > freelist.MaxCellSize {
		return c.allocLarge(size)
	}
	if a := c.nursery.Alloc(size); a != 0 {
		return a
	}
	c.MinorGC()
	if a := c.nursery.Alloc(size); a != 0 {
		return a
	}
	// The nursery could not be regrown; the heap is full.
	return 0
}

func (c *Collector) allocLarge(size uint64) uint64 {
	need := (size + heap.LOSPageSize - 1) &^ (heap.LOSPageSize - 1)
	if !c.budgetFits(need) {
		c.MinorGC()
		c.MajorGC()
		if !c.budgetFits(need) {
			return 0
		}
	}
	return c.los.Alloc(size)
}

func (c *Collector) budgetFits(extra uint64) bool {
	return c.usedBudget()+extra+c.cfg.MinNursery <= c.cfg.HeapLimit
}

// usedBudget charges claimed mature blocks (fragmentation counts
// against the budget, §6.3) plus live LOS pages.
func (c *Collector) usedBudget() uint64 {
	return c.mature.FootprintBytes() + c.los.Used()
}

// resizeNursery applies the Appel policy: the nursery gets half the
// free budget, clamped to [MinNursery, MaxNursery]. It returns false
// if even MinNursery does not fit.
func (c *Collector) resizeNursery() bool {
	used := c.usedBudget()
	if used >= c.cfg.HeapLimit {
		return false
	}
	n := (c.cfg.HeapLimit - used) / 2
	if n > c.cfg.MaxNursery {
		n = c.cfg.MaxNursery
	}
	if n < c.cfg.MinNursery {
		if c.cfg.HeapLimit-used < c.cfg.MinNursery {
			return false
		}
		n = c.cfg.MinNursery
	}
	if heap.NurseryBase+n > heap.NurseryEnd {
		n = heap.NurseryEnd - heap.NurseryBase
	}
	c.nursery.SetSoftLimit(n &^ 7)
	return true
}

// MinorGC evacuates the nursery: all survivors are promoted into the
// mature space, applying co-allocation along the way (§5.4). It may
// escalate to a major collection when the budget runs low.
func (c *Collector) MinorGC() {
	start := c.vm.CPU.Cycles()
	c.stats.MinorGCs++
	if c.obs != nil {
		c.obs.Emit(obs.EvGCStart, start, genMinor, 0, 0)
		c.obs.PhaseBegin("gc.minor", start)
	}
	vm := c.vm

	c.queue = c.queue[:0]

	// Roots: thread stacks and registers.
	roots := vm.CollectRoots()
	for _, r := range roots {
		v := vm.RootGet(r)
		if heap.InNursery(v) {
			vm.RootSet(r, c.promote(v))
		}
	}
	// Remembered set: mature/LOS/immortal slots that point into the
	// nursery.
	for _, slot := range c.remset {
		v := vm.CPU.LoadWord(slot)
		if heap.InNursery(v) {
			vm.CPU.StoreWord(slot, c.promote(v))
		}
	}
	c.remset = c.remset[:0]

	// Transitive closure over the promoted objects.
	for len(c.queue) > 0 {
		obj := c.queue[len(c.queue)-1]
		c.queue = c.queue[:len(c.queue)-1]
		vm.CPU.AddCycles(c.cfg.PerObjectCycles)
		vm.ForEachRef(obj, func(slot uint64) {
			v := vm.CPU.LoadWord(slot)
			if heap.InNursery(v) {
				vm.CPU.StoreWord(slot, c.promote(v))
			}
		})
	}

	c.nursery.Reset()
	c.stats.GCCycles += c.vm.CPU.Cycles() - start
	if c.obs != nil {
		end := c.vm.CPU.Cycles()
		c.obs.Emit(obs.EvGCEnd, end, genMinor, end-start, 0)
		c.obs.PhaseEnd("gc.minor", end)
	}

	if !c.resizeNursery() {
		c.MajorGC()
		if !c.resizeNursery() {
			// Even a major collection could not free enough budget:
			// hand out whatever remains, or close the nursery so the
			// next allocation reports OOM.
			rest := uint64(0)
			if c.cfg.HeapLimit > c.usedBudget() {
				rest = (c.cfg.HeapLimit - c.usedBudget()) &^ 7
			}
			if rest < 4096 {
				rest = 0
			}
			c.nursery.SetSoftLimit(rest)
		}
	}
}

// promote copies a nursery object into the mature space (or, with a
// hot child, both objects into one cell) and returns the new address.
func (c *Collector) promote(obj uint64) uint64 {
	vm := c.vm
	if to, ok := vm.Forwarded(obj); ok {
		return to
	}
	cl := vm.ClassOf(obj)
	size := vm.SizeOf(obj)

	// Co-allocation (§5.4): if the class has a hot reference field and
	// the child is an un-promoted nursery object, request one cell for
	// both so they land on the same cache line. Advisors implementing
	// RankedAdvisor supply the full sorted candidate list; plain
	// advisors supply just the hottest field.
	if c.advisor != nil && !cl.IsArray {
		var candidates []RankedField
		if ra, ok := c.advisor.(RankedAdvisor); ok {
			candidates = ra.RankedFields(cl)
		} else if f, gap := c.advisor.HottestField(cl); f != nil {
			candidates = []RankedField{{Field: f, Gap: gap}}
		}
		for _, cand := range candidates {
			f, gap := cand.Field, cand.Gap
			child := vm.CPU.LoadWord(obj + f.Offset)
			if !heap.InNursery(child) {
				continue
			}
			if _, fwd := vm.Forwarded(child); fwd {
				continue
			}
			childSize := vm.SizeOf(child)
			total := size + gap + childSize
			if total > freelist.MaxCellSize {
				continue
			}
			cell := c.matureAlloc(total)
			if cell == 0 {
				break
			}
			childDst := cell + size + gap
			vm.CopyObject(cell, obj, size)
			vm.SetForwarding(obj, cell)
			vm.CopyObject(childDst, child, childSize)
			vm.SetForwarding(child, childDst)
			c.pairs[cell] = childDst
			c.ranges = append(c.ranges, pairRange{start: cell, end: cell + total, gapped: gap > 0})
			c.rangesDirty = true
			c.stats.CoallocPairs++
			c.stats.CoallocBytes += total
			c.stats.PromotedObjects += 2
			c.stats.PromotedBytes += size + childSize
			c.advisor.CoallocationPerformed(f, gap)
			c.queue = append(c.queue, cell, childDst)
			return cell
		}
	}

	dst := c.matureAlloc(size)
	if dst == 0 {
		panic(fmt.Sprintf("genms: mature space exhausted promoting %d bytes", size))
	}
	vm.CopyObject(dst, obj, size)
	vm.SetForwarding(obj, dst)
	c.stats.PromotedObjects++
	c.stats.PromotedBytes += size
	c.queue = append(c.queue, dst)
	return dst
}

func (c *Collector) matureAlloc(size uint64) uint64 {
	if a := c.mature.Alloc(size); a != 0 {
		return a
	}
	return 0
}

// MajorGC marks the whole mature and large-object population from the
// roots and sweeps dead cells back onto the free lists. Mature objects
// are never moved (§5.1: non-moving mark-sweep, better space
// efficiency, which co-allocation compensates for locality).
func (c *Collector) MajorGC() {
	start := c.vm.CPU.Cycles()
	c.stats.MajorGCs++
	if c.obs != nil {
		c.obs.Emit(obs.EvGCStart, start, genMajor, 0, 0)
		c.obs.PhaseBegin("gc.major", start)
	}
	vm := c.vm

	// Mark phase.
	var stack []uint64
	mark := func(obj uint64) {
		if !heap.InMature(obj) && !heap.InLOS(obj) {
			return
		}
		fl := vm.FlagsOf(obj)
		if fl&classfile.FlagMark != 0 {
			return
		}
		vm.SetFlags(obj, fl|classfile.FlagMark)
		stack = append(stack, obj)
	}
	for _, r := range vm.CollectRoots() {
		mark(vm.RootGet(r))
	}
	// Remembered slots live in mature objects that may otherwise be
	// unmarked yet; their contents are nursery refs (none right after a
	// minor GC) — nothing extra to do here because MajorGC always runs
	// with an empty nursery.
	for len(stack) > 0 {
		obj := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		vm.CPU.AddCycles(c.cfg.PerObjectCycles)
		vm.ForEachRef(obj, func(slot uint64) {
			mark(vm.CPU.LoadWord(slot))
		})
	}

	// Sweep the free-list space. A co-allocated cell survives if either
	// occupant is live (the paper's internal-fragmentation trade-off).
	freedPairs := make(map[uint64]bool)
	swept := c.mature.Sweep(func(cell uint64, cellSize uint64) bool {
		vm.CPU.AddCycles(2)
		live := c.clearMark(cell)
		if child, ok := c.pairs[cell]; ok {
			childLive := c.clearMark(child)
			if !live && !childLive {
				delete(c.pairs, cell)
				freedPairs[cell] = true
				return false
			}
			return true
		}
		return live
	})
	if len(freedPairs) > 0 {
		kept := c.ranges[:0]
		for _, r := range c.ranges {
			if !freedPairs[r.start] {
				kept = append(kept, r)
			}
		}
		c.ranges = kept
		c.rangesDirty = true
	}
	c.stats.SweptCells += uint64(swept)

	// Sweep the large-object space.
	for _, obj := range c.los.Objects() {
		if !c.clearMark(obj) {
			c.los.Free(obj)
		}
	}

	c.stats.GCCycles += c.vm.CPU.Cycles() - start
	if c.obs != nil {
		end := c.vm.CPU.Cycles()
		c.obs.Emit(obs.EvGCEnd, end, genMajor, end-start, 0)
		c.obs.PhaseEnd("gc.major", end)
	}
}

// clearMark clears and returns the mark bit of the object at addr.
func (c *Collector) clearMark(addr uint64) bool {
	fl := c.vm.FlagsOf(addr)
	if fl&classfile.FlagMark == 0 {
		return false
	}
	c.vm.SetFlags(addr, fl&^classfile.FlagMark)
	return true
}

// Pairs returns a snapshot of the live co-allocated cells as a map
// from parent address to child address (tests and diagnostics).
func (c *Collector) Pairs() map[uint64]uint64 {
	out := make(map[uint64]uint64, len(c.pairs))
	for k, v := range c.pairs {
		out[k] = v
	}
	return out
}

// NurserySize returns the current nursery capacity (diagnostics).
func (c *Collector) NurserySize() uint64 { return c.nursery.SoftSize() }

// FreeListStats exposes the mature allocator statistics.
func (c *Collector) FreeListStats() freelist.Stats { return c.mature.Stats() }
