package genms_test

import (
	"fmt"
	"math/rand"
	"testing"

	"hpmvm/internal/vm/bytecode"
	"hpmvm/internal/vm/classfile"
	"hpmvm/internal/vm/vmtest"
)

// GC fuzzing: random object-graph mutation sequences are generated in
// Go, emitted as straight-line bytecode, and mirrored by a direct Go
// interpretation of the same sequence. A small heap forces many
// collections mid-sequence; any divergence in the final graph checksum
// means the collectors (or compilers) corrupted the graph.

type fuzzOp struct {
	kind    int // 0=new, 1=link-next, 2=link-other, 3=move, 4=clear, 5=churn, 6=setval
	a, b, c int
}

const fuzzRoots = 12

func genOps(r *rand.Rand, n int) []fuzzOp {
	ops := make([]fuzzOp, n)
	for i := range ops {
		ops[i] = fuzzOp{
			kind: r.Intn(7),
			a:    r.Intn(fuzzRoots),
			b:    r.Intn(fuzzRoots),
			c:    r.Intn(1000) + 1,
		}
	}
	return ops
}

// goMirror executes the sequence over real Go objects.
type goNode struct {
	next, other *goNode
	val         int64
}

func goMirror(ops []fuzzOp) int64 {
	roots := make([]*goNode, fuzzRoots)
	for _, op := range ops {
		switch op.kind {
		case 0:
			roots[op.a] = &goNode{val: int64(op.c)}
		case 1:
			if roots[op.a] != nil {
				roots[op.a].next = roots[op.b]
			}
		case 2:
			if roots[op.a] != nil {
				roots[op.a].other = roots[op.b]
			}
		case 3:
			roots[op.a] = roots[op.b]
		case 4:
			roots[op.a] = nil
		case 5:
			// churn: no visible effect
		case 6:
			if roots[op.a] != nil {
				roots[op.a].val = int64(op.c)
			}
		}
	}
	var sum int64
	for _, root := range roots {
		n := root
		for step := 0; step < 40 && n != nil; step++ {
			sum += n.val
			if step%3 == 2 {
				n = n.other
			} else {
				n = n.next
			}
		}
	}
	return sum
}

// emitProgram turns the sequence into bytecode.
func emitProgram(u *classfile.Universe, ops []fuzzOp) *classfile.Method {
	node := u.DefineClass("FNode", nil)
	fNext := u.AddField(node, "next", classfile.KindRef)
	fOther := u.AddField(node, "other", classfile.KindRef)
	fVal := u.AddField(node, "val", classfile.KindInt)

	cl := u.DefineClass("FuzzMain", nil)
	main := u.AddMethod(cl, "main", false, nil, classfile.KindVoid)
	b := bytecode.NewBuilder(u, main)
	b.Local("roots", classfile.KindRef)
	b.Local("t", classfile.KindRef)
	b.Local("n", classfile.KindRef)
	b.Local("i", classfile.KindInt)
	b.Local("step", classfile.KindInt)
	b.Local("sum", classfile.KindInt)
	b.Const(fuzzRoots).NewArray(u.RefArray).Store("roots")

	loadRoot := func(idx int) {
		b.Load("roots").Const(int64(idx)).ALoad(classfile.KindRef)
	}
	for i, op := range ops {
		lbl := fmt.Sprintf("op%d", i)
		switch op.kind {
		case 0:
			b.New(node).Store("t")
			b.Load("t").Const(int64(op.c)).PutField(fVal)
			b.Load("roots").Const(int64(op.a)).Load("t").AStore(classfile.KindRef)
		case 1, 2:
			f := fNext
			if op.kind == 2 {
				f = fOther
			}
			loadRoot(op.a)
			b.Store("t")
			b.Load("t").IfNull(lbl)
			b.Load("t")
			loadRoot(op.b)
			b.PutField(f)
			b.Label(lbl)
		case 3:
			b.Load("roots").Const(int64(op.a))
			loadRoot(op.b)
			b.AStore(classfile.KindRef)
		case 4:
			b.Load("roots").Const(int64(op.a)).Null().AStore(classfile.KindRef)
		case 5:
			// churn: op.c garbage nodes
			b.Const(0).Store("i")
			b.Label(lbl + "c")
			b.Load("i").Const(int64(op.c)).If(bytecode.OpIfGE, lbl)
			b.New(node).Pop()
			b.Inc("i", 1)
			b.Goto(lbl + "c")
			b.Label(lbl)
		case 6:
			loadRoot(op.a)
			b.Store("t")
			b.Load("t").IfNull(lbl)
			b.Load("t").Const(int64(op.c)).PutField(fVal)
			b.Label(lbl)
		}
	}

	// Checksum: bounded alternating walk from every root.
	b.Const(0).Store("i")
	b.Label("chk")
	b.Load("i").Const(fuzzRoots).If(bytecode.OpIfGE, "emit")
	b.Load("roots").Load("i").ALoad(classfile.KindRef).Store("n")
	b.Const(0).Store("step")
	b.Label("walk")
	b.Load("step").Const(40).If(bytecode.OpIfGE, "next")
	b.Load("n").IfNull("next")
	b.Load("sum").Load("n").GetField(fVal).Add().Store("sum")
	b.Load("step").Const(3).Rem().Const(2).If(bytecode.OpIfNE, "viaNext")
	b.Load("n").GetField(fOther).Store("n")
	b.Goto("stepinc")
	b.Label("viaNext")
	b.Load("n").GetField(fNext).Store("n")
	b.Label("stepinc")
	b.Inc("step", 1)
	b.Goto("walk")
	b.Label("next")
	b.Inc("i", 1)
	b.Goto("chk")
	b.Label("emit")
	b.Load("sum").Result()
	b.Return()
	b.MustBuild()
	return main
}

func TestGCFuzzRandomGraphs(t *testing.T) {
	trials := 8
	opsPerTrial := 400
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		r := rand.New(rand.NewSource(int64(1000 + trial)))
		ops := genOps(r, opsPerTrial)
		want := goMirror(ops)

		for _, cfg := range []struct {
			name    string
			level   int
			genCopy bool
		}{
			{"baseline-genms", 0, false},
			{"opt2-genms", 2, false},
			{"opt2-gencopy", 2, true},
		} {
			u := classfile.NewUniverse()
			main := emitProgram(u, ops)
			u.Layout()
			opts := vmtest.Options{Heap: 1 << 20, GenCopy: cfg.genCopy}
			if cfg.level > 0 {
				opts.Plan = vmtest.AllOpt(u, cfg.level)
			}
			got, vm, err := vmtest.Run(u, main, opts)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, cfg.name, err)
			}
			if got[0] != want {
				t.Fatalf("trial %d %s: checksum %d, want %d", trial, cfg.name, got[0], want)
			}
			minor, _ := vm.Collector.Collections()
			if trial == 0 && minor == 0 {
				t.Logf("trial %d %s: warning: no GC occurred", trial, cfg.name)
			}
		}
	}
}
