package genms_test

import (
	"strings"
	"testing"

	"hpmvm/internal/gc/genms"
	"hpmvm/internal/gc/heap"
	"hpmvm/internal/hw/cache"
	"hpmvm/internal/vm/bytecode"
	"hpmvm/internal/vm/classfile"
	"hpmvm/internal/vm/runtime"
	"hpmvm/internal/vm/vmtest"
)

const (
	kInt  = classfile.KindInt
	kRef  = classfile.KindRef
	kVoid = classfile.KindVoid
)

// treeProgram builds a complete binary tree of the given depth whose
// leaves hold sequential values, churns garbage to force collections,
// then emits the tree sum. Sum of 2^depth leaves holding 1..2^depth.
func treeProgram(u *classfile.Universe, depth, churn int64) (*classfile.Method, int64) {
	node := u.DefineClass("Node", nil)
	fl := u.AddField(node, "l", kRef)
	fr := u.AddField(node, "r", kRef)
	fv := u.AddField(node, "v", kInt)

	// build(depth, rnd) — rnd is a value counter threaded through via a
	// one-element int holder to keep the bytecode simple: instead we
	// use a static counter object.
	counter := u.DefineClass("Counter", nil)
	fc := u.AddField(counter, "n", kInt)

	build := u.AddMethod(node, "build", false, []classfile.Kind{kInt, kRef}, kRef)
	b := bytecode.NewBuilder(u, build)
	b.BindArg(0, "d").BindArg(1, "ctr")
	b.Local("n", kRef)
	b.New(node).Store("n")
	b.Load("d").Const(0).If(bytecode.OpIfGT, "inner")
	b.Load("ctr").Load("ctr").GetField(fc).Const(1).Add().PutField(fc)
	b.Load("n").Load("ctr").GetField(fc).PutField(fv)
	b.Load("n").ReturnVal()
	b.Label("inner")
	b.Load("n").Load("d").Const(1).Sub().Load("ctr").InvokeStatic(build).PutField(fl)
	b.Load("n").Load("d").Const(1).Sub().Load("ctr").InvokeStatic(build).PutField(fr)
	b.Load("n").ReturnVal()
	b.MustBuild()

	sum := u.AddMethod(node, "sum", false, []classfile.Kind{kRef}, kInt)
	b = bytecode.NewBuilder(u, sum)
	b.BindArg(0, "n")
	b.Load("n").GetField(fl).IfNonNull("inner")
	b.Load("n").GetField(fv).ReturnVal()
	b.Label("inner")
	b.Load("n").GetField(fl).InvokeStatic(sum)
	b.Load("n").GetField(fr).InvokeStatic(sum)
	b.Add().ReturnVal()
	b.MustBuild()

	mainCl := u.DefineClass("Main", nil)
	main := u.AddMethod(mainCl, "main", false, nil, kVoid)
	b = bytecode.NewBuilder(u, main)
	b.Local("root", kRef)
	b.Local("ctr", kRef)
	b.Local("i", kInt)
	b.New(counter).Store("ctr")
	b.Const(depth).Load("ctr").InvokeStatic(build).Store("root")
	b.Label("churn")
	b.Load("i").Const(churn).If(bytecode.OpIfGE, "done")
	b.New(node).Pop()
	b.Inc("i", 1)
	b.Goto("churn")
	b.Label("done")
	b.Load("root").InvokeStatic(sum).Result()
	b.Return()
	b.MustBuild()

	leaves := int64(1) << uint(depth)
	return main, leaves * (leaves + 1) / 2
}

func TestObjectGraphSurvivesCollections(t *testing.T) {
	u := classfile.NewUniverse()
	main, want := treeProgram(u, 10, 200_000) // ~2K leaves, ~6.4MB churn
	u.Layout()
	got, vm, err := vmtest.Run(u, main, vmtest.Options{Heap: 4 << 20, Plan: vmtest.AllOpt(u, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != want {
		t.Fatalf("tree sum = %d, want %d", got[0], want)
	}
	minor, _ := vm.Collector.Collections()
	if minor < 2 {
		t.Errorf("minor GCs = %d, want several", minor)
	}
}

func TestMajorGCFreesGarbage(t *testing.T) {
	// Repeatedly build trees, dropping the old one: without major GCs
	// the mature space would exceed the budget.
	u := classfile.NewUniverse()
	node := u.DefineClass("Node", nil)
	fl := u.AddField(node, "l", kRef)
	u.AddField(node, "v", kInt)
	mainCl := u.DefineClass("Main", nil)
	main := u.AddMethod(mainCl, "main", false, nil, kVoid)
	b := bytecode.NewBuilder(u, main)
	b.Local("head", kRef)
	b.Local("i", kInt)
	b.Local("j", kInt)
	b.Local("round", kInt)
	b.Label("rounds")
	b.Load("round").Const(8).If(bytecode.OpIfGE, "done")
	// Build a ~2 MB list (larger than the nursery) so each round
	// promotes into the mature space, then drop it.
	b.Null().Store("head")
	b.Const(0).Store("i")
	b.Label("mk")
	b.Load("i").Const(60_000).If(bytecode.OpIfGE, "next")
	b.New(node).Dup().Load("head").PutField(fl).Store("head")
	b.Inc("i", 1)
	b.Goto("mk")
	b.Label("next")
	b.Inc("round", 1)
	b.Goto("rounds")
	b.Label("done")
	b.Const(1).Result()
	b.Return()
	b.MustBuild()
	u.Layout()
	// 8 rounds x ~1MB live; a 6 MB heap only survives if majors free
	// the dropped lists.
	_, vm, err := vmtest.Run(u, main, vmtest.Options{Heap: 6 << 20, Plan: vmtest.AllOpt(u, 2)})
	if err != nil {
		t.Fatal(err)
	}
	_, major := vm.Collector.Collections()
	if major == 0 {
		t.Error("expected major collections")
	}
}

func TestOutOfMemory(t *testing.T) {
	u := classfile.NewUniverse()
	main, _ := treeProgram(u, 15, 0) // ~2 MB of live tree cannot fit in 1 MB
	u.Layout()
	_, vm, err := vmtest.Run(u, main, vmtest.Options{Heap: 1 << 20})
	if err == nil {
		t.Fatal("expected OOM")
	}
	if vm.Failure() == nil || !strings.Contains(vm.Failure().Error(), "out of memory") {
		t.Errorf("failure = %v", vm.Failure())
	}
}

func TestWriteBarrierKeepsNurseryChildAlive(t *testing.T) {
	// An old object points to a new nursery object with no stack
	// reference; only the remembered set can keep it alive.
	u := classfile.NewUniverse()
	node := u.DefineClass("Node", nil)
	fref := u.AddField(node, "ref", kRef)
	fv := u.AddField(node, "v", kInt)
	mainCl := u.DefineClass("Main", nil)
	main := u.AddMethod(mainCl, "main", false, nil, kVoid)
	b := bytecode.NewBuilder(u, main)
	b.Local("old", kRef)
	b.Local("i", kInt)
	b.New(node).Store("old")
	// Promote "old" by churning past the nursery.
	b.Label("churn1")
	b.Load("i").Const(60_000).If(bytecode.OpIfGE, "link")
	b.New(node).Pop()
	b.Inc("i", 1)
	b.Goto("churn1")
	b.Label("link")
	// old (now mature) gets a fresh nursery child; no other reference.
	b.New(node).Const(777).PutField(fv) // warm-up unrelated store
	b.Load("old").New(node).PutField(fref)
	b.Load("old").GetField(fref).Const(42).PutField(fv)
	// Churn again: the child survives only through the remembered set.
	b.Const(0).Store("i")
	b.Label("churn2")
	b.Load("i").Const(60_000).If(bytecode.OpIfGE, "check")
	b.New(node).Pop()
	b.Inc("i", 1)
	b.Goto("churn2")
	b.Label("check")
	b.Load("old").GetField(fref).GetField(fv).Result()
	b.Return()
	b.MustBuild()
	u.Layout()
	got, vm, err := vmtest.Run(u, main, vmtest.Options{Heap: 3 << 20, Plan: vmtest.AllOpt(u, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 42 {
		t.Fatalf("child value = %d, want 42", got[0])
	}
	minor, _ := vm.Collector.Collections()
	if minor < 2 {
		t.Errorf("minor GCs = %d; the barrier path was not exercised", minor)
	}
}

// alwaysAdvisor co-allocates the given field for every instance.
type alwaysAdvisor struct {
	field *classfile.Field
	gap   uint64
	count int
}

func (a *alwaysAdvisor) HottestField(cl *classfile.Class) (*classfile.Field, uint64) {
	if cl == a.field.Class {
		return a.field, a.gap
	}
	return nil, 0
}

func (a *alwaysAdvisor) CoallocationPerformed(f *classfile.Field, gap uint64) { a.count++ }

// pairProgram allocates parents each holding a fresh child, with churn
// to force promotion, and checks child values at the end.
func pairProgram(u *classfile.Universe) (*classfile.Method, *classfile.Field, *classfile.Class, *classfile.Class) {
	parent := u.DefineClass("Parent", nil)
	fchild := u.AddField(parent, "child", kRef)
	u.AddField(parent, "pad", kInt)
	child := u.DefineClass("Child", nil)
	fv := u.AddField(child, "v", kInt)

	mainCl := u.DefineClass("Main", nil)
	main := u.AddMethod(mainCl, "main", false, nil, kVoid)
	b := bytecode.NewBuilder(u, main)
	b.Local("keep", kRef) // ref[] of parents
	b.Local("i", kInt)
	b.Local("p", kRef)
	b.Local("sum", kInt)
	b.Const(2000).NewArray(u.RefArray).Store("keep")
	b.Label("mk")
	b.Load("i").Const(2000).If(bytecode.OpIfGE, "churn")
	// child first, then parent (allocation order of "new Parent(new Child())")
	b.New(child).Store("p")
	b.Load("p").Load("i").PutField(fv)
	b.New(parent).Dup().Load("p").PutField(fchild).Store("p")
	b.Load("keep").Load("i").Load("p").AStore(kRef)
	b.Inc("i", 1)
	b.Goto("mk")
	b.Label("churn")
	b.Const(0).Store("i")
	b.Label("c2")
	b.Load("i").Const(80_000).If(bytecode.OpIfGE, "verify")
	b.New(child).Pop()
	b.Inc("i", 1)
	b.Goto("c2")
	b.Label("verify")
	b.Const(0).Store("i")
	b.Label("v2")
	b.Load("i").Const(2000).If(bytecode.OpIfGE, "emit")
	b.Load("sum").Load("keep").Load("i").ALoad(kRef).GetField(fchild).GetField(fv).Add().Store("sum")
	b.Inc("i", 1)
	b.Goto("v2")
	b.Label("emit")
	b.Load("sum").Result()
	b.Return()
	b.MustBuild()
	return main, fchild, parent, child
}

func runPairProgram(t *testing.T, gap uint64) (*runtime.VM, *genms.Collector, *alwaysAdvisor, *classfile.Class) {
	t.Helper()
	u := classfile.NewUniverse()
	main, fchild, parent, _ := pairProgram(u)
	u.Layout()

	vm := runtime.New(u, cache.DefaultP4())
	col := genms.New(vm, genms.DefaultConfig(4<<20))
	adv := &alwaysAdvisor{field: fchild, gap: gap}
	col.SetAdvisor(adv)
	vm.BuildDispatch()
	if err := vm.CompileAll(vmtest.AllOpt(u, 2)); err != nil {
		t.Fatal(err)
	}
	if err := vm.Start(main); err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(2_000_000_000); err != nil {
		t.Fatal(err)
	}
	want := int64(2000 * 1999 / 2)
	if got := vm.Results(); len(got) != 1 || got[0] != want {
		t.Fatalf("results = %v, want [%d]", got, want)
	}
	return vm, col, adv, parent
}

func TestCoallocationAdjacency(t *testing.T) {
	vm, col, adv, parent := runPairProgram(t, 0)
	pairs := col.Pairs()
	if len(pairs) == 0 || adv.count == 0 {
		t.Fatalf("no co-allocation happened (pairs=%d advisor=%d)", len(pairs), adv.count)
	}
	hier := vm.Hier
	for p, c := range pairs {
		if vm.ClassOf(p) != parent {
			t.Fatalf("pair parent at %#x has class %s", p, vm.ClassOf(p).Name)
		}
		if c != p+vm.SizeOf(p) {
			t.Fatalf("child at %#x not adjacent to parent %#x (size %d)", c, p, vm.SizeOf(p))
		}
		if !hier.SameLine(p, c) {
			t.Fatalf("pair %#x/%#x not on one cache line", p, c)
		}
		if co, gapped := col.ClassifyAddr(c + 8); !co || gapped {
			t.Fatalf("ClassifyAddr(%#x) = %v,%v", c+8, co, gapped)
		}
	}
	if co, _ := col.ClassifyAddr(0x9999_0000); co {
		t.Error("ClassifyAddr matched an unrelated address")
	}
	if st := col.Stats(); st.CoallocPairs != uint64(adv.count) {
		t.Errorf("stats pairs %d != advisor count %d", st.CoallocPairs, adv.count)
	}
}

func TestCoallocationGapPlacement(t *testing.T) {
	vm, col, _, _ := runPairProgram(t, 128)
	pairs := col.Pairs()
	if len(pairs) == 0 {
		t.Fatal("no gapped pairs")
	}
	for p, c := range pairs {
		if c != p+vm.SizeOf(p)+128 {
			t.Fatalf("gapped child at %#x, parent %#x size %d", c, p, vm.SizeOf(p))
		}
		if vm.Hier.SameLine(p, c) {
			t.Fatalf("gapped pair %#x/%#x still shares a line", p, c)
		}
		if co, gapped := col.ClassifyAddr(c); !co || !gapped {
			t.Fatalf("ClassifyAddr(%#x) = %v,%v, want gapped", c, co, gapped)
		}
	}
}

func TestNurseryResizesWithHeapPressure(t *testing.T) {
	u := classfile.NewUniverse()
	main, want := treeProgram(u, 9, 100_000)
	u.Layout()
	got, vm, err := vmtest.Run(u, main, vmtest.Options{Heap: 2 << 20, Plan: vmtest.AllOpt(u, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != want {
		t.Fatalf("sum = %d, want %d", got[0], want)
	}
	col := vm.Collector.(*genms.Collector)
	if col.NurserySize() >= 1<<20 {
		t.Errorf("nursery did not shrink under pressure: %d", col.NurserySize())
	}
	if col.MatureUsedBytes() == 0 {
		t.Error("nothing promoted")
	}
}

func TestLargeObjectsGoToLOS(t *testing.T) {
	u := classfile.NewUniverse()
	mainCl := u.DefineClass("Main", nil)
	main := u.AddMethod(mainCl, "main", false, nil, kVoid)
	b := bytecode.NewBuilder(u, main)
	b.Local("a", kRef)
	b.Const(4096).NewArray(u.IntArray).Store("a") // 32 KB + header
	b.Load("a").Const(100).Const(7).AStore(kInt)
	b.Load("a").Const(100).ALoad(kInt).Result()
	b.Return()
	b.MustBuild()
	u.Layout()
	got, vm, err := vmtest.Run(u, main, vmtest.Options{Heap: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 {
		t.Fatalf("LOS array element = %d", got[0])
	}
	// The array's address must be in the LOS region: find it via the
	// runtime object helpers — scan results: instead check allocation
	// stats: one large allocation happened.
	_, bytes := vm.Allocations()
	if bytes < 32*1024 {
		t.Errorf("allocated bytes = %d", bytes)
	}
	_ = heap.LOSBase
}

func TestStoreIntoImmortalPanics(t *testing.T) {
	// Immortal objects are immutable after setup (DESIGN.md §7); a
	// compiled reference store into one must fail fast instead of
	// silently creating an edge the collectors never trace.
	u := classfile.NewUniverse()
	str := u.DefineClass("Konst", nil)
	fref := u.AddField(str, "ref", kRef)
	mainCl := u.DefineClass("Main", nil)
	main := u.AddMethod(mainCl, "main", false, nil, kVoid)
	b := bytecode.NewBuilder(u, main)
	bh := b.RefConst()
	b.LoadConstRef(bh).New(str).PutField(fref)
	b.Return()
	b.MustBuild()
	u.Layout()

	vm := runtime.New(u, cache.DefaultP4())
	genms.New(vm, genms.DefaultConfig(8<<20))
	code := main.Code.(*bytecode.Code)
	code.RefConstAddrs[0] = vm.NewImmortalObject(str)
	vm.BuildDispatch()
	if err := vm.CompileAll(nil); err != nil {
		t.Fatal(err)
	}
	if err := vm.Start(main); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("store into immortal object did not panic")
		}
	}()
	vm.Run(1_000_000)
}

// rankedAdvisor returns a fixed candidate list (hottest first).
type rankedAdvisor struct {
	cands []genms.RankedField
	done  map[string]int
}

func (r *rankedAdvisor) HottestField(cl *classfile.Class) (*classfile.Field, uint64) {
	for _, c := range r.cands {
		if c.Field.Class == cl {
			return c.Field, c.Gap
		}
	}
	return nil, 0
}
func (r *rankedAdvisor) RankedFields(cl *classfile.Class) []genms.RankedField {
	var out []genms.RankedField
	for _, c := range r.cands {
		if c.Field.Class == cl {
			out = append(out, c)
		}
	}
	return out
}
func (r *rankedAdvisor) CoallocationPerformed(f *classfile.Field, gap uint64) {
	if r.done == nil {
		r.done = map[string]int{}
	}
	r.done[f.Name]++
}

func TestRankedFallbackUsesSecondCandidate(t *testing.T) {
	// Parent.big references an over-sized array (ineligible for a
	// shared cell); Parent.small references a small child. The ranked
	// advisor lists big first; the collector must fall back to small
	// (§5.4's sorted per-class candidate list).
	u := classfile.NewUniverse()
	parent := u.DefineClass("RParent", nil)
	fBig := u.AddField(parent, "big", kRef)
	fSmall := u.AddField(parent, "small", kRef)
	child := u.DefineClass("RChild", nil)
	u.AddField(child, "v", kInt)

	mainCl := u.DefineClass("Main", nil)
	main := u.AddMethod(mainCl, "main", false, nil, kVoid)
	b := bytecode.NewBuilder(u, main)
	b.Local("keep", kRef)
	b.Local("i", kInt)
	b.Local("p", kRef)
	b.Const(800).NewArray(u.RefArray).Store("keep")
	b.Label("mk")
	b.Load("i").Const(800).If(bytecode.OpIfGE, "churn")
	b.New(parent).Store("p")
	b.Load("p").Const(600).NewArray(u.IntArray).PutField(fBig) // 4816 B > max cell
	b.Load("p").New(child).PutField(fSmall)
	b.Load("keep").Load("i").Load("p").AStore(kRef)
	b.Inc("i", 1)
	b.Goto("mk")
	b.Label("churn")
	b.Const(0).Store("i")
	b.Label("c2")
	b.Load("i").Const(80_000).If(bytecode.OpIfGE, "done")
	b.New(child).Pop()
	b.Inc("i", 1)
	b.Goto("c2")
	b.Label("done")
	b.Const(1).Result()
	b.Return()
	b.MustBuild()
	u.Layout()

	vm := runtime.New(u, cache.DefaultP4())
	col := genms.New(vm, genms.DefaultConfig(8<<20))
	adv := &rankedAdvisor{cands: []genms.RankedField{{Field: fBig}, {Field: fSmall}}}
	col.SetAdvisor(adv)
	vm.BuildDispatch()
	if err := vm.CompileAll(vmtest.AllOpt(u, 2)); err != nil {
		t.Fatal(err)
	}
	if err := vm.Start(main); err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(2_000_000_000); err != nil {
		t.Fatal(err)
	}
	if adv.done["big"] != 0 {
		t.Errorf("over-sized candidate was paired %d times", adv.done["big"])
	}
	if adv.done["small"] == 0 {
		t.Fatal("fallback candidate never paired")
	}
	if col.Stats().CoallocPairs == 0 {
		t.Fatal("no pairs placed")
	}
}
