package genms

import (
	"sort"

	"hpmvm/internal/snap"
)

// Snapshot/Restore implement snap.Checkpointable for the GenMS
// collector: the three spaces it owns, the remembered set (in
// insertion order — its scan order at the next minor GC), the
// co-allocation pair table and classification ranges, and the
// counters. The VM/advisor/observer wiring is construction-time.

const (
	snapComponent = "gc/genms"
	snapVersion   = 1
)

// Snapshot serializes the collector's mutable state.
func (c *Collector) Snapshot() snap.ComponentState {
	var w snap.Writer
	c.nursery.Encode(&w)
	c.mature.Encode(&w)
	c.los.Encode(&w)
	w.U64(uint64(len(c.remset)))
	for _, slot := range c.remset {
		w.U64(slot)
	}
	parents := make([]uint64, 0, len(c.pairs))
	for p := range c.pairs {
		parents = append(parents, p)
	}
	sort.Slice(parents, func(i, j int) bool { return parents[i] < parents[j] })
	w.U64(uint64(len(parents)))
	for _, p := range parents {
		w.U64(p)
		w.U64(c.pairs[p])
	}
	w.U64(uint64(len(c.ranges)))
	for _, rg := range c.ranges {
		w.U64(rg.start)
		w.U64(rg.end)
		w.Bool(rg.gapped)
	}
	w.Bool(c.rangesDirty)
	st := c.stats
	w.U64(st.MinorGCs)
	w.U64(st.MajorGCs)
	w.U64(st.PromotedObjects)
	w.U64(st.PromotedBytes)
	w.U64(st.CoallocPairs)
	w.U64(st.CoallocBytes)
	w.U64(st.SweptCells)
	w.U64(st.GCCycles)
	w.U64(st.BarrierRecords)
	w.F64(st.Fragmentation)
	return snap.ComponentState{Component: snapComponent, Version: snapVersion, Data: w.Bytes()}
}

// Restore overwrites the collector's mutable state.
func (c *Collector) Restore(st snap.ComponentState) error {
	if err := snap.Check(st, snapComponent, snapVersion); err != nil {
		return err
	}
	r := snap.NewReader(st.Data)
	if err := c.nursery.Decode(r); err != nil {
		return err
	}
	if err := c.mature.Decode(r); err != nil {
		return err
	}
	if err := c.los.Decode(r); err != nil {
		return err
	}
	nRem := r.U64()
	remset := make([]uint64, 0, nRem)
	for i := uint64(0); i < nRem && r.Err() == nil; i++ {
		remset = append(remset, r.U64())
	}
	nPairs := r.U64()
	pairs := make(map[uint64]uint64, nPairs)
	for i := uint64(0); i < nPairs && r.Err() == nil; i++ {
		p := r.U64()
		pairs[p] = r.U64()
	}
	nRanges := r.U64()
	ranges := make([]pairRange, 0, nRanges)
	for i := uint64(0); i < nRanges && r.Err() == nil; i++ {
		var rg pairRange
		rg.start = r.U64()
		rg.end = r.U64()
		rg.gapped = r.Bool()
		ranges = append(ranges, rg)
	}
	rangesDirty := r.Bool()
	var stats Stats
	stats.MinorGCs = r.U64()
	stats.MajorGCs = r.U64()
	stats.PromotedObjects = r.U64()
	stats.PromotedBytes = r.U64()
	stats.CoallocPairs = r.U64()
	stats.CoallocBytes = r.U64()
	stats.SweptCells = r.U64()
	stats.GCCycles = r.U64()
	stats.BarrierRecords = r.U64()
	stats.Fragmentation = r.F64()
	if err := r.Close(); err != nil {
		return err
	}
	c.remset = remset
	c.pairs = pairs
	c.ranges = ranges
	c.rangesDirty = rangesDirty
	c.stats = stats
	c.queue = c.queue[:0]
	return nil
}
