package heap

import "testing"

func TestRegionPredicates(t *testing.T) {
	if !InNursery(NurseryBase) || InNursery(NurseryEnd) {
		t.Error("InNursery bounds wrong")
	}
	if !InMature(MatureBase) || InMature(MatureEnd) {
		t.Error("InMature bounds wrong")
	}
	if !InLOS(LOSBase) || InLOS(LOSBase-1) {
		t.Error("InLOS bounds wrong")
	}
	if !InImmortal(ImmortalBase) {
		t.Error("InImmortal wrong")
	}
	if !InHeap(NurseryBase) || InHeap(0x1234) {
		t.Error("InHeap wrong")
	}
	// The regions must not overlap.
	marks := []struct {
		lo, hi uint64
	}{{ImmortalBase, ImmortalEnd}, {NurseryBase, NurseryEnd}, {MatureBase, MatureEnd}, {LOSBase, LOSEnd}}
	for i := range marks {
		for j := i + 1; j < len(marks); j++ {
			if marks[i].lo < marks[j].hi && marks[j].lo < marks[i].hi {
				t.Fatalf("regions %d and %d overlap", i, j)
			}
		}
	}
}

func TestBumpSpace(t *testing.T) {
	s := NewBumpSpace("t", 0x1000, 0x2000)
	a := s.Alloc(16)
	b := s.Alloc(32)
	if a != 0x1000 || b != 0x1010 {
		t.Errorf("allocs: %#x %#x", a, b)
	}
	if s.Used() != 48 || s.Allocations != 2 {
		t.Errorf("Used=%d Allocations=%d", s.Used(), s.Allocations)
	}
	if !s.Contains(a) || s.Contains(0x1030) {
		t.Error("Contains wrong")
	}
	s.Reset()
	if s.Used() != 0 || s.Contains(a) {
		t.Error("Reset incomplete")
	}
}

func TestBumpSpaceSoftLimit(t *testing.T) {
	s := NewBumpSpace("t", 0x1000, 0x10000)
	s.SetSoftLimit(64)
	if s.SoftSize() != 64 {
		t.Errorf("SoftSize = %d", s.SoftSize())
	}
	if s.Alloc(48) == 0 {
		t.Fatal("alloc within limit failed")
	}
	if s.Alloc(32) != 0 {
		t.Error("alloc beyond soft limit succeeded")
	}
	defer func() {
		if recover() == nil {
			t.Error("soft limit beyond region accepted")
		}
	}()
	s.SetSoftLimit(0x10000)
}

func TestBumpSpaceAlignmentGuard(t *testing.T) {
	s := NewBumpSpace("t", 0x1000, 0x2000)
	defer func() {
		if recover() == nil {
			t.Error("unaligned alloc accepted")
		}
	}()
	s.Alloc(12)
}

func TestLOSAllocFree(t *testing.T) {
	l := NewLOS(0x5000_0000, 0x5010_0000)
	a := l.Alloc(5000) // rounds to 2 pages
	if a != 0x5000_0000 {
		t.Fatalf("first alloc at %#x", a)
	}
	if l.Used() != 8192 {
		t.Errorf("Used = %d", l.Used())
	}
	b := l.Alloc(100)
	if b != a+8192 {
		t.Errorf("second alloc at %#x", b)
	}
	if !l.Contains(a) || l.Contains(a+4096) {
		t.Error("Contains should match base addresses only")
	}
	l.Free(a)
	if l.Used() != 4096 {
		t.Errorf("Used after free = %d", l.Used())
	}
	// First-fit reuse of the freed run.
	c := l.Alloc(4096)
	if c != a {
		t.Errorf("freed run not reused: %#x", c)
	}
}

func TestLOSSplitsRuns(t *testing.T) {
	l := NewLOS(0x5000_0000, 0x5010_0000)
	a := l.Alloc(16384) // 4 pages
	l.Free(a)
	b := l.Alloc(4096) // takes the first page of the freed run
	if b != a {
		t.Errorf("split alloc at %#x", b)
	}
	c := l.Alloc(8192) // fits in the remainder
	if c != a+4096 {
		t.Errorf("remainder alloc at %#x", c)
	}
}

func TestLOSExhaustion(t *testing.T) {
	l := NewLOS(0x5000_0000, 0x5000_2000) // two pages
	if l.Alloc(4096) == 0 || l.Alloc(4096) == 0 {
		t.Fatal("initial allocs failed")
	}
	if l.Alloc(1) != 0 {
		t.Error("exhausted LOS still allocating")
	}
}

func TestLOSObjects(t *testing.T) {
	l := NewLOS(0x5000_0000, 0x5010_0000)
	a := l.Alloc(100)
	b := l.Alloc(100)
	objs := l.Objects()
	if len(objs) != 2 {
		t.Fatalf("Objects = %v", objs)
	}
	seen := map[uint64]bool{}
	for _, o := range objs {
		seen[o] = true
	}
	if !seen[a] || !seen[b] {
		t.Error("Objects missing allocations")
	}
	defer func() {
		if recover() == nil {
			t.Error("double free accepted")
		}
	}()
	l.Free(a)
	l.Free(a)
}

func TestSoftLimitZeroClosesSpace(t *testing.T) {
	// The collectors close the nursery by setting a zero soft limit
	// when the heap budget is exhausted; every allocation must then
	// fail so the OOM surfaces.
	s := NewBumpSpace("t", 0x1000, 0x2000)
	s.SetSoftLimit(0)
	if s.Alloc(8) != 0 {
		t.Fatal("allocation succeeded in a closed space")
	}
	if s.SoftSize() != 0 {
		t.Fatalf("SoftSize = %d", s.SoftSize())
	}
}
