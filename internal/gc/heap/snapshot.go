package heap

import (
	"fmt"
	"sort"

	"hpmvm/internal/snap"
)

// Snapshot encoding helpers for the heap spaces. The spaces are not
// standalone components — the collectors (and the VM, for the immortal
// space) embed them — so they expose Encode/Decode primitives their
// owners compose into a ComponentState rather than implementing
// snap.Checkpointable themselves.

// Encode appends the space's mutable state (soft limit, cursor,
// allocation count) to w. Base/Limit are layout constants validated on
// decode.
func (s *BumpSpace) Encode(w *snap.Writer) {
	w.U64(s.Base)
	w.U64(s.Limit)
	w.U64(s.soft)
	w.U64(s.cursor)
	w.U64(s.Allocations)
}

// Decode restores the space's mutable state from r, verifying it was
// encoded from a space over the same region.
func (s *BumpSpace) Decode(r *snap.Reader) error {
	base := r.U64()
	limit := r.U64()
	soft := r.U64()
	cursor := r.U64()
	allocations := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if base != s.Base || limit != s.Limit {
		return fmt.Errorf("heap: %w: space %s covers [%#x,%#x), snapshot covers [%#x,%#x)",
			snap.ErrDecode, s.Name, s.Base, s.Limit, base, limit)
	}
	if soft < base || soft > limit || cursor < base || cursor > soft {
		return fmt.Errorf("heap: %w: space %s snapshot cursor/soft out of range", snap.ErrDecode, s.Name)
	}
	s.soft = soft
	s.cursor = cursor
	s.Allocations = allocations
	return nil
}

// Encode appends the LOS's mutable state to w: cursor, the free runs in
// list order (first-fit scans in this order, so it is semantically
// significant), and the live-allocation size table in address order.
func (l *LargeObjectSpace) Encode(w *snap.Writer) {
	w.U64(l.Base)
	w.U64(l.Limit)
	w.U64(l.cursor)
	w.U64(uint64(len(l.free)))
	for _, fr := range l.free {
		w.U64(fr.addr)
		w.U64(fr.size)
	}
	w.U64(l.used)
	addrs := make([]uint64, 0, len(l.sizes))
	for a := range l.sizes {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	w.U64(uint64(len(addrs)))
	for _, a := range addrs {
		w.U64(a)
		w.U64(l.sizes[a])
	}
}

// Decode restores the LOS's mutable state from r.
func (l *LargeObjectSpace) Decode(r *snap.Reader) error {
	base := r.U64()
	limit := r.U64()
	cursor := r.U64()
	nFree := r.U64()
	free := make([]run, 0, nFree)
	for i := uint64(0); i < nFree && r.Err() == nil; i++ {
		fr := run{addr: r.U64(), size: r.U64()}
		free = append(free, fr)
	}
	used := r.U64()
	nSizes := r.U64()
	sizes := make(map[uint64]uint64, nSizes)
	for i := uint64(0); i < nSizes && r.Err() == nil; i++ {
		a := r.U64()
		sizes[a] = r.U64()
	}
	if err := r.Err(); err != nil {
		return err
	}
	if base != l.Base || limit != l.Limit {
		return fmt.Errorf("heap: %w: LOS covers [%#x,%#x), snapshot covers [%#x,%#x)",
			snap.ErrDecode, l.Base, l.Limit, base, limit)
	}
	l.cursor = cursor
	l.free = free
	l.used = used
	l.sizes = sizes
	return nil
}
