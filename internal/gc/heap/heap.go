// Package heap manages the VM's memory spaces: the bump-pointer
// nursery, the mature space region handed to a policy-specific
// allocator, the large-object space, and the immortal space that holds
// compiled code support structures, vtables and constant objects
// (§5.1: generational heap with an Appel-style variable-size nursery,
// a mark-and-sweep mature space and a separate large object space).
package heap

import (
	"fmt"
	"sort"
)

// Accessor is the timed memory interface the collectors use; the
// simulated CPU implements it, so GC traffic shares the caches and the
// cycle counter with application code.
type Accessor interface {
	LoadWord(addr uint64) uint64
	StoreWord(addr uint64, v uint64)
	LoadHalf(addr uint64) uint32
	StoreHalf(addr uint64, v uint32)
	AddCycles(n uint64)
}

// Address-space layout of the simulated machine. Code, the method
// entry table and the vtable map live below the heap (their bases are
// in the CPU config); everything here is VM-managed.
const (
	StackTop = 0x0200_0000 // call stack grows down from here

	ImmortalBase = 0x0400_0000
	ImmortalEnd  = 0x0800_0000

	NurseryBase = 0x1000_0000
	NurseryEnd  = 0x1800_0000 // 128 MB of nursery address space

	MatureBase = 0x2000_0000
	MatureEnd  = 0x4000_0000 // 512 MB of mature address space

	LOSBase = 0x5000_0000
	LOSEnd  = 0x6000_0000 // 256 MB of large-object address space
)

// InNursery reports whether addr lies in the nursery region — the
// write barrier's fast test.
func InNursery(addr uint64) bool { return addr >= NurseryBase && addr < NurseryEnd }

// InMature reports whether addr lies in the mature region.
func InMature(addr uint64) bool { return addr >= MatureBase && addr < MatureEnd }

// InLOS reports whether addr lies in the large-object region.
func InLOS(addr uint64) bool { return addr >= LOSBase && addr < LOSEnd }

// InImmortal reports whether addr lies in the immortal region.
func InImmortal(addr uint64) bool { return addr >= ImmortalBase && addr < ImmortalEnd }

// InHeap reports whether addr is in any collected or immortal space.
func InHeap(addr uint64) bool {
	return InNursery(addr) || InMature(addr) || InLOS(addr) || InImmortal(addr)
}

// BumpSpace is a contiguous bump-pointer-allocated space (the nursery,
// the immortal space, and each semispace of the copying mature space).
type BumpSpace struct {
	Name  string
	Base  uint64
	Limit uint64 // hard end of the region
	soft  uint64 // current allocation limit (nursery resizing)

	cursor uint64
	// Allocations counts objects allocated since the last Reset.
	Allocations uint64
}

// NewBumpSpace creates a bump space over [base, limit).
func NewBumpSpace(name string, base, limit uint64) *BumpSpace {
	return &BumpSpace{Name: name, Base: base, Limit: limit, soft: limit, cursor: base}
}

// SetSoftLimit restricts the space to its first n bytes (Appel-style
// nursery sizing). It panics if n exceeds the region.
func (s *BumpSpace) SetSoftLimit(n uint64) {
	if s.Base+n > s.Limit {
		panic(fmt.Sprintf("heap: %s soft limit %d exceeds region", s.Name, n))
	}
	s.soft = s.Base + n
}

// SoftSize returns the currently configured capacity in bytes.
func (s *BumpSpace) SoftSize() uint64 { return s.soft - s.Base }

// Alloc returns the address of a fresh size-byte cell, or 0 when the
// space is exhausted. size must be 8-byte aligned.
func (s *BumpSpace) Alloc(size uint64) uint64 {
	if size%8 != 0 {
		panic(fmt.Sprintf("heap: %s: unaligned allocation of %d bytes", s.Name, size))
	}
	if s.cursor+size > s.soft {
		return 0
	}
	addr := s.cursor
	s.cursor += size
	s.Allocations++
	return addr
}

// Used returns the number of allocated bytes.
func (s *BumpSpace) Used() uint64 { return s.cursor - s.Base }

// Contains reports whether addr was allocated from this space.
func (s *BumpSpace) Contains(addr uint64) bool { return addr >= s.Base && addr < s.cursor }

// Reset empties the space (after an evacuating collection).
func (s *BumpSpace) Reset() {
	s.cursor = s.Base
	s.Allocations = 0
}

// LargeObjectSpace allocates page-granular runs for objects above the
// free-list size-class limit, with a first-fit free list of runs.
type LargeObjectSpace struct {
	Base, Limit uint64
	cursor      uint64
	free        []run // sorted by address
	used        uint64
	// sizes of live allocations, for sweeping and accounting.
	sizes map[uint64]uint64
}

type run struct {
	addr, size uint64
}

// LOSPageSize is the allocation granularity of the large object space.
const LOSPageSize = 4096

// NewLOS creates a large-object space over [base, limit).
func NewLOS(base, limit uint64) *LargeObjectSpace {
	return &LargeObjectSpace{Base: base, Limit: limit, cursor: base, sizes: make(map[uint64]uint64)}
}

// Alloc returns a page-aligned run holding size bytes, or 0 when
// exhausted.
func (l *LargeObjectSpace) Alloc(size uint64) uint64 {
	need := (size + LOSPageSize - 1) &^ (LOSPageSize - 1)
	for i, r := range l.free {
		if r.size >= need {
			addr := r.addr
			if r.size == need {
				l.free = append(l.free[:i], l.free[i+1:]...)
			} else {
				l.free[i] = run{addr: r.addr + need, size: r.size - need}
			}
			l.sizes[addr] = need
			l.used += need
			return addr
		}
	}
	if l.cursor+need > l.Limit {
		return 0
	}
	addr := l.cursor
	l.cursor += need
	l.sizes[addr] = need
	l.used += need
	return addr
}

// Free releases the run starting at addr.
func (l *LargeObjectSpace) Free(addr uint64) {
	size, ok := l.sizes[addr]
	if !ok {
		panic(fmt.Sprintf("heap: LOS free of unallocated %#x", addr))
	}
	delete(l.sizes, addr)
	l.used -= size
	l.free = append(l.free, run{addr: addr, size: size})
}

// Used returns the number of live bytes (page-rounded).
func (l *LargeObjectSpace) Used() uint64 { return l.used }

// Objects returns the addresses of all live large objects in address
// order. Both collectors free dead objects in this order, and Alloc
// first-fits over the free runs in release order, so a map-ordered
// listing would make large-object placement (and with it whole-run
// cycle counts) nondeterministic across identical invocations.
func (l *LargeObjectSpace) Objects() []uint64 {
	out := make([]uint64, 0, len(l.sizes))
	for a := range l.sizes {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Contains reports whether addr is a live large-object base address.
func (l *LargeObjectSpace) Contains(addr uint64) bool {
	_, ok := l.sizes[addr]
	return ok
}
