package cpu

import (
	"testing"

	"hpmvm/internal/hw/cache"
	"hpmvm/internal/hw/mem"
)

// haltTrap halts the CPU from inside the trap handler, the way TrapExit
// does in the real VM.
type haltTrap struct{}

func (haltTrap) Trap(c *CPU, num int64) { c.Halt(num) }

// TestRunHaltInsideTrap is a regression test for the Run overshoot bug:
// when a trap handler halted the CPU, the old loop structure could
// report more retired instructions than actually executed. The budget
// countdown makes the return value exact by construction.
func TestRunHaltInsideTrap(t *testing.T) {
	c := newCPU()
	c.SetTrapHandler(haltTrap{})
	addr := c.InstallCode([]Instr{
		{Op: OpMovImm, Rd: 1, Imm: 7},
		{Op: OpTrap, Imm: 42}, // handler halts; nothing after runs
		{Op: OpMovImm, Rd: 2, Imm: 99},
		{Op: OpRet},
	})
	c.SP = 0x0200_0000 - 8
	c.Mem.Write8(c.SP, 0)
	c.PC = addr
	n := c.Run(1000)
	if n != 2 {
		t.Errorf("Run reported %d retired instructions, want 2 (MovImm + Trap)", n)
	}
	if !c.Halted() || c.ExitStatus() != 42 {
		t.Errorf("halted=%v status=%d, want halted with status 42", c.Halted(), c.ExitStatus())
	}
	if c.Regs[2] == 99 {
		t.Error("instruction after halting trap executed")
	}
}

// TestRunInstretWrap is a regression test for the companion bug: Run's
// return value was derived from the instret delta, which went wrong
// when the retired-instruction counter wrapped around mid-call.
func TestRunInstretWrap(t *testing.T) {
	c := newCPU()
	c.instret = ^uint64(0) - 2 // wraps after 3 instructions
	addr := c.InstallCode([]Instr{
		{Op: OpMovImm, Rd: 1, Imm: 1},
		{Op: OpMovImm, Rd: 2, Imm: 2},
		{Op: OpMovImm, Rd: 3, Imm: 3},
		{Op: OpMovImm, Rd: 4, Imm: 4},
		{Op: OpMovImm, Rd: 5, Imm: 5},
		{Op: OpRet},
	})
	c.SP = 0x0200_0000 - 8
	c.Mem.Write8(c.SP, 0)
	c.PC = addr
	n := c.Run(1000)
	if n != 6 {
		t.Errorf("Run across instret wrap reported %d, want 6", n)
	}
	if c.instret != 3 {
		t.Errorf("instret after wrap = %d, want 3", c.instret)
	}
}

// TestRunBudgetExact checks that Run retires exactly maxInstr
// instructions when the program is longer than the budget, and that a
// subsequent Run resumes where the first left off.
func TestRunBudgetExact(t *testing.T) {
	c := newCPU()
	prog := make([]Instr, 0, 65)
	for i := 0; i < 64; i++ {
		prog = append(prog, Instr{Op: OpAddImm, Rd: 1, Rs1: 1, Imm: 1})
	}
	prog = append(prog, Instr{Op: OpRet})
	addr := c.InstallCode(prog)
	c.SP = 0x0200_0000 - 8
	c.Mem.Write8(c.SP, 0)
	c.PC = addr
	if n := c.Run(10); n != 10 {
		t.Fatalf("first Run = %d, want 10", n)
	}
	if c.Halted() {
		t.Fatal("halted with budget exhausted mid-program")
	}
	if c.Regs[1] != 10 {
		t.Fatalf("r1 = %d after 10 increments", c.Regs[1])
	}
	if n := c.Run(1000); n != 55 {
		t.Fatalf("resumed Run = %d, want 55 (54 increments + Ret)", n)
	}
	if c.Regs[1] != 64 || !c.Halted() {
		t.Errorf("r1 = %d halted=%v, want 64 and halted", c.Regs[1], c.Halted())
	}
}

// TestRunLoopStepEquivalence drives the same program through the
// single-step interpreter and through the fast run loop and requires
// identical architectural state, cycle counts and hierarchy stats at
// every step boundary. This is the in-package half of the equivalence
// argument; the cross-layer half is the golden corpus test at the repo
// root.
func TestRunLoopStepEquivalence(t *testing.T) {
	build := func() *CPU {
		c := New(mem.New(), cache.New(cache.DefaultP4()), DefaultConfig())
		c.SetTrapHandler(haltTrap{})
		base := c.NextCodeAddr()
		loop := base + 4*InstrBytes
		c.InstallCode([]Instr{
			{Op: OpMovImm, Rd: 1, Imm: 200},    // counter
			{Op: OpMovImm, Rd: 2, Imm: 0},      // sum
			{Op: OpMovImm, Rd: 3, Imm: 0x8000}, // buffer base
			{Op: OpSt8, Rs1: 3, Imm: 0, Rs2: 1},
			{Op: OpLd8, Rd: 4, Rs1: 3, Imm: 0}, // loop:
			{Op: OpAdd, Rd: 2, Rs1: 2, Rs2: 4},
			{Op: OpAddImm, Rd: 5, Rs1: 3, Imm: 8}, // fused AddImm+Ld8 pair
			{Op: OpLd8, Rd: 6, Rs1: 5, Imm: 0},
			{Op: OpSt8, Rs1: 3, Imm: 8, Rs2: 2},
			{Op: OpAddImm, Rd: 1, Rs1: 1, Imm: -1},
			{Op: OpSt8, Rs1: 3, Imm: 0, Rs2: 1},
			{Op: OpBrNE, Rs1: 1, Rs2: RegZero, Imm: int64(loop)},
			{Op: OpShlImm, Rd: 7, Rs1: 2, Imm: 3},
			{Op: OpTrap, Imm: 5}, // halts via handler
		})
		c.SP = 0x0200_0000 - 8
		c.Mem.Write8(c.SP, 0)
		c.FP = 0
		c.PC = base
		return c
	}

	ref := build()
	fast := build()
	steps := 0
	for ref.Step() {
		steps++
		if steps > 1_000_000 {
			t.Fatal("reference interpreter did not halt")
		}
	}
	if n := fast.Run(2_000_000); n != uint64(steps)+1 {
		// Step() returns false on the halting instruction, so the
		// retired count is steps+1.
		t.Errorf("fast path retired %d instructions, reference %d", n, steps+1)
	}
	if ref.PC != fast.PC || ref.cycles != fast.cycles || ref.instret != fast.instret {
		t.Errorf("pc/cycles/instret diverge: ref %#x/%d/%d fast %#x/%d/%d",
			ref.PC, ref.cycles, ref.instret, fast.PC, fast.cycles, fast.instret)
	}
	if ref.Regs != fast.Regs || ref.SP != fast.SP || ref.FP != fast.FP {
		t.Errorf("register state diverges:\nref  %v sp=%#x fp=%#x\nfast %v sp=%#x fp=%#x",
			ref.Regs, ref.SP, ref.FP, fast.Regs, fast.SP, fast.FP)
	}
	rs, fs := ref.Hier.Snapshot(), fast.Hier.Snapshot()
	if string(rs.Data) != string(fs.Data) {
		t.Error("cache hierarchy state diverges between Step and fast path")
	}
	if ref.ExitStatus() != fast.ExitStatus() {
		t.Errorf("exit status: ref %d fast %d", ref.ExitStatus(), fast.ExitStatus())
	}
}
