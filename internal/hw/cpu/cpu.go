package cpu

import (
	"fmt"

	"hpmvm/internal/hw/cache"
	"hpmvm/internal/hw/mem"
	"hpmvm/internal/hw/pebs"
)

// TrapHandler services OpTrap instructions. It is implemented by the VM
// runtime; the CPU passes itself so the handler can read and write
// registers and memory. A handler that needs to stop execution calls
// Halt.
type TrapHandler interface {
	Trap(c *CPU, num int64)
}

// Config holds CPU cost-model parameters and the addresses of the
// runtime dispatch tables (set by the VM when it lays out its spaces).
type Config struct {
	CodeBase uint64 // base address of the code space

	// MethodTableBase is the simulated address of the method entry
	// table: entry for method id m lives at MethodTableBase + 8*m.
	// OpCallM loads its target from here (a JTOC-style indirection, so
	// recompilation can retarget all call sites at once).
	MethodTableBase uint64

	// VTableMapBase maps class IDs to vtable addresses: the vtable
	// pointer for class c lives at VTableMapBase + 8*c.
	VTableMapBase uint64

	// Cost model: extra cycles beyond the 1-cycle base per instruction.
	MulCycles         uint64 // extra cost of multiply
	DivCycles         uint64 // extra cost of divide/remainder
	TakenBranchCycles uint64 // extra cost of a taken branch/jump
	CallCycles        uint64 // extra cost of a call or return
	BarrierCycles     uint64 // extra cost of a reference-store barrier check
}

// DefaultConfig returns the standard cost model.
func DefaultConfig() Config {
	return Config{
		CodeBase:          0x0010_0000,
		MethodTableBase:   0x0008_0000,
		VTableMapBase:     0x000C_0000,
		MulCycles:         3,
		DivCycles:         20,
		TakenBranchCycles: 1,
		CallCycles:        2,
		BarrierCycles:     2,
	}
}

// Fault describes a fatal execution error (wild PC, unimplemented
// opcode, division by zero outside a guard, …). Faults indicate bugs in
// the compilers or runtime and abort the run via panic; tests catch
// them with recover.
type Fault struct {
	PC     uint64
	Reason string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("cpu fault at pc=%#x: %s", f.PC, f.Reason)
}

// CPU is the simulated processor core.
type CPU struct {
	Mem  *mem.Memory
	Hier *cache.Hierarchy

	Regs [NumRegs]uint64
	SP   uint64
	FP   uint64
	PC   uint64

	cfg     Config
	code    []Instr
	dec     []decInstr // predecoded image of code, rebuilt lazily by runLoop
	handler TrapHandler

	// Barrier, when set, observes every reference store (slot address
	// and stored value) — the generational collectors' remembered-set
	// hook. The check itself costs BarrierCycles.
	Barrier func(slotAddr, value uint64)

	// ifetch, when non-nil, models instruction fetch (the opt-in
	// I-cache of the code-layout optimization): it is called once per
	// code-line transition with the new PC and returns the stall
	// cycles. lastFetchLine tracks the line the front end last fetched
	// so straight-line execution inside one line costs nothing, and so
	// the check is idempotent — runLoop and Step both test it, which
	// makes runLoop's delegation to Step charge each fetch exactly
	// once. Nil for every pre-framework configuration: the nil test is
	// the only new work on the hot path.
	ifetch        func(pc uint64) uint64
	ifetchShift   uint
	lastFetchLine uint64

	cycles   uint64
	instret  uint64
	halted   bool
	usermode bool

	// exitStatus is set by TrapExit via Halt.
	exitStatus int64
}

// New builds a CPU over the given memory and hierarchy.
func New(m *mem.Memory, h *cache.Hierarchy, cfg Config) *CPU {
	return &CPU{Mem: m, Hier: h, cfg: cfg, usermode: true}
}

// Config returns the CPU configuration.
func (c *CPU) Config() Config { return c.cfg }

// SetTrapHandler installs the VM's trap handler.
func (c *CPU) SetTrapHandler(h TrapHandler) { c.handler = h }

// Halted reports whether the CPU has stopped.
func (c *CPU) Halted() bool { return c.halted }

// Halt stops execution; status is the program exit status.
func (c *CPU) Halt(status int64) {
	c.halted = true
	c.exitStatus = status
}

// ExitStatus returns the status passed to Halt.
func (c *CPU) ExitStatus() int64 { return c.exitStatus }

// Cycles returns the global cycle counter, which includes instruction
// execution, memory hierarchy penalties, PEBS microcode and any cycles
// charged by the runtime for VM services.
func (c *CPU) Cycles() uint64 { return c.cycles }

// Instret returns the number of retired instructions.
func (c *CPU) Instret() uint64 { return c.instret }

// AddCycles charges n extra cycles (VM services, sampling microcode,
// interrupt handling). Implements part of pebs.CPUState.
func (c *CPU) AddCycles(n uint64) { c.cycles += n }

// SamplePC implements pebs.CPUState: the address of the instruction
// currently executing (PEBS reports the exact faulting instruction).
func (c *CPU) SamplePC() uint64 { return c.PC }

// SampleRegs implements pebs.CPUState.
func (c *CPU) SampleRegs(dst *[pebs.NumRegs]uint64) { *dst = c.Regs }

// CycleCount implements pebs.CPUState.
func (c *CPU) CycleCount() uint64 { return c.cycles }

// SetIFetch installs (or, with nil, removes) the instruction-fetch
// hook. lineSize is the fetch granularity in bytes (the I-cache line
// size; a power of two). Installing the hook invalidates the
// predecoded image: AddImm+Ld8 fusion is disabled under instruction
// fetch so every instruction passes the loop-top line-transition
// check (a fused tail crossing a line boundary would otherwise skip
// its fetch).
func (c *CPU) SetIFetch(fn func(pc uint64) uint64, lineSize int) {
	c.ifetch = fn
	c.ifetchShift = 0
	for 1<<c.ifetchShift < lineSize {
		c.ifetchShift++
	}
	c.lastFetchLine = ^uint64(0)
	c.dec = nil
}

// UserMode reports whether the CPU is executing application code (as
// opposed to VM services: GC, sample processing, compilation). Hardware
// event counting is restricted to user mode, mirroring the USR ring
// filter real PMUs provide; the paper's monitor likewise excludes
// events occurring inside VM code (§5.3).
func (c *CPU) UserMode() bool { return c.usermode }

// SetUserMode flips the privilege mode; the runtime enters "kernel"
// mode around GC, monitoring and compilation work.
func (c *CPU) SetUserMode(u bool) { c.usermode = u }

func (c *CPU) fault(reason string) {
	panic(&Fault{PC: c.PC, Reason: reason})
}

// InstallCode appends instructions to the code space and returns the
// address of the first one. The returned address is stable for the
// lifetime of the CPU (code is never moved; the VM allocates compiled
// code in the immortal space, §4.2).
func (c *CPU) InstallCode(instrs []Instr) uint64 {
	addr := c.cfg.CodeBase + uint64(len(c.code))*InstrBytes
	c.code = append(c.code, instrs...)
	return addr
}

// NextCodeAddr returns the address the next InstallCode call will
// return. Compilers use it to emit absolute branch targets before
// installation.
func (c *CPU) NextCodeAddr() uint64 {
	return c.cfg.CodeBase + uint64(len(c.code))*InstrBytes
}

// CodeSizeBytes returns the total installed code size in bytes.
func (c *CPU) CodeSizeBytes() uint64 { return uint64(len(c.code)) * InstrBytes }

// CodeBounds returns the [start,end) address range of installed code.
func (c *CPU) CodeBounds() (start, end uint64) {
	return c.cfg.CodeBase, c.cfg.CodeBase + c.CodeSizeBytes()
}

// InstrAt returns the instruction at a code address (for disassembly
// and the monitor's sample decoding).
func (c *CPU) InstrAt(addr uint64) (Instr, bool) {
	if addr < c.cfg.CodeBase || (addr-c.cfg.CodeBase)%InstrBytes != 0 {
		return Instr{}, false
	}
	idx := (addr - c.cfg.CodeBase) / InstrBytes
	if idx >= uint64(len(c.code)) {
		return Instr{}, false
	}
	return c.code[idx], true
}

// --- Timed memory accessors -------------------------------------------------
//
// These are used both by the execution loop and by the runtime/GC (which
// run on the same core and therefore share the same caches and cycle
// counter — GC traffic evicting application data is a real effect the
// paper's collectors contend with).

// LoadWord performs a timed 64-bit load.
func (c *CPU) LoadWord(addr uint64) uint64 {
	c.cycles += c.Hier.Access(addr, 8, false)
	return c.Mem.Read8(addr)
}

// StoreWord performs a timed 64-bit store.
func (c *CPU) StoreWord(addr uint64, v uint64) {
	c.cycles += c.Hier.Access(addr, 8, true)
	c.Mem.Write8(addr, v)
}

// LoadHalf performs a timed 32-bit load (zero-extended).
func (c *CPU) LoadHalf(addr uint64) uint32 {
	c.cycles += c.Hier.Access(addr, 4, false)
	return c.Mem.Read4(addr)
}

// StoreHalf performs a timed 32-bit store.
func (c *CPU) StoreHalf(addr uint64, v uint32) {
	c.cycles += c.Hier.Access(addr, 4, true)
	c.Mem.Write4(addr, v)
}

// base resolves a memory-operand base register encoding.
func (c *CPU) base(r uint8) uint64 {
	switch r {
	case BaseSP:
		return c.SP
	case BaseFP:
		return c.FP
	case RegZero:
		return 0
	default:
		return c.Regs[r]
	}
}

func (c *CPU) setReg(r uint8, v uint64) {
	if r == RegZero {
		return
	}
	c.Regs[r] = v
}

func (c *CPU) reg(r uint8) uint64 {
	if r == RegZero {
		return 0
	}
	return c.Regs[r]
}

// Step executes a single instruction. It returns false once the CPU is
// halted.
func (c *CPU) Step() bool {
	if c.halted {
		return false
	}
	if c.PC < c.cfg.CodeBase {
		c.fault("PC outside code space")
	}
	idx := (c.PC - c.cfg.CodeBase) / InstrBytes
	if idx >= uint64(len(c.code)) {
		c.fault("PC beyond installed code")
	}
	in := c.code[idx]
	next := c.PC + InstrBytes
	if c.ifetch != nil {
		if line := c.PC >> c.ifetchShift; line != c.lastFetchLine {
			c.lastFetchLine = line
			c.cycles += c.ifetch(c.PC)
		}
	}
	c.cycles++
	c.instret++

	switch in.Op {
	case OpNop:

	case OpMovImm:
		c.setReg(in.Rd, uint64(in.Imm))
	case OpMov:
		c.setReg(in.Rd, c.reg(in.Rs1))

	case OpAdd:
		c.setReg(in.Rd, c.reg(in.Rs1)+c.reg(in.Rs2))
	case OpSub:
		c.setReg(in.Rd, c.reg(in.Rs1)-c.reg(in.Rs2))
	case OpMul:
		c.cycles += c.cfg.MulCycles
		c.setReg(in.Rd, uint64(int64(c.reg(in.Rs1))*int64(c.reg(in.Rs2))))
	case OpDiv:
		c.cycles += c.cfg.DivCycles
		d := int64(c.reg(in.Rs2))
		if d == 0 {
			c.trap(TrapDivZero)
			return !c.halted
		}
		c.setReg(in.Rd, uint64(int64(c.reg(in.Rs1))/d))
	case OpRem:
		c.cycles += c.cfg.DivCycles
		d := int64(c.reg(in.Rs2))
		if d == 0 {
			c.trap(TrapDivZero)
			return !c.halted
		}
		c.setReg(in.Rd, uint64(int64(c.reg(in.Rs1))%d))
	case OpAnd:
		c.setReg(in.Rd, c.reg(in.Rs1)&c.reg(in.Rs2))
	case OpOr:
		c.setReg(in.Rd, c.reg(in.Rs1)|c.reg(in.Rs2))
	case OpXor:
		c.setReg(in.Rd, c.reg(in.Rs1)^c.reg(in.Rs2))
	case OpShl:
		c.setReg(in.Rd, c.reg(in.Rs1)<<(c.reg(in.Rs2)&63))
	case OpShr:
		c.setReg(in.Rd, c.reg(in.Rs1)>>(c.reg(in.Rs2)&63))
	case OpSar:
		c.setReg(in.Rd, uint64(int64(c.reg(in.Rs1))>>(c.reg(in.Rs2)&63)))

	case OpAddImm:
		c.setReg(in.Rd, c.reg(in.Rs1)+uint64(in.Imm))
	case OpMulImm:
		c.cycles += c.cfg.MulCycles
		c.setReg(in.Rd, uint64(int64(c.reg(in.Rs1))*in.Imm))
	case OpShlImm:
		c.setReg(in.Rd, c.reg(in.Rs1)<<uint64(in.Imm&63))

	case OpLd8:
		a := c.base(in.Rs1) + uint64(in.Imm)
		c.cycles += c.Hier.Access(a, 8, false)
		c.setReg(in.Rd, c.Mem.Read8(a))
	case OpLd4:
		a := c.base(in.Rs1) + uint64(in.Imm)
		c.cycles += c.Hier.Access(a, 4, false)
		c.setReg(in.Rd, uint64(c.Mem.Read4(a)))
	case OpLd2:
		a := c.base(in.Rs1) + uint64(in.Imm)
		c.cycles += c.Hier.Access(a, 2, false)
		c.setReg(in.Rd, uint64(c.Mem.Read2(a)))
	case OpLd1:
		a := c.base(in.Rs1) + uint64(in.Imm)
		c.cycles += c.Hier.Access(a, 1, false)
		c.setReg(in.Rd, uint64(c.Mem.Read1(a)))

	case OpSt8:
		a := c.base(in.Rs1) + uint64(in.Imm)
		c.cycles += c.Hier.Access(a, 8, true)
		c.Mem.Write8(a, c.reg(in.Rs2))
	case OpStRef:
		a := c.base(in.Rs1) + uint64(in.Imm)
		c.cycles += c.Hier.Access(a, 8, true)
		v := c.reg(in.Rs2)
		c.Mem.Write8(a, v)
		c.cycles += c.cfg.BarrierCycles
		if c.Barrier != nil {
			c.Barrier(a, v)
		}
	case OpSt4:
		a := c.base(in.Rs1) + uint64(in.Imm)
		c.cycles += c.Hier.Access(a, 4, true)
		c.Mem.Write4(a, uint32(c.reg(in.Rs2)))
	case OpSt2:
		a := c.base(in.Rs1) + uint64(in.Imm)
		c.cycles += c.Hier.Access(a, 2, true)
		c.Mem.Write2(a, uint16(c.reg(in.Rs2)))
	case OpSt1:
		a := c.base(in.Rs1) + uint64(in.Imm)
		c.cycles += c.Hier.Access(a, 1, true)
		c.Mem.Write1(a, uint8(c.reg(in.Rs2)))

	case OpEnter:
		c.SP -= 8
		c.cycles += c.Hier.Access(c.SP, 8, true)
		c.Mem.Write8(c.SP, c.FP)
		c.FP = c.SP
		c.SP -= uint64(in.Imm)

	case OpLeave:
		c.SP = c.FP
		c.cycles += c.Hier.Access(c.SP, 8, false)
		c.FP = c.Mem.Read8(c.SP)
		c.SP += 8

	case OpCallM:
		c.cycles += c.cfg.CallCycles
		// Load the target from the method entry table.
		slot := c.cfg.MethodTableBase + uint64(in.Imm)*8
		c.cycles += c.Hier.Access(slot, 8, false)
		target := c.Mem.Read8(slot)
		if target == 0 {
			c.fault(fmt.Sprintf("call to unresolved method %d", in.Imm))
		}
		c.pushRet(next)
		c.PC = target
		return !c.halted

	case OpCallV:
		c.cycles += c.cfg.CallCycles
		recv := c.reg(in.Rs1)
		if recv == 0 {
			c.trap(TrapNullPtr)
			return !c.halted
		}
		// Load the class ID from the object header, then the vtable
		// pointer, then the method entry — all real, cached loads.
		c.cycles += c.Hier.Access(recv, 4, false)
		classID := uint64(c.Mem.Read4(recv))
		vtSlot := c.cfg.VTableMapBase + classID*8
		c.cycles += c.Hier.Access(vtSlot, 8, false)
		vt := c.Mem.Read8(vtSlot)
		if vt == 0 {
			c.fault(fmt.Sprintf("virtual call on class %d without vtable", classID))
		}
		entry := vt + uint64(in.Imm)*8
		c.cycles += c.Hier.Access(entry, 8, false)
		target := c.Mem.Read8(entry)
		if target == 0 {
			c.fault(fmt.Sprintf("virtual slot %d of class %d unresolved", in.Imm, classID))
		}
		c.pushRet(next)
		c.PC = target
		return !c.halted

	case OpRet:
		c.cycles += c.cfg.CallCycles
		c.cycles += c.Hier.Access(c.SP, 8, false)
		target := c.Mem.Read8(c.SP)
		c.SP += 8
		if target == 0 {
			// Return from the entry frame: the program is done.
			c.Halt(0)
			return false
		}
		c.PC = target
		return !c.halted

	case OpJmp:
		c.cycles += c.cfg.TakenBranchCycles
		c.PC = uint64(in.Imm)
		return !c.halted

	case OpBrEQ, OpBrNE, OpBrLT, OpBrLE, OpBrGT, OpBrGE, OpBrULT, OpBrUGE:
		a, b := c.reg(in.Rs1), c.reg(in.Rs2)
		var taken bool
		switch in.Op {
		case OpBrEQ:
			taken = a == b
		case OpBrNE:
			taken = a != b
		case OpBrLT:
			taken = int64(a) < int64(b)
		case OpBrLE:
			taken = int64(a) <= int64(b)
		case OpBrGT:
			taken = int64(a) > int64(b)
		case OpBrGE:
			taken = int64(a) >= int64(b)
		case OpBrULT:
			taken = a < b
		case OpBrUGE:
			taken = a >= b
		}
		if taken {
			c.cycles += c.cfg.TakenBranchCycles
			c.PC = uint64(in.Imm)
			return !c.halted
		}

	case OpTrap:
		c.trap(in.Imm)
		if c.halted {
			return false
		}

	default:
		c.fault(fmt.Sprintf("unimplemented opcode %v", in.Op))
	}

	c.PC = next
	return !c.halted
}

func (c *CPU) pushRet(ret uint64) {
	c.SP -= 8
	c.cycles += c.Hier.Access(c.SP, 8, true)
	c.Mem.Write8(c.SP, ret)
}

func (c *CPU) trap(num int64) {
	if c.handler == nil {
		c.fault(fmt.Sprintf("trap %d with no handler", num))
	}
	c.handler.Trap(c, num)
}
