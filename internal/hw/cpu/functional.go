package cpu

// Instruction-bounded execution: the region scheduler's entry point.
//
// Sampled simulation drives the CPU through the same predecoded
// interpreter in both lanes — the lane switch lives entirely in the
// cache hierarchy (cache.Hierarchy.SetFunctional), whose functional
// gate turns every Access into a flat charge plus a warming tag
// update. That keeps the two lanes architecturally identical by
// construction: registers, memory, control flow, traps and instret
// accounting all run through one loop, and the sampling keystone
// tests pin that a sampled run retires the exact instruction stream
// of an exact run. Cycles in the functional lane are a cheap clock
// that keeps tickers and budgets moving; they carry no timing
// fidelity and the region scheduler never measures them.

// RunBounded executes until the cycle counter reaches cycleHorizon or
// maxInstr instructions retire, whichever is first, and returns the
// instructions retired. Both bounds are live, so sampling phases end
// at exact instruction counts while ticker deadlines keep firing on
// time.
func (c *CPU) RunBounded(cycleHorizon, maxInstr uint64) uint64 {
	return c.runLoop(cycleHorizon, maxInstr)
}
