package cpu

import (
	"testing"

	"hpmvm/internal/hw/cache"
	"hpmvm/internal/hw/mem"
)

// benchLoop installs a self-contained arithmetic/memory/branch loop
// (the shape the fast path optimizes for) and returns the CPU with PC
// at its entry. The loop body never halts, so the benchmarks meter
// pure interpreter throughput.
func benchLoop(b *testing.B) *CPU {
	b.Helper()
	c := New(mem.New(), cache.New(cache.DefaultP4()), DefaultConfig())
	base := c.NextCodeAddr()
	loop := base + 2*InstrBytes
	c.InstallCode([]Instr{
		{Op: OpMovImm, Rd: 3, Imm: 0x8000},
		{Op: OpSt8, Rs1: 3, Imm: 0, Rs2: 3},
		{Op: OpLd8, Rd: 4, Rs1: 3, Imm: 0}, // loop:
		{Op: OpAdd, Rd: 2, Rs1: 2, Rs2: 4},
		{Op: OpAddImm, Rd: 5, Rs1: 3, Imm: 8}, // fused AddImm+Ld8 pair
		{Op: OpLd8, Rd: 6, Rs1: 5, Imm: 0},
		{Op: OpAddImm, Rd: 1, Rs1: 1, Imm: 1},
		{Op: OpBrGE, Rs1: 1, Rs2: RegZero, Imm: int64(loop)},
	})
	c.SP = 0x0200_0000 - 8
	c.Mem.Write8(c.SP, 0)
	c.PC = base
	return c
}

// BenchmarkCPUStep meters the single-step interpreter: one dispatched
// instruction per iteration, the path delegated ops and external
// drivers still take.
func BenchmarkCPUStep(b *testing.B) {
	c := benchLoop(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step()
	}
}

// BenchmarkCPURunLoop meters the predecoded fast path over the same
// program, in instruction-budget chunks large enough to amortize the
// flush/reload at the loop boundary. The per-op delta against
// BenchmarkCPUStep is the fast path's win on interpreter overhead
// alone (cache-hit cost is common to both).
func BenchmarkCPURunLoop(b *testing.B) {
	c := benchLoop(b)
	b.ResetTimer()
	const chunk = 4096
	for n := 0; n < b.N; n += chunk {
		c.Run(chunk)
	}
}
