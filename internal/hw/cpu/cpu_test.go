package cpu

import (
	"strings"
	"testing"

	"hpmvm/internal/hw/cache"
	"hpmvm/internal/hw/mem"
)

// newCPU builds a CPU with a fresh memory and the default P4 hierarchy.
func newCPU() *CPU {
	return New(mem.New(), cache.New(cache.DefaultP4()), DefaultConfig())
}

// run installs the program, points PC at it with a sentinel return
// address, and executes until halt or budget exhaustion.
func run(t *testing.T, c *CPU, prog []Instr) {
	t.Helper()
	addr := c.InstallCode(prog)
	c.SP = 0x0200_0000 - 8
	c.Mem.Write8(c.SP, 0) // sentinel: Ret from top frame halts
	c.FP = 0
	c.PC = addr
	if n := c.Run(1_000_000); n == 1_000_000 {
		t.Fatal("program did not halt")
	}
}

type exitRecorder struct{ status int64 }

func (e *exitRecorder) Trap(c *CPU, num int64) {
	switch num {
	case TrapExit:
		c.Halt(int64(c.Regs[1]))
	default:
		e.status = num
		c.Halt(99)
	}
}

func TestArithmeticOps(t *testing.T) {
	cases := []struct {
		op   Op
		a, b int64
		want int64
	}{
		{OpAdd, 7, 5, 12},
		{OpSub, 7, 5, 2},
		{OpMul, -3, 5, -15},
		{OpDiv, -17, 5, -3}, // truncating division
		{OpRem, -17, 5, -2},
		{OpAnd, 0b1100, 0b1010, 0b1000},
		{OpOr, 0b1100, 0b1010, 0b1110},
		{OpXor, 0b1100, 0b1010, 0b0110},
		{OpShl, 3, 4, 48},
		{OpShr, -1, 60, 15},
		{OpSar, -16, 2, -4},
	}
	for _, tc := range cases {
		c := newCPU()
		c.SetTrapHandler(&exitRecorder{})
		run(t, c, []Instr{
			{Op: OpMovImm, Rd: 1, Imm: tc.a},
			{Op: OpMovImm, Rd: 2, Imm: tc.b},
			{Op: tc.op, Rd: 3, Rs1: 1, Rs2: 2},
			{Op: OpRet},
		})
		if got := int64(c.Regs[3]); got != tc.want {
			t.Errorf("%v(%d,%d) = %d, want %d", tc.op, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestImmediateOps(t *testing.T) {
	c := newCPU()
	run(t, c, []Instr{
		{Op: OpMovImm, Rd: 1, Imm: 10},
		{Op: OpAddImm, Rd: 2, Rs1: 1, Imm: -3},
		{Op: OpMulImm, Rd: 3, Rs1: 1, Imm: 7},
		{Op: OpShlImm, Rd: 4, Rs1: 1, Imm: 3},
		{Op: OpMov, Rd: 5, Rs1: 4},
		{Op: OpRet},
	})
	if c.Regs[2] != 7 || c.Regs[3] != 70 || c.Regs[4] != 80 || c.Regs[5] != 80 {
		t.Errorf("regs = %v", c.Regs[:6])
	}
}

func TestZeroRegister(t *testing.T) {
	c := newCPU()
	run(t, c, []Instr{
		{Op: OpMovImm, Rd: RegZero, Imm: 123}, // write ignored
		{Op: OpAddImm, Rd: 1, Rs1: RegZero, Imm: 5},
		{Op: OpRet},
	})
	if c.Regs[1] != 5 {
		t.Errorf("zr-relative add = %d", c.Regs[1])
	}
}

func TestLoadsAndStores(t *testing.T) {
	c := newCPU()
	run(t, c, []Instr{
		{Op: OpMovImm, Rd: 1, Imm: 0x5000},
		{Op: OpMovImm, Rd: 2, Imm: -2}, // 0xFFFF_FFFF_FFFF_FFFE
		{Op: OpSt8, Rs1: 1, Imm: 0, Rs2: 2},
		{Op: OpLd8, Rd: 3, Rs1: 1, Imm: 0},
		{Op: OpLd4, Rd: 4, Rs1: 1, Imm: 0}, // zero-extended low word
		{Op: OpLd2, Rd: 5, Rs1: 1, Imm: 0},
		{Op: OpLd1, Rd: 6, Rs1: 1, Imm: 0},
		{Op: OpSt2, Rs1: 1, Imm: 16, Rs2: 2},
		{Op: OpLd2, Rd: 7, Rs1: 1, Imm: 16},
		{Op: OpRet},
	})
	if int64(c.Regs[3]) != -2 {
		t.Errorf("Ld8 = %d", int64(c.Regs[3]))
	}
	if c.Regs[4] != 0xFFFFFFFE || c.Regs[5] != 0xFFFE || c.Regs[6] != 0xFE {
		t.Errorf("zero extension wrong: %x %x %x", c.Regs[4], c.Regs[5], c.Regs[6])
	}
	if c.Regs[7] != 0xFFFE {
		t.Errorf("St2/Ld2 = %x", c.Regs[7])
	}
}

func TestBranches(t *testing.T) {
	// Loop: sum 1..5 via BrLT.
	c := newCPU()
	base := c.NextCodeAddr()
	loop := base + 2*InstrBytes
	end := base + 5*InstrBytes
	run(t, c, []Instr{
		{Op: OpMovImm, Rd: 1, Imm: 0},         // i
		{Op: OpMovImm, Rd: 2, Imm: 0},         // sum
		{Op: OpAddImm, Rd: 1, Rs1: 1, Imm: 1}, // loop: i++
		{Op: OpAdd, Rd: 2, Rs1: 2, Rs2: 1},    // sum += i
		{Op: OpBrLT, Rs1: 1, Rs2: 3, Imm: int64(loop)},
		{Op: OpRet}, // end
	})
	_ = end
	// r3 is 0, so BrLT(i, 0) never taken: sum = 1.
	if c.Regs[2] != 1 {
		t.Errorf("sum = %d", c.Regs[2])
	}

	// Unsigned compare: -1 is huge unsigned.
	c2 := newCPU()
	b2 := c2.NextCodeAddr()
	skip := b2 + 4*InstrBytes
	run(t, c2, []Instr{
		{Op: OpMovImm, Rd: 1, Imm: -1},
		{Op: OpMovImm, Rd: 2, Imm: 5},
		{Op: OpBrUGE, Rs1: 1, Rs2: 2, Imm: int64(skip)},
		{Op: OpMovImm, Rd: 3, Imm: 111}, // skipped
		{Op: OpRet},
	})
	if c2.Regs[3] == 111 {
		t.Error("BrUGE with -1 not taken (unsigned semantics broken)")
	}
}

func TestCallRetAndFrames(t *testing.T) {
	c := newCPU()
	c.SetTrapHandler(&exitRecorder{})
	// Callee: r0 = r0 * 2, via the method entry table (method id 7).
	calleeAddr := c.InstallCode([]Instr{
		{Op: OpEnter, Imm: 16},
		{Op: OpSt8, Rs1: BaseFP, Imm: -8, Rs2: 0},
		{Op: OpLd8, Rd: 1, Rs1: BaseFP, Imm: -8},
		{Op: OpAdd, Rd: 0, Rs1: 1, Rs2: 1},
		{Op: OpLeave},
		{Op: OpRet},
	})
	c.Mem.Write8(c.Config().MethodTableBase+7*8, calleeAddr)
	run(t, c, []Instr{
		{Op: OpMovImm, Rd: 0, Imm: 21},
		{Op: OpCallM, Imm: 7},
		{Op: OpRet},
	})
	if c.Regs[0] != 42 {
		t.Errorf("call result = %d", c.Regs[0])
	}
	// The final Ret pops the sentinel, leaving SP at the stack top.
	if c.SP != 0x0200_0000 {
		t.Errorf("SP not restored: %#x", c.SP)
	}
}

func TestVirtualDispatch(t *testing.T) {
	c := newCPU()
	// Class 5's vtable, slot 2 -> target method.
	target := c.InstallCode([]Instr{
		{Op: OpMovImm, Rd: 0, Imm: 1234},
		{Op: OpRet},
	})
	cfg := c.Config()
	vtbl := uint64(0x0400_0000)
	c.Mem.Write8(cfg.VTableMapBase+5*8, vtbl)
	c.Mem.Write8(vtbl+2*8, target)
	// Receiver object with class ID 5 in its header.
	obj := uint64(0x1000_0000)
	c.Mem.Write4(obj, 5)
	run(t, c, []Instr{
		{Op: OpMovImm, Rd: 1, Imm: int64(obj)},
		{Op: OpCallV, Rs1: 1, Imm: 2},
		{Op: OpRet},
	})
	if c.Regs[0] != 1234 {
		t.Errorf("virtual dispatch result = %d", c.Regs[0])
	}
}

func TestCallVNullReceiverTraps(t *testing.T) {
	c := newCPU()
	rec := &exitRecorder{}
	c.SetTrapHandler(rec)
	run(t, c, []Instr{
		{Op: OpMovImm, Rd: 1, Imm: 0},
		{Op: OpCallV, Rs1: 1, Imm: 0},
		{Op: OpRet},
	})
	if rec.status != TrapNullPtr {
		t.Errorf("trap = %d, want TrapNullPtr", rec.status)
	}
}

func TestDivByZeroTraps(t *testing.T) {
	for _, op := range []Op{OpDiv, OpRem} {
		c := newCPU()
		rec := &exitRecorder{}
		c.SetTrapHandler(rec)
		run(t, c, []Instr{
			{Op: OpMovImm, Rd: 1, Imm: 10},
			{Op: op, Rd: 2, Rs1: 1, Rs2: RegZero},
			{Op: OpRet},
		})
		if rec.status != TrapDivZero {
			t.Errorf("%v by zero: trap = %d", op, rec.status)
		}
	}
}

func TestStRefBarrier(t *testing.T) {
	c := newCPU()
	var gotSlot, gotVal uint64
	c.Barrier = func(slot, val uint64) { gotSlot, gotVal = slot, val }
	run(t, c, []Instr{
		{Op: OpMovImm, Rd: 1, Imm: 0x6000},
		{Op: OpMovImm, Rd: 2, Imm: 0x7000},
		{Op: OpStRef, Rs1: 1, Imm: 8, Rs2: 2},
		{Op: OpRet},
	})
	if gotSlot != 0x6008 || gotVal != 0x7000 {
		t.Errorf("barrier saw (%#x,%#x)", gotSlot, gotVal)
	}
	if c.Mem.Read8(0x6008) != 0x7000 {
		t.Error("StRef did not store")
	}
}

func TestTrapExit(t *testing.T) {
	c := newCPU()
	c.SetTrapHandler(&exitRecorder{})
	run(t, c, []Instr{
		{Op: OpMovImm, Rd: 1, Imm: 17},
		{Op: OpTrap, Imm: TrapExit},
	})
	if c.ExitStatus() != 17 {
		t.Errorf("exit status = %d", c.ExitStatus())
	}
}

func TestCyclesAccumulate(t *testing.T) {
	c := newCPU()
	run(t, c, []Instr{
		{Op: OpMovImm, Rd: 1, Imm: 1},
		{Op: OpMul, Rd: 1, Rs1: 1, Rs2: 1},
		{Op: OpRet},
	})
	// 3 instructions + mul extra + ret costs + memory for the ret pop.
	if c.Cycles() < 4 || c.Instret() != 3 {
		t.Errorf("cycles=%d instret=%d", c.Cycles(), c.Instret())
	}
}

func TestWildPCFaults(t *testing.T) {
	c := newCPU()
	c.PC = 0x10 // below code base
	defer func() {
		if r := recover(); r == nil {
			t.Error("expected fault")
		} else if _, ok := r.(*Fault); !ok {
			t.Errorf("panic value %T, want *Fault", r)
		}
	}()
	c.Step()
}

func TestUserMode(t *testing.T) {
	c := newCPU()
	if !c.UserMode() {
		t.Error("fresh CPU not in user mode")
	}
	c.SetUserMode(false)
	if c.UserMode() {
		t.Error("SetUserMode(false) ignored")
	}
}

func TestDisassembly(t *testing.T) {
	in := Instr{Op: OpLd8, Rd: 3, Rs1: BaseFP, Imm: -16}
	if got := in.String(); !strings.Contains(got, "fp") || !strings.Contains(got, "r3") {
		t.Errorf("disasm = %q", got)
	}
	if !(Instr{Op: OpBrEQ}).IsBranch() || (Instr{Op: OpJmp}).IsBranch() {
		t.Error("IsBranch wrong")
	}
	if !(Instr{Op: OpCallM}).IsCall() {
		t.Error("IsCall wrong")
	}
}

func TestInstrAt(t *testing.T) {
	c := newCPU()
	addr := c.InstallCode([]Instr{{Op: OpNop}, {Op: OpRet}})
	if in, ok := c.InstrAt(addr + InstrBytes); !ok || in.Op != OpRet {
		t.Error("InstrAt wrong")
	}
	if _, ok := c.InstrAt(addr + 2*InstrBytes); ok {
		t.Error("InstrAt beyond code should fail")
	}
	if _, ok := c.InstrAt(addr + 1); ok {
		t.Error("InstrAt misaligned should fail")
	}
}
