// Package cpu implements the simulated processor that executes the
// machine code produced by the VM's JIT compilers. It is a RISC-like
// 64-bit machine with 16 general-purpose registers plus dedicated
// stack- and frame-pointer registers, executing against the simulated
// memory hierarchy (packages mem and cache) with a simple cycle cost
// model.
//
// The design follows the needs of the paper's infrastructure (§4):
// every instruction has a unique code address, so the PEBS unit can
// report the exact instruction that caused a sampled event, and the
// compilers can keep machine-code maps from those addresses back to
// bytecode. Instruction fetch is not simulated by default (the paper
// samples data events: L1/L2/DTLB misses, §4.1); the code-layout
// optimization opts into an instruction-fetch model via SetIFetch.
// Each instruction occupies one 4-byte slot of code address space,
// approximating x86 code density for the Table 2 space-overhead
// accounting.
package cpu

import "fmt"

// Op is a machine opcode.
type Op uint8

// Machine opcodes. Arithmetic is 64-bit two's complement; comparisons
// in branches are signed unless marked U (unsigned, used for array
// bounds checks).
const (
	OpNop Op = iota

	OpMovImm // Rd <- Imm
	OpMov    // Rd <- Rs1

	OpAdd // Rd <- Rs1 + Rs2
	OpSub // Rd <- Rs1 - Rs2
	OpMul // Rd <- Rs1 * Rs2
	OpDiv // Rd <- Rs1 / Rs2 (signed, traps on zero divisor)
	OpRem // Rd <- Rs1 % Rs2 (signed, traps on zero divisor)
	OpAnd // Rd <- Rs1 & Rs2
	OpOr  // Rd <- Rs1 | Rs2
	OpXor // Rd <- Rs1 ^ Rs2
	OpShl // Rd <- Rs1 << (Rs2 & 63)
	OpShr // Rd <- Rs1 >>> (Rs2 & 63) (logical)
	OpSar // Rd <- Rs1 >> (Rs2 & 63) (arithmetic)

	OpAddImm // Rd <- Rs1 + Imm
	OpMulImm // Rd <- Rs1 * Imm
	OpShlImm // Rd <- Rs1 << Imm

	OpLd8 // Rd <- mem64[base(Rs1) + Imm]
	OpLd4 // Rd <- zext(mem32[base(Rs1) + Imm])
	OpLd2 // Rd <- zext(mem16[base(Rs1) + Imm])
	OpLd1 // Rd <- zext(mem8[base(Rs1) + Imm])

	OpSt8   // mem64[base(Rs1) + Imm] <- Rs2
	OpStRef // reference store: OpSt8 plus the generational write barrier
	OpSt4   // mem32[base(Rs1) + Imm] <- low32(Rs2)
	OpSt2   // mem16[base(Rs1) + Imm] <- low16(Rs2)
	OpSt1   // mem8[base(Rs1) + Imm] <- low8(Rs2)

	OpEnter // push FP; FP <- SP; SP <- SP - Imm (frame size)
	OpLeave // SP <- FP; pop FP

	OpCallM // call method Imm via the method entry table (JTOC-style)
	OpCallV // virtual call: receiver in Rs1, vtable slot Imm
	OpRet   // return: PC <- pop

	OpJmp // PC <- Imm (absolute code address)
	OpBrEQ
	OpBrNE
	OpBrLT
	OpBrLE
	OpBrGT
	OpBrGE
	OpBrULT // unsigned <, for bounds checks
	OpBrUGE // unsigned >=, for bounds checks

	OpTrap // VM service call, service number in Imm

	numOps
)

var opNames = [numOps]string{
	OpNop: "nop", OpMovImm: "movi", OpMov: "mov",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr", OpSar: "sar",
	OpAddImm: "addi", OpMulImm: "muli", OpShlImm: "shli",
	OpLd8: "ld8", OpLd4: "ld4", OpLd2: "ld2", OpLd1: "ld1",
	OpSt8: "st8", OpStRef: "stref", OpSt4: "st4", OpSt2: "st2", OpSt1: "st1",
	OpEnter: "enter", OpLeave: "leave",
	OpCallM: "callm", OpCallV: "callv", OpRet: "ret",
	OpJmp: "jmp", OpBrEQ: "breq", OpBrNE: "brne", OpBrLT: "brlt",
	OpBrLE: "brle", OpBrGT: "brgt", OpBrGE: "brge",
	OpBrULT: "brult", OpBrUGE: "bruge",
	OpTrap: "trap",
}

// String returns the mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// NumRegs is the number of general-purpose registers.
const NumRegs = 16

// Register roles by software convention. All GPRs are caller-saved.
const (
	RegRet  = 0 // return value; also first argument
	RegArg0 = 0 // arguments are passed in R0..R7
	MaxArgs = 8 // maximum register-passed arguments
	RegTmp0 = 8 // scratch registers used by the baseline compiler
	RegTmp1 = 9
	RegTmp2 = 10
	RegZero = 15 // hardwired zero: reads as 0, writes ignored
)

// Special base-register encodings usable in the Rs1 field of memory
// instructions (never allocated as GPRs).
const (
	BaseSP = 16 // address base is the stack pointer
	BaseFP = 17 // address base is the frame pointer
)

// Instr is one decoded machine instruction. Each instruction occupies
// InstrBytes of code address space.
type Instr struct {
	Op  Op
	Rd  uint8
	Rs1 uint8
	Rs2 uint8
	Imm int64
}

// InstrBytes is the code-space footprint of one instruction.
const InstrBytes = 4

// String formats the instruction for disassembly listings.
func (i Instr) String() string {
	r := func(n uint8) string {
		switch n {
		case BaseSP:
			return "sp"
		case BaseFP:
			return "fp"
		case RegZero:
			return "zr"
		default:
			return fmt.Sprintf("r%d", n)
		}
	}
	switch i.Op {
	case OpNop, OpRet, OpLeave:
		return i.Op.String()
	case OpMovImm:
		return fmt.Sprintf("%s %s, %d", i.Op, r(i.Rd), i.Imm)
	case OpMov:
		return fmt.Sprintf("%s %s, %s", i.Op, r(i.Rd), r(i.Rs1))
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr, OpSar:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, r(i.Rd), r(i.Rs1), r(i.Rs2))
	case OpAddImm, OpMulImm, OpShlImm:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, r(i.Rd), r(i.Rs1), i.Imm)
	case OpLd8, OpLd4, OpLd2, OpLd1:
		return fmt.Sprintf("%s %s, [%s%+d]", i.Op, r(i.Rd), r(i.Rs1), i.Imm)
	case OpSt8, OpStRef, OpSt4, OpSt2, OpSt1:
		return fmt.Sprintf("%s [%s%+d], %s", i.Op, r(i.Rs1), i.Imm, r(i.Rs2))
	case OpEnter:
		return fmt.Sprintf("enter %d", i.Imm)
	case OpCallM:
		return fmt.Sprintf("callm m%d", i.Imm)
	case OpCallV:
		return fmt.Sprintf("callv [%s], slot %d", r(i.Rs1), i.Imm)
	case OpJmp:
		return fmt.Sprintf("jmp %#x", uint64(i.Imm))
	case OpBrEQ, OpBrNE, OpBrLT, OpBrLE, OpBrGT, OpBrGE, OpBrULT, OpBrUGE:
		return fmt.Sprintf("%s %s, %s, %#x", i.Op, r(i.Rs1), r(i.Rs2), uint64(i.Imm))
	case OpTrap:
		return fmt.Sprintf("trap %d", i.Imm)
	default:
		return fmt.Sprintf("%s rd=%d rs1=%d rs2=%d imm=%d", i.Op, i.Rd, i.Rs1, i.Rs2, i.Imm)
	}
}

// IsBranch reports whether the instruction is a conditional branch.
func (i Instr) IsBranch() bool {
	return i.Op >= OpBrEQ && i.Op <= OpBrUGE
}

// IsCall reports whether the instruction transfers control to a callee.
func (i Instr) IsCall() bool { return i.Op == OpCallM || i.Op == OpCallV }

// Trap service numbers, handled by the VM runtime (the "trap handler"
// plays the role of Jikes' VM entrypoints).
const (
	TrapExit        = 0 // halt the program; R1 = exit status
	TrapAllocObject = 1 // R1 = class ID; returns object address in R0
	TrapAllocArray  = 2 // R1 = class ID, R2 = length; returns address in R0
	TrapResult      = 3 // R1 = value appended to the program's result log
	TrapNullPtr     = 4 // fatal: null dereference detected by compiled code
	TrapBounds      = 5 // fatal: array index out of bounds
	TrapDivZero     = 6 // fatal: division by zero (raised by CPU)
	TrapYield       = 7 // voluntary safepoint (no-op service)
	TrapIntrinsic   = 8 // R1 = intrinsic ID; fast native helpers
)
