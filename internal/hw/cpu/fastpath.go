package cpu

// Fast-path interpreter: a predecoded, horizon-bounded inner loop that
// executes the common opcodes without per-instruction Step overhead
// while remaining cycle- and state-identical to Step (DESIGN.md §11,
// pinned by TestGoldenEquivalence and TestRunLoopStepEquivalence).
//
// Identity argument, in brief:
//
//   - PC, cycles and instret live in locals, but every call-out that
//     can observe or mutate CPU state — Hierarchy.Access (whose event
//     listeners run PEBS capture: SamplePC/SampleRegs/AddCycles), the
//     write barrier (AddCycles), and the trap handler — sees them
//     flushed first, and cycles/instret are reloaded afterwards. This
//     reproduces Step's `c.cycles += c.Hier.Access(...)` semantics,
//     where the Go evaluation order reads c.cycles after the call.
//   - The register file and SP/FP stay struct-resident, so samples
//     taken mid-access read exactly what Step's would.
//   - Rare or intricate opcodes (calls, divides, traps, unknown)
//     delegate to Step itself with state flushed, so the two
//     interpreters cannot drift on them.
//   - The cycle horizon and instruction budget are checked before
//     every instruction — including between the halves of a fused
//     pair — so ticker scheduling, pause points and Run(maxInstr)
//     accounting are bit-identical to a Step loop.

// Base-kind codes resolved at predecode time from the Rs1 field of
// memory instructions (see base()).
const (
	bkReg uint8 = iota
	bkSP
	bkFP
	bkZero
)

// decInstr is one predecoded instruction: the opcode and register
// fields of the original Instr with the base-register kind resolved,
// shift immediates pre-masked, and a fusion marker for AddImm+Ld8
// pairs. 16 bytes, same as Instr, so predecoding doubles rather than
// explodes the instruction working set.
type decInstr struct {
	op   Op
	rd   uint8
	rs1  uint8
	rs2  uint8
	bk   uint8 // base kind for memory operands
	fuse uint8 // nonzero: next instruction is a fusable Ld8 tail
	imm  int64
}

// isMemOp reports whether the opcode addresses memory via base(Rs1).
func isMemOp(op Op) bool {
	return op >= OpLd8 && op <= OpSt1
}

// predecode (re)builds the decoded image of the installed code. It is
// called lazily from runLoop whenever the code length changed
// (InstallCode appends; code is never mutated in place).
func (c *CPU) predecode() {
	dec := make([]decInstr, len(c.code))
	for i := range c.code {
		in := &c.code[i]
		d := &dec[i]
		d.op = in.Op
		d.rd = in.Rd
		d.rs1 = in.Rs1
		d.rs2 = in.Rs2
		d.imm = in.Imm
		if isMemOp(in.Op) {
			switch in.Rs1 {
			case BaseSP:
				d.bk = bkSP
			case BaseFP:
				d.bk = bkFP
			case RegZero:
				d.bk = bkZero
			default:
				d.bk = bkReg
			}
		}
		if in.Op == OpShlImm {
			// Step shifts by Imm&63; pre-mask so the loop shifts directly.
			d.imm = in.Imm & 63
		}
		// Fuse AddImm followed by Ld8: the pair is executed in one
		// dispatch when control falls through the AddImm. Both halves
		// keep their own cycle/instret charges and horizon checks, and
		// the Ld8's standalone entry still exists for jumps into it,
		// so fusion changes host work only. With instruction fetch
		// modeled, fusion is disabled: the fused tail bypasses the
		// loop-top line-transition check, so a pair straddling a code
		// line would skip the tail's fetch.
		if in.Op == OpAddImm && i+1 < len(c.code) && c.code[i+1].Op == OpLd8 && c.ifetch == nil {
			d.fuse = 1
		}
	}
	c.dec = dec
}

// baseAt resolves a predecoded memory operand's base value.
func (c *CPU) baseAt(d *decInstr) uint64 {
	switch d.bk {
	case bkSP:
		return c.SP
	case bkFP:
		return c.FP
	case bkZero:
		return 0
	default:
		return c.Regs[d.rs1]
	}
}

// RunCycles executes instructions until the cycle counter reaches
// horizon, the CPU halts, or a fault aborts the run. It is the
// event-horizon entry point for the VM's run loop: the caller computes
// the next cycle at which anything non-local can fire (ticker
// deadlines, pause points, cancel safepoints) and lets the CPU run
// unchecked until then. Equivalent to `for c.Cycles() < horizon {
// c.Step() }` with the per-instruction overhead hoisted out.
func (c *CPU) RunCycles(horizon uint64) {
	c.runLoop(horizon, ^uint64(0))
}

// Run executes up to maxInstr instructions, stopping early if the CPU
// halts. It returns the number of instructions retired, clamped to
// maxInstr: the budget is counted down per retired instruction, so the
// accounting neither overshoots when a trap handler halts mid-
// instruction nor breaks when instret wraps around 2^64.
func (c *CPU) Run(maxInstr uint64) uint64 {
	return c.runLoop(^uint64(0), maxInstr)
}

// runLoop is the shared tight interpreter loop. It retires whole
// instructions while cycles < cycleHorizon and the instruction budget
// lasts, and returns the number of instructions retired.
func (c *CPU) runLoop(cycleHorizon, budget uint64) uint64 {
	if len(c.dec) != len(c.code) {
		c.predecode()
	}
	dec := c.dec
	cbase := c.cfg.CodeBase
	clen := uint64(len(dec))
	mulCycles := c.cfg.MulCycles
	takenBranch := c.cfg.TakenBranchCycles
	callCycles := c.cfg.CallCycles
	barrierCycles := c.cfg.BarrierCycles

	// Hot state in locals; flushed at every call-out and at loop exit.
	pc := c.PC
	cyc := c.cycles
	ins := c.instret
	startBudget := budget
	ifetchOn := c.ifetch != nil

run:
	for !c.halted && cyc < cycleHorizon && budget != 0 {
		if pc < cbase {
			c.PC, c.cycles, c.instret = pc, cyc, ins
			c.fault("PC outside code space")
		}
		idx := (pc - cbase) / InstrBytes
		if idx >= clen {
			c.PC, c.cycles, c.instret = pc, cyc, ins
			c.fault("PC beyond installed code")
		}
		d := &dec[idx]
		if ifetchOn {
			if line := pc >> c.ifetchShift; line != c.lastFetchLine {
				// Same flush-reload discipline as a data access: the
				// fetch can miss, fire the listener, and run PEBS
				// capture, all of which must see live counters.
				c.lastFetchLine = line
				c.PC, c.cycles, c.instret = pc, cyc, ins
				cost := c.ifetch(pc)
				cyc = c.cycles + cost
			}
		}
		budget--
		cyc++
		ins++

		switch d.op {
		case OpNop:

		case OpMovImm:
			c.setReg(d.rd, uint64(d.imm))
		case OpMov:
			c.setReg(d.rd, c.reg(d.rs1))

		case OpAdd:
			c.setReg(d.rd, c.reg(d.rs1)+c.reg(d.rs2))
		case OpSub:
			c.setReg(d.rd, c.reg(d.rs1)-c.reg(d.rs2))
		case OpMul:
			cyc += mulCycles
			c.setReg(d.rd, uint64(int64(c.reg(d.rs1))*int64(c.reg(d.rs2))))
		case OpAnd:
			c.setReg(d.rd, c.reg(d.rs1)&c.reg(d.rs2))
		case OpOr:
			c.setReg(d.rd, c.reg(d.rs1)|c.reg(d.rs2))
		case OpXor:
			c.setReg(d.rd, c.reg(d.rs1)^c.reg(d.rs2))
		case OpShl:
			c.setReg(d.rd, c.reg(d.rs1)<<(c.reg(d.rs2)&63))
		case OpShr:
			c.setReg(d.rd, c.reg(d.rs1)>>(c.reg(d.rs2)&63))
		case OpSar:
			c.setReg(d.rd, uint64(int64(c.reg(d.rs1))>>(c.reg(d.rs2)&63)))

		case OpAddImm:
			c.setReg(d.rd, c.reg(d.rs1)+uint64(d.imm))
			if d.fuse != 0 && !c.halted && cyc < cycleHorizon && budget != 0 {
				// Fused Ld8 tail: identical to the standalone Ld8 case
				// below, entered without another dispatch round-trip.
				pc += InstrBytes
				t := &dec[idx+1]
				budget--
				cyc++
				ins++
				a := c.baseAt(t) + uint64(t.imm)
				c.PC, c.cycles, c.instret = pc, cyc, ins
				cost := c.Hier.Access(a, 8, false)
				cyc = c.cycles + cost
				c.setReg(t.rd, c.Mem.Read8(a))
			}
		case OpMulImm:
			cyc += mulCycles
			c.setReg(d.rd, uint64(int64(c.reg(d.rs1))*d.imm))
		case OpShlImm:
			c.setReg(d.rd, c.reg(d.rs1)<<uint64(d.imm))

		case OpLd8:
			a := c.baseAt(d) + uint64(d.imm)
			c.PC, c.cycles, c.instret = pc, cyc, ins
			cost := c.Hier.Access(a, 8, false)
			cyc = c.cycles + cost
			c.setReg(d.rd, c.Mem.Read8(a))
		case OpLd4:
			a := c.baseAt(d) + uint64(d.imm)
			c.PC, c.cycles, c.instret = pc, cyc, ins
			cost := c.Hier.Access(a, 4, false)
			cyc = c.cycles + cost
			c.setReg(d.rd, uint64(c.Mem.Read4(a)))
		case OpLd2:
			a := c.baseAt(d) + uint64(d.imm)
			c.PC, c.cycles, c.instret = pc, cyc, ins
			cost := c.Hier.Access(a, 2, false)
			cyc = c.cycles + cost
			c.setReg(d.rd, uint64(c.Mem.Read2(a)))
		case OpLd1:
			a := c.baseAt(d) + uint64(d.imm)
			c.PC, c.cycles, c.instret = pc, cyc, ins
			cost := c.Hier.Access(a, 1, false)
			cyc = c.cycles + cost
			c.setReg(d.rd, uint64(c.Mem.Read1(a)))

		case OpSt8:
			a := c.baseAt(d) + uint64(d.imm)
			c.PC, c.cycles, c.instret = pc, cyc, ins
			cost := c.Hier.Access(a, 8, true)
			cyc = c.cycles + cost
			c.Mem.Write8(a, c.reg(d.rs2))
		case OpStRef:
			a := c.baseAt(d) + uint64(d.imm)
			c.PC, c.cycles, c.instret = pc, cyc, ins
			cost := c.Hier.Access(a, 8, true)
			cyc = c.cycles + cost
			v := c.reg(d.rs2)
			c.Mem.Write8(a, v)
			cyc += barrierCycles
			if c.Barrier != nil {
				// The barrier charges AddCycles for remembered-set
				// records; it must see (and we must keep) the live
				// counter.
				c.cycles = cyc
				c.Barrier(a, v)
				cyc = c.cycles
			}
		case OpSt4:
			a := c.baseAt(d) + uint64(d.imm)
			c.PC, c.cycles, c.instret = pc, cyc, ins
			cost := c.Hier.Access(a, 4, true)
			cyc = c.cycles + cost
			c.Mem.Write4(a, uint32(c.reg(d.rs2)))
		case OpSt2:
			a := c.baseAt(d) + uint64(d.imm)
			c.PC, c.cycles, c.instret = pc, cyc, ins
			cost := c.Hier.Access(a, 2, true)
			cyc = c.cycles + cost
			c.Mem.Write2(a, uint16(c.reg(d.rs2)))
		case OpSt1:
			a := c.baseAt(d) + uint64(d.imm)
			c.PC, c.cycles, c.instret = pc, cyc, ins
			cost := c.Hier.Access(a, 1, true)
			cyc = c.cycles + cost
			c.Mem.Write1(a, uint8(c.reg(d.rs2)))

		case OpEnter:
			c.SP -= 8
			c.PC, c.cycles, c.instret = pc, cyc, ins
			cost := c.Hier.Access(c.SP, 8, true)
			cyc = c.cycles + cost
			c.Mem.Write8(c.SP, c.FP)
			c.FP = c.SP
			c.SP -= uint64(d.imm)
		case OpLeave:
			c.SP = c.FP
			c.PC, c.cycles, c.instret = pc, cyc, ins
			cost := c.Hier.Access(c.SP, 8, false)
			cyc = c.cycles + cost
			c.FP = c.Mem.Read8(c.SP)
			c.SP += 8

		case OpRet:
			cyc += callCycles
			c.PC, c.cycles, c.instret = pc, cyc, ins
			cost := c.Hier.Access(c.SP, 8, false)
			cyc = c.cycles + cost
			target := c.Mem.Read8(c.SP)
			c.SP += 8
			if target == 0 {
				// Return from the entry frame: the program is done.
				// PC stays at the Ret, exactly like Step.
				c.Halt(0)
				break run
			}
			pc = target
			continue

		case OpJmp:
			cyc += takenBranch
			pc = uint64(d.imm)
			continue

		case OpBrEQ:
			if c.reg(d.rs1) == c.reg(d.rs2) {
				cyc += takenBranch
				pc = uint64(d.imm)
				continue
			}
		case OpBrNE:
			if c.reg(d.rs1) != c.reg(d.rs2) {
				cyc += takenBranch
				pc = uint64(d.imm)
				continue
			}
		case OpBrLT:
			if int64(c.reg(d.rs1)) < int64(c.reg(d.rs2)) {
				cyc += takenBranch
				pc = uint64(d.imm)
				continue
			}
		case OpBrLE:
			if int64(c.reg(d.rs1)) <= int64(c.reg(d.rs2)) {
				cyc += takenBranch
				pc = uint64(d.imm)
				continue
			}
		case OpBrGT:
			if int64(c.reg(d.rs1)) > int64(c.reg(d.rs2)) {
				cyc += takenBranch
				pc = uint64(d.imm)
				continue
			}
		case OpBrGE:
			if int64(c.reg(d.rs1)) >= int64(c.reg(d.rs2)) {
				cyc += takenBranch
				pc = uint64(d.imm)
				continue
			}
		case OpBrULT:
			if c.reg(d.rs1) < c.reg(d.rs2) {
				cyc += takenBranch
				pc = uint64(d.imm)
				continue
			}
		case OpBrUGE:
			if c.reg(d.rs1) >= c.reg(d.rs2) {
				cyc += takenBranch
				pc = uint64(d.imm)
				continue
			}

		default:
			// Calls, divides, traps, and unimplemented opcodes: undo
			// the pre-charge (Step charges its own) and delegate, so
			// the rare cases share one implementation with Step.
			cyc--
			ins--
			c.PC, c.cycles, c.instret = pc, cyc, ins
			c.Step()
			cyc, ins = c.cycles, c.instret
			pc = c.PC
			if len(dec) != len(c.code) {
				// A trap handler installed code (recompilation);
				// refresh the decoded image before continuing.
				c.predecode()
				dec = c.dec
				clen = uint64(len(dec))
			}
			continue
		}

		pc += InstrBytes
	}

	c.PC, c.cycles, c.instret = pc, cyc, ins
	return startBudget - budget
}
