package cpu

import (
	"fmt"

	"hpmvm/internal/snap"
)

// Snapshot/Restore implement snap.Checkpointable for the core. Mutable
// state is the architectural registers, the cycle/instret counters and
// the halt/privilege flags. The code space is deliberately *not*
// serialized: compiled code is rebuilt deterministically by booting a
// fresh system from the same Options (plus replaying the recompilation
// log, see vm/runtime), so the snapshot only records the installed
// instruction count and Restore verifies it as a consistency check.

const (
	snapComponent = "hw/cpu"
	snapVersion   = 1
)

// Snapshot serializes the architectural state.
func (c *CPU) Snapshot() snap.ComponentState {
	var w snap.Writer
	for i := range c.Regs {
		w.U64(c.Regs[i])
	}
	w.U64(c.SP)
	w.U64(c.FP)
	w.U64(c.PC)
	w.U64(c.cycles)
	w.U64(c.instret)
	w.Bool(c.halted)
	w.Bool(c.usermode)
	w.I64(c.exitStatus)
	w.U64(uint64(len(c.code)))
	// Opt-in instruction-fetch tail, present exactly when the ifetch
	// hook is installed (same Options on both sides of a restore, so
	// pre-existing snapshots keep their exact bytes).
	if c.ifetch != nil {
		w.U64(c.lastFetchLine)
	}
	return snap.ComponentState{Component: snapComponent, Version: snapVersion, Data: w.Bytes()}
}

// Restore overwrites the architectural state. The CPU must already hold
// the same installed code as the snapshot's origin (same boot + same
// recompilations); a code-length mismatch is rejected.
func (c *CPU) Restore(st snap.ComponentState) error {
	if err := snap.Check(st, snapComponent, snapVersion); err != nil {
		return err
	}
	r := snap.NewReader(st.Data)
	var regs [NumRegs]uint64
	for i := range regs {
		regs[i] = r.U64()
	}
	sp := r.U64()
	fp := r.U64()
	pc := r.U64()
	cycles := r.U64()
	instret := r.U64()
	halted := r.Bool()
	usermode := r.Bool()
	exitStatus := r.I64()
	codeLen := r.U64()
	lastFetchLine := ^uint64(0)
	if c.ifetch != nil {
		lastFetchLine = r.U64()
	}
	if err := r.Close(); err != nil {
		return err
	}
	if codeLen != uint64(len(c.code)) {
		return fmt.Errorf("cpu: %w: snapshot has %d installed instructions, cpu has %d (boot/recompile divergence)",
			snap.ErrDecode, codeLen, len(c.code))
	}
	c.Regs = regs
	c.SP = sp
	c.FP = fp
	c.PC = pc
	c.cycles = cycles
	c.instret = instret
	c.halted = halted
	c.usermode = usermode
	c.exitStatus = exitStatus
	c.lastFetchLine = lastFetchLine
	return nil
}
