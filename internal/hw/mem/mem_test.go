package mem

import (
	"testing"
	"testing/quick"
)

func TestReadWriteRoundTrip(t *testing.T) {
	m := New()
	m.Write8(0x1000, 0x1122334455667788)
	if got := m.Read8(0x1000); got != 0x1122334455667788 {
		t.Fatalf("Read8 = %#x", got)
	}
	m.Write4(0x2000, 0xCAFEBABE)
	if got := m.Read4(0x2000); got != 0xCAFEBABE {
		t.Fatalf("Read4 = %#x", got)
	}
	m.Write2(0x3000, 0xBEEF)
	if got := m.Read2(0x3000); got != 0xBEEF {
		t.Fatalf("Read2 = %#x", got)
	}
	m.Write1(0x4001, 0xAB)
	if got := m.Read1(0x4001); got != 0xAB {
		t.Fatalf("Read1 = %#x", got)
	}
}

func TestLittleEndianLayout(t *testing.T) {
	m := New()
	m.Write8(0x1000, 0x0807060504030201)
	for i := uint64(0); i < 8; i++ {
		if got := m.Read1(0x1000 + i); got != uint8(i+1) {
			t.Fatalf("byte %d = %#x, want %#x", i, got, i+1)
		}
	}
	// Sub-word reads see the same bytes.
	if got := m.Read4(0x1004); got != 0x08070605 {
		t.Fatalf("Read4 upper half = %#x", got)
	}
}

func TestCrossPageAccess(t *testing.T) {
	m := New()
	// Bytes spanning a backing-page boundary via Zero and Read1.
	base := uint64(PageSize - 4)
	for i := uint64(0); i < 8; i++ {
		m.Write1(base+i, uint8(0x10+i))
	}
	for i := uint64(0); i < 8; i++ {
		if got := m.Read1(base + i); got != uint8(0x10+i) {
			t.Fatalf("cross-page byte %d = %#x", i, got)
		}
	}
}

func TestAlignmentChecks(t *testing.T) {
	m := New()
	for _, fn := range []func(){
		func() { m.Read8(0x1004) },
		func() { m.Write8(0x1001, 1) },
		func() { m.Read4(0x1002) },
		func() { m.Read2(0x1001) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on unaligned access")
				}
			}()
			fn()
		}()
	}
}

func TestNullDereferencePanics(t *testing.T) {
	m := New()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on null read")
		}
	}()
	m.Read8(0)
}

func TestZero(t *testing.T) {
	m := New()
	for i := uint64(0); i < 64; i += 8 {
		m.Write8(0x1000+i, ^uint64(0))
	}
	m.Zero(0x1008, 40)
	if m.Read8(0x1000) != ^uint64(0) {
		t.Error("Zero clobbered preceding word")
	}
	for i := uint64(0x1008); i < 0x1030; i += 8 {
		if m.Read8(i) != 0 {
			t.Errorf("word at %#x not zeroed", i)
		}
	}
	if m.Read8(0x1030) != ^uint64(0) {
		t.Error("Zero clobbered following word")
	}
	// Zero across a page boundary.
	m.Write8(PageSize-8, ^uint64(0))
	m.Write8(PageSize, ^uint64(0))
	m.Zero(PageSize-8, 16)
	if m.Read8(PageSize-8) != 0 || m.Read8(PageSize) != 0 {
		t.Error("cross-page Zero failed")
	}
}

func TestCopyOverlap(t *testing.T) {
	m := New()
	for i := uint64(0); i < 8; i++ {
		m.Write1(0x1000+i, uint8(i))
	}
	// Overlapping forward copy (memmove semantics).
	m.Copy(0x1002, 0x1000, 6)
	want := []uint8{0, 1, 0, 1, 2, 3, 4, 5}
	for i, w := range want {
		if got := m.Read1(0x1000 + uint64(i)); got != w {
			t.Fatalf("byte %d = %d, want %d", i, got, w)
		}
	}
}

func TestMemoryVsShadowProperty(t *testing.T) {
	// Property: the sparse memory behaves like a flat map of words.
	m := New()
	shadow := make(map[uint64]uint64)
	f := func(slot uint16, val uint64) bool {
		addr := 0x10000 + uint64(slot)*8
		m.Write8(addr, val)
		shadow[addr] = val
		// Check a few previously written slots too.
		for a, v := range shadow {
			if m.Read8(a) != v {
				return false
			}
			break
		}
		return m.Read8(addr) == val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRegionMap(t *testing.T) {
	var mm Map
	mm.AddRegion(Region{Name: "a", Start: 0x1000, End: 0x2000})
	mm.AddRegion(Region{Name: "b", Start: 0x3000, End: 0x4000})
	if r := mm.Find(0x1800); r == nil || r.Name != "a" {
		t.Errorf("Find(0x1800) = %v", r)
	}
	if r := mm.Find(0x2800); r != nil {
		t.Errorf("Find in gap = %v", r)
	}
	if len(mm.Regions()) != 2 {
		t.Errorf("Regions = %d", len(mm.Regions()))
	}
	if (Region{Start: 0x1000, End: 0x2000}).Size() != 0x1000 {
		t.Error("Size wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on overlapping region")
		}
	}()
	mm.AddRegion(Region{Name: "c", Start: 0x1800, End: 0x2800})
}

func TestFootprint(t *testing.T) {
	m := New()
	if m.FootprintBytes() != 0 {
		t.Error("fresh memory has footprint")
	}
	m.Write8(0x1000, 1)
	m.Write8(0x1000+PageSize, 1)
	if got := m.FootprintBytes(); got != 2*PageSize {
		t.Errorf("FootprintBytes = %d, want %d", got, 2*PageSize)
	}
}
