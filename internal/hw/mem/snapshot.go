package mem

import (
	"fmt"
	"sort"

	"hpmvm/internal/snap"
)

// Snapshot/Restore implement snap.Checkpointable for the sparse address
// space. The encoding is the sorted list of materialized pages with
// their raw contents; region registration (Map) is boot-time layout,
// not mutable state, and is rebuilt by constructing a fresh system.

const (
	snapComponent = "hw/mem"
	snapVersion   = 1
)

// Snapshot serializes all materialized pages in ascending page order.
func (m *Memory) Snapshot() snap.ComponentState {
	keys := make([]uint64, 0, len(m.pages))
	for k := range m.pages {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var w snap.Writer
	w.U64(uint64(len(keys)))
	for _, k := range keys {
		w.U64(k)
		w.Bytes8(m.pages[k][:])
	}
	w.U64(uint64(m.touched))
	return snap.ComponentState{Component: snapComponent, Version: snapVersion, Data: w.Bytes()}
}

// Restore replaces the address space contents with the snapshot's
// pages. Pages materialized since boot that are absent from the
// snapshot are dropped, so the footprint matches the origin exactly.
func (m *Memory) Restore(st snap.ComponentState) error {
	if err := snap.Check(st, snapComponent, snapVersion); err != nil {
		return err
	}
	r := snap.NewReader(st.Data)
	n := r.U64()
	pages := make(map[uint64]*[PageSize]byte, n)
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		k := r.U64()
		b := r.Bytes8()
		if r.Err() != nil {
			break
		}
		if len(b) != PageSize {
			return fmt.Errorf("mem: %w: page %#x has %d bytes, want %d", snap.ErrDecode, k, len(b), PageSize)
		}
		p := new([PageSize]byte)
		copy(p[:], b)
		pages[k] = p
	}
	touched := r.U64()
	if err := r.Close(); err != nil {
		return err
	}
	m.pages = pages
	m.touched = int(touched)
	// The translation memo points into the replaced page set.
	m.memoPage = [pageMemoSize]*[PageSize]byte{}
	return nil
}
