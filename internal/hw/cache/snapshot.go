package cache

import (
	"fmt"
	"sort"

	"hpmvm/internal/snap"
)

// Snapshot/Restore implement snap.Checkpointable for the memory
// hierarchy. Mutable state is the three tag arrays (including LRU
// stamps and dirty bits), the stream prefetcher's trained streams, the
// window counters and the prefetched-line attribution set. Geometry is
// configuration: Restore requires the hierarchy to have been built from
// the same Config and rejects a tag-array length mismatch.

const (
	snapComponent = "hw/cache"
	snapVersion   = 1
)

func (sa *setAssoc) encode(w *snap.Writer) {
	w.U64(uint64(len(sa.lines)))
	for i := range sa.lines {
		l := &sa.lines[i]
		w.U64(l.tag)
		w.Bool(l.valid)
		w.Bool(l.dirty)
		w.U64(l.lru)
	}
	w.U64(sa.stamp)
	w.U64(sa.accesses)
	w.U64(sa.misses)
}

func (sa *setAssoc) decode(r *snap.Reader, name string) error {
	n := r.U64()
	if r.Err() == nil && n != uint64(len(sa.lines)) {
		return fmt.Errorf("cache: %w: %s has %d lines, snapshot has %d (geometry mismatch)",
			snap.ErrDecode, name, len(sa.lines), n)
	}
	for i := range sa.lines {
		sa.lines[i].tag = r.U64()
		sa.lines[i].valid = r.Bool()
		sa.lines[i].dirty = r.Bool()
		sa.lines[i].lru = r.U64()
	}
	sa.stamp = r.U64()
	sa.accesses = r.U64()
	sa.misses = r.U64()
	// The MRU memo indexes into the just-overwritten lines; drop it,
	// and rebuild the way index from the restored tags.
	sa.memoOK = [memoSlots]bool{}
	if sa.idx != nil {
		sa.idx.clear()
		for i := range sa.lines {
			if sa.lines[i].valid {
				sa.idx.put(sa.lines[i].tag, uint64(i))
			}
		}
	}
	return r.Err()
}

// Snapshot serializes the hierarchy's hardware and counter state.
func (h *Hierarchy) Snapshot() snap.ComponentState {
	var w snap.Writer
	h.l1.encode(&w)
	h.l2.encode(&w)
	h.tlb.encode(&w)
	w.U64(uint64(len(h.streams)))
	for i := range h.streams {
		s := &h.streams[i]
		w.U64(s.lastLine)
		w.I64(s.dir)
		w.I64(int64(s.conf))
		w.Bool(s.valid)
		w.U64(s.lru)
	}
	w.U64(h.stamp)
	st := h.stats
	w.U64(st.Accesses)
	w.U64(st.Loads)
	w.U64(st.Stores)
	w.U64(st.L1Misses)
	w.U64(st.L2Misses)
	w.U64(st.TLBMisses)
	w.U64(st.Writebacks)
	w.U64(st.Prefetches)
	w.U64(st.PrefetchHits)
	w.U64(st.Cycles)
	keys := h.prefetched.Keys()
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w.U64(uint64(len(keys)))
	for _, k := range keys {
		w.U64(k)
	}
	// Opt-in I-cache tail, present exactly when the model is enabled.
	// The fingerprint binding guarantees Restore runs under the same
	// Options and therefore the same gating, so pre-existing snapshots
	// (no I-cache) keep their exact bytes.
	if h.l1i != nil {
		h.l1i.encode(&w)
		ist := h.istats
		w.U64(ist.Fetches)
		w.U64(ist.Misses)
		w.U64(ist.MemFills)
		w.U64(ist.Cycles)
	}
	// Opt-in software-prefetch tail, gated exactly like the I-cache
	// tail: present when EnableSwPrefetch ran, absent (byte-identical
	// encoding) for every pre-existing configuration.
	if h.sw != nil {
		w.U64(st.SwPrefetches)
		w.U64(st.SwPrefetchHits)
		swKeys := h.sw.prefetched.Keys()
		sort.Slice(swKeys, func(i, j int) bool { return swKeys[i] < swKeys[j] })
		w.U64(uint64(len(swKeys)))
		for _, k := range swKeys {
			w.U64(k)
		}
		pcs := make([]uint64, 0, len(h.sw.sites))
		for pc := range h.sw.sites {
			pcs = append(pcs, pc)
		}
		sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
		w.U64(uint64(len(pcs)))
		for _, pc := range pcs {
			w.U64(pc)
			w.I64(h.sw.sites[pc])
		}
	}
	return snap.ComponentState{Component: snapComponent, Version: snapVersion, Data: w.Bytes()}
}

// Restore overwrites the hierarchy's hardware and counter state. The
// listener and observer wiring is untouched.
func (h *Hierarchy) Restore(st snap.ComponentState) error {
	if err := snap.Check(st, snapComponent, snapVersion); err != nil {
		return err
	}
	r := snap.NewReader(st.Data)
	if err := h.l1.decode(r, "l1"); err != nil {
		return err
	}
	if err := h.l2.decode(r, "l2"); err != nil {
		return err
	}
	if err := h.tlb.decode(r, "tlb"); err != nil {
		return err
	}
	nStreams := r.U64()
	if r.Err() == nil && nStreams != uint64(len(h.streams)) {
		return fmt.Errorf("cache: %w: prefetcher has %d streams, snapshot has %d (geometry mismatch)",
			snap.ErrDecode, len(h.streams), nStreams)
	}
	for i := range h.streams {
		s := &h.streams[i]
		s.lastLine = r.U64()
		s.dir = r.I64()
		s.conf = int(r.I64())
		s.valid = r.Bool()
		s.lru = r.U64()
	}
	h.stamp = r.U64()
	var stats Stats
	stats.Accesses = r.U64()
	stats.Loads = r.U64()
	stats.Stores = r.U64()
	stats.L1Misses = r.U64()
	stats.L2Misses = r.U64()
	stats.TLBMisses = r.U64()
	stats.Writebacks = r.U64()
	stats.Prefetches = r.U64()
	stats.PrefetchHits = r.U64()
	stats.Cycles = r.U64()
	nPref := r.U64()
	pref := newPfSet()
	var mask uint64
	for i := uint64(0); i < nPref && r.Err() == nil; i++ {
		k := r.U64()
		pref.Add(k)
		mask |= 1 << (k & 63)
	}
	var istats IStats
	if h.l1i != nil {
		if err := h.l1i.decode(r, "l1i"); err != nil {
			return err
		}
		istats.Fetches = r.U64()
		istats.Misses = r.U64()
		istats.MemFills = r.U64()
		istats.Cycles = r.U64()
	}
	var swPref *pfSet
	var swMask uint64
	var swSites map[uint64]int64
	if h.sw != nil {
		stats.SwPrefetches = r.U64()
		stats.SwPrefetchHits = r.U64()
		swPref = newPfSet()
		nSw := r.U64()
		for i := uint64(0); i < nSw && r.Err() == nil; i++ {
			k := r.U64()
			swPref.Add(k)
			swMask |= 1 << (k & 63)
		}
		nSites := r.U64()
		swSites = make(map[uint64]int64, nSites)
		for i := uint64(0); i < nSites && r.Err() == nil; i++ {
			pc := r.U64()
			swSites[pc] = r.I64()
		}
	}
	if err := r.Close(); err != nil {
		return err
	}
	h.stats = stats
	h.istats = istats
	h.prefetched = pref
	h.pfMask = mask
	if h.sw != nil {
		h.sw.prefetched = swPref
		h.sw.mask = swMask
		h.sw.sites = swSites
	}
	return nil
}
