package cache

import "testing"

// TestStatsDerivedRates pins the derived-rate accessors, including the
// zero-access window where every denominator is empty: a freshly reset
// window must report well-defined zero rates, not NaN.
func TestStatsDerivedRates(t *testing.T) {
	cases := []struct {
		name string
		st   Stats

		l1, l2, l2local, tlb, pfAcc, cpa float64
	}{
		{
			name: "zero window",
			st:   Stats{},
			// all rates 0: nothing divides by zero
		},
		{
			name: "typical mix",
			st: Stats{
				Accesses: 100, L1Misses: 10, L2Misses: 5, TLBMisses: 2,
				Prefetches: 4, PrefetchHits: 3, Cycles: 500,
			},
			l1: 0.10, l2: 0.05, l2local: 0.5, tlb: 0.02, pfAcc: 0.75, cpa: 5,
		},
		{
			name: "every access misses everywhere",
			st: Stats{
				Accesses: 4, L1Misses: 4, L2Misses: 4, TLBMisses: 4, Cycles: 1000,
			},
			l1: 1, l2: 1, l2local: 1, tlb: 1, cpa: 250,
		},
		{
			name: "hits only",
			st:   Stats{Accesses: 8, Cycles: 16},
			// L2LocalMissRate has an empty denominator (no L1 misses)
			cpa: 2,
		},
		{
			name: "prefetches issued, none demanded",
			st:   Stats{Accesses: 2, Prefetches: 6, Cycles: 4},
			cpa:  2,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			checks := []struct {
				name string
				got  float64
				want float64
			}{
				{"L1MissRate", c.st.L1MissRate(), c.l1},
				{"L2MissRate", c.st.L2MissRate(), c.l2},
				{"L2LocalMissRate", c.st.L2LocalMissRate(), c.l2local},
				{"TLBMissRate", c.st.TLBMissRate(), c.tlb},
				{"PrefetchAccuracy", c.st.PrefetchAccuracy(), c.pfAcc},
				{"CyclesPerAccess", c.st.CyclesPerAccess(), c.cpa},
			}
			for _, ch := range checks {
				if ch.got != ch.want {
					t.Errorf("%s = %v, want %v", ch.name, ch.got, ch.want)
				}
				if ch.got != ch.got { // NaN guard
					t.Errorf("%s is NaN", ch.name)
				}
			}
		})
	}
}

// TestResetStatsWindowIndependence pins the measurement-window
// contract of ResetStats: counters and the prefetched-line attribution
// set belong to the window and are cleared, while physical machine
// state (cache/TLB contents, trained prefetch streams) is retained so
// closing a window never changes subsequent timing.
func TestResetStatsWindowIndependence(t *testing.T) {
	cfg := DefaultP4()
	h := New(cfg)

	// Sequential walk long enough to train the stream detector and
	// leave prefetched lines outstanding (issued but not yet demanded).
	base := uint64(0x10_0000)
	for i := uint64(0); i < 32; i++ {
		h.Access(base+i*uint64(cfg.LineSize), 8, false)
	}
	pre := h.Stats()
	if pre.Prefetches == 0 || pre.PrefetchHits == 0 {
		t.Fatalf("walk did not exercise the prefetcher: %+v", pre)
	}
	if h.prefetched.Len() == 0 {
		t.Fatal("walk left no outstanding prefetched lines; pick a longer stream")
	}
	outstanding := h.prefetched.Keys()[0]

	h.ResetStats()

	// Window state is gone: counters zeroed, attribution set empty.
	if h.Stats() != (Stats{}) {
		t.Errorf("counters not zeroed: %+v", h.Stats())
	}
	if h.prefetched.Len() != 0 {
		t.Errorf("%d prefetched-line entries leaked into the new window", h.prefetched.Len())
	}

	// Demanding a line prefetched in the PREVIOUS window must not count
	// as a prefetch hit in this one (it used to, letting a window report
	// more prefetch hits than prefetches).
	h.Access(outstanding<<log2(cfg.LineSize), 8, false)
	if got := h.Stats().PrefetchHits; got != 0 {
		t.Errorf("prefetch hit attributed across a window boundary (PrefetchHits = %d)", got)
	}

	// Physical state is retained: a line demanded before the reset is
	// still resident, so re-touching it is a pure L1 hit at hit cost.
	costBefore := h.Stats().Cycles
	cost := h.Access(base, 8, false)
	if cost != cfg.L1HitCycles {
		t.Errorf("resident line cost %d after ResetStats, want L1 hit cost %d (cache contents must survive a window close)", cost, cfg.L1HitCycles)
	}
	if st := h.Stats(); st.L1Misses != 0 || st.Cycles != costBefore+cfg.L1HitCycles {
		t.Errorf("window close perturbed timing: %+v", st)
	}

	// The stream detector's training survives too.
	trained := false
	for _, s := range h.streams {
		if s.valid && s.conf >= 2 {
			trained = true
		}
	}
	if !trained {
		t.Error("stream detector lost its training across ResetStats")
	}
}

// TestResetStatsIsTimingNeutral runs the same access sequence twice —
// once straight through, once with ResetStats closing windows mid-way —
// and demands identical per-access costs: a statistics window close
// must be invisible to the simulated hardware.
func TestResetStatsIsTimingNeutral(t *testing.T) {
	seq := func(h *Hierarchy, resetEvery int) (costs []uint64) {
		for i := 0; i < 200; i++ {
			addr := uint64(0x40_0000) + uint64(i%50)*uint64(h.cfg.LineSize)
			costs = append(costs, h.Access(addr, 8, i%7 == 0))
			if resetEvery > 0 && i%resetEvery == 0 {
				h.ResetStats()
			}
		}
		return costs
	}
	plain := seq(New(DefaultP4()), 0)
	windowed := seq(New(DefaultP4()), 16)
	for i := range plain {
		if plain[i] != windowed[i] {
			t.Fatalf("access %d: cost %d with windows vs %d without — ResetStats changed timing", i, windowed[i], plain[i])
		}
	}
}
