// Package cache models the Pentium 4 memory hierarchy the paper
// measures against: a small L1 data cache, a unified L2, a data TLB,
// and a hardware stream prefetcher (§6.1: 16 KB L1D, 1 MB L2, 128-byte
// cache lines, hardware-based prefetching of data streams).
//
// The model is a timing/tag model: it tracks which lines are resident
// and charges cycle costs, while the actual data lives in the flat
// simulated memory (package mem). Every L1 miss, L2 miss and DTLB miss
// is reported to an event listener; the PEBS unit (package pebs)
// subscribes to these events to drive precise event-based sampling.
package cache

import (
	"fmt"

	"hpmvm/internal/obs"
)

// EventKind identifies a countable hardware event. The P4 exposes many
// more, but these are the ones the paper samples (§4.1: "L1, L2 cache
// misses and DTLB misses").
type EventKind int

const (
	// EventL1Miss fires on every L1 data-cache load or store miss.
	EventL1Miss EventKind = iota
	// EventL2Miss fires on every L2 miss (i.e. memory access).
	EventL2Miss
	// EventDTLBMiss fires on every data-TLB miss.
	EventDTLBMiss
	// EventL1IMiss fires on every instruction-cache miss, with addr the
	// fetched PC. Only raised when the opt-in I-cache model is enabled
	// (EnableICache); kept distinct from EventL1Miss so a PEBS session
	// sampling data misses never sees code addresses as data addresses.
	EventL1IMiss
	// NumEventKinds bounds the valid kinds; values in [0, NumEventKinds)
	// are samplable events.
	NumEventKinds
)

// String returns the conventional event name.
func (k EventKind) String() string {
	switch k {
	case EventL1Miss:
		return "L1_MISS"
	case EventL2Miss:
		return "L2_MISS"
	case EventDTLBMiss:
		return "DTLB_MISS"
	case EventL1IMiss:
		return "L1I_MISS"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Listener receives hardware events as they happen. addr is the data
// address whose access caused the event.
type Listener interface {
	HardwareEvent(kind EventKind, addr uint64)
}

// Config describes the cache geometry and the cycle cost model.
type Config struct {
	LineSize int // bytes per cache line (shared by L1 and L2)

	L1Size  int // total L1D bytes
	L1Assoc int // L1D associativity

	L2Size  int // total L2 bytes
	L2Assoc int // L2 associativity

	TLBEntries int // DTLB entries (fully associative)
	PageSize   int // virtual page size covered by one TLB entry

	// Cycle costs. An access always pays L1HitCycles; misses add the
	// corresponding penalty on top.
	L1HitCycles   uint64 // cost of an L1 hit
	L2HitCycles   uint64 // additional cost when L1 misses but L2 hits
	MemCycles     uint64 // additional cost when L2 misses
	TLBMissCycles uint64 // additional cost of a DTLB miss (page walk)

	// PrefetchEnabled turns on the stream prefetcher.
	PrefetchEnabled bool
	// PrefetchStreams is the number of concurrent streams tracked.
	PrefetchStreams int
}

// DefaultP4 returns the configuration matching the paper's experimental
// platform (§6.1): 3 GHz Pentium 4, 16 KB L1D, 1 MB L2, 128-byte lines,
// hardware prefetching. Latencies follow published P4 figures scaled to
// round numbers.
func DefaultP4() Config {
	return Config{
		LineSize:        128,
		L1Size:          16 * 1024,
		L1Assoc:         4,
		L2Size:          1024 * 1024,
		L2Assoc:         8,
		TLBEntries:      64,
		PageSize:        4096,
		L1HitCycles:     2,
		L2HitCycles:     18,
		MemCycles:       200,
		TLBMissCycles:   30,
		PrefetchEnabled: true,
		PrefetchStreams: 8,
	}
}

// Validate checks that the geometry is internally consistent.
func (c Config) Validate() error {
	checkPow2 := func(name string, v int) error {
		if v <= 0 || v&(v-1) != 0 {
			return fmt.Errorf("cache: %s must be a positive power of two, got %d", name, v)
		}
		return nil
	}
	for _, p := range []struct {
		name string
		v    int
	}{
		{"LineSize", c.LineSize}, {"L1Size", c.L1Size}, {"L1Assoc", c.L1Assoc},
		{"L2Size", c.L2Size}, {"L2Assoc", c.L2Assoc}, {"PageSize", c.PageSize},
	} {
		if err := checkPow2(p.name, p.v); err != nil {
			return err
		}
	}
	if c.TLBEntries <= 0 {
		return fmt.Errorf("cache: TLBEntries must be positive, got %d", c.TLBEntries)
	}
	if c.L1Size < c.LineSize*c.L1Assoc {
		return fmt.Errorf("cache: L1 too small for %d-way associativity", c.L1Assoc)
	}
	if c.L2Size < c.LineSize*c.L2Assoc {
		return fmt.Errorf("cache: L2 too small for %d-way associativity", c.L2Assoc)
	}
	return nil
}

// line is one cache line's tag state.
type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64 // last-use stamp
}

// setAssoc is a generic set-associative tag array with LRU replacement.
// Lines are stored in one flat row-major slice (set s occupies
// lines[s*assoc : (s+1)*assoc]) so a probe is a single bounds-checked
// slice index rather than a pointer chase through per-set slices.
//
// The hot path is split into probe (hit test + LRU touch) and fill
// (LRU eviction + insert): Hierarchy.Access calls probe with the
// already-shifted line/page address, so the offset shift and set/tag
// masking happen once per level instead of being recomputed inside a
// combined lookup.
type setAssoc struct {
	lines    []line
	assoc    uint64
	setMask  uint64
	setBits  uint
	offBits  uint
	stamp    uint64
	accesses uint64
	misses   uint64

	// MRU memo: recently hit or filled lines, direct-mapped by the low
	// key bits so lines from interleaved regions (stack, nursery,
	// mature space) can stay memoized at once. A probe whose key
	// matches skips the set scan and touches the line directly — pure
	// host-side memoization whose counter/LRU/dirty mutations are
	// identical to the scan's, so simulated state is unchanged (the
	// memo is never serialized; see snapshot.go). Invalidated whenever
	// lines[] changes under it: fill re-points its slot at the filled
	// way, invalidateAll and snapshot decode clear all slots.
	memoOK  [memoSlots]bool
	memoKey [memoSlots]uint64
	memoIdx [memoSlots]uint64

	// idx, when non-nil, is an exact key→way index replacing the way
	// scan entirely — used for the fully-associative DTLB, whose
	// 64-way scans dominate probe cost otherwise. Maintained by fill
	// (mirror of the valid lines), cleared by invalidateAll and
	// rebuilt by snapshot decode. Only enabled for single-set arrays,
	// where tag == key keeps the mirror trivial.
	idx *wayIndex
}

// memoSlots is the number of MRU memo slots; must be a power of two.
const memoSlots = 8

func newSetAssoc(totalLines, assoc int, offBits uint) *setAssoc {
	nsets := totalLines / assoc
	if nsets < 1 {
		nsets = 1
	}
	sa := &setAssoc{
		lines:   make([]line, nsets*assoc),
		assoc:   uint64(assoc),
		setMask: uint64(nsets - 1),
		setBits: uint(popcount(uint64(nsets - 1))),
		offBits: offBits,
	}
	if nsets == 1 && assoc >= 32 {
		sa.idx = newWayIndex(assoc)
	}
	return sa
}

// probe tests whether the line identified by key (addr >> offBits) is
// resident, updating the LRU stamp and dirty bit on a hit. Each probe
// advances the stamp exactly once; a following fill reuses it, so the
// probe+fill pair is stamp-equivalent to the previous combined lookup.
func (sa *setAssoc) probe(key uint64, markDirty bool) bool {
	sa.stamp++
	sa.accesses++
	if sa.idx != nil {
		way, ok := sa.idx.get(key)
		if !ok {
			return false
		}
		ln := &sa.lines[way]
		ln.lru = sa.stamp
		if markDirty {
			ln.dirty = true
		}
		return true
	}
	slot := key & (memoSlots - 1)
	if sa.memoOK[slot] && sa.memoKey[slot] == key {
		ln := &sa.lines[sa.memoIdx[slot]]
		ln.lru = sa.stamp
		if markDirty {
			ln.dirty = true
		}
		return true
	}
	base := (key & sa.setMask) * sa.assoc
	set := sa.lines[base : base+sa.assoc]
	tag := key >> sa.setBits
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = sa.stamp
			if markDirty {
				set[i].dirty = true
			}
			sa.memoOK[slot], sa.memoKey[slot], sa.memoIdx[slot] = true, key, base+uint64(i)
			return true
		}
	}
	return false
}

// fill inserts the line for key after a failed probe, evicting the LRU
// way. It reports whether the eviction wrote back a dirty line.
func (sa *setAssoc) fill(key uint64, markDirty bool) (writeback bool) {
	sa.misses++
	base := (key & sa.setMask) * sa.assoc
	set := sa.lines[base : base+sa.assoc]
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	writeback = set[victim].valid && set[victim].dirty
	if sa.idx != nil {
		// Single-set array: tag == key, so the index mirror updates
		// straight from the evicted and inserted tags.
		if set[victim].valid {
			sa.idx.del(set[victim].tag)
		}
		set[victim] = line{tag: key >> sa.setBits, valid: true, dirty: markDirty, lru: sa.stamp}
		sa.idx.put(key, base+uint64(victim))
		return writeback
	}
	set[victim] = line{tag: key >> sa.setBits, valid: true, dirty: markDirty, lru: sa.stamp}
	// The evicted line may be memoized under another key's slot; any
	// slot pointing at the replaced way is now stale.
	idx := base + uint64(victim)
	for s := range sa.memoIdx {
		if sa.memoIdx[s] == idx {
			sa.memoOK[s] = false
		}
	}
	// Then memoize the filled way: the line just missed is the
	// likeliest next hit.
	slot := key & (memoSlots - 1)
	sa.memoOK[slot], sa.memoKey[slot], sa.memoIdx[slot] = true, key, idx
	return writeback
}

// lookup probes for the line containing addr. If insert is true and the
// line is absent, it is filled (evicting LRU). It returns hit, and
// whether the eviction wrote back a dirty line.
func (sa *setAssoc) lookup(addr uint64, insert, markDirty bool) (hit, writeback bool) {
	key := addr >> sa.offBits
	if sa.probe(key, markDirty) {
		return true, false
	}
	if insert {
		writeback = sa.fill(key, markDirty)
	}
	return false, writeback
}

// contains probes without updating LRU or filling.
func (sa *setAssoc) contains(addr uint64) bool {
	key := addr >> sa.offBits
	base := (key & sa.setMask) * sa.assoc
	set := sa.lines[base : base+sa.assoc]
	tag := key >> sa.setBits
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// invalidateAll clears every line (used when a run is reset).
func (sa *setAssoc) invalidateAll() {
	for i := range sa.lines {
		sa.lines[i] = line{}
	}
	sa.memoOK = [memoSlots]bool{}
	if sa.idx != nil {
		sa.idx.clear()
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		n += int(x & 1)
		x >>= 1
	}
	return n
}

// Stats aggregates hierarchy counters.
type Stats struct {
	Accesses     uint64 // demand accesses (loads + stores)
	Loads        uint64
	Stores       uint64
	L1Misses     uint64
	L2Misses     uint64
	TLBMisses    uint64
	Writebacks   uint64
	Prefetches   uint64 // prefetch requests issued
	PrefetchHits uint64 // demand accesses that hit a prefetched line
	Cycles       uint64 // total memory-access cycles charged

	// Software-prefetch attribution (EnableSwPrefetch): issues and first
	// demand touches of sw-prefetched lines, kept apart from the
	// hardware-stream counters above so PrefetchAccuracy and the
	// ablation tables never conflate the two mechanisms. Tagged
	// omitempty so disabled-path response bodies stay byte-identical to
	// the pre-swprefetch encoding (the v1 rule: fields are only ever
	// added, and added as omitempty).
	SwPrefetches   uint64 `json:"SwPrefetches,omitempty"`
	SwPrefetchHits uint64 `json:"SwPrefetchHits,omitempty"`
}

// L1MissRate returns L1 misses per demand access.
func (s Stats) L1MissRate() float64 {
	return ratio(s.L1Misses, s.Accesses)
}

// L2MissRate returns L2 misses per demand access (the global miss
// rate: the fraction of accesses that go all the way to memory).
func (s Stats) L2MissRate() float64 {
	return ratio(s.L2Misses, s.Accesses)
}

// L2LocalMissRate returns L2 misses per L2 lookup (i.e. per L1 miss).
func (s Stats) L2LocalMissRate() float64 {
	return ratio(s.L2Misses, s.L1Misses)
}

// TLBMissRate returns DTLB misses per demand access.
func (s Stats) TLBMissRate() float64 {
	return ratio(s.TLBMisses, s.Accesses)
}

// PrefetchAccuracy returns the fraction of issued hardware-stream
// prefetches that were later demanded within the same measurement
// window. Software prefetches are accounted separately
// (SwPrefetchAccuracy).
func (s Stats) PrefetchAccuracy() float64 {
	return ratio(s.PrefetchHits, s.Prefetches)
}

// SwPrefetchAccuracy returns the fraction of issued software prefetches
// that were later demanded within the same measurement window.
func (s Stats) SwPrefetchAccuracy() float64 {
	return ratio(s.SwPrefetchHits, s.SwPrefetches)
}

// CyclesPerAccess returns the mean memory-access cost in cycles.
func (s Stats) CyclesPerAccess() float64 {
	return ratio(s.Cycles, s.Accesses)
}

// ratio divides two counters, mapping an empty denominator to 0 so
// rates over an empty measurement window are well-defined.
func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// IStats aggregates the opt-in instruction-cache counters. It is a
// separate struct from Stats on purpose: Stats' %+v rendering is
// frozen by the golden result fingerprints, so I-side counters must
// never be added there.
type IStats struct {
	Fetches  uint64 // I-fetch probes (one per cache-line transition)
	Misses   uint64 // L1I misses
	MemFills uint64 // L1I misses that also missed the unified L2
	Cycles   uint64 // fetch stall cycles charged
}

// MissRate returns L1I misses per fetch probe — the code-layout
// optimization's assessment signal.
func (s IStats) MissRate() float64 { return ratio(s.Misses, s.Fetches) }

// SwPrefetchCPU gives the hierarchy read access to the issuing CPU's
// architectural state: the software-prefetch model needs the PC of the
// instruction performing the current demand access (both interpreter
// loops flush the PC before every Access call-out) to decide whether an
// injected prefetch site is executing, and the privilege mode to ignore
// VM-service accesses made with a stale user PC.
type SwPrefetchCPU interface {
	SamplePC() uint64
	UserMode() bool
}

// swState is the opt-in software-prefetch model (EnableSwPrefetch):
// the installed site table plus the attribution set mirroring the
// hardware prefetcher's, kept separate so the two mechanisms stay
// individually measurable.
type swState struct {
	cpu       SwPrefetchCPU
	sites     map[uint64]int64 // injected site: PC -> prefetch delta in bytes
	issueCost uint64

	// prefetched/mask mirror Hierarchy.prefetched/pfMask for lines
	// installed by software prefetches awaiting their first demand
	// touch. mask is host-side acceleration only, never serialized.
	prefetched *pfSet
	mask       uint64
}

// stream is one tracked prefetch stream.
type stream struct {
	lastLine uint64
	dir      int64 // +1 ascending, -1 descending
	conf     int   // confidence
	valid    bool
	lru      uint64
}

// Hierarchy is the complete simulated memory hierarchy.
type Hierarchy struct {
	cfg      Config
	l1       *setAssoc
	l2       *setAssoc
	tlb      *setAssoc
	// l1i, when non-nil, is the opt-in instruction cache
	// (EnableICache): probed by IFetch on code-line transitions,
	// backed by the unified L2. Disabled (nil) for every
	// pre-framework configuration, so golden timing is untouched.
	l1i    *setAssoc
	istats IStats
	// sw, when non-nil, is the opt-in software-prefetch model
	// (EnableSwPrefetch). Nil for every pre-framework configuration, so
	// the disabled hot path costs two pointer tests and golden timing is
	// untouched.
	sw       *swState
	streams  []stream
	stamp    uint64
	stats    Stats
	listener Listener

	// obs, when non-nil, receives a measurement-window snapshot event
	// each time a window closes; obsNow supplies the global cycle
	// stamp. Nil-gated exactly like listener so the disabled path
	// costs one pointer test on the (cold) window-reset path and
	// nothing at all on the access hot path.
	obs    *obs.Observer
	obsNow func() uint64

	lineBits uint
	pageBits uint

	prefetched *pfSet // lines currently resident due to prefetch, not yet demanded

	// pfMask is a 64-bit bloom filter over the prefetched set (bit =
	// lineAddr mod 64): the access hot path tests one bit instead of a
	// map lookup when the probed line cannot be in the set. Deletions
	// leave bits set (false positives only cost the map lookup they
	// used to always pay); the mask resets whenever the set empties or
	// is replaced. Host-side only, never serialized.
	pfMask uint64

	// functional, when set, switches Access to the fast-forward lane of
	// sampled simulation (DESIGN.md §12): every access charges the flat
	// flatCost and produces no stats, but the tag state (TLB, L1, L2,
	// stream detector) keeps evolving exactly as in detailed mode and
	// listener events still fire. This is SMARTS-style functional warming: a
	// frozen cache feels no eviction pressure during fast-forward, so
	// long-reuse-distance lines survive artificially and measured
	// regions over-hit in L2 — warming keeps the state the next detailed
	// region inherits faithful to the full access stream.
	functional bool
	flatCost   uint64
}

// New builds a hierarchy from cfg. It panics on an invalid config since
// configs are produced by code, not end users.
func New(cfg Config) *Hierarchy {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	lineBits := log2(cfg.LineSize)
	pageBits := log2(cfg.PageSize)
	h := &Hierarchy{
		cfg:        cfg,
		l1:         newSetAssoc(cfg.L1Size/cfg.LineSize, cfg.L1Assoc, lineBits),
		l2:         newSetAssoc(cfg.L2Size/cfg.LineSize, cfg.L2Assoc, lineBits),
		tlb:        newSetAssoc(cfg.TLBEntries, cfg.TLBEntries, pageBits),
		lineBits:   lineBits,
		pageBits:   pageBits,
		prefetched: newPfSet(),
	}
	if cfg.PrefetchEnabled {
		h.streams = make([]stream, cfg.PrefetchStreams)
	}
	return h
}

func log2(v int) uint {
	var b uint
	for 1<<b < v {
		b++
	}
	return b
}

// SetListener registers the event listener (at most one; the PEBS unit
// multiplexes events itself, matching the P4's one-event-at-a-time
// PEBS restriction described in §4.1).
func (h *Hierarchy) SetListener(l Listener) { h.listener = l }

// SetObserver attaches the observability layer: the hierarchy's
// counters are registered as sampled counters (read only at snapshot
// time — the access hot path is untouched) and every window close
// emits an EvCacheWindow trace event. now supplies the global cycle
// counter for event stamps (the hierarchy has no CPU reference of its
// own). Passing a nil observer detaches.
func (h *Hierarchy) SetObserver(o *obs.Observer, now func() uint64) {
	h.obs, h.obsNow = o, now
	if o == nil {
		return
	}
	o.RegisterSampled("cache.accesses", func() uint64 { return h.stats.Accesses })
	o.RegisterSampled("cache.loads", func() uint64 { return h.stats.Loads })
	o.RegisterSampled("cache.stores", func() uint64 { return h.stats.Stores })
	o.RegisterSampled("cache.l1_misses", func() uint64 { return h.stats.L1Misses })
	o.RegisterSampled("cache.l2_misses", func() uint64 { return h.stats.L2Misses })
	o.RegisterSampled("cache.tlb_misses", func() uint64 { return h.stats.TLBMisses })
	o.RegisterSampled("cache.writebacks", func() uint64 { return h.stats.Writebacks })
	o.RegisterSampled("cache.prefetches", func() uint64 { return h.stats.Prefetches })
	o.RegisterSampled("cache.prefetch_hits", func() uint64 { return h.stats.PrefetchHits })
	o.RegisterSampled("cache.cycles", func() uint64 { return h.stats.Cycles })
	// The software-prefetch rows register only when the model is on:
	// the golden corpus freezes the disabled configurations' counter
	// set, and EnableSwPrefetch runs before the observer attaches.
	if h.sw != nil {
		o.RegisterSampled("cache.sw_prefetches", func() uint64 { return h.stats.SwPrefetches })
		o.RegisterSampled("cache.sw_prefetch_hits", func() uint64 { return h.stats.SwPrefetchHits })
	}
}

// Config returns the active configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Stats returns a snapshot of the counters.
func (h *Hierarchy) Stats() Stats { return h.stats }

// EnableICache attaches the opt-in instruction-cache model: a small
// L1I of the given total size and associativity (sharing the unified
// L2 and the line size) probed by IFetch. Geometry must be powers of
// two, like the data-side arrays. Must be called before the first
// access and before Snapshot/Restore; calling it twice replaces the
// array. There is no ITLB: code occupies a handful of pages that the
// real machine's ITLB covers trivially.
func (h *Hierarchy) EnableICache(size, assoc int) {
	if size <= 0 || size&(size-1) != 0 || assoc <= 0 || assoc&(assoc-1) != 0 ||
		size < h.cfg.LineSize*assoc {
		panic(fmt.Sprintf("cache: bad I-cache geometry size=%d assoc=%d line=%d",
			size, assoc, h.cfg.LineSize))
	}
	h.l1i = newSetAssoc(size/h.cfg.LineSize, assoc, h.lineBits)
	h.istats = IStats{}
}

// ICacheEnabled reports whether the instruction-cache model is on.
func (h *Hierarchy) ICacheEnabled() bool { return h.l1i != nil }

// IStats returns the instruction-cache counters.
func (h *Hierarchy) IStats() IStats { return h.istats }

// IFetch simulates the instruction fetch of the line holding addr and
// returns the stall cycles. The CPU calls it once per code-line
// transition: an L1I hit overlaps with execution and costs nothing; a
// miss is filled from the unified L2 (L2HitCycles) or memory
// (+MemCycles) and raises EventL1IMiss. The fetch is a read probe of
// the shared L2, so heavy I-misses evict data lines — the contention
// hot/cold code layout exists to avoid.
func (h *Hierarchy) IFetch(addr uint64) uint64 {
	st := &h.istats
	st.Fetches++
	lineAddr := addr >> h.lineBits
	if h.l1i.probe(lineAddr, false) {
		return 0
	}
	h.l1i.fill(lineAddr, false)
	st.Misses++
	cycles := h.cfg.L2HitCycles
	if h.listener != nil {
		h.listener.HardwareEvent(EventL1IMiss, addr)
	}
	if !h.l2.probe(lineAddr, false) {
		h.l2.fill(lineAddr, false)
		st.MemFills++
		cycles += h.cfg.MemCycles
	}
	st.Cycles += cycles
	return cycles
}

// EnableSwPrefetch attaches the opt-in software-prefetch model: demand
// accesses executed at an installed site PC (SetSwPrefetchSites) issue
// a SoftwarePrefetch of the access address plus the site's delta, each
// non-squashed issue costing issueCost cycles. cpu supplies the current
// PC and privilege mode. Must be called before the first access and
// before Snapshot/Restore (the model adds a conditional snapshot tail);
// calling it twice replaces the model's state.
func (h *Hierarchy) EnableSwPrefetch(cpu SwPrefetchCPU, issueCost uint64) {
	h.sw = &swState{cpu: cpu, issueCost: issueCost, prefetched: newPfSet()}
}

// SwPrefetchEnabled reports whether the software-prefetch model is on.
func (h *Hierarchy) SwPrefetchEnabled() bool { return h.sw != nil }

// SetSwPrefetchSites replaces the installed software-prefetch site
// table: a map from instruction PC to the prefetch delta in bytes the
// injected prefetch adds to that instruction's operand address. The map
// is copied; passing nil or an empty map uninstalls all sites.
// Requires EnableSwPrefetch.
func (h *Hierarchy) SetSwPrefetchSites(sites map[uint64]int64) {
	m := make(map[uint64]int64, len(sites))
	for pc, d := range sites {
		m[pc] = d
	}
	h.sw.sites = m
}

// SwPrefetchSites returns a copy of the installed site table (empty
// when the model is disabled).
func (h *Hierarchy) SwPrefetchSites() map[uint64]int64 {
	if h.sw == nil {
		return nil
	}
	m := make(map[uint64]int64, len(h.sw.sites))
	for pc, d := range h.sw.sites {
		m[pc] = d
	}
	return m
}

// SoftwarePrefetch issues one software prefetch of the line holding
// addr and returns the cycles charged. It is a separate entry point
// from the hardware stream prefetcher's fills on purpose: software
// issues are counted (SwPrefetches) and attributed (SwPrefetchHits)
// apart from the hardware stream's, and an explicit prefetch never
// trains the stream detector — it is not a demand miss — so the two
// mechanisms stay individually ablatable. A prefetch whose line is
// already L1-resident is squashed for free; otherwise it fills L1 (and
// L2 when absent) and costs the configured issue cycles. Requires
// EnableSwPrefetch.
func (h *Hierarchy) SoftwarePrefetch(addr uint64) uint64 {
	lineAddr := addr >> h.lineBits
	lineBase := lineAddr << h.lineBits
	if h.l1.contains(lineBase) {
		return 0
	}
	if h.functional {
		// Warming lane: install the line, skip statistics and
		// attribution, exactly like the hardware prefetchLine.
		h.l2.lookup(lineBase, true, false)
		h.l1.lookup(lineBase, true, false)
		return 0
	}
	s := h.sw
	h.stats.SwPrefetches++
	h.l2.lookup(lineBase, true, false)
	h.l1.lookup(lineBase, true, false)
	s.prefetched.Add(lineAddr)
	s.mask |= 1 << (lineAddr & 63)
	return s.issueCost
}

// swSiteIssue executes the software-prefetch instruction injected at
// the current PC, if any: a recompiled site issues a prefetch of its
// operand address plus the site delta alongside every demand access it
// performs. Gated on user mode because VM services (allocation, GC)
// access memory with a stale user PC that could alias a site. The
// injected instruction never prefetches across the page its operand
// lies in — translation past the boundary could fault — so out-of-page
// targets are dropped at issue.
func (h *Hierarchy) swSiteIssue(addr uint64) uint64 {
	s := h.sw
	if len(s.sites) == 0 || !s.cpu.UserMode() {
		return 0
	}
	delta, ok := s.sites[s.cpu.SamplePC()]
	if !ok {
		return 0
	}
	target := uint64(int64(addr) + delta)
	if target>>h.pageBits != addr>>h.pageBits {
		return 0
	}
	return h.SoftwarePrefetch(target)
}

// ResetStats closes the current measurement window: the counters are
// zeroed and the prefetched-line attribution set is cleared, so the
// next window's PrefetchHits only count prefetches issued inside that
// window (leftover entries used to let a window report more prefetch
// hits than prefetches — back-to-back windows were not independent).
//
// Physical machine state is deliberately retained: cache and TLB
// contents and the stream detector's trained streams are hardware
// state whose reset would change subsequent timing, which a statistics
// window close must never do. Use Flush for a full hardware reset.
// TestResetStatsWindowIndependence pins both halves of this contract.
func (h *Hierarchy) ResetStats() {
	if h.obs != nil {
		st := &h.stats
		h.obs.Emit(obs.EvCacheWindow, h.obsNow(), st.Accesses, st.L1Misses, st.Cycles)
	}
	h.stats = Stats{}
	h.istats = IStats{}
	if h.prefetched.Len() != 0 {
		h.prefetched.Clear()
	}
	h.pfMask = 0
	if h.sw != nil {
		if h.sw.prefetched.Len() != 0 {
			h.sw.prefetched.Clear()
		}
		h.sw.mask = 0
	}
}

// Flush invalidates all cache and TLB state.
func (h *Hierarchy) Flush() {
	h.l1.invalidateAll()
	h.l2.invalidateAll()
	h.tlb.invalidateAll()
	if h.l1i != nil {
		h.l1i.invalidateAll()
	}
	for i := range h.streams {
		h.streams[i] = stream{}
	}
	h.prefetched.Clear()
	h.pfMask = 0
	if h.sw != nil {
		// The attribution set is hardware-adjacent state and clears with
		// the lines it tracks; the site table is program text (injected
		// prefetch instructions) and survives a hardware flush.
		h.sw.prefetched.Clear()
		h.sw.mask = 0
	}
}

// SetFunctional switches the hierarchy into functional fast-forward
// mode: every Access returns flatCost and updates no stats, while tag
// state keeps warming and listener events keep firing (see the
// functional field). SetDetailed resumes cycle-exact timing from that
// warmed state.
func (h *Hierarchy) SetFunctional(flatCost uint64) {
	h.functional = true
	h.flatCost = flatCost
}

// SetDetailed returns the hierarchy to cycle-exact modeling.
func (h *Hierarchy) SetDetailed() { h.functional = false }

// Functional reports whether the hierarchy is in fast-forward mode.
func (h *Hierarchy) Functional() bool { return h.functional }

// Access simulates one demand access of the given size at addr and
// returns the cycle cost. write distinguishes stores from loads.
// Accesses are assumed not to cross a cache line (the CPU only issues
// naturally aligned accesses of at most 8 bytes).
//
// This is the single hottest function in the simulator — every load
// and store of every simulated instruction lands here — so the common
// case (TLB hit, L1 hit, no outstanding prefetches) is kept branch-
// lean: line and page addresses are shifted once and handed to the
// probe fast path, the prefetched-line bookkeeping is screened by the
// pfMask bloom bit before the set is consulted, and listener delivery
// is a nil check on the miss paths only (TestAccessFingerprint pins
// the exact behavior).
func (h *Hierarchy) Access(addr uint64, size int, write bool) uint64 {
	if h.functional {
		h.warmAccess(addr, write)
		return h.flatCost
	}
	st := &h.stats
	st.Accesses++
	if write {
		st.Stores++
	} else {
		st.Loads++
	}
	cycles := h.cfg.L1HitCycles

	// DTLB.
	if !h.tlb.probe(addr>>h.pageBits, false) {
		h.tlb.fill(addr>>h.pageBits, false)
		st.TLBMisses++
		cycles += h.cfg.TLBMissCycles
		if h.listener != nil {
			h.listener.HardwareEvent(EventDTLBMiss, addr)
		}
	}

	lineAddr := addr >> h.lineBits

	// First demand touch of a prefetched line counts as a prefetch
	// hit, whether it is found in L1 (usual case) or deeper. The bloom
	// mask screens out lines that cannot be in the outstanding set, so
	// the common case is a single bit test instead of a map lookup.
	if h.pfMask&(1<<(lineAddr&63)) != 0 && h.prefetched.Contains(lineAddr) {
		st.PrefetchHits++
		h.prefetched.Delete(lineAddr)
		if h.prefetched.Len() == 0 {
			h.pfMask = 0
		}
	}
	if h.sw != nil && h.sw.mask&(1<<(lineAddr&63)) != 0 && h.sw.prefetched.Contains(lineAddr) {
		st.SwPrefetchHits++
		h.sw.prefetched.Delete(lineAddr)
		if h.sw.prefetched.Len() == 0 {
			h.sw.mask = 0
		}
	}

	// L1 hit: the fast path out.
	if h.l1.probe(lineAddr, write) {
		if h.sw != nil {
			cycles += h.swSiteIssue(addr)
		}
		st.Cycles += cycles
		return cycles
	}
	if h.l1.fill(lineAddr, write) {
		st.Writebacks++
	}
	st.L1Misses++
	cycles += h.cfg.L2HitCycles
	if h.listener != nil {
		h.listener.HardwareEvent(EventL1Miss, addr)
	}

	// L2.
	if !h.l2.probe(lineAddr, write) {
		wb := h.l2.fill(lineAddr, write)
		st.L2Misses++
		cycles += h.cfg.MemCycles
		if h.listener != nil {
			h.listener.HardwareEvent(EventL2Miss, addr)
		}
		if wb {
			st.Writebacks++
		}
		h.trainPrefetcher(lineAddr)
	}

	if h.sw != nil {
		cycles += h.swSiteIssue(addr)
	}
	st.Cycles += cycles
	return cycles
}

// warmAccess is the functional-warming state update: the same tag,
// LRU, dirty-bit and prefetcher transitions as a detailed access, with
// no cycle charges and no Stats counters. The set-internal LRU stamps
// advance exactly as in detailed mode, so replacement decisions
// downstream of a fast-forward match the ones a cycle-exact run would
// have made. The prefetched-line attribution set is left alone — it
// only feeds the PrefetchHits statistic, which is not measured during
// fast-forward.
//
// Listener events ARE delivered: the misses are architecturally real
// (the warmed tag state evolves exactly as the detailed lane's), and a
// PEBS unit sampling the run must see the full event stream or its
// sample counts — and everything downstream: monitor attribution,
// adaptive interval control — would be biased by the measured fraction.
// Unmonitored runs have a nil listener and skip the calls entirely.
func (h *Hierarchy) warmAccess(addr uint64, write bool) {
	if !h.tlb.probe(addr>>h.pageBits, false) {
		h.tlb.fill(addr>>h.pageBits, false)
		if h.listener != nil {
			h.listener.HardwareEvent(EventDTLBMiss, addr)
		}
	}
	lineAddr := addr >> h.lineBits
	if h.l1.probe(lineAddr, write) {
		return
	}
	h.l1.fill(lineAddr, write)
	if h.listener != nil {
		h.listener.HardwareEvent(EventL1Miss, addr)
	}
	if !h.l2.probe(lineAddr, write) {
		h.l2.fill(lineAddr, write)
		if h.listener != nil {
			h.listener.HardwareEvent(EventL2Miss, addr)
		}
		h.trainPrefetcher(lineAddr)
	}
}

// trainPrefetcher observes a memory-level miss and, on a detected
// stream, prefetches the next line into L2 and L1. The prefetch is
// charged no demand latency (it overlaps with the miss), matching the
// P4's autonomous stream prefetcher.
func (h *Hierarchy) trainPrefetcher(lineAddr uint64) {
	if !h.cfg.PrefetchEnabled {
		return
	}
	h.stamp++
	// Find a stream this miss continues.
	for i := range h.streams {
		s := &h.streams[i]
		if !s.valid {
			continue
		}
		delta := int64(lineAddr) - int64(s.lastLine)
		if delta == s.dir {
			s.lastLine = lineAddr
			s.lru = h.stamp
			if s.conf < 4 {
				s.conf++
			}
			if s.conf >= 2 {
				next := uint64(int64(lineAddr) + s.dir)
				h.prefetchLine(next)
			}
			return
		}
	}
	// Try to pair with a stream one line away in either direction to
	// start a new stream, else allocate.
	for i := range h.streams {
		s := &h.streams[i]
		if !s.valid {
			continue
		}
		delta := int64(lineAddr) - int64(s.lastLine)
		if delta == 1 || delta == -1 {
			s.dir = delta
			s.lastLine = lineAddr
			s.conf = 2
			s.lru = h.stamp
			next := uint64(int64(lineAddr) + s.dir)
			h.prefetchLine(next)
			return
		}
	}
	victim := 0
	for i := range h.streams {
		if !h.streams[i].valid {
			victim = i
			break
		}
		if h.streams[i].lru < h.streams[victim].lru {
			victim = i
		}
	}
	h.streams[victim] = stream{lastLine: lineAddr, dir: 1, conf: 1, valid: true, lru: h.stamp}
}

func (h *Hierarchy) prefetchLine(lineAddr uint64) {
	addr := lineAddr << h.lineBits
	if h.l2.contains(addr) && h.l1.contains(addr) {
		return
	}
	if h.functional {
		// Warming lane: install the lines, skip the statistics and the
		// prefetch-hit attribution set.
		h.l2.lookup(addr, true, false)
		h.l1.lookup(addr, true, false)
		return
	}
	h.stats.Prefetches++
	h.l2.lookup(addr, true, false)
	h.l1.lookup(addr, true, false)
	h.prefetched.Add(lineAddr)
	h.pfMask |= 1 << (lineAddr & 63)
}

// L1Contains reports whether the line holding addr is resident in L1.
// Exposed for tests and for the co-allocation effectiveness analysis.
func (h *Hierarchy) L1Contains(addr uint64) bool { return h.l1.contains(addr) }

// L2Contains reports whether the line holding addr is resident in L2.
func (h *Hierarchy) L2Contains(addr uint64) bool { return h.l2.contains(addr) }

// LineOf returns the line-aligned base address for addr.
func (h *Hierarchy) LineOf(addr uint64) uint64 {
	return addr &^ (uint64(h.cfg.LineSize) - 1)
}

// SameLine reports whether two addresses fall in the same cache line —
// the property object co-allocation tries to establish for hot
// parent/child pairs (§5.2).
func (h *Hierarchy) SameLine(a, b uint64) bool { return h.LineOf(a) == h.LineOf(b) }
