package cache

import (
	"fmt"
	"testing"
)

// recordingListener counts events so listener-attached paths are
// exercised by the fingerprint test and benchmarks.
type recordingListener struct {
	counts [NumEventKinds]uint64
}

func (l *recordingListener) HardwareEvent(kind EventKind, addr uint64) {
	l.counts[kind]++
}

// fingerprint drives a deterministic pseudo-random access pattern
// (LCG-generated addresses over a few MB with mixed strides, loads and
// stores) through a hierarchy and returns a digest of every observable
// counter. The expected strings below were recorded from the seed
// implementation of Access/lookup; any hot-path restructuring must
// reproduce them bit-for-bit.
func fingerprint(cfg Config, withListener bool, n int) string {
	h := New(cfg)
	var l recordingListener
	if withListener {
		h.SetListener(&l)
	}
	var cycles uint64
	state := uint64(0x9e3779b97f4a7c15)
	seq := uint64(0)
	for i := 0; i < n; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		var addr uint64
		switch i & 3 {
		case 0, 1: // sequential walk: trains the stream prefetcher
			addr = (seq * 8) & (1<<22 - 1)
			seq++
		case 2: // random within 4 MB
			addr = (state >> 20) & (1<<22 - 1) &^ 7
		default: // strided
			addr = (uint64(i) * 4096) & (1<<24 - 1)
		}
		cycles += h.Access(addr, 8, i&7 == 3)
	}
	st := h.Stats()
	return fmt.Sprintf("cyc=%d acc=%d ld=%d st=%d l1=%d l2=%d tlb=%d wb=%d pf=%d pfh=%d stc=%d ev=%v",
		cycles, st.Accesses, st.Loads, st.Stores, st.L1Misses, st.L2Misses,
		st.TLBMisses, st.Writebacks, st.Prefetches, st.PrefetchHits, st.Cycles, l.counts)
}

// TestAccessFingerprint pins the exact simulation behavior of the
// memory hierarchy across hot-path refactors.
func TestAccessFingerprint(t *testing.T) {
	nopf := DefaultP4()
	nopf.PrefetchEnabled = false
	cases := []struct {
		name     string
		cfg      Config
		listener bool
		want     string
	}{
		// The trailing ev slot is EventL1IMiss: always zero here because
		// these runs never enable the instruction cache.
		{"p4-nolistener", DefaultP4(), false,
			"cyc=23956378 acc=200000 ld=175000 st=25000 l1=106016 l2=93564 tlb=97843 wb=49965 pf=7 pfh=6 stc=23956378 ev=[0 0 0 0]"},
		{"p4-listener", DefaultP4(), true,
			"cyc=23956378 acc=200000 ld=175000 st=25000 l1=106016 l2=93564 tlb=97843 wb=49965 pf=7 pfh=6 stc=23956378 ev=[106016 93564 97843 0]"},
		{"p4-noprefetch", nopf, true,
			"cyc=23955996 acc=200000 ld=175000 st=25000 l1=106017 l2=93562 tlb=97843 wb=49965 pf=0 pfh=0 stc=23955996 ev=[106017 93562 97843 0]"},
		{"tiny", tiny(), true,
			"cyc=14787820 acc=200000 ld=175000 st=25000 l1=121854 l2=113683 tlb=100049 wb=49998 pf=0 pfh=0 stc=14787820 ev=[121854 113683 100049 0]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := fingerprint(tc.cfg, tc.listener, 200_000)
			if got != tc.want {
				t.Errorf("fingerprint drifted:\n got  %s\n want %s", got, tc.want)
			}
		})
	}
}
