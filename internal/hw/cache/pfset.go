package cache

// pfSet is an open-addressed hash set of line addresses used for the
// prefetched-line attribution set. It sits on the access hot path —
// every demand access that passes the bloom screen does a membership
// test — so it replaces the generic Go map with linear probing over a
// power-of-two table and a multiply-shift (Fibonacci) hash: a negative
// lookup is typically one multiply and one slot inspection. Purely a
// host-side container; snapshot encoding sorts Keys(), so iteration
// order never leaks into simulated state.
type pfSet struct {
	keys  []uint64
	state []uint8 // slot state: pfEmpty or pfFull
	shift uint    // 64 - log2(len(keys)), for the Fibonacci hash
	n     int     // live keys
}

const (
	pfEmpty uint8 = iota
	pfFull
)

const pfMinCap = 64

func newPfSet() *pfSet {
	s := &pfSet{}
	s.init(pfMinCap)
	return s
}

func (s *pfSet) init(capacity int) {
	s.keys = make([]uint64, capacity)
	s.state = make([]uint8, capacity)
	s.shift = 64 - uint(log2(capacity))
	s.n = 0
}

// pfHash spreads line addresses across the table's top bits
// (Fibonacci hashing: multiply by 2^64/phi, take the high bits).
func pfHash(k uint64) uint64 { return k * 0x9E3779B97F4A7C15 }

// Len returns the number of live keys.
func (s *pfSet) Len() int { return s.n }

// Contains reports membership.
func (s *pfSet) Contains(k uint64) bool {
	mask := uint64(len(s.keys) - 1)
	i := pfHash(k) >> s.shift
	for {
		switch s.state[i] {
		case pfEmpty:
			return false
		case pfFull:
			if s.keys[i] == k {
				return true
			}
		}
		i = (i + 1) & mask
	}
}

// Add inserts k (no-op if present).
func (s *pfSet) Add(k uint64) {
	if 2*(s.n+1) >= len(s.keys) {
		s.rehash()
	}
	mask := uint64(len(s.keys) - 1)
	i := pfHash(k) >> s.shift
	for {
		switch s.state[i] {
		case pfEmpty:
			s.keys[i] = k
			s.state[i] = pfFull
			s.n++
			return
		case pfFull:
			if s.keys[i] == k {
				return
			}
		}
		i = (i + 1) & mask
	}
}

// Delete removes k (no-op if absent), backward-shifting the rest of
// the probe cluster so no tombstones accumulate and lookup chains stay
// as short as the load factor promises.
func (s *pfSet) Delete(k uint64) {
	mask := uint64(len(s.keys) - 1)
	i := pfHash(k) >> s.shift
	for {
		if s.state[i] == pfEmpty {
			return
		}
		if s.keys[i] == k {
			break
		}
		i = (i + 1) & mask
	}
	j := i
	for {
		j = (j + 1) & mask
		if s.state[j] == pfEmpty {
			break
		}
		// The entry at j may move into the hole at i only if its home
		// slot does not lie in the cyclic range (i, j].
		home := pfHash(s.keys[j]) >> s.shift
		if ((j - home) & mask) >= ((j - i) & mask) {
			s.keys[i] = s.keys[j]
			i = j
		}
	}
	s.state[i] = pfEmpty
	s.n--
}

// Clear empties the set, shrinking a grown table back to the minimum.
func (s *pfSet) Clear() {
	if len(s.keys) > pfMinCap {
		s.init(pfMinCap)
		return
	}
	for i := range s.state {
		s.state[i] = pfEmpty
	}
	s.n = 0
}

// Keys returns the live keys in table order (callers sort).
func (s *pfSet) Keys() []uint64 {
	out := make([]uint64, 0, s.n)
	for i, st := range s.state {
		if st == pfFull {
			out = append(out, s.keys[i])
		}
	}
	return out
}

// rehash doubles the table and reinserts the live keys.
func (s *pfSet) rehash() {
	capacity := len(s.keys)
	for 4*s.n >= capacity {
		capacity *= 2
	}
	oldKeys, oldState := s.keys, s.state
	s.init(capacity)
	for i, st := range oldState {
		if st == pfFull {
			s.Add(oldKeys[i])
		}
	}
}

// wayIndex is an exact key→way index over a fully-associative tag
// array (the DTLB: one set, 64 ways). It mirrors the valid lines at
// all times, so a probe is one hash lookup instead of a scan across
// every way. Capacity is fixed at 4x the way count (load factor 0.25,
// bounded by the geometry), so it never grows. Host-side only: probe
// results and all line mutations are identical to the scan's.
type wayIndex struct {
	keys  []uint64
	ways  []uint32
	state []uint8
	shift uint
}

func newWayIndex(ways int) *wayIndex {
	capacity := 4 * ways
	return &wayIndex{
		keys:  make([]uint64, capacity),
		ways:  make([]uint32, capacity),
		state: make([]uint8, capacity),
		shift: 64 - uint(log2(capacity)),
	}
}

func (w *wayIndex) get(k uint64) (uint64, bool) {
	mask := uint64(len(w.keys) - 1)
	i := pfHash(k) >> w.shift
	for {
		if w.state[i] == pfEmpty {
			return 0, false
		}
		if w.keys[i] == k {
			return uint64(w.ways[i]), true
		}
		i = (i + 1) & mask
	}
}

// put inserts k; the caller guarantees k is absent (an index entry is
// only written after the corresponding probe missed).
func (w *wayIndex) put(k, way uint64) {
	mask := uint64(len(w.keys) - 1)
	i := pfHash(k) >> w.shift
	for w.state[i] == pfFull {
		i = (i + 1) & mask
	}
	w.keys[i] = k
	w.ways[i] = uint32(way)
	w.state[i] = pfFull
}

// del removes k with backward-shift, keeping probe chains compact.
func (w *wayIndex) del(k uint64) {
	mask := uint64(len(w.keys) - 1)
	i := pfHash(k) >> w.shift
	for {
		if w.state[i] == pfEmpty {
			return
		}
		if w.keys[i] == k {
			break
		}
		i = (i + 1) & mask
	}
	j := i
	for {
		j = (j + 1) & mask
		if w.state[j] == pfEmpty {
			break
		}
		home := pfHash(w.keys[j]) >> w.shift
		if ((j - home) & mask) >= ((j - i) & mask) {
			w.keys[i] = w.keys[j]
			w.ways[i] = w.ways[j]
			i = j
		}
	}
	w.state[i] = pfEmpty
}

func (w *wayIndex) clear() {
	for i := range w.state {
		w.state[i] = pfEmpty
	}
}
