package cache

import (
	"testing"
	"testing/quick"
)

// tiny returns a small, easily reasoned-about hierarchy: L1 = 4 lines
// of 64B direct-ish (2-way, 2 sets), L2 = 16 lines 2-way, no prefetch.
func tiny() Config {
	return Config{
		LineSize: 64,
		L1Size:   4 * 64, L1Assoc: 2,
		L2Size: 16 * 64, L2Assoc: 2,
		TLBEntries: 4, PageSize: 4096,
		L1HitCycles: 1, L2HitCycles: 10, MemCycles: 100, TLBMissCycles: 20,
	}
}

func TestValidate(t *testing.T) {
	if err := DefaultP4().Validate(); err != nil {
		t.Fatalf("DefaultP4 invalid: %v", err)
	}
	bad := DefaultP4()
	bad.L1Size = 3000 // not a power of two
	if err := bad.Validate(); err == nil {
		t.Error("expected error for non-power-of-two size")
	}
	bad = DefaultP4()
	bad.L1Assoc = 4096
	if err := bad.Validate(); err == nil {
		t.Error("expected error for oversized associativity")
	}
	bad = DefaultP4()
	bad.TLBEntries = 0
	if err := bad.Validate(); err == nil {
		t.Error("expected error for zero TLB entries")
	}
}

func TestColdMissThenHit(t *testing.T) {
	h := New(tiny())
	c1 := h.Access(0x1000, 8, false)
	st := h.Stats()
	if st.L1Misses != 1 || st.L2Misses != 1 || st.TLBMisses != 1 {
		t.Fatalf("cold access stats: %+v", st)
	}
	if c1 != 1+10+100+20 {
		t.Fatalf("cold access cost = %d", c1)
	}
	c2 := h.Access(0x1008, 8, false) // same line, same page
	if c2 != 1 {
		t.Fatalf("warm access cost = %d", c2)
	}
	st = h.Stats()
	if st.L1Misses != 1 {
		t.Fatalf("second access missed: %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	h := New(tiny())
	// Two sets; lines mapping to set 0 are multiples of 2*64.
	a, b, c := uint64(0x0000), uint64(0x0080), uint64(0x0100)
	_ = h.Access(a, 8, false)
	_ = h.Access(b, 8, false)
	// a and b fill set 0 (2-way). Touch a to make b the LRU victim.
	_ = h.Access(a, 8, false)
	_ = h.Access(c, 8, false) // evicts b
	if !h.L1Contains(a) {
		t.Error("a should still be resident")
	}
	if h.L1Contains(b) {
		t.Error("b should have been evicted (LRU)")
	}
	if !h.L1Contains(c) {
		t.Error("c should be resident")
	}
}

func TestWritebackCounting(t *testing.T) {
	h := New(tiny())
	h.Access(0x0000, 8, true) // dirty line in set 0
	h.Access(0x0080, 8, false)
	h.Access(0x0100, 8, false) // evicts dirty 0x0000
	if h.Stats().Writebacks == 0 {
		t.Error("expected a writeback of the dirty line")
	}
}

func TestTLB(t *testing.T) {
	cfg := tiny()
	h := New(cfg)
	h.Access(0x0000, 8, false)
	h.Access(0x0008, 8, false) // same page: TLB hit
	if got := h.Stats().TLBMisses; got != 1 {
		t.Fatalf("TLBMisses = %d, want 1", got)
	}
	// Touch 5 distinct pages (TLB holds 4): first page gets evicted.
	for p := 1; p <= 4; p++ {
		h.Access(uint64(p)*4096, 8, false)
	}
	before := h.Stats().TLBMisses
	h.Access(0x0000, 8, false)
	if h.Stats().TLBMisses != before+1 {
		t.Error("expected TLB miss after eviction")
	}
}

func TestPrefetcherDetectsStream(t *testing.T) {
	cfg := DefaultP4()
	h := New(cfg)
	// Sequential walk: the stream prefetcher should kick in and count
	// prefetch hits.
	for i := uint64(0); i < 64; i++ {
		h.Access(0x10_0000+i*uint64(cfg.LineSize), 8, false)
	}
	st := h.Stats()
	if st.Prefetches == 0 {
		t.Error("expected prefetches on a sequential stream")
	}
	if st.PrefetchHits == 0 {
		t.Error("expected prefetch hits on a sequential stream")
	}
	// The stream should have fewer memory-level misses than lines.
	if st.L2Misses >= 64 {
		t.Errorf("L2 misses = %d, prefetcher ineffective", st.L2Misses)
	}
}

func TestPrefetchDisabled(t *testing.T) {
	cfg := DefaultP4()
	cfg.PrefetchEnabled = false
	h := New(cfg)
	for i := uint64(0); i < 64; i++ {
		h.Access(0x10_0000+i*uint64(cfg.LineSize), 8, false)
	}
	if h.Stats().Prefetches != 0 {
		t.Error("prefetches counted while disabled")
	}
}

func TestEvents(t *testing.T) {
	h := New(tiny())
	var events []EventKind
	h.SetListener(listenerFunc(func(k EventKind, addr uint64) {
		events = append(events, k)
	}))
	h.Access(0x0000, 8, false)
	want := map[EventKind]bool{EventL1Miss: true, EventL2Miss: true, EventDTLBMiss: true}
	for _, e := range events {
		delete(want, e)
	}
	if len(want) != 0 {
		t.Errorf("missing events: %v (got %v)", want, events)
	}
	// A warm hit produces no events.
	events = nil
	h.Access(0x0000, 8, false)
	if len(events) != 0 {
		t.Errorf("events on hit: %v", events)
	}
}

type listenerFunc func(EventKind, uint64)

func (f listenerFunc) HardwareEvent(k EventKind, a uint64) { f(k, a) }

func TestFlushAndReset(t *testing.T) {
	h := New(tiny())
	h.Access(0x0000, 8, false)
	h.Flush()
	if h.L1Contains(0x0000) {
		t.Error("line survived Flush")
	}
	h.ResetStats()
	if h.Stats().Accesses != 0 {
		t.Error("stats survived ResetStats")
	}
}

func TestLineHelpers(t *testing.T) {
	h := New(DefaultP4())
	if h.LineOf(0x1234) != 0x1200 {
		t.Errorf("LineOf = %#x", h.LineOf(0x1234))
	}
	if !h.SameLine(0x1200, 0x127F) {
		t.Error("SameLine within a 128B line")
	}
	if h.SameLine(0x127F, 0x1280) {
		t.Error("SameLine across boundary")
	}
}

func TestMissCountInvariants(t *testing.T) {
	// Property: misses never exceed accesses; re-accessing the same
	// address immediately always hits.
	f := func(addrs []uint32) bool {
		h := New(tiny())
		for _, a := range addrs {
			addr := uint64(a) &^ 7
			if addr == 0 {
				addr = 8
			}
			h.Access(addr, 8, false)
			cost := h.Access(addr, 8, false)
			if cost != uint64(tiny().L1HitCycles) {
				return false
			}
		}
		st := h.Stats()
		return st.L1Misses <= st.Accesses && st.L2Misses <= st.L1Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestEventKindString(t *testing.T) {
	if EventL1Miss.String() != "L1_MISS" || EventDTLBMiss.String() != "DTLB_MISS" {
		t.Error("event names wrong")
	}
}
