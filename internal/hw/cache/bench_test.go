package cache

import "testing"

// The Access benchmarks pin the cost of the single most-executed
// function in the simulator: every load and store of every simulated
// instruction goes through Hierarchy.Access. Hit is the steady-state
// L1-hit fast path; Miss is the full L1+L2+TLB miss path including
// prefetcher training.

// BenchmarkHierarchyAccessHit measures the L1-hit fast path with no
// listener attached (the monitoring-off configuration every baseline
// run uses).
func BenchmarkHierarchyAccessHit(b *testing.B) {
	h := New(DefaultP4())
	h.Access(0x1000, 8, false) // fill line and TLB entry
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(0x1000, 8, false)
	}
}

// BenchmarkHierarchyAccessHitListener measures the same path with a
// listener attached (monitoring on); hits must not pay for event
// delivery.
func BenchmarkHierarchyAccessHitListener(b *testing.B) {
	h := New(DefaultP4())
	var l recordingListener
	h.SetListener(&l)
	h.Access(0x1000, 8, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(0x1000, 8, false)
	}
}

// BenchmarkHierarchyAccessHitMixed walks a small working set that fits
// in L1 (hits spread over several sets, loads and stores mixed) —
// closer to real hit traffic than a single hot line.
func BenchmarkHierarchyAccessHitMixed(b *testing.B) {
	cfg := DefaultP4()
	h := New(cfg)
	// 8 KB working set: half the 16 KB L1, always resident.
	const ws = 8 * 1024
	for a := uint64(0); a < ws; a += 8 {
		h.Access(a, 8, false)
	}
	b.ResetTimer()
	addr := uint64(0)
	for i := 0; i < b.N; i++ {
		h.Access(addr, 8, i&7 == 0)
		addr = (addr + 264) & (ws - 1) // coprime-ish stride over the set
	}
}

// BenchmarkHierarchyAccessMiss measures the full miss path: each access
// misses the TLB, L1 and L2 (page-sized+ stride defeats the 64-entry
// DTLB and both tag arrays) and exercises prefetcher training.
func BenchmarkHierarchyAccessMiss(b *testing.B) {
	h := New(DefaultP4())
	b.ResetTimer()
	addr := uint64(0)
	for i := 0; i < b.N; i++ {
		h.Access(addr, 8, false)
		addr += 4096*33 + 128
	}
}
