package cache

import "testing"

// swCPU is a scriptable SwPrefetchCPU: the test sets the PC an access
// "executes at" and the privilege mode.
type swCPU struct {
	pc   uint64
	user bool
}

func (c *swCPU) SamplePC() uint64 { return c.pc }
func (c *swCPU) UserMode() bool   { return c.user }

// swTiny returns a tiny hierarchy with the software-prefetch model on
// and one injected site: PC sitePC prefetches delta bytes ahead of its
// operand.
func swTiny(sitePC uint64, delta int64, issueCost uint64) (*Hierarchy, *swCPU) {
	h := New(tiny())
	cpu := &swCPU{user: true}
	h.EnableSwPrefetch(cpu, issueCost)
	h.SetSwPrefetchSites(map[uint64]int64{sitePC: delta})
	return h, cpu
}

// TestSoftwarePrefetchHitAttribution drives the injected-site path end
// to end: a demand access at the site PC issues a prefetch of the next
// line, and the later demand touch of that line is an L1 hit counted
// under the software counters — with the hardware stream counters
// untouched, so the two mechanisms stay separately ablatable.
func TestSoftwarePrefetchHitAttribution(t *testing.T) {
	h, cpu := swTiny(0x500, 64, 2)
	cpu.pc = 0x500
	c1 := h.Access(0x1000, 8, false)
	// Demand cold miss (1+10+100+20) plus the issue cost of the
	// non-resident next-line prefetch.
	if want := uint64(1 + 10 + 100 + 20 + 2); c1 != want {
		t.Fatalf("site access cost = %d, want %d", c1, want)
	}
	st := h.Stats()
	if st.SwPrefetches != 1 || st.SwPrefetchHits != 0 {
		t.Fatalf("after site access: %+v", st)
	}
	if st.Prefetches != 0 || st.PrefetchHits != 0 {
		t.Fatalf("software issue leaked into hardware counters: %+v", st)
	}

	cpu.pc = 0x999 // not a site
	c2 := h.Access(0x1040, 8, false)
	if c2 != 1 {
		t.Fatalf("prefetched line not an L1 hit: cost %d", c2)
	}
	st = h.Stats()
	if st.SwPrefetchHits != 1 {
		t.Fatalf("prefetch hit not attributed: %+v", st)
	}
	if got := st.SwPrefetchAccuracy(); got != 1.0 {
		t.Fatalf("SwPrefetchAccuracy = %v, want 1", got)
	}
	// The first demand touch consumes the attribution: touching the
	// line again is an ordinary hit.
	h.Access(0x1040, 8, false)
	if st = h.Stats(); st.SwPrefetchHits != 1 {
		t.Fatalf("attribution double-counted: %+v", st)
	}
}

// TestSoftwarePrefetchSquash pins the free-squash rule: prefetching a
// line that is already L1-resident costs nothing and counts nothing.
func TestSoftwarePrefetchSquash(t *testing.T) {
	h, cpu := swTiny(0x500, 64, 2)
	cpu.pc = 0x999
	h.Access(0x1040, 8, false) // make the would-be target resident
	cpu.pc = 0x500
	c := h.Access(0x1000, 8, false)
	if want := uint64(1 + 10 + 100); c != want { // same page: no TLB miss
		t.Fatalf("site access with resident target cost %d, want %d", c, want)
	}
	if st := h.Stats(); st.SwPrefetches != 0 {
		t.Fatalf("squashed prefetch was counted: %+v", st)
	}
}

// TestSoftwarePrefetchPageClamp pins the issue-time clamp: an injected
// prefetch never crosses the page its operand lies in (translation
// past the boundary could fault), in either direction.
func TestSoftwarePrefetchPageClamp(t *testing.T) {
	h, cpu := swTiny(0x500, 64, 2)
	cpu.pc = 0x500
	h.Access(0x1FC0, 8, false) // last line of the page: +64 crosses
	if st := h.Stats(); st.SwPrefetches != 0 {
		t.Fatalf("prefetch crossed the page boundary up: %+v", st)
	}

	h2, cpu2 := swTiny(0x500, -64, 2)
	cpu2.pc = 0x500
	h2.Access(0x2000, 8, false) // first line of the page: -64 crosses
	if st := h2.Stats(); st.SwPrefetches != 0 {
		t.Fatalf("prefetch crossed the page boundary down: %+v", st)
	}
	// Further in, the same delta stays inside the page and issues
	// (0x2080 - 64 = 0x2040, not yet resident).
	h2.Access(0x2080, 8, false)
	if st := h2.Stats(); st.SwPrefetches != 1 {
		t.Fatalf("in-page prefetch did not issue: %+v", st)
	}
}

// TestSoftwarePrefetchUserModeGate pins that VM-service accesses made
// with a stale user PC never trigger an injected site.
func TestSoftwarePrefetchUserModeGate(t *testing.T) {
	h, cpu := swTiny(0x500, 64, 2)
	cpu.pc = 0x500
	cpu.user = false
	h.Access(0x1000, 8, false)
	if st := h.Stats(); st.SwPrefetches != 0 {
		t.Fatalf("kernel-mode access triggered an injected site: %+v", st)
	}
}

// TestSoftwarePrefetchWindowIndependence pins the ResetStats contract
// for the software attribution set: a window close clears pending
// attributions (the next window's hits only count its own issues) while
// the line itself stays resident — physical state is not statistics.
func TestSoftwarePrefetchWindowIndependence(t *testing.T) {
	h, cpu := swTiny(0x500, 64, 2)
	cpu.pc = 0x500
	h.Access(0x1000, 8, false) // issues prefetch of 0x1040
	h.ResetStats()
	cpu.pc = 0x999
	c := h.Access(0x1040, 8, false)
	if c != 1 {
		t.Fatalf("prefetched line evicted by ResetStats: cost %d", c)
	}
	if st := h.Stats(); st.SwPrefetches != 0 || st.SwPrefetchHits != 0 {
		t.Fatalf("stale attribution crossed the window: %+v", st)
	}
}

// TestSoftwarePrefetchUninstall pins SetSwPrefetchSites(nil): an
// uninstalled table issues nothing, and the passed-in map is copied so
// later caller mutations cannot reach the model.
func TestSoftwarePrefetchUninstall(t *testing.T) {
	sites := map[uint64]int64{0x500: 64}
	h := New(tiny())
	cpu := &swCPU{user: true, pc: 0x500}
	h.EnableSwPrefetch(cpu, 2)
	h.SetSwPrefetchSites(sites)
	sites[0x500] = 1 << 40 // caller mutation must not alias the table
	h.Access(0x1000, 8, false)
	if st := h.Stats(); st.SwPrefetches != 1 {
		t.Fatalf("mutated caller map reached the model: %+v", st)
	}
	h.SetSwPrefetchSites(nil)
	h.Access(0x3000, 8, false)
	if st := h.Stats(); st.SwPrefetches != 1 {
		t.Fatalf("uninstalled site still issuing: %+v", st)
	}
}
