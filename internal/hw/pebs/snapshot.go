package pebs

import (
	"fmt"

	"hpmvm/internal/hw/cache"
	"hpmvm/internal/snap"
)

// Snapshot/Restore implement snap.Checkpointable for the sampling
// unit. The programmed Config is mutable state here (the kernel module
// programs it mid-run via Configure/SetInterval), so it is serialized
// alongside the countdown, buffer and counters. The RNG that drives
// interval randomization is owned by core and checkpointed there as a
// draw count; Restore leaves u.rng untouched.

const (
	snapComponent = "hw/pebs"
	snapVersion   = 1
)

// EncodeSample appends one sample record to w. Shared with the kernel
// module, which buffers the same Sample type.
func EncodeSample(w *snap.Writer, s *Sample) {
	w.U64(s.PC)
	w.U64(s.DataAddr)
	for i := range s.Regs {
		w.U64(s.Regs[i])
	}
	w.U64(s.Cycle)
	w.I64(int64(s.Event))
}

// DecodeSample reads one sample record from r.
func DecodeSample(r *snap.Reader) Sample {
	var s Sample
	s.PC = r.U64()
	s.DataAddr = r.U64()
	for i := range s.Regs {
		s.Regs[i] = r.U64()
	}
	s.Cycle = r.U64()
	s.Event = cache.EventKind(r.I64())
	return s
}

// EncodeConfig appends a Config to w.
func EncodeConfig(w *snap.Writer, cfg Config) {
	w.I64(int64(cfg.Event))
	w.U64(cfg.Interval)
	w.U64(uint64(cfg.RandomBits))
	w.I64(int64(cfg.BufferSamples))
	w.F64(cfg.WatermarkFrac)
	w.U64(cfg.CaptureCycles)
	w.U64(cfg.InterruptCycles)
}

// DecodeConfig reads a Config from r.
func DecodeConfig(r *snap.Reader) Config {
	var cfg Config
	cfg.Event = cache.EventKind(r.I64())
	cfg.Interval = r.U64()
	cfg.RandomBits = uint(r.U64())
	cfg.BufferSamples = int(r.I64())
	cfg.WatermarkFrac = r.F64()
	cfg.CaptureCycles = r.U64()
	cfg.InterruptCycles = r.U64()
	return cfg
}

// Snapshot serializes the unit's programmed configuration, countdown,
// buffered samples and counters.
func (u *Unit) Snapshot() snap.ComponentState {
	var w snap.Writer
	EncodeConfig(&w, u.cfg)
	w.Bool(u.enabled)
	w.U64(u.countdown)
	w.U64(uint64(len(u.buf)))
	for i := range u.buf {
		EncodeSample(&w, &u.buf[i])
	}
	w.I64(int64(u.watermark))
	w.U64(u.eventsSeen)
	w.U64(u.samplesTaken)
	w.U64(u.dropped)
	w.U64(u.interrupts)
	return snap.ComponentState{Component: snapComponent, Version: snapVersion, Data: w.Bytes()}
}

// Restore overwrites the unit's programmed state. The CPU, handler,
// observer and RNG wiring is untouched.
func (u *Unit) Restore(st snap.ComponentState) error {
	if err := snap.Check(st, snapComponent, snapVersion); err != nil {
		return err
	}
	r := snap.NewReader(st.Data)
	cfg := DecodeConfig(r)
	enabled := r.Bool()
	countdown := r.U64()
	n := r.U64()
	if r.Err() == nil && cfg.BufferSamples > 0 && n > uint64(cfg.BufferSamples) {
		return fmt.Errorf("pebs: %w: %d buffered samples exceed capacity %d", snap.ErrDecode, n, cfg.BufferSamples)
	}
	capacity := cfg.BufferSamples
	if capacity < 0 {
		capacity = 0
	}
	buf := make([]Sample, 0, capacity)
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		buf = append(buf, DecodeSample(r))
	}
	watermark := int(r.I64())
	eventsSeen := r.U64()
	samplesTaken := r.U64()
	dropped := r.U64()
	interrupts := r.U64()
	if err := r.Close(); err != nil {
		return err
	}
	u.cfg = cfg
	u.enabled = enabled
	u.countdown = countdown
	u.buf = buf
	u.watermark = watermark
	u.eventsSeen = eventsSeen
	u.samplesTaken = samplesTaken
	u.dropped = dropped
	u.interrupts = interrupts
	return nil
}
