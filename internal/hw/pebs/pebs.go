// Package pebs simulates the Pentium 4's precise event-based sampling
// facility (§3.1, §4.1 of the paper). The unit counts occurrences of a
// single selected hardware event; every time the interval counter
// triggers, a microcode routine captures the exact CPU state (program
// counter plus all register contents — "precise", unlike earlier CPUs
// that reported approximate locations) into a buffer supplied by the OS
// kernel module. An interrupt is raised only when the buffer fills to a
// configured watermark, keeping per-sample cost tiny.
//
// Like the real P4, only one event kind can be measured at a time.
package pebs

import (
	"fmt"
	"math/rand"

	"hpmvm/internal/hw/cache"
	"hpmvm/internal/obs"
)

// NumRegs is the number of general-purpose registers captured per
// sample. 16 registers at 8 bytes plus the PC and data address bring a
// logical sample to the paper's 40-byte record scaled to a 64-bit
// register file.
const NumRegs = 16

// SampleSize is the architectural size of one sample record in bytes,
// used for buffer-capacity accounting. The paper's P4 sample is 40
// bytes (EIP + 32-bit register set); we keep the same record size for
// the space-overhead experiments so buffer maths match §6.2.
const SampleSize = 40

// Sample is one precise event sample: the exact instruction that caused
// the event, the data address involved, the captured register file, and
// the cycle timestamp.
type Sample struct {
	PC       uint64          // address of the machine instruction that caused the event
	DataAddr uint64          // data address whose access triggered the event
	Regs     [NumRegs]uint64 // register file at the time of the event
	Cycle    uint64          // global cycle counter when the sample was taken
	Event    cache.EventKind
}

// CPUState lets the sampling microcode read the processor state it
// snapshots and charge cycles for its own execution.
type CPUState interface {
	// SamplePC returns the address of the currently retiring instruction.
	SamplePC() uint64
	// SampleRegs copies the register file into dst.
	SampleRegs(dst *[NumRegs]uint64)
	// CycleCount returns the current global cycle counter.
	CycleCount() uint64
	// AddCycles charges n cycles of microcode/interrupt overhead.
	AddCycles(n uint64)
}

// Config controls the sampling unit.
type Config struct {
	// Event selects which hardware event is sampled.
	Event cache.EventKind
	// Interval is the sampling interval: every Interval-th event is
	// sampled. Must be positive when sampling is enabled.
	Interval uint64
	// RandomBits is the number of low-order interval bits randomized
	// after each sample to avoid lock-step bias (§6.1 uses 8 bits).
	RandomBits uint
	// BufferSamples is the capacity of the CPU-side sample buffer
	// (the paper's user-space library keeps an 80 KB buffer, i.e.
	// 80*1024/40 = 2048 samples).
	BufferSamples int
	// WatermarkFrac in (0,1] sets the buffer fill fraction at which the
	// overflow interrupt fires.
	WatermarkFrac float64
	// CaptureCycles is the microcode cost charged per captured sample.
	CaptureCycles uint64
	// InterruptCycles is the cost charged when the watermark interrupt
	// fires (pipeline drain + handler entry).
	InterruptCycles uint64
}

// DefaultConfig returns the paper's operating point: L1 miss sampling
// at a 100 K interval with 8 randomized bits and an 80 KB buffer.
func DefaultConfig() Config {
	return Config{
		Event:           cache.EventL1Miss,
		Interval:        100_000,
		RandomBits:      8,
		BufferSamples:   80 * 1024 / SampleSize,
		WatermarkFrac:   0.75,
		CaptureCycles:   120,
		InterruptCycles: 4000,
	}
}

// InterruptHandler is invoked (synchronously, in simulated time) when
// the sample buffer reaches its watermark. The OS kernel module
// registers its handler here.
type InterruptHandler interface {
	PEBSOverflow(u *Unit)
}

// Unit is the simulated sampling hardware. It implements
// cache.Listener so it can be attached directly to the memory
// hierarchy's event stream.
type Unit struct {
	cfg       Config
	cpu       CPUState
	handler   InterruptHandler
	rng       *rand.Rand
	enabled   bool
	countdown uint64

	buf       []Sample
	watermark int

	// obs, when non-nil, receives an EvPEBSInterrupt event per
	// watermark interrupt (nil-gated, like the hierarchy's listener).
	obs *obs.Observer

	// Counters.
	eventsSeen   uint64 // events of the selected kind observed while enabled
	samplesTaken uint64
	dropped      uint64 // samples lost to a full buffer
	interrupts   uint64
}

// NewUnit builds a sampling unit bound to a CPU state provider. rng
// drives interval randomization; pass a seeded source for reproducible
// runs.
func NewUnit(cpu CPUState, rng *rand.Rand) *Unit {
	return &Unit{cpu: cpu, rng: rng}
}

// SetHandler registers the kernel's overflow interrupt handler.
func (u *Unit) SetHandler(h InterruptHandler) { u.handler = h }

// SetObserver attaches the observability layer: the unit's counters
// are registered as sampled counters and every watermark interrupt is
// traced. Passing nil detaches.
func (u *Unit) SetObserver(o *obs.Observer) {
	u.obs = o
	if o == nil {
		return
	}
	o.RegisterSampled("pebs.events_seen", func() uint64 { return u.eventsSeen })
	o.RegisterSampled("pebs.samples_taken", func() uint64 { return u.samplesTaken })
	o.RegisterSampled("pebs.dropped", func() uint64 { return u.dropped })
	o.RegisterSampled("pebs.interrupts", func() uint64 { return u.interrupts })
}

// Configure programs the unit. Sampling remains disabled until Start.
//
// Degenerate interval configurations are rejected rather than armed: a
// zero interval would fire the counter on every event, and RandomBits
// at or beyond the 64-bit width of the interval register would
// randomize the entire interval away — a misconfigured session must
// error, not silently melt the simulated machine. An Interval smaller
// than 1<<RandomBits remains legal: the base bits vanish and the
// effective interval is uniform in [1, 1<<RandomBits) — the documented
// semantics of the hardware's bit-randomization, relied on by the
// Figure 2/3 fine-interval operating points (see reload).
func (u *Unit) Configure(cfg Config) error {
	if cfg.Interval == 0 {
		return fmt.Errorf("pebs: sampling interval must be positive")
	}
	if cfg.RandomBits >= 64 {
		return fmt.Errorf("pebs: RandomBits %d randomizes the whole 64-bit interval register (max 63)", cfg.RandomBits)
	}
	if cfg.BufferSamples <= 0 {
		return fmt.Errorf("pebs: buffer capacity must be positive")
	}
	if cfg.WatermarkFrac <= 0 || cfg.WatermarkFrac > 1 {
		return fmt.Errorf("pebs: watermark fraction %v out of (0,1]", cfg.WatermarkFrac)
	}
	u.cfg = cfg
	u.buf = make([]Sample, 0, cfg.BufferSamples)
	u.watermark = int(float64(cfg.BufferSamples) * cfg.WatermarkFrac)
	if u.watermark < 1 {
		u.watermark = 1
	}
	u.reload()
	return nil
}

// SetInterval retargets the sampling interval while running; the
// monitor's auto mode uses this to hold the sample rate near its
// target (§6.3: "adapts the sampling interval to obtain a certain
// number of samples per second"). The interval is clamped so the
// configured RandomBits can never randomize it to zero: the effective
// minimum is 1<<RandomBits (1 with no randomization), preserving the
// Configure invariant across runtime retargeting.
func (u *Unit) SetInterval(interval uint64) {
	if min := uint64(1) << u.cfg.RandomBits; interval < min {
		interval = min
	}
	u.cfg.Interval = interval
}

// Interval returns the current (unrandomized) sampling interval.
func (u *Unit) Interval() uint64 { return u.cfg.Interval }

// Start enables event counting and sampling.
func (u *Unit) Start() { u.enabled = true }

// Stop disables sampling; buffered samples remain readable.
func (u *Unit) Stop() { u.enabled = false }

// Enabled reports whether the unit is currently sampling.
func (u *Unit) Enabled() bool { return u.enabled }

// reload arms the interval countdown, randomizing the low-order bits.
// The armed value is never zero: when Interval < 1<<RandomBits the
// base bits vanish and the countdown is the randomized low bits alone,
// clamped to at least 1 — a well-defined fine-sampling mode, not a
// stuck counter (Configure and SetInterval reject/clamp the configs
// that could otherwise arm a never- or always-firing counter).
func (u *Unit) reload() {
	iv := u.cfg.Interval
	if u.cfg.RandomBits > 0 && u.rng != nil {
		mask := (uint64(1) << u.cfg.RandomBits) - 1
		iv = (iv &^ mask) | (u.rng.Uint64() & mask)
		if iv == 0 {
			iv = 1
		}
	}
	u.countdown = iv
}

// HardwareEvent implements cache.Listener: the memory hierarchy feeds
// every miss event here, and the unit samples the selected kind.
func (u *Unit) HardwareEvent(kind cache.EventKind, addr uint64) {
	if !u.enabled || kind != u.cfg.Event {
		return
	}
	u.eventsSeen++
	if u.countdown > 1 {
		u.countdown--
		return
	}
	u.reload()
	u.capture(kind, addr)
}

// capture runs the sampling microcode: snapshot CPU state into the
// buffer and raise the interrupt at the watermark.
func (u *Unit) capture(kind cache.EventKind, addr uint64) {
	if len(u.buf) >= u.cfg.BufferSamples {
		u.dropped++
		return
	}
	var s Sample
	s.PC = u.cpu.SamplePC()
	s.DataAddr = addr
	u.cpu.SampleRegs(&s.Regs)
	s.Cycle = u.cpu.CycleCount()
	s.Event = kind
	u.buf = append(u.buf, s)
	u.samplesTaken++
	u.cpu.AddCycles(u.cfg.CaptureCycles)

	if len(u.buf) >= u.watermark && u.handler != nil {
		u.interrupts++
		u.cpu.AddCycles(u.cfg.InterruptCycles)
		if u.obs != nil {
			u.obs.Emit(obs.EvPEBSInterrupt, u.cpu.CycleCount(), uint64(len(u.buf)), u.interrupts, 0)
		}
		u.handler.PEBSOverflow(u)
	}
}

// Drain moves all buffered samples to the caller (the kernel interrupt
// handler or a polling read) and empties the buffer.
func (u *Unit) Drain() []Sample {
	out := make([]Sample, len(u.buf))
	copy(out, u.buf)
	u.buf = u.buf[:0]
	return out
}

// Pending returns the number of samples currently buffered.
func (u *Unit) Pending() int { return len(u.buf) }

// Stats describes the unit's activity so far.
type Stats struct {
	EventsSeen   uint64
	SamplesTaken uint64
	Dropped      uint64
	Interrupts   uint64
}

// Stats returns a snapshot of the unit counters.
func (u *Unit) Stats() Stats {
	return Stats{
		EventsSeen:   u.eventsSeen,
		SamplesTaken: u.samplesTaken,
		Dropped:      u.dropped,
		Interrupts:   u.interrupts,
	}
}
