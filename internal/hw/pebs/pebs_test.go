package pebs

import (
	"math/rand"
	"testing"

	"hpmvm/internal/hw/cache"
)

// fakeCPU implements CPUState for unit tests.
type fakeCPU struct {
	pc     uint64
	regs   [NumRegs]uint64
	cycles uint64
}

func (f *fakeCPU) SamplePC() uint64                { return f.pc }
func (f *fakeCPU) SampleRegs(dst *[NumRegs]uint64) { *dst = f.regs }
func (f *fakeCPU) CycleCount() uint64              { return f.cycles }
func (f *fakeCPU) AddCycles(n uint64)              { f.cycles += n }

type recHandler struct {
	fired int
	drain bool
	unit  *Unit
	got   []Sample
}

func (h *recHandler) PEBSOverflow(u *Unit) {
	h.fired++
	if h.drain {
		h.got = append(h.got, u.Drain()...)
	}
}

func cfg(interval uint64, buf int) Config {
	return Config{
		Event:         cache.EventL1Miss,
		Interval:      interval,
		RandomBits:    0,
		BufferSamples: buf,
		WatermarkFrac: 0.5,
		CaptureCycles: 10,
	}
}

func TestIntervalCounting(t *testing.T) {
	cpu := &fakeCPU{pc: 0x1000}
	u := NewUnit(cpu, rand.New(rand.NewSource(1)))
	if err := u.Configure(cfg(4, 100)); err != nil {
		t.Fatal(err)
	}
	u.Start()
	for i := 0; i < 16; i++ {
		u.HardwareEvent(cache.EventL1Miss, uint64(i))
	}
	st := u.Stats()
	if st.EventsSeen != 16 {
		t.Errorf("EventsSeen = %d", st.EventsSeen)
	}
	if st.SamplesTaken != 4 {
		t.Errorf("SamplesTaken = %d, want 4 (every 4th event)", st.SamplesTaken)
	}
}

func TestOnlySelectedEventSampled(t *testing.T) {
	cpu := &fakeCPU{}
	u := NewUnit(cpu, rand.New(rand.NewSource(1)))
	if err := u.Configure(cfg(1, 100)); err != nil {
		t.Fatal(err)
	}
	u.Start()
	u.HardwareEvent(cache.EventL2Miss, 1)
	u.HardwareEvent(cache.EventDTLBMiss, 2)
	if u.Stats().SamplesTaken != 0 {
		t.Error("sampled a non-selected event (P4 PEBS samples one event at a time)")
	}
	u.HardwareEvent(cache.EventL1Miss, 3)
	if u.Stats().SamplesTaken != 1 {
		t.Error("selected event not sampled")
	}
}

func TestSampleContents(t *testing.T) {
	cpu := &fakeCPU{pc: 0xBEEF00, cycles: 777}
	cpu.regs[3] = 42
	u := NewUnit(cpu, rand.New(rand.NewSource(1)))
	if err := u.Configure(cfg(1, 100)); err != nil {
		t.Fatal(err)
	}
	u.Start()
	u.HardwareEvent(cache.EventL1Miss, 0xDA7A)
	s := u.Drain()
	if len(s) != 1 {
		t.Fatalf("drained %d samples", len(s))
	}
	if s[0].PC != 0xBEEF00 || s[0].DataAddr != 0xDA7A || s[0].Regs[3] != 42 || s[0].Event != cache.EventL1Miss {
		t.Errorf("sample contents wrong: %+v", s[0])
	}
	// Capture must charge microcode cycles; sample timestamp precedes
	// the charge.
	if cpu.cycles != 777+10 {
		t.Errorf("capture cycles = %d", cpu.cycles)
	}
}

func TestWatermarkInterrupt(t *testing.T) {
	cpu := &fakeCPU{}
	u := NewUnit(cpu, rand.New(rand.NewSource(1)))
	h := &recHandler{drain: true}
	u.SetHandler(h)
	if err := u.Configure(cfg(1, 8)); err != nil { // watermark at 4
		t.Fatal(err)
	}
	u.Start()
	for i := 0; i < 4; i++ {
		u.HardwareEvent(cache.EventL1Miss, uint64(i))
	}
	if h.fired != 1 {
		t.Fatalf("interrupts = %d, want 1", h.fired)
	}
	if len(h.got) != 4 {
		t.Fatalf("handler drained %d samples", len(h.got))
	}
	if u.Pending() != 0 {
		t.Error("buffer not drained")
	}
}

func TestBufferOverflowDrops(t *testing.T) {
	cpu := &fakeCPU{}
	u := NewUnit(cpu, rand.New(rand.NewSource(1)))
	// No handler: nothing drains the buffer.
	if err := u.Configure(cfg(1, 4)); err != nil {
		t.Fatal(err)
	}
	u.Start()
	for i := 0; i < 10; i++ {
		u.HardwareEvent(cache.EventL1Miss, uint64(i))
	}
	st := u.Stats()
	if st.SamplesTaken != 4 {
		t.Errorf("SamplesTaken = %d, want buffer capacity 4", st.SamplesTaken)
	}
	if st.Dropped != 6 {
		t.Errorf("Dropped = %d, want 6", st.Dropped)
	}
}

func TestRandomizedInterval(t *testing.T) {
	cpu := &fakeCPU{}
	u := NewUnit(cpu, rand.New(rand.NewSource(7)))
	c := cfg(1024, 4096)
	c.RandomBits = 8
	if err := u.Configure(c); err != nil {
		t.Fatal(err)
	}
	u.Start()
	// Fire a long event stream; with 8 randomized bits the distance
	// between samples must stay within [1024-255, 1024+255] of the
	// base interval (the top bits are preserved).
	var sampleAt []int
	for i := 0; i < 100_000; i++ {
		before := u.Stats().SamplesTaken
		u.HardwareEvent(cache.EventL1Miss, 0)
		if u.Stats().SamplesTaken != before {
			sampleAt = append(sampleAt, i)
		}
	}
	if len(sampleAt) < 50 {
		t.Fatalf("too few samples: %d", len(sampleAt))
	}
	distinct := map[int]bool{}
	for i := 1; i < len(sampleAt); i++ {
		d := sampleAt[i] - sampleAt[i-1]
		if d < 1024-256 || d > 1024+256 {
			t.Fatalf("inter-sample distance %d outside randomized window", d)
		}
		distinct[d] = true
	}
	if len(distinct) < 10 {
		t.Errorf("intervals not randomized: %d distinct distances", len(distinct))
	}
}

func TestStopAndRestart(t *testing.T) {
	cpu := &fakeCPU{}
	u := NewUnit(cpu, rand.New(rand.NewSource(1)))
	if err := u.Configure(cfg(1, 100)); err != nil {
		t.Fatal(err)
	}
	u.Start()
	u.HardwareEvent(cache.EventL1Miss, 0)
	u.Stop()
	u.HardwareEvent(cache.EventL1Miss, 0)
	if u.Stats().SamplesTaken != 1 {
		t.Error("sampled while stopped")
	}
	if u.Enabled() {
		t.Error("Enabled after Stop")
	}
	u.Start()
	u.HardwareEvent(cache.EventL1Miss, 0)
	if u.Stats().SamplesTaken != 2 {
		t.Error("not sampling after restart")
	}
}

func TestConfigValidation(t *testing.T) {
	u := NewUnit(&fakeCPU{}, rand.New(rand.NewSource(1)))
	if err := u.Configure(Config{Interval: 0, BufferSamples: 1, WatermarkFrac: 0.5}); err == nil {
		t.Error("accepted zero interval")
	}
	if err := u.Configure(Config{Interval: 1, BufferSamples: 0, WatermarkFrac: 0.5}); err == nil {
		t.Error("accepted zero buffer")
	}
	if err := u.Configure(Config{Interval: 1, BufferSamples: 1, WatermarkFrac: 1.5}); err == nil {
		t.Error("accepted watermark > 1")
	}
}

func TestSetInterval(t *testing.T) {
	u := NewUnit(&fakeCPU{}, rand.New(rand.NewSource(1)))
	if err := u.Configure(cfg(100, 10)); err != nil {
		t.Fatal(err)
	}
	u.SetInterval(0)
	if u.Interval() != 1 {
		t.Error("SetInterval(0) should clamp to 1")
	}
	u.SetInterval(555)
	if u.Interval() != 555 {
		t.Error("SetInterval not applied")
	}
}

func TestConfigureRejectsDegenerateRandomBits(t *testing.T) {
	u := NewUnit(&fakeCPU{}, rand.New(rand.NewSource(1)))
	for _, bits := range []uint{64, 65, 128} {
		c := cfg(100, 10)
		c.RandomBits = bits
		if err := u.Configure(c); err == nil {
			t.Errorf("accepted RandomBits=%d, which randomizes the whole interval register", bits)
		}
	}
	c := cfg(100, 10)
	c.RandomBits = 63
	if err := u.Configure(c); err != nil {
		t.Errorf("rejected RandomBits=63: %v", err)
	}
}

// TestFineIntervalBelowRandomWidth pins the legal fine-sampling mode
// the Figure 2/3 operating points rely on: Interval < 1<<RandomBits
// (e.g. 250 with 8 randomized bits) configures fine, and the effective
// interval is the randomized low bits alone — samples keep flowing and
// the countdown never sticks.
func TestFineIntervalBelowRandomWidth(t *testing.T) {
	cpu := &fakeCPU{}
	u := NewUnit(cpu, rand.New(rand.NewSource(3)))
	c := cfg(250, 100_000)
	c.RandomBits = 8 // 250 >> 8 == 0: base bits vanish entirely
	if err := u.Configure(c); err != nil {
		t.Fatalf("fine interval rejected: %v", err)
	}
	u.Start()
	for i := 0; i < 10_000; i++ {
		u.HardwareEvent(cache.EventL1Miss, uint64(i))
	}
	st := u.Stats()
	if st.SamplesTaken == 0 {
		t.Fatal("no samples in fine-interval mode")
	}
	// Effective interval is uniform in [1, 256): over 10 K events the
	// sample count must land far from both "every event" and "never".
	if st.SamplesTaken < 20 || st.SamplesTaken > 9_000 {
		t.Errorf("SamplesTaken = %d, outside the fine-interval regime", st.SamplesTaken)
	}
}

func TestSetIntervalClampsToRandomizedWidth(t *testing.T) {
	u := NewUnit(&fakeCPU{}, rand.New(rand.NewSource(1)))
	c := cfg(1000, 10)
	c.RandomBits = 8
	if err := u.Configure(c); err != nil {
		t.Fatal(err)
	}
	// Below 1<<RandomBits the randomization could zero the interval
	// register; the retarget clamps to the randomized width.
	u.SetInterval(10)
	if u.Interval() != 256 {
		t.Errorf("SetInterval(10) with 8 random bits = %d, want clamp to 256", u.Interval())
	}
	u.SetInterval(0)
	if u.Interval() != 256 {
		t.Errorf("SetInterval(0) with 8 random bits = %d, want clamp to 256", u.Interval())
	}
	u.SetInterval(300)
	if u.Interval() != 300 {
		t.Errorf("SetInterval(300) = %d, want applied as-is", u.Interval())
	}
}
