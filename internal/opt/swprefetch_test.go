package opt

import (
	"fmt"
	"testing"
)

// detector builds a bare SwPrefetch with just the pieces observe()
// touches — the detector is pure state-machine code, so the table
// tests drive it directly without a VM or monitor.
func detector(cfg SwPrefetchConfig) *SwPrefetch {
	return &SwPrefetch{cfg: cfg.WithDefaults(), streams: make(map[uint64]*swStream)}
}

// feed replays a delta sequence as sampled miss addresses at one PC.
func feed(s *SwPrefetch, pc, start uint64, deltas []int64) {
	addr := start
	s.observe(pc, addr, 1)
	for _, d := range deltas {
		addr = uint64(int64(addr) + d)
		s.observe(pc, addr, 1)
	}
}

func TestStrideDetectorTable(t *testing.T) {
	line := int64(128)
	cases := []struct {
		name       string
		deltas     []int64
		wantStride int64
		confident  bool // conf >= default MinConfidence (3)
	}{
		{"exact positive", []int64{line, line, line, line}, line, true},
		{"exact negative", []int64{-line, -line, -line, -line}, -line, true},
		// Randomized-interval jitter: consecutive samples at one PC are
		// k strides apart for varying k. Multiples of a trained stride
		// count as confirmation.
		{"jitter multiples", []int64{2 * line, 4 * line, 2 * line, 6 * line}, 2 * line, true},
		// A first delta of k×stride refines downward when a smaller
		// consistent delta arrives.
		{"refine to finer", []int64{3 * line, line, line, line}, line, true},
		// Neither delta divides the other but both share the true
		// stride: gcd retraining recovers it.
		{"gcd recovery", []int64{3 * line, 5 * line, 2 * line, 4 * line, 7 * line}, line, true},
		{"negative jitter", []int64{-3 * line, -6 * line, -3 * line, -9 * line}, -3 * line, true},
		// Pointer-chasing noise must never gain confidence: deltas with
		// no common large divisor keep resetting the trained stride.
		{"irregular", []int64{13063, -7529, 30011, -1723, 9341, -20353}, 0, false},
		// A direction flip retrains from scratch.
		{"direction flip", []int64{line, line, -line, line}, 0, false},
		{"zero deltas ignored", []int64{line, 0, line, 0, line}, line, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := detector(SwPrefetchConfig{})
			feed(s, 0x1000, 0x5000_0000, tc.deltas)
			st := s.streams[0x1000]
			if st == nil {
				t.Fatal("stream not created")
			}
			got := st.conf >= s.cfg.MinConfidence
			if got != tc.confident {
				t.Fatalf("confident = %v (conf %d, stride %d), want %v", got, st.conf, st.stride, tc.confident)
			}
			if tc.confident && st.stride != tc.wantStride {
				t.Fatalf("stride = %d, want %d", st.stride, tc.wantStride)
			}
		})
	}
}

// TestStrideDetectorRandomizedInterval replays the exact shape the
// PEBS RandomBits knob produces: a fixed underlying access stride
// sampled at pseudo-randomly varying intervals, so observed deltas are
// irregular multiples of the true stride. The detector must converge
// on the true stride and stay confident.
func TestStrideDetectorRandomizedInterval(t *testing.T) {
	s := detector(SwPrefetchConfig{})
	line := int64(128)
	// Multipliers from a fixed LCG — deterministic, deliberately
	// non-uniform, always >= 1 (an interval never skips backwards).
	seed := uint64(0x9E3779B97F4A7C15)
	addr := uint64(0x5000_0000)
	s.observe(0x2000, addr, 7)
	for i := 0; i < 64; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		k := int64(seed%7) + 1
		addr = uint64(int64(addr) + k*line)
		s.observe(0x2000, addr, 7)
	}
	st := s.streams[0x2000]
	if st.conf < s.cfg.MinConfidence {
		t.Fatalf("conf = %d after 64 jittered samples, want >= %d", st.conf, s.cfg.MinConfidence)
	}
	if st.stride%line != 0 || st.stride <= 0 {
		t.Fatalf("stride = %d, want a positive multiple of %d", st.stride, line)
	}
}

// TestStrideDetectorEviction pins the bounded-table behaviour under PC
// aliasing pressure: when more PCs miss than the table holds, the
// least-seen stream is evicted and hot streams survive.
func TestStrideDetectorEviction(t *testing.T) {
	s := detector(SwPrefetchConfig{MaxStreams: 4})
	line := int64(128)
	// Two hot strided PCs accumulate many samples.
	feed(s, 0xA0, 0x5000_0000, []int64{line, line, line, line, line})
	feed(s, 0xB0, 0x6000_0000, []int64{line, line, line, line})
	// A crowd of cold PCs (one sample each) churns through the table.
	for i := 0; i < 32; i++ {
		s.observe(uint64(0xC00+i*4), uint64(0x7000_0000+i*4096), 2)
	}
	if len(s.streams) > 4 {
		t.Fatalf("table grew to %d streams, cap 4", len(s.streams))
	}
	if s.streams[0xA0] == nil || s.streams[0xB0] == nil {
		t.Fatalf("hot streams evicted by one-sample PCs (have %d streams)", len(s.streams))
	}
	if s.streams[0xA0].conf < s.cfg.MinConfidence {
		t.Fatalf("hot stream lost confidence: %d", s.streams[0xA0].conf)
	}
}

// TestStrideDetectorEvictionDeterministic pins that eviction picks the
// same victim regardless of map insertion order (least seen, then
// lowest PC) — snapshot determinism depends on it.
func TestStrideDetectorEvictionDeterministic(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		s := detector(SwPrefetchConfig{MaxStreams: 3})
		// Insertion order varies by trial; seen counts do not.
		pcs := []uint64{0x10, 0x20, 0x30}
		for i := range pcs {
			pc := pcs[(i+trial)%3]
			s.observe(pc, 0x5000_0000, 1)
			s.observe(pc, 0x5000_0080, 1) // seen=2 each
		}
		s.observe(0x40, 0x6000_0000, 1) // forces one eviction
		if s.streams[0x10] != nil {
			t.Fatalf("trial %d: tie-break should evict lowest PC 0x10, table %v", trial, keysOf(s.streams))
		}
		if s.streams[0x20] == nil || s.streams[0x30] == nil || s.streams[0x40] == nil {
			t.Fatalf("trial %d: wrong victim, table %v", trial, keysOf(s.streams))
		}
	}
}

func keysOf(m map[uint64]*swStream) []string {
	var out []string
	for k := range m {
		out = append(out, fmt.Sprintf("%#x", k))
	}
	return out
}

// TestSwPrefetchConfigDefaults pins the zero-value resolution rules:
// meaningful zeros survive, everything else resolves.
func TestSwPrefetchConfigDefaults(t *testing.T) {
	got := SwPrefetchConfig{}.WithDefaults()
	want := DefaultSwPrefetchConfig()
	want.MinSamples = 0 // meaningful zero: inject immediately
	if got != want {
		t.Fatalf("WithDefaults() = %+v, want %+v", got, want)
	}
	// Idempotent: resolving twice changes nothing.
	if again := got.WithDefaults(); again != got {
		t.Fatalf("WithDefaults not idempotent: %+v -> %+v", got, again)
	}
	// Explicit values survive.
	custom := SwPrefetchConfig{MinConfidence: 7, Distance: 5, BadInjectAtCycle: 99, Passive: true}.WithDefaults()
	if custom.MinConfidence != 7 || custom.Distance != 5 || custom.BadInjectAtCycle != 99 || !custom.Passive {
		t.Fatalf("explicit fields clobbered: %+v", custom)
	}
}
