package opt

import (
	"fmt"
	"sort"

	"hpmvm/internal/hw/cache"
	"hpmvm/internal/hw/cpu"
	"hpmvm/internal/monitor"
	"hpmvm/internal/obs"
	"hpmvm/internal/snap"
	"hpmvm/internal/vm/runtime"
)

// CodeLayout is the second PEBS-driven optimization: hot/cold code
// layout. The monitor's per-sample sink attributes every sampled miss
// to the compiled method whose code the faulting PC lies in; methods
// that absorb samples are where the program spends its time, and
// compilation order scatters them across the code space. Once enough
// samples accumulate, the optimization relocates the hottest methods
// back-to-back at the end of the code space, packing them onto as few
// instruction-cache lines as possible (compiled code is immortal and
// never moves, §4.2, so relocation means recompiling at the same level
// at a fresh address — old bodies stay mapped for frames already on
// the stack, and the dispatch tables retarget new invocations).
//
// Like co-allocation, the decision is verified online (§5.3): the
// L1I miss rate over the EvalPeriods polls before the layout is the
// baseline, the rate over the EvalPeriods polls after it is the
// evidence, and a layout whose rate regresses past RegressionFactor×
// baseline is reverted by re-packing the hot set. The BadPadAtCycle
// hook deliberately applies a conflict layout — every hot method
// padded onto the same cache way — to exercise the revert path
// (Figure 7's bad-decision experiment, transplanted to code layout).
type CodeLayout struct {
	cfg  CodeLayoutConfig
	vm   *runtime.VM
	mon  *monitor.Monitor
	hier *cache.Hierarchy

	// samples holds interval-weighted sample counts per method ID (the
	// hotness ranking); seen counts raw sink deliveries (the MinSamples
	// gate).
	samples map[int]uint64
	seen    uint64

	// history records the cumulative L1I (fetches, misses) counters at
	// each poll; rate-over-window queries difference its tail.
	history []ipoint

	// lastLayout is the hot set most recently laid out, in layout
	// order; a new layout is proposed only when the hot *set* changes.
	lastLayout []int

	open      *Decision
	epoch     int
	decisions uint64
	reverts   uint64
	badDone   bool

	log []string
}

// ipoint is one poll's cumulative instruction-cache counters.
type ipoint struct {
	fetches, misses uint64
}

// CodeLayoutConfig parameterizes the code-layout optimization,
// including the instruction-cache geometry it opts the hardware into
// (the default model is a small 8 KB 2-way L1I so layout effects are
// visible at simulated working-set sizes).
type CodeLayoutConfig struct {
	// ICacheSize and ICacheAssoc are the L1I geometry passed to
	// cache.Hierarchy.EnableICache (bytes, ways; both powers of two).
	ICacheSize  int
	ICacheAssoc int
	// HotMethods caps how many methods one layout relocates (0 = no cap).
	HotMethods int
	// MinSamples is the number of attributed samples required before
	// the first layout (and before any re-layout of a changed hot set).
	MinSamples uint64
	// EvalPeriods is the assessment window in monitor polls: the
	// baseline is measured over this many polls before a layout, the
	// verdict over this many polls after it.
	EvalPeriods uint64
	// RegressionFactor flags a layout as bad when the post-layout L1I
	// miss rate exceeds baseline × this factor.
	RegressionFactor float64
	// MinMissRate is the L1I miss-rate floor below which no layout is
	// proposed: relocation pays cold misses on the fresh region, so the
	// optimization acts only when monitoring shows instruction-cache
	// pressure worth that cost. 0 resolves to the default; a negative
	// value disables the floor.
	MinMissRate float64
	// MaxReverts backs the optimization off: after this many reverted
	// layouts it stops proposing — repeated reverts are the monitor
	// saying layout does not pay on this workload. 0 resolves to the
	// default; a negative value never backs off.
	MaxReverts int
	// BadPadAtCycle, when non-zero, makes the next layout proposed at
	// or after this cycle a deliberate conflict layout (all hot methods
	// padded onto one cache way) — the bad-decision injection hook the
	// revert tests and the Figure-7-style experiment use. Applied once.
	BadPadAtCycle uint64
	// Passive observes the instruction cache without ever proposing a
	// layout (the experiment baseline).
	Passive bool
}

// DefaultCodeLayoutConfig returns the standard parameters.
func DefaultCodeLayoutConfig() CodeLayoutConfig {
	return CodeLayoutConfig{
		ICacheSize:       8 * 1024,
		ICacheAssoc:      2,
		HotMethods:       16,
		MinSamples:       24,
		EvalPeriods:      6,
		RegressionFactor: 1.5,
		MinMissRate:      0.005,
		MaxReverts:       2,
	}
}

// WithDefaults resolves the zero values that have no meaningful zero
// semantics (geometry, window, factor) to their defaults. HotMethods 0
// (no cap), MinSamples 0 (layout immediately), BadPadAtCycle 0 (never)
// and Passive false are meaningful zeros and stay put. Canonicalization
// and construction both apply it, so a zero field and its explicit
// default build — and fingerprint — identically.
func (c CodeLayoutConfig) WithDefaults() CodeLayoutConfig {
	d := DefaultCodeLayoutConfig()
	if c.ICacheSize == 0 {
		c.ICacheSize = d.ICacheSize
	}
	if c.ICacheAssoc == 0 {
		c.ICacheAssoc = d.ICacheAssoc
	}
	if c.EvalPeriods == 0 {
		c.EvalPeriods = d.EvalPeriods
	}
	if c.RegressionFactor == 0 {
		c.RegressionFactor = d.RegressionFactor
	}
	if c.MinMissRate == 0 {
		c.MinMissRate = d.MinMissRate
	}
	if c.MaxReverts == 0 {
		c.MaxReverts = d.MaxReverts
	}
	return c
}

// layoutPlan is the Analyze→Apply payload: which methods to relocate
// and whether to lay them out as a deliberate cache-way conflict.
type layoutPlan struct {
	methods  []int
	conflict bool
}

// layoutState is the per-decision payload consulted by Assess/Revert.
type layoutState struct {
	baseline float64 // L1I miss rate over EvalPeriods polls pre-apply
	conflict bool
}

// NewCodeLayout builds the optimization over a VM whose hierarchy has
// the instruction cache enabled, registers its sample sink with the
// monitor, and returns it ready for Manager.Register.
func NewCodeLayout(vm *runtime.VM, mon *monitor.Monitor, cfg CodeLayoutConfig) *CodeLayout {
	cfg = cfg.WithDefaults()
	c := &CodeLayout{
		cfg:     cfg,
		vm:      vm,
		mon:     mon,
		hier:    vm.Hier,
		samples: make(map[int]uint64),
	}
	mon.AddSink(func(pc, dataAddr uint64, methodID int, interval uint64) {
		c.samples[methodID] += interval
		c.seen++
	})
	return c
}

// Kind implements Optimization.
func (c *CodeLayout) Kind() string { return KindCodeLayout }

// MonitorWindow implements Optimization: a layout is first assessed
// EvalPeriods polls after it was applied.
func (c *CodeLayout) MonitorWindow() uint64 { return c.cfg.EvalPeriods }

// Analyze implements Optimization. Every poll it records the
// instruction-cache counters (the rate history assessment differences);
// when no decision is open and the hot set changed, it proposes one
// layout.
func (c *CodeLayout) Analyze(now uint64) []Proposal {
	ist := c.hier.IStats()
	c.history = append(c.history, ipoint{ist.Fetches, ist.Misses})

	if c.cfg.Passive || c.open != nil || c.seen < c.cfg.MinSamples {
		return nil
	}
	if uint64(len(c.history)) < c.cfg.EvalPeriods+1 {
		return nil // no baseline window yet
	}
	hot := c.hotOrder()
	if len(hot) == 0 {
		return nil
	}
	if c.cfg.MaxReverts >= 0 && c.reverts >= uint64(c.cfg.MaxReverts) {
		return nil // backed off: layout has been reverted too often here
	}
	if uint64(len(c.history)) < 2*c.cfg.EvalPeriods+1 {
		return nil
	}
	short := c.rateOver(c.cfg.EvalPeriods)
	// Warmup guard: while cold-start misses dominate, the rate declines
	// steeply and a baseline captured now would overstate steady state,
	// masking a bad layout at assessment. Propose only once the recent
	// window is within 20% of the longer one. The bad-decision injection
	// waits it out too — its scenario is a bad call in steady state,
	// judged against an honest baseline.
	if long := c.rateOver(2 * c.cfg.EvalPeriods); short < long*0.8 {
		return nil
	}
	if c.cfg.BadPadAtCycle != 0 && now >= c.cfg.BadPadAtCycle && !c.badDone {
		return []Proposal{{
			Target: c.epoch,
			Label:  fmt.Sprintf("conflict layout of %d hot methods", len(hot)),
			Code:   obs.DecisionIntervene,
			State:  &layoutPlan{methods: hot, conflict: true},
		}}
	}
	if short < c.cfg.MinMissRate {
		return nil // no instruction-cache pressure: relocating would only cost
	}
	if sameSet(hot, c.lastLayout) {
		return nil
	}
	return []Proposal{{
		Target: c.epoch,
		Label:  fmt.Sprintf("packed layout of %d hot methods", len(hot)),
		Code:   obs.DecisionActivate,
		State:  &layoutPlan{methods: hot},
	}}
}

// Apply implements Optimization: relocate the plan's methods at the
// end of the code space — tightly packed, or padded onto one cache way
// for a conflict plan — and open the decision for assessment.
func (c *CodeLayout) Apply(now uint64, p Proposal) {
	plan := p.State.(*layoutPlan)
	if plan.conflict {
		c.applyConflict(plan.methods)
	} else {
		pads := make([]int, len(plan.methods))
		if err := c.vm.RelocateMethods(plan.methods, pads); err != nil {
			panic(fmt.Sprintf("opt: codelayout relocation failed: %v", err))
		}
	}
	baseline := c.rateOver(c.cfg.EvalPeriods)
	c.open = &Decision{
		Target:      p.Target,
		Label:       p.Label,
		AppliedAt:   now,
		AppliedPoll: c.mon.Stats().Polls,
		State:       &layoutState{baseline: baseline, conflict: plan.conflict},
	}
	c.epoch++
	c.decisions++
	c.lastLayout = append([]int(nil), plan.methods...)
	if plan.conflict {
		c.badDone = true
	}
	c.logf(now, "layout #%d: %s (baseline L1I miss rate %.5f)", p.Target, p.Label, baseline)
}

// applyConflict relocates the methods one at a time, padding each onto
// the same cache way as the first: with waySize = size/assoc, every
// start address is congruent mod waySize, so once the set exceeds the
// associativity the bodies evict each other on every transition.
func (c *CodeLayout) applyConflict(methods []int) {
	way := uint64(c.cfg.ICacheSize / c.cfg.ICacheAssoc)
	var first uint64
	for i, id := range methods {
		pad := 0
		next := c.vm.CPU.NextCodeAddr()
		if i == 0 {
			first = next
		} else {
			pad = int(((first - next) & (way - 1)) / cpu.InstrBytes)
		}
		if err := c.vm.RelocateMethods([]int{id}, []int{pad}); err != nil {
			panic(fmt.Sprintf("opt: codelayout conflict relocation failed: %v", err))
		}
	}
}

// OpenDecisions implements Optimization: at most one layout is
// monitored at a time.
func (c *CodeLayout) OpenDecisions() []*Decision {
	if c.open == nil {
		return nil
	}
	return []*Decision{c.open}
}

// Assess implements Optimization: compare the L1I miss rate over the
// assessment window against the pre-layout baseline. A kept decision
// closes — layouts are judged once, like the paper's Figure-7 window.
func (c *CodeLayout) Assess(now uint64, d *Decision) Assessment {
	st := d.State.(*layoutState)
	cur := c.rateOver(c.cfg.EvalPeriods)
	if st.baseline > 0 && cur > st.baseline*c.cfg.RegressionFactor {
		return Assessment{Verdict: VerdictBad, Reason: obs.DecisionRevertRate, A: cur, B: st.baseline}
	}
	c.open = nil
	c.logf(now, "layout #%d kept (L1I miss rate %.5f, baseline %.5f)", d.Target, cur, st.baseline)
	return Assessment{Verdict: VerdictKeep, A: cur, B: st.baseline}
}

// Revert implements Optimization: undo a bad layout by re-packing the
// current hot set tightly (code cannot move back, so "undo" means a
// fresh known-good layout).
func (c *CodeLayout) Revert(now uint64, d *Decision, a Assessment) {
	hot := c.hotOrder()
	if len(hot) == 0 {
		hot = append([]int(nil), c.lastLayout...)
	}
	pads := make([]int, len(hot))
	if err := c.vm.RelocateMethods(hot, pads); err != nil {
		panic(fmt.Sprintf("opt: codelayout revert relocation failed: %v", err))
	}
	c.lastLayout = hot
	c.reverts++
	c.open = nil
	c.logf(now, "layout #%d reverted (L1I miss rate %.5f vs baseline %.5f): repacked %d methods",
		d.Target, a.A, a.B, len(hot))
}

// Stats implements Optimization.
func (c *CodeLayout) Stats() Stats {
	return Stats{Decisions: c.decisions, Reverts: c.reverts}
}

// Log returns the decision log ("[cycle N] ..." lines).
func (c *CodeLayout) Log() []string { return c.log }

// Epoch returns how many layouts have been applied.
func (c *CodeLayout) Epoch() int { return c.epoch }

func (c *CodeLayout) logf(now uint64, format string, args ...any) {
	c.log = append(c.log, fmt.Sprintf("[cycle %d] %s", now, fmt.Sprintf(format, args...)))
}

// hotOrder returns the sampled methods hottest-first (ties broken by
// method ID), capped at HotMethods and at the hottest prefix whose
// compiled bodies fit the instruction cache: packing more code than
// one cache's worth turns the packed region itself into a capacity
// thrash, so the tail stays where it is.
func (c *CodeLayout) hotOrder() []int {
	ids := make([]int, 0, len(c.samples))
	for id, w := range c.samples {
		if w > 0 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		wi, wj := c.samples[ids[i]], c.samples[ids[j]]
		if wi != wj {
			return wi > wj
		}
		return ids[i] < ids[j]
	})
	if c.cfg.HotMethods > 0 && len(ids) > c.cfg.HotMethods {
		ids = ids[:c.cfg.HotMethods]
	}
	sizes := make(map[int]uint64, len(ids))
	for _, b := range c.vm.Table.CurrentBodies() {
		sizes[b.Method.ID] = b.CodeBytes()
	}
	var used uint64
	fit := ids[:0]
	for _, id := range ids {
		if len(fit) > 0 && used+sizes[id] > uint64(c.cfg.ICacheSize) {
			break
		}
		fit = append(fit, id)
		used += sizes[id]
	}
	return fit
}

// rateOver returns the L1I miss rate over the last k polls of history
// (0 when the window saw no fetches).
func (c *CodeLayout) rateOver(k uint64) float64 {
	n := uint64(len(c.history))
	if n < k+1 || k == 0 {
		return 0
	}
	a, b := c.history[n-1-k], c.history[n-1]
	dF := b.fetches - a.fetches
	dM := b.misses - a.misses
	if dF == 0 {
		return 0
	}
	return float64(dM) / float64(dF)
}

// sameSet reports whether two method-ID lists contain the same IDs
// (order-insensitively) — layout order shuffles within a stable hot
// set do not justify another relocation.
func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	in := make(map[int]bool, len(a))
	for _, id := range a {
		in[id] = true
	}
	for _, id := range b {
		if !in[id] {
			return false
		}
	}
	return true
}

// Snapshot/Restore implement snap.Checkpointable. Everything the
// decision loop consults is serialized: the hotness accounting, the
// per-poll I-cache history, the layout bookkeeping and the open
// decision — a restored system assesses and relocates exactly like the
// origin (the code space itself is rebuilt by the VM's recompile-log
// replay, including pads).

const (
	codeLayoutComponent = "opt/codelayout"
	codeLayoutVersion   = 1
)

// Snapshot serializes the optimization state.
func (c *CodeLayout) Snapshot() snap.ComponentState {
	var w snap.Writer
	w.U64(c.seen)
	ids := make([]int, 0, len(c.samples))
	for id := range c.samples {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	w.U64(uint64(len(ids)))
	for _, id := range ids {
		w.I64(int64(id))
		w.U64(c.samples[id])
	}
	w.U64(uint64(len(c.history)))
	for _, p := range c.history {
		w.U64(p.fetches)
		w.U64(p.misses)
	}
	w.U64(uint64(len(c.lastLayout)))
	for _, id := range c.lastLayout {
		w.I64(int64(id))
	}
	w.U64(uint64(c.epoch))
	w.U64(c.decisions)
	w.U64(c.reverts)
	w.Bool(c.badDone)
	w.Bool(c.open != nil)
	if c.open != nil {
		st := c.open.State.(*layoutState)
		w.I64(int64(c.open.Target))
		w.String(c.open.Label)
		w.U64(c.open.AppliedAt)
		w.U64(c.open.AppliedPoll)
		w.F64(st.baseline)
		w.Bool(st.conflict)
	}
	w.U64(uint64(len(c.log)))
	for _, l := range c.log {
		w.String(l)
	}
	return snap.ComponentState{Component: codeLayoutComponent, Version: codeLayoutVersion, Data: w.Bytes()}
}

// Restore overwrites the optimization state.
func (c *CodeLayout) Restore(st snap.ComponentState) error {
	if err := snap.Check(st, codeLayoutComponent, codeLayoutVersion); err != nil {
		return err
	}
	r := snap.NewReader(st.Data)
	seen := r.U64()
	nSamples := r.U64()
	samples := make(map[int]uint64, nSamples)
	for i := uint64(0); i < nSamples && r.Err() == nil; i++ {
		id := int(r.I64())
		samples[id] = r.U64()
	}
	nHist := r.U64()
	history := make([]ipoint, 0, nHist)
	for i := uint64(0); i < nHist && r.Err() == nil; i++ {
		var p ipoint
		p.fetches = r.U64()
		p.misses = r.U64()
		history = append(history, p)
	}
	nLayout := r.U64()
	lastLayout := make([]int, 0, nLayout)
	for i := uint64(0); i < nLayout && r.Err() == nil; i++ {
		lastLayout = append(lastLayout, int(r.I64()))
	}
	epoch := int(r.U64())
	decisions := r.U64()
	reverts := r.U64()
	badDone := r.Bool()
	var open *Decision
	if r.Bool() {
		open = &Decision{}
		open.Target = int(r.I64())
		open.Label = r.String()
		open.AppliedAt = r.U64()
		open.AppliedPoll = r.U64()
		ls := &layoutState{}
		ls.baseline = r.F64()
		ls.conflict = r.Bool()
		open.State = ls
	}
	nLog := r.U64()
	log := make([]string, 0, nLog)
	for i := uint64(0); i < nLog && r.Err() == nil; i++ {
		log = append(log, r.String())
	}
	if err := r.Close(); err != nil {
		return err
	}
	c.seen = seen
	c.samples = samples
	c.history = history
	c.lastLayout = lastLayout
	c.epoch = epoch
	c.decisions = decisions
	c.reverts = reverts
	c.badDone = badDone
	c.open = open
	c.log = log
	return nil
}
