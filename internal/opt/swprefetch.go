package opt

import (
	"fmt"
	"sort"

	"hpmvm/internal/hw/cache"
	"hpmvm/internal/monitor"
	"hpmvm/internal/obs"
	"hpmvm/internal/snap"
	"hpmvm/internal/vm/runtime"
)

// SwPrefetch is the third PEBS-driven optimization: software prefetch
// injection at strided miss sites. The monitor's per-sample sink feeds
// every sampled miss address into a per-PC stride detector — the same
// confidence-counted scheme as the hardware stream prefetcher, but
// keyed by the faulting PC and tolerant of the randomized sampling
// interval: consecutive samples at one PC are k strides apart for a
// varying k, so the detector accepts exact multiples of its trained
// stride and refines toward the common divisor instead of demanding
// back-to-back lines the way the hardware does. Sites whose stride
// survives MinConfidence observations get a software prefetch injected
// via the VM's recompile hook (vm.InstallPrefetchSites): every
// subsequent execution of that PC issues Hierarchy.SoftwarePrefetch at
// addr + stride×Distance, a mechanism deliberately distinct from the
// hardware stream prefetcher so the two are separately attributable.
//
// Its niche is complementary to the hardware: the stream prefetcher
// trains only on L2 misses with ±1-line deltas, so L2-resident strided
// working sets — which still pay the L2 hit penalty on every L1 miss —
// are invisible to it. The injected prefetch pulls the next stride's
// line into L1 ahead of the demand access and squashes itself for free
// while the line is still L1-resident, so a streaming loop pays the
// issue cycle roughly once per line.
//
// Like the other optimizations the decision is verified online (§5.3):
// cycles-per-access over the EvalPeriods polls before the injection is
// the baseline, the same rate after it is the evidence, and an
// injection that regresses past RegressionFactor× baseline is reverted
// by reinstalling the previous site set. BadInjectAtCycle deliberately
// installs an L1-thrashing site set (each prefetch lands on the demand
// line's own set) to exercise the revert path — Figure 7's
// bad-decision experiment, transplanted to prefetch injection.
type SwPrefetch struct {
	cfg  SwPrefetchConfig
	vm   *runtime.VM
	mon  *monitor.Monitor
	hier *cache.Hierarchy

	// streams is the per-PC stride detector table, bounded at
	// MaxStreams with least-seen eviction; seen counts raw sink
	// deliveries (the MinSamples gate).
	streams map[uint64]*swStream
	seen    uint64

	// history records the cumulative data-cache counters at each poll;
	// rate-over-window queries difference its tail.
	history []dpoint

	// installed is the currently injected site set (PC → prefetch
	// delta in bytes) with the owning method of each site; a new
	// injection is proposed only when the confident set changes.
	installed   map[uint64]int64
	siteMethods map[uint64]int

	open      *Decision
	epoch     int
	decisions uint64
	reverts   uint64
	badDone   bool

	log []string
}

// swStream is one detector entry: the last sampled miss address at a
// PC, the trained stride, and its confidence.
type swStream struct {
	lastAddr uint64
	stride   int64
	conf     int
	seen     uint64
	methodID int
}

// dpoint is one poll's cumulative data-cache counters.
type dpoint struct {
	accesses, misses, cycles uint64
}

// minStrideGCD is the smallest common divisor the detector accepts as
// a refined stride. Misses happen at line granularity, so genuine
// strided sample deltas share a large divisor; unrelated addresses of
// a pointer-chasing site share at most their alignment. Half a line
// (64 bytes under the default 128-byte geometry) separates the two.
const minStrideGCD = 64

// SwPrefetchConfig parameterizes the prefetch-injection optimization.
type SwPrefetchConfig struct {
	// MinSamples is the number of attributed samples required before
	// the first injection.
	MinSamples uint64
	// MinConfidence is how many stride-consistent deltas a PC must
	// accumulate before it qualifies as an injection site.
	MinConfidence int
	// MaxSites caps how many sites one injection installs (0 = default).
	MaxSites int
	// Distance is how many strides ahead each prefetch targets.
	Distance int
	// MaxStreams bounds the detector table (least-seen eviction).
	MaxStreams int
	// IssueCycles is the cost charged per issued (non-squashed)
	// software prefetch, passed to cache.Hierarchy.EnableSwPrefetch.
	IssueCycles uint64
	// EvalPeriods is the assessment window in monitor polls: the
	// baseline is measured over this many polls before an injection,
	// the verdict over this many polls after it.
	EvalPeriods uint64
	// RegressionFactor flags an injection as bad when post-injection
	// cycles-per-access exceeds baseline × this factor.
	RegressionFactor float64
	// MinMissRate is the L1D miss-rate floor below which no injection
	// is proposed: prefetching pays issue cycles and pollutes the
	// cache, so the optimization acts only when monitoring shows data
	// misses worth that cost. 0 resolves to the default; a negative
	// value disables the floor.
	MinMissRate float64
	// MaxReverts backs the optimization off: after this many reverted
	// injections it stops proposing. 0 resolves to the default; a
	// negative value never backs off.
	MaxReverts int
	// BadInjectAtCycle, when non-zero, makes the next injection
	// proposed at or after this cycle a deliberate cache-polluting
	// site set (every prefetch evicts the demand line's own L1 set) —
	// the bad-decision hook the revert tests use. Applied once.
	BadInjectAtCycle uint64
	// Passive runs the detector without ever proposing an injection
	// (the experiment baseline).
	Passive bool
}

// DefaultSwPrefetchConfig returns the standard parameters.
func DefaultSwPrefetchConfig() SwPrefetchConfig {
	return SwPrefetchConfig{
		MinSamples:       32,
		MinConfidence:    3,
		MaxSites:         16,
		Distance:         2,
		MaxStreams:       256,
		IssueCycles:      1,
		EvalPeriods:      6,
		RegressionFactor: 1.2,
		MinMissRate:      0.01,
		MaxReverts:       2,
	}
}

// WithDefaults resolves the zero values that have no meaningful zero
// semantics to their defaults. MinSamples 0 (inject immediately),
// BadInjectAtCycle 0 (never) and Passive false are meaningful zeros
// and stay put. Canonicalization and construction both apply it, so a
// zero field and its explicit default build — and fingerprint —
// identically.
func (c SwPrefetchConfig) WithDefaults() SwPrefetchConfig {
	d := DefaultSwPrefetchConfig()
	if c.MinConfidence == 0 {
		c.MinConfidence = d.MinConfidence
	}
	if c.MaxSites == 0 {
		c.MaxSites = d.MaxSites
	}
	if c.Distance == 0 {
		c.Distance = d.Distance
	}
	if c.MaxStreams == 0 {
		c.MaxStreams = d.MaxStreams
	}
	if c.IssueCycles == 0 {
		c.IssueCycles = d.IssueCycles
	}
	if c.EvalPeriods == 0 {
		c.EvalPeriods = d.EvalPeriods
	}
	if c.RegressionFactor == 0 {
		c.RegressionFactor = d.RegressionFactor
	}
	if c.MinMissRate == 0 {
		c.MinMissRate = d.MinMissRate
	}
	if c.MaxReverts == 0 {
		c.MaxReverts = d.MaxReverts
	}
	return c
}

// swPlan is the Analyze→Apply payload: the site set to install and
// whether it is the deliberate polluting injection.
type swPlan struct {
	sites   map[uint64]int64
	methods map[uint64]int
	bad     bool
}

// swDecState is the per-decision payload consulted by Assess/Revert.
type swDecState struct {
	baseline    float64 // cycles/access over EvalPeriods polls pre-apply
	prev        map[uint64]int64
	prevMethods map[uint64]int
	bad         bool
}

// NewSwPrefetch builds the optimization over a VM whose hierarchy has
// software prefetching enabled (cache.Hierarchy.EnableSwPrefetch),
// registers its sample sink with the monitor and its site-invalidation
// hook with the VM, and returns it ready for Manager.Register.
func NewSwPrefetch(vm *runtime.VM, mon *monitor.Monitor, cfg SwPrefetchConfig) *SwPrefetch {
	cfg = cfg.WithDefaults()
	s := &SwPrefetch{
		cfg:     cfg,
		vm:      vm,
		mon:     mon,
		hier:    vm.Hier,
		streams: make(map[uint64]*swStream),
	}
	mon.AddSink(func(pc, dataAddr uint64, methodID int, interval uint64) {
		s.seen++
		if dataAddr != 0 {
			s.observe(pc, dataAddr, methodID)
		}
	})
	// A recompiled method's old PCs stay executable (frames on the
	// stack) but new invocations run the fresh body, so sites keyed on
	// the old body's PCs decay into dead issue cost. Drop the method's
	// sites and detector streams and reinstall the remainder.
	vm.OnRecompile(func(methodID int) { s.dropMethod(methodID) })
	return s
}

// observe feeds one sampled miss into the stride detector.
func (s *SwPrefetch) observe(pc, addr uint64, methodID int) {
	st, ok := s.streams[pc]
	if !ok {
		if len(s.streams) >= s.cfg.MaxStreams {
			s.evictStream()
		}
		s.streams[pc] = &swStream{lastAddr: addr, seen: 1, methodID: methodID}
		return
	}
	delta := int64(addr - st.lastAddr)
	st.lastAddr = addr
	st.methodID = methodID
	st.seen++
	if delta == 0 {
		return
	}
	switch {
	case st.stride == 0:
		st.stride = delta
		st.conf = 1
	case sameSign(delta, st.stride) && delta%st.stride == 0:
		// k strides were skipped between samples (randomized interval).
		st.conf++
	case sameSign(delta, st.stride) && st.stride%delta == 0:
		// The trained stride was itself a multiple of the true stride;
		// refine down to the finer one.
		st.stride = delta
		st.conf++
	default:
		if g := int64(gcd64(abs64(delta), abs64(st.stride))); sameSign(delta, st.stride) && g >= minStrideGCD {
			// Neither delta divides the other but both are multiples of
			// a large common stride (k1×S vs k2×S): retrain at S.
			if st.stride < 0 {
				g = -g
			}
			st.stride = g
			st.conf = 1
		} else {
			// Direction flip or irregular delta: retrain from scratch.
			st.stride = delta
			st.conf = 0
		}
	}
}

// evictStream removes the least-seen detector entry (ties broken by
// lowest PC, so eviction is deterministic across map iteration orders).
func (s *SwPrefetch) evictStream() {
	var victim uint64
	first := true
	for pc, st := range s.streams {
		if first || st.seen < s.streams[victim].seen ||
			(st.seen == s.streams[victim].seen && pc < victim) {
			victim = pc
			first = false
		}
	}
	if !first {
		delete(s.streams, victim)
	}
}

// dropMethod discards detector and site state tied to a recompiled
// method and reinstalls the surviving sites.
func (s *SwPrefetch) dropMethod(methodID int) {
	for pc, st := range s.streams {
		if st.methodID == methodID {
			delete(s.streams, pc)
		}
	}
	changed := false
	for pc, id := range s.siteMethods {
		if id == methodID {
			delete(s.installed, pc)
			delete(s.siteMethods, pc)
			changed = true
		}
	}
	if changed {
		s.vm.InstallPrefetchSites(s.installed)
	}
}

// Kind implements Optimization.
func (s *SwPrefetch) Kind() string { return KindSwPrefetch }

// MonitorWindow implements Optimization: an injection is first
// assessed EvalPeriods polls after it was applied.
func (s *SwPrefetch) MonitorWindow() uint64 { return s.cfg.EvalPeriods }

// Analyze implements Optimization. Every poll it records the data-cache
// counters (the rate history assessment differences); when no decision
// is open and the confident site set changed, it proposes one
// injection.
func (s *SwPrefetch) Analyze(now uint64) []Proposal {
	cst := s.hier.Stats()
	s.history = append(s.history, dpoint{cst.Accesses, cst.L1Misses, cst.Cycles})

	if s.cfg.Passive || s.open != nil || s.seen < s.cfg.MinSamples {
		return nil
	}
	if uint64(len(s.history)) < s.cfg.EvalPeriods+1 {
		return nil // no baseline window yet
	}
	if s.cfg.MaxReverts >= 0 && s.reverts >= uint64(s.cfg.MaxReverts) {
		return nil // backed off: injection has been reverted too often here
	}
	if uint64(len(s.history)) < 2*s.cfg.EvalPeriods+1 {
		return nil
	}
	short := s.cpaOver(s.cfg.EvalPeriods)
	// Warmup guard: while cold-start misses dominate, cycles-per-access
	// declines steeply and a baseline captured now would overstate
	// steady state, masking a bad injection at assessment. Propose only
	// once the recent window is within 20% of the longer one. The
	// bad-decision injection waits it out too — its scenario is a bad
	// call in steady state, judged against an honest baseline.
	if long := s.cpaOver(2 * s.cfg.EvalPeriods); short < long*0.8 {
		return nil
	}
	if s.cfg.BadInjectAtCycle != 0 && now >= s.cfg.BadInjectAtCycle && !s.badDone {
		if plan := s.pollutingPlan(); plan != nil {
			return []Proposal{{
				Target: s.epoch,
				Label:  fmt.Sprintf("polluting injection at %d sites", len(plan.sites)),
				Code:   obs.DecisionIntervene,
				State:  plan,
			}}
		}
		return nil
	}
	if rate := s.missRateOver(s.cfg.EvalPeriods); rate < s.cfg.MinMissRate {
		return nil // no data-cache pressure: issuing would only cost
	}
	plan := s.confidentPlan()
	if plan == nil || sameSites(plan.sites, s.installed) {
		return nil
	}
	return []Proposal{{
		Target: s.epoch,
		Label:  fmt.Sprintf("prefetch injection at %d strided sites", len(plan.sites)),
		Code:   obs.DecisionActivate,
		State:  plan,
	}}
}

// confidentPlan builds the site set from detector streams at or above
// MinConfidence, hottest-first, capped at MaxSites. Each site's delta
// is stride × Distance; sites whose delta can never survive the
// page-boundary clamp are skipped.
func (s *SwPrefetch) confidentPlan() *swPlan {
	pageSize := int64(s.hier.Config().PageSize)
	pcs := make([]uint64, 0, len(s.streams))
	for pc, st := range s.streams {
		if st.conf >= s.cfg.MinConfidence && st.stride != 0 {
			if d := st.stride * int64(s.cfg.Distance); abs64(d) < uint64(pageSize) {
				pcs = append(pcs, pc)
			}
		}
	}
	if len(pcs) == 0 {
		return nil
	}
	sort.Slice(pcs, func(i, j int) bool {
		si, sj := s.streams[pcs[i]], s.streams[pcs[j]]
		if si.seen != sj.seen {
			return si.seen > sj.seen
		}
		return pcs[i] < pcs[j]
	})
	if len(pcs) > s.cfg.MaxSites {
		pcs = pcs[:s.cfg.MaxSites]
	}
	plan := &swPlan{sites: make(map[uint64]int64, len(pcs)), methods: make(map[uint64]int, len(pcs))}
	for _, pc := range pcs {
		st := s.streams[pc]
		plan.sites[pc] = st.stride * int64(s.cfg.Distance)
		plan.methods[pc] = st.methodID
	}
	return plan
}

// pollutingPlan targets the hottest sampled PCs with a delta of
// -L1Size: under a direct-mapped L1 the prefetched line aliases the
// demand line's own set, so every access evicts the line it just
// fetched — pure issue cost plus guaranteed pollution.
func (s *SwPrefetch) pollutingPlan() *swPlan {
	pcs := make([]uint64, 0, len(s.streams))
	for pc := range s.streams {
		pcs = append(pcs, pc)
	}
	if len(pcs) == 0 {
		return nil
	}
	sort.Slice(pcs, func(i, j int) bool {
		si, sj := s.streams[pcs[i]], s.streams[pcs[j]]
		if si.seen != sj.seen {
			return si.seen > sj.seen
		}
		return pcs[i] < pcs[j]
	})
	if len(pcs) > s.cfg.MaxSites {
		pcs = pcs[:s.cfg.MaxSites]
	}
	delta := -int64(s.hier.Config().L1Size)
	plan := &swPlan{sites: make(map[uint64]int64, len(pcs)), methods: make(map[uint64]int, len(pcs)), bad: true}
	for _, pc := range pcs {
		plan.sites[pc] = delta
		plan.methods[pc] = s.streams[pc].methodID
	}
	return plan
}

// Apply implements Optimization: install the plan's site set through
// the VM's recompile hook and open the decision for assessment.
func (s *SwPrefetch) Apply(now uint64, p Proposal) {
	plan := p.State.(*swPlan)
	baseline := s.cpaOver(s.cfg.EvalPeriods)
	s.open = &Decision{
		Target:      p.Target,
		Label:       p.Label,
		AppliedAt:   now,
		AppliedPoll: s.mon.Stats().Polls,
		State: &swDecState{
			baseline:    baseline,
			prev:        s.installed,
			prevMethods: s.siteMethods,
			bad:         plan.bad,
		},
	}
	s.install(plan.sites, plan.methods)
	s.epoch++
	s.decisions++
	if plan.bad {
		s.badDone = true
	}
	s.logf(now, "injection #%d: %s (baseline %.4f cycles/access)", p.Target, p.Label, baseline)
}

// install points the VM (and through it the hierarchy) at a new site
// set. Maps are copied so later bookkeeping never mutates a plan or a
// decision's revert payload.
func (s *SwPrefetch) install(sites map[uint64]int64, methods map[uint64]int) {
	ns := make(map[uint64]int64, len(sites))
	for pc, d := range sites {
		ns[pc] = d
	}
	nm := make(map[uint64]int, len(methods))
	for pc, id := range methods {
		nm[pc] = id
	}
	s.installed = ns
	s.siteMethods = nm
	s.vm.InstallPrefetchSites(ns)
}

// OpenDecisions implements Optimization: at most one injection is
// monitored at a time.
func (s *SwPrefetch) OpenDecisions() []*Decision {
	if s.open == nil {
		return nil
	}
	return []*Decision{s.open}
}

// Assess implements Optimization: compare cycles-per-access over the
// assessment window against the pre-injection baseline. A kept
// decision closes — injections are judged once, like the paper's
// Figure-7 window.
func (s *SwPrefetch) Assess(now uint64, d *Decision) Assessment {
	st := d.State.(*swDecState)
	cur := s.cpaOver(s.cfg.EvalPeriods)
	if st.baseline > 0 && cur > st.baseline*s.cfg.RegressionFactor {
		return Assessment{Verdict: VerdictBad, Reason: obs.DecisionRevertRate, A: cur, B: st.baseline}
	}
	s.open = nil
	s.logf(now, "injection #%d kept (%.4f cycles/access, baseline %.4f)", d.Target, cur, st.baseline)
	return Assessment{Verdict: VerdictKeep, A: cur, B: st.baseline}
}

// Revert implements Optimization: reinstall the site set that was live
// before the bad injection.
func (s *SwPrefetch) Revert(now uint64, d *Decision, a Assessment) {
	st := d.State.(*swDecState)
	s.install(st.prev, st.prevMethods)
	s.reverts++
	s.open = nil
	s.logf(now, "injection #%d reverted (%.4f vs baseline %.4f cycles/access): restored %d sites",
		d.Target, a.A, a.B, len(st.prev))
}

// Stats implements Optimization.
func (s *SwPrefetch) Stats() Stats {
	return Stats{Decisions: s.decisions, Reverts: s.reverts}
}

// Log returns the decision log ("[cycle N] ..." lines).
func (s *SwPrefetch) Log() []string { return s.log }

// Epoch returns how many injections have been applied.
func (s *SwPrefetch) Epoch() int { return s.epoch }

// Sites returns the currently installed site set (PC → delta), for
// tests and reporting.
func (s *SwPrefetch) Sites() map[uint64]int64 {
	out := make(map[uint64]int64, len(s.installed))
	for pc, d := range s.installed {
		out[pc] = d
	}
	return out
}

func (s *SwPrefetch) logf(now uint64, format string, args ...any) {
	s.log = append(s.log, fmt.Sprintf("[cycle %d] %s", now, fmt.Sprintf(format, args...)))
}

// cpaOver returns cycles-per-access over the last k polls of history
// (0 when the window saw no accesses).
func (s *SwPrefetch) cpaOver(k uint64) float64 {
	n := uint64(len(s.history))
	if n < k+1 || k == 0 {
		return 0
	}
	a, b := s.history[n-1-k], s.history[n-1]
	dA := b.accesses - a.accesses
	if dA == 0 {
		return 0
	}
	return float64(b.cycles-a.cycles) / float64(dA)
}

// missRateOver returns the L1D miss rate over the last k polls.
func (s *SwPrefetch) missRateOver(k uint64) float64 {
	n := uint64(len(s.history))
	if n < k+1 || k == 0 {
		return 0
	}
	a, b := s.history[n-1-k], s.history[n-1]
	dA := b.accesses - a.accesses
	if dA == 0 {
		return 0
	}
	return float64(b.misses-a.misses) / float64(dA)
}

// sameSites reports whether two site maps are identical.
func sameSites(a, b map[uint64]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for pc, d := range a {
		if bd, ok := b[pc]; !ok || bd != d {
			return false
		}
	}
	return true
}

func sameSign(a, b int64) bool {
	return (a > 0) == (b > 0) && a != 0 && b != 0
}

func abs64(v int64) uint64 {
	if v < 0 {
		return uint64(-v)
	}
	return uint64(v)
}

func gcd64(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Snapshot/Restore implement snap.Checkpointable. Everything the
// decision loop consults is serialized: the detector table, the
// per-poll data-cache history, the site bookkeeping and the open
// decision. The hierarchy's live site table is cache state and travels
// in the hw/cache component, which restores before this one — so
// Restore only rebuilds the optimization's own view.

const (
	swPrefetchComponent = "opt/swprefetch"
	swPrefetchVersion   = 1
)

func encodeSites(w *snap.Writer, sites map[uint64]int64, methods map[uint64]int) {
	pcs := make([]uint64, 0, len(sites))
	for pc := range sites {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	w.U64(uint64(len(pcs)))
	for _, pc := range pcs {
		w.U64(pc)
		w.I64(sites[pc])
		w.I64(int64(methods[pc]))
	}
}

func decodeSites(r *snap.Reader) (map[uint64]int64, map[uint64]int) {
	n := r.U64()
	sites := make(map[uint64]int64, n)
	methods := make(map[uint64]int, n)
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		pc := r.U64()
		sites[pc] = r.I64()
		methods[pc] = int(r.I64())
	}
	return sites, methods
}

// Snapshot serializes the optimization state.
func (s *SwPrefetch) Snapshot() snap.ComponentState {
	var w snap.Writer
	w.U64(s.seen)
	pcs := make([]uint64, 0, len(s.streams))
	for pc := range s.streams {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	w.U64(uint64(len(pcs)))
	for _, pc := range pcs {
		st := s.streams[pc]
		w.U64(pc)
		w.U64(st.lastAddr)
		w.I64(st.stride)
		w.I64(int64(st.conf))
		w.U64(st.seen)
		w.I64(int64(st.methodID))
	}
	w.U64(uint64(len(s.history)))
	for _, p := range s.history {
		w.U64(p.accesses)
		w.U64(p.misses)
		w.U64(p.cycles)
	}
	encodeSites(&w, s.installed, s.siteMethods)
	w.U64(uint64(s.epoch))
	w.U64(s.decisions)
	w.U64(s.reverts)
	w.Bool(s.badDone)
	w.Bool(s.open != nil)
	if s.open != nil {
		st := s.open.State.(*swDecState)
		w.I64(int64(s.open.Target))
		w.String(s.open.Label)
		w.U64(s.open.AppliedAt)
		w.U64(s.open.AppliedPoll)
		w.F64(st.baseline)
		w.Bool(st.bad)
		encodeSites(&w, st.prev, st.prevMethods)
	}
	w.U64(uint64(len(s.log)))
	for _, l := range s.log {
		w.String(l)
	}
	return snap.ComponentState{Component: swPrefetchComponent, Version: swPrefetchVersion, Data: w.Bytes()}
}

// Restore overwrites the optimization state.
func (s *SwPrefetch) Restore(cs snap.ComponentState) error {
	if err := snap.Check(cs, swPrefetchComponent, swPrefetchVersion); err != nil {
		return err
	}
	r := snap.NewReader(cs.Data)
	seen := r.U64()
	nStreams := r.U64()
	streams := make(map[uint64]*swStream, nStreams)
	for i := uint64(0); i < nStreams && r.Err() == nil; i++ {
		pc := r.U64()
		st := &swStream{}
		st.lastAddr = r.U64()
		st.stride = r.I64()
		st.conf = int(r.I64())
		st.seen = r.U64()
		st.methodID = int(r.I64())
		streams[pc] = st
	}
	nHist := r.U64()
	history := make([]dpoint, 0, nHist)
	for i := uint64(0); i < nHist && r.Err() == nil; i++ {
		var p dpoint
		p.accesses = r.U64()
		p.misses = r.U64()
		p.cycles = r.U64()
		history = append(history, p)
	}
	installed, siteMethods := decodeSites(r)
	epoch := int(r.U64())
	decisions := r.U64()
	reverts := r.U64()
	badDone := r.Bool()
	var open *Decision
	if r.Bool() {
		open = &Decision{}
		open.Target = int(r.I64())
		open.Label = r.String()
		open.AppliedAt = r.U64()
		open.AppliedPoll = r.U64()
		ds := &swDecState{}
		ds.baseline = r.F64()
		ds.bad = r.Bool()
		ds.prev, ds.prevMethods = decodeSites(r)
		open.State = ds
	}
	nLog := r.U64()
	log := make([]string, 0, nLog)
	for i := uint64(0); i < nLog && r.Err() == nil; i++ {
		log = append(log, r.String())
	}
	if err := r.Close(); err != nil {
		return err
	}
	s.seen = seen
	s.streams = streams
	s.history = history
	s.installed = installed
	s.siteMethods = siteMethods
	s.epoch = epoch
	s.decisions = decisions
	s.reverts = reverts
	s.badDone = badDone
	s.open = open
	s.log = log
	return nil
}
