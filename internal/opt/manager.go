package opt

import (
	"hpmvm/internal/monitor"
	"hpmvm/internal/obs"
)

// Manager owns the online-optimization loop. It registers a single
// observer with the monitor and, on every poll, drives each registered
// optimization through the paper's pipeline: analyze the freshly
// decoded samples, apply the proposed decisions, and — once a
// decision's monitoring window has elapsed — assess it and revert it
// if the verdict is bad.
//
// The manager itself is stateless across snapshots: its poll clock is
// the monitor's serialized poll counter, and every per-decision datum
// it consults (AppliedPoll, assessment inputs, decision/revert
// counters) lives in the optimizations' own snapshot state. A restored
// system therefore rebuilds an identical manager from configuration
// alone.
type Manager struct {
	mon  *monitor.Monitor
	obs  *obs.Observer
	opts []Optimization
}

// NewManager creates a manager observing mon's poll ticks. The caller
// must register it at the same wiring point the pre-framework
// co-allocation policy attached its observer (order of monitor
// observers is part of the byte-identity contract).
func NewManager(mon *monitor.Monitor) *Manager {
	m := &Manager{mon: mon}
	mon.AddObserver(m.observe)
	return m
}

// Register adds an optimization to the managed set. Optimizations run
// in registration order on every poll; the registration index is the
// kind index carried in EvOptDecision/EvOptRevert events.
func (m *Manager) Register(o Optimization) {
	m.opts = append(m.opts, o)
}

// Optimizations returns the managed set in registration order.
func (m *Manager) Optimizations() []Optimization {
	return m.opts
}

// SetObserver wires the trace/counter sink. For every non-legacy kind
// it registers sampled per-kind decision/revert counters
// (opt.<kind>.decisions, opt.<kind>.reverts) and enables
// EvOptDecision/EvOptRevert emission. The co-allocation kind keeps its
// pre-framework surface (coalloc.* counters, EvCoallocDecision) which
// the policy registers itself, so existing obs exports stay
// byte-identical.
func (m *Manager) SetObserver(o *obs.Observer) {
	m.obs = o
	if o == nil {
		return
	}
	for _, op := range m.opts {
		if op.Kind() == KindCoalloc {
			continue
		}
		op := op
		o.RegisterSampled("opt."+op.Kind()+".decisions", func() uint64 { return op.Stats().Decisions })
		o.RegisterSampled("opt."+op.Kind()+".reverts", func() uint64 { return op.Stats().Reverts })
	}
}

// Stats returns one row per registered optimization, in registration
// order.
func (m *Manager) Stats() []KindStats {
	out := make([]KindStats, 0, len(m.opts))
	for _, op := range m.opts {
		s := op.Stats()
		out = append(out, KindStats{Kind: op.Kind(), Decisions: s.Decisions, Reverts: s.Reverts})
	}
	return out
}

// observe is the per-poll pipeline. The monitor invokes it after
// decoding the poll's samples, so Analyze sees fully attributed data.
func (m *Manager) observe(now uint64) {
	polls := m.mon.Stats().Polls
	for idx, op := range m.opts {
		legacy := op.Kind() == KindCoalloc
		for _, p := range op.Analyze(now) {
			op.Apply(now, p)
			if !legacy && m.obs != nil {
				m.obs.Emit(obs.EvOptDecision, now, uint64(idx), uint64(p.Target), p.Code)
			}
		}
		w := op.MonitorWindow()
		for _, d := range op.OpenDecisions() {
			if w > 0 && polls-d.AppliedPoll < w {
				continue
			}
			a := op.Assess(now, d)
			if a.Verdict != VerdictBad {
				continue
			}
			op.Revert(now, d, a)
			if !legacy && m.obs != nil {
				m.obs.Emit(obs.EvOptRevert, now, uint64(idx), uint64(d.Target), a.Reason)
			}
		}
	}
}
