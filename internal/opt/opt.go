// Package opt is the generic online-optimization framework: the
// monitor→analyze→apply→assess→revert pipeline of the paper,
// factored out of the co-allocation policy so the same PEBS-driven
// feedback loop can drive several optimization kinds (the ROADMAP's
// "PGO beyond co-allocation" item).
//
// The paper's pipeline is: hardware samples → method/bytecode/field
// attribution → analysis → an optimization decision → online
// verification with revert (§5.3, Figures 7/8). Package coalloc
// hardwired that loop to one optimization; this package splits it into
// an Optimization interface (candidate analysis, decision application,
// per-decision assessment, revert) and a Manager that owns the loop:
// it observes the monitor's poll ticks, drives each registered
// optimization through analyze→apply, gates assessment on the
// optimization's monitoring window, and reverts decisions the
// assessment flags as regressions.
//
// Two implementations exist: the ported co-allocation policy
// (coalloc.Policy implements Optimization byte-identically to its
// pre-framework behaviour — the golden corpus pins this) and the
// hot/cold code-layout optimization in this package (codelayout.go),
// which relocates hot compiled methods onto adjacent instruction-cache
// lines.
package opt

// Kind names for the shipped optimizations.
const (
	// KindCoalloc is the object co-allocation policy (package coalloc).
	// It predates the framework: the manager treats it as a legacy kind
	// and leaves its observability surface (EvCoallocDecision events,
	// coalloc.* counters) untouched so pre-framework obs exports stay
	// byte-identical.
	KindCoalloc = "coalloc"
	// KindCodeLayout is the hot/cold code-layout optimization
	// (codelayout.go in this package).
	KindCodeLayout = "codelayout"
	// KindSwPrefetch is the software prefetch-injection optimization
	// (swprefetch.go in this package).
	KindSwPrefetch = "swprefetch"
)

// Proposal is one candidate decision produced by Analyze. The manager
// passes proposals back to the same optimization's Apply unchanged;
// State carries the optimization's private payload between the two
// halves (Analyze must not enact — splitting computation from
// mutation is what lets the manager own the loop).
type Proposal struct {
	// Target identifies what the proposal acts on (a field ID for
	// co-allocation, a layout epoch for code layout).
	Target int
	// Label is a human-readable description for logs and traces.
	Label string
	// Code is the obs decision code the application will be traced
	// with (obs.DecisionActivate, obs.DecisionIntervene, ...).
	Code uint64
	// State is the optimization-private payload consumed by Apply.
	State any
}

// Decision is one applied, still-monitored decision. Optimizations own
// their decisions (they are part of the optimization's snapshot state
// where persistent); OpenDecisions returns views for the manager to
// assess.
type Decision struct {
	// Target mirrors the proposal's Target.
	Target int
	// Label is a human-readable description.
	Label string
	// AppliedAt is the simulated cycle Apply ran at.
	AppliedAt uint64
	// AppliedPoll is the monitor poll count when Apply ran; the
	// manager gates assessment on polls-since-apply reaching the
	// optimization's MonitorWindow.
	AppliedPoll uint64
	// State is the optimization-private payload consumed by Assess and
	// Revert.
	State any
}

// Verdict is an assessment outcome.
type Verdict int

const (
	// VerdictKeep leaves the decision in place.
	VerdictKeep Verdict = iota
	// VerdictBad flags the decision as a regression; the manager
	// invokes Revert with the assessment.
	VerdictBad
)

// Assessment is the result of judging one decision against the
// monitoring data accumulated since it was applied.
type Assessment struct {
	Verdict Verdict
	// Reason is the obs decision code of the revert
	// (obs.DecisionRevertAB or obs.DecisionRevertRate).
	Reason uint64
	// A and B are the two sides of the comparison that produced the
	// verdict (measured vs reference: misses/pair, rates, ...), carried
	// to Revert so its log line can cite the evidence.
	A, B float64
}

// Stats summarizes one optimization's decision history. Both counters
// are derived from (or stored in) the optimization's snapshot state,
// so a restored system reports them exactly.
type Stats struct {
	// Decisions counts applied optimization decisions (activations,
	// layouts, interventions).
	Decisions uint64
	// Reverts counts decisions undone by the online assessment.
	Reverts uint64
}

// KindStats is Stats labeled with its optimization kind — the
// aggregation row bench results and /v1/statsz carry.
type KindStats struct {
	Kind      string `json:"kind"`
	Decisions uint64 `json:"decisions"`
	Reverts   uint64 `json:"reverts"`
}

// Optimization is one online optimization driven by the manager. The
// calls arrive in a fixed order within each monitor poll: Analyze,
// then Apply per proposal, then (window permitting) Assess per open
// decision, then Revert per bad verdict. Implementations may update
// internal bookkeeping in Analyze (sample accounting, state-entry
// creation) but must not enact placement/layout changes outside Apply
// and Revert.
type Optimization interface {
	// Kind returns the stable kind name ("coalloc", "codelayout").
	Kind() string
	// Analyze inspects the monitoring data at cycle now and returns
	// the decisions the optimization wants applied this poll, in
	// application order.
	Analyze(now uint64) []Proposal
	// Apply enacts one proposal.
	Apply(now uint64, p Proposal)
	// MonitorWindow returns the assessment window in monitor polls: a
	// decision is first assessed once that many polls have elapsed
	// since it was applied. 0 assesses every decision on every poll
	// (the co-allocation policy's behaviour — its A/B comparison gates
	// itself on sample counts instead).
	MonitorWindow() uint64
	// OpenDecisions returns the currently monitored decisions in a
	// deterministic order (the manager assesses them in this order).
	OpenDecisions() []*Decision
	// Assess judges one open decision.
	Assess(now uint64, d *Decision) Assessment
	// Revert undoes one decision flagged VerdictBad.
	Revert(now uint64, d *Decision, a Assessment)
	// Stats reports the decision/revert counters.
	Stats() Stats
}
