package bench

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"hpmvm/internal/core"
)

// TestWarmStartMatchesColdRun pins the bench-layer warm-start contract
// on the tiny unit workload: an exact-config RunFromSnapshot reproduces
// the cold run's metrics, a divergent interval retargets and still
// verifies the program results, and the guard rails (workload tag,
// option mismatch) fail loudly.
func TestWarmStartMatchesColdRun(t *testing.T) {
	b, _ := Get("_unit_tiny")
	cfg := RunConfig{Monitoring: true, Interval: 1000, Seed: 3, Observe: true}

	cold, _, err := Run(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	snapshot, err := RunPrefix(b, cfg, cold.Cycles/2)
	if err != nil {
		t.Fatal(err)
	}

	warm, _, err := RunFromSnapshot(b, cfg, snapshot)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cycles != cold.Cycles {
		t.Errorf("warm cycles = %d, cold = %d", warm.Cycles, cold.Cycles)
	}
	if !reflect.DeepEqual(warm.Cache, cold.Cache) {
		t.Errorf("warm cache stats %+v != cold %+v", warm.Cache, cold.Cache)
	}
	if warm.SamplesTaken != cold.SamplesTaken {
		t.Errorf("warm samples = %d, cold = %d", warm.SamplesTaken, cold.SamplesTaken)
	}
	if !reflect.DeepEqual(warm.Results, cold.Results) {
		t.Errorf("warm results %v != cold %v", warm.Results, cold.Results)
	}

	// Divergent interval: the retargeted tail still completes and the
	// program's expected results are verified inside RunFromSnapshot.
	div := cfg
	div.Interval = 500
	wdiv, _, err := RunFromSnapshot(b, div, snapshot)
	if err != nil {
		t.Fatal(err)
	}
	if wdiv.Cycles == 0 {
		t.Error("divergent warm start produced no cycles")
	}

	// Wrong workload tag.
	sn, err := core.DecodeSnapshot(snapshot)
	if err != nil {
		t.Fatal(err)
	}
	sn.Tag = "somebody_else"
	if _, _, err := RunFromSnapshot(b, cfg, core.EncodeSnapshot(sn)); err == nil ||
		!strings.Contains(err.Error(), "somebody_else") {
		t.Errorf("tag mismatch not rejected: %v", err)
	}

	// Non-interval option mismatch surfaces the typed sentinel.
	bad := cfg
	bad.Heap = 8 << 20
	if _, _, err := RunFromSnapshot(b, bad, snapshot); !errors.Is(err, core.ErrSnapshotMismatch) {
		t.Errorf("option mismatch err = %v, want ErrSnapshotMismatch", err)
	}
}

// TestEngineRunFrom runs a warm sweep on the engine and checks the
// futures resolve in configuration order with the exact point equal to
// its cold run.
func TestEngineRunFrom(t *testing.T) {
	b, _ := Get("_unit_tiny")
	cfg := RunConfig{Monitoring: true, Interval: 1000, Seed: 3}

	cold, _, err := Run(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	snapshot, err := RunPrefix(b, cfg, cold.Cycles/2)
	if err != nil {
		t.Fatal(err)
	}

	div := cfg
	div.Interval = 2000
	e := NewEngine(2)
	handles := e.RunFrom(b, snapshot, cfg, div)
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := handles[0].Result().Cycles; got != cold.Cycles {
		t.Errorf("exact warm point cycles = %d, cold = %d", got, cold.Cycles)
	}
	if handles[1].Result().Config.Interval != 2000 {
		t.Errorf("second future is not the divergent config")
	}
	if handles[1].Result().Cycles == 0 {
		t.Error("divergent point produced no cycles")
	}
}

// TestRunPrefixTooLate pins the error when the workload finishes
// before the requested pause cycle.
func TestRunPrefixTooLate(t *testing.T) {
	b, _ := Get("_unit_tiny")
	cold, _, err := Run(b, RunConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunPrefix(b, RunConfig{Seed: 3}, cold.Cycles*10); err == nil {
		t.Error("prefix beyond program end did not fail")
	}
}
