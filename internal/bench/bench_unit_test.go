package bench

import (
	"testing"

	"hpmvm/internal/vm/bytecode"
	"hpmvm/internal/vm/classfile"
)

// registerTestWorkload registers a tiny deterministic workload once.
func init() {
	Register("_unit_tiny", func() *Program {
		u := classfile.NewUniverse()
		cl := u.DefineClass("Tiny", nil)
		main := u.AddMethod(cl, "main", false, nil, classfile.KindVoid)
		b := bytecode.NewBuilder(u, main)
		b.Local("i", classfile.KindInt)
		b.Local("s", classfile.KindInt)
		b.Label("loop")
		b.Load("i").Const(50_000).If(bytecode.OpIfGE, "done")
		b.Load("s").Load("i").Add().Store("s")
		b.Inc("i", 1)
		b.Goto("loop")
		b.Label("done")
		b.Load("s").Result()
		b.Return()
		b.MustBuild()
		u.Layout()
		return &Program{
			Name:     "_unit_tiny",
			U:        u,
			Entry:    main,
			MinHeap:  1 << 20,
			Expected: []int64{50_000 * 49_999 / 2},
		}
	})
}

func TestRegistry(t *testing.T) {
	if _, ok := Get("_unit_tiny"); !ok {
		t.Fatal("registered workload not found")
	}
	if _, ok := Get("_missing"); ok {
		t.Fatal("unknown workload found")
	}
	found := false
	for _, n := range Names() {
		if n == "_unit_tiny" {
			found = true
		}
	}
	if !found {
		t.Error("Names() missing registration")
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration accepted")
		}
	}()
	Register("_unit_tiny", nil)
}

func TestRunVerifiesExpectedResults(t *testing.T) {
	b, _ := Get("_unit_tiny")
	res, sys, err := Run(b, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.Instret == 0 {
		t.Error("metrics empty")
	}
	if sys == nil || sys.VM == nil {
		t.Error("system not returned")
	}
	if res.HeapBytes != 4<<20 {
		t.Errorf("default heap = %d, want 4x min", res.HeapBytes)
	}
}

func TestDeterminism(t *testing.T) {
	// Identical seeds must give bit-identical simulated cycle counts —
	// the property all experiment deltas rest on.
	b, _ := Get("_unit_tiny")
	r1, _, err := Run(b, RunConfig{Seed: 7, Monitoring: true, Interval: 1000})
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := Run(b, RunConfig{Seed: 7, Monitoring: true, Interval: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.Cache.L1Misses != r2.Cache.L1Misses {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d cycles/misses",
			r1.Cycles, r1.Cache.L1Misses, r2.Cycles, r2.Cache.L1Misses)
	}
}

func TestRepeatUsesDistinctSeeds(t *testing.T) {
	b, _ := Get("_unit_tiny")
	mean, stddev, last, err := Repeat(b, RunConfig{Monitoring: true, Interval: 1000}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if mean <= 0 || last == nil {
		t.Fatal("Repeat returned nothing")
	}
	// Different seeds shift interval randomization; variance is small
	// but the plumbing must not crash and mean must be near the single
	// run.
	if stddev < 0 {
		t.Error("negative stddev")
	}
	if float64(last.Cycles) < 0.5*mean || float64(last.Cycles) > 2*mean {
		t.Errorf("mean %.0f inconsistent with run %d", mean, last.Cycles)
	}
}

func TestAllOptPlanCoversMethods(t *testing.T) {
	b, _ := Get("_unit_tiny")
	prog := b()
	plan := AllOptPlan(prog.U, 2)
	n := 0
	for _, m := range prog.U.Methods() {
		if m.Code != nil {
			if plan[m.ID] != 2 {
				t.Errorf("method %s missing from plan", m.QualifiedName())
			}
			n++
		}
	}
	if n == 0 {
		t.Fatal("no methods in plan")
	}
}

func TestResultMismatchDetected(t *testing.T) {
	if err := checkResults([]int64{1, 2}, []int64{1, 3}); err == nil {
		t.Error("mismatch not detected")
	}
	if err := checkResults([]int64{1}, []int64{1, 2}); err == nil {
		t.Error("length mismatch not detected")
	}
	if err := checkResults([]int64{1, 2}, []int64{1, 2}); err != nil {
		t.Errorf("false mismatch: %v", err)
	}
}

func TestExperimentNameValidation(t *testing.T) {
	if _, err := RunExperiment("nope", DefaultExpOptions()); err == nil {
		t.Error("unknown experiment accepted")
	}
	out, err := RunExperiment("table1", ExpOptions{Workloads: []string{"_unit_tiny"}})
	if err != nil || out == "" {
		t.Errorf("table1 failed: %v", err)
	}
}
