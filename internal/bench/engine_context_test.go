package bench

import (
	"context"
	"errors"
	"testing"
)

// TestRunAsyncContextIsolated pins the server-mode engine contract: an
// isolated run's failure is delivered through its own handle and never
// latches the engine's fail-fast error, so one cancelled request cannot
// wedge a long-lived pool.
func TestRunAsyncContextIsolated(t *testing.T) {
	e := NewEngine(2)
	b, _ := Get("_unit_tiny")

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	h := e.RunAsyncContext(ctx, b, RunConfig{}, "cancelled")
	if err := h.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run error = %v, want context.Canceled", err)
	}
	if h.Result() != nil {
		t.Error("cancelled run produced a result")
	}

	// The engine must still execute and complete later isolated runs.
	h2 := e.RunAsyncContext(context.Background(), b, RunConfig{}, "ok")
	if err := h2.Wait(); err != nil {
		t.Fatalf("run after cancelled sibling: %v", err)
	}
	if h2.Result() == nil || h2.Result().Cycles == 0 {
		t.Fatal("isolated run returned no metrics")
	}
	if err := e.Wait(); err != nil {
		t.Fatalf("isolated failure latched into the engine: %v", err)
	}
}

// TestRunAsyncFailFastNeverHangsHandles pins the onSkip path: when a
// batch (non-isolated) run fails and fail-fast drops later submissions,
// every dropped handle's Wait must still return instead of hanging.
func TestRunAsyncFailFastNeverHangsHandles(t *testing.T) {
	e := NewEngine(1)
	b, _ := Get("_unit_tiny")

	// MaxCycles 1 exhausts the budget immediately: a deterministic
	// failure that latches the engine error.
	bad := e.RunAsync(b, RunConfig{MaxCycles: 1}, "bad")
	handles := make([]*RunHandle, 4)
	for i := range handles {
		handles[i] = e.RunAsync(b, RunConfig{Seed: int64(i)}, "follow")
	}
	if err := bad.Wait(); err == nil {
		t.Fatal("budget-exhausted run reported success")
	}
	// Every follow-up either ran before the failure surfaced or was
	// skipped; both paths must complete the handle.
	for i, h := range handles {
		if err := h.Wait(); err != nil && !errors.Is(err, errSkipped) {
			t.Errorf("handle %d: unexpected error %v", i, err)
		}
	}
	if err := e.Wait(); err == nil {
		t.Fatal("engine did not latch the batch failure")
	}
}
