package workloads

import (
	"testing"

	"hpmvm/internal/bench"
)

// TestEachWorkloadQuick runs every registered workload once at default
// config (opt level 2, GenMS, no monitoring) and reports basic stats.
func TestEachWorkloadQuick(t *testing.T) {
	for _, name := range bench.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			res := runOne(t, name, bench.RunConfig{})
			t.Logf("%-10s cycles=%11d instr=%10d L1=%9d L2=%8d minor=%2d major=%2d results=%v",
				name, res.Cycles, res.Instret, res.Cache.L1Misses, res.Cache.L2Misses,
				res.MinorGCs, res.MajorGCs, res.Results)
		})
	}
}
