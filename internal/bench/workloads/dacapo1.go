package workloads

import (
	"hpmvm/internal/vm/bytecode"
	"hpmvm/internal/vm/classfile"
)

// DaCapo analogues, part 1: antlr, bloat, fop, hsqldb.

// --- antlr ------------------------------------------------------------------
//
// Grammar-graph shape: nodes with labeled edges; repeated closure
// walks over the graph plus construction of derived sub-graphs.
const (
	antlrNodes    = 12000
	antlrEdges    = 4
	antlrWalks    = 250
	antlrWalkLen  = 500
	antlrRelabels = 40 // nodes relabeled after each walk (string churn)
	antlrSeed     = 210210
)

func init() {
	register("antlr", "grammar graph: labeled-edge closure walks with derived graphs",
		5<<20, "GNode::label", buildAntlr)
}

func buildAntlr(l *Lib) (*classfile.Method, []int64) {
	u := l.U
	gnode := u.DefineClass("GNode", nil)
	nEdges := u.AddField(gnode, "edges", kRef) // ref[antlrEdges]
	nLabel := u.AddField(gnode, "label", kRef) // String
	nID := u.AddField(gnode, "id", kInt)

	main := l.Entry("AntlrMain")
	b := l.B(main)
	b.Local("rand", kRef)
	b.Local("nodes", kRef) // ref[]
	b.Local("i", kInt)
	b.Local("j", kInt)
	b.Local("n", kRef)
	b.Local("cur", kRef)
	b.Local("step", kInt)
	b.Local("check", kInt)

	b.Const(antlrSeed).InvokeStatic(l.NewRand).Store("rand")
	b.Const(antlrNodes).NewArray(u.RefArray).Store("nodes")
	// Create nodes.
	b.Label("mk")
	b.Load("i").Const(antlrNodes).If(bytecode.OpIfGE, "wire")
	b.New(gnode).Store("n")
	b.Load("n").Load("i").PutField(nID)
	b.Load("n").Load("rand").Const(6).InvokeStatic(l.RandStr).PutField(nLabel)
	b.Load("n").Const(antlrEdges).NewArray(u.RefArray).PutField(nEdges)
	b.Load("nodes").Load("i").Load("n").AStore(kRef)
	b.Inc("i", 1)
	b.Goto("mk")
	// Wire random edges.
	b.Label("wire")
	b.Const(0).Store("i")
	b.Label("wi")
	b.Load("i").Const(antlrNodes).If(bytecode.OpIfGE, "walk")
	b.Load("nodes").Load("i").ALoad(kRef).Store("n")
	b.Const(0).Store("j")
	b.Label("wj")
	b.Load("j").Const(antlrEdges).If(bytecode.OpIfGE, "winext")
	b.Load("n").GetField(nEdges).Load("j").
		Load("nodes").Load("rand").InvokeVirtual(l.RandNext).Const(antlrNodes).Rem().ALoad(kRef).
		AStore(kRef)
	b.Inc("j", 1)
	b.Goto("wj")
	b.Label("winext")
	b.Inc("i", 1)
	b.Goto("wi")
	// Closure walks: follow edges, hashing the first char of each
	// label (GNode::label -> String::value path).
	b.Label("walk")
	b.Const(0).Store("i")
	b.Label("wloop")
	b.Load("i").Const(antlrWalks).If(bytecode.OpIfGE, "done")
	b.Load("nodes").Load("rand").InvokeVirtual(l.RandNext).Const(antlrNodes).Rem().ALoad(kRef).Store("cur")
	b.Const(0).Store("step")
	b.Label("sloop")
	b.Load("step").Const(antlrWalkLen).If(bytecode.OpIfGE, "winc")
	b.Load("check").Const(31).Mul().
		Load("cur").GetField(nLabel).GetField(l.StrValue).Const(0).ALoad(kChar).Add().
		Const(0xFFFFFFF).And().Store("check")
	b.Load("cur").GetField(nEdges).
		Load("cur").GetField(nID).Load("step").Add().Const(antlrEdges).Rem().
		ALoad(kRef).Store("cur")
	b.Inc("step", 1)
	b.Goto("sloop")
	b.Label("winc")
	// Derived sub-graph: relabel a batch of nodes (string churn keeps
	// the nursery turning over during the walk phase).
	b.Const(0).Store("j")
	b.Label("relabel")
	b.Load("j").Const(antlrRelabels).If(bytecode.OpIfGE, "wnext")
	b.Load("nodes").Load("rand").InvokeVirtual(l.RandNext).Const(antlrNodes).Rem().ALoad(kRef).Store("n")
	b.Load("n").Load("rand").Const(6).InvokeStatic(l.RandStr).PutField(nLabel)
	b.Inc("j", 1)
	b.Goto("relabel")
	b.Label("wnext")
	b.Inc("i", 1)
	b.Goto("wloop")
	b.Label("done")
	b.Load("check").Result()
	b.Return()
	Done(b)

	return main, nil
}

// --- bloat ------------------------------------------------------------------
//
// Bytecode-optimizer shape: instruction chains (def-use linked lists)
// that optimization passes rewrite: dead instructions are unlinked,
// peephole pairs are fused into fresh instructions. Chain walks read
// insn.next.op — the Insn::next access path.
const (
	bloatMethods = 350
	bloatInsns   = 120
	bloatPasses  = 10
	bloatSeed    = 600700
)

func init() {
	register("bloat", "bytecode optimizer: def-use chain rewriting passes",
		6<<20, "Insn::next", buildBloat)
}

func buildBloat(l *Lib) (*classfile.Method, []int64) {
	u := l.U
	insn := u.DefineClass("Insn", nil)
	iOp := u.AddField(insn, "op", kInt)
	iNext := u.AddField(insn, "next", kRef)

	main := l.Entry("BloatMain")
	b := l.B(main)
	b.Local("rand", kRef)
	b.Local("methods", kRef) // ref[] of chain heads
	b.Local("m", kInt)
	b.Local("i", kInt)
	b.Local("p", kInt)
	b.Local("head", kRef)
	b.Local("cur", kRef)
	b.Local("nx", kRef)
	b.Local("fresh", kRef)
	b.Local("check", kInt)

	b.Const(bloatSeed).InvokeStatic(l.NewRand).Store("rand")
	b.Const(bloatMethods).NewArray(u.RefArray).Store("methods")
	// Build instruction chains.
	b.Label("mkm")
	b.Load("m").Const(bloatMethods).If(bytecode.OpIfGE, "opt")
	b.Null().Store("head")
	b.Const(0).Store("i")
	b.Label("mki")
	b.Load("i").Const(bloatInsns).If(bytecode.OpIfGE, "mstore")
	b.New(insn).Store("cur")
	b.Load("cur").Load("rand").InvokeVirtual(l.RandNext).Const(64).Rem().PutField(iOp)
	b.Load("cur").Load("head").PutField(iNext)
	b.Load("cur").Store("head")
	b.Inc("i", 1)
	b.Goto("mki")
	b.Label("mstore")
	b.Load("methods").Load("m").Load("head").AStore(kRef)
	b.Inc("m", 1)
	b.Goto("mkm")
	// Optimization passes. Each pass also rebuilds a batch of method
	// chains from scratch (real bytecode optimizers reconstruct IR per
	// method), which keeps fresh instruction chains flowing into the
	// mature space.
	b.Label("opt")
	b.Const(0).Store("p")
	b.Label("ploop")
	b.Load("p").Const(bloatPasses).If(bytecode.OpIfGE, "emit")
	b.Const(0).Store("m")
	b.Label("rebuild")
	b.Load("m").Const(40).If(bytecode.OpIfGE, "optm")
	b.Null().Store("head")
	b.Const(0).Store("i")
	b.Label("rb2")
	b.Load("i").Const(bloatInsns).If(bytecode.OpIfGE, "rbstore")
	b.New(insn).Store("cur")
	b.Load("cur").Load("rand").InvokeVirtual(l.RandNext).Const(64).Rem().PutField(iOp)
	b.Load("cur").Load("head").PutField(iNext)
	b.Load("cur").Store("head")
	b.Inc("i", 1)
	b.Goto("rb2")
	b.Label("rbstore")
	b.Load("methods").Load("rand").InvokeVirtual(l.RandNext).Const(bloatMethods).Rem().Load("head").AStore(kRef)
	b.Inc("m", 1)
	b.Goto("rebuild")
	b.Label("optm")
	b.Const(0).Store("m")
	b.Label("mloop")
	b.Load("m").Const(bloatMethods).If(bytecode.OpIfGE, "pnext")
	b.Load("methods").Load("m").ALoad(kRef).Store("cur")
	b.Label("iloop")
	b.Load("cur").IfNull("mnext")
	b.Load("cur").GetField(iNext).IfNull("mnext")
	// Peephole: op==0 followed by anything -> fuse into a fresh insn
	// that skips the pair; other dead ops (op==1) are unlinked.
	b.Load("cur").GetField(iNext).GetField(iOp).Const(0).If(bytecode.OpIfNE, "trydead")
	b.New(insn).Store("fresh")
	b.Load("fresh").Load("cur").GetField(iOp).Const(2).Add().Const(64).Rem().PutField(iOp)
	b.Load("fresh").Load("cur").GetField(iNext).GetField(iNext).PutField(iNext)
	b.Load("cur").Load("fresh").PutField(iNext)
	b.Inc("check", 1)
	b.Goto("step")
	b.Label("trydead")
	b.Load("cur").GetField(iNext).GetField(iOp).Const(1).If(bytecode.OpIfNE, "step")
	b.Load("cur").Load("cur").GetField(iNext).GetField(iNext).PutField(iNext)
	b.Inc("check", 1)
	b.Label("step")
	b.Load("cur").GetField(iNext).Store("cur")
	b.Goto("iloop")
	b.Label("mnext")
	b.Inc("m", 1)
	b.Goto("mloop")
	b.Label("pnext")
	b.Inc("p", 1)
	b.Goto("ploop")
	// Emit: checksum the op stream.
	b.Label("emit")
	b.Const(0).Store("m")
	b.Label("em")
	b.Load("m").Const(bloatMethods).If(bytecode.OpIfGE, "done")
	b.Load("methods").Load("m").ALoad(kRef).Store("cur")
	b.Label("ew")
	b.Load("cur").IfNull("enext")
	b.Load("check").Const(3).Mul().Load("cur").GetField(iOp).Add().Const(0xFFFFFFF).And().Store("check")
	b.Load("cur").GetField(iNext).Store("cur")
	b.Goto("ew")
	b.Label("enext")
	b.Inc("m", 1)
	b.Goto("em")
	b.Label("done")
	b.Load("check").Result()
	b.Return()
	Done(b)

	return main, nil
}

// --- fop --------------------------------------------------------------------
//
// Formatting-object shape: build a layout tree from "markup", then run
// recursive width/height layout passes. Small code and heap (the paper
// shows fop with the smallest maps in Table 2).
const (
	fopLeaves = 4000
	fopFanout = 4
	fopPasses = 12
	fopSeed   = 45054
)

func init() {
	register("fop", "XSL-FO layout: recursive box-tree layout passes",
		4<<20, "", buildFop)
}

func buildFop(l *Lib) (*classfile.Method, []int64) {
	u := l.U
	box := u.DefineClass("Box", nil)
	bKids := u.AddField(box, "kids", kRef) // ref[] or null for leaf
	bW := u.AddField(box, "w", kInt)
	bH := u.AddField(box, "h", kInt)

	// build(rand, depth) -> Box (recursive).
	build := u.AddMethod(box, "build", false, []classfile.Kind{kRef, kInt}, kRef)
	b := l.B(build)
	b.BindArg(0, "rand").BindArg(1, "depth")
	b.Local("bx", kRef)
	b.Local("i", kInt)
	b.New(box).Store("bx")
	b.Load("depth").Const(0).If(bytecode.OpIfGT, "inner")
	b.Load("bx").Load("rand").InvokeVirtual(l.RandNext).Const(40).Rem().Const(1).Add().PutField(bW)
	b.Load("bx").Const(12).PutField(bH)
	b.Load("bx").ReturnVal()
	b.Label("inner")
	b.Load("bx").Const(fopFanout).NewArray(u.RefArray).PutField(bKids)
	b.Label("kid")
	b.Load("i").Const(fopFanout).If(bytecode.OpIfGE, "fin")
	b.Load("bx").GetField(bKids).Load("i").
		Load("rand").Load("depth").Const(1).Sub().InvokeStatic(build).AStore(kRef)
	b.Inc("i", 1)
	b.Goto("kid")
	b.Label("fin")
	b.Load("bx").ReturnVal()
	Done(b)

	// layout(bx) -> width (recursive sum; also sets h as max child h + 1).
	layout := u.AddMethod(box, "layout", false, []classfile.Kind{kRef}, kInt)
	b = l.B(layout)
	b.BindArg(0, "bx")
	b.Local("i", kInt)
	b.Local("wsum", kInt)
	b.Local("hmax", kInt)
	b.Local("k", kRef)
	b.Load("bx").GetField(bKids).IfNonNull("rec")
	b.Load("bx").GetField(bW).ReturnVal()
	b.Label("rec")
	b.Label("loop")
	b.Load("i").Load("bx").GetField(bKids).ArrayLen().If(bytecode.OpIfGE, "setw")
	b.Load("bx").GetField(bKids).Load("i").ALoad(kRef).Store("k")
	b.Load("wsum").Load("k").InvokeStatic(layout).Add().Store("wsum")
	b.Load("k").GetField(bH).Load("hmax").If(bytecode.OpIfLE, "skiph")
	b.Load("k").GetField(bH).Store("hmax")
	b.Label("skiph")
	b.Inc("i", 1)
	b.Goto("loop")
	b.Label("setw")
	b.Load("bx").Load("wsum").PutField(bW)
	b.Load("bx").Load("hmax").Const(1).Add().PutField(bH)
	b.Load("wsum").ReturnVal()
	Done(b)

	main := l.Entry("FopMain")
	b = l.B(main)
	b.Local("rand", kRef)
	b.Local("root", kRef)
	b.Local("p", kInt)
	b.Local("check", kInt)
	b.Local("depth", kInt)
	b.Const(fopSeed).InvokeStatic(l.NewRand).Store("rand")
	// depth so that fanout^depth ~ fopLeaves
	b.Const(6).Store("depth")
	b.Load("rand").Load("depth").InvokeStatic(build).Store("root")
	b.Label("ploop")
	b.Load("p").Const(fopPasses).If(bytecode.OpIfGE, "done")
	b.Load("check").Load("root").InvokeStatic(layout).Add().Const(0xFFFFFFF).And().Store("check")
	// Mutate a random leaf path: rebuild one subtree (churn).
	b.Load("root").GetField(bKids).
		Load("rand").InvokeVirtual(l.RandNext).Const(fopFanout).Rem().
		Load("rand").Const(4).InvokeStatic(build).AStore(kRef)
	b.Inc("p", 1)
	b.Goto("ploop")
	b.Label("done")
	b.Load("check").Result()
	b.Return()
	Done(b)

	return main, nil
}

// --- hsqldb -----------------------------------------------------------------
//
// Embedded-database shape: a table of rows plus a chained hash index
// keyed by String; transactions insert, look up and delete rows. Index
// probes chase Entry -> String -> char[] — a strong co-allocation
// candidate population (the paper counts many co-allocated objects for
// hsqldb).
const (
	hsqlBuckets = 4096
	hsqlRows    = 9000
	hsqlTxns    = 30000
	hsqlKeyLen  = 10
	hsqlSeed    = 118811
)

func init() {
	register("hsqldb", "embedded DB: chained hash index over String keys",
		8<<20, "Entry::key", buildHsqldb)
}

func buildHsqldb(l *Lib) (*classfile.Method, []int64) {
	u := l.U
	entry := u.DefineClass("Entry", nil)
	eKey := u.AddField(entry, "key", kRef)
	eVal := u.AddField(entry, "val", kInt)
	eNext := u.AddField(entry, "next", kRef)

	// bucket(s) -> index: strHash(s) & (buckets-1)
	bucket := u.AddMethod(entry, "bucket", false, []classfile.Kind{kRef}, kInt)
	b := l.B(bucket)
	b.BindArg(0, "s")
	b.Load("s").InvokeStatic(l.StrHash).Const(hsqlBuckets - 1).And().ReturnVal()
	Done(b)

	// insert(idx, s, v): prepend entry to its chain.
	insert := u.AddMethod(entry, "insert", false, []classfile.Kind{kRef, kRef, kInt}, kVoid)
	b = l.B(insert)
	b.BindArg(0, "idx").BindArg(1, "s").BindArg(2, "v")
	b.Local("e", kRef)
	b.Local("h", kInt)
	b.New(entry).Store("e")
	b.Load("e").Load("s").PutField(eKey)
	b.Load("e").Load("v").PutField(eVal)
	b.Load("s").InvokeStatic(bucket).Store("h")
	b.Load("e").Load("idx").Load("h").ALoad(kRef).PutField(eNext)
	b.Load("idx").Load("h").Load("e").AStore(kRef)
	b.Return()
	Done(b)

	// lookup(idx, s) -> val or -1: walk the chain comparing keys.
	lookup := u.AddMethod(entry, "lookup", false, []classfile.Kind{kRef, kRef}, kInt)
	b = l.B(lookup)
	b.BindArg(0, "idx").BindArg(1, "s")
	b.Local("e", kRef)
	b.Load("idx").Load("s").InvokeStatic(bucket).ALoad(kRef).Store("e")
	b.Label("walk")
	b.Load("e").IfNull("miss")
	b.Load("s").Load("e").GetField(eKey).InvokeStatic(l.StrCmp).Const(0).If(bytecode.OpIfNE, "next")
	b.Load("e").GetField(eVal).ReturnVal()
	b.Label("next")
	b.Load("e").GetField(eNext).Store("e")
	b.Goto("walk")
	b.Label("miss")
	b.Const(-1).ReturnVal()
	Done(b)

	// remove(idx, s) -> 1 if removed else 0 (unlinks first match).
	remove := u.AddMethod(entry, "remove", false, []classfile.Kind{kRef, kRef}, kInt)
	b = l.B(remove)
	b.BindArg(0, "idx").BindArg(1, "s")
	b.Local("e", kRef)
	b.Local("prev", kRef)
	b.Local("h", kInt)
	b.Load("s").InvokeStatic(bucket).Store("h")
	b.Load("idx").Load("h").ALoad(kRef).Store("e")
	b.Null().Store("prev")
	b.Label("walk")
	b.Load("e").IfNull("miss")
	b.Load("s").Load("e").GetField(eKey).InvokeStatic(l.StrCmp).Const(0).If(bytecode.OpIfNE, "next")
	b.Load("prev").IfNull("head")
	b.Load("prev").Load("e").GetField(eNext).PutField(eNext)
	b.Const(1).ReturnVal()
	b.Label("head")
	b.Load("idx").Load("h").Load("e").GetField(eNext).AStore(kRef)
	b.Const(1).ReturnVal()
	b.Label("next")
	b.Load("e").Store("prev")
	b.Load("e").GetField(eNext).Store("e")
	b.Goto("walk")
	b.Label("miss")
	b.Const(0).ReturnVal()
	Done(b)

	main := l.Entry("HsqldbMain")
	b = l.B(main)
	b.Local("rand", kRef)
	b.Local("replay", kRef)
	b.Local("idx", kRef)
	b.Local("i", kInt)
	b.Local("check", kInt)
	b.Local("s", kRef)
	b.Const(hsqlSeed).InvokeStatic(l.NewRand).Store("rand")
	b.Const(hsqlBuckets).NewArray(u.RefArray).Store("idx")
	// Load phase: insert hsqlRows keyed rows.
	b.Label("load")
	b.Load("i").Const(hsqlRows).If(bytecode.OpIfGE, "txs")
	b.Load("idx").Load("rand").Const(hsqlKeyLen).InvokeStatic(l.RandStr).Load("i").InvokeStatic(insert)
	b.Inc("i", 1)
	b.Goto("load")
	// Transaction phase: a replay Rand regenerates known keys so
	// lookups/deletes hit; odd transactions insert fresh keys.
	b.Label("txs")
	b.Const(hsqlSeed).InvokeStatic(l.NewRand).Store("replay")
	b.Const(0).Store("i")
	b.Label("tx")
	b.Load("i").Const(hsqlTxns).If(bytecode.OpIfGE, "done")
	b.Load("i").Const(3).Rem().Const(0).If(bytecode.OpIfNE, "fresh")
	// lookup a known key
	b.Load("replay").Const(hsqlKeyLen).InvokeStatic(l.RandStr).Store("s")
	b.Load("check").Load("idx").Load("s").InvokeStatic(lookup).Add().Const(0xFFFFFFF).And().Store("check")
	b.Goto("txnext")
	b.Label("fresh")
	b.Load("i").Const(3).Rem().Const(1).If(bytecode.OpIfNE, "del")
	b.Load("idx").Load("rand").Const(hsqlKeyLen).InvokeStatic(l.RandStr).Load("i").InvokeStatic(insert)
	b.Goto("txnext")
	b.Label("del")
	b.Load("rand").Const(hsqlKeyLen).InvokeStatic(l.RandStr).Store("s")
	b.Load("check").Load("idx").Load("s").InvokeStatic(remove).Add().Store("check")
	b.Label("txnext")
	b.Inc("i", 1)
	b.Goto("tx")
	b.Label("done")
	b.Load("check").Result()
	b.Return()
	Done(b)

	return main, nil
}
