package workloads

import (
	"testing"

	"hpmvm/internal/bench"
	"hpmvm/internal/core"
)

// runOne executes a registered workload under cfg and returns the
// result (failing the test on any error, including an Expected
// mismatch inside the runner).
func runOne(t *testing.T, name string, cfg bench.RunConfig) *bench.Result {
	t.Helper()
	b, ok := bench.Get(name)
	if !ok {
		t.Fatalf("workload %q not registered", name)
	}
	res, _, err := bench.Run(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestWorkloadsCorrectAcrossConfigs runs every registered workload
// under four configurations (baseline compiler, optimizing compiler,
// monitoring, co-allocation) and checks that the program's result log
// is identical everywhere — the VM's end-to-end differential test.
func TestWorkloadsCorrectAcrossConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload sweep in -short mode")
	}
	for _, name := range bench.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			base := runOne(t, name, bench.RunConfig{OptLevel: 1})
			ref := base.Results
			for label, cfg := range map[string]bench.RunConfig{
				"opt2":    {OptLevel: 2},
				"monitor": {Monitoring: true, Interval: 10_000},
				"coalloc": {Coalloc: true, Interval: 10_000},
				"gencopy": {Collector: core.GenCopy},
			} {
				res := runOne(t, name, cfg)
				if len(res.Results) != len(ref) {
					t.Fatalf("%s: result count %d vs %d", label, len(res.Results), len(ref))
				}
				for i := range ref {
					if res.Results[i] != ref[i] {
						t.Fatalf("%s: result[%d] = %d, want %d", label, i, res.Results[i], ref[i])
					}
				}
				if res.MinorGCs == 0 {
					t.Logf("%s: note: no minor GC occurred", label)
				}
			}
		})
	}
}

func TestDBRunsAndChecks(t *testing.T) {
	res := runOne(t, "db", bench.RunConfig{})
	t.Logf("db: cycles=%d instret=%d L1miss=%d minor=%d major=%d",
		res.Cycles, res.Instret, res.Cache.L1Misses, res.MinorGCs, res.MajorGCs)
	if res.MinorGCs == 0 {
		t.Error("db: expected minor GCs")
	}
}

func TestDBCoallocationReducesMisses(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	base := runOne(t, "db", bench.RunConfig{})
	co := runOne(t, "db", bench.RunConfig{Coalloc: true})
	t.Logf("db baseline: cycles=%d L1=%d", base.Cycles, base.Cache.L1Misses)
	t.Logf("db coalloc:  cycles=%d L1=%d pairs=%d", co.Cycles, co.Cache.L1Misses, co.CoallocPairs)
	if co.CoallocPairs == 0 {
		t.Fatal("expected co-allocated pairs")
	}
	if co.Cache.L1Misses >= base.Cache.L1Misses {
		t.Errorf("co-allocation did not reduce L1 misses: %d vs %d", co.Cache.L1Misses, base.Cache.L1Misses)
	}
}

// TestFullSystemDeterminism runs db with monitoring and co-allocation
// twice under the same seed: every counter must match bit for bit —
// the property all experiment deltas in EXPERIMENTS.md rest on.
func TestFullSystemDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	cfg := bench.RunConfig{Coalloc: true, Seed: 99}
	a := runOne(t, "db", cfg)
	b := runOne(t, "db", cfg)
	if a.Cycles != b.Cycles {
		t.Errorf("cycles differ: %d vs %d", a.Cycles, b.Cycles)
	}
	if a.Cache.L1Misses != b.Cache.L1Misses || a.Cache.TLBMisses != b.Cache.TLBMisses {
		t.Errorf("cache stats differ: %+v vs %+v", a.Cache, b.Cache)
	}
	if a.CoallocPairs != b.CoallocPairs {
		t.Errorf("pairs differ: %d vs %d", a.CoallocPairs, b.CoallocPairs)
	}
	if a.MonitorStats.SamplesDecoded != b.MonitorStats.SamplesDecoded {
		t.Errorf("samples differ: %d vs %d",
			a.MonitorStats.SamplesDecoded, b.MonitorStats.SamplesDecoded)
	}
}

// TestRankedCandidatesOnDB checks the §5.4 ranked-candidate extension
// end to end: results stay correct and at least as many pairs are
// placed as with the single-hottest-field policy.
func TestRankedCandidatesOnDB(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	plain := runOne(t, "db", bench.RunConfig{Coalloc: true, Seed: 1})
	ranked := runOne(t, "db", bench.RunConfig{Coalloc: true, Ranked: true, Seed: 1})
	t.Logf("plain pairs=%d cycles=%d; ranked pairs=%d cycles=%d",
		plain.CoallocPairs, plain.Cycles, ranked.CoallocPairs, ranked.Cycles)
	if ranked.CoallocPairs < plain.CoallocPairs {
		t.Errorf("ranked candidates placed fewer pairs: %d vs %d",
			ranked.CoallocPairs, plain.CoallocPairs)
	}
}
