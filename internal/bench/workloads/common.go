// Package workloads defines the 16 synthetic benchmark programs of
// Table 1 (SPECjvm98, DaCapo and pseudojbb analogues). Each program is
// written in the VM's bytecode via builders and reproduces the heap
// shape and access signature of the benchmark it is named after (see
// DESIGN.md §4); all programs are deterministic and self-checking.
//
// The shared class library here (String, Vector, Rand) is written
// javac-style: field access paths like s.value[i] are re-evaluated
// inside loops rather than hand-hoisted, exactly as javac emits them —
// this is what gives the optimizing compiler's access-path analysis
// its (S, f) pairs (§5.2).
package workloads

import (
	"fmt"

	"hpmvm/internal/bench"
	"hpmvm/internal/vm/bytecode"
	"hpmvm/internal/vm/classfile"
)

// LCG constants (Knuth MMIX) used by the in-VM Rand class.
const (
	lcgMul = -3372029247567499371 // 6364136223846793005 as int64
	lcgAdd = 1442695040888963407
)

// Lib is the shared class library built into each workload's universe.
type Lib struct {
	U *classfile.Universe

	// String holds a char[] in its value field — the paper's Figure 7
	// tracks misses on String::value.
	String   *classfile.Class
	StrValue *classfile.Field

	// Rand is a deterministic LCG.
	Rand     *classfile.Class
	RandSeed *classfile.Field
	RandNext *classfile.Method // virtual (this) -> int in [0, 2^30)

	// Vector is a growable array of references.
	Vector  *classfile.Class
	VecData *classfile.Field
	VecSize *classfile.Field
	VecNew  *classfile.Method // static (cap) -> Vector
	VecAdd  *classfile.Method // virtual (this, e) -> void
	VecGet  *classfile.Method // virtual (this, i) -> ref
	VecSet  *classfile.Method // virtual (this, i, e) -> void
	VecLen  *classfile.Method // virtual (this) -> int

	StrCmp  *classfile.Method // static (a, b) -> int (lexicographic)
	StrHash *classfile.Method // static (s) -> int
	RandStr *classfile.Method // static (rand, len) -> String
	NewRand *classfile.Method // static (seed) -> Rand
}

const (
	kInt  = classfile.KindInt
	kRef  = classfile.KindRef
	kChar = classfile.KindChar
	kByte = classfile.KindByte
	kVoid = classfile.KindVoid
)

// NewLib builds the shared library into a fresh universe.
func NewLib() *Lib {
	u := classfile.NewUniverse()
	l := &Lib{U: u}

	l.String = u.DefineClass("String", nil)
	l.StrValue = u.AddField(l.String, "value", kRef)

	l.Rand = u.DefineClass("Rand", nil)
	l.RandSeed = u.AddField(l.Rand, "seed", kInt)
	l.RandNext = u.AddMethod(l.Rand, "next", true, []classfile.Kind{kRef}, kInt)

	l.Vector = u.DefineClass("Vector", nil)
	l.VecData = u.AddField(l.Vector, "data", kRef)
	l.VecSize = u.AddField(l.Vector, "size", kInt)
	l.VecNew = u.AddMethod(l.Vector, "vecNew", false, []classfile.Kind{kInt}, kRef)
	l.VecAdd = u.AddMethod(l.Vector, "add", true, []classfile.Kind{kRef, kRef}, kVoid)
	l.VecGet = u.AddMethod(l.Vector, "get", true, []classfile.Kind{kRef, kInt}, kRef)
	l.VecSet = u.AddMethod(l.Vector, "set", true, []classfile.Kind{kRef, kInt, kRef}, kVoid)
	l.VecLen = u.AddMethod(l.Vector, "size", true, []classfile.Kind{kRef}, kInt)

	lib := u.DefineClass("Lib", nil)
	l.StrCmp = u.AddMethod(lib, "strCmp", false, []classfile.Kind{kRef, kRef}, kInt)
	l.StrHash = u.AddMethod(lib, "strHash", false, []classfile.Kind{kRef}, kInt)
	l.RandStr = u.AddMethod(lib, "randStr", false, []classfile.Kind{kRef, kInt}, kRef)
	l.NewRand = u.AddMethod(lib, "newRand", false, []classfile.Kind{kInt}, kRef)

	l.buildRand()
	l.buildVector()
	l.buildStrings()
	return l
}

// B starts a builder for a method (panicking helpers keep workload
// definitions terse; workloads are trusted in-process code).
func (l *Lib) B(m *classfile.Method) *bytecode.Builder {
	return bytecode.NewBuilder(l.U, m)
}

// Done finalizes a builder.
func Done(b *bytecode.Builder) {
	b.MustBuild()
}

func (l *Lib) buildRand() {
	// Rand.next: seed = seed*M + A; return (seed >>> 33) & 0x3FFFFFFF.
	b := l.B(l.RandNext)
	b.BindArg(0, "this")
	b.Load("this").Dup().GetField(l.RandSeed).
		Const(lcgMul).Mul().Const(lcgAdd).Add().
		PutField(l.RandSeed)
	b.Load("this").GetField(l.RandSeed).Const(33).Shr().Const(0x3FFFFFFF).And().ReturnVal()
	Done(b)

	// Lib.newRand(seed): r = new Rand; r.seed = seed; return r.
	b = l.B(l.NewRand)
	b.BindArg(0, "seed")
	b.Local("r", kRef)
	b.New(l.Rand).Store("r")
	b.Load("r").Load("seed").PutField(l.RandSeed)
	b.Load("r").ReturnVal()
	Done(b)
}

func (l *Lib) buildVector() {
	u := l.U

	// vecNew(cap): v = new Vector; v.data = new ref[max(cap,4)]; return v.
	b := l.B(l.VecNew)
	b.BindArg(0, "cap")
	b.Local("v", kRef)
	b.Load("cap").Const(4).If(bytecode.OpIfGE, "capok")
	b.Const(4).Store("cap")
	b.Label("capok")
	b.New(l.Vector).Store("v")
	b.Load("v").Load("cap").NewArray(u.RefArray).PutField(l.VecData)
	b.Load("v").ReturnVal()
	Done(b)

	// add(this, e): grow if needed, then data[size++] = e.
	b = l.B(l.VecAdd)
	b.BindArg(0, "this").BindArg(1, "e")
	b.Local("nd", kRef)
	b.Local("i", kInt)
	b.Load("this").GetField(l.VecSize).Load("this").GetField(l.VecData).ArrayLen().If(bytecode.OpIfLT, "store")
	// grow: nd = new ref[2*len]; copy; data = nd
	b.Load("this").GetField(l.VecData).ArrayLen().Const(2).Mul().NewArray(u.RefArray).Store("nd")
	b.Const(0).Store("i")
	b.Label("copy")
	b.Load("i").Load("this").GetField(l.VecSize).If(bytecode.OpIfGE, "grown")
	b.Load("nd").Load("i").Load("this").GetField(l.VecData).Load("i").ALoad(kRef).AStore(kRef)
	b.Inc("i", 1)
	b.Goto("copy")
	b.Label("grown")
	b.Load("this").Load("nd").PutField(l.VecData)
	b.Label("store")
	b.Load("this").GetField(l.VecData).Load("this").GetField(l.VecSize).Load("e").AStore(kRef)
	b.Load("this").Load("this").GetField(l.VecSize).Const(1).Add().PutField(l.VecSize)
	b.Return()
	Done(b)

	// get(this, i): return data[i].
	b = l.B(l.VecGet)
	b.BindArg(0, "this").BindArg(1, "i")
	b.Load("this").GetField(l.VecData).Load("i").ALoad(kRef).ReturnVal()
	Done(b)

	// set(this, i, e): data[i] = e.
	b = l.B(l.VecSet)
	b.BindArg(0, "this").BindArg(1, "i").BindArg(2, "e")
	b.Load("this").GetField(l.VecData).Load("i").Load("e").AStore(kRef)
	b.Return()
	Done(b)

	// size(this).
	b = l.B(l.VecLen)
	b.BindArg(0, "this")
	b.Load("this").GetField(l.VecSize).ReturnVal()
	Done(b)
}

func (l *Lib) buildStrings() {
	// strCmp(a, b): lexicographic comparison, javac-style re-loading
	// of a.value/b.value in the loop body (the paper's hot access
	// path: misses on the char data are charged to String::value).
	b := l.B(l.StrCmp)
	b.BindArg(0, "a").BindArg(1, "b")
	b.Local("la", kInt)
	b.Local("lb", kInt)
	b.Local("n", kInt)
	b.Local("i", kInt)
	b.Local("ca", kInt)
	b.Local("cb", kInt)
	b.Load("a").GetField(l.StrValue).ArrayLen().Store("la")
	b.Load("b").GetField(l.StrValue).ArrayLen().Store("lb")
	b.Load("la").Store("n")
	b.Load("la").Load("lb").If(bytecode.OpIfLE, "loop")
	b.Load("lb").Store("n")
	b.Label("loop")
	b.Load("i").Load("n").If(bytecode.OpIfGE, "tail")
	b.Load("a").GetField(l.StrValue).Load("i").ALoad(kChar).Store("ca")
	b.Load("b").GetField(l.StrValue).Load("i").ALoad(kChar).Store("cb")
	b.Load("ca").Load("cb").If(bytecode.OpIfNE, "diff")
	b.Inc("i", 1)
	b.Goto("loop")
	b.Label("diff")
	b.Load("ca").Load("cb").Sub().ReturnVal()
	b.Label("tail")
	b.Load("la").Load("lb").Sub().ReturnVal()
	Done(b)

	// strHash(s): h = h*31 + s.value[i].
	b = l.B(l.StrHash)
	b.BindArg(0, "s")
	b.Local("h", kInt)
	b.Local("i", kInt)
	b.Label("loop")
	b.Load("i").Load("s").GetField(l.StrValue).ArrayLen().If(bytecode.OpIfGE, "done")
	b.Load("h").Const(31).Mul().Load("s").GetField(l.StrValue).Load("i").ALoad(kChar).Add().Store("h")
	b.Inc("i", 1)
	b.Goto("loop")
	b.Label("done")
	b.Load("h").ReturnVal()
	Done(b)

	// randStr(rand, len): fresh char[] + String pair. The allocation
	// order (char[] immediately before its String) mirrors Java's
	// "new String(...)" and makes the pair a nursery neighbor — the
	// mature-space free list then scatters them unless co-allocation
	// intervenes (§5.1).
	b = l.B(l.RandStr)
	b.BindArg(0, "rand").BindArg(1, "len")
	b.Local("arr", kRef)
	b.Local("s", kRef)
	b.Local("i", kInt)
	b.Load("len").NewArray(l.U.CharArray).Store("arr")
	b.Label("fill")
	b.Load("i").Load("len").If(bytecode.OpIfGE, "mk")
	b.Load("arr").Load("i").
		Load("rand").InvokeVirtual(l.RandNext).Const(26).Rem().Const('a').Add().
		AStore(kChar)
	b.Inc("i", 1)
	b.Goto("fill")
	b.Label("mk")
	b.New(l.String).Store("s")
	b.Load("s").Load("arr").PutField(l.StrValue)
	b.Load("s").ReturnVal()
	Done(b)
}

// Entry declares the workload's entry method on a fresh class.
func (l *Lib) Entry(name string) *classfile.Method {
	cl := l.U.DefineClass(name, nil)
	return l.U.AddMethod(cl, "main", false, nil, kVoid)
}

// register wraps bench.Register with the common finalization: layout
// the universe and sanity-check the entry method.
func register(name, desc string, minHeap uint64, hotField string, build func(l *Lib) (*classfile.Method, []int64)) {
	bench.Register(name, func() *bench.Program {
		l := NewLib()
		entry, expected := build(l)
		l.U.Layout()
		return &bench.Program{
			Name:         name,
			Description:  desc,
			U:            l.U,
			Entry:        entry,
			MinHeap:      minHeap,
			Expected:     expected,
			HotFieldName: hotField,
		}
	})
}

// mustNoErr is a tiny helper for builders that return errors.
func mustNoErr(err error) {
	if err != nil {
		panic(fmt.Sprintf("workloads: %v", err))
	}
}
