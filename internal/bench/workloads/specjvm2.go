package workloads

import (
	"hpmvm/internal/vm/bytecode"
	"hpmvm/internal/vm/classfile"
)

// Remaining SPECjvm98 analogues: jess, mtrt, jack.

// --- jess -------------------------------------------------------------------
//
// Rule-engine shape: a working memory of fact objects in per-slot
// linked lists; repeated match passes compare fact slots against rule
// patterns (String compares) and allocate short-lived activation
// tokens.
const (
	jessFacts  = 2000
	jessRules  = 32
	jessPasses = 12
	jessStrLen = 8
	jessSeed   = 515151
)

func init() {
	register("jess", "rule engine: fact matching with activation churn",
		5<<20, "Fact::slot0", buildJess)
}

func buildJess(l *Lib) (*classfile.Method, []int64) {
	u := l.U
	fact := u.DefineClass("Fact", nil)
	fSlot0 := u.AddField(fact, "slot0", kRef)
	fSlot1 := u.AddField(fact, "slot1", kRef)
	fNext := u.AddField(fact, "next", kRef)
	token := u.DefineClass("Token", nil)
	tFact := u.AddField(token, "fact", kRef)
	tRule := u.AddField(token, "rule", kInt)

	main := l.Entry("JessMain")
	b := l.B(main)
	b.Local("rand", kRef)
	b.Local("wm", kRef)    // head of fact list
	b.Local("rules", kRef) // Vector of rule pattern Strings
	b.Local("agenda", kRef)
	b.Local("i", kInt)
	b.Local("p", kInt)
	b.Local("r", kInt)
	b.Local("f", kRef)
	b.Local("t", kRef)
	b.Local("check", kInt)

	b.Const(jessSeed).InvokeStatic(l.NewRand).Store("rand")
	// Working memory: linked list of facts with two string slots.
	b.Label("mk")
	b.Load("i").Const(jessFacts).If(bytecode.OpIfGE, "mkrules")
	b.New(fact).Store("f")
	b.Load("f").Load("rand").Const(jessStrLen).InvokeStatic(l.RandStr).PutField(fSlot0)
	b.Load("f").Load("rand").Const(jessStrLen).InvokeStatic(l.RandStr).PutField(fSlot1)
	b.Load("f").Load("wm").PutField(fNext)
	b.Load("f").Store("wm")
	b.Inc("i", 1)
	b.Goto("mk")
	b.Label("mkrules")
	b.Const(jessRules).InvokeStatic(l.VecNew).Store("rules")
	b.Const(0).Store("i")
	b.Label("mkr2")
	b.Load("i").Const(jessRules).If(bytecode.OpIfGE, "match")
	b.Load("rules").Load("rand").Const(jessStrLen).InvokeStatic(l.RandStr).InvokeVirtual(l.VecAdd)
	b.Inc("i", 1)
	b.Goto("mkr2")
	// Match passes: for each rule, walk the fact list; prefix-compare
	// rule pattern vs slot0; matches allocate a Token onto a fresh
	// agenda vector (per pass), and slot1 rotates into slot0 for a
	// fraction of facts so the working memory keeps changing.
	b.Label("match")
	b.Const(0).Store("p")
	b.Label("ploop")
	b.Load("p").Const(jessPasses).If(bytecode.OpIfGE, "done")
	b.Const(16).InvokeStatic(l.VecNew).Store("agenda")
	b.Const(0).Store("r")
	b.Label("rloop")
	b.Load("r").Const(jessRules).If(bytecode.OpIfGE, "mutate")
	b.Load("wm").Store("f")
	b.Label("floop")
	b.Load("f").IfNull("rnext")
	// match if first char of pattern equals first char of slot0
	b.Load("rules").Load("r").InvokeVirtual(l.VecGet).GetField(l.StrValue).Const(0).ALoad(kChar).
		Load("f").GetField(fSlot0).GetField(l.StrValue).Const(0).ALoad(kChar).
		If(bytecode.OpIfNE, "fnext")
	b.New(token).Store("t")
	b.Load("t").Load("f").PutField(tFact)
	b.Load("t").Load("r").PutField(tRule)
	b.Load("agenda").Load("t").InvokeVirtual(l.VecAdd)
	b.Label("fnext")
	b.Load("f").GetField(fNext).Store("f")
	b.Goto("floop")
	b.Label("rnext")
	b.Inc("r", 1)
	b.Goto("rloop")
	// Fire: checksum agenda size; rotate slots of every 7th fact.
	b.Label("mutate")
	b.Load("check").Load("agenda").InvokeVirtual(l.VecLen).Add().Store("check")
	b.Load("wm").Store("f")
	b.Const(0).Store("i")
	b.Label("mloop")
	b.Load("f").IfNull("pnext")
	b.Load("i").Const(7).Rem().Const(0).If(bytecode.OpIfNE, "mnext")
	b.Load("f").Load("f").GetField(fSlot1).PutField(fSlot0)
	b.Label("mnext")
	b.Load("f").GetField(fNext).Store("f")
	b.Inc("i", 1)
	b.Goto("mloop")
	b.Label("pnext")
	b.Inc("p", 1)
	b.Goto("ploop")
	b.Label("done")
	b.Load("check").Result()
	b.Return()
	Done(b)

	return main, nil
}

// --- mtrt -------------------------------------------------------------------
//
// Ray-tracer shape: a scene of sphere objects; each ray performs an
// integer intersection test against every sphere and allocates a
// short-lived hit record. The live set is small (the paper sees little
// co-allocation benefit here).
const (
	mtrtSpheres = 120
	mtrtRays    = 6000
	mtrtSeed    = 890123
)

func init() {
	register("mtrt", "ray tracer: per-ray sphere intersection with hit-record churn",
		3<<20, "", buildMtrt)
}

func buildMtrt(l *Lib) (*classfile.Method, []int64) {
	u := l.U
	sphere := u.DefineClass("Sphere", nil)
	sx := u.AddField(sphere, "x", kInt)
	sy := u.AddField(sphere, "y", kInt)
	sz := u.AddField(sphere, "z", kInt)
	sr := u.AddField(sphere, "r", kInt)
	hit := u.DefineClass("Hit", nil)
	hD := u.AddField(hit, "dist", kInt)
	hS := u.AddField(hit, "sphere", kRef)

	main := l.Entry("MtrtMain")
	b := l.B(main)
	b.Local("rand", kRef)
	b.Local("scene", kRef)
	b.Local("i", kInt)
	b.Local("ray", kInt)
	b.Local("rx", kInt)
	b.Local("ry", kInt)
	b.Local("rz", kInt)
	b.Local("s", kRef)
	b.Local("dx", kInt)
	b.Local("dy", kInt)
	b.Local("dz", kInt)
	b.Local("d2", kInt)
	b.Local("best", kRef)
	b.Local("check", kInt)

	b.Const(mtrtSeed).InvokeStatic(l.NewRand).Store("rand")
	b.Const(mtrtSpheres).InvokeStatic(l.VecNew).Store("scene")
	b.Label("mk")
	b.Load("i").Const(mtrtSpheres).If(bytecode.OpIfGE, "trace")
	b.New(sphere).Store("s")
	b.Load("s").Load("rand").InvokeVirtual(l.RandNext).Const(1000).Rem().PutField(sx)
	b.Load("s").Load("rand").InvokeVirtual(l.RandNext).Const(1000).Rem().PutField(sy)
	b.Load("s").Load("rand").InvokeVirtual(l.RandNext).Const(1000).Rem().PutField(sz)
	b.Load("s").Load("rand").InvokeVirtual(l.RandNext).Const(90).Rem().Const(10).Add().PutField(sr)
	b.Load("scene").Load("s").InvokeVirtual(l.VecAdd)
	b.Inc("i", 1)
	b.Goto("mk")
	b.Label("trace")
	b.Const(0).Store("ray")
	b.Label("rayloop")
	b.Load("ray").Const(mtrtRays).If(bytecode.OpIfGE, "done")
	b.Load("rand").InvokeVirtual(l.RandNext).Const(1000).Rem().Store("rx")
	b.Load("rand").InvokeVirtual(l.RandNext).Const(1000).Rem().Store("ry")
	b.Load("rand").InvokeVirtual(l.RandNext).Const(1000).Rem().Store("rz")
	b.New(hit).Store("best")
	b.Load("best").Const(1 << 40).PutField(hD)
	b.Const(0).Store("i")
	b.Label("sloop")
	b.Load("i").Const(mtrtSpheres).If(bytecode.OpIfGE, "shade")
	b.Load("scene").Load("i").InvokeVirtual(l.VecGet).Store("s")
	b.Load("s").GetField(sx).Load("rx").Sub().Store("dx")
	b.Load("s").GetField(sy).Load("ry").Sub().Store("dy")
	b.Load("s").GetField(sz).Load("rz").Sub().Store("dz")
	b.Load("dx").Load("dx").Mul().Load("dy").Load("dy").Mul().Add().
		Load("dz").Load("dz").Mul().Add().
		Load("s").GetField(sr).Load("s").GetField(sr).Mul().Sub().Store("d2")
	b.Load("d2").Load("best").GetField(hD).If(bytecode.OpIfGE, "snext")
	b.Load("best").Load("d2").PutField(hD)
	b.Load("best").Load("s").PutField(hS)
	b.Label("snext")
	b.Inc("i", 1)
	b.Goto("sloop")
	b.Label("shade")
	b.Load("best").GetField(hS).IfNull("raynext")
	b.Load("check").
		Load("best").GetField(hS).GetField(sr).Add().
		Load("best").GetField(hD).Const(1023).And().Add().
		Const(0xFFFFFFF).And().Store("check")
	b.Label("raynext")
	b.Inc("ray", 1)
	b.Goto("rayloop")
	b.Label("done")
	b.Load("check").Result()
	b.Return()
	Done(b)

	return main, mtrtExpected()
}

func mtrtExpected() []int64 {
	type sph struct{ x, y, z, r int64 }
	rnd := &goRand{seed: mtrtSeed}
	scene := make([]sph, mtrtSpheres)
	for i := range scene {
		scene[i] = sph{rnd.next() % 1000, rnd.next() % 1000, rnd.next() % 1000, rnd.next()%90 + 10}
	}
	var check int64
	for ray := 0; ray < mtrtRays; ray++ {
		rx, ry, rz := rnd.next()%1000, rnd.next()%1000, rnd.next()%1000
		bestD := int64(1) << 40
		bestI := -1
		for i, s := range scene {
			dx, dy, dz := s.x-rx, s.y-ry, s.z-rz
			d2 := dx*dx + dy*dy + dz*dz - s.r*s.r
			if d2 < bestD {
				bestD = d2
				bestI = i
			}
		}
		if bestI >= 0 {
			check = (check + scene[bestI].r + (bestD & 1023)) & 0xFFFFFFF
		}
	}
	return []int64{check}
}

// --- jack -------------------------------------------------------------------
//
// Parser-generator shape: repeated tokenization passes over a
// generated character stream, each pass allocating Token objects
// (String + char[] churn), then a structure check over token kinds.
const (
	jackInput  = 96 * 1024
	jackPasses = 6
	jackSeed   = 331144
)

func init() {
	register("jack", "parser: repeated tokenization passes with token churn",
		5<<20, "Token::text", buildJack)
}

func buildJack(l *Lib) (*classfile.Method, []int64) {
	u := l.U
	tok := u.DefineClass("Token", nil)
	tText := u.AddField(tok, "text", kRef)
	tKind := u.AddField(tok, "kind", kInt)

	main := l.Entry("JackMain")
	b := l.B(main)
	b.Local("rand", kRef)
	b.Local("in", kRef)
	b.Local("i", kInt)
	b.Local("p", kInt)
	b.Local("toks", kRef)
	b.Local("start", kInt)
	b.Local("len", kInt)
	b.Local("arr", kRef)
	b.Local("s", kRef)
	b.Local("t", kRef)
	b.Local("j", kInt)
	b.Local("depth", kInt)
	b.Local("check", kInt)

	b.Const(jackSeed).InvokeStatic(l.NewRand).Store("rand")
	b.Const(jackInput).NewArray(u.CharArray).Store("in")
	b.Label("fill")
	b.Load("i").Const(jackInput).If(bytecode.OpIfGE, "parse")
	// Characters: mostly letters, with '(' and ')' sprinkled in.
	b.Load("rand").InvokeVirtual(l.RandNext).Const(30).Rem().Store("j")
	b.Load("j").Const(26).If(bytecode.OpIfLT, "letter")
	b.Load("j").Const(28).If(bytecode.OpIfLT, "open")
	b.Load("in").Load("i").Const(')').AStore(kChar)
	b.Goto("fnext")
	b.Label("open")
	b.Load("in").Load("i").Const('(').AStore(kChar)
	b.Goto("fnext")
	b.Label("letter")
	b.Load("in").Load("i").Load("j").Const('a').Add().AStore(kChar)
	b.Label("fnext")
	b.Inc("i", 1)
	b.Goto("fill")
	// Tokenization passes.
	b.Label("parse")
	b.Const(0).Store("p")
	b.Label("ploop")
	b.Load("p").Const(jackPasses).If(bytecode.OpIfGE, "done")
	b.Const(1024).InvokeStatic(l.VecNew).Store("toks")
	b.Const(0).Store("i")
	b.Label("scan")
	b.Load("i").Const(jackInput).If(bytecode.OpIfGE, "structure")
	// Token length 6..13 (or the rest of input).
	b.Load("rand").InvokeVirtual(l.RandNext).Const(8).Rem().Const(6).Add().Store("len")
	b.Load("i").Load("len").Add().Const(jackInput).If(bytecode.OpIfLE, "cut")
	b.Const(jackInput).Load("i").Sub().Store("len")
	b.Label("cut")
	b.Load("i").Store("start")
	b.Load("len").NewArray(u.CharArray).Store("arr")
	b.Const(0).Store("j")
	b.Label("copy")
	b.Load("j").Load("len").If(bytecode.OpIfGE, "mktok")
	b.Load("arr").Load("j").Load("in").Load("start").Load("j").Add().ALoad(kChar).AStore(kChar)
	b.Inc("j", 1)
	b.Goto("copy")
	b.Label("mktok")
	b.New(l.String).Store("s")
	b.Load("s").Load("arr").PutField(l.StrValue)
	b.New(tok).Store("t")
	b.Load("t").Load("s").PutField(tText)
	b.Load("t").Load("in").Load("start").ALoad(kChar).PutField(tKind)
	b.Load("toks").Load("t").InvokeVirtual(l.VecAdd)
	b.Load("i").Load("len").Add().Store("i")
	b.Goto("scan")
	// Structure pass: track paren depth via token kinds; hash some text.
	b.Label("structure")
	b.Const(0).Store("depth")
	b.Const(0).Store("j")
	b.Label("walk")
	b.Load("j").Load("toks").InvokeVirtual(l.VecLen).If(bytecode.OpIfGE, "pnext")
	b.Load("toks").Load("j").InvokeVirtual(l.VecGet).GetField(tKind).Const('(').If(bytecode.OpIfNE, "nclose")
	b.Inc("depth", 1)
	b.Label("nclose")
	b.Load("toks").Load("j").InvokeVirtual(l.VecGet).GetField(tKind).Const(')').If(bytecode.OpIfNE, "hash")
	b.Load("depth").Const(1).Sub().Store("depth")
	b.Label("hash")
	b.Load("j").Const(63).Rem().Const(0).If(bytecode.OpIfNE, "wnext")
	b.Load("check").
		Load("toks").Load("j").InvokeVirtual(l.VecGet).GetField(tText).InvokeStatic(l.StrHash).
		Add().Const(0xFFFFFFF).And().Store("check")
	b.Label("wnext")
	b.Inc("j", 1)
	b.Goto("walk")
	b.Label("pnext")
	b.Load("check").Load("depth").Add().Const(0xFFFFFFF).And().Store("check")
	b.Inc("p", 1)
	b.Goto("ploop")
	b.Label("done")
	b.Load("check").Result()
	b.Return()
	Done(b)

	return main, nil
}
