package workloads

import (
	"fmt"

	"hpmvm/internal/vm/bytecode"
	"hpmvm/internal/vm/classfile"
)

// DaCapo analogues, part 2: jython, luindex, lusearch, pmd.

// --- jython -----------------------------------------------------------------
//
// Interpreter shape: a large population of small generated handler
// methods (jython has by far the largest compiled-code and map
// footprint in Table 2) dispatched through a generated binary tree of
// dispatch methods, operating on boxed PyObj values with occasional
// boxing churn.
const (
	jythonHandlers = 128
	jythonPool     = 2048
	jythonOps      = 160_000
	jythonSeed     = 360360
)

func init() {
	register("jython", "interpreter: 250+ generated handler methods over boxed values",
		5<<20, "", buildJython)
}

func buildJython(l *Lib) (*classfile.Method, []int64) {
	u := l.U
	pyobj := u.DefineClass("PyObj", nil)
	pIval := u.AddField(pyobj, "ival", kInt)
	pType := u.AddField(pyobj, "type", kInt)

	handlerCl := u.DefineClass("Handlers", nil)

	// Generate the handler methods: h_k(obj, op) -> int.
	handlers := make([]*classfile.Method, jythonHandlers)
	for k := 0; k < jythonHandlers; k++ {
		h := u.AddMethod(handlerCl, fmt.Sprintf("h%d", k), false, []classfile.Kind{kRef, kInt}, kInt)
		b := l.B(h)
		b.BindArg(0, "obj").BindArg(1, "op")
		// Each handler applies a distinct affine update to the boxed
		// value and returns a contribution.
		b.Load("obj").
			Load("obj").GetField(pIval).Const(int64(k%7 + 2)).Mul().
			Load("op").Add().Const(0xFFFFFF).And().
			PutField(pIval)
		b.Load("obj").Const(int64(k)).PutField(pType)
		b.Load("obj").GetField(pIval).Const(int64(k + 1)).Rem().ReturnVal()
		Done(b)
		handlers[k] = h
	}

	// Generate the dispatch tree: dispatch_lo_hi(obj, op) routes to the
	// handler for op (op already reduced mod jythonHandlers).
	var mkDispatch func(lo, hi int) *classfile.Method
	mkDispatch = func(lo, hi int) *classfile.Method {
		if lo == hi {
			return handlers[lo]
		}
		mid := (lo + hi) / 2
		left := mkDispatch(lo, mid)
		right := mkDispatch(mid+1, hi)
		d := u.AddMethod(handlerCl, fmt.Sprintf("d%d_%d", lo, hi), false, []classfile.Kind{kRef, kInt}, kInt)
		b := l.B(d)
		b.BindArg(0, "obj").BindArg(1, "op")
		b.Load("op").Const(int64(mid)).If(bytecode.OpIfGT, "right")
		b.Load("obj").Load("op").InvokeStatic(left).ReturnVal()
		b.Label("right")
		b.Load("obj").Load("op").InvokeStatic(right).ReturnVal()
		Done(b)
		return d
	}
	dispatch := mkDispatch(0, jythonHandlers-1)

	main := l.Entry("JythonMain")
	b := l.B(main)
	b.Local("rand", kRef)
	b.Local("pool", kRef)
	b.Local("i", kInt)
	b.Local("op", kInt)
	b.Local("obj", kRef)
	b.Local("check", kInt)
	b.Const(jythonSeed).InvokeStatic(l.NewRand).Store("rand")
	b.Const(jythonPool).NewArray(u.RefArray).Store("pool")
	b.Label("mk")
	b.Load("i").Const(jythonPool).If(bytecode.OpIfGE, "run")
	b.New(pyobj).Store("obj")
	b.Load("obj").Load("rand").InvokeVirtual(l.RandNext).Const(65536).Rem().PutField(pIval)
	b.Load("pool").Load("i").Load("obj").AStore(kRef)
	b.Inc("i", 1)
	b.Goto("mk")
	b.Label("run")
	b.Const(0).Store("i")
	b.Label("interp")
	b.Load("i").Const(jythonOps).If(bytecode.OpIfGE, "done")
	b.Load("rand").InvokeVirtual(l.RandNext).Store("op")
	b.Load("pool").Load("op").Const(jythonPool).Rem().ALoad(kRef).Store("obj")
	b.Load("check").
		Load("obj").Load("op").Const(jythonHandlers).Rem().InvokeStatic(dispatch).
		Add().Const(0xFFFFFFF).And().Store("check")
	// Boxing churn: every 16th op replaces the pool slot with a fresh box.
	b.Load("i").Const(15).And().Const(0).If(bytecode.OpIfNE, "next")
	b.New(pyobj).Store("obj")
	b.Load("obj").Load("i").PutField(pIval)
	b.Load("pool").Load("op").Const(jythonPool).Rem().Load("obj").AStore(kRef)
	b.Label("next")
	b.Inc("i", 1)
	b.Goto("interp")
	b.Label("done")
	b.Load("check").Result()
	b.Return()
	Done(b)

	return main, nil
}

// --- luindex ----------------------------------------------------------------
//
// Text-indexing shape: tokenize generated documents into terms held in
// a chained hash index; every term occurrence appends to a per-term
// postings array (growable int[]). Term objects and their postings are
// a large co-allocation population (the paper counts many co-allocated
// objects for luindex).
const (
	luBuckets  = 2048
	luDocs     = 400
	luDocTerms = 90
	luTermLen  = 6
	luVocab    = 6000 // distinct terms are drawn from a fixed vocabulary
	luSeed     = 741852
)

func init() {
	register("luindex", "text indexer: term hash with growable postings arrays",
		7<<20, "Term::text", buildLuindex)
}

// buildTermIndex defines the Term class and the shared index methods
// used by luindex and lusearch.
func buildTermIndex(l *Lib) (term *classfile.Class, addOcc, findTerm *classfile.Method,
	tText, tPostings, tCount *classfile.Field) {
	u := l.U
	term = u.DefineClass("Term", nil)
	tText = u.AddField(term, "text", kRef)
	tPostings = u.AddField(term, "postings", kRef) // int[]
	tCount = u.AddField(term, "count", kInt)
	tNext := u.AddField(term, "next", kRef)

	// findTerm(idx, s) -> Term or null.
	findTerm = u.AddMethod(term, "findTerm", false, []classfile.Kind{kRef, kRef}, kRef)
	b := l.B(findTerm)
	b.BindArg(0, "idx").BindArg(1, "s")
	b.Local("t", kRef)
	b.Load("idx").Load("s").InvokeStatic(l.StrHash).Const(luBuckets - 1).And().ALoad(kRef).Store("t")
	b.Label("walk")
	b.Load("t").IfNull("miss")
	b.Load("s").Load("t").GetField(tText).InvokeStatic(l.StrCmp).Const(0).If(bytecode.OpIfNE, "next")
	b.Load("t").ReturnVal()
	b.Label("next")
	b.Load("t").GetField(tNext).Store("t")
	b.Goto("walk")
	b.Label("miss")
	b.Null().ReturnVal()
	Done(b)

	// addOcc(idx, s, doc): find or create the term, append doc to its
	// postings (doubling the array when full — fresh int[] churn).
	addOcc = u.AddMethod(term, "addOcc", false, []classfile.Kind{kRef, kRef, kInt}, kVoid)
	b = l.B(addOcc)
	b.BindArg(0, "idx").BindArg(1, "s").BindArg(2, "doc")
	b.Local("t", kRef)
	b.Local("h", kInt)
	b.Local("np", kRef)
	b.Local("i", kInt)
	b.Load("idx").Load("s").InvokeStatic(findTerm).Store("t")
	b.Load("t").IfNonNull("append")
	b.New(term).Store("t")
	b.Load("t").Load("s").PutField(tText)
	b.Load("t").Const(4).NewArray(l.U.IntArray).PutField(tPostings)
	b.Load("s").InvokeStatic(l.StrHash).Const(luBuckets - 1).And().Store("h")
	b.Load("t").Load("idx").Load("h").ALoad(kRef).PutField(tNext)
	b.Load("idx").Load("h").Load("t").AStore(kRef)
	b.Label("append")
	b.Load("t").GetField(tCount).Load("t").GetField(tPostings).ArrayLen().If(bytecode.OpIfLT, "slot")
	// grow postings
	b.Load("t").GetField(tPostings).ArrayLen().Const(2).Mul().NewArray(l.U.IntArray).Store("np")
	b.Const(0).Store("i")
	b.Label("cp")
	b.Load("i").Load("t").GetField(tCount).If(bytecode.OpIfGE, "swap")
	b.Load("np").Load("i").Load("t").GetField(tPostings).Load("i").ALoad(kInt).AStore(kInt)
	b.Inc("i", 1)
	b.Goto("cp")
	b.Label("swap")
	b.Load("t").Load("np").PutField(tPostings)
	b.Label("slot")
	b.Load("t").GetField(tPostings).Load("t").GetField(tCount).Load("doc").AStore(kInt)
	b.Load("t").Load("t").GetField(tCount).Const(1).Add().PutField(tCount)
	b.Return()
	Done(b)
	return
}

// vocabTerm emits bytecode that pushes a vocabulary term String for the
// value on top of the stack... (helper kept simple: terms are generated
// by seeding a Rand with the term id).
func buildLuindex(l *Lib) (*classfile.Method, []int64) {
	u := l.U
	term, addOcc, findTerm, _, _, tCount := buildTermIndex(l)
	_ = term

	// termStr(id) -> String: deterministic term text for a vocabulary
	// id (a tiny Rand seeded by the id).
	termStr := u.AddMethod(term, "termStr", false, []classfile.Kind{kInt}, kRef)
	b := l.B(termStr)
	b.BindArg(0, "id")
	b.Load("id").Const(7).Mul().Const(luSeed).Add().InvokeStatic(l.NewRand).
		Const(luTermLen).InvokeStatic(l.RandStr).ReturnVal()
	Done(b)

	main := l.Entry("LuindexMain")
	b = l.B(main)
	b.Local("rand", kRef)
	b.Local("idx", kRef)
	b.Local("doc", kInt)
	b.Local("i", kInt)
	b.Local("check", kInt)
	b.Local("t", kRef)
	b.Const(luSeed).InvokeStatic(l.NewRand).Store("rand")
	b.Const(luBuckets).NewArray(u.RefArray).Store("idx")
	b.Label("docs")
	b.Load("doc").Const(luDocs).If(bytecode.OpIfGE, "verify")
	b.Const(0).Store("i")
	b.Label("terms")
	b.Load("i").Const(luDocTerms).If(bytecode.OpIfGE, "docnext")
	// Zipf-ish skew: square the draw so low vocabulary ids dominate.
	b.Load("idx").
		Load("rand").InvokeVirtual(l.RandNext).Const(luVocab).Rem().
		Load("rand").InvokeVirtual(l.RandNext).Const(luVocab).Rem().
		Mul().Const(luVocab).Rem().InvokeStatic(termStr).
		Load("doc").InvokeStatic(addOcc)
	b.Inc("i", 1)
	b.Goto("terms")
	b.Label("docnext")
	b.Inc("doc", 1)
	b.Goto("docs")
	// Verify: sum counts over the vocabulary.
	b.Label("verify")
	b.Const(0).Store("i")
	b.Label("vloop")
	b.Load("i").Const(luVocab).If(bytecode.OpIfGE, "done")
	b.Load("idx").Load("i").InvokeStatic(termStr).InvokeStatic(findTerm).Store("t")
	b.Load("t").IfNull("vnext")
	b.Load("check").Load("t").GetField(tCount).Add().Store("check")
	b.Label("vnext")
	b.Inc("i", 1)
	b.Goto("vloop")
	b.Label("done")
	b.Load("check").Result()
	b.Return()
	Done(b)

	return main, []int64{luDocs * luDocTerms}
}

// --- lusearch ---------------------------------------------------------------
//
// Search shape: build the same term index once, then run many queries
// that look up terms and fold their postings — read-dominated pointer
// chasing with per-query probe-string churn.
const (
	lusQueries = 24000
	lusSeed    = 852963
)

func init() {
	register("lusearch", "text search: query lookups folding postings lists",
		7<<20, "Term::postings", buildLusearch)
}

func buildLusearch(l *Lib) (*classfile.Method, []int64) {
	u := l.U
	term, addOcc, findTerm, _, tPostings, tCount := buildTermIndex(l)

	termStr := u.AddMethod(term, "termStr", false, []classfile.Kind{kInt}, kRef)
	b := l.B(termStr)
	b.BindArg(0, "id")
	b.Load("id").Const(7).Mul().Const(luSeed).Add().InvokeStatic(l.NewRand).
		Const(luTermLen).InvokeStatic(l.RandStr).ReturnVal()
	Done(b)

	main := l.Entry("LusearchMain")
	b = l.B(main)
	b.Local("rand", kRef)
	b.Local("idx", kRef)
	b.Local("doc", kInt)
	b.Local("i", kInt)
	b.Local("q", kInt)
	b.Local("t", kRef)
	b.Local("acc", kInt)
	b.Local("check", kInt)
	b.Const(lusSeed).InvokeStatic(l.NewRand).Store("rand")
	b.Const(luBuckets).NewArray(u.RefArray).Store("idx")
	// Index build (smaller than luindex).
	b.Label("docs")
	b.Load("doc").Const(luDocs/2).If(bytecode.OpIfGE, "search")
	b.Const(0).Store("i")
	b.Label("terms")
	b.Load("i").Const(luDocTerms).If(bytecode.OpIfGE, "docnext")
	b.Load("idx").
		Load("rand").InvokeVirtual(l.RandNext).Const(luVocab).Rem().
		Load("rand").InvokeVirtual(l.RandNext).Const(luVocab).Rem().
		Mul().Const(luVocab).Rem().InvokeStatic(termStr).
		Load("doc").InvokeStatic(addOcc)
	b.Inc("i", 1)
	b.Goto("terms")
	b.Label("docnext")
	b.Inc("doc", 1)
	b.Goto("docs")
	// Query loop.
	b.Label("search")
	b.Const(0).Store("q")
	b.Label("qloop")
	b.Load("q").Const(lusQueries).If(bytecode.OpIfGE, "done")
	b.Load("idx").
		Load("rand").InvokeVirtual(l.RandNext).Const(luVocab).Rem().InvokeStatic(termStr).
		InvokeStatic(findTerm).Store("t")
	b.Load("t").IfNull("qnext")
	b.Const(0).Store("acc")
	b.Const(0).Store("i")
	b.Label("fold")
	b.Load("i").Load("t").GetField(tCount).If(bytecode.OpIfGE, "qsum")
	b.Load("acc").Load("t").GetField(tPostings).Load("i").ALoad(kInt).Add().Store("acc")
	b.Inc("i", 1)
	b.Goto("fold")
	b.Label("qsum")
	b.Load("check").Load("acc").Add().Const(0xFFFFFFF).And().Store("check")
	// Per-query scorer scratch (Lucene allocates per-query collector
	// state): nursery churn during the read phase.
	b.Const(16).NewArray(u.IntArray).Pop()
	b.Label("qnext")
	b.Inc("q", 1)
	b.Goto("qloop")
	b.Label("done")
	b.Load("check").Result()
	b.Return()
	Done(b)

	return main, nil
}

// --- pmd --------------------------------------------------------------------
//
// Source-analysis shape: an AST of typed nodes with name strings; rule
// passes traverse the tree collecting violation objects, and subtree
// rewrites keep the heap changing between passes.
const (
	pmdDepth  = 7
	pmdFanout = 4
	pmdRules  = 6
	pmdRounds = 5
	pmdSeed   = 123321
)

func init() {
	register("pmd", "static analysis: AST rule traversals with violation churn",
		6<<20, "ASTNode::name", buildPmd)
}

func buildPmd(l *Lib) (*classfile.Method, []int64) {
	u := l.U
	node := u.DefineClass("ASTNode", nil)
	nKids := u.AddField(node, "kids", kRef)
	nType := u.AddField(node, "type", kInt)
	nName := u.AddField(node, "name", kRef)
	viol := u.DefineClass("Violation", nil)
	vNode := u.AddField(viol, "node", kRef)
	vRule := u.AddField(viol, "rule", kInt)

	// build(rand, depth) -> ASTNode
	build := u.AddMethod(node, "build", false, []classfile.Kind{kRef, kInt}, kRef)
	b := l.B(build)
	b.BindArg(0, "rand").BindArg(1, "depth")
	b.Local("n", kRef)
	b.Local("i", kInt)
	b.New(node).Store("n")
	b.Load("n").Load("rand").InvokeVirtual(l.RandNext).Const(24).Rem().PutField(nType)
	b.Load("n").Load("rand").Const(7).InvokeStatic(l.RandStr).PutField(nName)
	b.Load("depth").Const(0).If(bytecode.OpIfGT, "inner")
	b.Load("n").ReturnVal()
	b.Label("inner")
	b.Load("n").Const(pmdFanout).NewArray(u.RefArray).PutField(nKids)
	b.Label("kid")
	b.Load("i").Const(pmdFanout).If(bytecode.OpIfGE, "fin")
	b.Load("n").GetField(nKids).Load("i").
		Load("rand").Load("depth").Const(1).Sub().InvokeStatic(build).AStore(kRef)
	b.Inc("i", 1)
	b.Goto("kid")
	b.Label("fin")
	b.Load("n").ReturnVal()
	Done(b)

	// apply(n, rule, out) -> int: DFS; a node violates the rule when
	// type % rules == rule and its name starts beyond 'm'.
	apply := u.AddMethod(node, "apply", false, []classfile.Kind{kRef, kInt, kRef}, kInt)
	b = l.B(apply)
	b.BindArg(0, "n").BindArg(1, "rule").BindArg(2, "out")
	b.Local("cnt", kInt)
	b.Local("i", kInt)
	b.Local("v", kRef)
	b.Load("n").GetField(nType).Const(pmdRules).Rem().Load("rule").If(bytecode.OpIfNE, "kids")
	b.Load("n").GetField(nName).GetField(l.StrValue).Const(0).ALoad(kChar).Const('m').If(bytecode.OpIfLE, "kids")
	b.New(viol).Store("v")
	b.Load("v").Load("n").PutField(vNode)
	b.Load("v").Load("rule").PutField(vRule)
	b.Load("out").Load("v").InvokeVirtual(l.VecAdd)
	b.Const(1).Store("cnt")
	b.Label("kids")
	b.Load("n").GetField(nKids).IfNull("done")
	b.Label("loop")
	b.Load("i").Const(pmdFanout).If(bytecode.OpIfGE, "done")
	b.Load("cnt").
		Load("n").GetField(nKids).Load("i").ALoad(kRef).Load("rule").Load("out").InvokeStatic(apply).
		Add().Store("cnt")
	b.Inc("i", 1)
	b.Goto("loop")
	b.Label("done")
	b.Load("cnt").ReturnVal()
	Done(b)

	main := l.Entry("PmdMain")
	b = l.B(main)
	b.Local("rand", kRef)
	b.Local("root", kRef)
	b.Local("round", kInt)
	b.Local("r", kInt)
	b.Local("out", kRef)
	b.Local("check", kInt)
	b.Const(pmdSeed).InvokeStatic(l.NewRand).Store("rand")
	b.Load("rand").Const(pmdDepth).InvokeStatic(build).Store("root")
	b.Label("rounds")
	b.Load("round").Const(pmdRounds).If(bytecode.OpIfGE, "done")
	b.Const(0).Store("r")
	b.Label("rloop")
	b.Load("r").Const(pmdRules).If(bytecode.OpIfGE, "mutate")
	b.Const(64).InvokeStatic(l.VecNew).Store("out")
	b.Load("check").
		Load("root").Load("r").Load("out").InvokeStatic(apply).
		Add().Const(0xFFFFFFF).And().Store("check")
	b.Inc("r", 1)
	b.Goto("rloop")
	b.Label("mutate")
	// Rebuild a random child subtree (churn).
	b.Load("root").GetField(nKids).
		Load("rand").InvokeVirtual(l.RandNext).Const(pmdFanout).Rem().
		Load("rand").Const(pmdDepth - 2).InvokeStatic(build).AStore(kRef)
	b.Inc("round", 1)
	b.Goto("rounds")
	b.Label("done")
	b.Load("check").Result()
	b.Return()
	Done(b)

	return main, nil
}
