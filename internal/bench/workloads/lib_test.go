package workloads

import (
	"testing"

	"hpmvm/internal/vm/bytecode"
	"hpmvm/internal/vm/vmtest"
)

// libHarness builds a main that exercises the shared class library and
// returns the result log under both compilers.
func libHarness(t *testing.T, emit func(l *Lib, b *bytecode.Builder)) []int64 {
	t.Helper()
	var ref []int64
	for _, level := range []int{0, 2} {
		l := NewLib()
		main := l.Entry("LibT")
		b := l.B(main)
		emit(l, b)
		b.Return()
		Done(b)
		l.U.Layout()
		var plan map[int]int // runtime.CompilePlan
		if level > 0 {
			plan = vmtest.AllOpt(l.U, level)
		}
		got, _, err := vmtest.Run(l.U, main, vmtest.Options{Plan: plan})
		if err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
		if ref == nil {
			ref = got
		} else {
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("level %d diverges at %d: %d vs %d", level, i, got[i], ref[i])
				}
			}
		}
	}
	return ref
}

// mkString emits code pushing a String with the given ASCII content.
func mkString(l *Lib, b *bytecode.Builder, tmpArr, tmpStr string, s string) {
	b.Const(int64(len(s))).NewArray(l.U.CharArray).Store(tmpArr)
	for i := 0; i < len(s); i++ {
		b.Load(tmpArr).Const(int64(i)).Const(int64(s[i])).AStore(kChar)
	}
	b.New(l.String).Store(tmpStr)
	b.Load(tmpStr).Load(tmpArr).PutField(l.StrValue)
	b.Load(tmpStr)
}

func TestLibStrCmpEdgeCases(t *testing.T) {
	sign := func(x int64) int64 {
		switch {
		case x < 0:
			return -1
		case x > 0:
			return 1
		}
		return 0
	}
	cases := []struct {
		a, b string
		want int64 // sign of comparison
	}{
		{"abc", "abc", 0},
		{"abc", "abd", -1},
		{"abd", "abc", 1},
		{"ab", "abc", -1}, // prefix: length decides
		{"abc", "ab", 1},
		{"", "", 0},
		{"", "a", -1},
		{"zzz", "aaa", 1},
	}
	for _, c := range cases {
		got := libHarness(t, func(l *Lib, b *bytecode.Builder) {
			b.Local("arr", kRef)
			b.Local("s", kRef)
			b.Local("x", kRef)
			b.Local("y", kRef)
			mkString(l, b, "arr", "s", c.a)
			b.Store("x")
			mkString(l, b, "arr", "s", c.b)
			b.Store("y")
			b.Load("x").Load("y").InvokeStatic(l.StrCmp).Result()
		})
		if sign(got[0]) != c.want {
			t.Errorf("strCmp(%q,%q) = %d, want sign %d", c.a, c.b, got[0], c.want)
		}
	}
}

func TestLibStrHashMatchesGo(t *testing.T) {
	for _, s := range []string{"", "a", "hello", "abcdefghij"} {
		got := libHarness(t, func(l *Lib, b *bytecode.Builder) {
			b.Local("arr", kRef)
			b.Local("sv", kRef)
			mkString(l, b, "arr", "sv", s)
			b.InvokeStatic(l.StrHash).Result()
		})
		if got[0] != goStrHash(s) {
			t.Errorf("strHash(%q) = %d, want %d", s, got[0], goStrHash(s))
		}
	}
}

func TestLibVectorGrowth(t *testing.T) {
	// Adding far beyond the initial capacity must preserve order and
	// identity of all elements.
	got := libHarness(t, func(l *Lib, b *bytecode.Builder) {
		b.Local("v", kRef)
		b.Local("i", kInt)
		b.Local("n", kRef)
		b.Const(2).InvokeStatic(l.VecNew).Store("v")
		b.Label("add")
		b.Load("i").Const(100).If(bytecode.OpIfGE, "check")
		b.New(l.Rand).Store("n")
		b.Load("n").Load("i").PutField(l.RandSeed)
		b.Load("v").Load("n").InvokeVirtual(l.VecAdd)
		b.Inc("i", 1)
		b.Goto("add")
		b.Label("check")
		b.Load("v").InvokeVirtual(l.VecLen).Result()
		// Sum the seeds back out through get().
		b.Const(0).Store("i")
		b.Local("sum", kInt)
		b.Label("rd")
		b.Load("i").Const(100).If(bytecode.OpIfGE, "done")
		b.Load("sum").Load("v").Load("i").InvokeVirtual(l.VecGet).GetField(l.RandSeed).Add().Store("sum")
		b.Inc("i", 1)
		b.Goto("rd")
		b.Label("done")
		b.Load("sum").Result()
	})
	if got[0] != 100 {
		t.Errorf("size = %d", got[0])
	}
	if got[1] != 100*99/2 {
		t.Errorf("sum = %d, want %d", got[1], 100*99/2)
	}
}

func TestLibRandMatchesMirror(t *testing.T) {
	got := libHarness(t, func(l *Lib, b *bytecode.Builder) {
		b.Local("r", kRef)
		b.Const(424242).InvokeStatic(l.NewRand).Store("r")
		for i := 0; i < 5; i++ {
			b.Load("r").InvokeVirtual(l.RandNext).Result()
		}
	})
	r := &goRand{seed: 424242}
	for i := 0; i < 5; i++ {
		if want := r.next(); got[i] != want {
			t.Fatalf("next #%d = %d, want %d", i, got[i], want)
		}
	}
}
