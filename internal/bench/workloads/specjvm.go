package workloads

import (
	"hpmvm/internal/vm/bytecode"
	"hpmvm/internal/vm/classfile"
)

// SPECjvm98 analogues (Table 1): compress, jess, javac, mpegaudio,
// mtrt, jack (db lives in db.go). Each reproduces the original's heap
// signature; see DESIGN.md §4.

// --- compress ---------------------------------------------------------------
//
// LZW-flavored passes over large byte/int arrays. All big data lives in
// the large-object space, so the program has no co-allocation
// candidates (§6.3: "compress and mpegaudio ... allocate mostly large
// objects which are placed in the separate large-object space").
const (
	compSize = 256 * 1024
	compDict = 32 * 1024
	compPass = 3
	compSeed = 424242
)

func init() {
	register("compress", "LZW-style compression passes over large LOS arrays",
		4<<20, "", buildCompress)
}

func buildCompress(l *Lib) (*classfile.Method, []int64) {
	u := l.U
	main := l.Entry("CompressMain")
	b := l.B(main)
	b.Local("rand", kRef)
	b.Local("in", kRef)
	b.Local("dict", kRef)
	b.Local("i", kInt)
	b.Local("p", kInt)
	b.Local("h", kInt)
	b.Local("code", kInt)
	b.Local("check", kInt)

	b.Const(compSeed).InvokeStatic(l.NewRand).Store("rand")
	b.Const(compSize).NewArray(u.ByteArray).Store("in")
	b.Const(compDict).NewArray(u.IntArray).Store("dict")
	// Fill input.
	b.Const(0).Store("i")
	b.Label("fill")
	b.Load("i").Const(compSize).If(bytecode.OpIfGE, "pass0")
	b.Load("in").Load("i").Load("rand").InvokeVirtual(l.RandNext).Const(251).Rem().AStore(kByte)
	b.Inc("i", 1)
	b.Goto("fill")
	// Compression passes: rolling hash into the dictionary; emit a
	// "code" when the dictionary hits, else insert.
	b.Label("pass0")
	b.Const(0).Store("p")
	b.Label("passes")
	b.Load("p").Const(compPass).If(bytecode.OpIfGE, "done")
	b.Const(0).Store("h")
	b.Const(1).Store("i")
	b.Label("scan")
	b.Load("i").Const(compSize).If(bytecode.OpIfGE, "passnext")
	// h = (h*33 + in[i] ^ in[i-1]) & (compDict-1)
	b.Load("h").Const(33).Mul().
		Load("in").Load("i").ALoad(kByte).Add().
		Load("in").Load("i").Const(1).Sub().ALoad(kByte).Xor().
		Const(compDict - 1).And().Store("h")
	b.Load("dict").Load("h").ALoad(kInt).Store("code")
	b.Load("code").Load("i").If(bytecode.OpIfEQ, "hit")
	b.Load("dict").Load("h").Load("i").AStore(kInt)
	b.Goto("scannext")
	b.Label("hit")
	b.Load("check").Load("h").Add().Const(0xFFFFFF).And().Store("check")
	b.Label("scannext")
	b.Inc("i", 1)
	b.Goto("scan")
	b.Label("passnext")
	b.Inc("p", 1)
	b.Goto("passes")
	b.Label("done")
	b.Load("check").Result()
	b.Return()
	Done(b)

	return main, compressExpected()
}

func compressExpected() []int64 {
	r := &goRand{seed: compSeed}
	in := make([]int64, compSize)
	dict := make([]int64, compDict)
	for i := range in {
		in[i] = r.next() % 251
	}
	var check, h int64
	for p := 0; p < compPass; p++ {
		h = 0
		for i := 1; i < compSize; i++ {
			h = ((h*33 + in[i]) ^ in[i-1]) & (compDict - 1)
			if dict[h] == int64(i) {
				check = (check + h) & 0xFFFFFF
			} else {
				dict[h] = int64(i)
			}
		}
	}
	return []int64{check}
}

// --- mpegaudio --------------------------------------------------------------
//
// Polyphase-filter-flavored numeric kernel: multiply-accumulate loops
// over int arrays, almost no allocation (the paper observes only
// monitoring noise on this program, no co-allocation candidates).
const (
	mpegWindows = 3000
	mpegFilters = 32
	mpegTaps    = 16
	mpegSignal  = 32 * 1024
	mpegSeed    = 777001
)

func init() {
	register("mpegaudio", "polyphase filter bank over int arrays (numeric kernel)",
		3<<20, "", buildMpeg)
}

func buildMpeg(l *Lib) (*classfile.Method, []int64) {
	u := l.U
	main := l.Entry("MpegMain")
	b := l.B(main)
	b.Local("rand", kRef)
	b.Local("sig", kRef)
	b.Local("coef", kRef)
	b.Local("w", kInt)
	b.Local("f", kInt)
	b.Local("k", kInt)
	b.Local("base", kInt)
	b.Local("acc", kInt)
	b.Local("check", kInt)
	b.Local("i", kInt)

	b.Const(mpegSeed).InvokeStatic(l.NewRand).Store("rand")
	b.Const(mpegSignal).NewArray(u.IntArray).Store("sig")
	b.Const(mpegFilters * mpegTaps).NewArray(u.IntArray).Store("coef")
	b.Label("fill")
	b.Load("i").Const(mpegSignal).If(bytecode.OpIfGE, "fillc")
	b.Load("sig").Load("i").Load("rand").InvokeVirtual(l.RandNext).Const(2048).Rem().Const(1024).Sub().AStore(kInt)
	b.Inc("i", 1)
	b.Goto("fill")
	b.Label("fillc")
	b.Const(0).Store("i")
	b.Label("fill2")
	b.Load("i").Const(mpegFilters*mpegTaps).If(bytecode.OpIfGE, "run")
	b.Load("coef").Load("i").Load("rand").InvokeVirtual(l.RandNext).Const(128).Rem().Const(64).Sub().AStore(kInt)
	b.Inc("i", 1)
	b.Goto("fill2")
	b.Label("run")
	b.Const(0).Store("w")
	b.Label("wloop")
	b.Load("w").Const(mpegWindows).If(bytecode.OpIfGE, "done")
	b.Load("w").Const(97).Mul().Const(mpegSignal - mpegTaps).Rem().Store("base")
	b.Const(0).Store("f")
	b.Label("floop")
	b.Load("f").Const(mpegFilters).If(bytecode.OpIfGE, "wnext")
	b.Const(0).Store("acc")
	b.Const(0).Store("k")
	b.Label("kloop")
	b.Load("k").Const(mpegTaps).If(bytecode.OpIfGE, "fsum")
	b.Load("acc").
		Load("sig").Load("base").Load("k").Add().ALoad(kInt).
		Load("coef").Load("f").Const(mpegTaps).Mul().Load("k").Add().ALoad(kInt).
		Mul().Add().Store("acc")
	b.Inc("k", 1)
	b.Goto("kloop")
	b.Label("fsum")
	b.Load("check").Load("acc").Add().Const(0xFFFFFFF).And().Store("check")
	b.Inc("f", 1)
	b.Goto("floop")
	b.Label("wnext")
	b.Inc("w", 1)
	b.Goto("wloop")
	b.Label("done")
	b.Load("check").Result()
	b.Return()
	Done(b)

	return main, mpegExpected()
}

func mpegExpected() []int64 {
	r := &goRand{seed: mpegSeed}
	sig := make([]int64, mpegSignal)
	coef := make([]int64, mpegFilters*mpegTaps)
	for i := range sig {
		sig[i] = r.next()%2048 - 1024
	}
	for i := range coef {
		coef[i] = r.next()%128 - 64
	}
	var check int64
	for w := 0; w < mpegWindows; w++ {
		base := int64(w) * 97 % (mpegSignal - mpegTaps)
		for f := 0; f < mpegFilters; f++ {
			var acc int64
			for k := 0; k < mpegTaps; k++ {
				acc += sig[base+int64(k)] * coef[f*mpegTaps+k]
			}
			check = (check + acc) & 0xFFFFFFF
		}
	}
	return []int64{check}
}

// --- javac ------------------------------------------------------------------
//
// Symbol-table churn: a binary search tree keyed by String (symbol
// names), with repeated insert/lookup phases — many small tree nodes
// and short-lived name strings.
const (
	javacSymbols = 15000
	javacLookups = 12000
	javacNameLen = 10
	javacSeed    = 160302
)

func init() {
	register("javac", "compiler symbol table: String-keyed BST insert/lookup churn",
		6<<20, "String::value", buildJavac)
}

func buildJavac(l *Lib) (*classfile.Method, []int64) {
	u := l.U
	node := u.DefineClass("SymNode", nil)
	fLeft := u.AddField(node, "left", kRef)
	fRight := u.AddField(node, "right", kRef)
	fName := u.AddField(node, "name", kRef)
	fCount := u.AddField(node, "count", kInt)

	// insert(root, s) -> root (iterative BST insert; duplicate keys
	// bump a counter).
	insert := u.AddMethod(node, "insert", false, []classfile.Kind{kRef, kRef}, kRef)
	b := l.B(insert)
	b.BindArg(0, "root").BindArg(1, "s")
	b.Local("n", kRef)
	b.Local("c", kInt)
	b.Local("fresh", kRef)
	b.New(node).Store("fresh")
	b.Load("fresh").Load("s").PutField(fName)
	b.Load("fresh").Const(1).PutField(fCount)
	b.Load("root").IfNonNull("walk")
	b.Load("fresh").ReturnVal()
	b.Label("walk")
	b.Load("root").Store("n")
	b.Label("step")
	b.Load("s").Load("n").GetField(fName).InvokeStatic(l.StrCmp).Store("c")
	b.Load("c").Const(0).If(bytecode.OpIfNE, "branch")
	b.Load("n").Load("n").GetField(fCount).Const(1).Add().PutField(fCount)
	b.Load("root").ReturnVal()
	b.Label("branch")
	b.Load("c").Const(0).If(bytecode.OpIfLT, "goleft")
	b.Load("n").GetField(fRight).IfNull("putright")
	b.Load("n").GetField(fRight).Store("n")
	b.Goto("step")
	b.Label("putright")
	b.Load("n").Load("fresh").PutField(fRight)
	b.Load("root").ReturnVal()
	b.Label("goleft")
	b.Load("n").GetField(fLeft).IfNull("putleft")
	b.Load("n").GetField(fLeft).Store("n")
	b.Goto("step")
	b.Label("putleft")
	b.Load("n").Load("fresh").PutField(fLeft)
	b.Load("root").ReturnVal()
	Done(b)

	// lookup(root, s) -> count (0 when absent).
	lookup := u.AddMethod(node, "lookup", false, []classfile.Kind{kRef, kRef}, kInt)
	b = l.B(lookup)
	b.BindArg(0, "root").BindArg(1, "s")
	b.Local("n", kRef)
	b.Local("c", kInt)
	b.Load("root").Store("n")
	b.Label("step")
	b.Load("n").IfNull("miss")
	b.Load("s").Load("n").GetField(fName).InvokeStatic(l.StrCmp).Store("c")
	b.Load("c").Const(0).If(bytecode.OpIfNE, "branch")
	b.Load("n").GetField(fCount).ReturnVal()
	b.Label("branch")
	b.Load("c").Const(0).If(bytecode.OpIfLT, "left")
	b.Load("n").GetField(fRight).Store("n")
	b.Goto("step")
	b.Label("left")
	b.Load("n").GetField(fLeft).Store("n")
	b.Goto("step")
	b.Label("miss")
	b.Const(0).ReturnVal()
	Done(b)

	main := l.Entry("JavacMain")
	b = l.B(main)
	b.Local("rand", kRef)
	b.Local("root", kRef)
	b.Local("i", kInt)
	b.Local("check", kInt)
	b.Const(javacSeed).InvokeStatic(l.NewRand).Store("rand")
	b.Label("ins")
	b.Load("i").Const(javacSymbols).If(bytecode.OpIfGE, "lkp")
	b.Load("root").Load("rand").Const(javacNameLen).InvokeStatic(l.RandStr).InvokeStatic(insert).Store("root")
	b.Inc("i", 1)
	b.Goto("ins")
	// Lookup phase replays the insert stream from a fresh Rand with
	// the same seed, so every probe finds its symbol (javac resolves
	// names it has declared).
	b.Label("lkp")
	b.Const(javacSeed).InvokeStatic(l.NewRand).Store("rand")
	b.Const(0).Store("i")
	b.Label("lloop")
	b.Load("i").Const(javacLookups).If(bytecode.OpIfGE, "done")
	b.Load("check").
		Load("root").Load("rand").Const(javacNameLen).InvokeStatic(l.RandStr).InvokeStatic(lookup).
		Add().Store("check")
	b.Inc("i", 1)
	b.Goto("lloop")
	b.Label("done")
	b.Load("check").Result()
	b.Return()
	Done(b)

	return main, javacExpected()
}

func javacExpected() []int64 {
	type nd struct {
		l, r  *nd
		name  string
		count int64
	}
	r := &goRand{seed: javacSeed}
	var root *nd
	insert := func(s string) {
		fresh := &nd{name: s, count: 1}
		if root == nil {
			root = fresh
			return
		}
		n := root
		for {
			switch {
			case s == n.name:
				n.count++
				return
			case s > n.name:
				if n.r == nil {
					n.r = fresh
					return
				}
				n = n.r
			default:
				if n.l == nil {
					n.l = fresh
					return
				}
				n = n.l
			}
		}
	}
	lookup := func(s string) int64 {
		n := root
		for n != nil {
			switch {
			case s == n.name:
				return n.count
			case s > n.name:
				n = n.r
			default:
				n = n.l
			}
		}
		return 0
	}
	for i := 0; i < javacSymbols; i++ {
		insert(goRandStr(r, javacNameLen))
	}
	r = &goRand{seed: javacSeed}
	var check int64
	for i := 0; i < javacLookups; i++ {
		check += lookup(goRandStr(r, javacNameLen))
	}
	return []int64{check}
}
