package workloads

import (
	"sort"

	"hpmvm/internal/vm/bytecode"
	"hpmvm/internal/vm/classfile"
)

// db is the analogue of SPECjvm98 _209_db, the paper's headline case
// (§6.3, Figures 6–8): an in-memory database of records, each holding
// String name/address objects backed by char arrays. The operation
// phase continually replaces records (so strings keep flowing into the
// mature space) and runs probe scans that compare names — pointer
// chasing from Record to String to char[] across a shuffled mature
// space. A final shell sort by name stresses the same path. Misses on
// the char data are charged to String::value, and co-allocating the
// char[] with its String puts both on one 128-byte line.
const (
	dbRecords    = 11000
	dbOps        = 16000
	dbProbeEvery = 48
	dbProbeWin   = 320
	dbNameLen    = 12
	dbPadInts    = 8
	dbSeed       = 20070611
)

func init() {
	register("db", "in-memory database: record replace/probe/sort over String keys",
		7<<20, "String::value", buildDB)
}

func buildDB(l *Lib) (*classfile.Method, []int64) {
	u := l.U
	record := u.DefineClass("Record", nil)
	fName := u.AddField(record, "name", kRef)
	fAddr := u.AddField(record, "addr", kRef)
	fID := u.AddField(record, "id", kInt)
	fPad := u.AddField(record, "pad", kRef)

	// newRecord(rand) -> Record
	newRecord := u.AddMethod(record, "newRecord", false, []classfile.Kind{kRef}, kRef)
	b := l.B(newRecord)
	b.BindArg(0, "rand")
	b.Local("r", kRef)
	b.New(record).Store("r")
	b.Load("r").Load("rand").Const(dbNameLen).InvokeStatic(l.RandStr).PutField(fName)
	b.Load("r").Load("rand").Const(dbNameLen).InvokeStatic(l.RandStr).PutField(fAddr)
	b.Load("r").Load("rand").InvokeVirtual(l.RandNext).PutField(fID)
	b.Load("r").Const(dbPadInts).NewArray(u.IntArray).PutField(fPad)
	b.Load("r").ReturnVal()
	Done(b)

	// cmpRecs(a, b) -> int: compare by name (one expression, so the
	// access path Record::name -> String::value stays visible).
	cmpRecs := u.AddMethod(record, "cmpRecs", false, []classfile.Kind{kRef, kRef}, kInt)
	b = l.B(cmpRecs)
	b.BindArg(0, "a").BindArg(1, "b")
	b.Load("a").GetField(fName).Load("b").GetField(fName).InvokeStatic(l.StrCmp).ReturnVal()
	Done(b)

	// shellSort(v, n): shell sort of the record vector by name.
	shellSort := u.AddMethod(record, "shellSort", false, []classfile.Kind{kRef, kInt}, kVoid)
	b = l.B(shellSort)
	b.BindArg(0, "v").BindArg(1, "n")
	b.Local("gap", kInt)
	b.Local("i", kInt)
	b.Local("j", kInt)
	b.Local("tmp", kRef)
	b.Load("n").Const(2).Div().Store("gap")
	b.Label("gaploop")
	b.Load("gap").Const(0).If(bytecode.OpIfLE, "sorted")
	b.Load("gap").Store("i")
	b.Label("iloop")
	b.Load("i").Load("n").If(bytecode.OpIfGE, "nextgap")
	b.Load("v").Load("i").InvokeVirtual(l.VecGet).Store("tmp")
	b.Load("i").Store("j")
	b.Label("jloop")
	b.Load("j").Load("gap").If(bytecode.OpIfLT, "place")
	b.Load("v").Load("j").Load("gap").Sub().InvokeVirtual(l.VecGet).Load("tmp").InvokeStatic(cmpRecs).
		Const(0).If(bytecode.OpIfLE, "place")
	b.Load("v").Load("j").Load("v").Load("j").Load("gap").Sub().InvokeVirtual(l.VecGet).InvokeVirtual(l.VecSet)
	b.Load("j").Load("gap").Sub().Store("j")
	b.Goto("jloop")
	b.Label("place")
	b.Load("v").Load("j").Load("tmp").InvokeVirtual(l.VecSet)
	b.Inc("i", 1)
	b.Goto("iloop")
	b.Label("nextgap")
	b.Load("gap").Const(2).Div().Store("gap")
	b.Goto("gaploop")
	b.Label("sorted")
	b.Return()
	Done(b)

	// main
	main := l.Entry("DBMain")
	b = l.B(main)
	b.Local("rand", kRef)
	b.Local("db", kRef)
	b.Local("i", kInt)
	b.Local("op", kInt)
	b.Local("probe", kRef)
	b.Local("start", kInt)
	b.Local("j", kInt)
	b.Local("check", kInt)
	b.Local("h", kInt)

	b.Const(dbSeed).InvokeStatic(l.NewRand).Store("rand")
	b.Const(dbRecords).InvokeStatic(l.VecNew).Store("db")
	// Build phase.
	b.Label("build")
	b.Load("i").Const(dbRecords).If(bytecode.OpIfGE, "ops")
	b.Load("db").Load("rand").InvokeStatic(newRecord).InvokeVirtual(l.VecAdd)
	b.Inc("i", 1)
	b.Goto("build")
	// Operation phase: replace a random record; every dbProbeEvery ops
	// run a window scan against a fresh probe string.
	b.Label("ops")
	b.Const(0).Store("op")
	b.Label("oploop")
	b.Load("op").Const(dbOps).If(bytecode.OpIfGE, "sort")
	b.Load("db").Load("rand").InvokeVirtual(l.RandNext).Const(dbRecords).Rem().
		Load("rand").InvokeStatic(newRecord).InvokeVirtual(l.VecSet)
	b.Load("op").Const(dbProbeEvery).Rem().Const(0).If(bytecode.OpIfNE, "opnext")
	// probe
	b.Load("rand").Const(dbNameLen).InvokeStatic(l.RandStr).Store("probe")
	b.Load("rand").InvokeVirtual(l.RandNext).Const(dbRecords - dbProbeWin).Rem().Store("start")
	b.Const(0).Store("j")
	b.Label("scan")
	b.Load("j").Const(dbProbeWin).If(bytecode.OpIfGE, "opnext")
	b.Load("probe").
		Load("db").Load("start").Load("j").Add().InvokeVirtual(l.VecGet).GetField(fName).
		InvokeStatic(l.StrCmp).
		Const(0).If(bytecode.OpIfGE, "noinc")
	b.Inc("check", 1)
	b.Label("noinc")
	b.Inc("j", 1)
	b.Goto("scan")
	b.Label("opnext")
	b.Inc("op", 1)
	b.Goto("oploop")
	// Sort phase.
	b.Label("sort")
	b.Load("db").Const(dbRecords).InvokeStatic(shellSort)
	// Verification: probe checksum, sampled name hash, sortedness.
	b.Load("check").Result()
	b.Const(0).Store("h")
	b.Const(0).Store("i")
	b.Label("hash")
	b.Load("i").Const(dbRecords).If(bytecode.OpIfGE, "sortcheck")
	b.Load("h").Const(31).Mul().
		Load("db").Load("i").InvokeVirtual(l.VecGet).GetField(fName).InvokeStatic(l.StrHash).Add().
		Const(0xFFFFFFF).And().Store("h")
	b.Load("i").Const(97).Add().Store("i")
	b.Goto("hash")
	b.Label("sortcheck")
	b.Load("h").Result()
	b.Const(0).Store("j")
	b.Const(1).Store("i")
	b.Label("chk")
	b.Load("i").Const(dbRecords).If(bytecode.OpIfGE, "fin")
	b.Load("db").Load("i").Const(1).Sub().InvokeVirtual(l.VecGet).
		Load("db").Load("i").InvokeVirtual(l.VecGet).
		InvokeStatic(cmpRecs).Const(0).If(bytecode.OpIfLE, "ok")
	b.Inc("j", 1)
	b.Label("ok")
	b.Inc("i", 1)
	b.Goto("chk")
	b.Label("fin")
	b.Load("j").Result()
	b.Return()
	Done(b)

	return main, dbExpected()
}

// --- Go mirror: computes the exact expected result log ---------------------

type goRand struct{ seed int64 }

func (r *goRand) next() int64 {
	r.seed = r.seed*lcgMul + lcgAdd
	return int64((uint64(r.seed) >> 33) & 0x3FFFFFFF)
}

func goRandStr(r *goRand, n int) string {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte('a' + r.next()%26)
	}
	return string(buf)
}

type goRecord struct {
	name string
	addr string
	id   int64
}

func goNewRecord(r *goRand) *goRecord {
	rec := &goRecord{}
	rec.name = goRandStr(r, dbNameLen)
	rec.addr = goRandStr(r, dbNameLen)
	rec.id = r.next()
	return rec
}

func goStrHash(s string) int64 {
	var h int64
	for i := 0; i < len(s); i++ {
		h = h*31 + int64(s[i])
	}
	return h
}

func dbExpected() []int64 {
	r := &goRand{seed: dbSeed}
	db := make([]*goRecord, 0, dbRecords)
	for i := 0; i < dbRecords; i++ {
		db = append(db, goNewRecord(r))
	}
	var check int64
	for op := 0; op < dbOps; op++ {
		idx := r.next() % dbRecords
		db[idx] = goNewRecord(r)
		if op%dbProbeEvery == 0 {
			probe := goRandStr(r, dbNameLen)
			start := r.next() % (dbRecords - dbProbeWin)
			for j := 0; j < dbProbeWin; j++ {
				if probe < db[start+int64(j)].name {
					check++
				}
			}
		}
	}
	// Shell sort is not stable in general, but with distinct keys the
	// final order matches a plain sort; ties are broken identically
	// because equal names compare 0 and shell sort never swaps equal
	// keys past each other with the <= 0 guard... To stay exact, run
	// the same shell sort.
	goShellSort(db)
	var h int64
	for i := 0; i < dbRecords; i += 97 {
		h = (h*31 + goStrHash(db[i].name)) & 0xFFFFFFF
	}
	var unsorted int64
	for i := 1; i < dbRecords; i++ {
		if db[i-1].name > db[i].name {
			unsorted++
		}
	}
	return []int64{check, h, unsorted}
}

func goShellSort(db []*goRecord) {
	n := len(db)
	for gap := n / 2; gap > 0; gap /= 2 {
		for i := gap; i < n; i++ {
			tmp := db[i]
			j := i
			for j >= gap && db[j-gap].name > tmp.name {
				db[j] = db[j-gap]
				j -= gap
			}
			db[j] = tmp
		}
	}
	// Belt and braces: the result must be totally sorted.
	if !sort.SliceIsSorted(db, func(a, b int) bool { return db[a].name < db[b].name }) {
		panic("workloads: db mirror sort failed")
	}
}
