package workloads

import (
	"hpmvm/internal/vm/bytecode"
	"hpmvm/internal/vm/classfile"
)

// pseudojbb: SPEC JBB2000 with a fixed transaction count (Table 1:
// n=100000 scaled down). Warehouses hold districts; each transaction
// creates an Order whose line-item array is larger than a cache line
// (the paper: "many frequently missed objects ... relatively large
// long[] arrays with a size of >128 bytes. As a consequence,
// optimizing for reduced cache misses at the cache-line level does not
// yield a significant benefit"), so pseudojbb co-allocates a lot but
// gains little.
const (
	jbbWarehouses = 5
	jbbDistricts  = 10
	jbbOrderLines = 20  // 20*8 = 160 bytes of line items (> 1 cache line)
	jbbKeepOrders = 120 // orders retained per district (FIFO)
	jbbTxns       = 20000
	jbbNameLen    = 8
	jbbSeed       = 990011
)

func init() {
	register("pseudojbb", "TPC-C-style order processing with >128B line-item arrays",
		8<<20, "Order::lines", buildJBB)
}

func buildJBB(l *Lib) (*classfile.Method, []int64) {
	u := l.U
	order := u.DefineClass("Order", nil)
	oLines := u.AddField(order, "lines", kRef) // int[]
	oCust := u.AddField(order, "customer", kRef)
	oTotal := u.AddField(order, "total", kInt)

	district := u.DefineClass("District", nil)
	dOrders := u.AddField(district, "orders", kRef) // ref[] ring buffer
	dHead := u.AddField(district, "head", kInt)
	dYTD := u.AddField(district, "ytd", kInt)

	warehouse := u.DefineClass("Warehouse", nil)
	wDists := u.AddField(warehouse, "districts", kRef) // ref[]
	wName := u.AddField(warehouse, "name", kRef)

	// newOrder(rand) -> Order: line items filled from the LCG.
	newOrder := u.AddMethod(order, "newOrder", false, []classfile.Kind{kRef}, kRef)
	b := l.B(newOrder)
	b.BindArg(0, "rand")
	b.Local("o", kRef)
	b.Local("ln", kRef)
	b.Local("i", kInt)
	b.Local("tot", kInt)
	b.New(order).Store("o")
	b.Const(jbbOrderLines).NewArray(u.IntArray).Store("ln")
	b.Label("fill")
	b.Load("i").Const(jbbOrderLines).If(bytecode.OpIfGE, "fin")
	b.Load("ln").Load("i").Load("rand").InvokeVirtual(l.RandNext).Const(1000).Rem().AStore(kInt)
	b.Load("tot").Load("ln").Load("i").ALoad(kInt).Add().Store("tot")
	b.Inc("i", 1)
	b.Goto("fill")
	b.Label("fin")
	b.Load("o").Load("ln").PutField(oLines)
	b.Load("o").Load("rand").Const(jbbNameLen).InvokeStatic(l.RandStr).PutField(oCust)
	b.Load("o").Load("tot").PutField(oTotal)
	b.Load("o").ReturnVal()
	Done(b)

	// orderTotal(o) -> int: re-sum the line items (reads through
	// Order::lines — the access path the monitor charges).
	orderTotal := u.AddMethod(order, "orderTotal", false, []classfile.Kind{kRef}, kInt)
	b = l.B(orderTotal)
	b.BindArg(0, "o")
	b.Local("i", kInt)
	b.Local("t", kInt)
	b.Label("sum")
	b.Load("i").Load("o").GetField(oLines).ArrayLen().If(bytecode.OpIfGE, "done")
	b.Load("t").Load("o").GetField(oLines).Load("i").ALoad(kInt).Add().Store("t")
	b.Inc("i", 1)
	b.Goto("sum")
	b.Label("done")
	b.Load("t").ReturnVal()
	Done(b)

	main := l.Entry("JBBMain")
	b = l.B(main)
	b.Local("rand", kRef)
	b.Local("whs", kRef) // ref[] of warehouses
	b.Local("w", kRef)
	b.Local("d", kRef)
	b.Local("i", kInt)
	b.Local("j", kInt)
	b.Local("t", kInt)
	b.Local("o", kRef)
	b.Local("check", kInt)
	b.Local("h", kInt)

	b.Const(jbbSeed).InvokeStatic(l.NewRand).Store("rand")
	b.Const(jbbWarehouses).NewArray(u.RefArray).Store("whs")
	// Setup warehouses and districts with pre-filled order rings.
	b.Const(0).Store("i")
	b.Label("mkw")
	b.Load("i").Const(jbbWarehouses).If(bytecode.OpIfGE, "run")
	b.New(warehouse).Store("w")
	b.Load("w").Load("rand").Const(jbbNameLen).InvokeStatic(l.RandStr).PutField(wName)
	b.Load("w").Const(jbbDistricts).NewArray(u.RefArray).PutField(wDists)
	b.Const(0).Store("j")
	b.Label("mkd")
	b.Load("j").Const(jbbDistricts).If(bytecode.OpIfGE, "wdone")
	b.New(district).Store("d")
	b.Load("d").Const(jbbKeepOrders).NewArray(u.RefArray).PutField(dOrders)
	// Pre-fill the ring so every slot holds an order.
	b.Const(0).Store("t")
	b.Label("pref")
	b.Load("t").Const(jbbKeepOrders).If(bytecode.OpIfGE, "dstore")
	b.Load("d").GetField(dOrders).Load("t").Load("rand").InvokeStatic(newOrder).AStore(kRef)
	b.Inc("t", 1)
	b.Goto("pref")
	b.Label("dstore")
	b.Load("w").GetField(wDists).Load("j").Load("d").AStore(kRef)
	b.Inc("j", 1)
	b.Goto("mkd")
	b.Label("wdone")
	b.Load("whs").Load("i").Load("w").AStore(kRef)
	b.Inc("i", 1)
	b.Goto("mkw")
	// Transaction loop: pick warehouse/district, replace the oldest
	// order with a new one, and account the displaced order's total
	// (recomputed through Order::lines).
	b.Label("run")
	b.Const(0).Store("i")
	b.Label("tx")
	b.Load("i").Const(jbbTxns).If(bytecode.OpIfGE, "report")
	b.Load("whs").Load("rand").InvokeVirtual(l.RandNext).Const(jbbWarehouses).Rem().ALoad(kRef).Store("w")
	b.Load("w").GetField(wDists).Load("rand").InvokeVirtual(l.RandNext).Const(jbbDistricts).Rem().ALoad(kRef).Store("d")
	b.Load("d").GetField(dHead).Store("t")
	// Displaced order's recomputed total goes into the district YTD.
	b.Load("d").GetField(dOrders).Load("t").ALoad(kRef).Store("o")
	b.Load("d").Load("d").GetField(dYTD).Load("o").InvokeStatic(orderTotal).Add().
		Const(0xFFFFFFF).And().PutField(dYTD)
	b.Load("d").GetField(dOrders).Load("t").Load("rand").InvokeStatic(newOrder).AStore(kRef)
	b.Load("d").Load("t").Const(1).Add().Const(jbbKeepOrders).Rem().PutField(dHead)
	b.Inc("i", 1)
	b.Goto("tx")
	// Report: combine district YTDs and a customer-name hash.
	b.Label("report")
	b.Const(0).Store("check")
	b.Const(0).Store("i")
	b.Label("rw")
	b.Load("i").Const(jbbWarehouses).If(bytecode.OpIfGE, "emit")
	b.Load("whs").Load("i").ALoad(kRef).Store("w")
	b.Const(0).Store("j")
	b.Label("rd")
	b.Load("j").Const(jbbDistricts).If(bytecode.OpIfGE, "rwnext")
	b.Load("w").GetField(wDists).Load("j").ALoad(kRef).Store("d")
	b.Load("check").Load("d").GetField(dYTD).Add().Const(0xFFFFFFF).And().Store("check")
	// Hash the newest order's customer in this district.
	b.Load("d").GetField(dOrders).Const(0).ALoad(kRef).Store("o")
	b.Load("h").Const(31).Mul().Load("o").GetField(oCust).InvokeStatic(l.StrHash).Add().
		Const(0xFFFFFFF).And().Store("h")
	b.Inc("j", 1)
	b.Goto("rd")
	b.Label("rwnext")
	b.Inc("i", 1)
	b.Goto("rw")
	b.Label("emit")
	b.Load("check").Result()
	b.Load("h").Result()
	b.Return()
	Done(b)

	return main, nil
}
