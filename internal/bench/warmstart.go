package bench

import (
	"context"
	"fmt"
	"strings"

	"hpmvm/internal/core"
	"hpmvm/internal/stats"
)

// Warm-start sweeps: a parameter sweep whose configurations differ
// only in the hardware sampling interval shares its entire
// pre-divergence execution. RunPrefix runs a workload once to a pause
// cycle and captures the encoded whole-system snapshot;
// RunFromSnapshot restores that snapshot into a fresh system for each
// sweep point and runs only the tail. The restore contract
// (core.System.Restore) makes the same-interval point byte-identical
// to its cold run and retargets every other point at the restore
// cycle, so an N-point sweep costs one prefix plus N tails instead of
// N full runs.

// RunPrefix executes prog under cfg up to pauseAt simulated cycles and
// returns the encoded snapshot of the paused system, tagged with the
// workload name. It fails if the program finishes before the pause
// cycle — there is nothing to warm-start then.
func RunPrefix(b Builder, cfg RunConfig, pauseAt uint64) ([]byte, error) {
	return RunPrefixContext(context.Background(), b, cfg, pauseAt)
}

// RunPrefixContext is RunPrefix with cooperative cancellation.
func RunPrefixContext(ctx context.Context, b Builder, cfg RunConfig, pauseAt uint64) ([]byte, error) {
	prog := b()
	sys, _, err := buildSystem(prog, cfg)
	if err != nil {
		return nil, err
	}
	paused, err := sys.RunToCycle(ctx, prog.Entry, cfg.MaxCycles, pauseAt)
	if err != nil {
		return nil, fmt.Errorf("bench: %s: prefix: %w", prog.Name, err)
	}
	if !paused {
		return nil, fmt.Errorf("bench: %s: finished before prefix cycle %d — nothing to warm-start", prog.Name, pauseAt)
	}
	sn, err := sys.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("bench: %s: snapshot: %w", prog.Name, err)
	}
	sn.Tag = prog.Name
	return core.EncodeSnapshot(sn), nil
}

// RunFromSnapshot restores an encoded snapshot produced by RunPrefix
// into a freshly booted system for prog under cfg and runs it to the
// end, returning the same Result shape as a cold Run. The snapshot's
// tag must name the same workload; its options must match cfg exactly
// or up to the sampling interval (core.ErrSnapshotMismatch otherwise).
func RunFromSnapshot(b Builder, cfg RunConfig, snapshot []byte) (*Result, *core.System, error) {
	return RunFromSnapshotContext(context.Background(), b, cfg, snapshot)
}

// RunFromSnapshotContext is RunFromSnapshot with cooperative
// cancellation.
func RunFromSnapshotContext(ctx context.Context, b Builder, cfg RunConfig, snapshot []byte) (*Result, *core.System, error) {
	prog := b()
	sn, err := core.DecodeSnapshot(snapshot)
	if err != nil {
		return nil, nil, fmt.Errorf("bench: %s: %w", prog.Name, err)
	}
	if sn.Tag != prog.Name {
		return nil, nil, fmt.Errorf("bench: snapshot was taken for workload %q, cannot warm-start %q", sn.Tag, prog.Name)
	}
	sys, opts, err := buildSystem(prog, cfg)
	if err != nil {
		return nil, nil, err
	}
	cfg.Monitoring = opts.Monitoring
	if err := sys.Restore(sn); err != nil {
		return nil, nil, fmt.Errorf("bench: %s: %w", prog.Name, err)
	}
	if err := sys.ResumeContext(ctx, cfg.MaxCycles); err != nil {
		return nil, nil, fmt.Errorf("bench: %s: %w", prog.Name, err)
	}
	if prog.Expected != nil {
		if err := checkResults(prog.Expected, sys.VM.Results()); err != nil {
			return nil, nil, fmt.Errorf("bench: %s: %w", prog.Name, err)
		}
	}
	return collectResult(prog, cfg, opts.HeapLimit, sys), sys, nil
}

// RunFrom schedules one warm-started run per configuration over a
// shared snapshot and returns their futures in configuration order.
// The runs participate in the engine's fail-fast error, like RunAsync;
// accessors are valid after Engine.Wait returns nil.
func (e *Engine) RunFrom(b Builder, snapshot []byte, configs ...RunConfig) []*RunHandle {
	handles := make([]*RunHandle, len(configs))
	for i, cfg := range configs {
		i, cfg := i, cfg
		h := &RunHandle{done: make(chan struct{})}
		handles[i] = h
		e.submit(fmt.Sprintf("warmstart[%d]", i), func() error {
			defer close(h.done)
			res, sys, err := RunFromSnapshot(b, cfg, snapshot)
			if err != nil {
				h.err = err
				return err
			}
			e.AddSim(res.Cycles, res.Instret)
			h.res, h.sys = res, sys
			return nil
		}, false, func() {
			h.err = errSkipped
			close(h.done)
		})
	}
	return handles
}

// --- Warm-start experiment -------------------------------------------------

// WarmstartIntervals is the sampling-interval sweep the warm-start
// experiment runs cold and warm (paper scale 1/100: 25K/50K/100K/200K
// events).
var WarmstartIntervals = []uint64{250, 500, 1000, 2000}

// WarmstartPrefixFraction is the share of a run the shared prefix
// covers: large enough that the sweep shares a substantial prefix,
// small enough that a meaningful tail remains to resimulate per point.
// The pause cycle itself is discovered per run by a sampled discovery
// pass (see DiscoverPrefixCycles) instead of being hardcoded, so the
// experiment adapts to workload and configuration changes.
const WarmstartPrefixFraction = 0.55

// DiscoverPrefixCycles estimates cfg's full-run cycle count with a
// cheap sampled run (on the workload's calibrated schedule) and
// returns WarmstartPrefixFraction of it as the warm-start pause cycle,
// along with the estimate it derived from. The discovery run is a
// separate simulation — sampled systems refuse Snapshot — so the
// prefix itself still executes cycle-exactly.
func DiscoverPrefixCycles(b Builder, cfg RunConfig) (uint64, *stats.Estimate, error) {
	prog := b()
	scfg := CalibratedSampling(prog.Name)
	cfg.Sampling = &scfg
	res, _, err := Run(func() *Program { return prog }, cfg)
	if err != nil {
		return 0, nil, fmt.Errorf("bench: %s: prefix discovery: %w", prog.Name, err)
	}
	if res.Estimated == nil {
		return 0, nil, fmt.Errorf("bench: %s: prefix discovery produced no estimate", prog.Name)
	}
	return uint64(WarmstartPrefixFraction * res.Estimated.Cycles), res.Estimated, nil
}

// WarmstartResult carries the warm-start experiment's measurements.
type WarmstartResult struct {
	Program          string
	PrefixCycles     uint64  // discovered pause cycle (fraction of the estimate)
	EstimatedCycles  float64 // sampled discovery's full-run cycle estimate
	Intervals        []uint64
	ColdCycles       []uint64 // final simulated cycles, cold run per interval
	WarmCycles       []uint64 // final simulated cycles, warm-started run per interval
	ColdSeconds      float64  // summed wall clock of the cold sweep
	DiscoverySeconds float64  // wall clock of the sampled discovery run
	PrefixSeconds    float64  // wall clock of the shared prefix run
	ResumeSeconds    float64  // summed wall clock of the warm tails
}

// Speedup returns the serial-equivalent wall-clock ratio of the cold
// sweep over the warm-start sweep (prefix + tails). Discovery is
// excluded: its product — the pause cycle — is a property of the
// configuration, reusable across sweeps (and previously a hardcoded
// constant). SpeedupWithDiscovery charges it.
func (r *WarmstartResult) Speedup() float64 {
	warm := r.PrefixSeconds + r.ResumeSeconds
	if warm <= 0 {
		return 1
	}
	return r.ColdSeconds / warm
}

// SpeedupWithDiscovery is Speedup with the sampled discovery run's
// wall clock charged to the warm side — the honest first-time cost.
func (r *WarmstartResult) SpeedupWithDiscovery() float64 {
	warm := r.DiscoverySeconds + r.PrefixSeconds + r.ResumeSeconds
	if warm <= 0 {
		return 1
	}
	return r.ColdSeconds / warm
}

// WarmstartData runs the sampling-interval sweep on db twice — cold
// (one full run per interval) and warm (sampled prefix discovery, then
// one shared exact prefix sampled at the first interval, then one
// RunFrom tail per interval) — and returns both the simulated outcomes
// and the wall-clock accounting. Wall clock is measured as the
// engine's summed per-run time, so the speedup is the
// serial-equivalent ratio, independent of the jobs setting.
func WarmstartData(opt ExpOptions) (*WarmstartResult, error) {
	builder, ok := Get("db")
	if !ok {
		return nil, fmt.Errorf("db workload not registered")
	}
	e := opt.engine()
	res := &WarmstartResult{
		Program:    "db",
		Intervals:  WarmstartIntervals,
		ColdCycles: make([]uint64, len(WarmstartIntervals)),
		WarmCycles: make([]uint64, len(WarmstartIntervals)),
	}
	cfgAt := func(iv uint64) RunConfig {
		return RunConfig{Monitoring: true, Interval: iv, Seed: opt.Seed}
	}

	// Cold sweep: one full run per interval.
	base := e.Stats().RunTime
	cold := make([]*RunHandle, len(WarmstartIntervals))
	for i, iv := range WarmstartIntervals {
		cold[i] = e.RunAsync(builder, cfgAt(iv), fmt.Sprintf("db/cold-iv=%d", iv))
	}
	if err := e.Wait(); err != nil {
		return nil, err
	}
	res.ColdSeconds = (e.Stats().RunTime - base).Seconds()
	for i, h := range cold {
		res.ColdCycles[i] = h.Result().Cycles
	}

	// Sampled discovery: estimate the run length, derive the pause
	// cycle as a fixed fraction of it.
	base = e.Stats().RunTime
	e.Submit("db/discover", func() error {
		pauseAt, est, err := DiscoverPrefixCycles(builder, cfgAt(WarmstartIntervals[0]))
		if err != nil {
			return err
		}
		res.PrefixCycles = pauseAt
		res.EstimatedCycles = est.Cycles
		return nil
	})
	if err := e.Wait(); err != nil {
		return nil, err
	}
	res.DiscoverySeconds = (e.Stats().RunTime - base).Seconds()

	// Shared prefix, sampled at the sweep's first interval.
	base = e.Stats().RunTime
	var snapshot []byte
	e.Submit("db/prefix", func() error {
		var err error
		snapshot, err = RunPrefix(builder, cfgAt(WarmstartIntervals[0]), res.PrefixCycles)
		return err
	})
	if err := e.Wait(); err != nil {
		return nil, err
	}
	res.PrefixSeconds = (e.Stats().RunTime - base).Seconds()

	// Warm sweep: restore the shared prefix, retarget, run the tail.
	base = e.Stats().RunTime
	cfgs := make([]RunConfig, len(WarmstartIntervals))
	for i, iv := range WarmstartIntervals {
		cfgs[i] = cfgAt(iv)
	}
	warm := e.RunFrom(builder, snapshot, cfgs...)
	if err := e.Wait(); err != nil {
		return nil, err
	}
	res.ResumeSeconds = (e.Stats().RunTime - base).Seconds()
	for i, h := range warm {
		res.WarmCycles[i] = h.Result().Cycles
	}
	return res, nil
}

// Warmstart renders the warm-start sweep. The same-interval point is
// byte-identical to its cold run (equal final cycles, pinned by
// TestSnapshotRestoreByteIdentical at the core layer); retargeted
// points may differ slightly since their prefix was sampled at the
// snapshot's interval.
func Warmstart(opt ExpOptions) (string, error) {
	r, err := WarmstartData(opt)
	if err != nil {
		return "", err
	}
	opt.recordMetric("warm_start_speedup", r.Speedup())
	opt.recordMetric("warm_start_speedup_with_discovery", r.SpeedupWithDiscovery())
	var b strings.Builder
	fmt.Fprintf(&b, "Warm start: sampling-interval sweep over a shared %d-cycle prefix (%s)\n",
		r.PrefixCycles, r.Program)
	fmt.Fprintf(&b, "prefix = %.0f%% of the sampled discovery estimate (%.0f cycles), sampled at\n",
		100*WarmstartPrefixFraction, r.EstimatedCycles)
	fmt.Fprintf(&b, "interval %d; each sweep point restores it and retargets\n\n", r.Intervals[0])
	fmt.Fprintf(&b, "%-10s %15s %15s %10s\n", "interval", "cold cycles", "warm cycles", "identical")
	for i, iv := range r.Intervals {
		fmt.Fprintf(&b, "%-10d %15d %15d %10v\n", iv, r.ColdCycles[i], r.WarmCycles[i],
			r.ColdCycles[i] == r.WarmCycles[i])
	}
	fmt.Fprintf(&b, "\nwall clock (serial-equivalent): cold sweep %.2fs; discovery %.2fs + warm prefix %.2fs + tails %.2fs\n",
		r.ColdSeconds, r.DiscoverySeconds, r.PrefixSeconds, r.ResumeSeconds)
	fmt.Fprintf(&b, "warm-start speedup: %.2fx (%.2fx charging discovery)\n",
		r.Speedup(), r.SpeedupWithDiscovery())
	return b.String(), nil
}
