package bench

// Multiplexed sampled passes: one shared sampled simulation per
// workload hosts the unmonitored baseline and every monitored
// (interval × rep) configuration of a grid cell as virtual "lanes",
// replacing ~15 exact runs (fig2) or ~6 per heap point (sampling-fig5)
// with a single pass.
//
// The trick is that monitoring never changes the architecture — a
// monitored run retires the identical instruction stream and identical
// cache-state evolution as an unmonitored one; it only *adds cycles*
// (PEBS capture microcode, overflow interrupts, kernel syscalls, the
// collector thread's polls and decodes). So one sampled pass can carry
// the shared architectural stream while each lane keeps private copies
// of everything monitoring-specific:
//
//   - a laneClock: the shared CPU's cycle counter plus the lane's own
//     accumulated overhead. Every component that would charge the CPU
//     (PEBS unit, perfmon module, monitor) charges the laneClock
//     instead, so lanes never see each other's overhead.
//   - a private PEBS unit fed by a fan-out listener. Functional warming
//     delivers the full hardware event stream during fast-forward
//     (cache.Hierarchy.warmAccess), so each unit observes exactly the
//     events an exact run would, and takes the same samples: its PRNG
//     is seeded per-lane exactly like the exact grid's rep seeds.
//   - a private perfmon module and monitor, polled through a ticker
//     wrapper that translates the lane's deadline back to shared time.
//
// A lane's estimated full-run cycles are then the shared pass's
// extrapolated baseline cycles plus the lane's exactly-counted
// monitoring overhead.

import (
	"fmt"
	"math/rand"

	"hpmvm/internal/core"
	"hpmvm/internal/hw/cache"
	"hpmvm/internal/hw/cpu"
	"hpmvm/internal/hw/pebs"
	"hpmvm/internal/kernel/perfmon"
	"hpmvm/internal/monitor"
	"hpmvm/internal/stats"
)

// laneClock is one lane's virtual cycle counter: shared CPU time plus
// the lane's private monitoring overhead. It implements pebs.CPUState,
// perfmon.CycleSink and monitor.Clock, so the whole monitoring stack of
// a lane wires up against it exactly as it would against the real CPU.
type laneClock struct {
	cpu *cpu.CPU
	off uint64 // cycles of monitoring overhead this lane has accrued
}

func (c *laneClock) SamplePC() uint64                     { return c.cpu.SamplePC() }
func (c *laneClock) SampleRegs(dst *[pebs.NumRegs]uint64) { c.cpu.SampleRegs(dst) }
func (c *laneClock) CycleCount() uint64                   { return c.cpu.CycleCount() + c.off }
func (c *laneClock) Cycles() uint64                       { return c.cpu.Cycles() + c.off }
func (c *laneClock) AddCycles(n uint64)                   { c.off += n }

// fanoutListener gates hardware events on CPU privilege mode (like
// core's userFilter) and forwards each to every lane's PEBS unit.
type fanoutListener struct {
	cpu   *cpu.CPU
	units []*pebs.Unit
}

func (f *fanoutListener) HardwareEvent(kind cache.EventKind, addr uint64) {
	if !f.cpu.UserMode() {
		return
	}
	for _, u := range f.units {
		u.HardwareEvent(kind, addr)
	}
}

// laneTicker adapts a lane's monitor to the VM ticker loop: the
// monitor's deadline is in lane time (shared + off), the loop schedules
// in shared time, so the wrapper subtracts the lane's offset.
type laneTicker struct {
	mon *monitor.Monitor
	clk *laneClock
}

func (t *laneTicker) Deadline() uint64 {
	d := t.mon.Deadline()
	if d <= t.clk.off {
		return 0
	}
	return d - t.clk.off
}

func (t *laneTicker) Tick() { t.mon.Tick() }

// sampledLane is one monitored configuration riding the shared pass.
type sampledLane struct {
	interval uint64 // configured hardware interval (0 = auto)
	seed     int64
	clk      *laneClock
	unit     *pebs.Unit
	mod      *perfmon.Module
	mon      *monitor.Monitor
}

// SampledPass is the result of one multiplexed sampled pass.
type SampledPass struct {
	Program string
	// Estimate is the shared pass's extrapolation: the unmonitored
	// baseline picture (the lanes' overhead never touches the shared
	// cycle counter).
	Estimate stats.Estimate
	// MonCycles[j][r] is the estimated full-run cycle count of the lane
	// for interval j (in the order given to RunSampledPass), repetition
	// r: baseline estimate plus the lane's exactly-counted monitoring
	// overhead.
	MonCycles [][]float64
	// Cycles and Instret are the pass's raw simulated volume (the
	// distorted sampled clock), for engine throughput accounting.
	Cycles  uint64
	Instret uint64
}

// RunSampledPass executes one multiplexed sampled pass for the
// workload: a single sampled simulation under base (which must not
// itself enable monitoring or co-allocation — those change the shared
// architectural stream) hosting the unmonitored baseline plus one
// monitored lane per (interval × rep) cell. base.Sampling selects the
// region schedule (nil = the workload's calibrated schedule); heap
// sizing, seed and cycle budget apply to the shared pass. Lane rep
// seeds follow the exact grid's convention (seed + rep*7919, see
// RepeatAsync), so lane r samples with the same PRNG stream as exact
// repetition r.
func RunSampledPass(b Builder, base RunConfig, intervals []uint64, reps int) (*SampledPass, error) {
	prog := b()
	if base.Monitoring || base.Coalloc {
		return nil, fmt.Errorf("bench: %s: sampled pass base config cannot monitor or co-allocate — lanes carry the monitoring, and co-allocation feedback would change the shared architectural stream", prog.Name)
	}
	if base.Sampling == nil {
		scfg := CalibratedSampling(prog.Name)
		base.Sampling = &scfg
	}
	seed := base.Seed
	sys, _, err := buildSystem(prog, base)
	if err != nil {
		return nil, err
	}

	lanes := make([][]*sampledLane, len(intervals))
	var units []*pebs.Unit
	for j, iv := range intervals {
		for r := 0; r < reps; r++ {
			ln, err := newSampledLane(sys, iv, seed+int64(r)*7919)
			if err != nil {
				return nil, fmt.Errorf("bench: %s: lane iv=%d rep=%d: %w", prog.Name, iv, r, err)
			}
			lanes[j] = append(lanes[j], ln)
			units = append(units, ln.unit)
		}
	}
	sys.VM.Hier.SetListener(&fanoutListener{cpu: sys.VM.CPU, units: units})

	if err := sys.Run(prog.Entry, base.MaxCycles); err != nil {
		return nil, fmt.Errorf("bench: %s: sampled pass: %w", prog.Name, err)
	}
	if prog.Expected != nil {
		if err := checkResults(prog.Expected, sys.VM.Results()); err != nil {
			return nil, fmt.Errorf("bench: %s: sampled pass: %w", prog.Name, err)
		}
	}
	for _, ivLanes := range lanes {
		for _, ln := range ivLanes {
			ln.mod.Stop()
			ln.mon.Flush()
		}
	}

	est, ok := sys.SamplingEstimate()
	if !ok {
		return nil, fmt.Errorf("bench: %s: sampled pass produced no estimate", prog.Name)
	}
	pass := &SampledPass{
		Program:  prog.Name,
		Estimate: est,
		Cycles:   sys.VM.Cycles(),
		Instret:  sys.VM.CPU.Instret(),
	}
	for _, ivLanes := range lanes {
		cycles := make([]float64, len(ivLanes))
		for r, ln := range ivLanes {
			cycles[r] = est.Cycles + float64(ln.clk.off)
		}
		pass.MonCycles = append(pass.MonCycles, cycles)
	}
	return pass, nil
}

// newSampledLane wires one monitored lane onto the shared system,
// mirroring the session setup of an exact monitored run
// (core.System.runFrom): same PEBS config, same auto-mode starting
// interval, same configure/start charges — billed to the lane clock.
func newSampledLane(sys *core.System, interval uint64, seed int64) (*sampledLane, error) {
	clk := &laneClock{cpu: sys.VM.CPU}
	unit := pebs.NewUnit(clk, rand.New(rand.NewSource(seed)))
	mod := perfmon.NewModule(unit, clk, perfmon.DefaultConfig())

	mcfg := monitor.DefaultConfig()
	mcfg.Auto = interval == 0
	mon := monitor.New(sys.VM, mod, mcfg)
	mon.SetClock(clk)

	pcfg := pebs.DefaultConfig()
	if interval != 0 {
		pcfg.Interval = interval
	} else {
		// Auto mode starts from the same fine interval as an exact run.
		pcfg.Interval = 10_000
	}
	if err := mod.ConfigureSession(pcfg); err != nil {
		return nil, err
	}
	mod.Start()
	mon.Arm()
	sys.VM.AddTicker(&laneTicker{mon: mon, clk: clk})
	return &sampledLane{interval: interval, seed: seed, clk: clk, unit: unit, mod: mod, mon: mon}, nil
}
