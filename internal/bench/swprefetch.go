package bench

import (
	"fmt"
	"strings"

	"hpmvm/internal/hw/cache"
	"hpmvm/internal/opt"
)

// This file implements the prefetch-injection experiment: the third
// managed optimization (software prefetch injection, internal/opt)
// evaluated the same way as co-allocation and code layout — a passive
// monitored baseline (the stride detector runs but never injects)
// against the active optimization, plus a deliberately poor decision
// the feedback loop must detect and revert.

// swPrefetchCfg returns the experiment's optimization config; passive
// runs train the same detector on the same samples without installing
// sites, so the two runs differ only in the injection decisions. The
// assessment window is shorter than the library default: most
// workloads finish within ~16 monitor polls, and a 3-poll window lets
// the first injection land while there is still run left to improve.
func swPrefetchCfg(passive bool) *opt.SwPrefetchConfig {
	return &opt.SwPrefetchConfig{
		MinSamples:  16,
		EvalPeriods: 3,
		Passive:     passive,
	}
}

// SwPrefetchRow is one program's passive-vs-active comparison.
type SwPrefetchRow struct {
	Program       string
	PassiveCycles uint64  // total cycles, monitored but never injecting
	ActiveCycles  uint64  // total cycles with prefetch injection active
	Improvement   float64 // fraction of passive cycles removed
	SwPrefetches  uint64  // software prefetches the active run issued
	SwHits        uint64  // demand accesses that hit an injected line
	Injections    int     // injection epochs the active run applied
	Decisions     uint64  // managed decisions (includes polluting injections)
	Reverts       uint64  // decisions the assessment loop took back
}

// SwPrefetchData measures total cycles with prefetch injection active
// against a passive monitored baseline (same detector, no injection)
// for every workload. Both runs of every workload execute in parallel
// on the engine.
func SwPrefetchData(o ExpOptions) ([]SwPrefetchRow, error) {
	e := o.engine()
	names, builders, err := o.builders()
	if err != nil {
		return nil, err
	}
	type cell struct{ passive, active *RunHandle }
	cells := make([]cell, len(names))
	for i, name := range names {
		// Both runs sample L1 misses: the software prefetcher's niche is
		// L2-resident strided streams the L2-trained hardware prefetcher
		// cannot see, and the two runs share the monitoring cost so the
		// delta is the injections alone.
		cells[i].passive = e.RunAsync(builders[i], RunConfig{
			SwPrefetch: true, SwPrefetchConfig: swPrefetchCfg(true),
			Event: cache.EventL1Miss, Seed: o.Seed,
		}, name+"/swpf-off")
		cells[i].active = e.RunAsync(builders[i], RunConfig{
			SwPrefetch: true, SwPrefetchConfig: swPrefetchCfg(false),
			Event: cache.EventL1Miss, Seed: o.Seed,
		}, name+"/swpf-on")
	}
	if err := e.Wait(); err != nil {
		return nil, err
	}
	rows := make([]SwPrefetchRow, len(names))
	for i, name := range names {
		passive, active := cells[i].passive.Result(), cells[i].active.Result()
		ks := optKindStats(active, opt.KindSwPrefetch)
		pc, ac := passive.Cycles, active.Cycles
		imp := 0.0
		if pc > 0 {
			imp = 1 - float64(ac)/float64(pc)
		}
		rows[i] = SwPrefetchRow{
			Program:       name,
			PassiveCycles: pc,
			ActiveCycles:  ac,
			Improvement:   imp,
			SwPrefetches:  active.Cache.SwPrefetches,
			SwHits:        active.Cache.SwPrefetchHits,
			Injections:    cells[i].active.Sys().SwPrefetch.Epoch(),
			Decisions:     ks.Decisions,
			Reverts:       ks.Reverts,
		}
	}
	return rows, nil
}

// SwPrefetchBadInjectAtCycle is the point of the injected bad decision
// in the revert scenario: late enough that the early genuine
// injections have settled and the polluting site set is judged against
// an honest steady-state baseline.
const SwPrefetchBadInjectAtCycle = 120_000_000

// SwPrefetchRevertEvalPeriods is the revert scenario's assessment
// window: short enough that the early injections settle before the
// injection point and the regression is measured within one phase.
const SwPrefetchRevertEvalPeriods = 3

// SwPrefetchRevertCache is the pressured geometry the revert scenario
// opts into: a small direct-mapped L1 so the polluting site set
// (delta −L1Size aliases every prefetch onto the demand line's own
// set) actually thrashes, and large pages so those prefetches survive
// the page-boundary clamp instead of being squashed at issue.
func SwPrefetchRevertCache() cache.Config {
	cfg := cache.DefaultP4()
	cfg.L1Size = 4 * 1024
	cfg.L1Assoc = 1
	cfg.PageSize = 16 * 1024
	return cfg
}

// SwPrefetchRevertData runs the prefetch-injection equivalent of
// Figure 8 on db: at SwPrefetchBadInjectAtCycle the optimization is
// made to install a polluting site set (every prefetch evicts the
// demand line's own L1 set). The assessment loop must observe the
// cycles-per-access regression and revert to the previous site set.
// Returns the decision/revert counters and the decision log.
func SwPrefetchRevertData(o ExpOptions) (opt.KindStats, []string, error) {
	builder, ok := Get("db")
	if !ok {
		return opt.KindStats{}, nil, fmt.Errorf("db workload not registered")
	}
	cfg := swPrefetchCfg(false)
	cfg.BadInjectAtCycle = SwPrefetchBadInjectAtCycle
	cfg.EvalPeriods = SwPrefetchRevertEvalPeriods
	// Never back off: genuine injections reverted before the injection
	// point must not suppress the scenario's one deliberate bad call.
	cfg.MaxReverts = -1
	pressured := SwPrefetchRevertCache()
	e := o.engine()
	h := e.RunAsync(builder, RunConfig{
		SwPrefetch: true, SwPrefetchConfig: cfg,
		CacheConfig: &pressured,
		Event:       cache.EventL1Miss, Seed: o.Seed,
	}, "db/swpf-badinject")
	if err := e.Wait(); err != nil {
		return opt.KindStats{}, nil, err
	}
	res := h.Result()
	return optKindStats(res, opt.KindSwPrefetch), h.Sys().SwPrefetch.Log(), nil
}

// SwPrefetchExp renders the prefetch-injection experiment: the
// passive-vs-active cycle table and the injected-bad-decision revert
// scenario. Headline numbers land in the JSON report as
// opt_swprefetch_* metrics.
func SwPrefetchExp(o ExpOptions) (string, error) {
	rows, err := SwPrefetchData(o)
	if err != nil {
		return "", err
	}
	badStats, badLog, err := SwPrefetchRevertData(o)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Software prefetch: total cycles with PEBS-driven prefetch injection vs passive monitoring\n")
	fmt.Fprintf(&b, "(per-PC stride detection over sampled L1-miss addresses; passive runs train the\n")
	fmt.Fprintf(&b, " same detector without injecting, so the delta is the injection decisions alone)\n")
	fmt.Fprintf(&b, "%-11s %14s %14s %9s %10s %9s %8s %10s %8s\n",
		"program", "passive", "swprefetch", "improve", "issued", "hits", "epochs", "decisions", "reverts")
	improved := 0
	var sumImp float64
	var totDec, totRev uint64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %14d %14d %8.2f%% %10d %9d %8d %10d %8d\n",
			r.Program, r.PassiveCycles, r.ActiveCycles, 100*r.Improvement,
			r.SwPrefetches, r.SwHits, r.Injections, r.Decisions, r.Reverts)
		if r.Improvement > 0 {
			improved++
		}
		sumImp += r.Improvement
		totDec += r.Decisions
		totRev += r.Reverts
		o.recordMetric("opt_swprefetch_cycles_reduction_pct_"+r.Program, 100*r.Improvement)
	}
	fmt.Fprintf(&b, "%-11s %39.2f%%\n", "average", 100*sumImp/float64(len(rows)))
	fmt.Fprintf(&b, "\nInjected bad decision (db, polluting site set at cycle %d, pressured 4 KB direct-mapped L1):\n",
		SwPrefetchBadInjectAtCycle)
	for _, line := range badLog {
		fmt.Fprintf(&b, "  %s\n", line)
	}
	fmt.Fprintf(&b, "decisions %d, reverts %d\n", badStats.Decisions, badStats.Reverts)
	o.recordMetric("opt_swprefetch_workloads_improved", float64(improved))
	o.recordMetric("opt_swprefetch_mean_improvement_pct", 100*sumImp/float64(len(rows)))
	o.recordMetric("opt_swprefetch_decisions_total", float64(totDec+badStats.Decisions))
	o.recordMetric("opt_swprefetch_reverts_total", float64(totRev+badStats.Reverts))
	badReverted := 0.0
	if badStats.Reverts >= 1 {
		badReverted = 1
	}
	o.recordMetric("opt_swprefetch_bad_decision_reverted", badReverted)
	return b.String(), nil
}
