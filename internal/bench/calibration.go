package bench

import "hpmvm/internal/vm/runtime"

// Per-workload sampling-schedule calibration. The default schedule
// (runtime.DefaultSamplingConfig) holds every fig2 workload within
// ~1.1% cycle error, but workloads with strong phase structure can sit
// near that edge: their behaviour alternates on a scale comparable to
// the fast-forward period, so a schedule whose regions land mostly in
// one kind of phase misweights the mix. Shortening the fast-forward
// (more regions per run) and lengthening the measured slice fixes the
// weighting at the cost of a smaller functional fraction — roughly 2x
// less sampled speedup for the workload, which only it pays.
//
// Entries are found by sweeping FF/measure lengths against the
// cycle-exact run (the workflow behind `make verify-sampling`);
// TestSamplingCalibration pins each entry's documented bound so a
// sampler or cost-model change that invalidates the table fails CI.
var samplingCalibration = map[string]runtime.SamplingConfig{
	// jack alternates parse-heavy and emit-heavy phases near the default
	// 100K-instruction fast-forward period; under the default schedule
	// its estimate sits at about -1% error. FF 30K with a 40K measured
	// region triples the region count and holds the whole multiplexed
	// fig2 pass (baseline and every monitored lane) within 0.1%.
	"jack": {FFInstrs: 30_000, WarmupInstrs: 10_000, MeasureInstrs: 40_000, FlatMemCycles: 2},
}

// CalibratedSampling returns the sampling schedule to use for a
// workload: its calibration-table entry when one exists, else the
// default operating point. Every sampled surface — the sampling
// experiments, sampled serve requests, warm-start prefix discovery —
// resolves its schedule through here so the table applies uniformly.
func CalibratedSampling(name string) runtime.SamplingConfig {
	if cfg, ok := samplingCalibration[name]; ok {
		return cfg
	}
	return runtime.DefaultSamplingConfig()
}
