package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"hpmvm/internal/obs"
)

// This file is the bench-level entry point to the observability layer:
// an instrumented sweep that runs each selected workload once with the
// full monitoring + co-allocation stack and the observer attached, and
// JSON export of the per-workload metrics and event traces
// (cmd/experiments -metrics-json / -trace). The sweep is additive to
// the regular experiments — it never changes their output, which stays
// pinned byte-identical to the results/ fixtures.

// ObsRecord is one workload's observability capture.
type ObsRecord struct {
	Workload string        `json:"workload"`
	Cycles   uint64        `json:"cycles"`
	Metrics  obs.Metrics   `json:"metrics"`
	Trace    obs.TraceDump `json:"trace"`
}

// ObsSweep runs every selected workload once with monitoring,
// co-allocation and the observer attached (the full paper stack) and
// returns the per-workload captures in workload order. Runs fan out on
// the experiment engine like any other experiment.
func ObsSweep(opt ExpOptions) ([]ObsRecord, error) {
	e := opt.engine()
	names, builders, err := opt.builders()
	if err != nil {
		return nil, err
	}
	handles := make([]*RunHandle, len(names))
	for i, name := range names {
		handles[i] = e.RunAsync(builders[i], RunConfig{
			Coalloc: true,
			Seed:    opt.Seed,
			Observe: true,
		}, name+"/obs")
	}
	if err := e.Wait(); err != nil {
		return nil, err
	}
	recs := make([]ObsRecord, len(names))
	for i, name := range names {
		h := handles[i]
		recs[i] = ObsRecord{
			Workload: name,
			Cycles:   h.Result().Cycles,
			Metrics:  *h.Result().Obs,
			Trace:    h.Sys().Obs.TraceDump(),
		}
	}
	return recs, nil
}

// WriteObsMetricsJSON writes the sweep's counter/phase snapshots
// (without the event traces) as an indented JSON array.
func WriteObsMetricsJSON(w io.Writer, recs []ObsRecord) error {
	type rec struct {
		Workload string      `json:"workload"`
		Cycles   uint64      `json:"cycles"`
		Metrics  obs.Metrics `json:"metrics"`
	}
	out := make([]rec, len(recs))
	for i, r := range recs {
		out[i] = rec{Workload: r.Workload, Cycles: r.Cycles, Metrics: r.Metrics}
	}
	return writeIndentedJSON(w, out)
}

// WriteObsTraceJSON writes the sweep's event traces as an indented
// JSON array of {workload, trace} objects.
func WriteObsTraceJSON(w io.Writer, recs []ObsRecord) error {
	type rec struct {
		Workload string        `json:"workload"`
		Trace    obs.TraceDump `json:"trace"`
	}
	out := make([]rec, len(recs))
	for i, r := range recs {
		out[i] = rec{Workload: r.Workload, Trace: r.Trace}
	}
	return writeIndentedJSON(w, out)
}

func writeIndentedJSON(w io.Writer, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: obs export: %w", err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
