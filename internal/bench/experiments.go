package bench

import (
	"fmt"
	"strings"
	"time"

	"hpmvm/internal/core"
	"hpmvm/internal/stats"
)

// This file implements the regeneration of every table and figure of
// the paper's evaluation (§6). Each experiment returns both structured
// data and a formatted text rendering; cmd/experiments prints them and
// bench_test.go exposes them as Go benchmarks. EXPERIMENTS.md records
// paper-vs-measured values.

// Experiment names accepted by RunExperiment.
var ExperimentNames = []string{"table1", "table2", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "ablations", "warmstart", "sampling", "sampling-fig5", "codelayout", "swprefetch"}

// Options tunes experiment execution.
type ExpOptions struct {
	// Workloads restricts the benchmark set (nil = all registered).
	Workloads []string
	// Reps is the number of repetitions for timing experiments
	// (paper: averages over 3 executions).
	Reps int
	// Seed is the base PRNG seed.
	Seed int64
	// Jobs is the parallel engine's worker-pool width (0 = GOMAXPROCS).
	// Every run is fully isolated, so output is byte-identical for any
	// value.
	Jobs int
	// Progress, when non-nil, receives live run-completion updates.
	Progress ProgressFunc

	// eng, when set (by RunExperimentFull), is the shared engine the
	// experiment executes on, so accounting lands in one place.
	eng *Engine
	// metrics, when set (by RunExperimentFull), collects named numeric
	// headline results (e.g. the warm-start speedup) for the JSON
	// report.
	metrics map[string]float64
	// bench, when set (by RunExperimentFull), collects Go-benchmark
	// format lines ("BenchmarkFig2/<workload> ...") the experiment
	// publishes for the perf-data pipeline.
	bench *[]string
}

// recordMetric publishes a named headline number for the JSON report;
// a no-op outside RunExperimentFull.
func (o ExpOptions) recordMetric(name string, v float64) {
	if o.metrics != nil {
		o.metrics[name] = v
	}
}

// recordBench publishes one Go-benchmark format line; a no-op outside
// RunExperimentFull. nsPerOp is the mean host wall clock per run and
// simCycles the simulated cycles one run covers, so the line reads
// "Benchmark<Exp>/<workload> <N> <ns/op> ns/op <throughput> Mcycles/s".
func (o ExpOptions) recordBench(name string, n int, nsPerOp, simCycles float64) {
	if o.bench == nil || nsPerOp <= 0 {
		return
	}
	mcps := simCycles / 1e6 / (nsPerOp / 1e9)
	*o.bench = append(*o.bench,
		fmt.Sprintf("Benchmark%s\t%d\t%.0f ns/op\t%.1f Mcycles/s", name, n, nsPerOp, mcps))
}

// DefaultExpOptions mirrors the paper's methodology.
func DefaultExpOptions() ExpOptions {
	return ExpOptions{Reps: 3, Seed: 1}
}

func (o ExpOptions) workloads() []string {
	if len(o.Workloads) > 0 {
		return o.Workloads
	}
	return Names()
}

// engine returns the experiment's execution engine: the shared one
// when running under RunExperimentFull, else a fresh pool.
func (o ExpOptions) engine() *Engine {
	if o.eng != nil {
		return o.eng
	}
	e := NewEngine(o.Jobs)
	e.SetProgress(o.Progress)
	return e
}

// builders resolves the workload list to builders up front so unknown
// names fail before any run is scheduled.
func (o ExpOptions) builders() ([]string, []Builder, error) {
	names := o.workloads()
	bs := make([]Builder, len(names))
	for i, name := range names {
		b, ok := Get(name)
		if !ok {
			return nil, nil, fmt.Errorf("unknown workload %q", name)
		}
		bs[i] = b
	}
	return names, bs, nil
}

// RunExperiment dispatches by name and returns the rendered result.
func RunExperiment(name string, opt ExpOptions) (string, error) {
	switch name {
	case "table1":
		return Table1(opt), nil
	case "table2":
		return Table2(opt)
	case "fig2":
		return Fig2(opt)
	case "fig3":
		return Fig3(opt)
	case "fig4":
		return Fig4(opt)
	case "fig5":
		return Fig5(opt)
	case "fig6":
		return Fig6(opt)
	case "fig7":
		return Fig7(opt)
	case "fig8":
		return Fig8(opt)
	case "ablations":
		return Ablations(opt)
	case "warmstart":
		return Warmstart(opt)
	case "sampling":
		return Sampling(opt)
	case "sampling-fig5":
		return SamplingFig5(opt)
	case "codelayout":
		return CodeLayoutExp(opt)
	case "swprefetch":
		return SwPrefetchExp(opt)
	default:
		return "", fmt.Errorf("unknown experiment %q (have %s)", name, strings.Join(ExperimentNames, ", "))
	}
}

// ExpRun is one experiment's rendered output plus its execution
// accounting from the parallel engine.
type ExpRun struct {
	Name    string
	Output  string
	Jobs    int           // worker-pool width used
	Runs    int           // independent program runs executed
	RunTime time.Duration // summed per-run wall clock (serial-equivalent time)
	Elapsed time.Duration // actual wall clock
	// SimCycles/SimInstret sum the simulated volume of the experiment's
	// runs (see EngineStats), making simulation throughput part of the
	// perf record tracked across PRs.
	SimCycles  uint64
	SimInstret uint64
	// Metrics carries named headline numbers the experiment published
	// via recordMetric (nil when it published none).
	Metrics map[string]float64
	// BenchLines carries Go-benchmark format lines the experiment
	// published via recordBench (nil when it published none).
	BenchLines []string
}

// McyclesPerSec returns the experiment's serial-equivalent simulation
// throughput in millions of simulated cycles per second.
func (r ExpRun) McyclesPerSec() float64 {
	if r.RunTime <= 0 {
		return 0
	}
	return float64(r.SimCycles) / 1e6 / r.RunTime.Seconds()
}

// MinstrPerSec returns the experiment's serial-equivalent simulation
// throughput in millions of retired instructions per second.
func (r ExpRun) MinstrPerSec() float64 {
	if r.RunTime <= 0 {
		return 0
	}
	return float64(r.SimInstret) / 1e6 / r.RunTime.Seconds()
}

// Speedup estimates the speedup over a serial execution: the summed
// per-run wall clock divided by the elapsed wall clock. (Per-run
// results are independent of the jobs setting, so the sum of run
// durations is what a one-worker pool would have spent.)
func (r ExpRun) Speedup() float64 {
	if r.Elapsed <= 0 {
		return 1
	}
	return float64(r.RunTime) / float64(r.Elapsed)
}

// RunExperimentFull runs one experiment on a dedicated parallel engine
// and returns the rendered output together with run counts and
// wall-clock accounting.
func RunExperimentFull(name string, opt ExpOptions) (ExpRun, error) {
	e := NewEngine(opt.Jobs)
	e.SetProgress(opt.Progress)
	opt.eng = e
	opt.metrics = make(map[string]float64)
	var benchLines []string
	opt.bench = &benchLines
	start := time.Now()
	out, err := RunExperiment(name, opt)
	if err != nil {
		return ExpRun{}, err
	}
	st := e.Stats()
	r := ExpRun{
		Name:       name,
		Output:     out,
		Jobs:       st.Jobs,
		Runs:       st.Runs,
		RunTime:    st.RunTime,
		Elapsed:    time.Since(start),
		SimCycles:  st.SimCycles,
		SimInstret: st.SimInstret,
	}
	if len(opt.metrics) > 0 {
		r.Metrics = opt.metrics
	}
	r.BenchLines = benchLines
	return r, nil
}

// --- Table 1: benchmark programs -------------------------------------------

// Table1 lists the benchmark programs (the paper's Table 1). Universe
// construction fans out on the engine; rows render in registration
// order.
func Table1(opt ExpOptions) string {
	e := opt.engine()
	names := opt.workloads()
	progs := make([]*Program, len(names))
	for i, name := range names {
		builder, ok := Get(name)
		if !ok {
			continue
		}
		i := i
		e.Submit(name, func() error {
			progs[i] = builder()
			return nil
		})
	}
	_ = e.Wait()
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Benchmark programs\n")
	fmt.Fprintf(&b, "%-11s %s\n", "program", "description")
	for _, p := range progs {
		if p != nil {
			fmt.Fprintf(&b, "%-11s %s\n", p.Name, p.Description)
		}
	}
	return b.String()
}

// --- Table 2: space overhead ------------------------------------------------

// Table2Row is one program's map-space numbers in KB.
type Table2Row struct {
	Program     string
	MachineCode uint64
	GCMaps      uint64
	MCMaps      uint64
	Methods     int
}

// Table2Data computes the space overhead of the machine-code maps for
// every workload. Only boot-time compilation is needed; no execution.
// Workloads compile in parallel on the engine.
func Table2Data(opt ExpOptions) ([]Table2Row, error) {
	e := opt.engine()
	names, builders, err := opt.builders()
	if err != nil {
		return nil, err
	}
	rows := make([]Table2Row, len(names))
	for i, name := range names {
		i, name, builder := i, name, builders[i]
		e.Submit(name+"/boot", func() error {
			prog := builder()
			sys := core.NewSystem(prog.U, core.Options{Seed: opt.Seed})
			if err := sys.Boot(AllOptPlan(prog.U, 2), prog.Materialize); err != nil {
				return err
			}
			sp := sys.VM.Table.Space()
			rows[i] = Table2Row{
				Program:     name,
				MachineCode: sp.CodeBytes / 1024,
				GCMaps:      sp.GCMapBytes / 1024,
				MCMaps:      sp.MCMapBytes / 1024,
				Methods:     sp.Methods,
			}
			return nil
		})
	}
	if err := e.Wait(); err != nil {
		return nil, err
	}
	return rows, nil
}

// Table2 renders the space-overhead table (paper Table 2). The paper's
// final "boot image" row does not apply: the VM itself is the host
// simulator, not compiled guest code (see DESIGN.md).
func Table2(opt ExpOptions) (string, error) {
	rows, err := Table2Data(opt)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Space overhead — size of machine code maps (KB)\n")
	fmt.Fprintf(&b, "%-11s %8s %13s %8s %8s %9s\n", "program", "mc (KB)", "GC maps (KB)", "MC maps", "methods", "MC/GC")
	var tc, tg, tm uint64
	for _, r := range rows {
		ratio := float64(r.MCMaps) / float64(max64(r.GCMaps, 1))
		fmt.Fprintf(&b, "%-11s %8d %13d %8d %8d %8.1fx\n",
			r.Program, r.MachineCode, r.GCMaps, r.MCMaps, r.Methods, ratio)
		tc += r.MachineCode
		tg += r.GCMaps
		tm += r.MCMaps
	}
	fmt.Fprintf(&b, "%-11s %8d %13d %8d\n", "total", tc, tg, tm)
	return b.String(), nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// --- Figure 2: sampling overhead ---------------------------------------------

// Fig2Intervals are the hardware sampling intervals the paper sweeps
// (25K, 50K, 100K events), scaled by the ~1/100 run-length factor of
// the simulation (DESIGN.md §7): the interval-to-event-volume ratio —
// what determines both overhead and coverage — matches the paper's.
var Fig2Intervals = []uint64{250, 500, 1000, 0} // 0 = auto

// Fig2Labels name the sweep points with their paper-scale equivalents.
var Fig2Labels = []string{"25K~", "50K~", "100K~", "auto"}

// Fig2Row is one program's overhead series.
type Fig2Row struct {
	Program  string
	Baseline float64   // mean cycles without monitoring
	Overhead []float64 // fractional overhead per interval (Fig2Intervals order)
}

// Fig2Data measures execution-time overhead of runtime event sampling
// (monitoring on, co-allocation off) against the unmonitored baseline
// at heap 4x (paper Figure 2). The whole (workload × interval × rep)
// grid fans out on the engine; rows assemble in workload order.
func Fig2Data(opt ExpOptions) ([]Fig2Row, error) {
	e := opt.engine()
	names, builders, err := opt.builders()
	if err != nil {
		return nil, err
	}
	type cell struct {
		base *RepeatHandle
		mon  []*RepeatHandle
	}
	cells := make([]cell, len(names))
	for i, name := range names {
		builder := builders[i]
		cells[i].base = e.RepeatAsync(builder, RunConfig{Seed: opt.Seed}, opt.Reps, name+"/base")
		for j, iv := range Fig2Intervals {
			cells[i].mon = append(cells[i].mon, e.RepeatAsync(builder, RunConfig{
				Monitoring: true, Interval: iv, Seed: opt.Seed,
			}, opt.Reps, fmt.Sprintf("%s/%s", name, Fig2Labels[j])))
		}
	}
	if err := e.Wait(); err != nil {
		return nil, err
	}
	rows := make([]Fig2Row, len(names))
	for i, name := range names {
		base := cells[i].base.Mean()
		row := Fig2Row{Program: name, Baseline: base}
		for _, m := range cells[i].mon {
			row.Overhead = append(row.Overhead, m.Mean()/base-1)
		}
		rows[i] = row
		opt.recordBench("Fig2/"+name, opt.Reps, cells[i].base.MeanWallNs(), base)
	}
	return rows, nil
}

// Fig2 renders the sampling-overhead figure.
func Fig2(opt ExpOptions) (string, error) {
	rows, err := Fig2Data(opt)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: Execution time overhead of event sampling vs baseline (heap = 4x min)\n")
	fmt.Fprintf(&b, "(intervals are the paper's 25K/50K/100K scaled by the 1/100 run-length factor)\n")
	fmt.Fprintf(&b, "%-11s %8s %8s %8s %8s\n", "program", Fig2Labels[0], Fig2Labels[1], Fig2Labels[2], Fig2Labels[3])
	means := make([]float64, len(Fig2Intervals))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s", r.Program)
		for i, ov := range r.Overhead {
			fmt.Fprintf(&b, " %7.2f%%", 100*ov)
			means[i] += ov
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "%-11s", "average")
	for i := range means {
		fmt.Fprintf(&b, " %7.2f%%", 100*means[i]/float64(len(rows)))
	}
	fmt.Fprintln(&b)
	return b.String(), nil
}

// --- Sampled fig2: estimated vs exact ----------------------------------------

// SamplingRow is one program's estimated-vs-exact comparison: the
// exact fig2 cell means next to the multiplexed sampled pass's
// estimates, in cycles.
type SamplingRow struct {
	Program   string
	ExactBase float64
	EstBase   float64
	ExactMon  []float64 // mean exact monitored cycles per interval (Fig2Intervals order)
	EstMon    []float64 // mean estimated monitored cycles per interval
}

// Errs returns the signed relative estimation error of every cell in
// row order: baseline first, then the monitored intervals.
func (r SamplingRow) Errs() []float64 {
	errs := []float64{r.EstBase/r.ExactBase - 1}
	for j := range r.ExactMon {
		errs = append(errs, r.EstMon[j]/r.ExactMon[j]-1)
	}
	return errs
}

// SamplingData runs the full fig2 grid twice — exactly, and as one
// multiplexed sampled pass per workload (see RunSampledPass) — and
// returns the per-cell comparison plus the serial-equivalent wall
// clock each half consumed. The exact grid is (1 baseline + 4
// intervals) × reps runs per workload; the sampled half is a single
// pass per workload hosting all of them as lanes, which is where the
// wall-clock speedup comes from. Each pass runs the workload's
// calibrated schedule (see CalibratedSampling).
func SamplingData(opt ExpOptions) (rows []SamplingRow, exactTime, sampledTime time.Duration, err error) {
	e := opt.engine()
	names, builders, err := opt.builders()
	if err != nil {
		return nil, 0, 0, err
	}

	// Round 1: the exact fig2 grid, cell for cell.
	type cell struct {
		base *RepeatHandle
		mon  []*RepeatHandle
	}
	rt0 := e.Stats().RunTime
	cells := make([]cell, len(names))
	for i, name := range names {
		builder := builders[i]
		cells[i].base = e.RepeatAsync(builder, RunConfig{Seed: opt.Seed}, opt.Reps, name+"/exact-base")
		for j, iv := range Fig2Intervals {
			cells[i].mon = append(cells[i].mon, e.RepeatAsync(builder, RunConfig{
				Monitoring: true, Interval: iv, Seed: opt.Seed,
			}, opt.Reps, fmt.Sprintf("%s/exact-%s", name, Fig2Labels[j])))
		}
	}
	if err := e.Wait(); err != nil {
		return nil, 0, 0, err
	}
	exactTime = e.Stats().RunTime - rt0

	// Round 2: one multiplexed sampled pass per workload, each on its
	// calibrated schedule.
	passes := make([]*SampledPass, len(names))
	wallNs := make([]float64, len(names))
	rt1 := e.Stats().RunTime
	for i := range names {
		i := i
		builder := builders[i]
		e.Submit(names[i]+"/sampled", func() error {
			start := time.Now()
			p, err := RunSampledPass(builder, RunConfig{Seed: opt.Seed}, Fig2Intervals, opt.Reps)
			if err != nil {
				return err
			}
			e.AddSim(p.Cycles, p.Instret)
			wallNs[i] = float64(time.Since(start).Nanoseconds())
			passes[i] = p
			return nil
		})
	}
	if err := e.Wait(); err != nil {
		return nil, 0, 0, err
	}
	sampledTime = e.Stats().RunTime - rt1

	rows = make([]SamplingRow, len(names))
	for i, name := range names {
		p := passes[i]
		row := SamplingRow{
			Program:   name,
			ExactBase: cells[i].base.Mean(),
			EstBase:   p.Estimate.Cycles,
		}
		for j := range Fig2Intervals {
			row.ExactMon = append(row.ExactMon, cells[i].mon[j].Mean())
			row.EstMon = append(row.EstMon, stats.Mean(p.MonCycles[j]))
		}
		rows[i] = row
		opt.recordBench("Fig2Sampled/"+name, 1, wallNs[i], p.Estimate.Cycles)
	}
	return rows, exactTime, sampledTime, nil
}

// Sampling renders the sampled-simulation validation: per-cell
// estimation error of the multiplexed pass against the exact fig2
// grid, and the wall-clock speedup of replacing the grid with one
// sampled pass per workload. Headline numbers land in the JSON report
// as sampling_speedup / sampling_max_err_pct / sampling_mean_err_pct.
func Sampling(opt ExpOptions) (string, error) {
	rows, exactTime, sampledTime, err := SamplingData(opt)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Sampled fig2: estimated vs exact full-run cycles (heap = 4x min)\n")
	fmt.Fprintf(&b, "(one multiplexed sampled pass per workload hosts the baseline and all\n")
	fmt.Fprintf(&b, " %d monitored lanes of the exact grid; error is est/exact - 1 per cell)\n",
		len(Fig2Intervals)*opt.Reps)
	fmt.Fprintf(&b, "%-11s %8s %8s %8s %8s %8s\n", "program",
		"base", Fig2Labels[0], Fig2Labels[1], Fig2Labels[2], Fig2Labels[3])
	var maxErr, sumErr float64
	var worst string
	cellLabels := append([]string{"base"}, Fig2Labels...)
	ncells := 0
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s", r.Program)
		for c, e := range r.Errs() {
			fmt.Fprintf(&b, " %+7.2f%%", 100*e)
			ae := e
			if ae < 0 {
				ae = -ae
			}
			sumErr += ae
			ncells++
			if ae > maxErr {
				maxErr = ae
				worst = r.Program + "/" + cellLabels[c]
			}
		}
		fmt.Fprintln(&b)
	}
	meanErr := sumErr / float64(ncells)
	speedup := float64(exactTime) / float64(sampledTime)
	fmt.Fprintf(&b, "\nmean |error| %.2f%%, worst |error| %.2f%% (%s)\n",
		100*meanErr, 100*maxErr, worst)
	fmt.Fprintf(&b, "exact grid %v serial-equivalent, sampled passes %v -> %.1fx speedup\n",
		exactTime.Round(time.Millisecond), sampledTime.Round(time.Millisecond), speedup)
	opt.recordMetric("sampling_speedup", speedup)
	opt.recordMetric("sampling_max_err_pct", 100*maxErr)
	opt.recordMetric("sampling_mean_err_pct", 100*meanErr)
	return b.String(), nil
}

// --- Sampled fig5: estimated vs exact across heap sizes -----------------------

// SamplingFig5Row is one program's estimated-vs-exact comparison
// across the fig5 heap-size axis, in cycles: exact baseline and
// monitored (auto interval) means next to the sampled pass's
// estimates, per heap factor (Fig5Factors order).
type SamplingFig5Row struct {
	Program   string
	ExactBase []float64
	EstBase   []float64
	ExactMon  []float64
	EstMon    []float64
}

// Errs returns the signed relative estimation error of every cell:
// for each heap factor, baseline then monitored.
func (r SamplingFig5Row) Errs() []float64 {
	var errs []float64
	for j := range r.ExactBase {
		errs = append(errs, r.EstBase[j]/r.ExactBase[j]-1, r.EstMon[j]/r.ExactMon[j]-1)
	}
	return errs
}

// SamplingFig5Data runs the fig5 heap-size axis twice — exactly
// (baseline + monitored-auto, reps each, per heap point) and as one
// multiplexed sampled pass per heap point hosting the baseline plus
// reps monitored-auto lanes — and returns the per-cell comparison plus
// the serial-equivalent wall clock of each half.
//
// The sampled half covers fig5's heap-size axis with monitoring, not
// fig5's co-allocation configuration: co-allocation cannot ride a
// lane. Its whole point is feeding samples back into GC placement
// decisions, which changes object addresses and therefore the shared
// cache-state evolution — it is a different architectural stream, not
// an overhead on a shared one (DESIGN.md §12). Monitoring, by
// contract, only adds cycles.
func SamplingFig5Data(opt ExpOptions) (rows []SamplingFig5Row, exactTime, sampledTime time.Duration, err error) {
	e := opt.engine()
	names, builders, err := opt.builders()
	if err != nil {
		return nil, 0, 0, err
	}

	// Round 1: the exact grid — baseline and monitored-auto, per point.
	type cell struct{ base, mon *RepeatHandle }
	rt0 := e.Stats().RunTime
	cells := make([][]cell, len(names))
	for i, name := range names {
		builder := builders[i]
		cells[i] = make([]cell, len(Fig5Factors))
		for j, f := range Fig5Factors {
			label := fmt.Sprintf("%s/%gx", name, f)
			cells[i][j].base = e.RepeatAsync(builder,
				RunConfig{HeapFactor: f, Seed: opt.Seed}, opt.Reps, label+"/exact-base")
			cells[i][j].mon = e.RepeatAsync(builder,
				RunConfig{HeapFactor: f, Monitoring: true, Seed: opt.Seed}, opt.Reps, label+"/exact-auto")
		}
	}
	if err := e.Wait(); err != nil {
		return nil, 0, 0, err
	}
	exactTime = e.Stats().RunTime - rt0

	// Round 2: one sampled pass per (workload × heap point) with reps
	// auto-interval lanes, on the workload's calibrated schedule.
	passes := make([][]*SampledPass, len(names))
	rt1 := e.Stats().RunTime
	for i := range names {
		i := i
		builder := builders[i]
		passes[i] = make([]*SampledPass, len(Fig5Factors))
		for j, f := range Fig5Factors {
			j, f := j, f
			e.Submit(fmt.Sprintf("%s/%gx/sampled", names[i], f), func() error {
				p, err := RunSampledPass(builder,
					RunConfig{HeapFactor: f, Seed: opt.Seed}, []uint64{0}, opt.Reps)
				if err != nil {
					return err
				}
				e.AddSim(p.Cycles, p.Instret)
				passes[i][j] = p
				return nil
			})
		}
	}
	if err := e.Wait(); err != nil {
		return nil, 0, 0, err
	}
	sampledTime = e.Stats().RunTime - rt1

	rows = make([]SamplingFig5Row, len(names))
	for i, name := range names {
		row := SamplingFig5Row{Program: name}
		for j := range Fig5Factors {
			p := passes[i][j]
			row.ExactBase = append(row.ExactBase, cells[i][j].base.Mean())
			row.EstBase = append(row.EstBase, p.Estimate.Cycles)
			row.ExactMon = append(row.ExactMon, cells[i][j].mon.Mean())
			row.EstMon = append(row.EstMon, stats.Mean(p.MonCycles[0]))
		}
		rows[i] = row
	}
	return rows, exactTime, sampledTime, nil
}

// SamplingFig5 renders the sampled heap-size sweep validation: per-cell
// estimation error of the sampled passes against the exact grid, and
// the wall-clock speedup of replacing each heap point's 2×reps exact
// runs with one multiplexed pass. Headline numbers land in the JSON
// report as sampling_fig5_speedup / sampling_fig5_max_err_pct /
// sampling_fig5_mean_err_pct.
func SamplingFig5(opt ExpOptions) (string, error) {
	rows, exactTime, sampledTime, err := SamplingFig5Data(opt)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Sampled fig5: estimated vs exact full-run cycles across heap sizes\n")
	fmt.Fprintf(&b, "(per heap point, one multiplexed sampled pass hosts the baseline and %d\n", opt.Reps)
	fmt.Fprintf(&b, " monitored-auto lanes, replacing %d exact runs; co-allocation cannot be\n", 2*opt.Reps)
	fmt.Fprintf(&b, " multiplexed — its feedback changes the architectural stream — so the\n")
	fmt.Fprintf(&b, " sampled sweep covers the monitored heap-size axis; error per cell, b=base m=monitored)\n")
	fmt.Fprintf(&b, "%-11s", "program")
	for _, f := range Fig5Factors {
		fmt.Fprintf(&b, " %8s %8s", fmt.Sprintf("%gx b", f), fmt.Sprintf("%gx m", f))
	}
	fmt.Fprintln(&b)
	var maxErr, sumErr float64
	var worst string
	ncells := 0
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s", r.Program)
		for c, e := range r.Errs() {
			fmt.Fprintf(&b, " %+7.2f%%", 100*e)
			ae := e
			if ae < 0 {
				ae = -ae
			}
			sumErr += ae
			ncells++
			if ae > maxErr {
				maxErr = ae
				kind := "base"
				if c%2 == 1 {
					kind = "mon"
				}
				worst = fmt.Sprintf("%s/%gx/%s", r.Program, Fig5Factors[c/2], kind)
			}
		}
		fmt.Fprintln(&b)
	}
	meanErr := sumErr / float64(ncells)
	speedup := float64(exactTime) / float64(sampledTime)
	fmt.Fprintf(&b, "\nmean |error| %.2f%%, worst |error| %.2f%% (%s)\n",
		100*meanErr, 100*maxErr, worst)
	fmt.Fprintf(&b, "exact grid %v serial-equivalent, sampled passes %v -> %.1fx speedup\n",
		exactTime.Round(time.Millisecond), sampledTime.Round(time.Millisecond), speedup)
	opt.recordMetric("sampling_fig5_speedup", speedup)
	opt.recordMetric("sampling_fig5_max_err_pct", 100*maxErr)
	opt.recordMetric("sampling_fig5_mean_err_pct", 100*meanErr)
	return b.String(), nil
}

// --- Figure 3: co-allocated objects per interval ------------------------------

// Fig3Row is one program's co-allocation counts per sampling interval.
type Fig3Row struct {
	Program string
	Pairs   []uint64 // per interval (25K, 50K, 100K)
}

// Fig3Intervals are the sweep points for Figure 3 (the paper's 25K /
// 50K / 100K scaled like Fig2Intervals).
var Fig3Intervals = []uint64{250, 500, 1000}

// Fig3Data counts co-allocated object pairs at different sampling
// intervals (heap = 4x min, paper Figure 3; log-scale plot). All
// (workload × interval) runs execute in parallel.
func Fig3Data(opt ExpOptions) ([]Fig3Row, error) {
	e := opt.engine()
	names, builders, err := opt.builders()
	if err != nil {
		return nil, err
	}
	handles := make([][]*RunHandle, len(names))
	for i, name := range names {
		for _, iv := range Fig3Intervals {
			handles[i] = append(handles[i], e.RunAsync(builders[i],
				RunConfig{Coalloc: true, Interval: iv, Seed: opt.Seed},
				fmt.Sprintf("%s/iv=%d", name, iv)))
		}
	}
	if err := e.Wait(); err != nil {
		return nil, err
	}
	rows := make([]Fig3Row, len(names))
	for i, name := range names {
		rows[i] = Fig3Row{Program: name}
		for _, h := range handles[i] {
			rows[i].Pairs = append(rows[i].Pairs, h.Result().CoallocPairs)
		}
	}
	return rows, nil
}

// Fig3 renders the co-allocation count sweep.
func Fig3(opt ExpOptions) (string, error) {
	rows, err := Fig3Data(opt)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: Number of co-allocated objects at different sampling intervals (heap = 4x)\n")
	fmt.Fprintf(&b, "(intervals are the paper's 25K/50K/100K scaled by the 1/100 run-length factor)\n")
	fmt.Fprintf(&b, "%-11s %10s %10s %10s\n", "program", "25K~", "50K~", "100K~")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %10d %10d %10d\n", r.Program, r.Pairs[0], r.Pairs[1], r.Pairs[2])
	}
	return b.String(), nil
}

// --- Figure 4: L1 miss reduction ----------------------------------------------

// Fig4Row is one program's miss numbers.
type Fig4Row struct {
	Program   string
	BaseL1    uint64
	CoL1      uint64
	Reduction float64 // fraction of L1 misses removed
	Pairs     uint64
}

// Fig4Data measures the L1 miss reduction with co-allocation on versus
// the GenMS baseline at heap 4x (paper Figure 4), auto interval. The
// baseline and co-allocation runs of every workload all execute in
// parallel.
func Fig4Data(opt ExpOptions) ([]Fig4Row, error) {
	e := opt.engine()
	names, builders, err := opt.builders()
	if err != nil {
		return nil, err
	}
	type cell struct{ base, co *RunHandle }
	cells := make([]cell, len(names))
	for i, name := range names {
		cells[i].base = e.RunAsync(builders[i], RunConfig{Seed: opt.Seed}, name+"/base")
		cells[i].co = e.RunAsync(builders[i], RunConfig{Coalloc: true, Interval: 0, Seed: opt.Seed}, name+"/coalloc")
	}
	if err := e.Wait(); err != nil {
		return nil, err
	}
	rows := make([]Fig4Row, len(names))
	for i, name := range names {
		base, co := cells[i].base.Result(), cells[i].co.Result()
		rows[i] = Fig4Row{
			Program:   name,
			BaseL1:    base.Cache.L1Misses,
			CoL1:      co.Cache.L1Misses,
			Reduction: 1 - float64(co.Cache.L1Misses)/float64(max64(base.Cache.L1Misses, 1)),
			Pairs:     co.CoallocPairs,
		}
	}
	return rows, nil
}

// Fig4 renders the miss-reduction figure.
func Fig4(opt ExpOptions) (string, error) {
	rows, err := Fig4Data(opt)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: L1 miss reduction with co-allocation (heap = 4x min, auto interval)\n")
	fmt.Fprintf(&b, "%-11s %12s %12s %10s %10s\n", "program", "base L1", "coalloc L1", "reduction", "pairs")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %12d %12d %9.1f%% %10d\n",
			r.Program, r.BaseL1, r.CoL1, 100*r.Reduction, r.Pairs)
	}
	return b.String(), nil
}

// --- Figure 5: execution time across heap sizes -------------------------------

// Fig5Factors are the heap-size multiples the paper sweeps.
var Fig5Factors = []float64{1, 1.5, 2, 3, 4}

// Fig5Row is one program's normalized execution times.
type Fig5Row struct {
	Program    string
	Normalized []float64 // coalloc time / baseline time per heap factor
	StdDev     []float64
}

// Fig5Data measures normalized execution time (co-allocation vs GenMS
// baseline) across heap sizes 1x–4x with the auto-selected sampling
// interval (paper Figure 5). The full (workload × heap factor × config
// × rep) grid fans out on the engine.
func Fig5Data(opt ExpOptions) ([]Fig5Row, error) {
	e := opt.engine()
	names, builders, err := opt.builders()
	if err != nil {
		return nil, err
	}
	type cell struct{ base, co *RepeatHandle }
	cells := make([][]cell, len(names))
	for i, name := range names {
		cells[i] = make([]cell, len(Fig5Factors))
		for j, f := range Fig5Factors {
			label := fmt.Sprintf("%s/%gx", name, f)
			cells[i][j].base = e.RepeatAsync(builders[i],
				RunConfig{HeapFactor: f, Seed: opt.Seed}, opt.Reps, label+"/base")
			cells[i][j].co = e.RepeatAsync(builders[i],
				RunConfig{HeapFactor: f, Coalloc: true, Seed: opt.Seed}, opt.Reps, label+"/coalloc")
		}
	}
	if err := e.Wait(); err != nil {
		return nil, err
	}
	rows := make([]Fig5Row, len(names))
	for i, name := range names {
		row := Fig5Row{Program: name}
		for j := range Fig5Factors {
			base, co := cells[i][j].base, cells[i][j].co
			row.Normalized = append(row.Normalized, co.Mean()/base.Mean())
			row.StdDev = append(row.StdDev, (base.StdDev()+co.StdDev())/(2*base.Mean()))
		}
		rows[i] = row
	}
	return rows, nil
}

// Fig5 renders the heap-size sweep.
func Fig5(opt ExpOptions) (string, error) {
	rows, err := Fig5Data(opt)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: Execution time with co-allocation relative to baseline (auto interval)\n")
	fmt.Fprintf(&b, "%-11s", "program")
	for _, f := range Fig5Factors {
		fmt.Fprintf(&b, " %7.1fx", f)
	}
	fmt.Fprintf(&b, " %9s\n", "max σ")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s", r.Program)
		for _, v := range r.Normalized {
			fmt.Fprintf(&b, " %8.3f", v)
		}
		maxSD := 0.0
		for _, sd := range r.StdDev {
			if sd > maxSD {
				maxSD = sd
			}
		}
		fmt.Fprintf(&b, " %8.4f\n", maxSD)
	}
	fmt.Fprintf(&b, "(σ is the relative standard deviation over repetitions; the paper\n")
	fmt.Fprintf(&b, " reports these to be very small in practice, §6.1)\n")
	return b.String(), nil
}

// --- Figure 6: GenCopy vs GenMS+coalloc on db ---------------------------------

// Fig6Row holds db times for one heap factor.
type Fig6Row struct {
	Factor    float64
	GenMSBase float64
	GenMSCo   float64
	GenCopy   float64
}

// Fig6Data compares collectors on db across heap sizes (paper Figure
// 6): GenMS baseline, GenMS with co-allocation, and GenCopy. Values
// are mean cycles. All (heap factor × collector × rep) runs execute in
// parallel.
func Fig6Data(opt ExpOptions) ([]Fig6Row, error) {
	builder, ok := Get("db")
	if !ok {
		return nil, fmt.Errorf("db workload not registered")
	}
	e := opt.engine()
	type cell struct{ base, co, gc *RepeatHandle }
	cells := make([]cell, len(Fig5Factors))
	for j, f := range Fig5Factors {
		label := fmt.Sprintf("db/%gx", f)
		cells[j].base = e.RepeatAsync(builder,
			RunConfig{HeapFactor: f, Seed: opt.Seed}, opt.Reps, label+"/genms")
		cells[j].co = e.RepeatAsync(builder,
			RunConfig{HeapFactor: f, Coalloc: true, Seed: opt.Seed}, opt.Reps, label+"/genms+co")
		cells[j].gc = e.RepeatAsync(builder,
			RunConfig{HeapFactor: f, Collector: core.GenCopy, Seed: opt.Seed}, opt.Reps, label+"/gencopy")
	}
	if err := e.Wait(); err != nil {
		return nil, err
	}
	rows := make([]Fig6Row, len(Fig5Factors))
	for j, f := range Fig5Factors {
		rows[j] = Fig6Row{
			Factor:    f,
			GenMSBase: cells[j].base.Mean(),
			GenMSCo:   cells[j].co.Mean(),
			GenCopy:   cells[j].gc.Mean(),
		}
	}
	return rows, nil
}

// Fig6 renders the collector comparison (normalized to GenMS baseline
// at each heap size).
func Fig6(opt ExpOptions) (string, error) {
	rows, err := Fig6Data(opt)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: db — GenCopy vs GenMS with co-allocation (normalized to GenMS baseline)\n")
	fmt.Fprintf(&b, "%6s %12s %12s %12s %14s\n", "heap", "GenMS", "GenMS+co", "GenCopy", "co vs GenCopy")
	for _, r := range rows {
		fmt.Fprintf(&b, "%5.1fx %12.3f %12.3f %12.3f %13.1f%%\n",
			r.Factor, 1.0, r.GenMSCo/r.GenMSBase, r.GenCopy/r.GenMSBase,
			100*(1-r.GenMSCo/r.GenCopy))
	}
	return b.String(), nil
}

// --- Figure 7: runtime feedback on db ------------------------------------------

// Fig7Data runs db twice — monitoring only, and with co-allocation —
// while tracking String::value, and returns for each run the
// cumulative estimated miss series plus the coalloc run's per-period
// miss-rate series with its 3-period moving average (paper Figure 7:
// the dyn-coalloc curve bends when co-allocation kicks in; the
// baseline keeps climbing).
func Fig7Data(opt ExpOptions) (baseCum, coCum, rate, smooth *stats.Series, err error) {
	builder, ok := Get("db")
	if !ok {
		return nil, nil, nil, nil, fmt.Errorf("db workload not registered")
	}
	hotField := builder().HotFieldName

	e := opt.engine()
	hBase := e.RunAsync(builder, RunConfig{Monitoring: true, Interval: 2500, Seed: opt.Seed}, "db/monitor")
	hCo := e.RunAsync(builder, RunConfig{Coalloc: true, Interval: 2500, Seed: opt.Seed}, "db/coalloc")
	if err := e.Wait(); err != nil {
		return nil, nil, nil, nil, err
	}

	extract := func(h *RunHandle) (*stats.Series, *stats.Series, error) {
		for _, fc := range h.Sys().Monitor.HotFields() {
			if fc.Field.QualifiedName() == hotField {
				return &fc.Series, &fc.RateSeries, nil
			}
		}
		return nil, nil, fmt.Errorf("fig7: field %s received no samples", hotField)
	}

	baseRaw, _, err := extract(hBase)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	coRaw, coRate, err := extract(hCo)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return baseRaw.Cumulative(), coRaw.Cumulative(), coRate, coRate.Smoothed(3), nil
}

// Fig7 renders the feedback time series.
func Fig7(opt ExpOptions) (string, error) {
	baseCum, coCum, rate, smooth, err := Fig7Data(opt)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7a: db — cumulative String::value misses (baseline vs dyn-coalloc)\n")
	fmt.Fprintf(&b, "%14s %14s      %14s %14s\n", "cycle", "baseline-cum", "cycle", "coalloc-cum")
	n := len(baseCum.Samples)
	if len(coCum.Samples) > n {
		n = len(coCum.Samples)
	}
	for i := 0; i < n; i++ {
		bc, bv, cc, cv := "", "", "", ""
		if i < len(baseCum.Samples) {
			bc = fmt.Sprintf("%14d", baseCum.Samples[i].Time)
			bv = fmt.Sprintf("%14.0f", baseCum.Samples[i].Value)
		}
		if i < len(coCum.Samples) {
			cc = fmt.Sprintf("%14d", coCum.Samples[i].Time)
			cv = fmt.Sprintf("%14.0f", coCum.Samples[i].Value)
		}
		fmt.Fprintf(&b, "%14s %14s      %14s %14s\n", bc, bv, cc, cv)
	}
	if bl, cl := baseCum.Last(), coCum.Last(); bl > 0 {
		fmt.Fprintf(&b, "\ntotal String::value misses: baseline %.0f, dyn-coalloc %.0f (%.0f%% reduction on those objects)\n",
			bl, cl, 100*(1-cl/bl))
	}
	fmt.Fprintf(&b, "\nFigure 7b: dyn-coalloc miss rate over time (misses/Mcycle)\n")
	fmt.Fprintf(&b, "%14s %14s %14s\n", "cycle", "rate", "moving-avg(3)")
	for i := range rate.Samples {
		fmt.Fprintf(&b, "%14d %14.0f %14.1f\n",
			rate.Samples[i].Time, rate.Samples[i].Value, smooth.Samples[i].Value)
	}
	return b.String(), nil
}

// --- Figure 8: detecting a poor placement ---------------------------------------

// Fig8GapAtCycle is the point of the Figure 8 manual intervention:
// db starts out with a good (adjacent) allocation order, and at this
// cycle the GC is instructed to place one cache line of empty space
// between the String and char[] objects. The monitoring loop must
// discover the regression and switch back.
const Fig8GapAtCycle = 120_000_000

// Fig8Data runs the Figure 8 scenario and returns the String::value
// miss-rate series and the policy's decision log. (A single run; it
// still executes on the engine so accounting and progress are
// uniform.)
func Fig8Data(opt ExpOptions) (*stats.Series, []string, error) {
	builder, ok := Get("db")
	if !ok {
		return nil, nil, fmt.Errorf("db workload not registered")
	}
	e := opt.engine()
	h := e.RunAsync(builder, RunConfig{Coalloc: true, GapAtCycle: Fig8GapAtCycle, Interval: 2500, Seed: opt.Seed}, "db/gap")
	if err := e.Wait(); err != nil {
		return nil, nil, err
	}
	sys := h.Sys()
	for _, fc := range sys.Monitor.HotFields() {
		if fc.Field.QualifiedName() == "String::value" {
			return &fc.RateSeries, sys.Policy.Events(), nil
		}
	}
	return nil, nil, fmt.Errorf("fig8: String::value received no samples")
}

// Fig8 renders the poor-placement detection experiment.
func Fig8(opt ExpOptions) (string, error) {
	series, events, err := Fig8Data(opt)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: db — misses for String objects with a deliberately poor placement\n")
	fmt.Fprintf(&b, "(one cache line of padding between String and char[]; the feedback loop\n")
	fmt.Fprintf(&b, " detects that the placement does not help and reverts to adjacent placement)\n\n")
	fmt.Fprintf(&b, "policy decisions:\n")
	for _, e := range events {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	fmt.Fprintf(&b, "\n%14s %14s\n", "cycle", "misses/Mcycle")
	for _, s := range series.Samples {
		fmt.Fprintf(&b, "%14d %14.0f\n", s.Time, s.Value)
	}
	return b.String(), nil
}
