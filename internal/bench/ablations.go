package bench

import (
	"fmt"
	"strings"

	"hpmvm/internal/core"
	"hpmvm/internal/hw/cache"
)

// Ablation experiments for the design choices DESIGN.md calls out.
// They are not paper figures, but each one probes a claim the paper
// makes in passing:
//
//   - event choice: "(Using TLB misses as driver for the optimization
//     decisions does not improve the results.)" (§6.3)
//   - prefetching: the P4's hardware prefetcher interacts with spatial
//     locality optimizations (§6.1 mentions the prefetcher explicitly)
//   - inlining: the opt compiler's inlining is what exposes access
//     paths to the §5.2 analysis inside hot loops
//
// All ablations run the db workload, the paper's headline case.

// Ablations runs the ablation suite on db and renders the results.
// The seven independent runs (three configurations per ablation, two
// of them shared) all execute in parallel on the engine; the report
// renders in a fixed order afterwards.
func Ablations(opt ExpOptions) (string, error) {
	builder, ok := Get("db")
	if !ok {
		return "", fmt.Errorf("db workload not registered")
	}
	e := opt.engine()

	submit := func(label string, cfg RunConfig) *RunHandle {
		cfg.Seed = opt.Seed
		return e.RunAsync(builder, cfg, "db/"+label)
	}
	nopfCache := cache.DefaultP4()
	nopfCache.PrefetchEnabled = false
	submitCache := func(label string, cfg RunConfig) *RunHandle {
		cfg.Seed = opt.Seed
		h := &RunHandle{}
		e.Submit("db/"+label, func() error {
			res, err := runWithCache(builder, cfg, nopfCache)
			if err != nil {
				return err
			}
			e.AddSim(res.Cycles, res.Instret)
			h.res = res
			return nil
		})
		return h
	}

	hBase := submit("base", RunConfig{})
	hL1co := submit("coalloc-l1", RunConfig{Coalloc: true})
	hTLBco := submit("coalloc-tlb", RunConfig{Coalloc: true, Event: cache.EventDTLBMiss})
	hBasePF := submitCache("nopf-base", RunConfig{})
	hCoPF := submitCache("nopf-coalloc", RunConfig{Coalloc: true})
	hBase1 := submit("opt1-base", RunConfig{OptLevel: 1})
	hCo1 := submit("opt1-coalloc", RunConfig{OptLevel: 1, Coalloc: true})
	if err := e.Wait(); err != nil {
		return "", err
	}
	base, l1co, tlbco := hBase.Result(), hL1co.Result(), hTLBco.Result()
	basePF, coPF := hBasePF.Result(), hCoPF.Result()
	base1, co1 := hBase1.Result(), hCo1.Result()

	var b strings.Builder
	fmt.Fprintf(&b, "Ablations on db (heap = 4x min)\n\n")

	// --- Event choice: L1- vs DTLB-driven co-allocation ---------------
	fmt.Fprintf(&b, "event choice (paper §6.3: TLB-driven guidance does not improve results)\n")
	fmt.Fprintf(&b, "%-22s %14s %12s %8s %9s\n", "config", "cycles", "L1 misses", "pairs", "speedup")
	row := func(name string, r *Result, against *Result) {
		fmt.Fprintf(&b, "%-22s %14d %12d %8d %8.1f%%\n",
			name, r.Cycles, r.Cache.L1Misses, r.CoallocPairs,
			100*(1-float64(r.Cycles)/float64(against.Cycles)))
	}
	row("baseline", base, base)
	row("coalloc (L1-driven)", l1co, base)
	row("coalloc (TLB-driven)", tlbco, base)
	fmt.Fprintln(&b)

	// --- Hardware prefetcher on/off ------------------------------------
	fmt.Fprintf(&b, "hardware prefetcher (co-allocation benefit with and without it)\n")
	fmt.Fprintf(&b, "%-22s %14s %12s %9s\n", "config", "cycles", "L1 misses", "speedup")
	fmt.Fprintf(&b, "%-22s %14d %12d %9s\n", "prefetch on, base", base.Cycles, base.Cache.L1Misses, "-")
	fmt.Fprintf(&b, "%-22s %14d %12d %8.1f%%\n", "prefetch on, coalloc",
		l1co.Cycles, l1co.Cache.L1Misses, 100*(1-float64(l1co.Cycles)/float64(base.Cycles)))
	fmt.Fprintf(&b, "%-22s %14d %12d %9s\n", "prefetch off, base", basePF.Cycles, basePF.Cache.L1Misses, "-")
	fmt.Fprintf(&b, "%-22s %14d %12d %8.1f%%\n", "prefetch off, coalloc",
		coPF.Cycles, coPF.Cache.L1Misses, 100*(1-float64(coPF.Cycles)/float64(basePF.Cycles)))
	fmt.Fprintln(&b)

	// --- Inlining: opt level 1 (no inlining) vs 2 ----------------------
	fmt.Fprintf(&b, "inlining (access paths inside hot loops are visible only after inlining)\n")
	fmt.Fprintf(&b, "%-22s %14s %12s %8s %9s\n", "config", "cycles", "L1 misses", "pairs", "speedup")
	row("opt1 base", base1, base1)
	row("opt1 coalloc", co1, base1)
	row("opt2 base", base, base)
	row("opt2 coalloc", l1co, base)
	return b.String(), nil
}

func newSystemWithCache(prog *Program, cfg RunConfig, heapBytes uint64, cc cache.Config) *core.System {
	return core.NewSystem(prog.U, core.Options{
		Cache:            cc,
		Collector:        cfg.Collector,
		HeapLimit:        heapBytes,
		Monitoring:       cfg.Monitoring,
		SamplingInterval: cfg.Interval,
		Event:            cfg.Event,
		Coalloc:          cfg.Coalloc,
		Seed:             cfg.Seed,
	})
}

// runWithCache runs a workload with a custom cache configuration.
func runWithCache(builder Builder, cfg RunConfig, cc cache.Config) (*Result, error) {
	// Reuse Run by threading the cache config through a copy of the
	// core options; Run constructs the system itself, so this helper
	// duplicates the small amount of glue.
	prog := builder()
	heapBytes := cfg.Heap
	if heapBytes == 0 {
		f := cfg.HeapFactor
		if f == 0 {
			f = 4
		}
		heapBytes = uint64(f * float64(prog.MinHeap))
	}
	if cfg.Coalloc {
		cfg.Monitoring = true
	}
	sys := newSystemWithCache(prog, cfg, heapBytes, cc)
	plan := cfg.Plan
	if plan == nil {
		level := cfg.OptLevel
		if level == 0 {
			level = 2
		}
		plan = AllOptPlan(prog.U, level)
	}
	if err := sys.Boot(plan, prog.Materialize); err != nil {
		return nil, err
	}
	if err := sys.Run(prog.Entry, cfg.MaxCycles); err != nil {
		return nil, err
	}
	res := &Result{
		Program:   prog.Name,
		HeapBytes: heapBytes,
		Cycles:    sys.VM.Cycles(),
		Cache:     sys.Hier().Stats(),
	}
	if sys.GenMS != nil {
		res.CoallocPairs = sys.GenMS.Stats().CoallocPairs
	}
	return res, nil
}
