// Package bench provides the benchmark harness: a registry of workload
// programs (synthetic analogues of the paper's SPECjvm98, DaCapo and
// pseudojbb benchmarks, Table 1), a runner that executes a program
// under a configuration (collector, heap size, sampling interval,
// co-allocation) and collects the metrics every figure of §6 is built
// from, and helpers for heap-size sweeps and repeated runs.
package bench

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"hpmvm/internal/coalloc"
	"hpmvm/internal/core"
	"hpmvm/internal/hw/cache"
	"hpmvm/internal/monitor"
	"hpmvm/internal/obs"
	"hpmvm/internal/opt"
	"hpmvm/internal/stats"
	"hpmvm/internal/vm/classfile"
	"hpmvm/internal/vm/mcmap"
	"hpmvm/internal/vm/runtime"
)

// Program is one runnable workload.
type Program struct {
	Name        string
	Description string

	U     *classfile.Universe
	Entry *classfile.Method

	// Materialize creates the program's immortal constant objects and
	// resolves bytecode reference constants. May be nil.
	Materialize func(vm *runtime.VM)

	// MinHeap is the calibrated minimum heap (bytes) the program
	// completes in under GenMS; heap-size sweeps are expressed as
	// multiples of it (1x–4x, §6.3).
	MinHeap uint64

	// Expected, when non-nil, is the exact result log the program must
	// produce (programs are deterministic); the runner verifies it.
	Expected []int64

	// HotFieldName names the field the paper's time-series figures
	// track for this program (db: "String::value"), or "".
	HotFieldName string
}

// Builder constructs a fresh Program. Builders MUST return a fully
// fresh universe on every call — compiled code and addresses are
// per-VM, and the parallel experiment engine invokes builders
// concurrently from pool workers, so a builder that cached or mutated
// shared state would race across runs.
type Builder func() *Program

// The registry is written only from package init functions (workload
// files call Register from init) and frozen at first read: Get, Names
// and NamesSorted are called concurrently by engine workers, so any
// post-init Register is a bug and panics. The mutex covers the
// freeze transition; after freezing, reads are lock-free.
var (
	registryMu sync.Mutex
	registry   = map[string]Builder{}
	order      []string
	frozen     bool
)

// Register adds a workload builder under a unique name. It must be
// called from package init (before the first Get/Names); registering
// after the registry froze panics.
func Register(name string, b Builder) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if frozen {
		panic(fmt.Sprintf("bench: Register(%q) after registry frozen (Register must run in init)", name))
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("bench: duplicate workload %q", name))
	}
	registry[name] = b
	order = append(order, name)
}

// freeze marks the registry immutable; the first read-side call wins.
func freeze() {
	registryMu.Lock()
	frozen = true
	registryMu.Unlock()
}

// Get returns the builder for name and freezes the registry.
func Get(name string) (Builder, bool) {
	freeze()
	b, ok := registry[name]
	return b, ok
}

// ErrUnknownWorkload is the sentinel wrapped by Lookup when the name
// is not registered; callers distinguish configuration mistakes from
// run failures with errors.Is.
var ErrUnknownWorkload = errors.New("unknown workload")

// Lookup returns the builder for name, or an error wrapping
// ErrUnknownWorkload naming the registered workloads.
func Lookup(name string) (Builder, error) {
	if b, ok := Get(name); ok {
		return b, nil
	}
	return nil, fmt.Errorf("bench: %w %q (have %v)", ErrUnknownWorkload, name, NamesSorted())
}

// Names returns all registered workload names in registration order
// and freezes the registry.
func Names() []string {
	freeze()
	return append([]string(nil), order...)
}

// NamesSorted returns all registered workload names sorted.
func NamesSorted() []string {
	ns := Names()
	sort.Strings(ns)
	return ns
}

// AllOptPlan builds the pseudo-adaptive compilation plan that
// opt-compiles every method with bytecode at the given level (§6.1:
// each program runs with a pre-generated compilation plan so the same
// methods are optimized in every configuration).
func AllOptPlan(u *classfile.Universe, level int) runtime.CompilePlan {
	plan := make(runtime.CompilePlan)
	for _, m := range u.Methods() {
		if m.Code != nil {
			plan[m.ID] = level
		}
	}
	return plan
}

// RunConfig selects an execution configuration.
type RunConfig struct {
	// Heap is the heap budget in bytes; 0 means 4x the program's
	// MinHeap (the paper's large-heap setting).
	Heap uint64
	// HeapFactor, when non-zero and Heap is 0, sets Heap to
	// HeapFactor × MinHeap.
	HeapFactor float64

	Collector core.CollectorKind

	// Monitoring enables event sampling; Interval is the hardware
	// sampling interval in events (0 = auto). Event defaults to L1
	// misses.
	Monitoring bool
	Interval   uint64
	Event      cache.EventKind

	// Coalloc enables HPM-guided co-allocation (implies Monitoring).
	Coalloc bool

	// CodeLayout enables the hot/cold code-layout optimization (implies
	// Monitoring); CodeLayoutConfig optionally overrides its tuning,
	// including the instruction-cache geometry the run opts into.
	CodeLayout       bool
	CodeLayoutConfig *opt.CodeLayoutConfig

	// SwPrefetch enables the software prefetch-injection optimization
	// (implies Monitoring); SwPrefetchConfig optionally overrides its
	// tuning.
	SwPrefetch       bool
	SwPrefetchConfig *opt.SwPrefetchConfig

	// CacheConfig, when non-nil, overrides the memory-hierarchy
	// geometry (default: the paper's P4). The revert experiments use a
	// pressured geometry so a polluting injection is visibly bad.
	CacheConfig *cache.Config

	// Gap, when non-zero, applies Gap padding bytes between every
	// co-allocated parent and child from the start (ablation).
	Gap uint64
	// GapAtCycle, when non-zero, forces the Figure 8 manual
	// intervention: from that cycle on, new pairs get one cache line
	// of padding until the feedback loop reverts the decision.
	GapAtCycle uint64
	// DisableRevert turns the online revert heuristic off.
	DisableRevert bool
	// Ranked enables the full per-class co-allocation candidate list
	// (§5.4) with fallback past ineligible children.
	Ranked bool

	// Plan overrides the default all-opt compilation plan.
	Plan runtime.CompilePlan
	// OptLevel is the level used by the default plan (default 2).
	OptLevel int
	// Adaptive enables AOS recording mode (baseline compile + timer
	// sampling + recompilation).
	Adaptive bool

	Seed        int64
	MaxCycles   uint64
	TrackFields []string

	// Sampling, when non-nil, runs the simulation in sampled mode
	// (functional fast-forward + detailed measured regions); the
	// extrapolated full-run metrics land in Result.Estimated. Cycles
	// and cache stats in the Result are then the sampled run's own
	// distorted counters, not estimates — read Estimated instead.
	Sampling *runtime.SamplingConfig

	// MonitorConfig optionally overrides the collector-thread tuning.
	MonitorConfig *monitor.Config

	// Observe attaches the observability layer (package obs) to the
	// run's System; Result.Obs then carries the final counter/phase
	// snapshot. The observer is passive, so simulated results are
	// unchanged. TraceCapacity bounds the event ring (0 = default).
	Observe       bool
	TraceCapacity int
}

// Result carries every metric the experiments report.
type Result struct {
	Program   string
	Config    RunConfig
	HeapBytes uint64

	Cycles  uint64
	Instret uint64

	Cache cache.Stats

	MinorGCs      uint64
	MajorGCs      uint64
	CoallocPairs  uint64
	GCCycles      uint64
	Fragmentation float64

	MonitorStats monitor.Stats
	SamplesTaken uint64
	Space        mcmap.SpaceStats

	// Opt carries one decision/revert counter row per managed
	// optimization (nil when none are configured).
	Opt []opt.KindStats
	// ICache is the instruction-cache counter set (all zero unless the
	// codelayout optimization enabled the I-cache model).
	ICache cache.IStats

	Results []int64

	// Obs is the observability snapshot, non-nil iff Config.Observe.
	Obs *obs.Metrics

	// Estimated is the sampled-simulation extrapolation, non-nil iff
	// Config.Sampling.
	Estimated *stats.Estimate
}

// Resolve maps the configuration to the fully resolved core.Options
// for a program with the given calibrated minimum heap and hot field.
// It is the single translation point Run uses, exported so the serve
// layer can compute a run's canonical cache key (core.Fingerprint of
// the resolved options) without executing it — the key and the
// execution are guaranteed to agree because they share this function.
func (cfg RunConfig) Resolve(minHeap uint64, hotField string) core.Options {
	heapBytes := cfg.Heap
	if heapBytes == 0 {
		f := cfg.HeapFactor
		if f == 0 {
			f = 4
		}
		heapBytes = uint64(f * float64(minHeap))
	}
	monitoring := cfg.Monitoring || cfg.Coalloc || cfg.CodeLayout || cfg.SwPrefetch
	track := cfg.TrackFields
	if len(track) == 0 && hotField != "" {
		track = []string{hotField}
	}

	opts := core.Options{
		Collector:        cfg.Collector,
		HeapLimit:        heapBytes,
		Monitoring:       monitoring,
		SamplingInterval: cfg.Interval,
		Event:            cfg.Event,
		Coalloc:          cfg.Coalloc,
		Adaptive:         cfg.Adaptive,
		Seed:             cfg.Seed,
		TrackFields:      track,
		MonitorConfig:    cfg.MonitorConfig,
		Observe:          cfg.Observe,
		TraceCapacity:    cfg.TraceCapacity,
		Sampling:         cfg.Sampling,
	}
	if cfg.Gap != 0 || cfg.GapAtCycle != 0 || cfg.DisableRevert || cfg.Ranked {
		cc := coalloc.DefaultConfig()
		cc.Gap = cfg.Gap
		cc.GapAtCycle = cfg.GapAtCycle
		cc.RevertEnabled = !cfg.DisableRevert
		cc.Ranked = cfg.Ranked
		opts.CoallocConfig = &cc
	}
	if cfg.CodeLayout {
		opts.Optimizations = append(opts.Optimizations,
			core.OptimizationConfig{Kind: opt.KindCodeLayout, CodeLayout: cfg.CodeLayoutConfig})
	}
	if cfg.SwPrefetch {
		opts.Optimizations = append(opts.Optimizations,
			core.OptimizationConfig{Kind: opt.KindSwPrefetch, SwPrefetch: cfg.SwPrefetchConfig})
	}
	if cfg.CacheConfig != nil {
		opts.Cache = *cfg.CacheConfig
	}
	return opts
}

// Run executes one program under one configuration and returns the
// metrics plus the live System for deeper inspection (time series,
// policy decisions).
func Run(b Builder, cfg RunConfig) (*Result, *core.System, error) {
	return RunContext(context.Background(), b, cfg)
}

// RunContext is Run with cooperative cancellation: the simulation
// aborts at its next safepoint once ctx is cancelled and the error
// wraps ctx.Err(). A context that is never cancelled yields results
// identical to Run.
func RunContext(ctx context.Context, b Builder, cfg RunConfig) (*Result, *core.System, error) {
	prog := b()
	sys, opts, err := buildSystem(prog, cfg)
	if err != nil {
		return nil, nil, err
	}
	cfg.Monitoring = opts.Monitoring
	if err := sys.RunContext(ctx, prog.Entry, cfg.MaxCycles); err != nil {
		return nil, nil, fmt.Errorf("bench: %s: %w", prog.Name, err)
	}
	if prog.Expected != nil {
		if err := checkResults(prog.Expected, sys.VM.Results()); err != nil {
			return nil, nil, fmt.Errorf("bench: %s: %w", prog.Name, err)
		}
	}
	return collectResult(prog, cfg, opts.HeapLimit, sys), sys, nil
}

// BuildSystem constructs and boots a fresh System for the workload
// without running it, returning the built Program alongside. Callers
// that need manual control of execution — the keystone sampled-vs-exact
// tests walk an exact machine to a sampled run's region boundaries with
// VM.RunToInstret — use this instead of Run.
func BuildSystem(b Builder, cfg RunConfig) (*Program, *core.System, error) {
	prog := b()
	sys, _, err := buildSystem(prog, cfg)
	return prog, sys, err
}

// buildSystem constructs and boots a fresh System for prog under cfg —
// the shared front half of RunContext, RunPrefixContext and
// RunFromSnapshotContext, so cold, prefix and warm-started runs are
// guaranteed to boot identically (a precondition of the replay-based
// restore contract, see core.System.Restore).
func buildSystem(prog *Program, cfg RunConfig) (*core.System, core.Options, error) {
	opts := cfg.Resolve(prog.MinHeap, prog.HotFieldName)
	sys, err := core.NewSystemOpts(prog.U, opts)
	if err != nil {
		return nil, opts, fmt.Errorf("bench: %s: %w", prog.Name, err)
	}
	plan := cfg.Plan
	if plan == nil && !cfg.Adaptive {
		level := cfg.OptLevel
		if level == 0 {
			level = 2
		}
		plan = AllOptPlan(prog.U, level)
	}
	if err := sys.Boot(plan, prog.Materialize); err != nil {
		return nil, opts, fmt.Errorf("bench: %s: boot: %w", prog.Name, err)
	}
	return sys, opts, nil
}

// collectResult assembles the Result metrics from a finished system.
// RunContext and RunFromSnapshotContext share it, so cold and
// warm-started runs report identically shaped results.
func collectResult(prog *Program, cfg RunConfig, heapBytes uint64, sys *core.System) *Result {
	res := &Result{
		Program:   prog.Name,
		Config:    cfg,
		HeapBytes: heapBytes,
		Cycles:    sys.VM.Cycles(),
		Instret:   sys.VM.CPU.Instret(),
		Cache:     sys.Hier().Stats(),
		Space:     sys.VM.Table.Space(),
		Results:   sys.VM.Results(),
	}
	res.MinorGCs, res.MajorGCs = sys.GCStats()
	if sys.GenMS != nil {
		st := sys.GenMS.Stats()
		res.CoallocPairs = st.CoallocPairs
		res.GCCycles = st.GCCycles
		res.Fragmentation = st.Fragmentation
	}
	if sys.GenCopy != nil {
		res.GCCycles = sys.GenCopy.Stats().GCCycles
	}
	if sys.Monitor != nil {
		res.MonitorStats = sys.Monitor.Stats()
	}
	res.SamplesTaken = sys.Unit.Stats().SamplesTaken
	res.Opt = sys.OptStats()
	res.ICache = sys.Hier().IStats()
	if est, ok := sys.SamplingEstimate(); ok {
		res.Estimated = &est
	}
	if sys.Obs != nil {
		m := sys.Obs.Metrics()
		res.Obs = &m
	}
	return res
}

func checkResults(want, got []int64) error {
	if len(want) != len(got) {
		return fmt.Errorf("result log length %d, want %d (got %v)", len(got), len(want), clip(got))
	}
	for i := range want {
		if want[i] != got[i] {
			return fmt.Errorf("result[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	return nil
}

func clip(xs []int64) []int64 {
	if len(xs) > 8 {
		return xs[:8]
	}
	return xs
}

// Repeat runs the same configuration reps times with distinct seeds
// and returns the execution-time mean and standard deviation (the
// paper reports averages over 3 executions, §6.1) plus the last run's
// full result. Repetitions execute on the parallel engine (DefaultJobs
// workers); each owns its seed and its whole simulated machine, so the
// returned numbers are identical to a serial loop.
func Repeat(b Builder, cfg RunConfig, reps int) (mean, stddev float64, last *Result, err error) {
	e := NewEngine(0)
	h := e.RepeatAsync(b, cfg, reps, "")
	if err := e.Wait(); err != nil {
		return 0, 0, nil, err
	}
	return h.Mean(), h.StdDev(), h.Last(), nil
}
