package bench_test

import (
	"fmt"
	"strings"
	"testing"

	"hpmvm/internal/bench"
	_ "hpmvm/internal/bench/workloads"
)

// formatResult digests every metric an experiment table could print.
func formatResult(r *bench.Result) string {
	return fmt.Sprintf(
		"%s heap=%d cycles=%d instret=%d l1=%d l2=%d tlb=%d wb=%d pf=%d cyc=%d minor=%d major=%d pairs=%d gccyc=%d frag=%.6f samples=%d results=%v",
		r.Program, r.HeapBytes, r.Cycles, r.Instret,
		r.Cache.L1Misses, r.Cache.L2Misses, r.Cache.TLBMisses, r.Cache.Writebacks,
		r.Cache.Prefetches, r.Cache.Cycles,
		r.MinorGCs, r.MajorGCs, r.CoallocPairs, r.GCCycles, r.Fragmentation,
		r.SamplesTaken, clipResults(r.Results))
}

func clipResults(xs []int64) []int64 {
	if len(xs) > 4 {
		return xs[:4]
	}
	return xs
}

// sweepConfigs is the small full sweep of the determinism test: one
// workload at 2 heap sizes × 2 configs (baseline, co-allocation).
func sweepConfigs() []bench.RunConfig {
	var cfgs []bench.RunConfig
	for _, f := range []float64{1.5, 3} {
		for _, co := range []bool{false, true} {
			cfgs = append(cfgs, bench.RunConfig{HeapFactor: f, Coalloc: co, Seed: 11})
		}
	}
	return cfgs
}

// engineSweep runs the sweep on a pool of the given width and formats
// the results in submission order.
func engineSweep(t *testing.T, jobs int) string {
	t.Helper()
	builder, ok := bench.Get("compress")
	if !ok {
		t.Fatal("compress workload not registered")
	}
	e := bench.NewEngine(jobs)
	var handles []*bench.RunHandle
	for _, cfg := range sweepConfigs() {
		handles = append(handles, e.RunAsync(builder, cfg, "compress"))
	}
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, h := range handles {
		fmt.Fprintln(&b, formatResult(h.Result()))
	}
	return b.String()
}

// TestParallelSweepByteIdentical is the determinism guarantee of the
// parallel experiment engine: a full (heap size × config) sweep
// produces byte-identical formatted results serially (jobs=1), on a
// wide pool (jobs=4), and through the plain serial Run loop — every
// run owns its seed, PRNG and simulated machine, so the jobs setting
// cannot influence any simulated number.
func TestParallelSweepByteIdentical(t *testing.T) {
	builder, _ := bench.Get("compress")
	var direct strings.Builder
	for _, cfg := range sweepConfigs() {
		r, _, err := bench.Run(builder, cfg)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintln(&direct, formatResult(r))
	}

	serial := engineSweep(t, 1)
	parallel := engineSweep(t, 4)

	if serial != parallel {
		t.Errorf("jobs=1 and jobs=4 sweeps differ:\n--- jobs=1\n%s--- jobs=4\n%s", serial, parallel)
	}
	if direct.String() != serial {
		t.Errorf("engine sweep differs from direct serial loop:\n--- direct\n%s--- engine\n%s", direct.String(), serial)
	}
}

// TestExperimentOutputIdenticalAcrossJobs checks the same property one
// layer up: a rendered experiment table is byte-identical between
// jobs=1 and jobs=4.
func TestExperimentOutputIdenticalAcrossJobs(t *testing.T) {
	opt := bench.ExpOptions{Workloads: []string{"compress"}, Reps: 1, Seed: 1}
	opt.Jobs = 1
	one, err := bench.RunExperiment("fig4", opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Jobs = 4
	four, err := bench.RunExperiment("fig4", opt)
	if err != nil {
		t.Fatal(err)
	}
	if one != four {
		t.Errorf("fig4 output differs between jobs=1 and jobs=4:\n--- jobs=1\n%s--- jobs=4\n%s", one, four)
	}
}
