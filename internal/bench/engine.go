package bench

import (
	"context"
	"errors"
	stdruntime "runtime"
	"sync"
	"time"

	"hpmvm/internal/core"
	"hpmvm/internal/stats"
)

// This file is the parallel experiment execution engine. Every run an
// experiment performs — one (workload, heap size, config, seed) tuple —
// constructs a fresh Program universe and a fresh core.System and
// shares no state with any other run, so independent runs can execute
// on separate goroutines without changing a single simulated number.
// The engine fans runs out across a bounded worker pool and the
// experiment code assembles results in submission order after Wait, so
// the formatted output is byte-identical to a serial execution
// regardless of the jobs setting (see TestParallelSweepByteIdentical).

// DefaultJobs returns the default worker-pool width: GOMAXPROCS.
func DefaultJobs() int { return stdruntime.GOMAXPROCS(0) }

// ProgressFunc receives live completion updates: done runs out of the
// total submitted so far, and the label of the run that just finished.
//
// Thread-safety contract: the engine invokes the callback from its
// pool-worker goroutines, but always under the engine's mutex, so
// invocations are serialized — the callback may read and write its own
// shared state without additional locking, and done is strictly
// increasing across calls. Two obligations remain with the caller:
//
//   - Other goroutines reading state the callback writes need their own
//     synchronization while runs are in flight. Engine.Wait is the
//     ready-made sync point: it returns only after every callback has
//     completed, with a happens-before edge, so post-Wait reads are safe
//     without locks (pinned by TestProgressSharedStateRace).
//   - Keep the callback fast and never call back into the engine — it
//     runs under the same lock Submit/Wait/Stats take, so a re-entrant
//     call deadlocks and a slow callback stalls every worker's
//     completion path.
type ProgressFunc func(done, total int, label string)

// EngineStats is the engine's per-run wall-clock and simulation-volume
// accounting. SimCycles/SimInstret sum the final simulated counters of
// every completed program run, so SimCycles/RunTime is the engine's
// serial-equivalent simulation throughput (warm-started runs report
// their final counters, which include the restored prefix).
type EngineStats struct {
	Jobs       int           // worker-pool width
	Runs       int           // completed runs
	RunTime    time.Duration // summed wall clock of all completed runs
	MaxRun     time.Duration // longest single run
	SimCycles  uint64        // summed simulated cycles of completed runs
	SimInstret uint64        // summed retired instructions of completed runs
}

// McyclesPerSec returns the serial-equivalent simulation throughput in
// millions of simulated cycles per second of run time.
func (s EngineStats) McyclesPerSec() float64 {
	if s.RunTime <= 0 {
		return 0
	}
	return float64(s.SimCycles) / 1e6 / s.RunTime.Seconds()
}

// MinstrPerSec returns the serial-equivalent simulation throughput in
// millions of retired instructions per second of run time.
func (s EngineStats) MinstrPerSec() float64 {
	if s.RunTime <= 0 {
		return 0
	}
	return float64(s.SimInstret) / 1e6 / s.RunTime.Seconds()
}

// Engine is a bounded worker pool for independent experiment runs.
// Submit schedules work; Wait blocks until everything finished and
// returns the first error. An Engine may be reused for several
// submit/wait rounds; accounting accumulates across them.
type Engine struct {
	jobs int
	sem  chan struct{}
	wg   sync.WaitGroup

	mu         sync.Mutex
	err        error
	submitted  int
	done       int
	runTime    time.Duration
	maxRun     time.Duration
	simCycles  uint64
	simInstret uint64
	progress   ProgressFunc
}

// NewEngine creates an engine with the given worker-pool width
// (jobs <= 0 selects DefaultJobs).
func NewEngine(jobs int) *Engine {
	if jobs <= 0 {
		jobs = DefaultJobs()
	}
	return &Engine{jobs: jobs, sem: make(chan struct{}, jobs)}
}

// SetProgress registers the live progress callback (nil disables). It
// may be called concurrently with Submit, but a registration races
// against completions already in flight — register before the first
// Submit to observe every run. See ProgressFunc for the callback's
// thread-safety contract.
func (e *Engine) SetProgress(f ProgressFunc) {
	e.mu.Lock()
	e.progress = f
	e.mu.Unlock()
}

// Jobs returns the worker-pool width.
func (e *Engine) Jobs() int { return e.jobs }

// Stats returns a snapshot of the per-run accounting.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return EngineStats{
		Jobs: e.jobs, Runs: e.done, RunTime: e.runTime, MaxRun: e.maxRun,
		SimCycles: e.simCycles, SimInstret: e.simInstret,
	}
}

// AddSim credits a completed run's simulated volume to the engine's
// throughput accounting. The Run/Repeat/RunFrom helpers call it
// automatically; only custom Submit closures that execute their own
// simulations need to call it themselves.
func (e *Engine) AddSim(cycles, instret uint64) {
	e.mu.Lock()
	e.simCycles += cycles
	e.simInstret += instret
	e.mu.Unlock()
}

// Submit schedules f on the pool. After the first error, remaining
// submissions are skipped (fail fast); the error surfaces from Wait.
func (e *Engine) Submit(label string, f func() error) {
	e.submit(label, f, false, nil)
}

// submit schedules f. In isolated mode the run's error stays with its
// handle instead of latching into the engine's fail-fast error, and
// the run executes even after another submission failed — the mode a
// long-lived service needs to keep one engine across many independent
// requests (one cancelled or failed request must not wedge the pool).
// onSkip, when non-nil, is invoked if the fail-fast path drops f
// without running it, so futures over f can still complete.
func (e *Engine) submit(label string, f func() error, isolated bool, onSkip func()) {
	e.mu.Lock()
	e.submitted++
	e.mu.Unlock()
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		e.sem <- struct{}{}
		defer func() { <-e.sem }()

		if !isolated {
			e.mu.Lock()
			failed := e.err != nil
			e.mu.Unlock()
			if failed {
				if onSkip != nil {
					onSkip()
				}
				return
			}
		}

		start := time.Now()
		err := f()
		elapsed := time.Since(start)

		e.mu.Lock()
		e.done++
		e.runTime += elapsed
		if elapsed > e.maxRun {
			e.maxRun = elapsed
		}
		if !isolated && err != nil && e.err == nil {
			e.err = err
		}
		if e.progress != nil && err == nil {
			e.progress(e.done, e.submitted, label)
		}
		e.mu.Unlock()
	}()
}

// Wait blocks until all submitted work finished and returns the first
// error encountered.
func (e *Engine) Wait() error {
	e.wg.Wait()
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// RunHandle is the future for one Run submitted to an engine. For
// RunAsync, accessors are valid only after Engine.Wait returns nil;
// for RunAsyncContext, Wait on the handle itself instead.
type RunHandle struct {
	res  *Result
	sys  *core.System
	err  error
	done chan struct{}
}

// Result returns the run's metrics.
func (h *RunHandle) Result() *Result { return h.res }

// Sys returns the run's live System (time series, policy decisions).
func (h *RunHandle) Sys() *core.System { return h.sys }

// Wait blocks until this run finished and returns its error. Unlike
// Engine.Wait it synchronizes on one run only, so independent requests
// sharing an engine do not wait on each other.
func (h *RunHandle) Wait() error {
	<-h.done
	return h.err
}

// RunAsync schedules one program run on the engine and returns its
// future. The run participates in the engine's fail-fast error
// (batch-experiment semantics).
func (e *Engine) RunAsync(b Builder, cfg RunConfig, label string) *RunHandle {
	return e.runAsync(context.Background(), b, cfg, label, false)
}

// RunAsyncContext schedules one cancellable program run. The run is
// isolated: its error is delivered through the handle's Wait rather
// than latched into the engine, and it executes even if a previous
// isolated run failed — a long-lived server keeps submitting to one
// engine. A ctx already cancelled at dequeue time skips the simulation
// entirely.
func (e *Engine) RunAsyncContext(ctx context.Context, b Builder, cfg RunConfig, label string) *RunHandle {
	return e.runAsync(ctx, b, cfg, label, true)
}

func (e *Engine) runAsync(ctx context.Context, b Builder, cfg RunConfig, label string, isolated bool) *RunHandle {
	h := &RunHandle{done: make(chan struct{})}
	e.submit(label, func() error {
		defer close(h.done)
		if err := ctx.Err(); err != nil {
			h.err = err
			return err
		}
		res, sys, err := RunContext(ctx, b, cfg)
		if err != nil {
			h.err = err
			return err
		}
		e.AddSim(res.Cycles, res.Instret)
		h.res, h.sys = res, sys
		return nil
	}, isolated, func() {
		// Fail-fast skip: another batch run already failed. Surface a
		// per-handle error so Wait never hangs; Engine.Wait still
		// reports the original failure.
		h.err = errSkipped
		close(h.done)
	})
	return h
}

// errSkipped marks a RunHandle whose run was dropped by the engine's
// fail-fast path after another submission failed.
var errSkipped = errors.New("bench: run skipped after earlier failure")

// SubmitIsolated schedules an arbitrary task on the pool with service
// semantics (like RunAsyncContext): its error stays out of the
// engine's fail-fast latch and is returned by the wait function, which
// blocks until the task finished. A long-lived server uses it for
// work that is not a plain program run — e.g. computing a warm-start
// prefix snapshot — while still respecting the worker-pool width.
func (e *Engine) SubmitIsolated(label string, f func() error) (wait func() error) {
	done := make(chan struct{})
	var err error
	e.submit(label, func() error {
		defer close(done)
		err = f()
		return err
	}, true, nil)
	return func() error {
		<-done
		return err
	}
}

// RepeatHandle is the future for a Repeat (reps runs with distinct
// seeds) submitted to an engine. Each repetition is a separate pool
// run, so repetitions of one configuration overlap with everything
// else. Accessors are valid only after Engine.Wait returns nil.
type RepeatHandle struct {
	times   []float64
	wallNs  []float64
	results []*Result
}

// Mean returns the mean execution time (simulated cycles).
func (h *RepeatHandle) Mean() float64 { return stats.Mean(h.times) }

// StdDev returns the standard deviation over the repetitions.
func (h *RepeatHandle) StdDev() float64 { return stats.StdDev(h.times) }

// MeanWallNs returns the mean host wall clock per repetition in
// nanoseconds — the ns/op of a Go benchmark line over these runs.
func (h *RepeatHandle) MeanWallNs() float64 { return stats.Mean(h.wallNs) }

// Last returns the final repetition's full result (the same run
// Repeat's serial loop would have returned), or nil for zero reps.
func (h *RepeatHandle) Last() *Result {
	if len(h.results) == 0 {
		return nil
	}
	return h.results[len(h.results)-1]
}

// RepeatAsync schedules reps runs of the same configuration with
// distinct seeds (cfg.Seed + i*7919, exactly like Repeat) and returns
// their aggregate future.
func (e *Engine) RepeatAsync(b Builder, cfg RunConfig, reps int, label string) *RepeatHandle {
	h := &RepeatHandle{
		times:   make([]float64, reps),
		wallNs:  make([]float64, reps),
		results: make([]*Result, reps),
	}
	for i := 0; i < reps; i++ {
		i := i
		c := cfg
		c.Seed = cfg.Seed + int64(i)*7919
		e.Submit(label, func() error {
			start := time.Now()
			r, _, err := Run(b, c)
			if err != nil {
				return err
			}
			e.AddSim(r.Cycles, r.Instret)
			h.times[i] = float64(r.Cycles)
			h.wallNs[i] = float64(time.Since(start).Nanoseconds())
			h.results[i] = r
			return nil
		})
	}
	return h
}
