package bench

import (
	"fmt"
	"strings"

	"hpmvm/internal/hw/cache"
	"hpmvm/internal/opt"
)

// This file implements the code-layout experiment: the second managed
// optimization (hot/cold code layout, internal/opt) evaluated the same
// way the paper evaluates co-allocation — a passive monitored baseline
// against the active optimization, plus a deliberately poor decision
// the feedback loop must detect and revert (the Figure-8 methodology
// applied to code space).

// CodeLayoutICache is the instruction-cache geometry the experiment
// opts into: 2 KB, 2-way. The boot-time code layout of every workload
// overflows it, so relocating the hot methods into a contiguous packed
// region has a visible effect; the default 8 KB geometry is large
// enough that several workloads fit entirely and the experiment would
// measure nothing.
const (
	CodeLayoutICacheSize  = 2 * 1024
	CodeLayoutICacheAssoc = 2
)

// codeLayoutCfg returns the experiment's optimization config; passive
// runs observe the same instruction cache without relocating, so the
// two runs differ only in the layout decisions.
func codeLayoutCfg(passive bool) *opt.CodeLayoutConfig {
	return &opt.CodeLayoutConfig{
		ICacheSize:  CodeLayoutICacheSize,
		ICacheAssoc: CodeLayoutICacheAssoc,
		Passive:     passive,
	}
}

// CodeLayoutRow is one program's passive-vs-active comparison.
type CodeLayoutRow struct {
	Program     string
	PassiveRate float64 // L1I miss rate, monitored but never relocated
	ActiveRate  float64 // L1I miss rate with hot/cold layout active
	Improvement float64 // fraction of the passive miss rate removed
	Layouts     int     // layout epochs the active run applied
	Decisions   uint64  // managed decisions (includes conflict layouts)
	Reverts     uint64  // decisions the assessment loop took back
}

// optKindStats extracts one kind's counter row from a Result.
func optKindStats(res *Result, kind string) opt.KindStats {
	for _, k := range res.Opt {
		if k.Kind == kind {
			return k
		}
	}
	return opt.KindStats{Kind: kind}
}

// CodeLayoutData measures the L1I miss rate with the code-layout
// optimization active against a passive monitored baseline (same
// instruction cache, no relocation) for every workload. Both runs of
// every workload execute in parallel on the engine.
func CodeLayoutData(o ExpOptions) ([]CodeLayoutRow, error) {
	e := o.engine()
	names, builders, err := o.builders()
	if err != nil {
		return nil, err
	}
	type cell struct{ passive, active *RunHandle }
	cells := make([]cell, len(names))
	for i, name := range names {
		// Both runs sample L1I misses: hot-by-instruction-miss methods are
		// the set whose placement the layout can actually improve (data
		// misses attribute hotness to the wrong methods here), and the two
		// runs share the monitoring cost so the delta is the layout alone.
		cells[i].passive = e.RunAsync(builders[i], RunConfig{
			CodeLayout: true, CodeLayoutConfig: codeLayoutCfg(true),
			Event: cache.EventL1IMiss, Seed: o.Seed,
		}, name+"/layout-off")
		cells[i].active = e.RunAsync(builders[i], RunConfig{
			CodeLayout: true, CodeLayoutConfig: codeLayoutCfg(false),
			Event: cache.EventL1IMiss, Seed: o.Seed,
		}, name+"/layout-on")
	}
	if err := e.Wait(); err != nil {
		return nil, err
	}
	rows := make([]CodeLayoutRow, len(names))
	for i, name := range names {
		passive, active := cells[i].passive.Result(), cells[i].active.Result()
		ks := optKindStats(active, opt.KindCodeLayout)
		pr, ar := passive.ICache.MissRate(), active.ICache.MissRate()
		imp := 0.0
		if pr > 0 {
			imp = 1 - ar/pr
		}
		rows[i] = CodeLayoutRow{
			Program:     name,
			PassiveRate: pr,
			ActiveRate:  ar,
			Improvement: imp,
			Layouts:     cells[i].active.Sys().CodeLayout.Epoch(),
			Decisions:   ks.Decisions,
			Reverts:     ks.Reverts,
		}
	}
	return rows, nil
}

// CodeLayoutBadPadAtCycle is the point of the injected bad decision in
// the revert scenario: after db's early packed layouts have been
// applied and kept, so the conflict layout is judged against an honest
// steady-state baseline, and inside db's fine-grained alternation
// phase, where same-set alignment actually thrashes a direct-mapped
// cache. Paired with CodeLayoutRevertEvalPeriods.
const CodeLayoutBadPadAtCycle = 120_000_000

// CodeLayoutRevertEvalPeriods is the revert scenario's assessment
// window: short enough that the early layouts settle before the
// injection point and the regression is measured within one phase.
const CodeLayoutRevertEvalPeriods = 3

// CodeLayoutRevertData runs the code-layout equivalent of Figure 8 on
// db: at CodeLayoutBadPadAtCycle the optimization is made to install a
// conflict layout (every hot method padded onto the same cache way).
// The assessment loop must observe the L1I miss-rate regression and
// revert to the packed layout. Returns the decision/revert counters
// and the optimization's decision log.
func CodeLayoutRevertData(o ExpOptions) (opt.KindStats, []string, error) {
	builder, ok := Get("db")
	if !ok {
		return opt.KindStats{}, nil, fmt.Errorf("db workload not registered")
	}
	cfg := codeLayoutCfg(false)
	cfg.BadPadAtCycle = CodeLayoutBadPadAtCycle
	cfg.EvalPeriods = CodeLayoutRevertEvalPeriods
	// Direct-mapped: the conflict layout aligns every hot method onto
	// the same sets, and with a single way any two alternating methods
	// thrash — the regression the assessment loop must catch.
	cfg.ICacheAssoc = 1
	e := o.engine()
	h := e.RunAsync(builder, RunConfig{
		CodeLayout: true, CodeLayoutConfig: cfg,
		Event: cache.EventL1IMiss, Seed: o.Seed,
	}, "db/layout-badpad")
	if err := e.Wait(); err != nil {
		return opt.KindStats{}, nil, err
	}
	res := h.Result()
	return optKindStats(res, opt.KindCodeLayout), h.Sys().CodeLayout.Log(), nil
}

// CodeLayoutExp renders the code-layout experiment: the
// passive-vs-active miss-rate table and the injected-bad-decision
// revert scenario. Headline numbers land in the JSON report as
// opt_codelayout_* metrics.
func CodeLayoutExp(o ExpOptions) (string, error) {
	rows, err := CodeLayoutData(o)
	if err != nil {
		return "", err
	}
	badStats, badLog, err := CodeLayoutRevertData(o)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Code layout: L1I miss rate with hot/cold code layout vs passive monitoring\n")
	fmt.Fprintf(&b, "(%d KB %d-way instruction cache; passive runs observe the same cache\n",
		CodeLayoutICacheSize/1024, CodeLayoutICacheAssoc)
	fmt.Fprintf(&b, " without relocating, so the delta is the layout decisions alone)\n")
	fmt.Fprintf(&b, "%-11s %12s %12s %10s %8s %10s %8s\n",
		"program", "passive", "layout", "improve", "layouts", "decisions", "reverts")
	improved := 0
	var sumImp float64
	var totDec, totRev uint64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %12.5f %12.5f %9.1f%% %8d %10d %8d\n",
			r.Program, r.PassiveRate, r.ActiveRate, 100*r.Improvement,
			r.Layouts, r.Decisions, r.Reverts)
		if r.Improvement > 0 {
			improved++
		}
		sumImp += r.Improvement
		totDec += r.Decisions
		totRev += r.Reverts
		o.recordMetric("opt_codelayout_missrate_improvement_pct_"+r.Program, 100*r.Improvement)
	}
	fmt.Fprintf(&b, "%-11s %37.1f%%\n", "average", 100*sumImp/float64(len(rows)))
	fmt.Fprintf(&b, "\nInjected bad decision (db, conflict layout at cycle %d):\n", CodeLayoutBadPadAtCycle)
	for _, line := range badLog {
		fmt.Fprintf(&b, "  %s\n", line)
	}
	fmt.Fprintf(&b, "decisions %d, reverts %d\n", badStats.Decisions, badStats.Reverts)
	o.recordMetric("opt_codelayout_workloads_improved", float64(improved))
	o.recordMetric("opt_codelayout_mean_improvement_pct", 100*sumImp/float64(len(rows)))
	o.recordMetric("opt_codelayout_decisions_total", float64(totDec+badStats.Decisions))
	o.recordMetric("opt_codelayout_reverts_total", float64(totRev+badStats.Reverts))
	badReverted := 0.0
	if badStats.Reverts >= 1 {
		badReverted = 1
	}
	o.recordMetric("opt_codelayout_bad_decision_reverted", badReverted)
	return b.String(), nil
}
