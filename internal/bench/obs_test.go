package bench

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sync"
	"testing"

	"hpmvm/internal/obs"
)

// TestObserveCycleIdentical pins the observability layer's overhead
// contract at the system level: attaching the observer must not change
// a single simulated number. Identical seeds with and without Observe
// must give bit-identical cycles, cache stats and program results.
func TestObserveCycleIdentical(t *testing.T) {
	b, _ := Get("_unit_tiny")
	cfg := RunConfig{Coalloc: true, Interval: 1000, Seed: 7}

	plain, _, err := Run(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Observe = true
	cfg.TraceCapacity = 512
	observed, sys, err := Run(b, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if plain.Obs != nil {
		t.Error("Result.Obs set without Observe")
	}
	if observed.Obs == nil {
		t.Fatal("Result.Obs missing with Observe")
	}
	if plain.Cycles != observed.Cycles {
		t.Errorf("observer perturbed cycles: %d vs %d", plain.Cycles, observed.Cycles)
	}
	if plain.Instret != observed.Instret {
		t.Errorf("observer perturbed instret: %d vs %d", plain.Instret, observed.Instret)
	}
	if plain.Cache != observed.Cache {
		t.Errorf("observer perturbed cache stats:\n%+v\nvs\n%+v", plain.Cache, observed.Cache)
	}
	if plain.MinorGCs != observed.MinorGCs || plain.MajorGCs != observed.MajorGCs ||
		plain.GCCycles != observed.GCCycles || plain.SamplesTaken != observed.SamplesTaken {
		t.Error("observer perturbed GC/sampling numbers")
	}
	if !reflect.DeepEqual(plain.Results, observed.Results) {
		t.Error("observer perturbed program results")
	}

	// The sampled counters must agree with the stats they mirror.
	if v, ok := sys.Obs.Get("cache.accesses"); !ok || v != observed.Cache.Accesses {
		t.Errorf("cache.accesses counter = %d/%v, want %d", v, ok, observed.Cache.Accesses)
	}
	if v, ok := sys.Obs.Get("pebs.samples_taken"); !ok || v != observed.SamplesTaken {
		t.Errorf("pebs.samples_taken counter = %d/%v, want %d", v, ok, observed.SamplesTaken)
	}
	if sys.Obs.TraceDump().Emitted == 0 {
		t.Error("observed run emitted no trace events")
	}
}

// requiredCounters is the wiring checklist: one representative counter
// per instrumented subsystem. A missing name means a subsystem lost
// its SetObserver call.
var requiredCounters = []string{
	"cache.accesses",
	"cache.l1_misses",
	"pebs.samples_taken",
	"perfmon.reads",
	"monitor.polls",
	"gc.minor",
	"coalloc.active_fields",
	"vm.recompiles",
}

// TestObsSweepExportJSON runs the instrumented sweep on the unit
// workload and schema-checks both JSON exports round-trip.
func TestObsSweepExportJSON(t *testing.T) {
	recs, err := ObsSweep(ExpOptions{Workloads: []string{"_unit_tiny"}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Workload != "_unit_tiny" {
		t.Fatalf("sweep records: %+v", recs)
	}
	if recs[0].Cycles == 0 {
		t.Error("sweep record has no cycle count")
	}

	var metricsBuf, traceBuf bytes.Buffer
	if err := WriteObsMetricsJSON(&metricsBuf, recs); err != nil {
		t.Fatal(err)
	}
	if err := WriteObsTraceJSON(&traceBuf, recs); err != nil {
		t.Fatal(err)
	}

	var metrics []struct {
		Workload string      `json:"workload"`
		Cycles   uint64      `json:"cycles"`
		Metrics  obs.Metrics `json:"metrics"`
	}
	if err := json.Unmarshal(metricsBuf.Bytes(), &metrics); err != nil {
		t.Fatalf("metrics JSON does not parse: %v", err)
	}
	if len(metrics) != 1 || metrics[0].Workload != "_unit_tiny" || metrics[0].Cycles != recs[0].Cycles {
		t.Fatalf("metrics JSON content: %+v", metrics)
	}
	have := map[string]uint64{}
	for _, c := range metrics[0].Metrics.Counters {
		have[c.Name] = c.Value
	}
	for _, name := range requiredCounters {
		if _, ok := have[name]; !ok {
			t.Errorf("counter %q missing from export — subsystem not wired", name)
		}
	}
	if have["cache.accesses"] == 0 {
		t.Error("cache.accesses exported as zero for a completed run")
	}

	var traces []struct {
		Workload string        `json:"workload"`
		Trace    obs.TraceDump `json:"trace"`
	}
	if err := json.Unmarshal(traceBuf.Bytes(), &traces); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(traces) != 1 || len(traces[0].Trace.Events) == 0 {
		t.Fatalf("trace JSON empty: %+v", traces)
	}
	// Kinds must round-trip through their string form, and the window
	// snapshot emitted at run start must be present.
	sawWindow := false
	for _, ev := range traces[0].Trace.Events {
		if _, ok := obs.KindFromString(ev.Kind.String()); !ok {
			t.Errorf("event kind %v does not round-trip", ev.Kind)
		}
		if ev.Kind == obs.EvCacheWindow {
			sawWindow = true
		}
	}
	if !sawWindow {
		t.Error("no cache_window event in trace (ResetStats window close not traced)")
	}
}

// TestProgressSharedStateRace pins the documented ProgressFunc
// thread-safety contract under the race detector: callbacks are
// serialized by the engine's lock, so a progress func may write shared
// state without its own locking, and Engine.Wait is a sufficient sync
// point for reading that state afterwards.
func TestProgressSharedStateRace(t *testing.T) {
	const n = 32
	e := NewEngine(4)

	// Shared state written by the callback with no locking of its own.
	var (
		calls  int
		labels []string
		lastDo int
	)
	e.SetProgress(func(done, total int, label string) {
		calls++
		labels = append(labels, label)
		if done <= lastDo {
			t.Errorf("done not strictly increasing: %d after %d", done, lastDo)
		}
		lastDo = done
	})

	var mu sync.Mutex
	seen := map[int]bool{}
	for i := 0; i < n; i++ {
		i := i
		e.Submit("job", func() error {
			mu.Lock()
			seen[i] = true
			mu.Unlock()
			return nil
		})
	}
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}

	// Post-Wait reads need no locks.
	if calls != n || len(labels) != n || lastDo != n {
		t.Errorf("progress saw %d calls, %d labels, last done %d; want %d", calls, len(labels), lastDo, n)
	}
	if len(seen) != n {
		t.Errorf("ran %d jobs, want %d", len(seen), n)
	}
}
