package bench

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestEngineRunsEverything(t *testing.T) {
	e := NewEngine(4)
	var n atomic.Int64
	results := make([]int, 20)
	for i := 0; i < 20; i++ {
		i := i
		e.Submit("task", func() error {
			n.Add(1)
			results[i] = i + 1
			return nil
		})
	}
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 20 {
		t.Fatalf("ran %d tasks, want 20", n.Load())
	}
	for i, v := range results {
		if v != i+1 {
			t.Fatalf("slot %d = %d, want %d (per-slot results must be stable)", i, v, i+1)
		}
	}
	st := e.Stats()
	if st.Runs != 20 || st.Jobs != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEngineErrorPropagatesAndFailsFast(t *testing.T) {
	e := NewEngine(1)
	boom := errors.New("boom")
	var after atomic.Int64
	e.Submit("ok", func() error { return nil })
	e.Submit("bad", func() error { return boom })
	for i := 0; i < 10; i++ {
		e.Submit("later", func() error {
			after.Add(1)
			return nil
		})
	}
	if err := e.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait() = %v, want boom", err)
	}
	// With one worker, everything submitted after the failing task may
	// be skipped; at minimum the engine must not lose the error and
	// must not deadlock. (Scheduling order of goroutines is not FIFO,
	// so we only assert the skip counter never exceeds the submissions.)
	if after.Load() > 10 {
		t.Fatalf("impossible completion count %d", after.Load())
	}
}

func TestEngineDefaultJobs(t *testing.T) {
	if NewEngine(0).Jobs() != DefaultJobs() {
		t.Fatal("jobs=0 should select DefaultJobs")
	}
	if NewEngine(-3).Jobs() != DefaultJobs() {
		t.Fatal("negative jobs should select DefaultJobs")
	}
	if NewEngine(7).Jobs() != 7 {
		t.Fatal("explicit jobs not honored")
	}
}

func TestEngineProgressAndAccounting(t *testing.T) {
	e := NewEngine(2)
	var calls atomic.Int64
	var lastDone atomic.Int64
	e.SetProgress(func(done, total int, label string) {
		calls.Add(1)
		lastDone.Store(int64(done))
		if done > total {
			t.Errorf("done %d > total %d", done, total)
		}
		if label != "sleepy" {
			t.Errorf("label = %q", label)
		}
	})
	for i := 0; i < 5; i++ {
		e.Submit("sleepy", func() error {
			time.Sleep(time.Millisecond)
			return nil
		})
	}
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 5 || lastDone.Load() != 5 {
		t.Fatalf("progress calls = %d, last done = %d, want 5/5", calls.Load(), lastDone.Load())
	}
	st := e.Stats()
	if st.RunTime < 5*time.Millisecond {
		t.Fatalf("RunTime %v shorter than the sleeps it contains", st.RunTime)
	}
	if st.MaxRun < time.Millisecond || st.MaxRun > st.RunTime {
		t.Fatalf("MaxRun %v outside (1ms, %v)", st.MaxRun, st.RunTime)
	}
}

func TestEngineReuseAccumulates(t *testing.T) {
	e := NewEngine(2)
	e.Submit("a", func() error { return nil })
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	e.Submit("b", func() error { return nil })
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Runs != 2 {
		t.Fatalf("accounting did not accumulate across rounds: %+v", st)
	}
}

func TestRunAsyncMatchesRun(t *testing.T) {
	b, _ := Get("_unit_tiny")
	want, _, err := Run(b, RunConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(4)
	h := e.RunAsync(b, RunConfig{Seed: 5}, "tiny")
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	got := h.Result()
	if got.Cycles != want.Cycles || got.Cache.L1Misses != want.Cache.L1Misses {
		t.Fatalf("async run diverged: %d/%d vs %d/%d",
			got.Cycles, got.Cache.L1Misses, want.Cycles, want.Cache.L1Misses)
	}
	if h.Sys() == nil {
		t.Fatal("system not captured")
	}
}

func TestRepeatAsyncMatchesRepeat(t *testing.T) {
	b, _ := Get("_unit_tiny")
	wantMean, wantSD, wantLast, err := Repeat(b, RunConfig{Monitoring: true, Interval: 1000}, 3)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(4)
	h := e.RepeatAsync(b, RunConfig{Monitoring: true, Interval: 1000}, 3, "tiny")
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	if h.Mean() != wantMean || h.StdDev() != wantSD {
		t.Fatalf("RepeatAsync mean/sd = %f/%f, want %f/%f", h.Mean(), h.StdDev(), wantMean, wantSD)
	}
	if h.Last().Cycles != wantLast.Cycles {
		t.Fatalf("Last() = %d cycles, want %d", h.Last().Cycles, wantLast.Cycles)
	}
}

func TestRegisterAfterFreezePanics(t *testing.T) {
	Names() // freezes the registry
	defer func() {
		if recover() == nil {
			t.Error("Register after freeze did not panic")
		}
	}()
	Register("_too_late", nil)
}
