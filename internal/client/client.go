// Package client is the typed Go client for the hpmvmd /v1 wire API
// (internal/api). It is the only sanctioned way for Go code to talk to
// a server: the smoke checker (scripts/servesmoke), the load generator
// (cmd/hpmvmbench) and the fleet supervisor (cmd/hpmvmd -workers) all
// speak through it, so the coordinator↔worker protocol is exercised by
// exactly the code paths external clients use.
//
// A *Client implements serve.Backend (Name/Run/Statsz/Healthz/
// Workloads), which is what lets the fleet coordinator treat a remote
// worker process and an in-process server identically.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"hpmvm/internal/api"
)

// Config tunes a Client.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Name labels this client when it acts as a fleet backend (the
	// worker name used in routing and X-Hpmvmd-Worker). Defaults to
	// BaseURL.
	Name string
	// HTTPClient overrides the transport (nil = a dedicated client with
	// no global timeout; per-call ctx deadlines bound requests, since a
	// cold simulation legitimately runs for minutes).
	HTTPClient *http.Client
	// MaxRetries bounds retry-with-backoff on queue_full/draining
	// refusals (0 = 4; negative = no retries).
	MaxRetries int
	// RetryBase is the first backoff delay (0 = 100ms); each retry
	// doubles it, and a server Retry-After/retry_after hint overrides
	// the computed delay.
	RetryBase time.Duration
	// Route pins every run to a named worker via X-Hpmvmd-Route
	// (diagnostics: hpmvmbench uses it to probe per-worker
	// byte-identity).
	Route string
}

// Client is a typed /v1 API client.
type Client struct {
	cfg  Config
	http *http.Client
}

// New builds a client for baseURL-style cfg.
func New(cfg Config) *Client {
	if cfg.Name == "" {
		cfg.Name = cfg.BaseURL
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 4
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 100 * time.Millisecond
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	return &Client{cfg: cfg, http: hc}
}

// Name implements serve.Backend.
func (c *Client) Name() string { return c.cfg.Name }

// decodeError turns a non-200 response into *api.Error. Responses
// from anything other than hpmvmd (a proxy, a wrong port) lack the
// envelope; they become CodeUnavailable with the body as context.
func decodeError(status int, body []byte) *api.Error {
	var ae api.Error
	if err := json.Unmarshal(body, &ae); err == nil && ae.Message != "" && ae.Code != "" {
		return &ae
	}
	const max = 200
	trimmed := bytes.TrimSpace(body)
	if len(trimmed) > max {
		trimmed = trimmed[:max]
	}
	return &api.Error{
		Version: api.Version,
		Message: fmt.Sprintf("client: HTTP %d: %s", status, trimmed),
		Code:    api.CodeUnavailable,
	}
}

// retryDelay computes the wait before attempt n (0-based), honoring a
// server hint when one arrived.
func (c *Client) retryDelay(n int, hint time.Duration) time.Duration {
	if hint > 0 {
		return hint
	}
	return c.cfg.RetryBase << n
}

// retriable reports whether the refusal is worth waiting out.
func retriable(ae *api.Error) bool {
	return ae.Code == api.CodeQueueFull || ae.Code == api.CodeDraining
}

// Run executes one request via POST /v1/run, retrying enveloped
// queue_full/draining refusals with exponential backoff (server
// Retry-After hints override the schedule). The result carries the
// exact response bytes plus header metadata; failures are *api.Error.
func (c *Client) Run(ctx context.Context, req api.Request) (*api.RunResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: marshal request: %w", err)
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		res, err := c.runOnce(ctx, body)
		if err == nil {
			return res, nil
		}
		lastErr = err
		var ae *api.Error
		if attempt >= c.cfg.MaxRetries || !errors.As(err, &ae) || !retriable(ae) {
			return nil, lastErr
		}
		hint := time.Duration(0)
		if ae.RetryAfter > 0 {
			hint = time.Duration(ae.RetryAfter) * time.Second
		}
		select {
		case <-time.After(c.retryDelay(attempt, hint)):
		case <-ctx.Done():
			return nil, fmt.Errorf("client: %w (last refusal: %v)", ctx.Err(), lastErr)
		}
	}
}

// runOnce is one POST /v1/run round trip.
func (c *Client) runOnce(ctx context.Context, body []byte) (*api.RunResult, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.cfg.BaseURL+api.PathRun, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if c.cfg.Route != "" {
		hreq.Header.Set(api.HeaderRoute, c.cfg.Route)
	}
	resp, err := c.http.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("client: read response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		ae := decodeError(resp.StatusCode, data)
		if ae.RetryAfter == 0 {
			// The header hint mirrors the envelope's retry_after; trust
			// it when the envelope omitted one.
			if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
				ae.RetryAfter = secs
			}
		}
		return nil, ae
	}
	return &api.RunResult{
		Body:     data,
		Key:      resp.Header.Get(api.HeaderKey),
		Cache:    resp.Header.Get(api.HeaderCache),
		Snapshot: resp.Header.Get(api.HeaderSnapshot),
		Worker:   resp.Header.Get(api.HeaderWorker),
	}, nil
}

// RunResponse runs req and decodes the response body.
func (c *Client) RunResponse(ctx context.Context, req api.Request) (*api.RunResponse, *api.RunResult, error) {
	res, err := c.Run(ctx, req)
	if err != nil {
		return nil, nil, err
	}
	var rr api.RunResponse
	if err := json.Unmarshal(res.Body, &rr); err != nil {
		return nil, res, fmt.Errorf("client: decode run response: %w", err)
	}
	return &rr, res, nil
}

// getJSON fetches path and decodes into v.
func (c *Client) getJSON(ctx context.Context, path string, v any) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.cfg.BaseURL+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(hreq)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("client: read response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("client: decode %s: %w", path, err)
	}
	return nil
}

// Statsz implements serve.Backend: GET /v1/statsz.
func (c *Client) Statsz(ctx context.Context) (api.Statsz, error) {
	var st api.Statsz
	err := c.getJSON(ctx, api.PathStatsz, &st)
	return st, err
}

// FleetStatsz fetches a coordinator's aggregated statsz.
func (c *Client) FleetStatsz(ctx context.Context) (api.FleetStatsz, error) {
	var st api.FleetStatsz
	err := c.getJSON(ctx, api.PathStatsz, &st)
	return st, err
}

// Healthz implements serve.Backend: GET /v1/healthz, nil on HTTP 200.
func (c *Client) Healthz(ctx context.Context) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.cfg.BaseURL+api.PathHealthz, nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(hreq)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp.StatusCode, data)
	}
	return nil
}

// Workloads implements serve.Backend: GET /v1/workloads.
func (c *Client) Workloads(ctx context.Context) ([]api.WorkloadInfo, error) {
	var rows []api.WorkloadInfo
	err := c.getJSON(ctx, api.PathWorkloads, &rows)
	return rows, err
}
