package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"hpmvm/internal/api"
)

// StreamUpdate is one progress callback from RunStream.
type StreamUpdate struct {
	// Event is the SSE event name (api.EventQueued / EventProgress /
	// EventMeta).
	Event string
	// Queued is set for the queued event.
	Queued *api.StreamQueued
	// Progress is set for heartbeat events.
	Progress *api.StreamProgress
	// Meta is set for the meta event.
	Meta *api.StreamMeta
}

// RunStream executes one request via POST /v1/stream, invoking update
// (if non-nil) for each queued/progress/meta frame, and returns the
// reassembled result — byte-identical to what Run would have returned
// for the same request (the server strips the body's trailing newline
// for SSE framing; the client restores it).
//
// Refusals are not retried here: a stream caller is interactive and
// decides its own retry policy from the returned *api.Error.
func (c *Client) RunStream(ctx context.Context, req api.Request, update func(StreamUpdate)) (*api.RunResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: marshal request: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.cfg.BaseURL+api.PathStream, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("Accept", "text/event-stream")
	if c.cfg.Route != "" {
		hreq.Header.Set(api.HeaderRoute, c.cfg.Route)
	}
	resp, err := c.http.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()

	if !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream") {
		// Pre-admission rejection: a plain JSON error with its normal
		// status.
		data, rerr := io.ReadAll(resp.Body)
		if rerr != nil {
			return nil, fmt.Errorf("client: read response: %w", rerr)
		}
		return nil, decodeError(resp.StatusCode, data)
	}

	dec := api.NewStreamDecoder(resp.Body)
	var meta api.StreamMeta
	for {
		ev, err := dec.Next()
		if err == io.EOF {
			return nil, fmt.Errorf("client: stream ended without a result: %w", io.ErrUnexpectedEOF)
		}
		if err != nil {
			return nil, fmt.Errorf("client: stream: %w", err)
		}
		switch ev.Event {
		case api.EventQueued:
			if update != nil {
				var q api.StreamQueued
				if json.Unmarshal(ev.Data, &q) == nil {
					update(StreamUpdate{Event: ev.Event, Queued: &q})
				}
			}
		case api.EventProgress:
			if update != nil {
				var p api.StreamProgress
				if json.Unmarshal(ev.Data, &p) == nil {
					update(StreamUpdate{Event: ev.Event, Progress: &p})
				}
			}
		case api.EventMeta:
			if err := json.Unmarshal(ev.Data, &meta); err != nil {
				return nil, fmt.Errorf("client: decode meta frame: %w", err)
			}
			if update != nil {
				m := meta
				update(StreamUpdate{Event: ev.Event, Meta: &m})
			}
		case api.EventResult:
			// Restore the newline the server trimmed for SSE framing:
			// the bytes are now identical to the /v1/run body.
			return &api.RunResult{
				Body:     append(append([]byte{}, ev.Data...), '\n'),
				Key:      meta.Key,
				Cache:    meta.Cache,
				Snapshot: meta.Snapshot,
				Worker:   meta.Worker,
			}, nil
		case api.EventError:
			var ae api.Error
			if err := json.Unmarshal(ev.Data, &ae); err != nil || ae.Message == "" {
				return nil, fmt.Errorf("client: malformed error frame %q", ev.Data)
			}
			return nil, &ae
		}
	}
}
