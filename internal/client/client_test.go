package client

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hpmvm/internal/api"
	"hpmvm/internal/bench"
	"hpmvm/internal/serve"
	"hpmvm/internal/vm/bytecode"
	"hpmvm/internal/vm/classfile"
)

// The client must be usable as a fleet backend: this is the contract
// that makes remote worker processes and in-process servers
// interchangeable to the coordinator.
var _ serve.Backend = (*Client)(nil)

// The production registry lives behind the cmd binaries' blank import;
// like the serve tests, the client tests register their own tiny
// deterministic workload (in init, before serve.New freezes the
// registry).
func init() {
	bench.Register("serve_tiny", func() *bench.Program {
		const n = 50_000
		u := classfile.NewUniverse()
		cl := u.DefineClass("Tiny", nil)
		main := u.AddMethod(cl, "main", false, nil, classfile.KindVoid)
		b := bytecode.NewBuilder(u, main)
		b.Local("i", classfile.KindInt)
		b.Local("s", classfile.KindInt)
		b.Label("loop")
		b.Load("i").Const(n).If(bytecode.OpIfGE, "done")
		b.Load("s").Load("i").Add().Store("s")
		b.Inc("i", 1)
		b.Goto("loop")
		b.Label("done")
		b.Load("s").Result()
		b.Return()
		b.MustBuild()
		u.Layout()
		return &bench.Program{
			Name:     "serve_tiny",
			U:        u,
			Entry:    main,
			MinHeap:  1 << 20,
			Expected: []int64{n * (n - 1) / 2},
		}
	})
}

// TestClientAgainstServer runs the typed client against a real server
// handler end to end: run, decoded response, statsz, healthz,
// workloads, stream.
func TestClientAgainstServer(t *testing.T) {
	srv := serve.New(serve.Config{Jobs: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := New(Config{BaseURL: ts.URL, Name: "w0"})

	req := api.Request{Workload: "serve_tiny", Seed: 3}
	res, err := c.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Cache != "miss" || res.Key == "" {
		t.Errorf("cold run metadata = %+v, want miss with a key", res)
	}

	rr, res2, err := c.RunResponse(context.Background(), req)
	if err != nil {
		t.Fatalf("RunResponse: %v", err)
	}
	if res2.Cache != "hit" {
		t.Errorf("repeat disposition %q, want hit", res2.Cache)
	}
	if !bytes.Equal(res.Body, res2.Body) {
		t.Error("cached body differs from cold body")
	}
	if rr.Version != api.Version || rr.Workload != "serve_tiny" {
		t.Errorf("decoded response version %q workload %q", rr.Version, rr.Workload)
	}

	// Stream: identical bytes, with at least queued and meta updates.
	events := map[string]int{}
	sres, err := c.RunStream(context.Background(), req, func(u StreamUpdate) { events[u.Event]++ })
	if err != nil {
		t.Fatalf("RunStream: %v", err)
	}
	if !bytes.Equal(sres.Body, res.Body) {
		t.Error("streamed body differs from one-shot body")
	}
	if sres.Key != res.Key || sres.Cache != "hit" {
		t.Errorf("stream metadata = %+v", sres)
	}
	if events[api.EventQueued] != 1 || events[api.EventMeta] != 1 {
		t.Errorf("stream updates = %v, want one queued and one meta", events)
	}

	if err := c.Healthz(context.Background()); err != nil {
		t.Errorf("Healthz: %v", err)
	}
	st, err := c.Statsz(context.Background())
	if err != nil {
		t.Fatalf("Statsz: %v", err)
	}
	if st.Version != api.Version || st.Cache.Hits == 0 {
		t.Errorf("statsz = version %q hits %d", st.Version, st.Cache.Hits)
	}
	rows, err := c.Workloads(context.Background())
	if err != nil || len(rows) == 0 {
		t.Fatalf("Workloads: %v (%d rows)", err, len(rows))
	}
}

// TestClientDecodesEnvelope: API failures surface as *api.Error with
// the server's code intact.
func TestClientDecodesEnvelope(t *testing.T) {
	srv := serve.New(serve.Config{Jobs: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := New(Config{BaseURL: ts.URL})

	_, err := c.Run(context.Background(), api.Request{Workload: "nope"})
	var ae *api.Error
	if !errors.As(err, &ae) {
		t.Fatalf("error %T %v, want *api.Error", err, err)
	}
	if ae.Code != api.CodeUnknownWorkload {
		t.Errorf("code = %q, want %q", ae.Code, api.CodeUnknownWorkload)
	}
}

// TestClientRetriesQueueFull: the client waits out 429 refusals,
// honoring the retry_after hint, and succeeds when capacity frees up.
func TestClientRetriesQueueFull(t *testing.T) {
	var calls int
	mux := http.NewServeMux()
	mux.HandleFunc(api.PathRun, func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls <= 2 {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"version":"v1","error":"queue full","code":"queue_full"}` + "\n"))
			return
		}
		w.Header().Set(api.HeaderCache, "miss")
		w.Write([]byte(`{"version":"v1","workload":"serve_tiny"}` + "\n"))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL, MaxRetries: 4, RetryBase: time.Millisecond})
	start := time.Now()
	res, err := c.Run(context.Background(), api.Request{Workload: "serve_tiny"})
	if err != nil {
		t.Fatalf("Run after retries: %v", err)
	}
	if calls != 3 {
		t.Errorf("server saw %d calls, want 3", calls)
	}
	if res.Cache != "miss" {
		t.Errorf("metadata = %+v", res)
	}
	// Two retries honoring the 1s Retry-After header hint.
	if elapsed := time.Since(start); elapsed < 2*time.Second {
		t.Errorf("retries took %v, want >= 2s (Retry-After hint ignored)", elapsed)
	}
}

// TestClientRetryBudgetExhausted: persistent refusals surface the last
// envelope after MaxRetries attempts.
func TestClientRetryBudgetExhausted(t *testing.T) {
	var calls int
	mux := http.NewServeMux()
	mux.HandleFunc(api.PathRun, func(w http.ResponseWriter, r *http.Request) {
		calls++
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"version":"v1","error":"queue full","code":"queue_full"}` + "\n"))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL, MaxRetries: 2, RetryBase: time.Millisecond})
	_, err := c.Run(context.Background(), api.Request{Workload: "serve_tiny"})
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeQueueFull {
		t.Fatalf("error %v, want queue_full envelope", err)
	}
	if calls != 3 {
		t.Errorf("server saw %d calls, want 3 (1 + 2 retries)", calls)
	}
}

// TestClientNoRetryOnBadRequest: client errors are terminal, not
// retried.
func TestClientNoRetryOnBadRequest(t *testing.T) {
	var calls int
	mux := http.NewServeMux()
	mux.HandleFunc(api.PathRun, func(w http.ResponseWriter, r *http.Request) {
		calls++
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"version":"v1","error":"bad","code":"bad_request"}` + "\n"))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL, RetryBase: time.Millisecond})
	_, err := c.Run(context.Background(), api.Request{Workload: "serve_tiny"})
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeBadRequest {
		t.Fatalf("error %v, want bad_request envelope", err)
	}
	if calls != 1 {
		t.Errorf("server saw %d calls, want 1", calls)
	}
}

// TestClientNonEnvelopeError: answers from something that is not
// hpmvmd (proxy error pages) become CodeUnavailable.
func TestClientNonEnvelopeError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "bad gateway", http.StatusBadGateway)
	}))
	defer ts.Close()
	c := New(Config{BaseURL: ts.URL, MaxRetries: -1})
	_, err := c.Run(context.Background(), api.Request{Workload: "serve_tiny"})
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeUnavailable {
		t.Fatalf("error %v, want unavailable envelope", err)
	}
}

// TestClientRoutePin: the Route config pins runs via the
// X-Hpmvmd-Route header.
func TestClientRoutePin(t *testing.T) {
	var gotPin string
	mux := http.NewServeMux()
	mux.HandleFunc(api.PathRun, func(w http.ResponseWriter, r *http.Request) {
		gotPin = r.Header.Get(api.HeaderRoute)
		w.Write([]byte(`{"version":"v1"}` + "\n"))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := New(Config{BaseURL: ts.URL, Route: "w2"})
	if _, err := c.Run(context.Background(), api.Request{Workload: "serve_tiny"}); err != nil {
		t.Fatal(err)
	}
	if gotPin != "w2" {
		t.Errorf("route pin header = %q, want w2", gotPin)
	}
}

// TestClientStreamError: an in-stream error frame surfaces as
// *api.Error.
func TestClientStreamError(t *testing.T) {
	srv := serve.New(serve.Config{Jobs: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.Drain()
	c := New(Config{BaseURL: ts.URL})
	_, err := c.RunStream(context.Background(), api.Request{Workload: "serve_tiny", Seed: 1}, nil)
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeDraining {
		t.Fatalf("stream error = %v, want draining envelope", err)
	}
}
