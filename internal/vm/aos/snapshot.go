package aos

import (
	"sort"

	"hpmvm/internal/snap"
)

// Snapshot/Restore implement snap.Checkpointable for the adaptive
// optimization system: the sampler deadline, the per-method sample and
// level tables, the recorded plan, and the recompilation counters.

const (
	snapComponent = "vm/aos"
	snapVersion   = 1
)

func encodeIntMapU64(w *snap.Writer, m map[int]uint64) {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	w.U64(uint64(len(keys)))
	for _, k := range keys {
		w.I64(int64(k))
		w.U64(m[k])
	}
}

func decodeIntMapU64(r *snap.Reader) map[int]uint64 {
	n := r.U64()
	m := make(map[int]uint64, n)
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		k := int(r.I64())
		m[k] = r.U64()
	}
	return m
}

func encodeIntMapInt(w *snap.Writer, m map[int]int) {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	w.U64(uint64(len(keys)))
	for _, k := range keys {
		w.I64(int64(k))
		w.I64(int64(m[k]))
	}
}

func decodeIntMapInt(r *snap.Reader) map[int]int {
	n := r.U64()
	m := make(map[int]int, n)
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		k := int(r.I64())
		m[k] = int(r.I64())
	}
	return m
}

// Snapshot serializes the AOS's mutable state.
func (a *AOS) Snapshot() snap.ComponentState {
	var w snap.Writer
	w.U64(a.deadline)
	encodeIntMapU64(&w, a.samples)
	encodeIntMapInt(&w, a.level)
	encodeIntMapInt(&w, map[int]int(a.plan))
	w.U64(a.recompilations)
	w.U64(a.compileCycles)
	return snap.ComponentState{Component: snapComponent, Version: snapVersion, Data: w.Bytes()}
}

// Restore overwrites the AOS's mutable state. Pair with Reattach on a
// restored system: Attach would reset the sampler deadline, destroying
// the restored value.
func (a *AOS) Restore(st snap.ComponentState) error {
	if err := snap.Check(st, snapComponent, snapVersion); err != nil {
		return err
	}
	r := snap.NewReader(st.Data)
	deadline := r.U64()
	samples := decodeIntMapU64(r)
	level := decodeIntMapInt(r)
	plan := decodeIntMapInt(r)
	recompilations := r.U64()
	compileCycles := r.U64()
	if err := r.Close(); err != nil {
		return err
	}
	a.deadline = deadline
	a.samples = samples
	a.level = level
	for k := range a.plan {
		delete(a.plan, k)
	}
	for k, v := range plan {
		a.plan[k] = v
	}
	a.recompilations = recompilations
	a.compileCycles = compileCycles
	return nil
}

// Reattach registers the AOS sampler with the VM without resetting the
// restored deadline (Attach computes a fresh one).
func (a *AOS) Reattach() {
	a.vm.AddTicker(a)
}
