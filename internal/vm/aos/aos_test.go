package aos_test

import (
	"testing"

	"hpmvm/internal/gc/genms"
	"hpmvm/internal/hw/cache"
	"hpmvm/internal/vm/aos"
	"hpmvm/internal/vm/bytecode"
	"hpmvm/internal/vm/classfile"
	"hpmvm/internal/vm/runtime"
)

// hotProgram runs a hot inner method many times from main.
func hotProgram(u *classfile.Universe) (*classfile.Method, *classfile.Method) {
	c := u.DefineClass("Hot", nil)
	inner := u.AddMethod(c, "inner", false, []classfile.Kind{classfile.KindInt}, classfile.KindInt)
	b := bytecode.NewBuilder(u, inner)
	b.BindArg(0, "x")
	b.Local("i", classfile.KindInt)
	b.Local("s", classfile.KindInt)
	b.Label("loop")
	b.Load("i").Const(200).If(bytecode.OpIfGE, "done")
	b.Load("s").Load("x").Add().Store("s")
	b.Inc("i", 1)
	b.Goto("loop")
	b.Label("done")
	b.Load("s").ReturnVal()
	b.MustBuild()

	main := u.AddMethod(c, "main", false, nil, classfile.KindVoid)
	b = bytecode.NewBuilder(u, main)
	b.Local("i", classfile.KindInt)
	b.Local("acc", classfile.KindInt)
	b.Label("loop")
	b.Load("i").Const(3000).If(bytecode.OpIfGE, "done")
	b.Load("acc").Load("i").InvokeStatic(inner).Add().Store("acc")
	b.Inc("i", 1)
	b.Goto("loop")
	b.Label("done")
	b.Load("acc").Result()
	b.Return()
	b.MustBuild()
	return main, inner
}

func TestAdaptiveRecompilation(t *testing.T) {
	u := classfile.NewUniverse()
	main, inner := hotProgram(u)
	u.Layout()

	vm := runtime.New(u, cache.DefaultP4())
	genms.New(vm, genms.DefaultConfig(16<<20))
	a := aos.New(vm, aos.DefaultConfig())
	vm.BuildDispatch()
	if err := vm.CompileAll(nil); err != nil { // everything baseline
		t.Fatal(err)
	}
	baselineEntry := vm.MethodEntry(inner)
	a.Attach()
	if err := vm.Start(main); err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	// 3000 * sum(0..199 of x) = 200*x per call... verify program result:
	// inner(x) = 200*x, acc = 200 * (3000*2999/2).
	want := int64(200) * (3000 * 2999 / 2)
	if got := vm.Results(); len(got) != 1 || got[0] != want {
		t.Fatalf("results = %v, want [%d]", got, want)
	}
	if a.Recompilations() == 0 {
		t.Fatal("hot method never recompiled")
	}
	if vm.MethodEntry(inner) == baselineEntry {
		t.Error("method entry not retargeted after recompilation")
	}
	plan := a.Plan()
	if plan[inner.ID] == 0 {
		t.Errorf("plan = %v, inner method missing", plan)
	}
	if a.CompileCycles() == 0 {
		t.Error("recompilation cost not charged")
	}
	if rep := a.Report(5); rep == "" {
		t.Error("empty report")
	}
}

func TestPlanReplayMatchesAdaptiveResults(t *testing.T) {
	// Record a plan adaptively, then replay it pseudo-adaptively (the
	// paper's measurement configuration) and compare program results.
	u1 := classfile.NewUniverse()
	main1, _ := hotProgram(u1)
	u1.Layout()
	vm1 := runtime.New(u1, cache.DefaultP4())
	genms.New(vm1, genms.DefaultConfig(16<<20))
	a := aos.New(vm1, aos.DefaultConfig())
	vm1.BuildDispatch()
	if err := vm1.CompileAll(nil); err != nil {
		t.Fatal(err)
	}
	a.Attach()
	if err := vm1.Start(main1); err != nil {
		t.Fatal(err)
	}
	if err := vm1.Run(0); err != nil {
		t.Fatal(err)
	}
	recorded := a.Plan()

	// Replay: method IDs are deterministic across identical universes.
	u2 := classfile.NewUniverse()
	main2, _ := hotProgram(u2)
	u2.Layout()
	vm2 := runtime.New(u2, cache.DefaultP4())
	genms.New(vm2, genms.DefaultConfig(16<<20))
	vm2.BuildDispatch()
	if err := vm2.CompileAll(recorded); err != nil {
		t.Fatal(err)
	}
	if err := vm2.Start(main2); err != nil {
		t.Fatal(err)
	}
	if err := vm2.Run(0); err != nil {
		t.Fatal(err)
	}
	if vm1.Results()[0] != vm2.Results()[0] {
		t.Errorf("replay diverged: %d vs %d", vm1.Results()[0], vm2.Results()[0])
	}
	// The replayed run avoids mid-run compilation pauses, so it should
	// not be slower than the adaptive run.
	if vm2.Cycles() > vm1.Cycles() {
		t.Errorf("replay slower than adaptive: %d vs %d", vm2.Cycles(), vm1.Cycles())
	}
}
