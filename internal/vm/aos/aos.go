// Package aos implements the adaptive optimization system (§3.2): a
// timer-based sampler records which method the CPU is executing at
// each tick; methods sampled often enough are recompiled with the
// optimizing compiler when a static cost/benefit model predicts the
// recompilation pays for itself. A recorded run produces the
// pre-generated compilation plan used by the paper's pseudo-adaptive
// measurement configuration (§6.1), which guarantees every measured
// run optimizes exactly the same methods.
package aos

import (
	"fmt"
	"sort"

	"hpmvm/internal/vm/bytecode"
	"hpmvm/internal/vm/classfile"
	"hpmvm/internal/vm/runtime"
)

// LevelSpec models one optimization level in the cost/benefit model.
type LevelSpec struct {
	Level int
	// Speedup is the expected execution-rate improvement over baseline
	// code (Jikes uses static per-level constants).
	Speedup float64
	// CompileCyclesPerBC is the compilation cost per bytecode.
	CompileCyclesPerBC uint64
}

// Config tunes the AOS.
type Config struct {
	// SampleIntervalCycles is the timer-tick period (Jikes samples the
	// call stack on every OS timer interrupt).
	SampleIntervalCycles uint64
	// MinSamples gates recompilation consideration.
	MinSamples uint64
	// Levels must be ordered by Level ascending.
	Levels []LevelSpec
}

// DefaultConfig returns a scaled Jikes-like configuration.
func DefaultConfig() Config {
	return Config{
		SampleIntervalCycles: 100_000,
		MinSamples:           4,
		Levels: []LevelSpec{
			{Level: 1, Speedup: 2.0, CompileCyclesPerBC: 6_000},
			{Level: 2, Speedup: 2.6, CompileCyclesPerBC: 15_000},
		},
	}
}

// AOS is the adaptive optimization system; it implements
// runtime.Ticker.
type AOS struct {
	vm  *runtime.VM
	cfg Config

	deadline uint64
	samples  map[int]uint64 // methodID -> timer samples
	level    map[int]int    // methodID -> current opt level
	plan     runtime.CompilePlan

	recompilations uint64
	compileCycles  uint64
}

// New builds the AOS. Call Attach to start sampling.
func New(vm *runtime.VM, cfg Config) *AOS {
	return &AOS{
		vm:      vm,
		cfg:     cfg,
		samples: make(map[int]uint64),
		level:   make(map[int]int),
		plan:    make(runtime.CompilePlan),
	}
}

// Attach registers the AOS sampler with the VM.
func (a *AOS) Attach() {
	a.deadline = a.vm.CPU.Cycles() + a.cfg.SampleIntervalCycles
	a.vm.AddTicker(a)
}

// Deadline implements runtime.Ticker.
func (a *AOS) Deadline() uint64 { return a.deadline }

// Tick implements runtime.Ticker: one timer sample plus any triggered
// recompilation.
func (a *AOS) Tick() {
	c := a.vm.CPU
	a.deadline = c.Cycles() + a.cfg.SampleIntervalCycles

	body, ok := a.vm.Table.Lookup(c.PC)
	if !ok {
		return
	}
	m := body.Method
	a.samples[m.ID]++
	a.consider(m)
}

// consider applies the cost/benefit model: recompile when the expected
// future savings exceed the compilation cost (§3.2's static model).
func (a *AOS) consider(m *classfile.Method) {
	n := a.samples[m.ID]
	if n < a.cfg.MinSamples {
		return
	}
	cur := a.level[m.ID]
	code, ok := m.Code.(*bytecode.Code)
	if !ok {
		return
	}
	for _, spec := range a.cfg.Levels {
		if spec.Level <= cur {
			continue
		}
		curSpeedup := 1.0
		for _, s := range a.cfg.Levels {
			if s.Level == cur {
				curSpeedup = s.Speedup
			}
		}
		// Assume the method keeps its observed share of execution for
		// as long again as it has run so far (Jikes' future-equals-past
		// estimate).
		futureCycles := float64(n * a.cfg.SampleIntervalCycles)
		benefit := futureCycles * (1 - curSpeedup/spec.Speedup)
		cost := float64(uint64(code.Size()) * spec.CompileCyclesPerBC)
		if benefit <= cost {
			continue
		}
		compileCost := uint64(code.Size()) * spec.CompileCyclesPerBC
		a.vm.CPU.AddCycles(compileCost)
		a.compileCycles += compileCost
		if err := a.vm.CompileMethod(m, spec.Level); err != nil {
			// Methods the optimizing compiler cannot handle stay at
			// their current level.
			return
		}
		a.level[m.ID] = spec.Level
		a.plan[m.ID] = spec.Level
		a.recompilations++
		return
	}
}

// Plan returns the recorded compilation plan (methodID -> level) for
// pseudo-adaptive replay.
func (a *AOS) Plan() runtime.CompilePlan {
	out := make(runtime.CompilePlan, len(a.plan))
	for k, v := range a.plan {
		out[k] = v
	}
	return out
}

// Recompilations returns how many recompilations were performed.
func (a *AOS) Recompilations() uint64 { return a.recompilations }

// CompileCycles returns the cycles charged for recompilation.
func (a *AOS) CompileCycles() uint64 { return a.compileCycles }

// Report renders the hot-method table for diagnostics.
func (a *AOS) Report(topN int) string {
	type row struct {
		id int
		n  uint64
	}
	var rows []row
	for id, n := range a.samples {
		rows = append(rows, row{id, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].id < rows[j].id
	})
	if len(rows) > topN {
		rows = rows[:topN]
	}
	out := fmt.Sprintf("aos: %d recompilations\n", a.recompilations)
	for _, r := range rows {
		m := a.vm.U.Method(r.id)
		out += fmt.Sprintf("  %-32s %6d samples  level %d\n", m.QualifiedName(), r.n, a.level[r.id])
	}
	return out
}
