package ir

import (
	"fmt"

	"hpmvm/internal/vm/bytecode"
	"hpmvm/internal/vm/classfile"
)

// Build converts verified bytecode into IR. Cross-block operand-stack
// values are spilled to dedicated temp locals so that every block is
// internally single-assignment; the verifier's per-index stack typing
// drives the conversion.
func Build(u *classfile.Universe, code *bytecode.Code) (*Func, error) {
	if code.StackIn == nil {
		return nil, fmt.Errorf("ir: %s: bytecode not verified", code.Method.QualifiedName())
	}
	f := &Func{
		Method:     code.Method,
		NumLocals:  code.NumLocals,
		LocalKinds: append([]classfile.Kind(nil), code.LocalKinds...),
	}

	// Temp locals for cross-block stack slots, allocated per
	// (depth, kind) on demand.
	type tempKey struct {
		depth int
		kind  classfile.Kind
	}
	temps := make(map[tempKey]int)
	tempLocal := func(depth int, kind classfile.Kind) int {
		k := tempKey{depth, kind}
		if slot, ok := temps[k]; ok {
			return slot
		}
		slot := f.NumLocals
		f.NumLocals++
		f.LocalKinds = append(f.LocalKinds, kind)
		temps[k] = slot
		return slot
	}

	// Identify basic-block leaders.
	n := len(code.Instrs)
	leader := make([]bool, n)
	leader[0] = true
	for i, in := range code.Instrs {
		if in.Op.IsBranch() {
			leader[in.A] = true
			if i+1 < n {
				leader[i+1] = true
			}
		}
		if (in.Op == bytecode.OpReturn || in.Op == bytecode.OpReturnVal) && i+1 < n {
			leader[i+1] = true
		}
	}
	blockAt := make([]int, n)
	idx := -1
	for i := 0; i < n; i++ {
		if leader[i] {
			idx++
			f.Blocks = append(f.Blocks, &Block{Index: idx})
		}
		blockAt[i] = idx
	}

	widen := func(k classfile.Kind) classfile.Kind {
		if k == classfile.KindRef {
			return classfile.KindRef
		}
		return classfile.KindInt
	}

	// Convert each block.
	start := 0
	for bi := 0; bi < len(f.Blocks); bi++ {
		blk := f.Blocks[bi]
		end := n
		for i := start + 1; i < n; i++ {
			if leader[i] {
				end = i
				break
			}
		}

		emit := func(in *Instr, hasDef bool) *Instr {
			in = f.newInstr(in, hasDef)
			blk.Instrs = append(blk.Instrs, in)
			return in
		}

		// Reload the incoming operand stack from temp locals.
		var stack []int
		entryKinds := code.StackIn[start]
		for d, k := range entryKinds {
			k = widen(k)
			ld := emit(&Instr{Op: OpLoadLocal, Kind: k, Local: tempLocal(d, k), BCI: start}, true)
			stack = append(stack, ld.ID)
		}
		pop := func() int {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			return v
		}
		pushv := func(id int) { stack = append(stack, id) }

		// spillStack stores the remaining stack into temp locals
		// before a control transfer.
		spillStack := func(bci int) {
			for d, v := range stack {
				k := f.values[v].Kind
				emit(&Instr{Op: OpStoreLocal, Local: tempLocal(d, k), Args: []int{v}, BCI: bci}, false)
			}
		}

		terminated := false
		for pc := start; pc < end; pc++ {
			in := code.Instrs[pc]
			switch in.Op {
			case bytecode.OpNop:

			case bytecode.OpConstInt:
				pushv(emit(&Instr{Op: OpConst, Kind: classfile.KindInt, Const: in.A, BCI: pc}, true).ID)
			case bytecode.OpConstNull:
				pushv(emit(&Instr{Op: OpConst, Kind: classfile.KindRef, Const: 0, BCI: pc}, true).ID)
			case bytecode.OpLoadConst:
				addr := code.RefConstAddrs[in.A]
				pushv(emit(&Instr{Op: OpConstRef, Kind: classfile.KindRef, Const: int64(addr), BCI: pc}, true).ID)

			case bytecode.OpLoad:
				k := widen(code.LocalKinds[in.A])
				pushv(emit(&Instr{Op: OpLoadLocal, Kind: k, Local: int(in.A), BCI: pc}, true).ID)
			case bytecode.OpStore:
				v := pop()
				emit(&Instr{Op: OpStoreLocal, Local: int(in.A), Args: []int{v}, BCI: pc}, false)
			case bytecode.OpIInc:
				ld := emit(&Instr{Op: OpLoadLocal, Kind: classfile.KindInt, Local: int(in.A), BCI: pc}, true)
				cst := emit(&Instr{Op: OpConst, Kind: classfile.KindInt, Const: in.B, BCI: pc}, true)
				sum := emit(&Instr{Op: OpArith, Kind: classfile.KindInt, Const: int64(Add), Args: []int{ld.ID, cst.ID}, BCI: pc}, true)
				emit(&Instr{Op: OpStoreLocal, Local: int(in.A), Args: []int{sum.ID}, BCI: pc}, false)

			case bytecode.OpGetField:
				fld := u.Field(int(in.A))
				obj := pop()
				pushv(emit(&Instr{Op: OpGetField, Kind: widen(fld.Kind), Field: fld, Args: []int{obj}, BCI: pc}, true).ID)
			case bytecode.OpPutField:
				fld := u.Field(int(in.A))
				val := pop()
				obj := pop()
				emit(&Instr{Op: OpPutField, Field: fld, Args: []int{obj, val}, BCI: pc}, false)

			case bytecode.OpNewObject:
				cl := u.Class(int(in.A))
				pushv(emit(&Instr{Op: OpNewObject, Kind: classfile.KindRef, Class: cl, BCI: pc}, true).ID)
			case bytecode.OpNewArray:
				cl := u.Class(int(in.A))
				ln := pop()
				pushv(emit(&Instr{Op: OpNewArray, Kind: classfile.KindRef, Class: cl, Args: []int{ln}, BCI: pc}, true).ID)

			case bytecode.OpALoad:
				k := classfile.Kind(in.A)
				i2 := pop()
				arr := pop()
				pushv(emit(&Instr{Op: OpALoad, Kind: widen(k), ElemKind: k, Args: []int{arr, i2}, BCI: pc}, true).ID)
			case bytecode.OpAStore:
				k := classfile.Kind(in.A)
				val := pop()
				i2 := pop()
				arr := pop()
				emit(&Instr{Op: OpAStore, ElemKind: k, Args: []int{arr, i2, val}, BCI: pc}, false)
			case bytecode.OpArrayLen:
				arr := pop()
				pushv(emit(&Instr{Op: OpArrayLen, Kind: classfile.KindInt, Args: []int{arr}, BCI: pc}, true).ID)

			case bytecode.OpAdd, bytecode.OpSub, bytecode.OpMul, bytecode.OpDiv, bytecode.OpRem,
				bytecode.OpAnd, bytecode.OpOr, bytecode.OpXor, bytecode.OpShl, bytecode.OpShr, bytecode.OpSar:
				bo := pop()
				ao := pop()
				var aop ArithOp
				switch in.Op {
				case bytecode.OpAdd:
					aop = Add
				case bytecode.OpSub:
					aop = Sub
				case bytecode.OpMul:
					aop = Mul
				case bytecode.OpDiv:
					aop = Div
				case bytecode.OpRem:
					aop = Rem
				case bytecode.OpAnd:
					aop = And
				case bytecode.OpOr:
					aop = Or
				case bytecode.OpXor:
					aop = Xor
				case bytecode.OpShl:
					aop = Shl
				case bytecode.OpShr:
					aop = Shr
				case bytecode.OpSar:
					aop = Sar
				}
				pushv(emit(&Instr{Op: OpArith, Kind: classfile.KindInt, Const: int64(aop), Args: []int{ao, bo}, BCI: pc}, true).ID)
			case bytecode.OpNeg:
				v := pop()
				pushv(emit(&Instr{Op: OpNeg, Kind: classfile.KindInt, Args: []int{v}, BCI: pc}, true).ID)

			case bytecode.OpGoto:
				spillStack(pc)
				emit(&Instr{Op: OpGoto, Target: blockAt[in.A], BCI: pc}, false)
				terminated = true

			case bytecode.OpIfEQ, bytecode.OpIfNE, bytecode.OpIfLT, bytecode.OpIfLE,
				bytecode.OpIfGT, bytecode.OpIfGE, bytecode.OpIfRefEQ, bytecode.OpIfRefNE:
				bo := pop()
				ao := pop()
				var cond Cond
				switch in.Op {
				case bytecode.OpIfEQ, bytecode.OpIfRefEQ:
					cond = EQ
				case bytecode.OpIfNE, bytecode.OpIfRefNE:
					cond = NE
				case bytecode.OpIfLT:
					cond = LT
				case bytecode.OpIfLE:
					cond = LE
				case bytecode.OpIfGT:
					cond = GT
				case bytecode.OpIfGE:
					cond = GE
				}
				spillStack(pc)
				emit(&Instr{Op: OpBranch, Cond: cond, Args: []int{ao, bo}, Target: blockAt[in.A], BCI: pc}, false)
			case bytecode.OpIfNull, bytecode.OpIfNonNull:
				v := pop()
				z := emit(&Instr{Op: OpConst, Kind: classfile.KindRef, Const: 0, BCI: pc}, true)
				cond := EQ
				if in.Op == bytecode.OpIfNonNull {
					cond = NE
				}
				spillStack(pc)
				emit(&Instr{Op: OpBranch, Cond: cond, Args: []int{v, z.ID}, Target: blockAt[in.A], BCI: pc}, false)

			case bytecode.OpInvokeStatic, bytecode.OpInvokeVirtual:
				m := u.Method(int(in.A))
				args := make([]int, len(m.Args))
				for i := len(m.Args) - 1; i >= 0; i-- {
					args[i] = pop()
				}
				op := OpCallStatic
				if in.Op == bytecode.OpInvokeVirtual {
					op = OpCallVirtual
				}
				hasDef := m.Ret != classfile.KindVoid
				call := emit(&Instr{Op: op, Kind: widen(m.Ret), Method: m, Args: args, BCI: pc}, hasDef)
				if hasDef {
					pushv(call.ID)
				}

			case bytecode.OpReturn:
				emit(&Instr{Op: OpReturn, BCI: pc}, false)
				terminated = true
			case bytecode.OpReturnVal:
				v := pop()
				emit(&Instr{Op: OpRetVal, Args: []int{v}, BCI: pc}, false)
				terminated = true

			case bytecode.OpPop:
				pop()
			case bytecode.OpDup:
				v := pop()
				pushv(v)
				pushv(v)
			case bytecode.OpSwap:
				a := pop()
				b := pop()
				pushv(a)
				pushv(b)

			case bytecode.OpResult:
				v := pop()
				emit(&Instr{Op: OpResult, Args: []int{v}, BCI: pc}, false)

			case bytecode.OpNullCheck:
				v := pop()
				emit(&Instr{Op: OpNullCheck, Args: []int{v}, BCI: pc}, false)

			default:
				return nil, fmt.Errorf("ir: %s@%d: unsupported opcode %v", code.Method.QualifiedName(), pc, in.Op)
			}
		}

		// Establish the block terminator and successors. A block ending
		// in a conditional branch falls through to the next block (the
		// stack was already spilled before the branch); any other open
		// end gets an explicit goto.
		if !terminated {
			var last *Instr
			if len(blk.Instrs) > 0 {
				last = blk.Instrs[len(blk.Instrs)-1]
			}
			if last != nil && last.Op == OpBranch {
				blk.Succs = []int{bi + 1, last.Target}
			} else {
				spillStack(end - 1)
				emit(&Instr{Op: OpGoto, Target: bi + 1, BCI: end - 1}, false)
				blk.Succs = []int{bi + 1}
			}
		} else {
			last := blk.Instrs[len(blk.Instrs)-1]
			if last.Op == OpGoto {
				blk.Succs = []int{last.Target}
			}
		}
		start = end
	}
	return f, nil
}
