// Package ir is the optimizing compiler's high-level intermediate
// representation: a CFG of basic blocks holding three-address
// instructions over virtual values, with single assignment within each
// block (cross-block data flow goes through explicit local-variable
// load/store instructions).
//
// Every IR instruction records the bytecode index it came from; the
// machine-code maps extend this provenance down to individual machine
// instructions, which is what lets the monitor attribute a sampled
// cache miss to an IR instruction and then to a reference field
// (§4.2, §5.2: "internally we actually use the actual high-level IR
// instructions that correspond to the bytecode").
package ir

import (
	"fmt"
	"strings"

	"hpmvm/internal/vm/classfile"
)

// Op is an IR operation.
type Op uint8

const (
	OpConst    Op = iota // define integer constant Const
	OpConstRef           // define reference constant (resolved address in Const)

	OpLoadLocal  // define value of local Local
	OpStoreLocal // store Args[0] into local Local

	OpArith // define Args[0] <ArithOp> Args[1]
	OpNeg   // define -Args[0]

	OpGetField // define Args[0].Field
	OpPutField // Args[0].Field = Args[1]

	OpNewObject // define new Class
	OpNewArray  // define new Class[Args[0]]

	OpALoad    // define Args[0][Args[1]] (element kind ElemKind)
	OpAStore   // Args[0][Args[1]] = Args[2]
	OpArrayLen // define length of Args[0]

	OpCallStatic  // define (or void) call of Method with Args
	OpCallVirtual // define (or void) virtual call; Args[0] is receiver

	OpBranch // if Args[0] <Cond> Args[1] goto block Target, else fall through
	OpGoto   // goto block Target
	OpReturn // return void
	OpRetVal // return Args[0]

	OpResult // append Args[0] to the program result log

	OpNullCheck // trap when Args[0] is null (inlined virtual receiver)

	numIROps
)

var irOpNames = [numIROps]string{
	OpConst: "const", OpConstRef: "constref",
	OpLoadLocal: "loadlocal", OpStoreLocal: "storelocal",
	OpArith: "arith", OpNeg: "neg",
	OpGetField: "getfield", OpPutField: "putfield",
	OpNewObject: "new", OpNewArray: "newarray",
	OpALoad: "aload", OpAStore: "astore", OpArrayLen: "arraylen",
	OpCallStatic: "callstatic", OpCallVirtual: "callvirtual",
	OpBranch: "branch", OpGoto: "goto", OpReturn: "return", OpRetVal: "retval",
	OpResult: "result", OpNullCheck: "nullcheck",
}

func (o Op) String() string {
	if int(o) < len(irOpNames) && irOpNames[o] != "" {
		return irOpNames[o]
	}
	return fmt.Sprintf("irop(%d)", int(o))
}

// ArithOp enumerates binary integer operations.
type ArithOp uint8

const (
	Add ArithOp = iota
	Sub
	Mul
	Div
	Rem
	And
	Or
	Xor
	Shl
	Shr
	Sar
)

var arithNames = []string{"add", "sub", "mul", "div", "rem", "and", "or", "xor", "shl", "shr", "sar"}

func (a ArithOp) String() string { return arithNames[a] }

// Cond enumerates branch conditions. Reference equality uses EQ/NE on
// the 64-bit address values.
type Cond uint8

const (
	EQ Cond = iota
	NE
	LT
	LE
	GT
	GE
)

var condNames = []string{"eq", "ne", "lt", "le", "gt", "ge"}

func (c Cond) String() string { return condNames[c] }

// Negate returns the opposite condition.
func (c Cond) Negate() Cond {
	switch c {
	case EQ:
		return NE
	case NE:
		return EQ
	case LT:
		return GE
	case LE:
		return GT
	case GT:
		return LE
	default:
		return LT
	}
}

// NoValue marks instructions that define nothing.
const NoValue = -1

// Instr is one IR instruction. ID is the defined value (NoValue for
// pure effects); Args reference the IDs of operand-defining
// instructions.
type Instr struct {
	ID int
	// Seq is the function-wide instruction sequence number; unlike ID
	// it is assigned to every instruction (including effect-only ones)
	// and is what the machine-code maps record as the "IR id".
	Seq  int
	Op   Op
	Kind classfile.Kind // kind of the defined value
	Args []int

	Const    int64
	Field    *classfile.Field
	Class    *classfile.Class
	Method   *classfile.Method
	Local    int
	ElemKind classfile.Kind
	Cond     Cond
	Target   int // successor block index for OpBranch/OpGoto

	// BCI is the bytecode index this instruction derives from.
	BCI int

	// Dead marks instructions removed by DCE (kept in place so value
	// IDs stay stable; codegen skips them).
	Dead bool
}

// HasDef reports whether the instruction defines a value.
func (in *Instr) HasDef() bool { return in.ID != NoValue }

// IsCall reports whether the instruction is a method call.
func (in *Instr) IsCall() bool { return in.Op == OpCallStatic || in.Op == OpCallVirtual }

// IsGCPoint reports whether this instruction can trigger a GC.
func (in *Instr) IsGCPoint() bool {
	switch in.Op {
	case OpNewObject, OpNewArray, OpCallStatic, OpCallVirtual:
		return true
	}
	return false
}

// IsHeapAccess reports whether the instruction reads or writes a heap
// object through a reference — the instruction set S of the paper's
// co-allocation analysis (§5.2: "field/array access, virtual calls and
// object-header access").
func (in *Instr) IsHeapAccess() bool {
	switch in.Op {
	case OpGetField, OpPutField, OpALoad, OpAStore, OpArrayLen, OpCallVirtual:
		return true
	}
	return false
}

// ObjectArg returns the value ID of the object reference a heap access
// dereferences, or NoValue.
func (in *Instr) ObjectArg() int {
	if !in.IsHeapAccess() {
		return NoValue
	}
	return in.Args[0]
}

func (in *Instr) String() string {
	var b strings.Builder
	if in.HasDef() {
		fmt.Fprintf(&b, "v%d = ", in.ID)
	}
	b.WriteString(in.Op.String())
	switch in.Op {
	case OpConst, OpConstRef:
		fmt.Fprintf(&b, " %d", in.Const)
	case OpLoadLocal, OpStoreLocal:
		fmt.Fprintf(&b, " l%d", in.Local)
	case OpArith:
		fmt.Fprintf(&b, ".%s", ArithOp(in.Const))
	case OpGetField, OpPutField:
		fmt.Fprintf(&b, " %s", in.Field.QualifiedName())
	case OpNewObject, OpNewArray:
		fmt.Fprintf(&b, " %s", in.Class.Name)
	case OpALoad, OpAStore:
		fmt.Fprintf(&b, ".%s", in.ElemKind)
	case OpCallStatic, OpCallVirtual:
		fmt.Fprintf(&b, " %s", in.Method.QualifiedName())
	case OpBranch:
		fmt.Fprintf(&b, ".%s -> b%d", in.Cond, in.Target)
	case OpGoto:
		fmt.Fprintf(&b, " -> b%d", in.Target)
	}
	for _, a := range in.Args {
		fmt.Fprintf(&b, " v%d", a)
	}
	fmt.Fprintf(&b, "  [bci %d]", in.BCI)
	return b.String()
}

// Block is a basic block.
type Block struct {
	Index  int
	Instrs []*Instr
	// Succs lists successor block indices (fallthrough first, then
	// branch target). Terminators are the last instruction.
	Succs []int
}

// Func is a whole method in IR form.
type Func struct {
	Method *classfile.Method
	Blocks []*Block

	// NumLocals includes stack-spill temp locals appended after the
	// bytecode locals.
	NumLocals  int
	LocalKinds []classfile.Kind

	values []*Instr // value ID -> defining instruction
	seq    int      // instruction sequence counter
}

// Value returns the instruction defining value id.
func (f *Func) Value(id int) *Instr { return f.values[id] }

// NumValues returns the number of values defined.
func (f *Func) NumValues() int { return len(f.values) }

// NumInstrs counts live (non-dead) instructions.
func (f *Func) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if !in.Dead {
				n++
			}
		}
	}
	return n
}

func (f *Func) newInstr(in *Instr, hasDef bool) *Instr {
	in.Seq = f.seq
	f.seq++
	if hasDef {
		in.ID = len(f.values)
		f.values = append(f.values, in)
	} else {
		in.ID = NoValue
	}
	return in
}

// InstrBySeq returns the instruction with the given sequence number,
// or nil (the monitor resolves sampled IR ids through this).
func (f *Func) InstrBySeq(seq int) *Instr {
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Seq == seq {
				return in
			}
		}
	}
	return nil
}

// String renders the whole function for debugging.
func (f *Func) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s (%d locals)\n", f.Method.QualifiedName(), f.NumLocals)
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "b%d: (succs %v)\n", blk.Index, blk.Succs)
		for _, in := range blk.Instrs {
			if in.Dead {
				continue
			}
			fmt.Fprintf(&b, "  %s\n", in)
		}
	}
	return b.String()
}
