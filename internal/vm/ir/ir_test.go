package ir

import (
	"testing"

	"hpmvm/internal/vm/bytecode"
	"hpmvm/internal/vm/classfile"
)

func buildFunc(t *testing.T, setup func(u *classfile.Universe, c *classfile.Class),
	body func(b *bytecode.Builder), args []classfile.Kind, ret classfile.Kind) (*classfile.Universe, *Func) {
	t.Helper()
	u := classfile.NewUniverse()
	c := u.DefineClass("T", nil)
	if setup != nil {
		setup(u, c)
	}
	m := u.AddMethod(c, "m", false, args, ret)
	b := bytecode.NewBuilder(u, m)
	body(b)
	code, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	u.Layout()
	f, err := Build(u, code)
	if err != nil {
		t.Fatal(err)
	}
	return u, f
}

func countOp(f *Func, op Op) int {
	n := 0
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if !in.Dead && in.Op == op {
				n++
			}
		}
	}
	return n
}

func TestBuildStraightLine(t *testing.T) {
	_, f := buildFunc(t, nil, func(b *bytecode.Builder) {
		b.Const(2).Const(3).Add().ReturnVal()
	}, nil, classfile.KindInt)
	if len(f.Blocks) != 1 {
		t.Fatalf("blocks = %d", len(f.Blocks))
	}
	if countOp(f, OpArith) != 1 || countOp(f, OpRetVal) != 1 {
		t.Error("missing instructions")
	}
}

func TestBuildBranches(t *testing.T) {
	_, f := buildFunc(t, nil, func(b *bytecode.Builder) {
		b.BindArg(0, "x")
		b.Load("x").Const(0).If(bytecode.OpIfLT, "neg")
		b.Load("x").ReturnVal()
		b.Label("neg")
		b.Load("x").Neg().ReturnVal()
	}, []classfile.Kind{classfile.KindInt}, classfile.KindInt)
	if len(f.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(f.Blocks))
	}
	b0 := f.Blocks[0]
	if len(b0.Succs) != 2 {
		t.Fatalf("entry successors = %v", b0.Succs)
	}
	if countOp(f, OpBranch) != 1 || countOp(f, OpNeg) != 1 {
		t.Error("branch structure wrong")
	}
}

func TestCrossBlockStackSpill(t *testing.T) {
	// A value pushed before a conditional and consumed after the merge
	// must travel through a spill temp local.
	_, f := buildFunc(t, nil, func(b *bytecode.Builder) {
		b.BindArg(0, "x")
		b.Const(100) // pushed across the branch
		b.Load("x").Const(0).If(bytecode.OpIfGE, "pos")
		b.Pop().Const(0)
		b.Label("pos")
		b.ReturnVal()
	}, []classfile.Kind{classfile.KindInt}, classfile.KindInt)
	if f.NumLocals <= 1 {
		t.Errorf("expected spill temp locals, NumLocals = %d", f.NumLocals)
	}
	if countOp(f, OpStoreLocal) == 0 {
		t.Error("no spill stores emitted")
	}
}

func TestForwardLocals(t *testing.T) {
	_, f := buildFunc(t, nil, func(b *bytecode.Builder) {
		b.Local("a", classfile.KindInt)
		b.Const(5).Store("a")
		b.Load("a").Load("a").Add().ReturnVal()
	}, nil, classfile.KindInt)
	before := countOp(f, OpLoadLocal)
	ForwardLocals(f)
	after := countOp(f, OpLoadLocal)
	if after >= before {
		t.Errorf("ForwardLocals removed nothing: %d -> %d", before, after)
	}
	if after != 0 {
		t.Errorf("stored value should satisfy both loads, %d loads left", after)
	}
}

func TestFoldConstants(t *testing.T) {
	_, f := buildFunc(t, nil, func(b *bytecode.Builder) {
		b.Const(6).Const(7).Mul().ReturnVal()
	}, nil, classfile.KindInt)
	FoldConstants(f)
	if countOp(f, OpArith) != 0 {
		t.Error("constant multiply not folded")
	}
	// The folded instruction must carry the result.
	found := false
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if !in.Dead && in.Op == OpConst && in.Const == 42 {
				found = true
			}
		}
	}
	if !found {
		t.Error("folded constant 42 not present")
	}
}

func TestFoldDivByZeroLeftAlone(t *testing.T) {
	_, f := buildFunc(t, nil, func(b *bytecode.Builder) {
		b.Const(6).Const(0).Div().ReturnVal()
	}, nil, classfile.KindInt)
	FoldConstants(f)
	if countOp(f, OpArith) != 1 {
		t.Error("division by constant zero must not be folded (it traps)")
	}
}

func TestIdentities(t *testing.T) {
	_, f := buildFunc(t, nil, func(b *bytecode.Builder) {
		b.BindArg(0, "x")
		b.Load("x").Const(0).Add().Const(1).Mul().ReturnVal()
	}, []classfile.Kind{classfile.KindInt}, classfile.KindInt)
	ForwardLocals(f)
	FoldConstants(f)
	EliminateDeadCode(f)
	if countOp(f, OpArith) != 0 {
		t.Errorf("x+0 and x*1 not simplified:\n%s", f)
	}
}

func TestRedundantLoadElimination(t *testing.T) {
	var fld *classfile.Field
	_, f := buildFunc(t, func(u *classfile.Universe, c *classfile.Class) {
		fld = u.AddField(c, "v", classfile.KindInt)
	}, func(b *bytecode.Builder) {
		b.BindArg(0, "o")
		b.Load("o").GetField(fld).Load("o").GetField(fld).Add().ReturnVal()
	}, []classfile.Kind{classfile.KindRef}, classfile.KindInt)
	ForwardLocals(f)
	EliminateRedundantLoads(f)
	if got := countOp(f, OpGetField); got != 1 {
		t.Errorf("redundant getfield not eliminated: %d loads", got)
	}
}

func TestRedundantLoadInvalidatedByStore(t *testing.T) {
	var fld *classfile.Field
	_, f := buildFunc(t, func(u *classfile.Universe, c *classfile.Class) {
		fld = u.AddField(c, "v", classfile.KindInt)
	}, func(b *bytecode.Builder) {
		b.BindArg(0, "o")
		b.Load("o").GetField(fld).Pop()
		b.Load("o").Const(9).PutField(fld)
		b.Load("o").GetField(fld).ReturnVal()
	}, []classfile.Kind{classfile.KindRef}, classfile.KindInt)
	ForwardLocals(f)
	EliminateRedundantLoads(f)
	// The second load may reuse the STORED value, but must not reuse
	// the stale first load. Check: either one load left (forwarded
	// from the putfield) or two loads; never zero with the stale value.
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Dead || in.Op != OpRetVal {
				continue
			}
			def := f.Value(in.Args[0])
			if def.Op == OpConst && def.Const != 9 {
				t.Error("return value forwarded from the stale load")
			}
		}
	}
}

func TestDCE(t *testing.T) {
	_, f := buildFunc(t, nil, func(b *bytecode.Builder) {
		b.Const(1).Pop() // dead constant
		b.Const(2).ReturnVal()
	}, nil, classfile.KindInt)
	EliminateDeadCode(f)
	if got := countOp(f, OpConst); got != 1 {
		t.Errorf("dead constant survives: %d consts", got)
	}
}

func TestDCEKeepsMemoryReads(t *testing.T) {
	var fld *classfile.Field
	_, f := buildFunc(t, func(u *classfile.Universe, c *classfile.Class) {
		fld = u.AddField(c, "v", classfile.KindInt)
	}, func(b *bytecode.Builder) {
		b.BindArg(0, "o")
		b.Load("o").GetField(fld).Pop() // unused load: null check is a side effect
		b.Const(0).ReturnVal()
	}, []classfile.Kind{classfile.KindRef}, classfile.KindInt)
	Optimize(f, 2)
	if countOp(f, OpGetField) != 1 {
		t.Error("DCE removed a memory read (would drop its null check)")
	}
}

func TestAccessPairs(t *testing.T) {
	// p.y.i: the load of i pairs with reference field y (§5.2 example).
	var fy, fi *classfile.Field
	_, f := buildFunc(t, func(u *classfile.Universe, c *classfile.Class) {
		fy = u.AddField(c, "y", classfile.KindRef)
		fi = u.AddField(c, "i", classfile.KindInt)
	}, func(b *bytecode.Builder) {
		b.BindArg(0, "p")
		b.Load("p").GetField(fy).GetField(fi).ReturnVal()
	}, []classfile.Kind{classfile.KindRef}, classfile.KindInt)
	pairs := AccessPairs(f)
	if len(pairs) != 1 {
		t.Fatalf("pairs = %d, want 1", len(pairs))
	}
	if pairs[0].F != fy {
		t.Errorf("paired field = %s, want y", pairs[0].F.Name)
	}
	if pairs[0].S.Op != OpGetField || pairs[0].S.Field != fi {
		t.Errorf("S = %v", pairs[0].S)
	}
}

func TestAccessPairsArrayThroughField(t *testing.T) {
	// s.value[i]: the array load pairs with String::value.
	var fv *classfile.Field
	u, f := buildFunc(t, func(u *classfile.Universe, c *classfile.Class) {
		fv = u.AddField(c, "value", classfile.KindRef)
	}, func(b *bytecode.Builder) {
		b.BindArg(0, "s")
		b.Load("s").GetField(fv).Const(0).ALoad(classfile.KindChar).ReturnVal()
	}, []classfile.Kind{classfile.KindRef}, classfile.KindInt)
	_ = u
	pairs := AccessPairs(f)
	if len(pairs) != 1 || pairs[0].F != fv || pairs[0].S.Op != OpALoad {
		t.Fatalf("pairs = %v", pairs)
	}
}

func TestAccessPairsNoneFromLocals(t *testing.T) {
	// A dereference of a plain local pairs with nothing.
	var fi *classfile.Field
	_, f := buildFunc(t, func(u *classfile.Universe, c *classfile.Class) {
		fi = u.AddField(c, "i", classfile.KindInt)
	}, func(b *bytecode.Builder) {
		b.BindArg(0, "p")
		b.Load("p").GetField(fi).ReturnVal()
	}, []classfile.Kind{classfile.KindRef}, classfile.KindInt)
	if pairs := AccessPairs(f); len(pairs) != 0 {
		t.Errorf("unexpected pairs %v", pairs)
	}
}

func TestSeqAssignedToAllInstrs(t *testing.T) {
	_, f := buildFunc(t, nil, func(b *bytecode.Builder) {
		b.Const(1).Result()
		b.Return()
	}, nil, classfile.KindVoid)
	seen := map[int]bool{}
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if seen[in.Seq] {
				t.Fatalf("duplicate Seq %d", in.Seq)
			}
			seen[in.Seq] = true
			if f.InstrBySeq(in.Seq) != in {
				t.Fatalf("InstrBySeq(%d) mismatch", in.Seq)
			}
		}
	}
}

func TestLocalProvenance(t *testing.T) {
	// av = p.value; loop { ... av[i] ... } — av's only store comes from
	// GetField(value), so accesses through av pair with value.
	var fv *classfile.Field
	_, f := buildFunc(t, func(u *classfile.Universe, c *classfile.Class) {
		fv = u.AddField(c, "value", classfile.KindRef)
	}, func(b *bytecode.Builder) {
		b.BindArg(0, "p")
		b.Local("av", classfile.KindRef)
		b.Local("i", classfile.KindInt)
		b.Local("s", classfile.KindInt)
		b.Load("p").GetField(fv).Store("av")
		b.Label("loop")
		b.Load("i").Const(4).If(bytecode.OpIfGE, "done")
		b.Load("s").Load("av").Load("i").ALoad(classfile.KindChar).Add().Store("s")
		b.Inc("i", 1)
		b.Goto("loop")
		b.Label("done")
		b.Load("s").ReturnVal()
	}, []classfile.Kind{classfile.KindRef}, classfile.KindInt)

	prov := LocalProvenance(f)
	if got := prov[1]; got != fv { // local 1 = "av"
		t.Fatalf("provenance of av = %v, want value", got)
	}
	// Plain analysis misses the loop-body access; the extension finds it.
	plain := AccessPairs(f)
	ext := ExtendedAccessPairs(f)
	if len(ext) <= len(plain) {
		t.Fatalf("extension added nothing: %d vs %d", len(ext), len(plain))
	}
	found := false
	for _, p := range ext {
		if p.S.Op == OpALoad && p.F == fv {
			found = true
		}
	}
	if !found {
		t.Error("loop-carried array access not paired with String-like field")
	}
}

func TestLocalProvenancePoisoned(t *testing.T) {
	// A local stored from two different fields (or a non-field) has no
	// single provenance.
	var fa, fb *classfile.Field
	_, f := buildFunc(t, func(u *classfile.Universe, c *classfile.Class) {
		fa = u.AddField(c, "a", classfile.KindRef)
		fb = u.AddField(c, "b", classfile.KindRef)
	}, func(b *bytecode.Builder) {
		b.BindArg(0, "p")
		b.BindArg(1, "cond")
		b.Local("x", classfile.KindRef)
		b.Load("cond").Const(0).If(bytecode.OpIfEQ, "else")
		b.Load("p").GetField(fa).Store("x")
		b.Goto("join")
		b.Label("else")
		b.Load("p").GetField(fb).Store("x")
		b.Label("join")
		b.Load("x").ReturnVal()
	}, []classfile.Kind{classfile.KindRef, classfile.KindInt}, classfile.KindRef)
	prov := LocalProvenance(f)
	if len(prov) != 0 {
		t.Fatalf("conflicting stores should poison: %v", prov)
	}
}

func TestLocalProvenanceArgsExcluded(t *testing.T) {
	var fv *classfile.Field
	_, f := buildFunc(t, func(u *classfile.Universe, c *classfile.Class) {
		fv = u.AddField(c, "v", classfile.KindInt)
	}, func(b *bytecode.Builder) {
		b.BindArg(0, "p")
		b.Load("p").GetField(fv).ReturnVal()
	}, []classfile.Kind{classfile.KindRef}, classfile.KindInt)
	if prov := LocalProvenance(f); len(prov) != 0 {
		t.Fatalf("argument locals must have unknown provenance: %v", prov)
	}
}
