package ir

import "hpmvm/internal/vm/classfile"

// Optimize runs the standard pass pipeline at the given optimization
// level (1 = local forwarding + folding + DCE, 2 adds redundant-load
// elimination). The AOS chooses the level from its cost/benefit model.
func Optimize(f *Func, level int) {
	if level < 1 {
		return
	}
	ForwardLocals(f)
	FoldConstants(f)
	if level >= 2 {
		EliminateRedundantLoads(f)
	}
	EliminateDeadCode(f)
}

// replaceUses rewrites every argument in the block according to the
// alias map (applied transitively).
func resolveAlias(alias map[int]int, v int) int {
	for {
		nv, ok := alias[v]
		if !ok {
			return v
		}
		v = nv
	}
}

// ForwardLocals eliminates redundant local-variable loads inside each
// block: a load observing a value that was just stored (or previously
// loaded) reuses the existing value instead of reloading. Locals are
// frame-private, so calls do not invalidate the cache; moving-GC
// safety is preserved because live reference values in registers are
// updated through the GC maps.
func ForwardLocals(f *Func) {
	for _, blk := range f.Blocks {
		known := make(map[int]int) // local -> value id
		alias := make(map[int]int) // value id -> replacement
		for _, in := range blk.Instrs {
			if in.Dead {
				continue
			}
			for i, a := range in.Args {
				in.Args[i] = resolveAlias(alias, a)
			}
			switch in.Op {
			case OpLoadLocal:
				if v, ok := known[in.Local]; ok {
					alias[in.ID] = v
					in.Dead = true
				} else {
					known[in.Local] = in.ID
				}
			case OpStoreLocal:
				known[in.Local] = in.Args[0]
			}
		}
	}
}

// FoldConstants folds arithmetic over constant operands into constants
// and simplifies trivial identities (x+0, x*1, x*0).
func FoldConstants(f *Func) {
	for _, blk := range f.Blocks {
		alias := make(map[int]int)
		for _, in := range blk.Instrs {
			if in.Dead {
				continue
			}
			for i, a := range in.Args {
				in.Args[i] = resolveAlias(alias, a)
			}
			if in.Op != OpArith {
				continue
			}
			a, b := f.values[in.Args[0]], f.values[in.Args[1]]
			aConst := a.Op == OpConst && !a.Dead
			bConst := b.Op == OpConst && !b.Dead
			op := ArithOp(in.Const)
			if aConst && bConst {
				v, ok := evalArith(op, a.Const, b.Const)
				if !ok {
					continue // fold would trap (division by zero)
				}
				in.Op = OpConst
				in.Const = v
				in.Args = nil
				continue
			}
			// Identities.
			if bConst {
				switch {
				case b.Const == 0 && (op == Add || op == Sub || op == Or || op == Xor || op == Shl || op == Shr || op == Sar):
					alias[in.ID] = in.Args[0]
					in.Dead = true
				case b.Const == 1 && op == Mul:
					alias[in.ID] = in.Args[0]
					in.Dead = true
				case b.Const == 0 && op == Mul:
					in.Op = OpConst
					in.Const = 0
					in.Args = nil
				}
			}
		}
	}
}

func evalArith(op ArithOp, a, b int64) (int64, bool) {
	switch op {
	case Add:
		return a + b, true
	case Sub:
		return a - b, true
	case Mul:
		return a * b, true
	case Div:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case Rem:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case And:
		return a & b, true
	case Or:
		return a | b, true
	case Xor:
		return a ^ b, true
	case Shl:
		return a << (uint64(b) & 63), true
	case Shr:
		return int64(uint64(a) >> (uint64(b) & 63)), true
	case Sar:
		return a >> (uint64(b) & 63), true
	}
	return 0, false
}

// EliminateRedundantLoads performs local common-subexpression
// elimination on GetField and ArrayLen: repeated reads of the same
// field on the same object (with no intervening store to that field
// and no call) reuse the earlier value.
func EliminateRedundantLoads(f *Func) {
	type fieldKey struct {
		obj   int
		field *classfile.Field
	}
	for _, blk := range f.Blocks {
		fields := make(map[fieldKey]int)
		lens := make(map[int]int)
		alias := make(map[int]int)
		for _, in := range blk.Instrs {
			if in.Dead {
				continue
			}
			for i, a := range in.Args {
				in.Args[i] = resolveAlias(alias, a)
			}
			switch in.Op {
			case OpGetField:
				k := fieldKey{obj: in.Args[0], field: in.Field}
				if v, ok := fields[k]; ok {
					alias[in.ID] = v
					in.Dead = true
				} else {
					fields[k] = in.ID
				}
			case OpPutField:
				// A store invalidates cached reads of the same field on
				// any object (conservative aliasing), then caches the
				// stored value for its own object.
				for k := range fields {
					if k.field == in.Field {
						delete(fields, k)
					}
				}
				fields[fieldKey{obj: in.Args[0], field: in.Field}] = in.Args[1]
			case OpArrayLen:
				if v, ok := lens[in.Args[0]]; ok {
					alias[in.ID] = v
					in.Dead = true
				} else {
					lens[in.Args[0]] = in.ID
				}
			case OpCallStatic, OpCallVirtual:
				// Calls may store to any field.
				fields = make(map[fieldKey]int)
			}
		}
	}
}

// EliminateDeadCode removes pure instructions whose values are never
// used. Memory reads are kept (their null/bounds checks are part of
// program semantics), so DCE only touches constants, local loads and
// arithmetic.
func EliminateDeadCode(f *Func) {
	used := make([]bool, len(f.values))
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Dead {
				continue
			}
			for _, a := range in.Args {
				used[a] = true
			}
		}
	}
	changed := true
	for changed {
		changed = false
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				if in.Dead || !in.HasDef() || used[in.ID] {
					continue
				}
				switch in.Op {
				case OpConst, OpConstRef, OpLoadLocal, OpArith, OpNeg:
					in.Dead = true
					changed = true
				}
			}
		}
		if changed {
			// Recompute the use set after a sweep; a killed user may
			// free its operands.
			for i := range used {
				used[i] = false
			}
			for _, blk := range f.Blocks {
				for _, in := range blk.Instrs {
					if in.Dead {
						continue
					}
					for _, a := range in.Args {
						used[a] = true
					}
				}
			}
		}
	}
}

// AccessPair records that heap-access instruction S dereferences an
// object loaded from reference field F — the (S, f) instruction pairs
// of §5.2. When a cache-miss sample lands on S, the monitor charges the
// miss to F, and the GC will try to co-allocate F's referent with its
// parent.
type AccessPair struct {
	S *Instr
	F *classfile.Field
}

// AccessPairs walks use-def edges upward from every heap access
// instruction (field/array access, virtual calls, object-header
// access) and pairs it with the reference field its target object was
// loaded from, if any.
func AccessPairs(f *Func) []AccessPair {
	var pairs []AccessPair
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Dead || !in.IsHeapAccess() {
				continue
			}
			obj := in.ObjectArg()
			if obj == NoValue {
				continue
			}
			def := f.values[obj]
			if def.Op == OpGetField && def.Field.Kind == classfile.KindRef {
				pairs = append(pairs, AccessPair{S: in, F: def.Field})
			}
		}
	}
	return pairs
}

// LocalProvenance computes a flow-insensitive provenance map for local
// variables: local l maps to reference field f when *every* store to l
// anywhere in the function stores a value defined by GetField(f) (and
// at least one store exists). The Jikes opt compiler's use-def edges
// span basic blocks; our block-local chains miss loop-carried access
// paths like
//
//	av = a.value
//	for ... { ... av[i] ... }   // av reloaded from a local each block
//
// and this analysis recovers them. Argument locals have unknown caller
// provenance and never qualify.
func LocalProvenance(f *Func) map[int]*classfile.Field {
	numArgs := len(f.Method.Args)
	prov := make(map[int]*classfile.Field)
	poisoned := make(map[int]bool)
	for i := 0; i < numArgs; i++ {
		poisoned[i] = true
	}
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Dead || in.Op != OpStoreLocal {
				continue
			}
			l := in.Local
			if poisoned[l] {
				continue
			}
			def := f.values[in.Args[0]]
			if def.Op == OpGetField && def.Field.Kind == classfile.KindRef {
				if cur, ok := prov[l]; ok && cur != def.Field {
					poisoned[l] = true
					delete(prov, l)
				} else {
					prov[l] = def.Field
				}
				continue
			}
			poisoned[l] = true
			delete(prov, l)
		}
	}
	return prov
}

// ExtendedAccessPairs runs AccessPairs plus the local-provenance
// extension: heap accesses whose object operand is a LoadLocal of a
// single-provenance local pair with that local's source field.
func ExtendedAccessPairs(f *Func) []AccessPair {
	pairs := AccessPairs(f)
	prov := LocalProvenance(f)
	if len(prov) == 0 {
		return pairs
	}
	seen := make(map[*Instr]bool, len(pairs))
	for _, p := range pairs {
		seen[p.S] = true
	}
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Dead || !in.IsHeapAccess() || seen[in] {
				continue
			}
			obj := in.ObjectArg()
			if obj == NoValue {
				continue
			}
			def := f.values[obj]
			if def.Op != OpLoadLocal {
				continue
			}
			if fld, ok := prov[def.Local]; ok {
				pairs = append(pairs, AccessPair{S: in, F: fld})
			}
		}
	}
	return pairs
}
