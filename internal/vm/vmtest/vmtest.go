// Package vmtest provides small helpers for tests that need to build,
// compile and execute bytecode programs on the simulated platform
// without pulling in the full benchmark harness.
package vmtest

import (
	"fmt"

	"hpmvm/internal/gc/gencopy"
	"hpmvm/internal/gc/genms"
	"hpmvm/internal/hw/cache"
	"hpmvm/internal/vm/classfile"
	"hpmvm/internal/vm/runtime"
)

// Options controls execution.
type Options struct {
	// Plan is the compilation plan (nil = all baseline).
	Plan runtime.CompilePlan
	// Heap is the heap budget (default 32 MB).
	Heap uint64
	// GenCopy selects the copying collector instead of GenMS.
	GenCopy bool
	// MaxCycles bounds the run (default 2e9).
	MaxCycles uint64
}

// AllOpt returns a plan compiling every method at the given level.
func AllOpt(u *classfile.Universe, level int) runtime.CompilePlan {
	plan := make(runtime.CompilePlan)
	for _, m := range u.Methods() {
		if m.Code != nil {
			plan[m.ID] = level
		}
	}
	return plan
}

// Run lays out the universe if needed, boots a fresh VM, executes
// entry and returns the result log. The returned VM allows deeper
// inspection.
func Run(u *classfile.Universe, entry *classfile.Method, opts Options) ([]int64, *runtime.VM, error) {
	if opts.Heap == 0 {
		opts.Heap = 32 << 20
	}
	if opts.MaxCycles == 0 {
		opts.MaxCycles = 2_000_000_000
	}
	vm := runtime.New(u, cache.DefaultP4())
	if opts.GenCopy {
		gencopy.New(vm, gencopy.DefaultConfig(opts.Heap))
	} else {
		genms.New(vm, genms.DefaultConfig(opts.Heap))
	}
	vm.BuildDispatch()
	if err := vm.CompileAll(opts.Plan); err != nil {
		return nil, nil, err
	}
	if err := vm.Start(entry); err != nil {
		return nil, nil, err
	}
	if err := vm.Run(opts.MaxCycles); err != nil {
		return nil, vm, err
	}
	if vm.CPU.ExitStatus() != 0 {
		return vm.Results(), vm, fmt.Errorf("vmtest: exit status %d", vm.CPU.ExitStatus())
	}
	return vm.Results(), vm, nil
}
