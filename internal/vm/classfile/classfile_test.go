package classfile

import "testing"

func TestKindSizes(t *testing.T) {
	if KindInt.Size() != 8 || KindRef.Size() != 8 || KindChar.Size() != 2 || KindByte.Size() != 1 || KindVoid.Size() != 0 {
		t.Error("kind sizes wrong")
	}
	if KindRef.String() != "ref" || KindVoid.String() != "void" {
		t.Error("kind names wrong")
	}
}

func TestFieldLayout(t *testing.T) {
	u := NewUniverse()
	c := u.DefineClass("Mixed", nil)
	fr := u.AddField(c, "r", KindRef)
	fc := u.AddField(c, "c", KindChar)
	fb := u.AddField(c, "b", KindByte)
	fi := u.AddField(c, "i", KindInt)
	u.Layout()

	if fr.Offset != HeaderSize {
		t.Errorf("ref offset = %d", fr.Offset)
	}
	if fc.Offset != HeaderSize+8 {
		t.Errorf("char offset = %d", fc.Offset)
	}
	if fb.Offset != HeaderSize+10 {
		t.Errorf("byte offset = %d", fb.Offset)
	}
	// int needs 8-byte alignment after the 11 bytes used.
	if fi.Offset != HeaderSize+16 {
		t.Errorf("int offset = %d", fi.Offset)
	}
	if c.InstanceSize != HeaderSize+24 {
		t.Errorf("instance size = %d", c.InstanceSize)
	}
	if len(c.RefOffsets) != 1 || c.RefOffsets[0] != HeaderSize {
		t.Errorf("RefOffsets = %v", c.RefOffsets)
	}
}

func TestInheritanceLayout(t *testing.T) {
	u := NewUniverse()
	a := u.DefineClass("A", nil)
	u.AddField(a, "x", KindInt)
	fref := u.AddField(a, "p", KindRef)
	b := u.DefineClass("B", a)
	fy := u.AddField(b, "y", KindInt)
	u.Layout()

	if fy.Offset != a.InstanceSize {
		t.Errorf("subclass field offset = %d, want %d", fy.Offset, a.InstanceSize)
	}
	if len(b.AllFields) != 3 {
		t.Errorf("AllFields = %d", len(b.AllFields))
	}
	if b.FieldByName("x") == nil || b.FieldByName("p") != fref {
		t.Error("inherited field lookup broken")
	}
	if len(b.RefOffsets) != 1 {
		t.Errorf("inherited RefOffsets = %v", b.RefOffsets)
	}
}

func TestVTableOverride(t *testing.T) {
	u := NewUniverse()
	a := u.DefineClass("A", nil)
	mFoo := u.AddMethod(a, "foo", true, []Kind{KindRef}, KindInt)
	mBar := u.AddMethod(a, "bar", true, []Kind{KindRef}, KindVoid)
	b := u.DefineClass("B", a)
	mFooB := u.AddMethod(b, "foo", true, []Kind{KindRef}, KindInt)
	mBaz := u.AddMethod(b, "baz", true, []Kind{KindRef}, KindVoid)
	u.Layout()

	if mFoo.VSlot != 0 || mBar.VSlot != 1 {
		t.Errorf("base slots: foo=%d bar=%d", mFoo.VSlot, mBar.VSlot)
	}
	if mFooB.VSlot != mFoo.VSlot {
		t.Errorf("override got new slot %d", mFooB.VSlot)
	}
	if mBaz.VSlot != 2 {
		t.Errorf("new virtual slot = %d", mBaz.VSlot)
	}
	if b.VTable[0] != mFooB || b.VTable[1] != mBar || b.VTable[2] != mBaz {
		t.Error("B vtable contents wrong")
	}
	if a.VTable[0] != mFoo {
		t.Error("A vtable affected by subclass")
	}
}

func TestArrayClasses(t *testing.T) {
	u := NewUniverse()
	if !u.IntArray.IsArray || u.IntArray.ElemKind != KindInt {
		t.Error("IntArray malformed")
	}
	if u.CharArray.ArraySize(3) != HeaderSize+8 { // 6 bytes rounded to 8
		t.Errorf("char[3] size = %d", u.CharArray.ArraySize(3))
	}
	if u.RefArray.ArraySize(2) != HeaderSize+16 {
		t.Errorf("ref[2] size = %d", u.RefArray.ArraySize(2))
	}
	if !u.RefArray.IsRefArray() || u.IntArray.IsRefArray() {
		t.Error("IsRefArray wrong")
	}
}

func TestUniverseAccessors(t *testing.T) {
	u := NewUniverse()
	c := u.DefineClass("C", nil)
	f := u.AddField(c, "f", KindInt)
	m := u.AddMethod(c, "m", false, nil, KindVoid)
	u.Layout()
	if u.Class(c.ID) != c || u.Field(f.ID) != f || u.Method(m.ID) != m {
		t.Error("ID accessors broken")
	}
	if f.QualifiedName() != "C::f" || m.QualifiedName() != "C::m" {
		t.Error("qualified names wrong")
	}
	if c.MethodByName("m") != m || c.MethodByName("nope") != nil {
		t.Error("MethodByName broken")
	}
	if u.NumClasses() != 5 { // 4 array classes + C
		t.Errorf("NumClasses = %d", u.NumClasses())
	}
}

func TestGuards(t *testing.T) {
	u := NewUniverse()
	c := u.DefineClass("C", nil)
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("void field", func() { u.AddField(c, "v", KindVoid) })
	expectPanic("9 args", func() {
		u.AddMethod(c, "m", false, make([]Kind, 9), KindVoid)
	})
	expectPanic("virtual without receiver", func() {
		u.AddMethod(c, "v", true, []Kind{KindInt}, KindVoid)
	})
	expectPanic("extend array", func() { u.DefineClass("D", u.IntArray) })
	expectPanic("bad class id", func() { u.Class(999) })
	u.Layout()
	expectPanic("field after layout", func() { u.AddField(c, "late", KindInt) })
	expectPanic("ArraySize on scalar", func() { c.ArraySize(1) })
}
