// Package classfile defines the VM's class model: classes with single
// inheritance, typed fields, virtual and static methods, array classes,
// and the object layout (header format, field offsets) shared by the
// compilers, the runtime and the garbage collectors.
//
// The model is deliberately Java-shaped — the paper's optimization
// reasons about "reference fields" of heap objects (§5.2), so the class
// model must expose, for every class, which slots of an instance hold
// references.
package classfile

import "fmt"

// Kind is the type of a field, array element, local variable or stack
// slot. The VM has two primitive widths that matter to the memory
// system (64-bit ints, 16-bit chars, 8-bit bytes) plus references.
type Kind uint8

const (
	// KindInt is a 64-bit signed integer.
	KindInt Kind = iota
	// KindRef is an object reference (64-bit address).
	KindRef
	// KindChar is a 16-bit unsigned value (array elements and fields).
	KindChar
	// KindByte is an 8-bit unsigned value (array elements and fields).
	KindByte
	// KindVoid is used only as a method return kind.
	KindVoid
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindRef:
		return "ref"
	case KindChar:
		return "char"
	case KindByte:
		return "byte"
	case KindVoid:
		return "void"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Size returns the in-memory size of a value of this kind in bytes.
func (k Kind) Size() uint64 {
	switch k {
	case KindInt, KindRef:
		return 8
	case KindChar:
		return 2
	case KindByte:
		return 1
	default:
		return 0
	}
}

// Object header layout. Every heap object starts with a 16-byte header:
//
//	offset 0: uint32 class ID
//	offset 4: uint32 flags (GC mark, forwarded, …)
//	offset 8: uint64 — array length (low 32 bits) for arrays;
//	          forwarding pointer while an object is being evacuated
const (
	HeaderSize    = 16
	OffClassID    = 0
	OffFlags      = 4
	OffArrayLen   = 8
	OffForwarding = 8
	// ObjectAlign is the alignment of every heap object.
	ObjectAlign = 8
)

// Header flag bits.
const (
	FlagMark      uint32 = 1 << 0 // mark-sweep liveness mark
	FlagForwarded uint32 = 1 << 1 // offset 8 holds a forwarding pointer
	FlagCoalloc   uint32 = 1 << 2 // object was placed by co-allocation
	FlagRemember  uint32 = 1 << 3 // object is in the remembered set
)

// Field describes one declared instance field.
type Field struct {
	Name  string
	Kind  Kind
	Class *Class // declaring class

	// ID is the field's universe-wide identifier, used by bytecode
	// operands and by the monitor's per-field miss counters.
	ID int
	// Offset is the field's byte offset within an instance, set when
	// the declaring class is laid out.
	Offset uint64
}

// QualifiedName returns "Class::field", the notation the paper uses
// (e.g. String::value in Figure 7).
func (f *Field) QualifiedName() string {
	return f.Class.Name + "::" + f.Name
}

// Method describes a method. Bytecode is attached by the front end
// (package bytecode) as an opaque payload to avoid a dependency cycle.
type Method struct {
	Name  string
	Class *Class
	// ID is the universe-wide method identifier; the method entry
	// table (JTOC) is indexed by it.
	ID int
	// Virtual methods dispatch through the class vtable at VSlot;
	// static methods are called directly by ID.
	Virtual bool
	VSlot   int
	// Args lists parameter kinds. For virtual methods Args[0] is the
	// receiver (KindRef).
	Args []Kind
	// Ret is the return kind (KindVoid for none).
	Ret Kind
	// Code is the attached bytecode (a *bytecode.Code).
	Code any
}

// QualifiedName returns "Class::method".
func (m *Method) QualifiedName() string {
	if m.Class == nil {
		return m.Name
	}
	return m.Class.Name + "::" + m.Name
}

// Class is a loaded class or array class.
type Class struct {
	Name  string
	ID    int
	Super *Class

	// Fields declared by this class (not inherited).
	Fields []*Field
	// AllFields is the laid-out field list including inherited fields,
	// in offset order. Valid after layout.
	AllFields []*Field
	// RefOffsets lists the byte offsets of all reference fields within
	// an instance (the GC's scanning map).
	RefOffsets []uint64

	// Methods declared by this class.
	Methods []*Method
	// VTable maps vtable slots to the method that implements them for
	// this class (including inherited and overridden methods).
	VTable []*Method

	// InstanceSize is the total object size (header + fields, aligned)
	// for scalar classes. Arrays compute size from length.
	InstanceSize uint64

	// Array classes.
	IsArray  bool
	ElemKind Kind

	laidOut bool
}

// IsRefArray reports whether this is an array-of-references class.
func (c *Class) IsRefArray() bool { return c.IsArray && c.ElemKind == KindRef }

// ArraySize returns the total object size for an array of n elements.
func (c *Class) ArraySize(n uint64) uint64 {
	if !c.IsArray {
		panic(fmt.Sprintf("classfile: ArraySize on non-array class %s", c.Name))
	}
	return align(HeaderSize+n*c.ElemKind.Size(), ObjectAlign)
}

// FieldByName finds a field (including inherited), or nil.
func (c *Class) FieldByName(name string) *Field {
	for _, f := range c.AllFields {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// MethodByName finds a declared method, or nil.
func (c *Class) MethodByName(name string) *Method {
	for _, m := range c.Methods {
		if m.Name == name {
			return m
		}
	}
	return nil
}

func align(v, a uint64) uint64 { return (v + a - 1) &^ (a - 1) }

// Universe holds every loaded class, field and method. It is the
// VM's class registry ("class loader" in the paper's terminology).
type Universe struct {
	classes []*Class
	fields  []*Field
	methods []*Method

	// Predefined array classes.
	IntArray  *Class
	RefArray  *Class
	CharArray *Class
	ByteArray *Class
}

// NewUniverse creates a universe with the built-in array classes.
func NewUniverse() *Universe {
	u := &Universe{}
	u.IntArray = u.defineArray("int[]", KindInt)
	u.RefArray = u.defineArray("ref[]", KindRef)
	u.CharArray = u.defineArray("char[]", KindChar)
	u.ByteArray = u.defineArray("byte[]", KindByte)
	return u
}

func (u *Universe) defineArray(name string, elem Kind) *Class {
	c := &Class{Name: name, ID: len(u.classes), IsArray: true, ElemKind: elem, laidOut: true}
	c.InstanceSize = HeaderSize
	u.classes = append(u.classes, c)
	return c
}

// DefineClass registers a new scalar class. super may be nil.
func (u *Universe) DefineClass(name string, super *Class) *Class {
	if super != nil && super.IsArray {
		panic(fmt.Sprintf("classfile: class %s cannot extend array class %s", name, super.Name))
	}
	c := &Class{Name: name, ID: len(u.classes), Super: super}
	u.classes = append(u.classes, c)
	return c
}

// AddField declares an instance field on a not-yet-laid-out class.
func (u *Universe) AddField(c *Class, name string, kind Kind) *Field {
	if c.laidOut {
		panic(fmt.Sprintf("classfile: class %s already laid out", c.Name))
	}
	if kind == KindVoid {
		panic("classfile: field cannot have void kind")
	}
	f := &Field{Name: name, Kind: kind, Class: c, ID: len(u.fields)}
	u.fields = append(u.fields, f)
	c.Fields = append(c.Fields, f)
	return f
}

// AddMethod declares a method. For virtual methods, args must start
// with the receiver kind (KindRef); a vtable slot is assigned during
// Layout (overriding a same-named super method reuses its slot).
func (u *Universe) AddMethod(c *Class, name string, virtual bool, args []Kind, ret Kind) *Method {
	if len(args) > 8 {
		panic(fmt.Sprintf("classfile: method %s::%s has %d args; max 8 (register convention)", c.Name, name, len(args)))
	}
	if virtual && (len(args) == 0 || args[0] != KindRef) {
		panic(fmt.Sprintf("classfile: virtual method %s::%s must take receiver as first arg", c.Name, name))
	}
	m := &Method{
		Name: name, Class: c, ID: len(u.methods),
		Virtual: virtual, VSlot: -1,
		Args: append([]Kind(nil), args...), Ret: ret,
	}
	u.methods = append(u.methods, m)
	c.Methods = append(c.Methods, m)
	return m
}

// Layout computes field offsets, instance sizes and vtables for every
// class. It must be called once after all definitions and before
// compilation. Classes are laid out parents-first.
func (u *Universe) Layout() {
	var lay func(c *Class)
	lay = func(c *Class) {
		if c.laidOut {
			return
		}
		if c.Super != nil {
			lay(c.Super)
		}
		off := uint64(HeaderSize)
		var all []*Field
		var vtable []*Method
		if c.Super != nil {
			all = append(all, c.Super.AllFields...)
			off = c.Super.InstanceSize
			vtable = append(vtable, c.Super.VTable...)
		}
		for _, f := range c.Fields {
			sz := f.Kind.Size()
			off = align(off, sz)
			f.Offset = off
			off += sz
			all = append(all, f)
		}
		c.AllFields = all
		c.InstanceSize = align(off, ObjectAlign)
		for _, f := range all {
			if f.Kind == KindRef {
				c.RefOffsets = append(c.RefOffsets, f.Offset)
			}
		}
		// vtable: overrides reuse the super's slot.
		for _, m := range c.Methods {
			if !m.Virtual {
				continue
			}
			slot := -1
			for i, sm := range vtable {
				if sm.Name == m.Name {
					slot = i
					break
				}
			}
			if slot >= 0 {
				m.VSlot = slot
				vtable[slot] = m
			} else {
				m.VSlot = len(vtable)
				vtable = append(vtable, m)
			}
		}
		c.VTable = vtable
		c.laidOut = true
	}
	for _, c := range u.classes {
		lay(c)
	}
}

// Class returns the class with the given ID.
func (u *Universe) Class(id int) *Class {
	if id < 0 || id >= len(u.classes) {
		panic(fmt.Sprintf("classfile: bad class id %d", id))
	}
	return u.classes[id]
}

// Field returns the field with the given universe-wide ID.
func (u *Universe) Field(id int) *Field {
	if id < 0 || id >= len(u.fields) {
		panic(fmt.Sprintf("classfile: bad field id %d", id))
	}
	return u.fields[id]
}

// Method returns the method with the given universe-wide ID.
func (u *Universe) Method(id int) *Method {
	if id < 0 || id >= len(u.methods) {
		panic(fmt.Sprintf("classfile: bad method id %d", id))
	}
	return u.methods[id]
}

// Classes returns all classes in definition order.
func (u *Universe) Classes() []*Class { return u.classes }

// Methods returns all methods in definition order.
func (u *Universe) Methods() []*Method { return u.methods }

// Fields returns all fields in definition order.
func (u *Universe) Fields() []*Field { return u.fields }

// NumClasses returns the number of defined classes.
func (u *Universe) NumClasses() int { return len(u.classes) }
