// Package mcmap implements the machine-code mapping infrastructure of
// §4.2: per-method maps from machine-code addresses back to Java
// bytecode indices (and, for opt-compiled code, IR instruction ids),
// GC maps at GC points, and the sorted global method table used to
// resolve a raw sample's program counter to a method.
//
// The paper's key compiler extension — generating the bytecode-index
// mapping for *every* machine instruction instead of only GC points —
// is what MCMap.BCIndex provides; the space-overhead numbers of
// Table 2 are computed from these structures.
package mcmap

import (
	"fmt"
	"sort"

	"hpmvm/internal/hw/cpu"
	"hpmvm/internal/vm/classfile"
)

// NoBCI marks machine instructions with no bytecode provenance
// (prologue, epilogue, trap blocks).
const NoBCI = int32(-1)

// GCPoint describes the live references at one GC-safe machine
// instruction (allocation traps and call sites). The collector uses it
// to find and update roots in the frame and registers.
type GCPoint struct {
	// PC is the address of the GC-point instruction.
	PC uint64
	// BCI is the bytecode index of the GC point.
	BCI int32
	// RefRegs is a bitmask over the 16 GPRs of registers holding live
	// references at this point.
	RefRegs uint16
	// RefSlots is a bitmask over frame slots (slot i = bit i, the slot
	// at fp-8*(i+1)) holding live references.
	RefSlots uint64
}

// Entry bytes used for space accounting, chosen to match a compact
// on-disk encoding: a GC point packs PC-delta, BCI, reg mask and slot
// mask; an MC map entry packs a bytecode index and an IR id.
const (
	gcPointBytes    = 24
	mcEntryBytes    = 8
	perMethodHeader = 32
)

// MCMap is the complete mapping record for one compiled method body.
type MCMap struct {
	Method *classfile.Method
	// Start and End delimit the method's machine code, [Start, End).
	Start, End uint64
	// Opt records whether this body came from the optimizing compiler.
	Opt bool
	// FrameSlots is the number of 8-byte frame slots below the frame
	// pointer (locals + spill temps).
	FrameSlots int

	// BCIndex maps machine instruction index ((pc-Start)/InstrBytes)
	// to bytecode index; NoBCI for synthetic instructions. Baseline
	// compilers always produced this; the paper extended the opt
	// compiler to do the same for every instruction.
	BCIndex []int32
	// IRID maps machine instruction index to the ID of the IR
	// instruction it implements (NoBCI when compiled without IR).
	IRID []int32

	// GCPoints is sorted by PC.
	GCPoints []GCPoint

	// Obsolete marks bodies replaced by recompilation. The code and
	// maps remain installed (compiled code lives in the immortal space
	// and is never collected, §4.2), so late samples still resolve.
	Obsolete bool
}

// Contains reports whether pc lies inside this method body.
func (m *MCMap) Contains(pc uint64) bool { return pc >= m.Start && pc < m.End }

// InstrIndex converts a PC inside the body to a machine instruction
// index.
func (m *MCMap) InstrIndex(pc uint64) int {
	return int((pc - m.Start) / cpu.InstrBytes)
}

// BytecodeAt resolves a PC to the bytecode index it implements.
func (m *MCMap) BytecodeAt(pc uint64) (int32, bool) {
	if !m.Contains(pc) {
		return 0, false
	}
	idx := m.InstrIndex(pc)
	if idx >= len(m.BCIndex) {
		return 0, false
	}
	bci := m.BCIndex[idx]
	return bci, bci != NoBCI
}

// IRAt resolves a PC to the IR instruction ID it implements.
func (m *MCMap) IRAt(pc uint64) (int32, bool) {
	if !m.Contains(pc) || m.IRID == nil {
		return 0, false
	}
	idx := m.InstrIndex(pc)
	if idx >= len(m.IRID) {
		return 0, false
	}
	id := m.IRID[idx]
	return id, id != NoBCI
}

// GCPointAt finds the GC point at exactly pc, or nil.
func (m *MCMap) GCPointAt(pc uint64) *GCPoint {
	i := sort.Search(len(m.GCPoints), func(i int) bool { return m.GCPoints[i].PC >= pc })
	if i < len(m.GCPoints) && m.GCPoints[i].PC == pc {
		return &m.GCPoints[i]
	}
	return nil
}

// CodeBytes returns the machine-code size of the body.
func (m *MCMap) CodeBytes() uint64 { return m.End - m.Start }

// GCMapBytes returns the encoded size of the GC maps alone — the
// "GC maps only" column of Table 2.
func (m *MCMap) GCMapBytes() uint64 {
	return perMethodHeader + uint64(len(m.GCPoints))*gcPointBytes
}

// MCMapBytes returns the encoded size of the full per-instruction
// machine-code maps — the "MC maps" column of Table 2 (it subsumes the
// GC maps).
func (m *MCMap) MCMapBytes() uint64 {
	return m.GCMapBytes() + uint64(len(m.BCIndex))*mcEntryBytes
}

// Table is the sorted table of all compiled method bodies, updated on
// every (re)compilation and consulted by the sample collector thread to
// map a raw PC to a method (§4.2).
type Table struct {
	entries []*MCMap // sorted by Start
	lookups uint64
}

// Register inserts a new method body. Bodies never overlap; Register
// panics on overlap since that indicates a code-installation bug.
func (t *Table) Register(m *MCMap) {
	i := sort.Search(len(t.entries), func(i int) bool { return t.entries[i].Start >= m.Start })
	if i < len(t.entries) && t.entries[i].Start < m.End ||
		i > 0 && t.entries[i-1].End > m.Start {
		panic(fmt.Sprintf("mcmap: overlapping code range [%#x,%#x)", m.Start, m.End))
	}
	t.entries = append(t.entries, nil)
	copy(t.entries[i+1:], t.entries[i:])
	t.entries[i] = m
}

// Lookup resolves a PC to the method body containing it.
func (t *Table) Lookup(pc uint64) (*MCMap, bool) {
	t.lookups++
	i := sort.Search(len(t.entries), func(i int) bool { return t.entries[i].End > pc })
	if i < len(t.entries) && t.entries[i].Contains(pc) {
		return t.entries[i], true
	}
	return nil, false
}

// Lookups returns the number of Lookup calls served (monitor overhead
// diagnostics).
func (t *Table) Lookups() uint64 { return t.lookups }

// Bodies returns all registered bodies in address order.
func (t *Table) Bodies() []*MCMap { return t.entries }

// CurrentBodies returns the non-obsolete body for each method.
func (t *Table) CurrentBodies() []*MCMap {
	var out []*MCMap
	for _, e := range t.entries {
		if !e.Obsolete {
			out = append(out, e)
		}
	}
	return out
}

// SpaceStats aggregates the Table 2 space-overhead columns over a set
// of compiled bodies.
type SpaceStats struct {
	Methods        int
	CodeBytes      uint64
	GCMapBytes     uint64
	MCMapBytes     uint64
	OptMethods     int
	ObsoleteBodies int
}

// Space computes the aggregate space statistics over all bodies.
func (t *Table) Space() SpaceStats {
	var s SpaceStats
	for _, e := range t.entries {
		s.Methods++
		s.CodeBytes += e.CodeBytes()
		s.GCMapBytes += e.GCMapBytes()
		s.MCMapBytes += e.MCMapBytes()
		if e.Opt {
			s.OptMethods++
		}
		if e.Obsolete {
			s.ObsoleteBodies++
		}
	}
	return s
}
