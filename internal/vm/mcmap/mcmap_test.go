package mcmap

import (
	"testing"

	"hpmvm/internal/vm/classfile"
)

func body(m *classfile.Method, start, instrs uint64) *MCMap {
	bci := make([]int32, instrs)
	irid := make([]int32, instrs)
	for i := range bci {
		bci[i] = int32(i / 2)
		irid[i] = int32(i)
	}
	return &MCMap{
		Method:  m,
		Start:   start,
		End:     start + instrs*4,
		BCIndex: bci,
		IRID:    irid,
	}
}

func method(t *testing.T) (*classfile.Universe, *classfile.Method) {
	t.Helper()
	u := classfile.NewUniverse()
	c := u.DefineClass("C", nil)
	return u, u.AddMethod(c, "m", false, nil, classfile.KindVoid)
}

func TestLookup(t *testing.T) {
	_, m := method(t)
	var tbl Table
	b1 := body(m, 0x1000, 8)
	b2 := body(m, 0x2000, 4)
	tbl.Register(b2)
	tbl.Register(b1) // out-of-order registration must still sort

	if got, ok := tbl.Lookup(0x1004); !ok || got != b1 {
		t.Error("lookup inside first body failed")
	}
	if got, ok := tbl.Lookup(0x200C); !ok || got != b2 {
		t.Error("lookup inside second body failed")
	}
	if _, ok := tbl.Lookup(0x1800); ok {
		t.Error("lookup in gap succeeded")
	}
	if _, ok := tbl.Lookup(0x2010); ok {
		t.Error("lookup past end succeeded")
	}
	if tbl.Lookups() != 4 {
		t.Errorf("Lookups = %d", tbl.Lookups())
	}
}

func TestOverlapPanics(t *testing.T) {
	_, m := method(t)
	var tbl Table
	tbl.Register(body(m, 0x1000, 8))
	defer func() {
		if recover() == nil {
			t.Error("overlapping registration accepted")
		}
	}()
	tbl.Register(body(m, 0x1010, 8))
}

func TestBytecodeAndIRMapping(t *testing.T) {
	_, m := method(t)
	b := body(m, 0x1000, 6)
	b.BCIndex[3] = NoBCI
	if bci, ok := b.BytecodeAt(0x1008); !ok || bci != 1 {
		t.Errorf("BytecodeAt = %d, %v", bci, ok)
	}
	if _, ok := b.BytecodeAt(0x100C); ok {
		t.Error("NoBCI entry resolved")
	}
	if _, ok := b.BytecodeAt(0x999); ok {
		t.Error("out-of-range PC resolved")
	}
	if id, ok := b.IRAt(0x1010); !ok || id != 4 {
		t.Errorf("IRAt = %d, %v", id, ok)
	}
}

func TestGCPointAt(t *testing.T) {
	_, m := method(t)
	b := body(m, 0x1000, 6)
	b.GCPoints = []GCPoint{
		{PC: 0x1004, RefRegs: 0b10, RefSlots: 0b101},
		{PC: 0x1010, RefRegs: 0, RefSlots: 0b1},
	}
	if gp := b.GCPointAt(0x1004); gp == nil || gp.RefRegs != 0b10 {
		t.Error("GCPointAt exact hit failed")
	}
	if gp := b.GCPointAt(0x1008); gp != nil {
		t.Error("GCPointAt non-GC-point returned a map")
	}
}

func TestSpaceAccounting(t *testing.T) {
	_, m := method(t)
	b := body(m, 0x1000, 10)
	b.GCPoints = make([]GCPoint, 3)
	if b.CodeBytes() != 40 {
		t.Errorf("CodeBytes = %d", b.CodeBytes())
	}
	if b.GCMapBytes() != perMethodHeader+3*gcPointBytes {
		t.Errorf("GCMapBytes = %d", b.GCMapBytes())
	}
	if b.MCMapBytes() != b.GCMapBytes()+10*mcEntryBytes {
		t.Errorf("MCMapBytes = %d", b.MCMapBytes())
	}

	var tbl Table
	tbl.Register(b)
	b2 := body(m, 0x2000, 4)
	b2.Opt = true
	b2.Obsolete = true
	tbl.Register(b2)
	sp := tbl.Space()
	if sp.Methods != 2 || sp.OptMethods != 1 || sp.ObsoleteBodies != 1 {
		t.Errorf("space stats: %+v", sp)
	}
	if sp.CodeBytes != 40+16 {
		t.Errorf("total code = %d", sp.CodeBytes)
	}
	if got := tbl.CurrentBodies(); len(got) != 1 || got[0] != b {
		t.Errorf("CurrentBodies = %v", got)
	}
}
