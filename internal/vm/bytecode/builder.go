package bytecode

import (
	"fmt"

	"hpmvm/internal/vm/classfile"
)

// Builder assembles the bytecode body of one method, with named locals
// and symbolic labels. Call Build to resolve labels and run the
// verifier; the resulting Code is attached to the method.
type Builder struct {
	u      *classfile.Universe
	m      *classfile.Method
	instrs []Instr
	locals []classfile.Kind
	names  map[string]int
	labels map[string]int
	fixups []fixup
	consts int
	err    error
}

type fixup struct {
	instr int
	label string
}

// NewBuilder starts a builder for method m. Argument locals are
// pre-declared in slots 0..len(Args)-1 under the names "arg0",
// "arg1", …; use BindArg to give them readable names (virtual methods
// conventionally bind arg 0 to "this").
func NewBuilder(u *classfile.Universe, m *classfile.Method) *Builder {
	b := &Builder{
		u:      u,
		m:      m,
		names:  make(map[string]int),
		labels: make(map[string]int),
	}
	for i, k := range m.Args {
		b.locals = append(b.locals, k)
		b.names[fmt.Sprintf("arg%d", i)] = i
	}
	return b
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("bytecode: %s: %s", b.m.QualifiedName(), fmt.Sprintf(format, args...))
	}
}

// BindArg names argument slot i.
func (b *Builder) BindArg(i int, name string) *Builder {
	if i < 0 || i >= len(b.m.Args) {
		b.fail("BindArg(%d) out of range", i)
		return b
	}
	b.names[name] = i
	return b
}

// Local declares a new named local variable and returns its slot.
func (b *Builder) Local(name string, kind classfile.Kind) int {
	if _, dup := b.names[name]; dup {
		b.fail("duplicate local %q", name)
		return 0
	}
	slot := len(b.locals)
	b.locals = append(b.locals, kind)
	b.names[name] = slot
	return slot
}

// RefConst allocates a reference-constant slot and returns its handle.
func (b *Builder) RefConst() int {
	h := b.consts
	b.consts++
	return h
}

func (b *Builder) slot(name string) int {
	s, ok := b.names[name]
	if !ok {
		b.fail("unknown local %q", name)
		return 0
	}
	return s
}

func (b *Builder) emit(op Opcode, a, bo int64) *Builder {
	b.instrs = append(b.instrs, Instr{Op: op, A: a, B: bo})
	return b
}

// Const pushes an integer constant.
func (b *Builder) Const(v int64) *Builder { return b.emit(OpConstInt, v, 0) }

// Null pushes a null reference.
func (b *Builder) Null() *Builder { return b.emit(OpConstNull, 0, 0) }

// LoadConstRef pushes the reference constant with the given handle.
func (b *Builder) LoadConstRef(handle int) *Builder { return b.emit(OpLoadConst, int64(handle), 0) }

// Load pushes the named local.
func (b *Builder) Load(name string) *Builder { return b.emit(OpLoad, int64(b.slot(name)), 0) }

// Store pops into the named local.
func (b *Builder) Store(name string) *Builder { return b.emit(OpStore, int64(b.slot(name)), 0) }

// Inc adds delta to the named int local in place.
func (b *Builder) Inc(name string, delta int64) *Builder {
	return b.emit(OpIInc, int64(b.slot(name)), delta)
}

// GetField pops an object reference and pushes the field value.
func (b *Builder) GetField(f *classfile.Field) *Builder { return b.emit(OpGetField, int64(f.ID), 0) }

// PutField pops a value then an object reference and stores the field.
func (b *Builder) PutField(f *classfile.Field) *Builder { return b.emit(OpPutField, int64(f.ID), 0) }

// New pushes a fresh instance of class c.
func (b *Builder) New(c *classfile.Class) *Builder {
	if c.IsArray {
		b.fail("New on array class %s (use NewArray)", c.Name)
	}
	return b.emit(OpNewObject, int64(c.ID), 0)
}

// NewArray pops a length and pushes a fresh array of class c.
func (b *Builder) NewArray(c *classfile.Class) *Builder {
	if !c.IsArray {
		b.fail("NewArray on non-array class %s", c.Name)
	}
	return b.emit(OpNewArray, int64(c.ID), 0)
}

// ALoad pops index then array ref and pushes the element (ints are
// widened for char/byte arrays).
func (b *Builder) ALoad(elem classfile.Kind) *Builder { return b.emit(OpALoad, int64(elem), 0) }

// AStore pops value, index, then array ref and stores the element.
func (b *Builder) AStore(elem classfile.Kind) *Builder { return b.emit(OpAStore, int64(elem), 0) }

// ArrayLen pops an array reference and pushes its length.
func (b *Builder) ArrayLen() *Builder { return b.emit(OpArrayLen, 0, 0) }

// Arithmetic emitters: each pops its operands and pushes the result.
func (b *Builder) Add() *Builder { return b.emit(OpAdd, 0, 0) }
func (b *Builder) Sub() *Builder { return b.emit(OpSub, 0, 0) }
func (b *Builder) Mul() *Builder { return b.emit(OpMul, 0, 0) }
func (b *Builder) Div() *Builder { return b.emit(OpDiv, 0, 0) }
func (b *Builder) Rem() *Builder { return b.emit(OpRem, 0, 0) }
func (b *Builder) And() *Builder { return b.emit(OpAnd, 0, 0) }
func (b *Builder) Or() *Builder  { return b.emit(OpOr, 0, 0) }
func (b *Builder) Xor() *Builder { return b.emit(OpXor, 0, 0) }
func (b *Builder) Shl() *Builder { return b.emit(OpShl, 0, 0) }
func (b *Builder) Shr() *Builder { return b.emit(OpShr, 0, 0) }
func (b *Builder) Sar() *Builder { return b.emit(OpSar, 0, 0) }
func (b *Builder) Neg() *Builder { return b.emit(OpNeg, 0, 0) }

// Label defines a branch target at the current position.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.fail("duplicate label %q", name)
		return b
	}
	b.labels[name] = len(b.instrs)
	return b
}

func (b *Builder) branch(op Opcode, label string) *Builder {
	b.fixups = append(b.fixups, fixup{instr: len(b.instrs), label: label})
	return b.emit(op, -1, 0)
}

// Goto branches unconditionally to label.
func (b *Builder) Goto(label string) *Builder { return b.branch(OpGoto, label) }

// If pops b then a (both ints) and branches when "a cond b" holds.
// cond must be one of OpIfEQ..OpIfGE.
func (b *Builder) If(cond Opcode, label string) *Builder {
	if cond < OpIfEQ || cond > OpIfGE {
		b.fail("If with non-comparison opcode %v", cond)
	}
	return b.branch(cond, label)
}

// IfNull pops a reference and branches when it is null.
func (b *Builder) IfNull(label string) *Builder { return b.branch(OpIfNull, label) }

// IfNonNull pops a reference and branches when it is non-null.
func (b *Builder) IfNonNull(label string) *Builder { return b.branch(OpIfNonNull, label) }

// IfRefEQ pops two references and branches when they are identical.
func (b *Builder) IfRefEQ(label string) *Builder { return b.branch(OpIfRefEQ, label) }

// IfRefNE pops two references and branches when they differ.
func (b *Builder) IfRefNE(label string) *Builder { return b.branch(OpIfRefNE, label) }

// InvokeStatic calls a static method; arguments are popped (last
// pushed = last parameter) and the return value, if any, is pushed.
func (b *Builder) InvokeStatic(m *classfile.Method) *Builder {
	if m.Virtual {
		b.fail("InvokeStatic on virtual method %s", m.QualifiedName())
	}
	return b.emit(OpInvokeStatic, int64(m.ID), 0)
}

// InvokeVirtual calls a virtual method through the receiver's vtable;
// the receiver is the first pushed argument.
func (b *Builder) InvokeVirtual(m *classfile.Method) *Builder {
	if !m.Virtual {
		b.fail("InvokeVirtual on static method %s", m.QualifiedName())
	}
	return b.emit(OpInvokeVirtual, int64(m.ID), 0)
}

// Return returns void.
func (b *Builder) Return() *Builder { return b.emit(OpReturn, 0, 0) }

// ReturnVal pops the return value and returns it.
func (b *Builder) ReturnVal() *Builder { return b.emit(OpReturnVal, 0, 0) }

// Pop discards the top of stack.
func (b *Builder) Pop() *Builder { return b.emit(OpPop, 0, 0) }

// Dup duplicates the top of stack.
func (b *Builder) Dup() *Builder { return b.emit(OpDup, 0, 0) }

// Swap exchanges the two top stack slots.
func (b *Builder) Swap() *Builder { return b.emit(OpSwap, 0, 0) }

// Result pops an int and appends it to the program result log.
func (b *Builder) Result() *Builder { return b.emit(OpResult, 0, 0) }

// Build resolves labels, verifies the bytecode and attaches the Code
// to the method.
func (b *Builder) Build() (*Code, error) {
	if b.err != nil {
		return nil, b.err
	}
	for _, fx := range b.fixups {
		target, ok := b.labels[fx.label]
		if !ok {
			return nil, fmt.Errorf("bytecode: %s: undefined label %q", b.m.QualifiedName(), fx.label)
		}
		b.instrs[fx.instr].A = int64(target)
	}
	code := &Code{
		Method:        b.m,
		Instrs:        b.instrs,
		NumLocals:     len(b.locals),
		LocalKinds:    b.locals,
		RefConsts:     b.consts,
		RefConstAddrs: make([]uint64, b.consts),
	}
	if err := Verify(b.u, code); err != nil {
		return nil, err
	}
	b.m.Code = code
	return code, nil
}

// MustBuild is Build for code constructed by trusted in-process
// builders (workloads, tests); it panics on error.
func (b *Builder) MustBuild() *Code {
	c, err := b.Build()
	if err != nil {
		panic(err)
	}
	return c
}
