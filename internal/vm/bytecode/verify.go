package bytecode

import (
	"fmt"

	"hpmvm/internal/vm/classfile"
)

// Verify type-checks the bytecode by abstract interpretation of the
// operand stack and records, for every instruction, the stack layout on
// entry (Code.StackIn) and the maximum stack depth. The compilers use
// this typing to build GC maps and the optimizing compiler's IR, so
// verification must succeed before compilation.
func Verify(u *classfile.Universe, c *Code) error {
	n := len(c.Instrs)
	if n == 0 {
		return fmt.Errorf("bytecode: %s: empty body", c.Method.QualifiedName())
	}
	c.StackIn = make([][]classfile.Kind, n)
	visited := make([]bool, n)

	type item struct {
		pc    int
		stack []classfile.Kind
	}
	work := []item{{pc: 0, stack: nil}}

	errAt := func(pc int, format string, args ...any) error {
		return fmt.Errorf("bytecode: %s@%d: %s", c.Method.QualifiedName(), pc, fmt.Sprintf(format, args...))
	}

	sameStack := func(a, b []classfile.Kind) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}

	push := func(s []classfile.Kind, k classfile.Kind) []classfile.Kind {
		return append(append([]classfile.Kind(nil), s...), k)
	}

	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		pc, stack := it.pc, it.stack

		for {
			if pc < 0 || pc >= n {
				return errAt(pc, "control flow leaves method body")
			}
			if visited[pc] {
				if !sameStack(c.StackIn[pc], stack) {
					return errAt(pc, "inconsistent stack at merge: %v vs %v", c.StackIn[pc], stack)
				}
				break
			}
			visited[pc] = true
			c.StackIn[pc] = stack
			if len(stack) > c.MaxStack {
				c.MaxStack = len(stack)
			}

			in := c.Instrs[pc]
			pop := func(want classfile.Kind) (classfile.Kind, error) {
				if len(stack) == 0 {
					return 0, errAt(pc, "%v: stack underflow", in.Op)
				}
				k := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if want != classfile.KindVoid && k != want {
					return k, errAt(pc, "%v: expected %v on stack, found %v", in.Op, want, k)
				}
				return k, nil
			}
			// stackKind maps value kinds to the two stack kinds.
			widen := func(k classfile.Kind) classfile.Kind {
				if k == classfile.KindRef {
					return classfile.KindRef
				}
				return classfile.KindInt
			}

			var err error
			next := pc + 1
			branch := -1
			terminal := false

			switch in.Op {
			case OpNop:

			case OpConstInt:
				stack = push(stack, classfile.KindInt)
			case OpConstNull:
				stack = push(stack, classfile.KindRef)
			case OpLoadConst:
				if in.A < 0 || int(in.A) >= c.RefConsts {
					return errAt(pc, "ldconst handle %d out of range", in.A)
				}
				stack = push(stack, classfile.KindRef)

			case OpLoad:
				if in.A < 0 || int(in.A) >= c.NumLocals {
					return errAt(pc, "load from undefined local %d", in.A)
				}
				stack = push(stack, widen(c.LocalKinds[in.A]))
			case OpStore:
				if in.A < 0 || int(in.A) >= c.NumLocals {
					return errAt(pc, "store to undefined local %d", in.A)
				}
				if _, err = pop(widen(c.LocalKinds[in.A])); err != nil {
					return err
				}
			case OpIInc:
				if in.A < 0 || int(in.A) >= c.NumLocals || c.LocalKinds[in.A] != classfile.KindInt {
					return errAt(pc, "iinc on non-int local %d", in.A)
				}

			case OpGetField:
				f := u.Field(int(in.A))
				if _, err = pop(classfile.KindRef); err != nil {
					return err
				}
				stack = push(stack, widen(f.Kind))
			case OpPutField:
				f := u.Field(int(in.A))
				if _, err = pop(widen(f.Kind)); err != nil {
					return err
				}
				if _, err = pop(classfile.KindRef); err != nil {
					return err
				}

			case OpNewObject:
				cl := u.Class(int(in.A))
				if cl.IsArray {
					return errAt(pc, "new on array class %s", cl.Name)
				}
				stack = push(stack, classfile.KindRef)
			case OpNewArray:
				cl := u.Class(int(in.A))
				if !cl.IsArray {
					return errAt(pc, "newarray on scalar class %s", cl.Name)
				}
				if _, err = pop(classfile.KindInt); err != nil {
					return err
				}
				stack = push(stack, classfile.KindRef)

			case OpALoad:
				if _, err = pop(classfile.KindInt); err != nil {
					return err
				}
				if _, err = pop(classfile.KindRef); err != nil {
					return err
				}
				stack = push(stack, widen(classfile.Kind(in.A)))
			case OpAStore:
				if _, err = pop(widen(classfile.Kind(in.A))); err != nil {
					return err
				}
				if _, err = pop(classfile.KindInt); err != nil {
					return err
				}
				if _, err = pop(classfile.KindRef); err != nil {
					return err
				}
			case OpArrayLen:
				if _, err = pop(classfile.KindRef); err != nil {
					return err
				}
				stack = push(stack, classfile.KindInt)

			case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr, OpSar:
				if _, err = pop(classfile.KindInt); err != nil {
					return err
				}
				if _, err = pop(classfile.KindInt); err != nil {
					return err
				}
				stack = push(stack, classfile.KindInt)
			case OpNeg:
				if _, err = pop(classfile.KindInt); err != nil {
					return err
				}
				stack = push(stack, classfile.KindInt)

			case OpGoto:
				branch = int(in.A)
				terminal = true
			case OpIfEQ, OpIfNE, OpIfLT, OpIfLE, OpIfGT, OpIfGE:
				if _, err = pop(classfile.KindInt); err != nil {
					return err
				}
				if _, err = pop(classfile.KindInt); err != nil {
					return err
				}
				branch = int(in.A)
			case OpIfNull, OpIfNonNull:
				if _, err = pop(classfile.KindRef); err != nil {
					return err
				}
				branch = int(in.A)
			case OpIfRefEQ, OpIfRefNE:
				if _, err = pop(classfile.KindRef); err != nil {
					return err
				}
				if _, err = pop(classfile.KindRef); err != nil {
					return err
				}
				branch = int(in.A)

			case OpInvokeStatic, OpInvokeVirtual:
				m := u.Method(int(in.A))
				if in.Op == OpInvokeVirtual && !m.Virtual {
					return errAt(pc, "invokevirtual on static %s", m.QualifiedName())
				}
				if in.Op == OpInvokeStatic && m.Virtual {
					return errAt(pc, "invokestatic on virtual %s", m.QualifiedName())
				}
				for i := len(m.Args) - 1; i >= 0; i-- {
					if _, err = pop(widen(m.Args[i])); err != nil {
						return err
					}
				}
				if m.Ret != classfile.KindVoid {
					stack = push(stack, widen(m.Ret))
				}

			case OpReturn:
				if c.Method.Ret != classfile.KindVoid {
					return errAt(pc, "void return from %v method", c.Method.Ret)
				}
				terminal = true
			case OpReturnVal:
				if c.Method.Ret == classfile.KindVoid {
					return errAt(pc, "value return from void method")
				}
				if _, err = pop(widen(c.Method.Ret)); err != nil {
					return err
				}
				terminal = true

			case OpPop:
				if _, err = pop(classfile.KindVoid); err != nil {
					return err
				}
			case OpDup:
				if len(stack) == 0 {
					return errAt(pc, "dup on empty stack")
				}
				stack = push(stack, stack[len(stack)-1])
			case OpSwap:
				if len(stack) < 2 {
					return errAt(pc, "swap needs two stack slots")
				}
				stack = append([]classfile.Kind(nil), stack...)
				stack[len(stack)-1], stack[len(stack)-2] = stack[len(stack)-2], stack[len(stack)-1]

			case OpResult:
				if _, err = pop(classfile.KindInt); err != nil {
					return err
				}

			case OpNullCheck:
				if _, err = pop(classfile.KindRef); err != nil {
					return err
				}

			default:
				return errAt(pc, "unknown opcode %v", in.Op)
			}

			if branch >= 0 {
				work = append(work, item{pc: branch, stack: append([]classfile.Kind(nil), stack...)})
			}
			if terminal {
				break
			}
			pc = next
		}
	}

	// Every instruction must be reachable; unreachable code is almost
	// always a workload-builder bug.
	for i, v := range visited {
		if !v {
			return errAt(i, "unreachable instruction %v", c.Instrs[i].Op)
		}
	}
	return nil
}
