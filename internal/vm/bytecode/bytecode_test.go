package bytecode

import (
	"strings"
	"testing"

	"hpmvm/internal/vm/classfile"
)

func testMethod(t *testing.T, args []classfile.Kind, ret classfile.Kind) (*classfile.Universe, *classfile.Method) {
	t.Helper()
	u := classfile.NewUniverse()
	c := u.DefineClass("T", nil)
	m := u.AddMethod(c, "m", false, args, ret)
	return u, m
}

func TestBuildSimple(t *testing.T) {
	u, m := testMethod(t, []classfile.Kind{classfile.KindInt}, classfile.KindInt)
	b := NewBuilder(u, m)
	b.BindArg(0, "x")
	b.Load("x").Const(1).Add().ReturnVal()
	code, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if code.MaxStack != 2 || code.NumLocals != 1 {
		t.Errorf("MaxStack=%d NumLocals=%d", code.MaxStack, code.NumLocals)
	}
	if m.Code != code {
		t.Error("code not attached to method")
	}
}

func TestLabelsAndBranches(t *testing.T) {
	u, m := testMethod(t, []classfile.Kind{classfile.KindInt}, classfile.KindInt)
	b := NewBuilder(u, m)
	b.BindArg(0, "n")
	b.Local("sum", classfile.KindInt)
	b.Local("i", classfile.KindInt)
	b.Label("loop")
	b.Load("i").Load("n").If(OpIfGE, "done")
	b.Load("sum").Load("i").Add().Store("sum")
	b.Inc("i", 1)
	b.Goto("loop")
	b.Label("done")
	b.Load("sum").ReturnVal()
	code, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Branch targets must be resolved to instruction indices.
	for _, in := range code.Instrs {
		if in.Op.IsBranch() && (in.A < 0 || int(in.A) >= len(code.Instrs)) {
			t.Errorf("unresolved branch target %d", in.A)
		}
	}
}

func TestUndefinedLabel(t *testing.T) {
	u, m := testMethod(t, nil, classfile.KindVoid)
	b := NewBuilder(u, m)
	b.Goto("nowhere")
	b.Return()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Errorf("err = %v", err)
	}
}

func TestDuplicateLabel(t *testing.T) {
	u, m := testMethod(t, nil, classfile.KindVoid)
	b := NewBuilder(u, m)
	b.Label("x")
	b.Label("x")
	b.Return()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "duplicate label") {
		t.Errorf("err = %v", err)
	}
}

func TestUnknownLocal(t *testing.T) {
	u, m := testMethod(t, nil, classfile.KindVoid)
	b := NewBuilder(u, m)
	b.Load("ghost")
	b.Return()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "unknown local") {
		t.Errorf("err = %v", err)
	}
}

func TestVerifierStackUnderflow(t *testing.T) {
	u, m := testMethod(t, nil, classfile.KindVoid)
	b := NewBuilder(u, m)
	b.Pop()
	b.Return()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "underflow") {
		t.Errorf("err = %v", err)
	}
}

func TestVerifierTypeMismatch(t *testing.T) {
	u, m := testMethod(t, nil, classfile.KindVoid)
	b := NewBuilder(u, m)
	b.Const(1).IfNull("x") // int where ref expected
	b.Label("x")
	b.Return()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "expected ref") {
		t.Errorf("err = %v", err)
	}
}

func TestVerifierWrongReturnKind(t *testing.T) {
	u, m := testMethod(t, nil, classfile.KindVoid)
	b := NewBuilder(u, m)
	b.Const(1).ReturnVal()
	if _, err := b.Build(); err == nil {
		t.Error("value return from void method accepted")
	}

	u2, m2 := testMethod(t, nil, classfile.KindInt)
	b2 := NewBuilder(u2, m2)
	b2.Return()
	if _, err := b2.Build(); err == nil {
		t.Error("void return from int method accepted")
	}
}

func TestVerifierInconsistentMerge(t *testing.T) {
	u, m := testMethod(t, []classfile.Kind{classfile.KindInt}, classfile.KindVoid)
	b := NewBuilder(u, m)
	b.BindArg(0, "x")
	// One path pushes an int, the other a ref, merging at "join".
	b.Load("x").Const(0).If(OpIfEQ, "refpath")
	b.Const(1)
	b.Goto("join")
	b.Label("refpath")
	b.Null()
	b.Label("join")
	b.Pop()
	b.Return()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "inconsistent stack") {
		t.Errorf("err = %v", err)
	}
}

func TestVerifierUnreachableCode(t *testing.T) {
	u, m := testMethod(t, nil, classfile.KindVoid)
	b := NewBuilder(u, m)
	b.Return()
	b.Const(1).Pop() // unreachable
	b.Return()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Errorf("err = %v", err)
	}
}

func TestVerifierFallOffEnd(t *testing.T) {
	u, m := testMethod(t, nil, classfile.KindVoid)
	b := NewBuilder(u, m)
	b.Const(1).Pop()
	if _, err := b.Build(); err == nil {
		t.Error("falling off the end accepted")
	}
}

func TestVerifierEmptyBody(t *testing.T) {
	u, m := testMethod(t, nil, classfile.KindVoid)
	b := NewBuilder(u, m)
	if _, err := b.Build(); err == nil {
		t.Error("empty body accepted")
	}
}

func TestFieldAndCallTyping(t *testing.T) {
	u := classfile.NewUniverse()
	c := u.DefineClass("C", nil)
	f := u.AddField(c, "next", classfile.KindRef)
	callee := u.AddMethod(c, "callee", false, []classfile.Kind{classfile.KindInt}, classfile.KindRef)
	bDummy := NewBuilder(u, callee)
	bDummy.BindArg(0, "x")
	bDummy.Null().ReturnVal()
	if _, err := bDummy.Build(); err != nil {
		t.Fatal(err)
	}

	m := u.AddMethod(c, "m", false, []classfile.Kind{classfile.KindRef}, classfile.KindRef)
	b := NewBuilder(u, m)
	b.BindArg(0, "o")
	b.Load("o").GetField(f) // pushes ref
	b.Const(5).InvokeStatic(callee).Pop()
	b.ReturnVal()
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}

	// Calling with a ref where an int parameter is expected must fail.
	m2 := u.AddMethod(c, "m2", false, nil, classfile.KindVoid)
	b2 := NewBuilder(u, m2)
	b2.Null().InvokeStatic(callee).Pop().Return()
	if _, err := b2.Build(); err == nil {
		t.Error("ref passed for int parameter accepted")
	}
}

func TestStackInRecording(t *testing.T) {
	u, m := testMethod(t, nil, classfile.KindInt)
	b := NewBuilder(u, m)
	b.Const(1).Const(2).Add().ReturnVal()
	code, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(code.StackIn[0]) != 0 {
		t.Error("entry stack not empty")
	}
	if len(code.StackIn[2]) != 2 || code.StackIn[2][0] != classfile.KindInt {
		t.Errorf("StackIn before add = %v", code.StackIn[2])
	}
}

func TestGCPointClassification(t *testing.T) {
	if !OpNewObject.IsGCPoint() || !OpInvokeVirtual.IsGCPoint() {
		t.Error("alloc/call not GC points")
	}
	if OpAdd.IsGCPoint() || OpGetField.IsGCPoint() {
		t.Error("non-allocating op marked as GC point")
	}
}

func TestDisassemble(t *testing.T) {
	u, m := testMethod(t, nil, classfile.KindInt)
	b := NewBuilder(u, m)
	b.Const(7).ReturnVal()
	code, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	dis := code.Disassemble()
	if !strings.Contains(dis, "const 7") || !strings.Contains(dis, "returnval") {
		t.Errorf("disassembly:\n%s", dis)
	}
}

func TestDupSwapSemantics(t *testing.T) {
	u, m := testMethod(t, nil, classfile.KindInt)
	b := NewBuilder(u, m)
	b.Const(1).Const(2).Swap().Sub() // 2 - 1
	b.Dup().Add().ReturnVal()        // (2-1)+(2-1)
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
}
