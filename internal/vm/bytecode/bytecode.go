// Package bytecode defines the VM's Java-like bytecode: a typed,
// stack-oriented instruction set that workload programs are written in
// and that both JIT compilers consume. A verifier infers the operand
// stack layout at every bytecode index; the compilers rely on that
// typing to build GC maps (which slots hold references) and the
// optimizing compiler's IR.
package bytecode

import (
	"fmt"

	"hpmvm/internal/vm/classfile"
)

// Opcode is a bytecode operation.
type Opcode uint8

// Bytecode opcodes. Operands A and B are stored in the instruction.
const (
	OpNop Opcode = iota

	OpConstInt  // push integer constant A
	OpConstNull // push null reference
	OpLoadConst // push reference constant: A indexes Code.RefConsts

	OpLoad  // push local slot A
	OpStore // pop into local slot A
	OpIInc  // local slot A += B (int local)

	OpGetField // pop objref, push field value; A = universe field ID
	OpPutField // pop value, pop objref, store field; A = universe field ID

	OpNewObject // push new instance; A = class ID
	OpNewArray  // pop length, push new array; A = class ID (array class)

	OpALoad    // pop index, pop arrayref, push element; A = element Kind
	OpAStore   // pop value, pop index, pop arrayref; A = element Kind
	OpArrayLen // pop arrayref, push length

	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpSar
	OpNeg

	OpGoto // A = target bytecode index
	OpIfEQ // pop b, pop a, branch to A if a == b
	OpIfNE
	OpIfLT
	OpIfLE
	OpIfGT
	OpIfGE
	OpIfNull    // pop ref, branch if null
	OpIfNonNull // pop ref, branch if non-null
	OpIfRefEQ   // pop two refs, branch if identical
	OpIfRefNE   // pop two refs, branch if different

	OpInvokeStatic  // A = method ID
	OpInvokeVirtual // A = method ID (must be virtual)

	OpReturn    // return void
	OpReturnVal // pop value of the method's return kind and return it

	OpPop
	OpDup
	OpSwap

	OpResult // pop int, append to the program's result log (verification)

	OpNullCheck // pop ref, trap (null pointer) when null — inlined receivers

	numOpcodes
)

var opcodeNames = [numOpcodes]string{
	OpNop: "nop", OpConstInt: "const", OpConstNull: "constnull", OpLoadConst: "ldconst",
	OpLoad: "load", OpStore: "store", OpIInc: "iinc",
	OpGetField: "getfield", OpPutField: "putfield",
	OpNewObject: "new", OpNewArray: "newarray",
	OpALoad: "aload", OpAStore: "astore", OpArrayLen: "arraylength",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr", OpSar: "sar", OpNeg: "neg",
	OpGoto: "goto", OpIfEQ: "ifeq", OpIfNE: "ifne", OpIfLT: "iflt", OpIfLE: "ifle",
	OpIfGT: "ifgt", OpIfGE: "ifge", OpIfNull: "ifnull", OpIfNonNull: "ifnonnull",
	OpIfRefEQ: "ifrefeq", OpIfRefNE: "ifrefne",
	OpInvokeStatic: "invokestatic", OpInvokeVirtual: "invokevirtual",
	OpReturn: "return", OpReturnVal: "returnval",
	OpPop: "pop", OpDup: "dup", OpSwap: "swap", OpResult: "result",
	OpNullCheck: "nullcheck",
}

// String returns the mnemonic.
func (o Opcode) String() string {
	if int(o) < len(opcodeNames) && opcodeNames[o] != "" {
		return opcodeNames[o]
	}
	return fmt.Sprintf("opcode(%d)", int(o))
}

// IsBranch reports whether the opcode is a conditional or unconditional
// branch (operand A is a bytecode target index).
func (o Opcode) IsBranch() bool {
	return o == OpGoto || (o >= OpIfEQ && o <= OpIfRefNE)
}

// IsGCPoint reports whether executing this opcode can trigger a
// garbage collection (allocations and calls — the points where the
// compilers must emit GC maps).
func (o Opcode) IsGCPoint() bool {
	switch o {
	case OpNewObject, OpNewArray, OpInvokeStatic, OpInvokeVirtual:
		return true
	}
	return false
}

// Instr is one bytecode instruction.
type Instr struct {
	Op Opcode
	A  int64
	B  int64
}

// Code is a method's verified bytecode body.
type Code struct {
	Method *classfile.Method
	Instrs []Instr

	// NumLocals is the number of local variable slots (arguments
	// occupy slots 0..len(Args)-1).
	NumLocals  int
	LocalKinds []classfile.Kind

	// RefConsts are symbolic reference-constant handles; the runtime
	// resolves handle i to the address in RefConstAddrs[i] before
	// compilation (constant objects live in the immortal space).
	RefConsts     int // number of reference constants
	RefConstAddrs []uint64

	// Verifier results: StackIn[i] is the operand stack (bottom to
	// top) on entry to instruction i; MaxStack the deepest stack.
	StackIn  [][]classfile.Kind
	MaxStack int
}

// Size returns the bytecode length in instructions.
func (c *Code) Size() int { return len(c.Instrs) }

// Disassemble renders the bytecode for debugging.
func (c *Code) Disassemble() string {
	out := fmt.Sprintf("%s (%d locals, max stack %d)\n", c.Method.QualifiedName(), c.NumLocals, c.MaxStack)
	for i, in := range c.Instrs {
		switch {
		case in.Op == OpIInc:
			out += fmt.Sprintf("  %4d: %s %d, %d\n", i, in.Op, in.A, in.B)
		case in.Op == OpNop || in.Op == OpConstNull || (in.Op >= OpALoad && in.Op <= OpArrayLen) ||
			(in.Op >= OpAdd && in.Op <= OpNeg) || in.Op >= OpReturn:
			out += fmt.Sprintf("  %4d: %s\n", i, in.Op)
		default:
			out += fmt.Sprintf("  %4d: %s %d\n", i, in.Op, in.A)
		}
	}
	return out
}
