package runtime_test

import (
	"strings"
	"testing"

	"hpmvm/internal/gc/genms"
	"hpmvm/internal/hw/cache"
	"hpmvm/internal/vm/bytecode"
	"hpmvm/internal/vm/classfile"
	"hpmvm/internal/vm/runtime"
	"hpmvm/internal/vm/vmtest"
)

const (
	kInt  = classfile.KindInt
	kRef  = classfile.KindRef
	kVoid = classfile.KindVoid
)

func newVM(u *classfile.Universe) *runtime.VM {
	vm := runtime.New(u, cache.DefaultP4())
	genms.New(vm, genms.DefaultConfig(16<<20))
	return vm
}

func TestImmortalObjects(t *testing.T) {
	u := classfile.NewUniverse()
	str := u.DefineClass("String", nil)
	fval := u.AddField(str, "value", kRef)
	u.Layout()
	vm := newVM(u)

	s := vm.NewImmortalString(str, fval, "hей"[:3]) // raw bytes
	if vm.ClassOf(s) != str {
		t.Error("string class wrong")
	}
	arr := vm.RawGetField(s, fval)
	if vm.ClassOf(arr) != u.CharArray {
		t.Error("value not a char array")
	}
	if vm.ArrayLenOf(arr) != 3 {
		t.Errorf("length = %d", vm.ArrayLenOf(arr))
	}
	if got := vm.RawGetElem(arr, u.CharArray, 0); got != 'h' {
		t.Errorf("elem 0 = %d", got)
	}

	ia := vm.NewImmortalArray(u.IntArray, 4)
	vm.RawSetElem(ia, u.IntArray, 2, 0xDEAD)
	if vm.RawGetElem(ia, u.IntArray, 2) != 0xDEAD {
		t.Error("int array element")
	}
	if vm.SizeOf(ia) != classfile.HeaderSize+32 {
		t.Errorf("SizeOf = %d", vm.SizeOf(ia))
	}
}

func TestForwardingHelpers(t *testing.T) {
	u := classfile.NewUniverse()
	c := u.DefineClass("C", nil)
	u.AddField(c, "x", kInt)
	u.Layout()
	vm := newVM(u)
	obj := vm.NewImmortalObject(c)
	if _, fwd := vm.Forwarded(obj); fwd {
		t.Error("fresh object forwarded")
	}
	vm.SetForwarding(obj, 0x1234_5678)
	if to, fwd := vm.Forwarded(obj); !fwd || to != 0x1234_5678 {
		t.Errorf("Forwarded = %#x, %v", to, fwd)
	}
}

func TestCopyObject(t *testing.T) {
	u := classfile.NewUniverse()
	c := u.DefineClass("C", nil)
	f := u.AddField(c, "x", kInt)
	u.Layout()
	vm := newVM(u)
	src := vm.NewImmortalObject(c)
	vm.RawSetField(src, f, 99)
	dst := vm.Immortal.Alloc(c.InstanceSize)
	vm.CopyObject(dst, src, c.InstanceSize)
	if vm.RawGetField(dst, f) != 99 || vm.ClassOf(dst) != c {
		t.Error("copy incomplete")
	}
}

func TestFailureDiagnostics(t *testing.T) {
	u := classfile.NewUniverse()
	c := u.DefineClass("Crash", nil)
	f := u.AddField(c, "v", kInt)
	m := u.AddMethod(c, "boom", false, nil, kVoid)
	b := bytecode.NewBuilder(u, m)
	b.Null().GetField(f).Result()
	b.Return()
	b.MustBuild()
	u.Layout()
	_, vm, err := vmtest.Run(u, m, vmtest.Options{})
	if err == nil {
		t.Fatal("expected failure")
	}
	msg := vm.Failure().Error()
	if !strings.Contains(msg, "null pointer") || !strings.Contains(msg, "Crash::boom") {
		t.Errorf("failure message lacks context: %q", msg)
	}
}

func TestRunBeforeStart(t *testing.T) {
	u := classfile.NewUniverse()
	u.Layout()
	vm := newVM(u)
	if err := vm.Run(1000); err == nil {
		t.Error("Run before Start succeeded")
	}
}

func TestEntryMustTakeNoArgs(t *testing.T) {
	u := classfile.NewUniverse()
	c := u.DefineClass("C", nil)
	m := u.AddMethod(c, "main", false, []classfile.Kind{kInt}, kVoid)
	b := bytecode.NewBuilder(u, m)
	b.Return()
	b.MustBuild()
	u.Layout()
	vm := newVM(u)
	vm.BuildDispatch()
	if err := vm.CompileAll(nil); err != nil {
		t.Fatal(err)
	}
	if err := vm.Start(m); err == nil {
		t.Error("entry with arguments accepted")
	}
}

// countTicker fires every interval cycles and counts invocations.
type countTicker struct {
	deadline uint64
	interval uint64
	vm       *runtime.VM
	n        int
}

func (c *countTicker) Deadline() uint64 { return c.deadline }
func (c *countTicker) Tick() {
	c.n++
	c.deadline = c.vm.CPU.Cycles() + c.interval
}

func TestTickerScheduling(t *testing.T) {
	u := classfile.NewUniverse()
	c := u.DefineClass("C", nil)
	m := u.AddMethod(c, "main", false, nil, kVoid)
	b := bytecode.NewBuilder(u, m)
	b.Local("i", kInt)
	b.Label("loop")
	b.Load("i").Const(200_000).If(bytecode.OpIfGE, "done")
	b.Inc("i", 1)
	b.Goto("loop")
	b.Label("done")
	b.Return()
	b.MustBuild()
	u.Layout()

	vm := newVM(u)
	tick := &countTicker{interval: 50_000, vm: vm, deadline: 50_000}
	vm.AddTicker(tick)
	vm.BuildDispatch()
	if err := vm.CompileAll(nil); err != nil {
		t.Fatal(err)
	}
	if err := vm.Start(m); err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	// The loop runs >1.2M cycles; the ticker should have fired roughly
	// cycles/50_000 times.
	if tick.n < 10 {
		t.Errorf("ticker fired %d times over %d cycles", tick.n, vm.Cycles())
	}
}

func TestCycleBudgetAbort(t *testing.T) {
	u := classfile.NewUniverse()
	c := u.DefineClass("C", nil)
	m := u.AddMethod(c, "main", false, nil, kVoid)
	b := bytecode.NewBuilder(u, m)
	b.Label("spin")
	b.Goto("spin")
	b.MustBuild()
	u.Layout()
	_, vm, err := vmtest.Run(u, m, vmtest.Options{MaxCycles: 100_000})
	if err == nil {
		t.Fatal("infinite loop not aborted")
	}
	if !strings.Contains(vm.Failure().Error(), "cycle budget") {
		t.Errorf("failure = %v", vm.Failure())
	}
}

func TestRootsAtAllocationSite(t *testing.T) {
	// Verify CollectRoots through behavior: a deep call chain with ref
	// locals at every level survives a GC forced at the innermost
	// allocation (frame-walk over return addresses and FP chain).
	u := classfile.NewUniverse()
	node := u.DefineClass("N", nil)
	fv := u.AddField(node, "v", kInt)
	cl := u.DefineClass("Deep", nil)

	var lvl [4]*classfile.Method
	for i := range lvl {
		lvl[i] = u.AddMethod(cl, "lvl"+string(rune('0'+i)), false, []classfile.Kind{kRef, kInt}, kInt)
	}
	for i := range lvl {
		b := bytecode.NewBuilder(u, lvl[i])
		b.BindArg(0, "o").BindArg(1, "depth")
		b.Local("mine", kRef)
		b.New(node).Store("mine")
		b.Load("mine").Const(int64(i + 100)).PutField(fv)
		if i == len(lvl)-1 {
			// Innermost: churn to force a GC with every frame live.
			b.Local("j", kInt)
			b.Label("ch")
			b.Load("j").Const(60_000).If(bytecode.OpIfGE, "sum")
			b.New(node).Pop()
			b.Inc("j", 1)
			b.Goto("ch")
			b.Label("sum")
			b.Load("o").GetField(fv).Load("mine").GetField(fv).Add().ReturnVal()
		} else {
			b.Load("mine").Load("depth").InvokeStatic(lvl[i+1])
			b.Load("o").GetField(fv).Add().ReturnVal()
		}
		b.MustBuild()
	}
	main := u.AddMethod(cl, "main", false, nil, kVoid)
	b := bytecode.NewBuilder(u, main)
	b.Local("root", kRef)
	b.New(node).Store("root")
	b.Load("root").Const(7).PutField(fv)
	b.Load("root").Const(0).InvokeStatic(lvl[0]).Result()
	b.Return()
	b.MustBuild()
	u.Layout()

	for _, level := range []int{0, 2} {
		var plan runtime.CompilePlan
		if level > 0 {
			plan = vmtest.AllOpt(u, level)
		}
		got, vm, err := vmtest.Run(u, main, vmtest.Options{Heap: 2 << 20, Plan: plan})
		if err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
		// lvl3 returns o.v(=102)+mine.v(=103) = 205; lvl2 adds 101 -> 306;
		// lvl1 adds 100 -> 406; lvl0 adds 7 -> 413.
		if got[0] != 413 {
			t.Fatalf("level %d: result = %d, want 413", level, got[0])
		}
		minor, _ := vm.Collector.Collections()
		if minor == 0 {
			t.Fatalf("level %d: no GC under churn", level)
		}
	}
}
