package runtime

import (
	"hpmvm/internal/gc/freelist"
	"hpmvm/internal/hw/cpu"
	"hpmvm/internal/vm/classfile"
)

// MaxArrayLength bounds array allocations (the header stores the
// length in 32 bits).
const MaxArrayLength = 1 << 31

// Trap implements cpu.TrapHandler: the VM entrypoints that compiled
// code reaches via trap instructions.
func (vm *VM) Trap(c *cpu.CPU, num int64) {
	switch num {
	case cpu.TrapExit:
		c.Halt(int64(c.Regs[1]))

	case cpu.TrapAllocObject:
		classID := int(c.Regs[1])
		cl := vm.U.Class(classID)
		c.SetUserMode(false)
		c.AddCycles(vm.AllocTrapCycles)
		addr := vm.allocate(cl, cl.InstanceSize, 0)
		c.SetUserMode(true)
		c.Regs[0] = addr

	case cpu.TrapAllocArray:
		classID := int(c.Regs[1])
		n := int64(c.Regs[2])
		cl := vm.U.Class(classID)
		if n < 0 || n >= MaxArrayLength {
			vm.fail("array allocation with invalid length %d", n)
			return
		}
		c.SetUserMode(false)
		c.AddCycles(vm.AllocTrapCycles)
		addr := vm.allocate(cl, cl.ArraySize(uint64(n)), uint64(n))
		c.SetUserMode(true)
		c.Regs[0] = addr

	case cpu.TrapResult:
		vm.results = append(vm.results, int64(c.Regs[1]))

	case cpu.TrapNullPtr:
		vm.fail("null pointer dereference")
	case cpu.TrapBounds:
		vm.fail("array index out of bounds")
	case cpu.TrapDivZero:
		vm.fail("integer division by zero")

	case cpu.TrapYield:
		// Voluntary safepoint; nothing to do in the cooperative model.

	default:
		vm.fail("unknown trap %d", num)
	}
}

// allocate obtains and initializes a new object. It runs in VM
// ("kernel") mode; a collection may occur inside Collector.Alloc, which
// is why this must only be reached from a GC point.
func (vm *VM) allocate(cl *classfile.Class, size, arrayLen uint64) uint64 {
	if vm.Collector == nil {
		vm.fail("allocation with no collector configured")
		return 0
	}
	// In sampled mode the allocation (and any collection inside it)
	// runs bracketed: the detailed lane is forced on and the cycles are
	// accounted exactly rather than sampled (see Sampler.serviceBegin).
	s := vm.sampler
	if s != nil {
		s.serviceBegin()
	}
	addr := vm.Collector.Alloc(size)
	if s != nil {
		s.serviceEnd()
	}
	if addr == 0 {
		vm.fail("out of memory allocating %d bytes of %s (heap limit %d)",
			size, cl.Name, vm.Collector.HeapLimit())
		return 0
	}
	vm.initObject(addr, cl, size, arrayLen)
	vm.allocations++
	vm.allocatedByte += size
	return addr
}

// LargeObjectThreshold is the size above which objects bypass the
// nursery/free-list and go straight to the large object space.
const LargeObjectThreshold = freelist.MaxCellSize
