// Package runtime is the virtual machine core: it owns the simulated
// address-space layout, the object model, the dispatch tables, the
// trap handler that services compiled code (allocation, results,
// exceptions), GC root enumeration via the compilers' GC maps, and the
// execution loop that interleaves application progress with the
// "threads" of the VM (the AOS sampler and the HPM collector thread),
// all in deterministic simulated time.
package runtime

import (
	"fmt"

	"hpmvm/internal/gc/heap"
	"hpmvm/internal/hw/cache"
	"hpmvm/internal/hw/cpu"
	"hpmvm/internal/hw/mem"
	"hpmvm/internal/vm/classfile"
	"hpmvm/internal/vm/mcmap"
)

// Collector is the garbage-collection policy plugged into the VM.
// Implementations: the generational mark-sweep collector with
// co-allocation (gc/genms) and the generational copying collector
// (gc/gencopy).
type Collector interface {
	// Name identifies the policy ("GenMS", "GenCopy").
	Name() string
	// Alloc returns a fresh, uninitialized cell of the given size for
	// a new object, running collections as needed. It returns 0 only
	// when the heap is genuinely exhausted (OOM).
	Alloc(size uint64) uint64
	// Collections returns (minor, major) collection counts.
	Collections() (minor, major uint64)
	// HeapLimit returns the configured total heap budget in bytes.
	HeapLimit() uint64
}

// Ticker is periodic VM-internal work driven by simulated time (the
// AOS method sampler, the HPM collector thread's poll loop).
type Ticker interface {
	// Deadline returns the cycle count at which Tick should next run.
	Deadline() uint64
	// Tick performs the work and must advance Deadline.
	Tick()
}

// StackSize is the machine call-stack budget.
const StackSize = 512 * 1024

// VM ties the simulated hardware, the compiled-code universe, and the
// collector together.
type VM struct {
	U    *classfile.Universe
	Mem  *mem.Memory
	Hier *cache.Hierarchy
	CPU  *cpu.CPU

	Table     *mcmap.Table
	Collector Collector
	Immortal  *heap.BumpSpace

	// OptInfo holds, per method ID, the latest optimizing-compiler
	// result (IR and access pairs) for the monitor. The concrete type
	// is *opt.Result; it is declared as any to keep the package graph
	// acyclic (runtime must not import the compiler it drives).
	optInfo map[int]any

	tickers []Ticker

	// sampler, when non-nil, switches the run loop into sampled
	// simulation: functional fast-forward alternating with detailed
	// measured regions (see sampling.go). Exact-mode runs never touch
	// it beyond one nil check per scheduling round.
	sampler *Sampler

	// cancel, when non-nil, is polled from the run loop at safepoint
	// granularity (see CancelCheckCycles); a non-nil return aborts the
	// run with that error. Installed by core.System.RunContext.
	cancel func() error

	results []int64
	failure error
	started bool

	// bootDone marks the end of the boot sequence (BuildDispatch +
	// CompileAll); compilations after this point are recorded in
	// recompileLog so a restored system can replay them and rebuild the
	// exact code layout of the snapshot's origin (see snapshot.go).
	bootDone     bool
	recompileLog []recompileEntry

	// levels tracks each method's current optimization level so a
	// relocation (CompileMethod at the same level) preserves it. Kept
	// by CompileMethod; never serialized — boot and recompile-log
	// replay rebuild it deterministically.
	levels map[int]int

	// Cost model for VM services.
	AllocTrapCycles uint64 // fixed overhead per allocation trap

	// Counters.
	allocations   uint64
	allocatedByte uint64

	// onRecompile hooks observe method recompilation (monitor refresh).
	onRecompile []func(methodID int)
}

// New builds a VM over fresh hardware with the default P4 hierarchy.
func New(u *classfile.Universe, hierCfg cache.Config) *VM {
	m := mem.New()
	h := cache.New(hierCfg)
	c := cpu.New(m, h, cpu.DefaultConfig())
	vm := &VM{
		U:               u,
		Mem:             m,
		Hier:            h,
		CPU:             c,
		Table:           &mcmap.Table{},
		Immortal:        heap.NewBumpSpace("immortal", heap.ImmortalBase, heap.ImmortalEnd),
		optInfo:         make(map[int]any),
		levels:          make(map[int]int),
		AllocTrapCycles: 30,
	}
	c.SetTrapHandler(vm)
	return vm
}

// recompileEntry records one post-boot (re)compilation in program
// order. Replaying the log against a freshly booted VM reproduces the
// origin's code layout deterministically, so snapshots never need to
// serialize machine code or method metadata.
type recompileEntry struct {
	methodID int
	level    int
}

// MarkBootComplete ends the boot phase: subsequent CompileMethod calls
// are appended to the recompile log. Called once, after CompileAll.
func (vm *VM) MarkBootComplete() { vm.bootDone = true }

// AddTicker registers periodic VM work.
func (vm *VM) AddTicker(t Ticker) { vm.tickers = append(vm.tickers, t) }

// OnRecompile registers a hook invoked after a method is recompiled.
func (vm *VM) OnRecompile(fn func(methodID int)) {
	vm.onRecompile = append(vm.onRecompile, fn)
}

// InstallPrefetchSites models recompiling the methods owning the given
// PCs with software prefetch instructions injected: every subsequent
// execution of a site PC issues a prefetch of its access address plus
// the site's delta. Method bodies do not move (the "recompile" only
// adds prefetches), so nothing is appended to the recompile log; the
// live site table is hardware state carried by the cache snapshot, and
// the optimization that installed it re-derives its own view on
// restore. A nil or empty map uninstalls all sites.
func (vm *VM) InstallPrefetchSites(sites map[uint64]int64) {
	vm.Hier.SetSwPrefetchSites(sites)
}

// SetOptInfo records the optimizing-compiler result for a method.
func (vm *VM) SetOptInfo(methodID int, info any) { vm.optInfo[methodID] = info }

// OptInfo returns the optimizing-compiler result for a method, or nil.
func (vm *VM) OptInfo(methodID int) any { return vm.optInfo[methodID] }

// Results returns the values the program emitted via the result trap.
func (vm *VM) Results() []int64 { return vm.results }

// Failure returns the fatal error raised by a trap (null dereference,
// out-of-bounds, out-of-memory), or nil.
func (vm *VM) Failure() error { return vm.failure }

// Allocations returns the object count and byte count allocated.
func (vm *VM) Allocations() (objects, bytes uint64) {
	return vm.allocations, vm.allocatedByte
}

// fail records a fatal VM error and halts the CPU.
func (vm *VM) fail(format string, args ...any) {
	if vm.failure == nil {
		loc := ""
		if m, ok := vm.Table.Lookup(vm.CPU.PC); ok {
			bci, _ := m.BytecodeAt(vm.CPU.PC)
			loc = fmt.Sprintf(" at %s bci %d (pc %#x)", m.Method.QualifiedName(), bci, vm.CPU.PC)
		}
		vm.failure = fmt.Errorf("vm: %s%s", fmt.Sprintf(format, args...), loc)
	}
	vm.CPU.Halt(1)
}

// Start prepares the machine to execute the given entry method. The
// entry method must take no arguments. Call after CompileAll.
func (vm *VM) Start(entry *classfile.Method) error {
	if len(entry.Args) != 0 {
		return fmt.Errorf("runtime: entry method %s must take no arguments", entry.QualifiedName())
	}
	entryAddr := vm.Mem.Read8(vm.CPU.Config().MethodTableBase + uint64(entry.ID)*8)
	if entryAddr == 0 {
		return fmt.Errorf("runtime: entry method %s not compiled", entry.QualifiedName())
	}
	sp := uint64(heap.StackTop) - 8
	vm.Mem.Write8(sp, 0) // sentinel return address: Ret from entry halts
	vm.CPU.SP = sp
	vm.CPU.FP = 0
	vm.CPU.PC = entryAddr
	vm.started = true
	return nil
}

// CancelCheckCycles is the safepoint poll quantum: with a cancel hook
// installed, the run loop pauses at least this often (in simulated
// cycles) to poll it. The pause points are the same scheduling points
// tickers run at — the application is between instructions with no GC
// in progress, so aborting there is always safe. The quantum only caps
// how long the loop runs between polls; it never changes when tickers
// fire or how cycles accumulate, so a run with an unfired cancel hook
// is cycle-identical to one without (pinned by TestRunContextIdentical).
const CancelCheckCycles = 250_000

// SetCancel installs (or, with nil, removes) the cooperative
// cancellation hook polled by Run. Must not be called while Run is
// executing.
func (vm *VM) SetCancel(f func() error) { vm.cancel = f }

// Run executes until the program halts or maxCycles elapse (0 means no
// limit). It returns the program's failure, if any, or the cancel
// hook's error if the run was aborted.
func (vm *VM) Run(maxCycles uint64) error {
	_, err := vm.run(maxCycles, 0)
	return err
}

// RunUntil executes like Run but additionally pauses — returning
// (true, nil) — once the cycle counter reaches pauseAt (0 means no
// pause point). A paused VM sits at a scheduling point: between
// instructions, outside any trap or ticker, exactly where the
// uninterrupted run would have checked deadlines, so execution resumed
// with Run/RunUntil is instruction-for-instruction identical to a run
// that never paused (pinned by the core snapshot determinism tests).
// If the program halts before pauseAt, RunUntil returns (false, err)
// like Run; a pauseAt at or beyond a non-zero maxCycles is
// unreachable and yields the usual cycle-budget failure.
func (vm *VM) RunUntil(maxCycles, pauseAt uint64) (paused bool, err error) {
	return vm.run(maxCycles, pauseAt)
}

func (vm *VM) run(maxCycles, pauseAt uint64) (bool, error) {
	if !vm.started {
		return false, fmt.Errorf("runtime: Run before Start")
	}
	c := vm.CPU
	for !c.Halted() {
		if vm.cancel != nil {
			if err := vm.cancel(); err != nil {
				return false, fmt.Errorf("runtime: run aborted after %d cycles: %w", c.Cycles(), err)
			}
		}
		// Find the earliest ticker deadline.
		next := ^uint64(0)
		for _, t := range vm.tickers {
			if d := t.Deadline(); d < next {
				next = d
			}
		}
		if maxCycles != 0 && c.Cycles() >= maxCycles {
			vm.fail("cycle budget of %d exhausted", maxCycles)
			break
		}
		if pauseAt != 0 && c.Cycles() >= pauseAt {
			return true, nil
		}
		if maxCycles != 0 && next > maxCycles {
			next = maxCycles
		}
		if pauseAt != 0 && next > pauseAt {
			next = pauseAt
		}
		if vm.cancel != nil {
			if q := c.Cycles() + CancelCheckCycles; q < next {
				next = q
			}
		}
		// Nothing non-local can fire before next (ticker deadlines,
		// cycle budget, pause point, cancel safepoint all folded in), so
		// let the CPU run unchecked to that horizon in its fast path.
		// In sampled mode the region scheduler drives the CPU instead,
		// with identical horizon semantics.
		if vm.sampler != nil {
			vm.sampler.advance(next)
		} else {
			c.RunCycles(next)
		}
		if c.Halted() {
			break
		}
		now := c.Cycles()
		for _, t := range vm.tickers {
			if t.Deadline() <= now {
				c.SetUserMode(false)
				t.Tick()
				c.SetUserMode(true)
			}
		}
	}
	return false, vm.failure
}

// RunToInstret executes until the retired-instruction counter reaches
// target (or the program halts), firing tickers exactly as Run would.
// Stopping is at an instruction boundary, not a scheduling point, so
// the machine state equals the uninterrupted run's state at the same
// instruction — the keystone sampled-vs-exact tests use this to walk
// an exact-mode machine to the instruction boundaries of a sampled
// run's measured regions. Exact mode only: in sampled mode the region
// scheduler owns instruction accounting.
func (vm *VM) RunToInstret(target uint64) error {
	if !vm.started {
		return fmt.Errorf("runtime: RunToInstret before Start")
	}
	if vm.sampler != nil {
		return fmt.Errorf("runtime: RunToInstret on a sampled-mode VM")
	}
	c := vm.CPU
	for !c.Halted() && c.Instret() < target {
		next := ^uint64(0)
		for _, t := range vm.tickers {
			if d := t.Deadline(); d < next {
				next = d
			}
		}
		c.RunBounded(next, target-c.Instret())
		if c.Halted() {
			break
		}
		now := c.Cycles()
		for _, t := range vm.tickers {
			if t.Deadline() <= now {
				c.SetUserMode(false)
				t.Tick()
				c.SetUserMode(true)
			}
		}
	}
	return vm.failure
}

// Cycles returns the simulated execution time so far.
func (vm *VM) Cycles() uint64 { return vm.CPU.Cycles() }
