package runtime

import (
	"errors"
	"fmt"

	"hpmvm/internal/snap"
)

// Snapshot/Restore implement snap.Checkpointable for the VM core. The
// serialized state is deliberately small: the immortal bump pointer,
// the emitted results, the failure/start flags, the allocation
// counters, and the post-boot recompile log. Machine code, dispatch
// tables, GC maps and optimizer results are NOT serialized — Restore
// requires a freshly booted VM for the same workload and replays the
// recompile log through CompileMethod, which deterministically rebuilds
// the identical code layout (the memory writes this performs are
// overwritten moments later when the memory image is restored, so they
// only matter for the VM-side tables).

const (
	snapComponent = "vm/runtime"
	snapVersion   = 1
)

// Snapshot serializes the VM's mutable state.
func (vm *VM) Snapshot() snap.ComponentState {
	var w snap.Writer
	vm.Immortal.Encode(&w)
	w.U64(uint64(len(vm.results)))
	for _, v := range vm.results {
		w.I64(v)
	}
	w.Bool(vm.failure != nil)
	if vm.failure != nil {
		w.String(vm.failure.Error())
	}
	w.Bool(vm.started)
	w.U64(vm.allocations)
	w.U64(vm.allocatedByte)
	w.U64(uint64(len(vm.recompileLog)))
	for _, e := range vm.recompileLog {
		w.I64(int64(e.methodID))
		w.I64(int64(e.level))
	}
	return snap.ComponentState{Component: snapComponent, Version: snapVersion, Data: w.Bytes()}
}

// Restore overwrites the VM's mutable state and replays the recompile
// log. The receiver must be freshly booted (BuildDispatch + CompileAll
// + MarkBootComplete) for the same workload and compile plan as the
// snapshot's origin; the replay then appends the same post-boot bodies
// in the same order, reproducing the origin's code and table layout.
// Restore the memory image and CPU after this (the replay writes
// dispatch slots the memory restore will overwrite).
func (vm *VM) Restore(st snap.ComponentState) error {
	if err := snap.Check(st, snapComponent, snapVersion); err != nil {
		return err
	}
	r := snap.NewReader(st.Data)
	var immortal = vm.Immortal
	// Decode into a scratch copy first so a malformed payload cannot
	// leave the immortal space half-restored.
	scratch := *immortal
	if err := scratch.Decode(r); err != nil {
		return err
	}
	nResults := r.U64()
	results := make([]int64, 0, nResults)
	for i := uint64(0); i < nResults && r.Err() == nil; i++ {
		results = append(results, r.I64())
	}
	var failure error
	if r.Bool() {
		failure = errors.New(r.String())
	}
	started := r.Bool()
	allocations := r.U64()
	allocatedByte := r.U64()
	nLog := r.U64()
	log := make([]recompileEntry, 0, nLog)
	for i := uint64(0); i < nLog && r.Err() == nil; i++ {
		var e recompileEntry
		e.methodID = int(r.I64())
		e.level = int(r.I64())
		log = append(log, e)
	}
	if err := r.Close(); err != nil {
		return err
	}
	if len(vm.recompileLog) != 0 {
		return fmt.Errorf("vm: restore requires a freshly booted VM (recompile log not empty)")
	}
	for _, e := range log {
		if e.methodID == padMethodID {
			// Code-layout pad entry: level carries the pad length.
			vm.InstallPad(e.level)
			continue
		}
		if e.methodID < 0 || e.methodID >= len(vm.U.Methods()) {
			return fmt.Errorf("vm: %w: recompile log method id %d not in universe", snap.ErrDecode, e.methodID)
		}
		if err := vm.CompileMethod(vm.U.Method(e.methodID), e.level); err != nil {
			return fmt.Errorf("vm: recompile replay failed for method %d level %d: %w", e.methodID, e.level, err)
		}
	}
	*immortal = scratch
	vm.results = results
	vm.failure = failure
	vm.started = started
	vm.allocations = allocations
	vm.allocatedByte = allocatedByte
	vm.recompileLog = log
	return nil
}
