package runtime

import (
	"fmt"

	"hpmvm/internal/hw/cpu"
	"hpmvm/internal/vm/mcmap"
)

// Root is one GC root location: either a CPU register or a stack slot
// address. Collectors read roots with RootGet and, for moving
// collections, update them with RootSet.
type Root struct {
	IsReg bool
	Reg   int
	Addr  uint64
}

// RootGet reads the reference held in a root (timed for memory roots).
func (vm *VM) RootGet(r Root) uint64 {
	if r.IsReg {
		return vm.CPU.Regs[r.Reg]
	}
	return vm.CPU.LoadWord(r.Addr)
}

// RootSet updates a root after its referent moved.
func (vm *VM) RootSet(r Root, v uint64) {
	if r.IsReg {
		vm.CPU.Regs[r.Reg] = v
	} else {
		vm.CPU.StoreWord(r.Addr, v)
	}
}

// CollectRoots walks the machine stack using the compilers' GC maps
// and returns every live reference location. It must be called only at
// a GC point, i.e. while the CPU is stopped at an allocation trap or a
// call instruction; the innermost frame's map covers live registers,
// outer frames contribute their frame slots (registers are caller-
// saved, so nothing survives in registers across a call).
func (vm *VM) CollectRoots() []Root {
	var roots []Root
	c := vm.CPU

	pc := c.PC
	fp := c.FP
	innermost := true
	for {
		body, ok := vm.Table.Lookup(pc)
		if !ok {
			panic(fmt.Sprintf("runtime: GC with pc %#x outside compiled code", pc))
		}
		gp := body.GCPointAt(pc)
		if gp == nil {
			panic(fmt.Sprintf("runtime: GC at %#x (%s) which is not a GC point",
				pc, body.Method.QualifiedName()))
		}
		if innermost {
			for reg := 0; reg < cpu.NumRegs; reg++ {
				if gp.RefRegs&(1<<uint(reg)) != 0 {
					roots = append(roots, Root{IsReg: true, Reg: reg})
				}
			}
			innermost = false
		}
		for slot := 0; slot < body.FrameSlots && slot < 64; slot++ {
			if gp.RefSlots&(1<<uint(slot)) != 0 {
				addr := fp - 8*uint64(slot+1)
				roots = append(roots, Root{Addr: addr})
			}
		}
		// Walk to the caller: saved FP at [fp], return address at
		// [fp+8]. The entry frame carries a zero return address.
		retAddr := vm.CPU.LoadWord(fp + 8)
		if retAddr == 0 {
			break
		}
		// The GC point of an outer frame is its call instruction.
		pc = retAddr - cpu.InstrBytes
		fp = vm.CPU.LoadWord(fp)
	}
	return roots
}

// GCMapAt returns the GC point covering pc, used by tests.
func (vm *VM) GCMapAt(pc uint64) (*mcmap.GCPoint, bool) {
	body, ok := vm.Table.Lookup(pc)
	if !ok {
		return nil, false
	}
	gp := body.GCPointAt(pc)
	return gp, gp != nil
}
