package runtime

import (
	"fmt"

	"hpmvm/internal/vm/bytecode"
	"hpmvm/internal/vm/classfile"
	"hpmvm/internal/vm/compiler/baseline"
	"hpmvm/internal/vm/compiler/opt"
	"hpmvm/internal/vm/mcmap"
)

// CompilePlan maps method IDs to optimization levels: level 0 means
// baseline, levels 1+ select the optimizing compiler. The paper's
// experiments run a "pseudo-adaptive" configuration where each program
// executes under a pre-generated plan so every run optimizes exactly
// the same methods (§6.1); plans are produced by recording an adaptive
// run (package aos).
type CompilePlan map[int]int

// BuildDispatch allocates the vtables in the immortal space and
// publishes the vtable map. Must run once before CompileAll.
func (vm *VM) BuildDispatch() {
	vtMapBase := vm.CPU.Config().VTableMapBase
	for _, cl := range vm.U.Classes() {
		if len(cl.VTable) == 0 {
			continue
		}
		vt := vm.Immortal.Alloc(uint64(8 * ((len(cl.VTable) + 1) &^ 1)))
		if vt == 0 {
			panic("runtime: immortal space exhausted for vtables")
		}
		vm.Mem.Write8(vtMapBase+uint64(cl.ID)*8, vt)
		// Entries are filled as methods get compiled.
	}
}

// CompileAll compiles every method that has bytecode: baseline by
// default, the optimizing compiler for methods named in the plan. This
// models the boot of the pseudo-adaptive configuration.
func (vm *VM) CompileAll(plan CompilePlan) error {
	for _, m := range vm.U.Methods() {
		if m.Code == nil {
			continue
		}
		level := 0
		if plan != nil {
			level = plan[m.ID]
		}
		if err := vm.CompileMethod(m, level); err != nil {
			return err
		}
	}
	return nil
}

// CompileMethod compiles (or recompiles) one method at the given level
// and publishes it in the dispatch tables. Previously installed bodies
// are marked obsolete but stay mapped (§4.2: compiled code lives in
// the immortal space and is never collected or moved).
func (vm *VM) CompileMethod(m *classfile.Method, level int) error {
	code, ok := m.Code.(*bytecode.Code)
	if !ok || code == nil {
		return fmt.Errorf("runtime: method %s has no bytecode", m.QualifiedName())
	}
	var body *mcmap.MCMap
	if level > 0 {
		res, err := opt.Compile(vm.U, vm.CPU, code, level)
		if err != nil {
			return err
		}
		body = res.Map
		vm.SetOptInfo(m.ID, res)
	} else {
		body = baseline.Compile(vm.U, vm.CPU, code)
	}

	// Obsolete any previous body for this method.
	for _, e := range vm.Table.Bodies() {
		if e.Method == m && !e.Obsolete {
			e.Obsolete = true
		}
	}
	vm.Table.Register(body)

	// Publish: method entry table slot, then every vtable slot bound
	// to this method (subclasses inherit the same *Method).
	vm.Mem.Write8(vm.CPU.Config().MethodTableBase+uint64(m.ID)*8, body.Start)
	if m.Virtual {
		vtMapBase := vm.CPU.Config().VTableMapBase
		for _, cl := range vm.U.Classes() {
			for slot, impl := range cl.VTable {
				if impl == m {
					vt := vm.Mem.Read8(vtMapBase + uint64(cl.ID)*8)
					vm.Mem.Write8(vt+uint64(slot)*8, body.Start)
				}
			}
		}
	}
	if vm.bootDone {
		vm.recompileLog = append(vm.recompileLog, recompileEntry{methodID: m.ID, level: level})
	}
	for _, fn := range vm.onRecompile {
		fn(m.ID)
	}
	return nil
}

// MethodEntry returns the current entry address for a method.
func (vm *VM) MethodEntry(m *classfile.Method) uint64 {
	return vm.Mem.Read8(vm.CPU.Config().MethodTableBase + uint64(m.ID)*8)
}
