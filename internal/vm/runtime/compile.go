package runtime

import (
	"fmt"

	"hpmvm/internal/hw/cpu"
	"hpmvm/internal/vm/bytecode"
	"hpmvm/internal/vm/classfile"
	"hpmvm/internal/vm/compiler/baseline"
	"hpmvm/internal/vm/compiler/opt"
	"hpmvm/internal/vm/mcmap"
)

// CompilePlan maps method IDs to optimization levels: level 0 means
// baseline, levels 1+ select the optimizing compiler. The paper's
// experiments run a "pseudo-adaptive" configuration where each program
// executes under a pre-generated plan so every run optimizes exactly
// the same methods (§6.1); plans are produced by recording an adaptive
// run (package aos).
type CompilePlan map[int]int

// BuildDispatch allocates the vtables in the immortal space and
// publishes the vtable map. Must run once before CompileAll.
func (vm *VM) BuildDispatch() {
	vtMapBase := vm.CPU.Config().VTableMapBase
	for _, cl := range vm.U.Classes() {
		if len(cl.VTable) == 0 {
			continue
		}
		vt := vm.Immortal.Alloc(uint64(8 * ((len(cl.VTable) + 1) &^ 1)))
		if vt == 0 {
			panic("runtime: immortal space exhausted for vtables")
		}
		vm.Mem.Write8(vtMapBase+uint64(cl.ID)*8, vt)
		// Entries are filled as methods get compiled.
	}
}

// CompileAll compiles every method that has bytecode: baseline by
// default, the optimizing compiler for methods named in the plan. This
// models the boot of the pseudo-adaptive configuration.
func (vm *VM) CompileAll(plan CompilePlan) error {
	for _, m := range vm.U.Methods() {
		if m.Code == nil {
			continue
		}
		level := 0
		if plan != nil {
			level = plan[m.ID]
		}
		if err := vm.CompileMethod(m, level); err != nil {
			return err
		}
	}
	return nil
}

// CompileMethod compiles (or recompiles) one method at the given level
// and publishes it in the dispatch tables. Previously installed bodies
// are marked obsolete but stay mapped (§4.2: compiled code lives in
// the immortal space and is never collected or moved).
func (vm *VM) CompileMethod(m *classfile.Method, level int) error {
	code, ok := m.Code.(*bytecode.Code)
	if !ok || code == nil {
		return fmt.Errorf("runtime: method %s has no bytecode", m.QualifiedName())
	}
	var body *mcmap.MCMap
	if level > 0 {
		res, err := opt.Compile(vm.U, vm.CPU, code, level)
		if err != nil {
			return err
		}
		body = res.Map
		vm.SetOptInfo(m.ID, res)
	} else {
		body = baseline.Compile(vm.U, vm.CPU, code)
	}

	// Obsolete any previous body for this method.
	for _, e := range vm.Table.Bodies() {
		if e.Method == m && !e.Obsolete {
			e.Obsolete = true
		}
	}
	vm.Table.Register(body)

	// Publish: method entry table slot, then every vtable slot bound
	// to this method (subclasses inherit the same *Method).
	vm.Mem.Write8(vm.CPU.Config().MethodTableBase+uint64(m.ID)*8, body.Start)
	if m.Virtual {
		vtMapBase := vm.CPU.Config().VTableMapBase
		for _, cl := range vm.U.Classes() {
			for slot, impl := range cl.VTable {
				if impl == m {
					vt := vm.Mem.Read8(vtMapBase + uint64(cl.ID)*8)
					vm.Mem.Write8(vt+uint64(slot)*8, body.Start)
				}
			}
		}
	}
	if vm.bootDone {
		vm.recompileLog = append(vm.recompileLog, recompileEntry{methodID: m.ID, level: level})
	}
	vm.levels[m.ID] = level
	for _, fn := range vm.onRecompile {
		fn(m.ID)
	}
	return nil
}

// MethodLevel returns the optimization level the method was last
// compiled at (0 for baseline or never compiled).
func (vm *VM) MethodLevel(methodID int) int { return vm.levels[methodID] }

// padMethodID marks an InstallPad entry in the recompile log; the
// entry's level field carries the pad length in instructions.
const padMethodID = -1

// InstallPad appends n no-op instruction slots to the code space and
// returns their start address. Pads are the code-layout optimization's
// alignment tool: they shift the following body's cache-line placement
// without registering anything in the machine-code map (a pad is never
// executed, so samples cannot land in it). Post-boot pads are recorded
// in the recompile log as methodID -1 entries and replayed on restore,
// keeping the snapshot contract's code-layout determinism.
func (vm *VM) InstallPad(n int) uint64 {
	addr := vm.CPU.InstallCode(make([]cpu.Instr, n))
	if vm.bootDone {
		vm.recompileLog = append(vm.recompileLog, recompileEntry{methodID: padMethodID, level: n})
	}
	return addr
}

// RelocateMethods re-lays methods in the given order at the current
// end of the code space, each recompiled at its current optimization
// level with padInstrs[i] no-op slots installed ahead of it (0 for
// tight packing). Old bodies stay mapped but obsolete — frames already
// on the stack return into them safely — while the dispatch tables
// retarget new invocations at the relocated copies. Everything flows
// through CompileMethod/InstallPad, so the recompile log replays the
// relocation exactly on restore.
func (vm *VM) RelocateMethods(methodIDs, padInstrs []int) error {
	if len(methodIDs) != len(padInstrs) {
		return fmt.Errorf("runtime: relocate: %d methods but %d pads", len(methodIDs), len(padInstrs))
	}
	for i, id := range methodIDs {
		if id < 0 || id >= len(vm.U.Methods()) {
			return fmt.Errorf("runtime: relocate: method id %d not in universe", id)
		}
		if padInstrs[i] > 0 {
			vm.InstallPad(padInstrs[i])
		}
		if err := vm.CompileMethod(vm.U.Method(id), vm.levels[id]); err != nil {
			return err
		}
	}
	return nil
}

// MethodEntry returns the current entry address for a method.
func (vm *VM) MethodEntry(m *classfile.Method) uint64 {
	return vm.Mem.Read8(vm.CPU.Config().MethodTableBase + uint64(m.ID)*8)
}
