package runtime

// Sampled simulation: the region scheduler that alternates the machine
// between functional fast-forward and detailed measurement, in the
// style of periodic region sampling (SMARTS/Pac-Sim; see DESIGN.md
// §12). Phase boundaries are instruction counts, so the schedule is a
// pure function of the architectural instruction stream and identical
// across cost models — the keystone tests rely on this to compare
// sampled runs against exact ones region by region.

import (
	"fmt"

	"hpmvm/internal/hw/cache"
	"hpmvm/internal/stats"
)

// NoWarmup is the sentinel WarmupInstrs value requesting a genuinely
// zero-length warmup phase. A literal zero cannot express it — the
// zero value of every SamplingConfig field means "default" — so
// calibration sweeps that want to measure straight out of fast-forward
// set WarmupInstrs = NoWarmup. WithDefaults passes the sentinel
// through unchanged (the canonical serialization stays idempotent);
// the scheduler maps it to an empty phase via warmup().
const NoWarmup = ^uint64(0)

// SamplingConfig parameterizes sampled simulation. The zero value of
// any field means "default" (see DefaultSamplingConfig); an all-zero
// config is therefore the default operating point.
type SamplingConfig struct {
	// FFInstrs is the length of each functional fast-forward phase in
	// instructions.
	FFInstrs uint64
	// WarmupInstrs is the detailed slice executed before each measured
	// region to let cache/TLB state refill naturally after a
	// fast-forward. It is simulated cycle-exactly but discarded.
	// NoWarmup requests a zero-length warmup; 0 means default.
	WarmupInstrs uint64
	// MeasureInstrs is the length of each measured detailed region.
	MeasureInstrs uint64
	// FlatMemCycles is the flat per-access charge of the functional
	// lane (the hierarchy's L1 hit cost is the natural choice).
	FlatMemCycles uint64
}

// DefaultSamplingConfig returns the calibrated operating point: a 30 K
// instruction measured region preceded by a 10 K warmup slice every
// 140 K instructions (~21% of the stream measured), with fast-forward
// memory charged at the L1 hit cost. Calibrated against the exact
// golden corpus (make verify-sampling): across the 16 fig2 workloads
// this schedule estimates full-run cycles within 1.1% worst-case
// (0.3% mean) of the cycle-exact simulation.
func DefaultSamplingConfig() SamplingConfig {
	return SamplingConfig{
		FFInstrs:      100_000,
		WarmupInstrs:  10_000,
		MeasureInstrs: 30_000,
		FlatMemCycles: 2,
	}
}

// WithDefaults fills zero fields from DefaultSamplingConfig. The
// NoWarmup sentinel is not a zero field and passes through unchanged,
// so WithDefaults is idempotent over it.
func (c SamplingConfig) WithDefaults() SamplingConfig {
	d := DefaultSamplingConfig()
	if c.FFInstrs == 0 {
		c.FFInstrs = d.FFInstrs
	}
	if c.WarmupInstrs == 0 {
		c.WarmupInstrs = d.WarmupInstrs
	}
	if c.MeasureInstrs == 0 {
		c.MeasureInstrs = d.MeasureInstrs
	}
	if c.FlatMemCycles == 0 {
		c.FlatMemCycles = d.FlatMemCycles
	}
	return c
}

// warmup returns the effective warmup phase length: WarmupInstrs with
// the NoWarmup sentinel mapped to an actual zero.
func (c SamplingConfig) warmup() uint64 {
	if c.WarmupInstrs == NoWarmup {
		return 0
	}
	return c.WarmupInstrs
}

// Scheduler phases. A period is warmup → measure → fast-forward: the
// run opens with a detailed slice so the cold-start region is measured
// from genuinely cold caches, exactly like an exact run's prefix.
const (
	phaseWarm = iota
	phaseMeasure
	phaseFF
)

// Sampler is the region scheduler. It owns the machine's lane switch
// (the cache.Hierarchy functional gate — flat memory charges with
// functional warming of the tag state during fast-forward),
// collects one stats.Region per measured slice, and accounts VM
// service cycles (allocation and GC) exactly: services always run in
// the detailed lane — collections are too bursty to sample — and their
// cycles are excluded from region rates and added back as a measured
// total at extrapolation time.
type Sampler struct {
	vm  *VM
	cfg SamplingConfig

	phase int
	left  uint64 // instructions remaining in the current phase
	done  bool

	regions []stats.Region

	// Measurement-slice snapshots.
	measCycles  uint64
	measInstret uint64
	measSvc     uint64
	measSamples uint64
	measCache   cache.Stats

	// VM service bracket (Collector.Alloc): depth-counted so nested
	// service entries (a collection triggering another) measure once.
	svcCycles     uint64
	svcDepth      int
	svcStart      uint64
	svcFunctional bool

	// sampleCount, when set, reads the cumulative PEBS sample count so
	// regions can attribute samples to slices (monitored runs).
	sampleCount func() uint64

	// jitter is the LCG state behind the fast-forward length
	// randomization (see nextFF). Seeded by a fixed constant, so a
	// given config replays the identical schedule every run.
	jitter uint64
}

// EnableSampling switches the VM into sampled-simulation mode. It must
// be called before Run; the machine starts in the detailed warmup
// phase. The returned Sampler is also reachable via VM.Sampler.
func (vm *VM) EnableSampling(cfg SamplingConfig) (*Sampler, error) {
	if vm.sampler != nil {
		return nil, fmt.Errorf("runtime: sampling already enabled")
	}
	if vm.started {
		return nil, fmt.Errorf("runtime: EnableSampling after Start")
	}
	s := &Sampler{vm: vm, cfg: cfg.WithDefaults()}
	// The machine opens in the warmup phase even under NoWarmup (left =
	// 0): beginMeasure must not fire until the run is live — Boot resets
	// the hierarchy statistics after this point — so the scheduler
	// rotates into the first measured region on the first advance.
	s.phase = phaseWarm
	s.left = s.cfg.warmup()
	vm.sampler = s
	return s, nil
}

// Sampler returns the region scheduler, or nil for an exact-mode VM.
func (vm *VM) Sampler() *Sampler { return vm.sampler }

// Config returns the effective (default-filled) sampling parameters.
func (s *Sampler) Config() SamplingConfig { return s.cfg }

// Regions returns the measured regions collected so far.
func (s *Sampler) Regions() []stats.Region { return s.regions }

// ServiceCycles returns the exact cycles spent in VM services
// (allocation and garbage collection) so far.
func (s *Sampler) ServiceCycles() uint64 { return s.svcCycles }

// SetSampleCounter installs the cumulative PEBS sample count reader
// used to attribute samples to measured regions.
func (s *Sampler) SetSampleCounter(fn func() uint64) { s.sampleCount = fn }

// Estimate extrapolates the full-run metrics from the measured regions.
func (s *Sampler) Estimate() stats.Estimate {
	return stats.Extrapolate(s.regions, s.vm.CPU.Instret(), s.svcCycles)
}

// advance is the sampled-mode replacement for CPU.RunCycles in the VM
// run loop: it executes up to the caller's cycle horizon, switching
// lanes at phase boundaries. Horizon semantics are identical to
// RunCycles, so ticker scheduling, pause points, and cancel safepoints
// behave exactly as in exact mode.
func (s *Sampler) advance(horizon uint64) {
	c := s.vm.CPU
	for !c.Halted() && c.Cycles() < horizon {
		if s.left != 0 {
			retired := c.RunBounded(horizon, s.left)
			s.left -= retired
			if s.left != 0 {
				break // horizon reached (or halted) mid-phase
			}
		}
		// Phase exhausted — or zero-length to begin with (a NoWarmup
		// schedule enters here with left == 0 before anything ran).
		s.nextPhase()
	}
	if c.Halted() {
		s.finish()
	}
}

// nextPhase rotates warmup → measure → fast-forward → warmup, flipping
// the hierarchy lane and snapshotting region boundaries.
func (s *Sampler) nextPhase() {
	switch s.phase {
	case phaseWarm:
		s.phase = phaseMeasure
		s.left = s.cfg.MeasureInstrs
		s.beginMeasure()
	case phaseMeasure:
		s.endMeasure()
		s.phase = phaseFF
		s.left = s.nextFF()
		s.vm.Hier.SetFunctional(s.cfg.FlatMemCycles)
	case phaseFF:
		s.vm.Hier.SetDetailed()
		s.phase = phaseWarm
		s.left = s.cfg.warmup()
		if s.left == 0 {
			// NoWarmup: measure straight out of fast-forward. Recursing
			// here (rather than letting advance rotate on its next
			// iteration) keeps the region boundary snapshot eager — a
			// horizon landing exactly on the phase edge must not let
			// ticker work slip between fast-forward and beginMeasure.
			s.nextPhase()
		}
	}
}

// nextFF returns the next fast-forward length: uniform in
// [FFInstrs/2, 3·FFInstrs/2) from a deterministic LCG, so the mean
// period (and measured fraction) matches the config while the region
// placement cannot phase-lock onto periodic program structure — the
// same reason PEBS randomizes its interval's low bits (§6.1). The LCG
// seed is fixed: a config fully determines its schedule.
func (s *Sampler) nextFF() uint64 {
	if s.jitter == 0 {
		s.jitter = 0x9E3779B97F4A7C15
	}
	s.jitter = s.jitter*6364136223846793005 + 1442695040888963407
	ff := s.cfg.FFInstrs
	n := ff/2 + (s.jitter>>33)%ff
	if n == 0 {
		n = 1
	}
	return n
}

// finish closes a measurement slice cut short by program end, so short
// runs still contribute their tail. Idempotent.
func (s *Sampler) finish() {
	if s.done {
		return
	}
	s.done = true
	if s.phase == phaseMeasure {
		s.endMeasure()
	}
	s.vm.Hier.SetDetailed()
}

func (s *Sampler) beginMeasure() {
	vm := s.vm
	s.measCycles = vm.CPU.Cycles()
	s.measInstret = vm.CPU.Instret()
	s.measSvc = s.svcCycles
	s.measCache = vm.Hier.Stats()
	if s.sampleCount != nil {
		s.measSamples = s.sampleCount()
	}
}

func (s *Sampler) endMeasure() {
	vm := s.vm
	cs := vm.Hier.Stats()
	r := stats.Region{
		StartInstret:  s.measInstret,
		Instret:       vm.CPU.Instret() - s.measInstret,
		Cycles:        vm.CPU.Cycles() - s.measCycles,
		ServiceCycles: s.svcCycles - s.measSvc,
		Accesses:      cs.Accesses - s.measCache.Accesses,
		L1Misses:      cs.L1Misses - s.measCache.L1Misses,
		L2Misses:      cs.L2Misses - s.measCache.L2Misses,
		TLBMisses:     cs.TLBMisses - s.measCache.TLBMisses,
	}
	if s.sampleCount != nil {
		r.Samples = s.sampleCount() - s.measSamples
	}
	if r.Instret == 0 {
		return
	}
	s.regions = append(s.regions, r)
}

// serviceBegin/serviceEnd bracket Collector.Alloc (the only entry to
// allocation and collection work). While the bracket is open the
// hierarchy runs detailed even mid-fast-forward: collections are rare,
// large bursts whose cycles must be measured, not sampled, and whose
// cache traffic realistically disturbs the warm state the next region
// inherits.
func (s *Sampler) serviceBegin() {
	s.svcDepth++
	if s.svcDepth > 1 {
		return
	}
	s.svcStart = s.vm.CPU.Cycles()
	if s.vm.Hier.Functional() {
		s.svcFunctional = true
		s.vm.Hier.SetDetailed()
	}
}

func (s *Sampler) serviceEnd() {
	s.svcDepth--
	if s.svcDepth > 0 {
		return
	}
	s.svcCycles += s.vm.CPU.Cycles() - s.svcStart
	if s.svcFunctional {
		s.svcFunctional = false
		s.vm.Hier.SetFunctional(s.cfg.FlatMemCycles)
	}
}
