package runtime

import "testing"

// TestSamplingConfigZeroMeansDefault pins the zero-value contract: an
// all-zero config resolves to the default operating point, and
// WithDefaults is idempotent.
func TestSamplingConfigZeroMeansDefault(t *testing.T) {
	got := SamplingConfig{}.WithDefaults()
	want := DefaultSamplingConfig()
	if got != want {
		t.Errorf("zero config resolved to %+v, want default %+v", got, want)
	}
	if again := got.WithDefaults(); again != got {
		t.Errorf("WithDefaults not idempotent: %+v -> %+v", got, again)
	}
	if got.warmup() != want.WarmupInstrs {
		t.Errorf("default warmup() = %d, want %d", got.warmup(), want.WarmupInstrs)
	}
}

// TestSamplingConfigNoWarmup pins the explicit-zero path: the NoWarmup
// sentinel survives WithDefaults unchanged (it is not a zero field, so
// the canonical serialization of a no-warmup config stays distinct and
// idempotent) and maps to a genuinely empty warmup phase.
func TestSamplingConfigNoWarmup(t *testing.T) {
	cfg := SamplingConfig{WarmupInstrs: NoWarmup}.WithDefaults()
	if cfg.WarmupInstrs != NoWarmup {
		t.Errorf("WithDefaults rewrote the NoWarmup sentinel to %d", cfg.WarmupInstrs)
	}
	if cfg.warmup() != 0 {
		t.Errorf("NoWarmup warmup() = %d, want 0", cfg.warmup())
	}
	if again := cfg.WithDefaults(); again != cfg {
		t.Errorf("WithDefaults not idempotent over NoWarmup: %+v -> %+v", cfg, again)
	}
	// The other fields still default-fill around the sentinel.
	d := DefaultSamplingConfig()
	if cfg.FFInstrs != d.FFInstrs || cfg.MeasureInstrs != d.MeasureInstrs || cfg.FlatMemCycles != d.FlatMemCycles {
		t.Errorf("NoWarmup config did not default-fill the other fields: %+v", cfg)
	}
}
