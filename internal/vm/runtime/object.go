package runtime

import (
	"fmt"

	"hpmvm/internal/vm/classfile"
)

// Object-model helpers. All "timed" variants go through the CPU's
// memory hierarchy (GC and monitor work shares caches and cycles with
// the application); the "raw" variants bypass timing and are reserved
// for setup (boot-image construction) and for tests.

// ClassIDOf reads the class ID from an object header (timed).
func (vm *VM) ClassIDOf(obj uint64) uint32 {
	return vm.CPU.LoadHalf(obj + classfile.OffClassID)
}

// ClassOf resolves an object's class (timed header read).
func (vm *VM) ClassOf(obj uint64) *classfile.Class {
	return vm.U.Class(int(vm.ClassIDOf(obj)))
}

// FlagsOf reads the header flags (timed).
func (vm *VM) FlagsOf(obj uint64) uint32 {
	return vm.CPU.LoadHalf(obj + classfile.OffFlags)
}

// SetFlags writes the header flags (timed).
func (vm *VM) SetFlags(obj uint64, flags uint32) {
	vm.CPU.StoreHalf(obj+classfile.OffFlags, flags)
}

// ArrayLenOf reads an array's length (timed).
func (vm *VM) ArrayLenOf(obj uint64) uint64 {
	return uint64(vm.CPU.LoadHalf(obj + classfile.OffArrayLen))
}

// SizeOf computes an object's total size from its header (timed).
func (vm *VM) SizeOf(obj uint64) uint64 {
	cl := vm.ClassOf(obj)
	if cl.IsArray {
		return cl.ArraySize(vm.ArrayLenOf(obj))
	}
	return cl.InstanceSize
}

// Forwarded reports whether the object header carries a forwarding
// pointer, returning the destination.
func (vm *VM) Forwarded(obj uint64) (uint64, bool) {
	if vm.FlagsOf(obj)&classfile.FlagForwarded == 0 {
		return 0, false
	}
	return vm.CPU.LoadWord(obj + classfile.OffForwarding), true
}

// SetForwarding installs a forwarding pointer in the old copy (timed).
func (vm *VM) SetForwarding(obj, to uint64) {
	vm.SetFlags(obj, vm.FlagsOf(obj)|classfile.FlagForwarded)
	vm.CPU.StoreWord(obj+classfile.OffForwarding, to)
}

// CopyObject copies size bytes of object data word by word through the
// memory hierarchy (evacuation traffic is real cache traffic).
func (vm *VM) CopyObject(dst, src, size uint64) {
	for off := uint64(0); off < size; off += 8 {
		vm.CPU.StoreWord(dst+off, vm.CPU.LoadWord(src+off))
	}
}

// ForEachRef invokes fn with the address of every reference slot in
// the object (fields of scalar objects, elements of reference arrays).
// Header reads are timed; fn itself performs the slot accesses.
func (vm *VM) ForEachRef(obj uint64, fn func(slot uint64)) {
	cl := vm.ClassOf(obj)
	if cl.IsArray {
		if cl.ElemKind == classfile.KindRef {
			n := vm.ArrayLenOf(obj)
			for i := uint64(0); i < n; i++ {
				fn(obj + classfile.HeaderSize + i*8)
			}
		}
		return
	}
	for _, off := range cl.RefOffsets {
		fn(obj + off)
	}
}

// initObject writes a fresh header and zeroes the payload (timed).
func (vm *VM) initObject(addr uint64, cl *classfile.Class, size uint64, arrayLen uint64) {
	// Header: class ID + cleared flags in one word, array length /
	// forwarding word zeroed.
	vm.CPU.StoreHalf(addr+classfile.OffClassID, uint32(cl.ID))
	vm.CPU.StoreHalf(addr+classfile.OffFlags, 0)
	vm.CPU.StoreWord(addr+classfile.OffArrayLen, arrayLen)
	for off := uint64(classfile.HeaderSize); off < size; off += 8 {
		vm.CPU.StoreWord(addr+off, 0)
	}
}

// --- Boot-image (immortal) object construction: untimed setup API ---

// NewImmortalObject allocates and initializes a scalar object in the
// immortal space. Immortal objects are never collected or moved;
// reference constants in bytecode resolve to such objects.
func (vm *VM) NewImmortalObject(cl *classfile.Class) uint64 {
	if cl.IsArray {
		panic(fmt.Sprintf("runtime: NewImmortalObject on array class %s", cl.Name))
	}
	addr := vm.Immortal.Alloc(cl.InstanceSize)
	if addr == 0 {
		panic("runtime: immortal space exhausted")
	}
	vm.rawInit(addr, cl, cl.InstanceSize, 0)
	return addr
}

// NewImmortalArray allocates and initializes an array in the immortal
// space.
func (vm *VM) NewImmortalArray(cl *classfile.Class, n uint64) uint64 {
	if !cl.IsArray {
		panic(fmt.Sprintf("runtime: NewImmortalArray on scalar class %s", cl.Name))
	}
	size := cl.ArraySize(n)
	addr := vm.Immortal.Alloc(size)
	if addr == 0 {
		panic("runtime: immortal space exhausted")
	}
	vm.rawInit(addr, cl, size, n)
	return addr
}

func (vm *VM) rawInit(addr uint64, cl *classfile.Class, size, arrayLen uint64) {
	vm.Mem.Zero(addr, size)
	vm.Mem.Write4(addr+classfile.OffClassID, uint32(cl.ID))
	vm.Mem.Write8(addr+classfile.OffArrayLen, arrayLen)
}

// RawSetField writes a field without timing (setup only).
func (vm *VM) RawSetField(obj uint64, f *classfile.Field, v uint64) {
	switch f.Kind {
	case classfile.KindChar:
		vm.Mem.Write2(obj+f.Offset, uint16(v))
	case classfile.KindByte:
		vm.Mem.Write1(obj+f.Offset, uint8(v))
	default:
		vm.Mem.Write8(obj+f.Offset, v)
	}
}

// RawGetField reads a field without timing (tests and verification).
func (vm *VM) RawGetField(obj uint64, f *classfile.Field) uint64 {
	switch f.Kind {
	case classfile.KindChar:
		return uint64(vm.Mem.Read2(obj + f.Offset))
	case classfile.KindByte:
		return uint64(vm.Mem.Read1(obj + f.Offset))
	default:
		return vm.Mem.Read8(obj + f.Offset)
	}
}

// RawSetElem writes an array element without timing (setup only).
func (vm *VM) RawSetElem(arr uint64, cl *classfile.Class, i uint64, v uint64) {
	base := arr + classfile.HeaderSize
	switch cl.ElemKind {
	case classfile.KindChar:
		vm.Mem.Write2(base+i*2, uint16(v))
	case classfile.KindByte:
		vm.Mem.Write1(base+i, uint8(v))
	default:
		vm.Mem.Write8(base+i*8, v)
	}
}

// RawGetElem reads an array element without timing.
func (vm *VM) RawGetElem(arr uint64, cl *classfile.Class, i uint64) uint64 {
	base := arr + classfile.HeaderSize
	switch cl.ElemKind {
	case classfile.KindChar:
		return uint64(vm.Mem.Read2(base + i*2))
	case classfile.KindByte:
		return uint64(vm.Mem.Read1(base + i))
	default:
		return vm.Mem.Read8(base + i*8)
	}
}

// NewImmortalString builds a String-like constant: an instance of
// stringClass whose valueField references a fresh immortal char array
// holding text. Used by workloads to seed reference constants.
func (vm *VM) NewImmortalString(stringClass *classfile.Class, valueField *classfile.Field, text string) uint64 {
	arr := vm.NewImmortalArray(vm.U.CharArray, uint64(len(text)))
	for i := 0; i < len(text); i++ {
		vm.RawSetElem(arr, vm.U.CharArray, uint64(i), uint64(text[i]))
	}
	s := vm.NewImmortalObject(stringClass)
	vm.RawSetField(s, valueField, arr)
	return s
}
