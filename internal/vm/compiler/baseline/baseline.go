// Package baseline implements the quick, non-optimizing JIT compiler —
// the analogue of the Jikes RVM baseline compiler (§3.2). Every method
// is baseline-compiled on first use; the adaptive optimization system
// later recompiles hot methods with the optimizing compiler.
//
// The compiler performs a direct stack-machine translation: the operand
// stack and local variables live in the method frame, each bytecode is
// expanded into a short fixed instruction pattern using scratch
// registers, and a complete machine-code → bytecode map is produced as
// a by-product (Jikes' baseline compiler also records this for every
// instruction, §4.2).
package baseline

import (
	"fmt"

	"hpmvm/internal/hw/cpu"
	"hpmvm/internal/vm/bytecode"
	"hpmvm/internal/vm/classfile"
	"hpmvm/internal/vm/compiler/emit"
	"hpmvm/internal/vm/mcmap"
)

const (
	t0 = cpu.RegTmp0
	t1 = cpu.RegTmp1
	t2 = cpu.RegTmp2
	zr = cpu.RegZero
)

// Compile translates verified bytecode into machine code, installs it,
// and returns its machine-code map. The caller registers the map in
// the method table and the method entry table.
func Compile(u *classfile.Universe, c *cpu.CPU, code *bytecode.Code) *mcmap.MCMap {
	if code.StackIn == nil {
		panic(fmt.Sprintf("baseline: %s not verified", code.Method.QualifiedName()))
	}
	a := emit.New(c)
	numLocals := code.NumLocals
	frameSlots := numLocals + code.MaxStack
	if frameSlots > 64 {
		panic(fmt.Sprintf("baseline: %s: frame of %d slots exceeds the 64-slot GC map budget", code.Method.QualifiedName(), frameSlots))
	}

	// Labels for every bytecode branch target, plus shared trap blocks.
	targets := make(map[int]int)
	for _, in := range code.Instrs {
		if in.Op.IsBranch() {
			if _, ok := targets[int(in.A)]; !ok {
				targets[int(in.A)] = a.NewLabel()
			}
		}
	}
	npe := a.NewLabel()
	oob := a.NewLabel()
	npeUsed, oobUsed := false, false

	// Reference locals are part of every GC map; stack slots join
	// per-point based on the verifier's typing.
	var refLocalMask uint64
	for i, k := range code.LocalKinds {
		if k == classfile.KindRef {
			refLocalMask |= 1 << uint(i)
		}
	}

	slotOff := func(slot int) int64 { return emit.SlotOffset(slot) }
	stackOff := func(depth int) int64 { return slotOff(numLocals + depth) }

	// Prologue: build the frame, home the arguments, and zero all
	// non-argument locals. Locals start as zero/null by VM semantics
	// (like JVM fields, unlike JVM locals), and conservative GC maps
	// must never see uninitialized reference slots.
	a.Emit(cpu.Instr{Op: cpu.OpEnter, Imm: int64(frameSlots * 8)}, mcmap.NoBCI, mcmap.NoBCI)
	nargs := len(code.Method.Args)
	for i := 0; i < nargs; i++ {
		a.Emit(cpu.Instr{Op: cpu.OpSt8, Rs1: cpu.BaseFP, Imm: slotOff(i), Rs2: uint8(i)}, mcmap.NoBCI, mcmap.NoBCI)
	}
	for i := nargs; i < numLocals; i++ {
		a.Emit(cpu.Instr{Op: cpu.OpSt8, Rs1: cpu.BaseFP, Imm: slotOff(i), Rs2: zr}, mcmap.NoBCI, mcmap.NoBCI)
	}

	// gcMap builds the frame-slot reference mask for a GC point where
	// the operand stack holds `depth` live slots.
	gcMap := func(bci, depth int) uint64 {
		m := refLocalMask
		kinds := code.StackIn[bci]
		for d := 0; d < depth && d < len(kinds); d++ {
			if kinds[d] == classfile.KindRef {
				m |= 1 << uint(numLocals+d)
			}
		}
		return m
	}

	for pc, in := range code.Instrs {
		bci := int32(pc)
		if l, ok := targets[pc]; ok {
			a.Bind(l)
		}
		depth := len(code.StackIn[pc])

		// Shorthand emit helpers bound to this bytecode.
		e := func(i cpu.Instr) { a.Emit(i, bci, mcmap.NoBCI) }
		ldStack := func(reg uint8, d int) {
			e(cpu.Instr{Op: cpu.OpLd8, Rd: reg, Rs1: cpu.BaseFP, Imm: stackOff(d)})
		}
		stStack := func(d int, reg uint8) {
			e(cpu.Instr{Op: cpu.OpSt8, Rs1: cpu.BaseFP, Imm: stackOff(d), Rs2: reg})
		}
		nullCheck := func(reg uint8) {
			npeUsed = true
			a.EmitJump(cpu.Instr{Op: cpu.OpBrEQ, Rs1: reg, Rs2: zr}, npe, bci, mcmap.NoBCI)
		}

		switch in.Op {
		case bytecode.OpNop:
			e(cpu.Instr{Op: cpu.OpNop})

		case bytecode.OpConstInt:
			e(cpu.Instr{Op: cpu.OpMovImm, Rd: t0, Imm: in.A})
			stStack(depth, t0)
		case bytecode.OpConstNull:
			stStack(depth, zr)
		case bytecode.OpLoadConst:
			e(cpu.Instr{Op: cpu.OpMovImm, Rd: t0, Imm: int64(code.RefConstAddrs[in.A])})
			stStack(depth, t0)

		case bytecode.OpLoad:
			e(cpu.Instr{Op: cpu.OpLd8, Rd: t0, Rs1: cpu.BaseFP, Imm: slotOff(int(in.A))})
			stStack(depth, t0)
		case bytecode.OpStore:
			ldStack(t0, depth-1)
			e(cpu.Instr{Op: cpu.OpSt8, Rs1: cpu.BaseFP, Imm: slotOff(int(in.A)), Rs2: t0})
		case bytecode.OpIInc:
			e(cpu.Instr{Op: cpu.OpLd8, Rd: t0, Rs1: cpu.BaseFP, Imm: slotOff(int(in.A))})
			e(cpu.Instr{Op: cpu.OpAddImm, Rd: t0, Rs1: t0, Imm: in.B})
			e(cpu.Instr{Op: cpu.OpSt8, Rs1: cpu.BaseFP, Imm: slotOff(int(in.A)), Rs2: t0})

		case bytecode.OpGetField:
			f := u.Field(int(in.A))
			ldStack(t0, depth-1)
			nullCheck(t0)
			e(loadField(t1, t0, f))
			stStack(depth-1, t1)
		case bytecode.OpPutField:
			f := u.Field(int(in.A))
			ldStack(t0, depth-2)
			ldStack(t1, depth-1)
			nullCheck(t0)
			e(storeField(t0, f, t1))

		case bytecode.OpNewObject:
			e(cpu.Instr{Op: cpu.OpMovImm, Rd: 1, Imm: in.A})
			e(cpu.Instr{Op: cpu.OpTrap, Imm: cpu.TrapAllocObject})
			a.GCPoint(0, gcMap(pc, depth), bci)
			stStack(depth, 0)
		case bytecode.OpNewArray:
			ldStack(2, depth-1)
			e(cpu.Instr{Op: cpu.OpMovImm, Rd: 1, Imm: in.A})
			e(cpu.Instr{Op: cpu.OpTrap, Imm: cpu.TrapAllocArray})
			a.GCPoint(0, gcMap(pc, depth-1), bci)
			stStack(depth-1, 0)

		case bytecode.OpALoad:
			k := classfile.Kind(in.A)
			ldStack(t0, depth-2)
			nullCheck(t0)
			ldStack(t1, depth-1)
			oobUsed = true
			e(cpu.Instr{Op: cpu.OpLd4, Rd: t2, Rs1: t0, Imm: classfile.OffArrayLen})
			a.EmitJump(cpu.Instr{Op: cpu.OpBrUGE, Rs1: t1, Rs2: t2}, oob, bci, mcmap.NoBCI)
			e(cpu.Instr{Op: cpu.OpShlImm, Rd: t1, Rs1: t1, Imm: elemShift(k)})
			e(cpu.Instr{Op: cpu.OpAdd, Rd: t1, Rs1: t0, Rs2: t1})
			e(loadElem(t2, t1, k))
			stStack(depth-2, t2)
		case bytecode.OpAStore:
			k := classfile.Kind(in.A)
			ldStack(t0, depth-3)
			nullCheck(t0)
			ldStack(t1, depth-2)
			oobUsed = true
			e(cpu.Instr{Op: cpu.OpLd4, Rd: t2, Rs1: t0, Imm: classfile.OffArrayLen})
			a.EmitJump(cpu.Instr{Op: cpu.OpBrUGE, Rs1: t1, Rs2: t2}, oob, bci, mcmap.NoBCI)
			e(cpu.Instr{Op: cpu.OpShlImm, Rd: t1, Rs1: t1, Imm: elemShift(k)})
			e(cpu.Instr{Op: cpu.OpAdd, Rd: t1, Rs1: t0, Rs2: t1})
			ldStack(t2, depth-1)
			e(storeElem(t1, k, t2))
		case bytecode.OpArrayLen:
			ldStack(t0, depth-1)
			nullCheck(t0)
			e(cpu.Instr{Op: cpu.OpLd4, Rd: t1, Rs1: t0, Imm: classfile.OffArrayLen})
			stStack(depth-1, t1)

		case bytecode.OpAdd, bytecode.OpSub, bytecode.OpMul, bytecode.OpDiv, bytecode.OpRem,
			bytecode.OpAnd, bytecode.OpOr, bytecode.OpXor, bytecode.OpShl, bytecode.OpShr, bytecode.OpSar:
			ldStack(t0, depth-2)
			ldStack(t1, depth-1)
			e(cpu.Instr{Op: arithOp(in.Op), Rd: t0, Rs1: t0, Rs2: t1})
			stStack(depth-2, t0)
		case bytecode.OpNeg:
			ldStack(t0, depth-1)
			e(cpu.Instr{Op: cpu.OpSub, Rd: t0, Rs1: zr, Rs2: t0})
			stStack(depth-1, t0)

		case bytecode.OpGoto:
			a.EmitJump(cpu.Instr{Op: cpu.OpJmp}, targets[int(in.A)], bci, mcmap.NoBCI)
		case bytecode.OpIfEQ, bytecode.OpIfNE, bytecode.OpIfLT, bytecode.OpIfLE,
			bytecode.OpIfGT, bytecode.OpIfGE, bytecode.OpIfRefEQ, bytecode.OpIfRefNE:
			ldStack(t0, depth-2)
			ldStack(t1, depth-1)
			a.EmitJump(cpu.Instr{Op: branchOp(in.Op), Rs1: t0, Rs2: t1}, targets[int(in.A)], bci, mcmap.NoBCI)
		case bytecode.OpIfNull:
			ldStack(t0, depth-1)
			a.EmitJump(cpu.Instr{Op: cpu.OpBrEQ, Rs1: t0, Rs2: zr}, targets[int(in.A)], bci, mcmap.NoBCI)
		case bytecode.OpIfNonNull:
			ldStack(t0, depth-1)
			a.EmitJump(cpu.Instr{Op: cpu.OpBrNE, Rs1: t0, Rs2: zr}, targets[int(in.A)], bci, mcmap.NoBCI)

		case bytecode.OpInvokeStatic, bytecode.OpInvokeVirtual:
			m := u.Method(int(in.A))
			n := len(m.Args)
			for i := 0; i < n; i++ {
				ldStack(uint8(i), depth-n+i)
			}
			if in.Op == bytecode.OpInvokeStatic {
				e(cpu.Instr{Op: cpu.OpCallM, Imm: int64(m.ID)})
			} else {
				e(cpu.Instr{Op: cpu.OpCallV, Rs1: 0, Imm: int64(m.VSlot)})
			}
			a.GCPoint(0, gcMap(pc, depth-n), bci)
			if m.Ret != classfile.KindVoid {
				stStack(depth-n, 0)
			}

		case bytecode.OpReturn:
			e(cpu.Instr{Op: cpu.OpLeave})
			e(cpu.Instr{Op: cpu.OpRet})
		case bytecode.OpReturnVal:
			ldStack(0, depth-1)
			e(cpu.Instr{Op: cpu.OpLeave})
			e(cpu.Instr{Op: cpu.OpRet})

		case bytecode.OpPop:
			e(cpu.Instr{Op: cpu.OpNop})
		case bytecode.OpDup:
			ldStack(t0, depth-1)
			stStack(depth, t0)
		case bytecode.OpSwap:
			ldStack(t0, depth-2)
			ldStack(t1, depth-1)
			stStack(depth-2, t1)
			stStack(depth-1, t0)

		case bytecode.OpResult:
			ldStack(1, depth-1)
			e(cpu.Instr{Op: cpu.OpTrap, Imm: cpu.TrapResult})

		case bytecode.OpNullCheck:
			ldStack(t0, depth-1)
			nullCheck(t0)

		default:
			panic(fmt.Sprintf("baseline: %s@%d: unsupported opcode %v", code.Method.QualifiedName(), pc, in.Op))
		}
	}

	// Shared trap blocks.
	if npeUsed {
		a.Bind(npe)
		a.Emit(cpu.Instr{Op: cpu.OpTrap, Imm: cpu.TrapNullPtr}, mcmap.NoBCI, mcmap.NoBCI)
	}
	if oobUsed {
		a.Bind(oob)
		a.Emit(cpu.Instr{Op: cpu.OpTrap, Imm: cpu.TrapBounds}, mcmap.NoBCI, mcmap.NoBCI)
	}

	return a.Finish(code.Method, false, frameSlots)
}

func elemShift(k classfile.Kind) int64 {
	switch k.Size() {
	case 8:
		return 3
	case 2:
		return 1
	default:
		return 0
	}
}

func loadField(rd, obj uint8, f *classfile.Field) cpu.Instr {
	op := cpu.OpLd8
	switch f.Kind {
	case classfile.KindChar:
		op = cpu.OpLd2
	case classfile.KindByte:
		op = cpu.OpLd1
	}
	return cpu.Instr{Op: op, Rd: rd, Rs1: obj, Imm: int64(f.Offset)}
}

func storeField(obj uint8, f *classfile.Field, val uint8) cpu.Instr {
	op := cpu.OpSt8
	switch f.Kind {
	case classfile.KindRef:
		op = cpu.OpStRef // reference stores carry the write barrier
	case classfile.KindChar:
		op = cpu.OpSt2
	case classfile.KindByte:
		op = cpu.OpSt1
	}
	return cpu.Instr{Op: op, Rs1: obj, Imm: int64(f.Offset), Rs2: val}
}

func loadElem(rd, addr uint8, k classfile.Kind) cpu.Instr {
	op := cpu.OpLd8
	switch k {
	case classfile.KindChar:
		op = cpu.OpLd2
	case classfile.KindByte:
		op = cpu.OpLd1
	}
	return cpu.Instr{Op: op, Rd: rd, Rs1: addr, Imm: classfile.HeaderSize}
}

func storeElem(addr uint8, k classfile.Kind, val uint8) cpu.Instr {
	op := cpu.OpSt8
	switch k {
	case classfile.KindRef:
		op = cpu.OpStRef // reference stores carry the write barrier
	case classfile.KindChar:
		op = cpu.OpSt2
	case classfile.KindByte:
		op = cpu.OpSt1
	}
	return cpu.Instr{Op: op, Rs1: addr, Imm: classfile.HeaderSize, Rs2: val}
}

func arithOp(op bytecode.Opcode) cpu.Op {
	switch op {
	case bytecode.OpAdd:
		return cpu.OpAdd
	case bytecode.OpSub:
		return cpu.OpSub
	case bytecode.OpMul:
		return cpu.OpMul
	case bytecode.OpDiv:
		return cpu.OpDiv
	case bytecode.OpRem:
		return cpu.OpRem
	case bytecode.OpAnd:
		return cpu.OpAnd
	case bytecode.OpOr:
		return cpu.OpOr
	case bytecode.OpXor:
		return cpu.OpXor
	case bytecode.OpShl:
		return cpu.OpShl
	case bytecode.OpShr:
		return cpu.OpShr
	default:
		return cpu.OpSar
	}
}

func branchOp(op bytecode.Opcode) cpu.Op {
	switch op {
	case bytecode.OpIfEQ, bytecode.OpIfRefEQ:
		return cpu.OpBrEQ
	case bytecode.OpIfNE, bytecode.OpIfRefNE:
		return cpu.OpBrNE
	case bytecode.OpIfLT:
		return cpu.OpBrLT
	case bytecode.OpIfLE:
		return cpu.OpBrLE
	case bytecode.OpIfGT:
		return cpu.OpBrGT
	default:
		return cpu.OpBrGE
	}
}
