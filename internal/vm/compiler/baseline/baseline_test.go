package baseline_test

import (
	"testing"

	"hpmvm/internal/hw/cache"
	"hpmvm/internal/hw/cpu"
	"hpmvm/internal/hw/mem"
	"hpmvm/internal/vm/bytecode"
	"hpmvm/internal/vm/classfile"
	"hpmvm/internal/vm/compiler/baseline"
	"hpmvm/internal/vm/mcmap"
)

const (
	kInt  = classfile.KindInt
	kRef  = classfile.KindRef
	kVoid = classfile.KindVoid
)

func compile(t *testing.T, build func(u *classfile.Universe) *bytecode.Code) (*cpu.CPU, *mcmap.MCMap, *bytecode.Code) {
	t.Helper()
	u := classfile.NewUniverse()
	code := build(u)
	u.Layout()
	c := cpu.New(mem.New(), cache.New(cache.DefaultP4()), cpu.DefaultConfig())
	m := baseline.Compile(u, c, code)
	return c, m, code
}

func TestEveryAppInstructionHasBytecodeProvenance(t *testing.T) {
	// The baseline compiler must map every emitted machine instruction
	// (outside prologue and trap blocks) back to its bytecode — that is
	// the map the sample decoder relies on (§4.2).
	_, m, code := compile(t, func(u *classfile.Universe) *bytecode.Code {
		cl := u.DefineClass("C", nil)
		f := u.AddField(cl, "x", kInt)
		mm := u.AddMethod(cl, "m", false, []classfile.Kind{kRef}, kInt)
		b := bytecode.NewBuilder(u, mm)
		b.BindArg(0, "o")
		b.Local("i", kInt)
		b.Label("loop")
		b.Load("i").Const(3).If(bytecode.OpIfGE, "done")
		b.Inc("i", 1)
		b.Goto("loop")
		b.Label("done")
		b.Load("o").GetField(f).ReturnVal()
		return b.MustBuild()
	})
	mapped := 0
	for _, bci := range m.BCIndex {
		if bci != mcmap.NoBCI {
			mapped++
			if int(bci) >= len(code.Instrs) {
				t.Fatalf("BCI %d out of range", bci)
			}
		}
	}
	if mapped < len(code.Instrs) {
		t.Errorf("only %d machine instructions carry provenance for %d bytecodes", mapped, len(code.Instrs))
	}
	// Baseline code has no IR ids.
	for _, id := range m.IRID {
		if id != mcmap.NoBCI {
			t.Fatal("baseline body claims IR provenance")
		}
	}
}

func TestGCPointsAtAllocationsAndCalls(t *testing.T) {
	_, m, _ := compile(t, func(u *classfile.Universe) *bytecode.Code {
		cl := u.DefineClass("C", nil)
		callee := u.AddMethod(cl, "callee", false, nil, kVoid)
		cb := bytecode.NewBuilder(u, callee)
		cb.Return()
		cb.MustBuild()
		mm := u.AddMethod(cl, "m", false, nil, kVoid)
		b := bytecode.NewBuilder(u, mm)
		b.Local("o", kRef)
		b.New(cl).Store("o")
		b.Const(3).NewArray(u.IntArray).Pop()
		b.InvokeStatic(callee)
		b.Return()
		return b.MustBuild()
	})
	if len(m.GCPoints) != 3 {
		t.Fatalf("GC points = %d, want 3 (two allocations + one call)", len(m.GCPoints))
	}
	// The ref local "o" must be in the map of the later GC points.
	last := m.GCPoints[len(m.GCPoints)-1]
	if last.RefSlots&1 == 0 {
		t.Errorf("ref local missing from call-site GC map: %+v", last)
	}
}

func TestStackSlotTypingInGCMaps(t *testing.T) {
	// A reference held on the operand stack across an allocation must
	// appear in the allocation's GC map.
	_, m, code := compile(t, func(u *classfile.Universe) *bytecode.Code {
		cl := u.DefineClass("C", nil)
		fr := u.AddField(cl, "r", kRef)
		mm := u.AddMethod(cl, "m", false, []classfile.Kind{kRef}, kVoid)
		b := bytecode.NewBuilder(u, mm)
		b.BindArg(0, "o")
		b.Load("o")    // ref on stack slot 0 (frame slot numLocals+0)
		b.New(cl)      // GC point with the ref live on the stack
		b.PutField(fr) // o.r = new C
		b.Return()
		return b.MustBuild()
	})
	if len(m.GCPoints) != 1 {
		t.Fatalf("GC points = %d", len(m.GCPoints))
	}
	gp := m.GCPoints[0]
	stackSlot := uint(code.NumLocals) // depth-0 operand slot
	if gp.RefSlots&(1<<stackSlot) == 0 {
		t.Errorf("operand-stack ref missing from GC map: slots %#x", gp.RefSlots)
	}
	if gp.RefSlots&1 == 0 {
		t.Errorf("ref argument local missing from GC map: slots %#x", gp.RefSlots)
	}
	if gp.RefRegs != 0 {
		t.Errorf("baseline GC map claims live ref registers: %#x", gp.RefRegs)
	}
}

func TestCompileRequiresVerifiedCode(t *testing.T) {
	u := classfile.NewUniverse()
	cl := u.DefineClass("C", nil)
	mm := u.AddMethod(cl, "m", false, nil, kVoid)
	code := &bytecode.Code{Method: mm, Instrs: []bytecode.Instr{{Op: bytecode.OpReturn}}}
	u.Layout()
	c := cpu.New(mem.New(), cache.New(cache.DefaultP4()), cpu.DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("unverified code accepted")
		}
	}()
	baseline.Compile(u, c, code)
}
