package opt_test

import (
	"fmt"
	"math/rand"
	"testing"

	"hpmvm/internal/vm/bytecode"
	"hpmvm/internal/vm/classfile"
	"hpmvm/internal/vm/runtime"
	"hpmvm/internal/vm/vmtest"
)

const (
	kInt  = classfile.KindInt
	kRef  = classfile.KindRef
	kChar = classfile.KindChar
	kByte = classfile.KindByte
	kVoid = classfile.KindVoid
)

// program builds a universe with a single Main::main plus whatever
// setup adds, then runs it at every compilation level and checks the
// result log.
func checkLevels(t *testing.T, want []int64, build func(u *classfile.Universe) *classfile.Method) {
	t.Helper()
	for _, level := range []int{0, 1, 2} {
		u := classfile.NewUniverse()
		entry := build(u)
		u.Layout()
		var plan runtime.CompilePlan
		if level > 0 {
			plan = vmtest.AllOpt(u, level)
		}
		got, _, err := vmtest.Run(u, entry, vmtest.Options{Plan: plan})
		if err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
		if len(got) != len(want) {
			t.Fatalf("level %d: results %v, want %v", level, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("level %d: result[%d] = %d, want %d (all: %v)", level, i, got[i], want[i], got)
			}
		}
	}
}

func mainMethod(u *classfile.Universe) (*classfile.Method, *bytecode.Builder) {
	c := u.DefineClass("Main", nil)
	m := u.AddMethod(c, "main", false, nil, kVoid)
	return m, bytecode.NewBuilder(u, m)
}

func TestArithmeticSemantics(t *testing.T) {
	// Java-style truncation and wrapping semantics.
	checkLevels(t, []int64{-3, -2, 42, -16, 15, 4}, func(u *classfile.Universe) *classfile.Method {
		m, b := mainMethod(u)
		b.Const(-17).Const(5).Div().Result()
		b.Const(-17).Const(5).Rem().Result()
		b.Const(6).Const(7).Mul().Result()
		b.Const(-4).Const(2).Shl().Result()
		b.Const(-1).Const(60).Shr().Result()
		b.Const(-13).Const(2).Sar().Neg().Result()
		b.Return()
		b.MustBuild()
		return m
	})
}

func TestLoopsAndLocals(t *testing.T) {
	checkLevels(t, []int64{4950}, func(u *classfile.Universe) *classfile.Method {
		m, b := mainMethod(u)
		b.Local("i", kInt)
		b.Local("sum", kInt)
		b.Label("loop")
		b.Load("i").Const(100).If(bytecode.OpIfGE, "done")
		b.Load("sum").Load("i").Add().Store("sum")
		b.Inc("i", 1)
		b.Goto("loop")
		b.Label("done")
		b.Load("sum").Result()
		b.Return()
		b.MustBuild()
		return m
	})
}

func TestArraysAllKinds(t *testing.T) {
	checkLevels(t, []int64{300, 0xBEE, 200, 5}, func(u *classfile.Universe) *classfile.Method {
		m, b := mainMethod(u)
		b.Local("ia", kRef)
		b.Local("ca", kRef)
		b.Local("ba", kRef)
		b.Local("ra", kRef)
		b.Const(10).NewArray(u.IntArray).Store("ia")
		b.Load("ia").Const(3).Const(300).AStore(kInt)
		b.Load("ia").Const(3).ALoad(kInt).Result()
		b.Const(4).NewArray(u.CharArray).Store("ca")
		b.Load("ca").Const(1).Const(0xBEE).AStore(kChar)
		b.Load("ca").Const(1).ALoad(kChar).Result()
		b.Const(4).NewArray(u.ByteArray).Store("ba")
		b.Load("ba").Const(2).Const(200).AStore(kByte)
		b.Load("ba").Const(2).ALoad(kByte).Result()
		b.Const(5).NewArray(u.RefArray).Store("ra")
		b.Load("ra").Const(0).Load("ia").AStore(kRef)
		b.Load("ra").ArrayLen().Result()
		b.Return()
		b.MustBuild()
		return m
	})
}

func TestFieldsAllKinds(t *testing.T) {
	checkLevels(t, []int64{7, 0xABC, 250}, func(u *classfile.Universe) *classfile.Method {
		c := u.DefineClass("Box", nil)
		fi := u.AddField(c, "i", kInt)
		fc := u.AddField(c, "c", kChar)
		fb := u.AddField(c, "b", kByte)
		m, b := mainMethod(u)
		b.Local("o", kRef)
		b.New(c).Store("o")
		b.Load("o").Const(7).PutField(fi)
		b.Load("o").Const(0xABC).PutField(fc)
		b.Load("o").Const(250).PutField(fb)
		b.Load("o").GetField(fi).Result()
		b.Load("o").GetField(fc).Result()
		b.Load("o").GetField(fb).Result()
		b.Return()
		b.MustBuild()
		return m
	})
}

func TestVirtualDispatchWithOverride(t *testing.T) {
	checkLevels(t, []int64{10, 20}, func(u *classfile.Universe) *classfile.Method {
		a := u.DefineClass("A", nil)
		val := u.AddMethod(a, "val", true, []classfile.Kind{kRef}, kInt)
		ba := bytecode.NewBuilder(u, val)
		ba.Const(10).ReturnVal()
		ba.MustBuild()
		bcl := u.DefineClass("B", a)
		valB := u.AddMethod(bcl, "val", true, []classfile.Kind{kRef}, kInt)
		bb := bytecode.NewBuilder(u, valB)
		bb.Const(20).ReturnVal()
		bb.MustBuild()

		m, b := mainMethod(u)
		b.Local("o", kRef)
		b.New(a).Store("o")
		b.Load("o").InvokeVirtual(val).Result()
		b.New(bcl).Store("o")
		b.Load("o").InvokeVirtual(val).Result() // dispatches to B::val
		b.Return()
		b.MustBuild()
		return m
	})
}

func TestRecursion(t *testing.T) {
	checkLevels(t, []int64{55}, func(u *classfile.Universe) *classfile.Method {
		c := u.DefineClass("Fib", nil)
		fib := u.AddMethod(c, "fib", false, []classfile.Kind{kInt}, kInt)
		fb := bytecode.NewBuilder(u, fib)
		fb.BindArg(0, "n")
		fb.Load("n").Const(2).If(bytecode.OpIfGE, "rec")
		fb.Load("n").ReturnVal()
		fb.Label("rec")
		fb.Load("n").Const(1).Sub().InvokeStatic(fib)
		fb.Load("n").Const(2).Sub().InvokeStatic(fib)
		fb.Add().ReturnVal()
		fb.MustBuild()

		m, b := mainMethod(u)
		b.Const(10).InvokeStatic(fib).Result()
		b.Return()
		b.MustBuild()
		return m
	})
}

func TestEightArguments(t *testing.T) {
	checkLevels(t, []int64{36}, func(u *classfile.Universe) *classfile.Method {
		c := u.DefineClass("Args", nil)
		args := make([]classfile.Kind, 8)
		for i := range args {
			args[i] = kInt
		}
		sum8 := u.AddMethod(c, "sum8", false, args, kInt)
		sb := bytecode.NewBuilder(u, sum8)
		sb.Load("arg0")
		for i := 1; i < 8; i++ {
			sb.Load(fmt.Sprintf("arg%d", i)).Add()
		}
		sb.ReturnVal()
		sb.MustBuild()

		m, b := mainMethod(u)
		for i := int64(1); i <= 8; i++ {
			b.Const(i)
		}
		b.InvokeStatic(sum8).Result()
		b.Return()
		b.MustBuild()
		return m
	})
}

func TestRegisterPressure(t *testing.T) {
	// A deep expression keeps ~24 values live at once, forcing the opt
	// compiler to spill.
	n := 24
	want := int64(0)
	for i := 1; i <= n; i++ {
		want += int64(i * i)
	}
	checkLevels(t, []int64{want}, func(u *classfile.Universe) *classfile.Method {
		m, b := mainMethod(u)
		for i := 1; i <= n; i++ {
			b.Const(int64(i)).Const(int64(i)).Mul()
		}
		for i := 1; i < n; i++ {
			b.Add()
		}
		b.Result()
		b.Return()
		b.MustBuild()
		return m
	})
}

func TestLiveRefsAcrossAllocation(t *testing.T) {
	// References live in registers across an allocation must survive a
	// GC triggered at that allocation (exercised harder in gc tests,
	// but the compiled-code path is checked here).
	checkLevels(t, []int64{11, 22}, func(u *classfile.Universe) *classfile.Method {
		c := u.DefineClass("P", nil)
		fv := u.AddField(c, "v", kInt)
		m, b := mainMethod(u)
		b.Local("a", kRef)
		b.Local("i", kInt)
		b.New(c).Store("a")
		b.Load("a").Const(11).PutField(fv)
		// Allocate enough garbage to force nursery collections while
		// "a" stays live.
		b.Label("churn")
		b.Load("i").Const(100000).If(bytecode.OpIfGE, "done")
		b.New(c).Const(22).PutField(fv)
		b.Inc("i", 1)
		b.Goto("churn")
		b.Label("done")
		b.Load("a").GetField(fv).Result()
		b.New(c).Store("a")
		b.Load("a").Const(22).PutField(fv)
		b.Load("a").GetField(fv).Result()
		b.Return()
		b.MustBuild()
		return m
	})
}

func TestNullPointerTrap(t *testing.T) {
	for _, level := range []int{0, 2} {
		u := classfile.NewUniverse()
		c := u.DefineClass("N", nil)
		f := u.AddField(c, "v", kInt)
		m, b := mainMethod(u)
		b.Local("o", kRef)
		b.Load("o").GetField(f).Result()
		b.Return()
		b.MustBuild()
		u.Layout()
		var plan runtime.CompilePlan
		if level > 0 {
			plan = vmtest.AllOpt(u, level)
		}
		_, vm, err := vmtest.Run(u, m, vmtest.Options{Plan: plan})
		if err == nil || vm.Failure() == nil {
			t.Fatalf("level %d: null dereference not detected", level)
		}
	}
}

func TestBoundsTrap(t *testing.T) {
	for _, level := range []int{0, 2} {
		u := classfile.NewUniverse()
		m, b := mainMethod(u)
		b.Local("a", kRef)
		b.Const(4).NewArray(u.IntArray).Store("a")
		b.Load("a").Const(4).ALoad(kInt).Result() // index == length
		b.Return()
		b.MustBuild()
		u.Layout()
		var plan runtime.CompilePlan
		if level > 0 {
			plan = vmtest.AllOpt(u, level)
		}
		_, vm, err := vmtest.Run(u, m, vmtest.Options{Plan: plan})
		if err == nil || vm.Failure() == nil {
			t.Fatalf("level %d: out-of-bounds not detected", level)
		}
	}
}

func TestNegativeIndexTrap(t *testing.T) {
	u := classfile.NewUniverse()
	m, b := mainMethod(u)
	b.Local("a", kRef)
	b.Const(4).NewArray(u.IntArray).Store("a")
	b.Load("a").Const(-1).ALoad(kInt).Result()
	b.Return()
	b.MustBuild()
	u.Layout()
	_, vm, err := vmtest.Run(u, m, vmtest.Options{Plan: vmtest.AllOpt(u, 2)})
	if err == nil || vm.Failure() == nil {
		t.Fatal("negative index not detected")
	}
}

// --- randomized differential test -------------------------------------------

// exprNode is a random arithmetic expression over three arguments.
type exprNode struct {
	op          int // 0..7 ops, 8 = arg, 9 = const
	left, right *exprNode
	val         int64
}

func genExpr(r *rand.Rand, depth int) *exprNode {
	if depth == 0 || r.Intn(4) == 0 {
		if r.Intn(2) == 0 {
			return &exprNode{op: 8, val: int64(r.Intn(3))} // arg index
		}
		return &exprNode{op: 9, val: int64(r.Intn(201) - 100)}
	}
	return &exprNode{
		op:    r.Intn(8),
		left:  genExpr(r, depth-1),
		right: genExpr(r, depth-1),
	}
}

func (e *exprNode) eval(args []int64) int64 {
	switch e.op {
	case 8:
		return args[e.val]
	case 9:
		return e.val
	}
	l, rr := e.left.eval(args), e.right.eval(args)
	switch e.op {
	case 0:
		return l + rr
	case 1:
		return l - rr
	case 2:
		return l * rr
	case 3:
		return l & rr
	case 4:
		return l | rr
	case 5:
		return l ^ rr
	case 6:
		return l << (uint64(rr) & 63)
	default:
		return l >> (uint64(rr) & 63)
	}
}

func (e *exprNode) emit(b *bytecode.Builder) {
	switch e.op {
	case 8:
		b.Load(fmt.Sprintf("arg%d", e.val))
		return
	case 9:
		b.Const(e.val)
		return
	}
	e.left.emit(b)
	e.right.emit(b)
	switch e.op {
	case 0:
		b.Add()
	case 1:
		b.Sub()
	case 2:
		b.Mul()
	case 3:
		b.And()
	case 4:
		b.Or()
	case 5:
		b.Xor()
	case 6:
		b.Shl()
	default:
		b.Sar()
	}
}

// TestRandomExpressionsDifferential compiles random expression trees
// with both compilers and compares against direct Go evaluation.
func TestRandomExpressionsDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(20070611))
	trials := 60
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		expr := genExpr(r, 5)
		args := []int64{int64(r.Intn(1000) - 500), int64(r.Intn(1000) - 500), int64(r.Intn(1000) - 500)}
		want := expr.eval(args)

		u := classfile.NewUniverse()
		c := u.DefineClass("Expr", nil)
		fn := u.AddMethod(c, "fn", false, []classfile.Kind{kInt, kInt, kInt}, kInt)
		fb := bytecode.NewBuilder(u, fn)
		expr.emit(fb)
		fb.ReturnVal()
		fb.MustBuild()

		mainM := u.AddMethod(c, "main", false, nil, kVoid)
		b := bytecode.NewBuilder(u, mainM)
		b.Const(args[0]).Const(args[1]).Const(args[2]).InvokeStatic(fn).Result()
		b.Return()
		b.MustBuild()
		u.Layout()

		for _, level := range []int{0, 1, 2} {
			var plan runtime.CompilePlan
			if level > 0 {
				plan = vmtest.AllOpt(u, level)
			}
			// Fresh universes per level would rebuild everything;
			// reusing one universe across VMs is fine because each VM
			// compiles into its own code space.
			got, _, err := vmtest.Run(u, mainM, vmtest.Options{Plan: plan})
			if err != nil {
				t.Fatalf("trial %d level %d: %v", trial, level, err)
			}
			if got[0] != want {
				t.Fatalf("trial %d level %d: got %d, want %d", trial, level, got[0], want)
			}
		}
	}
}
