package opt_test

import (
	"testing"

	"hpmvm/internal/gc/genms"
	"hpmvm/internal/hw/cache"
	"hpmvm/internal/vm/bytecode"
	"hpmvm/internal/vm/classfile"
	"hpmvm/internal/vm/compiler/opt"
	"hpmvm/internal/vm/runtime"
	"hpmvm/internal/vm/vmtest"
)

// TestInlineFreshLocalsPerIteration is the regression test for the
// stale-locals inlining bug: a callee that relies on zero-initialized
// locals must see fresh zeros every time the (inlined) call site
// re-executes inside a loop.
func TestInlineFreshLocalsPerIteration(t *testing.T) {
	u := classfile.NewUniverse()
	c := u.DefineClass("C", nil)
	// countTo(n): i starts at zero (implicitly), counts to n.
	countTo := u.AddMethod(c, "countTo", false, []classfile.Kind{kInt}, kInt)
	cb := bytecode.NewBuilder(u, countTo)
	cb.BindArg(0, "n")
	cb.Local("i", kInt)
	cb.Label("loop")
	cb.Load("i").Load("n").If(bytecode.OpIfGE, "done")
	cb.Inc("i", 1)
	cb.Goto("loop")
	cb.Label("done")
	cb.Load("i").ReturnVal()
	cb.MustBuild()

	main := u.AddMethod(c, "main", false, nil, kVoid)
	b := bytecode.NewBuilder(u, main)
	b.Local("k", kInt)
	b.Local("sum", kInt)
	b.Label("loop")
	b.Load("k").Const(5).If(bytecode.OpIfGE, "done")
	b.Load("sum").Const(3).InvokeStatic(countTo).Add().Store("sum")
	b.Inc("k", 1)
	b.Goto("loop")
	b.Label("done")
	b.Load("sum").Result()
	b.Return()
	b.MustBuild()
	u.Layout()

	got, _, err := vmtest.Run(u, main, vmtest.Options{Plan: vmtest.AllOpt(u, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 15 { // 5 iterations x countTo(3)=3
		t.Fatalf("sum = %d, want 15 (stale inlined locals?)", got[0])
	}
}

func TestInlinePreservesNullCheckOnDevirtualizedReceiver(t *testing.T) {
	u := classfile.NewUniverse()
	c := u.DefineClass("C", nil)
	val := u.AddMethod(c, "val", true, []classfile.Kind{kRef}, kInt)
	vb := bytecode.NewBuilder(u, val)
	vb.BindArg(0, "this")
	vb.Const(7).ReturnVal()
	vb.MustBuild()

	main := u.AddMethod(c, "main", false, nil, kVoid)
	b := bytecode.NewBuilder(u, main)
	b.Local("o", kRef)
	b.Load("o").InvokeVirtual(val).Result() // o is null
	b.Return()
	b.MustBuild()
	u.Layout()

	_, vm, err := vmtest.Run(u, main, vmtest.Options{Plan: vmtest.AllOpt(u, 2)})
	if err == nil || vm.Failure() == nil {
		t.Fatal("devirtualized+inlined call on null receiver did not trap")
	}
}

func TestInlineSkipsPolymorphicCalls(t *testing.T) {
	u := classfile.NewUniverse()
	a := u.DefineClass("A", nil)
	val := u.AddMethod(a, "val", true, []classfile.Kind{kRef}, kInt)
	vb := bytecode.NewBuilder(u, val)
	vb.Const(1).ReturnVal()
	vb.MustBuild()
	bcl := u.DefineClass("B", a)
	valB := u.AddMethod(bcl, "val", true, []classfile.Kind{kRef}, kInt)
	vb2 := bytecode.NewBuilder(u, valB)
	vb2.Const(2).ReturnVal()
	vb2.MustBuild()

	mainCl := u.DefineClass("Main", nil)
	main := u.AddMethod(mainCl, "main", false, nil, kVoid)
	b := bytecode.NewBuilder(u, main)
	b.Local("o", kRef)
	b.New(bcl).Store("o")
	b.Load("o").InvokeVirtual(val).Result()
	b.Return()
	b.MustBuild()
	u.Layout()

	// The slot is polymorphic; inlining must keep the dispatch so the
	// override is honored.
	code := main.Code.(*bytecode.Code)
	inlined, err := opt.InlineCalls(u, code, opt.DefaultInlineConfig())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, in := range inlined.Instrs {
		if in.Op == bytecode.OpInvokeVirtual {
			found = true
		}
	}
	if !found {
		t.Fatal("polymorphic virtual call was devirtualized")
	}
	got, _, err := vmtest.Run(u, main, vmtest.Options{Plan: vmtest.AllOpt(u, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 {
		t.Fatalf("dispatch = %d, want 2", got[0])
	}
}

func TestInlineSkipsRecursion(t *testing.T) {
	u := classfile.NewUniverse()
	c := u.DefineClass("C", nil)
	fib := u.AddMethod(c, "fib", false, []classfile.Kind{kInt}, kInt)
	fb := bytecode.NewBuilder(u, fib)
	fb.BindArg(0, "n")
	fb.Load("n").Const(2).If(bytecode.OpIfGE, "rec")
	fb.Load("n").ReturnVal()
	fb.Label("rec")
	fb.Load("n").Const(1).Sub().InvokeStatic(fib)
	fb.Load("n").Const(2).Sub().InvokeStatic(fib)
	fb.Add().ReturnVal()
	fb.MustBuild()
	u.Layout()

	code := fib.Code.(*bytecode.Code)
	inlined, err := opt.InlineCalls(u, code, opt.DefaultInlineConfig())
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	for _, in := range inlined.Instrs {
		if in.Op == bytecode.OpInvokeStatic {
			calls++
		}
	}
	if calls != 2 {
		t.Fatalf("self-recursive calls changed: %d", calls)
	}
}

func TestInlineGrowthBudget(t *testing.T) {
	u := classfile.NewUniverse()
	c := u.DefineClass("C", nil)
	// A 40-bytecode helper.
	helper := u.AddMethod(c, "helper", false, []classfile.Kind{kInt}, kInt)
	hb := bytecode.NewBuilder(u, helper)
	hb.BindArg(0, "x")
	hb.Load("x")
	for i := 0; i < 18; i++ {
		hb.Const(1).Add()
	}
	hb.ReturnVal()
	hb.MustBuild()

	main := u.AddMethod(c, "main", false, nil, kVoid)
	b := bytecode.NewBuilder(u, main)
	b.Local("s", kInt)
	for i := 0; i < 30; i++ {
		b.Load("s").Const(int64(i)).InvokeStatic(helper).Add().Store("s")
	}
	b.Load("s").Result()
	b.Return()
	b.MustBuild()
	u.Layout()

	code := main.Code.(*bytecode.Code)
	cfg := opt.DefaultInlineConfig()
	inlined, err := opt.InlineCalls(u, code, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if grow := len(inlined.Instrs) - len(code.Instrs); grow > 2*cfg.MaxGrowth {
		t.Fatalf("growth %d exceeds budget (passes x %d)", grow, cfg.MaxGrowth)
	}
	// Not every call site fits the budget; some must remain.
	remaining := 0
	for _, in := range inlined.Instrs {
		if in.Op == bytecode.OpInvokeStatic {
			remaining++
		}
	}
	if remaining == 0 {
		t.Error("growth budget did not limit inlining")
	}
	// Semantics preserved either way.
	got, _, err := vmtest.Run(u, main, vmtest.Options{Plan: vmtest.AllOpt(u, 2)})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(30*18) + 29*30/2
	if got[0] != want {
		t.Fatalf("sum = %d, want %d", got[0], want)
	}
}

func TestInlineRefConstRemap(t *testing.T) {
	u := classfile.NewUniverse()
	str := u.DefineClass("Str", nil)
	fv := u.AddField(str, "v", kInt)
	c := u.DefineClass("C", nil)

	// Callee reads a ref constant's field.
	callee := u.AddMethod(c, "readConst", false, nil, kInt)
	cb := bytecode.NewBuilder(u, callee)
	h := cb.RefConst()
	cb.LoadConstRef(h).GetField(fv).ReturnVal()
	cb.MustBuild()

	main := u.AddMethod(c, "main", false, nil, kVoid)
	b := bytecode.NewBuilder(u, main)
	h2 := b.RefConst()
	b.LoadConstRef(h2).GetField(fv).Result()
	b.InvokeStatic(callee).Result()
	b.Return()
	b.MustBuild()
	u.Layout()

	// Materialize: main's const holds 11, callee's holds 22.
	materialize := func(vm *runtime.VM) {
		mainCode := main.Code.(*bytecode.Code)
		calleeCode := callee.Code.(*bytecode.Code)
		o1 := vm.NewImmortalObject(str)
		vm.RawSetField(o1, fv, 11)
		o2 := vm.NewImmortalObject(str)
		vm.RawSetField(o2, fv, 22)
		mainCode.RefConstAddrs[0] = o1
		calleeCode.RefConstAddrs[0] = o2
	}

	// Run through core-free plumbing: vmtest has no materialize hook,
	// so drive the runtime directly.
	for _, level := range []int{0, 2} {
		vm := newBareVM(t, u)
		materialize(vm)
		var plan runtime.CompilePlan
		if level > 0 {
			plan = vmtest.AllOpt(u, level)
		}
		vm.BuildDispatch()
		if err := vm.CompileAll(plan); err != nil {
			t.Fatal(err)
		}
		if err := vm.Start(main); err != nil {
			t.Fatal(err)
		}
		if err := vm.Run(10_000_000); err != nil {
			t.Fatal(err)
		}
		got := vm.Results()
		if len(got) != 2 || got[0] != 11 || got[1] != 22 {
			t.Fatalf("level %d: results = %v, want [11 22]", level, got)
		}
	}
}

// newBareVM builds a VM with a GenMS collector for tests that need
// manual boot control.
func newBareVM(t *testing.T, u *classfile.Universe) *runtime.VM {
	t.Helper()
	vm := runtime.New(u, cache.DefaultP4())
	genms.New(vm, genms.DefaultConfig(16<<20))
	return vm
}
