// Package opt implements the optimizing JIT compiler, the analogue of
// the Jikes RVM optimizing compiler (§3.2). It builds the high-level
// IR (package ir), runs the optimization pipeline, and generates
// register-allocated machine code with:
//
//   - a machine-code → bytecode index map for *every* instruction (the
//     paper's compiler extension, §4.2, originally only GC points had
//     maps in opt-compiled code);
//   - a machine-code → IR instruction map, so sampled events can be
//     charged to individual IR instructions;
//   - GC maps (live reference registers and frame slots) at every
//     allocation site and call site;
//   - the (S, f) access-path pairs of §5.2 that tell the monitor which
//     reference field to charge when a sampled miss lands on a heap
//     access instruction.
package opt

import (
	"fmt"

	"hpmvm/internal/hw/cpu"
	"hpmvm/internal/vm/bytecode"
	"hpmvm/internal/vm/classfile"
	"hpmvm/internal/vm/compiler/emit"
	"hpmvm/internal/vm/ir"
	"hpmvm/internal/vm/mcmap"
)

// Allocatable register pool and scratch registers. r12/r13 are reserved
// for address arithmetic and bounds checks, r14 is an extra scratch,
// r15 is the hardwired zero.
const (
	numPoolRegs = 12
	scratchA    = 12
	scratchB    = 13
	zr          = cpu.RegZero
)

// Result is the output of one optimizing compilation.
type Result struct {
	Map *mcmap.MCMap
	// Func is the optimized IR, kept alive after compilation so the
	// monitor can attribute sampled events to IR instructions (§4.2
	// "this step is required to keep the IR data structures in memory
	// after compilation").
	Func *ir.Func
	// Pairs are the §5.2 (S, f) access-path pairs.
	Pairs []ir.AccessPair
}

// Compile optimizes and compiles a verified method body at the given
// optimization level and installs the code. The caller registers the
// resulting map.
func Compile(u *classfile.Universe, c *cpu.CPU, code *bytecode.Code, level int) (*Result, error) {
	if level >= 2 {
		if inlined, err := InlineCalls(u, code, DefaultInlineConfig()); err == nil {
			if res, err := compileBody(u, c, inlined, level); err == nil {
				return res, nil
			}
			// Inlining can exceed the 64-slot GC-map frame budget for
			// methods that were already local-heavy; fall back to the
			// uninlined body rather than failing the compilation.
		}
	}
	return compileBody(u, c, code, level)
}

// compileBody compiles one (possibly inlined) bytecode body. Frame
// budget violations surface as errors.
func compileBody(u *classfile.Universe, c *cpu.CPU, code *bytecode.Code, level int) (res *Result, err error) {
	f, err := ir.Build(u, code)
	if err != nil {
		return nil, err
	}
	ir.Optimize(f, level)
	// Level 2 uses the cross-block provenance extension; Jikes' HIR
	// use-def edges likewise span blocks (§5.2).
	var pairs []ir.AccessPair
	if level >= 2 {
		pairs = ir.ExtendedAccessPairs(f)
	} else {
		pairs = ir.AccessPairs(f)
	}

	g := &gen{
		a:         emit.New(c),
		f:         f,
		numLocals: f.NumLocals,
		regVal:    [cpu.NumRegs]int{},
	}
	for i := range g.regVal {
		g.regVal[i] = -1
	}
	g.valReg = make(map[int]uint8)
	g.valSlot = make(map[int]int)
	g.maxSlots = g.numLocals

	if f.NumLocals > 56 {
		return nil, fmt.Errorf("opt: %s: %d locals exceed the 64-slot GC map budget", f.Method.QualifiedName(), f.NumLocals)
	}
	defer func() {
		if r := recover(); r != nil {
			// Spill pressure blew the frame budget mid-codegen; no code
			// was installed (installation happens at Finish).
			err = fmt.Errorf("opt: %s: %v", f.Method.QualifiedName(), r)
		}
	}()
	m := g.compile()
	return &Result{Map: m, Func: f, Pairs: pairs}, nil
}

// gen is the per-method code generator state.
type gen struct {
	a *emit.Assembler
	f *ir.Func

	numLocals int
	maxSlots  int
	freeSlots []int

	// Per-block register allocation state.
	valReg  map[int]uint8
	valSlot map[int]int
	regVal  [cpu.NumRegs]int
	lastUse map[int]int
	nonNull map[int]bool

	// Current instruction position within the block (for liveness).
	pos int
	bci int32
	iid int32

	blockLabels []int
	npe, oob    int
	npeUsed     bool
	oobUsed     bool
	enterIdx    int
}

func (g *gen) emit(in cpu.Instr) { g.a.Emit(in, g.bci, g.iid) }

func (g *gen) compile() *mcmap.MCMap {
	f := g.f
	method := f.Method

	g.blockLabels = make([]int, len(f.Blocks))
	for i := range f.Blocks {
		g.blockLabels[i] = g.a.NewLabel()
	}
	g.npe = g.a.NewLabel()
	g.oob = g.a.NewLabel()

	// Prologue.
	g.bci, g.iid = mcmap.NoBCI, mcmap.NoBCI
	g.enterIdx = g.a.Emit(cpu.Instr{Op: cpu.OpEnter, Imm: 0}, mcmap.NoBCI, mcmap.NoBCI)
	nargs := len(method.Args)
	for i := 0; i < nargs; i++ {
		g.emit(cpu.Instr{Op: cpu.OpSt8, Rs1: cpu.BaseFP, Imm: emit.SlotOffset(i), Rs2: uint8(i)})
	}
	// All non-argument locals start as zero/null (VM semantics; also
	// keeps conservative GC maps sound for reference locals).
	for i := nargs; i < g.numLocals; i++ {
		g.emit(cpu.Instr{Op: cpu.OpSt8, Rs1: cpu.BaseFP, Imm: emit.SlotOffset(i), Rs2: zr})
	}

	for bi, blk := range f.Blocks {
		g.a.Bind(g.blockLabels[bi])
		g.startBlock(blk)
		for idx, in := range blk.Instrs {
			if in.Dead {
				continue
			}
			g.pos = idx
			g.bci = int32(in.BCI)
			g.iid = int32(in.Seq)
			g.instr(blk, bi, in, idx)
			g.freeDead(in, idx)
		}
	}

	if g.npeUsed {
		g.a.Bind(g.npe)
		g.a.Emit(cpu.Instr{Op: cpu.OpTrap, Imm: cpu.TrapNullPtr}, mcmap.NoBCI, mcmap.NoBCI)
	}
	if g.oobUsed {
		g.a.Bind(g.oob)
		g.a.Emit(cpu.Instr{Op: cpu.OpTrap, Imm: cpu.TrapBounds}, mcmap.NoBCI, mcmap.NoBCI)
	}

	g.a.Patch(g.enterIdx, int64(g.maxSlots*8))
	return g.a.Finish(method, true, g.maxSlots)
}

// startBlock resets the allocation state; values never live across
// block boundaries (cross-block flow goes through locals).
func (g *gen) startBlock(blk *ir.Block) {
	g.valReg = make(map[int]uint8)
	for i := range g.regVal {
		g.regVal[i] = -1
	}
	// Free all spill slots from the previous block.
	g.freeSlots = g.freeSlots[:0]
	for s := g.numLocals; s < g.maxSlots; s++ {
		g.freeSlots = append(g.freeSlots, s)
	}
	g.valSlot = make(map[int]int)
	g.nonNull = make(map[int]bool)

	g.lastUse = make(map[int]int)
	for idx, in := range blk.Instrs {
		if in.Dead {
			continue
		}
		for _, a := range in.Args {
			g.lastUse[a] = idx
		}
	}
}

func (g *gen) liveAfter(v, idx int) bool {
	lu, ok := g.lastUse[v]
	return ok && lu > idx
}

func (g *gen) allocSlot() int {
	if n := len(g.freeSlots); n > 0 {
		s := g.freeSlots[n-1]
		g.freeSlots = g.freeSlots[:n-1]
		return s
	}
	s := g.maxSlots
	g.maxSlots++
	if s >= 64 {
		panic(fmt.Sprintf("opt: %s: frame exceeds 64 slots (GC map width)", g.f.Method.QualifiedName()))
	}
	return s
}

func (g *gen) releaseSlot(v int) {
	if s, ok := g.valSlot[v]; ok {
		delete(g.valSlot, v)
		g.freeSlots = append(g.freeSlots, s)
	}
}

// freeDead releases registers and slots of values whose last use is the
// current instruction.
func (g *gen) freeDead(in *ir.Instr, idx int) {
	for _, a := range in.Args {
		if lu, ok := g.lastUse[a]; ok && lu == idx {
			if r, ok := g.valReg[a]; ok {
				delete(g.valReg, a)
				g.regVal[r] = -1
			}
			g.releaseSlot(a)
			delete(g.nonNull, a)
		}
	}
	// A def that is never used dies immediately.
	if in.HasDef() {
		if _, used := g.lastUse[in.ID]; !used {
			if r, ok := g.valReg[in.ID]; ok {
				delete(g.valReg, in.ID)
				g.regVal[r] = -1
			}
		}
	}
}

// isRemat reports whether the value can be rematerialized from its
// defining instruction instead of being spilled.
func (g *gen) isRemat(v int) (int64, bool) {
	def := g.f.Value(v)
	if def.Op == ir.OpConst || def.Op == ir.OpConstRef {
		return def.Const, true
	}
	return 0, false
}

// spillValue evicts v from its register, saving it to a spill slot
// unless it can be rematerialized.
func (g *gen) spillValue(v int) {
	r, ok := g.valReg[v]
	if !ok {
		return
	}
	if _, remat := g.isRemat(v); !remat {
		if _, has := g.valSlot[v]; !has {
			s := g.allocSlot()
			g.valSlot[v] = s
			g.emit(cpu.Instr{Op: cpu.OpSt8, Rs1: cpu.BaseFP, Imm: emit.SlotOffset(s), Rs2: r})
		}
	}
	delete(g.valReg, v)
	g.regVal[r] = -1
}

// allocReg returns a free pool register, evicting the occupant with the
// farthest last use if none is free. Registers in pinned are not
// considered for eviction.
func (g *gen) allocReg(pinned map[uint8]bool) uint8 {
	for r := uint8(0); r < numPoolRegs; r++ {
		if g.regVal[r] == -1 && !pinned[r] {
			return r
		}
	}
	victim := uint8(255)
	far := -1
	for r := uint8(0); r < numPoolRegs; r++ {
		if pinned[r] {
			continue
		}
		v := g.regVal[r]
		lu := g.lastUse[v]
		if lu > far {
			far = lu
			victim = r
		}
	}
	if victim == 255 {
		panic(fmt.Sprintf("opt: %s: register pressure with all registers pinned", g.f.Method.QualifiedName()))
	}
	g.spillValue(g.regVal[victim])
	return victim
}

// ensureReg makes sure value v is in a register and returns it.
func (g *gen) ensureReg(v int, pinned map[uint8]bool) uint8 {
	if r, ok := g.valReg[v]; ok {
		return r
	}
	r := g.allocReg(pinned)
	if cst, remat := g.isRemat(v); remat {
		g.emit(cpu.Instr{Op: cpu.OpMovImm, Rd: r, Imm: cst})
	} else if s, ok := g.valSlot[v]; ok {
		g.emit(cpu.Instr{Op: cpu.OpLd8, Rd: r, Rs1: cpu.BaseFP, Imm: emit.SlotOffset(s)})
	} else {
		panic(fmt.Sprintf("opt: %s: value v%d has no location", g.f.Method.QualifiedName(), v))
	}
	g.bind(v, r)
	return r
}

func (g *gen) bind(v int, r uint8) {
	if old := g.regVal[r]; old != -1 {
		delete(g.valReg, old)
	}
	g.valReg[v] = r
	g.regVal[r] = v
}

// defReg allocates a destination register for a freshly defined value.
func (g *gen) defReg(v int, pinned map[uint8]bool) uint8 {
	r := g.allocReg(pinned)
	g.bind(v, r)
	return r
}

func pin(regs ...uint8) map[uint8]bool {
	m := make(map[uint8]bool, len(regs))
	for _, r := range regs {
		m[r] = true
	}
	return m
}

// evacuate moves a live occupant out of register r (to a spill slot)
// so r can be used for a fixed-register operation.
func (g *gen) evacuate(r uint8, idx int) {
	v := g.regVal[r]
	if v == -1 {
		return
	}
	if !g.liveAfter(v, idx) && g.lastUse[v] != idx {
		// Dead value; just drop it.
		delete(g.valReg, v)
		g.regVal[r] = -1
		return
	}
	g.spillValue(v)
}

// refLocalMask returns the GC-map mask over reference local homes.
func (g *gen) refLocalMask() uint64 {
	var m uint64
	for i, k := range g.f.LocalKinds {
		if k == classfile.KindRef {
			m |= 1 << uint(i)
		}
	}
	return m
}

// gcMaskAt computes the GC map at the current instruction: reference
// locals plus spilled live reference values (slots), plus live
// reference values in registers outside excludeRegs.
func (g *gen) gcMaskAt(idx int, excludeRegs map[uint8]bool) (refRegs uint16, refSlots uint64) {
	refSlots = g.refLocalMask()
	for v, s := range g.valSlot {
		if g.liveAfter(v, idx) && g.f.Value(v).Kind == classfile.KindRef {
			refSlots |= 1 << uint(s)
		}
	}
	for r := uint8(0); r < numPoolRegs; r++ {
		v := g.regVal[r]
		if v == -1 || excludeRegs[r] {
			continue
		}
		if g.liveAfter(v, idx) && g.f.Value(v).Kind == classfile.KindRef {
			refRegs |= 1 << uint(r)
		}
	}
	return refRegs, refSlots
}

// spillForCall spills every value needed at or after the call, then
// clears all register bindings (calls clobber the whole file).
func (g *gen) spillForCall(in *ir.Instr, idx int) {
	needed := make(map[int]bool)
	for _, a := range in.Args {
		needed[a] = true
	}
	for r := uint8(0); r < numPoolRegs; r++ {
		v := g.regVal[r]
		if v == -1 {
			continue
		}
		if needed[v] || g.liveAfter(v, idx) {
			g.spillValue(v)
		} else {
			delete(g.valReg, v)
			g.regVal[r] = -1
		}
	}
}

// loadArg materializes value v into the fixed argument register r
// after spillForCall has run.
func (g *gen) loadArg(v int, r uint8) {
	if cst, remat := g.isRemat(v); remat {
		g.emit(cpu.Instr{Op: cpu.OpMovImm, Rd: r, Imm: cst})
		return
	}
	s, ok := g.valSlot[v]
	if !ok {
		panic(fmt.Sprintf("opt: %s: call argument v%d not spilled", g.f.Method.QualifiedName(), v))
	}
	g.emit(cpu.Instr{Op: cpu.OpLd8, Rd: r, Rs1: cpu.BaseFP, Imm: emit.SlotOffset(s)})
}

func (g *gen) nullCheck(v int, r uint8) {
	if g.nonNull[v] {
		return
	}
	g.npeUsed = true
	g.a.EmitJump(cpu.Instr{Op: cpu.OpBrEQ, Rs1: r, Rs2: zr}, g.npe, g.bci, g.iid)
	g.nonNull[v] = true
}

// elemAddr computes the address of arr[idx] into scratchB, including
// the null and bounds checks.
func (g *gen) elemAddr(arrV, idxV int, k classfile.Kind) (addrReg uint8) {
	arr := g.ensureReg(arrV, nil)
	idxR := g.ensureReg(idxV, pin(arr))
	g.nullCheck(arrV, arr)
	g.oobUsed = true
	g.emit(cpu.Instr{Op: cpu.OpLd4, Rd: scratchA, Rs1: arr, Imm: classfile.OffArrayLen})
	g.a.EmitJump(cpu.Instr{Op: cpu.OpBrUGE, Rs1: idxR, Rs2: scratchA}, g.oob, g.bci, g.iid)
	switch k.Size() {
	case 8:
		g.emit(cpu.Instr{Op: cpu.OpShlImm, Rd: scratchB, Rs1: idxR, Imm: 3})
		g.emit(cpu.Instr{Op: cpu.OpAdd, Rd: scratchB, Rs1: arr, Rs2: scratchB})
	case 2:
		g.emit(cpu.Instr{Op: cpu.OpShlImm, Rd: scratchB, Rs1: idxR, Imm: 1})
		g.emit(cpu.Instr{Op: cpu.OpAdd, Rd: scratchB, Rs1: arr, Rs2: scratchB})
	default:
		g.emit(cpu.Instr{Op: cpu.OpAdd, Rd: scratchB, Rs1: arr, Rs2: idxR})
	}
	return scratchB
}

func loadOpFor(k classfile.Kind) cpu.Op {
	switch k {
	case classfile.KindChar:
		return cpu.OpLd2
	case classfile.KindByte:
		return cpu.OpLd1
	default:
		return cpu.OpLd8
	}
}

func storeOpFor(k classfile.Kind) cpu.Op {
	switch k {
	case classfile.KindRef:
		return cpu.OpStRef // reference stores carry the write barrier
	case classfile.KindChar:
		return cpu.OpSt2
	case classfile.KindByte:
		return cpu.OpSt1
	default:
		return cpu.OpSt8
	}
}

var arithToCPU = map[ir.ArithOp]cpu.Op{
	ir.Add: cpu.OpAdd, ir.Sub: cpu.OpSub, ir.Mul: cpu.OpMul,
	ir.Div: cpu.OpDiv, ir.Rem: cpu.OpRem, ir.And: cpu.OpAnd,
	ir.Or: cpu.OpOr, ir.Xor: cpu.OpXor, ir.Shl: cpu.OpShl,
	ir.Shr: cpu.OpShr, ir.Sar: cpu.OpSar,
}

var condToCPU = map[ir.Cond]cpu.Op{
	ir.EQ: cpu.OpBrEQ, ir.NE: cpu.OpBrNE, ir.LT: cpu.OpBrLT,
	ir.LE: cpu.OpBrLE, ir.GT: cpu.OpBrGT, ir.GE: cpu.OpBrGE,
}

// instr generates code for one IR instruction.
func (g *gen) instr(blk *ir.Block, bi int, in *ir.Instr, idx int) {
	switch in.Op {
	case ir.OpConst, ir.OpConstRef:
		// Lazy: materialized at first use (rematerialization).

	case ir.OpLoadLocal:
		r := g.defReg(in.ID, nil)
		g.emit(cpu.Instr{Op: cpu.OpLd8, Rd: r, Rs1: cpu.BaseFP, Imm: emit.SlotOffset(in.Local)})

	case ir.OpStoreLocal:
		r := g.ensureReg(in.Args[0], nil)
		g.emit(cpu.Instr{Op: cpu.OpSt8, Rs1: cpu.BaseFP, Imm: emit.SlotOffset(in.Local), Rs2: r})

	case ir.OpArith:
		a := g.ensureReg(in.Args[0], nil)
		b := g.ensureReg(in.Args[1], pin(a))
		r := g.defReg(in.ID, pin(a, b))
		g.emit(cpu.Instr{Op: arithToCPU[ir.ArithOp(in.Const)], Rd: r, Rs1: a, Rs2: b})

	case ir.OpNeg:
		a := g.ensureReg(in.Args[0], nil)
		r := g.defReg(in.ID, pin(a))
		g.emit(cpu.Instr{Op: cpu.OpSub, Rd: r, Rs1: zr, Rs2: a})

	case ir.OpGetField:
		obj := g.ensureReg(in.Args[0], nil)
		g.nullCheck(in.Args[0], obj)
		r := g.defReg(in.ID, pin(obj))
		g.emit(cpu.Instr{Op: loadOpFor(in.Field.Kind), Rd: r, Rs1: obj, Imm: int64(in.Field.Offset)})

	case ir.OpPutField:
		obj := g.ensureReg(in.Args[0], nil)
		val := g.ensureReg(in.Args[1], pin(obj))
		g.nullCheck(in.Args[0], obj)
		g.emit(cpu.Instr{Op: storeOpFor(in.Field.Kind), Rs1: obj, Imm: int64(in.Field.Offset), Rs2: val})

	case ir.OpALoad:
		addr := g.elemAddr(in.Args[0], in.Args[1], in.ElemKind)
		r := g.defReg(in.ID, nil)
		g.emit(cpu.Instr{Op: loadOpFor(in.ElemKind), Rd: r, Rs1: addr, Imm: classfile.HeaderSize})

	case ir.OpAStore:
		// Materialize the value first so address scratch regs stay free.
		val := g.ensureReg(in.Args[2], nil)
		addr := g.elemAddr(in.Args[0], in.Args[1], in.ElemKind)
		g.emit(cpu.Instr{Op: storeOpFor(in.ElemKind), Rs1: addr, Imm: classfile.HeaderSize, Rs2: val})

	case ir.OpArrayLen:
		arr := g.ensureReg(in.Args[0], nil)
		g.nullCheck(in.Args[0], arr)
		r := g.defReg(in.ID, pin(arr))
		g.emit(cpu.Instr{Op: cpu.OpLd4, Rd: r, Rs1: arr, Imm: classfile.OffArrayLen})

	case ir.OpNewObject:
		g.evacuate(0, idx)
		g.evacuate(1, idx)
		g.emit(cpu.Instr{Op: cpu.OpMovImm, Rd: 1, Imm: int64(in.Class.ID)})
		g.emit(cpu.Instr{Op: cpu.OpTrap, Imm: cpu.TrapAllocObject})
		refRegs, refSlots := g.gcMaskAt(idx, pin(0, 1))
		g.a.GCPoint(refRegs, refSlots, g.bci)
		g.bind(in.ID, 0)
		g.nonNull[in.ID] = true

	case ir.OpNewArray:
		g.evacuate(0, idx)
		g.evacuate(1, idx)
		g.evacuate(2, idx)
		ln := in.Args[0]
		if r, ok := g.valReg[ln]; ok && r != 2 {
			g.emit(cpu.Instr{Op: cpu.OpMov, Rd: 2, Rs1: r})
		} else if !ok {
			g.loadArgInto(ln, 2)
		}
		g.emit(cpu.Instr{Op: cpu.OpMovImm, Rd: 1, Imm: int64(in.Class.ID)})
		g.emit(cpu.Instr{Op: cpu.OpTrap, Imm: cpu.TrapAllocArray})
		refRegs, refSlots := g.gcMaskAt(idx, pin(0, 1, 2))
		g.a.GCPoint(refRegs, refSlots, g.bci)
		g.bind(in.ID, 0)
		g.nonNull[in.ID] = true

	case ir.OpCallStatic, ir.OpCallVirtual:
		g.spillForCall(in, idx)
		for i, a := range in.Args {
			g.loadArg(a, uint8(i))
		}
		if in.Op == ir.OpCallStatic {
			g.emit(cpu.Instr{Op: cpu.OpCallM, Imm: int64(in.Method.ID)})
		} else {
			g.emit(cpu.Instr{Op: cpu.OpCallV, Rs1: 0, Imm: int64(in.Method.VSlot)})
		}
		_, refSlots := g.gcMaskAt(idx, nil)
		g.a.GCPoint(0, refSlots, g.bci)
		if in.HasDef() {
			g.bind(in.ID, 0)
		}

	case ir.OpBranch:
		a := g.ensureReg(in.Args[0], nil)
		b := g.ensureReg(in.Args[1], pin(a))
		g.a.EmitJump(cpu.Instr{Op: condToCPU[in.Cond], Rs1: a, Rs2: b}, g.blockLabels[in.Target], g.bci, g.iid)

	case ir.OpGoto:
		if in.Target != bi+1 {
			g.a.EmitJump(cpu.Instr{Op: cpu.OpJmp}, g.blockLabels[in.Target], g.bci, g.iid)
		}

	case ir.OpReturn:
		g.emit(cpu.Instr{Op: cpu.OpLeave})
		g.emit(cpu.Instr{Op: cpu.OpRet})

	case ir.OpRetVal:
		v := in.Args[0]
		if r, ok := g.valReg[v]; ok {
			if r != 0 {
				g.emit(cpu.Instr{Op: cpu.OpMov, Rd: 0, Rs1: r})
			}
		} else {
			g.loadArgInto(v, 0)
		}
		g.emit(cpu.Instr{Op: cpu.OpLeave})
		g.emit(cpu.Instr{Op: cpu.OpRet})

	case ir.OpNullCheck:
		r := g.ensureReg(in.Args[0], nil)
		g.nullCheck(in.Args[0], r)

	case ir.OpResult:
		g.evacuate(1, idx)
		v := in.Args[0]
		if r, ok := g.valReg[v]; ok {
			if r != 1 {
				g.emit(cpu.Instr{Op: cpu.OpMov, Rd: 1, Rs1: r})
			}
		} else {
			g.loadArgInto(v, 1)
		}
		g.emit(cpu.Instr{Op: cpu.OpTrap, Imm: cpu.TrapResult})

	default:
		panic(fmt.Sprintf("opt: %s: unsupported IR op %v", g.f.Method.QualifiedName(), in.Op))
	}
}

// loadArgInto materializes v into a fixed register from a slot or
// rematerializable constant, without touching allocation state.
func (g *gen) loadArgInto(v int, r uint8) {
	if cst, remat := g.isRemat(v); remat {
		g.emit(cpu.Instr{Op: cpu.OpMovImm, Rd: r, Imm: cst})
		return
	}
	if s, ok := g.valSlot[v]; ok {
		g.emit(cpu.Instr{Op: cpu.OpLd8, Rd: r, Rs1: cpu.BaseFP, Imm: emit.SlotOffset(s)})
		return
	}
	panic(fmt.Sprintf("opt: %s: value v%d has no location for fixed reg %d", g.f.Method.QualifiedName(), v, r))
}
