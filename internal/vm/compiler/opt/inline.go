package opt

import (
	"fmt"

	"hpmvm/internal/vm/bytecode"
	"hpmvm/internal/vm/classfile"
)

// Bytecode-level inlining, applied by the optimizing compiler before IR
// construction (the Jikes opt compiler inlines aggressively at its
// higher optimization levels; §3.2). Static calls are inlined directly;
// virtual calls are first devirtualized by closed-world class-hierarchy
// analysis (the universe cannot load classes at runtime), with an
// explicit null check standing in for the dispatch's receiver check.

// InlineConfig bounds the inliner.
type InlineConfig struct {
	// MaxCalleeSize is the largest callee body considered, in
	// bytecodes.
	MaxCalleeSize int
	// MaxGrowth caps the caller's size increase in bytecodes.
	MaxGrowth int
	// MaxLocals caps the combined local-slot count (the GC map budget).
	MaxLocals int
	// Passes is the number of inlining sweeps (2 inlines through
	// one level of wrappers).
	Passes int
}

// DefaultInlineConfig returns the standard budgets.
func DefaultInlineConfig() InlineConfig {
	return InlineConfig{MaxCalleeSize: 48, MaxGrowth: 400, MaxLocals: 56, Passes: 2}
}

// soleImplementation returns the single implementation a virtual call
// can dispatch to, or nil when the slot is polymorphic.
func soleImplementation(u *classfile.Universe, m *classfile.Method) *classfile.Method {
	var impl *classfile.Method
	for _, cl := range u.Classes() {
		if m.VSlot >= len(cl.VTable) {
			continue
		}
		// Only classes in m's hierarchy share its slot meaning.
		inHierarchy := false
		for c := cl; c != nil; c = c.Super {
			if c == m.Class {
				inHierarchy = true
				break
			}
		}
		if !inHierarchy {
			continue
		}
		cand := cl.VTable[m.VSlot]
		if impl == nil {
			impl = cand
		} else if impl != cand {
			return nil
		}
	}
	return impl
}

// inlinable reports whether callee can be spliced into a caller.
func inlinable(callee *classfile.Method, cfg InlineConfig) (*bytecode.Code, bool) {
	code, ok := callee.Code.(*bytecode.Code)
	if !ok || code == nil {
		return nil, false
	}
	if len(code.Instrs) > cfg.MaxCalleeSize {
		return nil, false
	}
	return code, true
}

// InlineCalls returns a new verified Code for the caller with eligible
// call sites expanded, or the original code when nothing was inlined.
// The input code is never mutated (it is the method's canonical body).
func InlineCalls(u *classfile.Universe, code *bytecode.Code, cfg InlineConfig) (*bytecode.Code, error) {
	cur := code
	for pass := 0; pass < cfg.Passes; pass++ {
		next, changed, err := inlineOnePass(u, cur, cfg)
		if err != nil {
			return nil, err
		}
		if !changed {
			break
		}
		cur = next
	}
	return cur, nil
}

func inlineOnePass(u *classfile.Universe, code *bytecode.Code, cfg InlineConfig) (*bytecode.Code, bool, error) {
	caller := code.Method

	// Select the call sites to expand under the growth budgets.
	type site struct {
		idx     int
		callee  *bytecode.Code
		virtual bool
	}
	var sites []site
	growth := 0
	locals := code.NumLocals
	consts := code.RefConsts
	for i, in := range code.Instrs {
		if in.Op != bytecode.OpInvokeStatic && in.Op != bytecode.OpInvokeVirtual {
			continue
		}
		target := u.Method(int(in.A))
		virtual := in.Op == bytecode.OpInvokeVirtual
		if virtual {
			impl := soleImplementation(u, target)
			if impl == nil {
				continue // polymorphic: keep the dispatch
			}
			target = impl
		}
		if target == caller {
			continue // no self-inlining
		}
		callee, ok := inlinable(target, cfg)
		if !ok {
			continue
		}
		extra := len(callee.Instrs) + len(target.Args) + 2*(callee.NumLocals-len(target.Args)) + 4
		if growth+extra > cfg.MaxGrowth {
			continue
		}
		if locals+callee.NumLocals+1 > cfg.MaxLocals {
			continue
		}
		growth += extra
		locals += callee.NumLocals + 1
		consts += callee.RefConsts
		sites = append(sites, site{idx: i, callee: callee, virtual: virtual})
	}
	if len(sites) == 0 {
		return code, false, nil
	}
	siteAt := make(map[int]site, len(sites))
	for _, s := range sites {
		siteAt[s.idx] = s
	}

	// Rebuild the instruction stream. newIdx maps old caller indices to
	// new positions (for branch retargeting).
	out := &bytecode.Code{
		Method:        caller,
		NumLocals:     code.NumLocals,
		LocalKinds:    append([]classfile.Kind(nil), code.LocalKinds...),
		RefConsts:     code.RefConsts,
		RefConstAddrs: append([]uint64(nil), code.RefConstAddrs...),
	}
	newIdx := make([]int, len(code.Instrs)+1)

	type fixup struct {
		at     int // instruction in out.Instrs whose A needs remapping
		target int // old caller index
	}
	var fixups []fixup

	emit := func(in bytecode.Instr) int {
		out.Instrs = append(out.Instrs, in)
		return len(out.Instrs) - 1
	}

	for i, in := range code.Instrs {
		newIdx[i] = len(out.Instrs)
		s, isSite := siteAt[i]
		if !isSite {
			cp := in
			if cp.Op.IsBranch() {
				fixups = append(fixups, fixup{at: len(out.Instrs), target: int(cp.A)})
			}
			emit(cp)
			continue
		}

		callee := s.callee
		target := callee.Method

		// Allocate fresh local slots for the callee body, plus one for
		// the return value.
		localBase := out.NumLocals
		out.NumLocals += callee.NumLocals
		out.LocalKinds = append(out.LocalKinds, callee.LocalKinds...)
		retSlot := -1
		if target.Ret != classfile.KindVoid {
			retSlot = out.NumLocals
			out.NumLocals++
			out.LocalKinds = append(out.LocalKinds, target.Ret)
		}
		constBase := out.RefConsts
		out.RefConsts += callee.RefConsts
		out.RefConstAddrs = append(out.RefConstAddrs, callee.RefConstAddrs...)

		// Store the arguments (on the stack, last argument on top) into
		// the callee's parameter slots; null-check devirtualized
		// receivers to preserve invokevirtual semantics.
		for a := len(target.Args) - 1; a >= 0; a-- {
			if a == 0 && s.virtual {
				emit(bytecode.Instr{Op: bytecode.OpDup})
				emit(bytecode.Instr{Op: bytecode.OpNullCheck})
			}
			emit(bytecode.Instr{Op: bytecode.OpStore, A: int64(localBase + a)})
		}
		// A real invocation gets a fresh zeroed frame every time; the
		// spliced body may re-execute (the call site can sit in a
		// loop), so its non-argument locals must be re-zeroed here.
		for slot := len(target.Args); slot < callee.NumLocals; slot++ {
			if callee.LocalKinds[slot] == classfile.KindRef {
				emit(bytecode.Instr{Op: bytecode.OpConstNull})
			} else {
				emit(bytecode.Instr{Op: bytecode.OpConstInt, A: 0})
			}
			emit(bytecode.Instr{Op: bytecode.OpStore, A: int64(localBase + slot)})
		}

		// Splice the body. Callee-internal branches are offset by the
		// splice position; returns become stores plus jumps to the end.
		bodyStart := len(out.Instrs)
		calleeIdx := make([]int, len(callee.Instrs))
		type calleeFixup struct {
			at     int
			target int // callee-internal index
		}
		var cfixups []calleeFixup
		var endFixups []int // instructions jumping to the splice end
		for ci, cin := range callee.Instrs {
			calleeIdx[ci] = len(out.Instrs)
			cp := cin
			switch {
			case cp.Op.IsBranch():
				cfixups = append(cfixups, calleeFixup{at: len(out.Instrs), target: int(cp.A)})
				emit(cp)
			case cp.Op == bytecode.OpLoad || cp.Op == bytecode.OpStore || cp.Op == bytecode.OpIInc:
				cp.A += int64(localBase)
				emit(cp)
			case cp.Op == bytecode.OpLoadConst:
				cp.A += int64(constBase)
				emit(cp)
			case cp.Op == bytecode.OpReturnVal:
				emit(bytecode.Instr{Op: bytecode.OpStore, A: int64(retSlot)})
				endFixups = append(endFixups, emit(bytecode.Instr{Op: bytecode.OpGoto, A: -1}))
			case cp.Op == bytecode.OpReturn:
				endFixups = append(endFixups, emit(bytecode.Instr{Op: bytecode.OpGoto, A: -1}))
			default:
				emit(cp)
			}
		}
		_ = bodyStart
		spliceEnd := len(out.Instrs)
		for _, fx := range cfixups {
			out.Instrs[fx.at].A = int64(calleeIdx[fx.target])
		}
		for _, at := range endFixups {
			out.Instrs[at].A = int64(spliceEnd)
		}
		if retSlot >= 0 {
			emit(bytecode.Instr{Op: bytecode.OpLoad, A: int64(retSlot)})
		} else if spliceEnd == len(out.Instrs) {
			// Keep the splice-end target in range when the callee ends
			// the caller's instruction stream (a trailing void call).
			emit(bytecode.Instr{Op: bytecode.OpNop})
		}
	}
	newIdx[len(code.Instrs)] = len(out.Instrs)

	for _, fx := range fixups {
		out.Instrs[fx.at].A = int64(newIdx[fx.target])
	}

	if err := bytecode.Verify(u, out); err != nil {
		return nil, false, fmt.Errorf("opt: inlining %s produced invalid bytecode: %w", caller.QualifiedName(), err)
	}
	return out, true, nil
}
