package emit

import (
	"testing"

	"hpmvm/internal/hw/cache"
	"hpmvm/internal/hw/cpu"
	"hpmvm/internal/hw/mem"
	"hpmvm/internal/vm/classfile"
	"hpmvm/internal/vm/mcmap"
)

func testCPU() *cpu.CPU {
	return cpu.New(mem.New(), cache.New(cache.DefaultP4()), cpu.DefaultConfig())
}

func testMethod() *classfile.Method {
	u := classfile.NewUniverse()
	c := u.DefineClass("C", nil)
	return u.AddMethod(c, "m", false, nil, classfile.KindVoid)
}

func TestEmitAndFinish(t *testing.T) {
	c := testCPU()
	a := New(c)
	base := a.Base()
	a.Emit(cpu.Instr{Op: cpu.OpNop}, 0, 0)
	a.Emit(cpu.Instr{Op: cpu.OpRet}, 1, mcmap.NoBCI)
	m := a.Finish(testMethod(), false, 3)
	if m.Start != base || m.End != base+2*cpu.InstrBytes {
		t.Errorf("range [%#x,%#x)", m.Start, m.End)
	}
	if m.FrameSlots != 3 || m.Opt {
		t.Error("metadata wrong")
	}
	if bci, ok := m.BytecodeAt(base); !ok || bci != 0 {
		t.Error("BCI map wrong")
	}
	if in, ok := c.InstrAt(base + cpu.InstrBytes); !ok || in.Op != cpu.OpRet {
		t.Error("code not installed")
	}
}

func TestForwardLabelFixup(t *testing.T) {
	c := testCPU()
	a := New(c)
	l := a.NewLabel()
	a.EmitJump(cpu.Instr{Op: cpu.OpJmp}, l, 0, 0)
	a.Emit(cpu.Instr{Op: cpu.OpNop}, 1, 0)
	a.Bind(l)
	a.Emit(cpu.Instr{Op: cpu.OpRet}, 2, 0)
	m := a.Finish(testMethod(), true, 0)
	in, _ := c.InstrAt(m.Start)
	if uint64(in.Imm) != m.Start+2*cpu.InstrBytes {
		t.Errorf("forward jump target %#x, want %#x", in.Imm, m.Start+2*cpu.InstrBytes)
	}
}

func TestBackwardLabel(t *testing.T) {
	c := testCPU()
	a := New(c)
	l := a.NewLabel()
	a.Bind(l)
	a.Emit(cpu.Instr{Op: cpu.OpNop}, 0, 0)
	a.EmitJump(cpu.Instr{Op: cpu.OpBrEQ}, l, 1, 0)
	m := a.Finish(testMethod(), false, 0)
	in, _ := c.InstrAt(m.Start + cpu.InstrBytes)
	if uint64(in.Imm) != m.Start {
		t.Errorf("backward branch target %#x", in.Imm)
	}
}

func TestGCPointRecording(t *testing.T) {
	c := testCPU()
	a := New(c)
	a.Emit(cpu.Instr{Op: cpu.OpTrap, Imm: cpu.TrapAllocObject}, 5, 0)
	a.GCPoint(0b10, 0b101, 5)
	m := a.Finish(testMethod(), true, 4)
	gp := m.GCPointAt(m.Start)
	if gp == nil || gp.RefRegs != 0b10 || gp.RefSlots != 0b101 || gp.BCI != 5 {
		t.Fatalf("GC point = %+v", gp)
	}
}

func TestPatch(t *testing.T) {
	c := testCPU()
	a := New(c)
	idx := a.Emit(cpu.Instr{Op: cpu.OpEnter, Imm: 0}, mcmap.NoBCI, mcmap.NoBCI)
	a.Emit(cpu.Instr{Op: cpu.OpRet}, mcmap.NoBCI, mcmap.NoBCI)
	a.Patch(idx, 48)
	m := a.Finish(testMethod(), true, 6)
	in, _ := c.InstrAt(m.Start)
	if in.Imm != 48 {
		t.Errorf("patched imm = %d", in.Imm)
	}
}

func TestUnboundLabelPanics(t *testing.T) {
	c := testCPU()
	a := New(c)
	l := a.NewLabel()
	a.EmitJump(cpu.Instr{Op: cpu.OpJmp}, l, 0, 0)
	defer func() {
		if recover() == nil {
			t.Error("Finish with unbound label did not panic")
		}
	}()
	a.Finish(testMethod(), false, 0)
}

func TestDoubleBindPanics(t *testing.T) {
	c := testCPU()
	a := New(c)
	l := a.NewLabel()
	a.Bind(l)
	defer func() {
		if recover() == nil {
			t.Error("double Bind did not panic")
		}
	}()
	a.Bind(l)
}

func TestSlotHelpers(t *testing.T) {
	if SlotOffset(0) != -8 || SlotOffset(3) != -32 {
		t.Error("SlotOffset wrong")
	}
	if RefSlotMask([]int{0, 2}) != 0b101 {
		t.Error("RefSlotMask wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("RefSlotMask over 64 slots did not panic")
		}
	}()
	RefSlotMask([]int{64})
}
