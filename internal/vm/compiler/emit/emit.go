// Package emit provides the machine-code assembler shared by the
// baseline and optimizing compilers: instruction emission with label
// fixups, per-instruction provenance recording (bytecode index and IR
// id), GC-point registration, and installation of the finished body
// into the CPU's code space with a complete mcmap.MCMap.
package emit

import (
	"fmt"

	"hpmvm/internal/hw/cpu"
	"hpmvm/internal/vm/classfile"
	"hpmvm/internal/vm/mcmap"
)

// Assembler accumulates machine code for one method body.
type Assembler struct {
	cpu    *cpu.CPU
	base   uint64
	instrs []cpu.Instr
	bci    []int32
	irid   []int32
	points []mcmap.GCPoint

	labels []int // label id -> instruction index (-1 unbound)
	fixups []fixup
}

type fixup struct {
	instr int
	label int
}

// New starts an assembler whose code will be installed at the CPU's
// next free code address.
func New(c *cpu.CPU) *Assembler {
	return &Assembler{cpu: c, base: c.NextCodeAddr()}
}

// Base returns the address the body will start at.
func (a *Assembler) Base() uint64 { return a.base }

// PC returns the address of the next instruction to be emitted.
func (a *Assembler) PC() uint64 {
	return a.base + uint64(len(a.instrs))*cpu.InstrBytes
}

// Len returns the number of instructions emitted so far.
func (a *Assembler) Len() int { return len(a.instrs) }

// Emit appends an instruction with its provenance and returns its
// index. Use mcmap.NoBCI for synthetic instructions.
func (a *Assembler) Emit(in cpu.Instr, bci, irid int32) int {
	a.instrs = append(a.instrs, in)
	a.bci = append(a.bci, bci)
	a.irid = append(a.irid, irid)
	return len(a.instrs) - 1
}

// Patch rewrites the immediate of a previously emitted instruction
// (frame-size backpatching).
func (a *Assembler) Patch(idx int, imm int64) {
	a.instrs[idx].Imm = imm
}

// NewLabel allocates an unbound label.
func (a *Assembler) NewLabel() int {
	a.labels = append(a.labels, -1)
	return len(a.labels) - 1
}

// Bind attaches a label to the current position.
func (a *Assembler) Bind(label int) {
	if a.labels[label] != -1 {
		panic(fmt.Sprintf("emit: label %d bound twice", label))
	}
	a.labels[label] = len(a.instrs)
}

// Bound reports whether the label has been bound.
func (a *Assembler) Bound(label int) bool { return a.labels[label] != -1 }

// EmitJump emits an instruction whose Imm is the address of label
// (branches and jumps), fixing it up at Finish if the label is still
// unbound.
func (a *Assembler) EmitJump(in cpu.Instr, label int, bci, irid int32) int {
	if a.labels[label] != -1 {
		in.Imm = int64(a.base + uint64(a.labels[label])*cpu.InstrBytes)
	} else {
		a.fixups = append(a.fixups, fixup{instr: len(a.instrs), label: label})
		in.Imm = -1
	}
	return a.Emit(in, bci, irid)
}

// GCPoint records a GC map for the most recently emitted instruction.
func (a *Assembler) GCPoint(refRegs uint16, refSlots uint64, bci int32) {
	pc := a.base + uint64(len(a.instrs)-1)*cpu.InstrBytes
	a.points = append(a.points, mcmap.GCPoint{PC: pc, BCI: bci, RefRegs: refRegs, RefSlots: refSlots})
}

// Finish resolves fixups, installs the code into the CPU and returns
// the completed machine-code map (not yet registered in any table).
func (a *Assembler) Finish(m *classfile.Method, opt bool, frameSlots int) *mcmap.MCMap {
	for _, fx := range a.fixups {
		idx := a.labels[fx.label]
		if idx == -1 {
			panic(fmt.Sprintf("emit: %s: unbound label %d", m.QualifiedName(), fx.label))
		}
		a.instrs[fx.instr].Imm = int64(a.base + uint64(idx)*cpu.InstrBytes)
	}
	start := a.cpu.InstallCode(a.instrs)
	if start != a.base {
		panic(fmt.Sprintf("emit: %s: code moved during compilation (%#x vs %#x): interleaved installs", m.QualifiedName(), start, a.base))
	}
	return &mcmap.MCMap{
		Method:     m,
		Start:      start,
		End:        start + uint64(len(a.instrs))*cpu.InstrBytes,
		Opt:        opt,
		FrameSlots: frameSlots,
		BCIndex:    a.bci,
		IRID:       a.irid,
		GCPoints:   a.points,
	}
}

// SlotOffset returns the frame-pointer-relative byte offset of frame
// slot i under the universal frame layout (slot i lives at fp-8*(i+1)).
func SlotOffset(i int) int64 { return -8 * int64(i+1) }

// RefSlotMask builds a frame-slot bitmask from slot indices.
func RefSlotMask(slots []int) uint64 {
	var m uint64
	for _, s := range slots {
		if s >= 64 {
			panic(fmt.Sprintf("emit: frame slot %d exceeds GC map width", s))
		}
		m |= 1 << uint(s)
	}
	return m
}

// KindIsRef is a small helper shared by the compilers.
func KindIsRef(k classfile.Kind) bool { return k == classfile.KindRef }
