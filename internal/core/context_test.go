package core_test

import (
	"context"
	"errors"
	"testing"

	"hpmvm/internal/core"
)

// TestRunContextIdentical pins that threading a live (but never fired)
// cancellable context through RunContext is cycle-identical to the
// plain Run path: the cancel hook polls at safepoints without charging
// simulated cycles, so cancellation support cannot perturb results.
func TestRunContextIdentical(t *testing.T) {
	opts := core.Options{HeapLimit: 8 << 20, Seed: 5}

	u1, main1 := buildListProgram(t, 5000)
	sysA, err := core.NewSystemOpts(u1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := sysA.Boot(nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := sysA.Run(main1, 500_000_000); err != nil {
		t.Fatal(err)
	}

	u2, main2 := buildListProgram(t, 5000)
	sysB, err := core.NewSystemOpts(u2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := sysB.Boot(nil, nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := sysB.RunContext(ctx, main2, 500_000_000); err != nil {
		t.Fatal(err)
	}

	if a, b := sysA.VM.Cycles(), sysB.VM.Cycles(); a != b {
		t.Errorf("cycles differ: Run %d, RunContext %d", a, b)
	}
	ra, rb := sysA.VM.Results(), sysB.VM.Results()
	if len(ra) != len(rb) {
		t.Fatalf("result lengths differ: %v vs %v", ra, rb)
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Errorf("result[%d] differs: %d vs %d", i, ra[i], rb[i])
		}
	}
}

// TestRunContextPreCancelled pins that an already-dead context aborts
// before any simulation work and surfaces context.Canceled.
func TestRunContextPreCancelled(t *testing.T) {
	u, main := buildListProgram(t, 1000)
	sys, err := core.NewSystemOpts(u, core.Options{HeapLimit: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Boot(nil, nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = sys.RunContext(ctx, main, 500_000_000)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext on cancelled ctx = %v, want context.Canceled", err)
	}
	if c := sys.VM.Cycles(); c != 0 {
		t.Errorf("pre-cancelled run still simulated %d cycles", c)
	}
}

// TestRunAbortMidway drives the cancel hook directly with a
// deterministic countdown (no goroutines, no wall clock): after three
// safepoint polls the run must abort with the injected error, partway
// through the program.
func TestRunAbortMidway(t *testing.T) {
	u, main := buildListProgram(t, 200_000)
	sys, err := core.NewSystemOpts(u, core.Options{HeapLimit: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Boot(nil, nil); err != nil {
		t.Fatal(err)
	}

	sentinel := errors.New("stop now")
	polls := 0
	// Run uses context.Background(), whose Done() is nil, so RunContext
	// installs no hook of its own and this one survives.
	sys.VM.SetCancel(func() error {
		polls++
		if polls >= 3 {
			return sentinel
		}
		return nil
	})

	err = sys.Run(main, 5_000_000_000)
	if !errors.Is(err, sentinel) {
		t.Fatalf("aborted run error = %v, want the injected sentinel", err)
	}
	if polls < 3 {
		t.Fatalf("cancel hook polled %d times, want >= 3", polls)
	}
	cycles := sys.VM.Cycles()
	if cycles == 0 {
		t.Error("abort happened before any simulation")
	}
	// The poll quantum bounds how far past the third poll the run got.
	// Three polls of CancelCheckCycles each (plus slack for GC and
	// ticker events that stretch one quantum) is far below a full run.
	if len(sys.VM.Results()) == 2 {
		t.Error("run produced both results — the abort did not interrupt it")
	}
}
