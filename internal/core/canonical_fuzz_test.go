package core

import (
	"reflect"
	"testing"

	"hpmvm/internal/hw/cache"
	"hpmvm/internal/opt"
)

// FuzzCanonical fuzzes the cache-key contract over the Options space:
// Canonical must be idempotent (canonicalization is a normal form) and
// Fingerprint/PrefixFingerprint must be stable under it — the
// properties the serve result cache and the snapshot restore
// validation both rest on. Runs over its seed corpus as a plain test
// in CI; `go test -fuzz=FuzzCanonical ./internal/core` explores
// further.
func FuzzCanonical(f *testing.F) {
	f.Add(uint8(0), uint64(0), false, uint64(0), uint8(0), false, false, int64(0), "", false, 0, false, uint32(0), false, uint32(0))
	f.Add(uint8(1), uint64(12<<20), true, uint64(1000), uint8(1), false, false, int64(7), "String::value", true, 128, true, uint32(0), true, uint32(0))
	f.Add(uint8(0), uint64(8<<20), true, uint64(0), uint8(2), true, true, int64(-3), "Node::next", false, 0, true, uint32(4096), false, uint32(4))
	f.Add(uint8(2), uint64(1), true, uint64(25_000), uint8(9), true, false, int64(1<<40), "a::b", true, -5, false, uint32(1), true, uint32(63))

	f.Fuzz(func(t *testing.T, collector uint8, heap uint64, monitoring bool,
		interval uint64, event uint8, coalloc, adaptive bool, seed int64,
		track string, observe bool, traceCap int,
		codeLayout bool, icacheSize uint32,
		swPrefetch bool, spDistance uint32) {
		o := Options{
			Collector:        CollectorKind(collector % 2),
			HeapLimit:        heap,
			Monitoring:       monitoring,
			SamplingInterval: interval,
			Event:            cache.EventKind(event % 3),
			Coalloc:          coalloc,
			Adaptive:         adaptive,
			Seed:             seed,
			Observe:          observe,
			TraceCapacity:    traceCap,
		}
		if track != "" {
			o.TrackFields = []string{track}
		}
		if codeLayout {
			var cfg *opt.CodeLayoutConfig
			if icacheSize != 0 {
				cfg = &opt.CodeLayoutConfig{ICacheSize: int(icacheSize)}
			}
			o.Optimizations = append(o.Optimizations,
				OptimizationConfig{Kind: opt.KindCodeLayout, CodeLayout: cfg})
		}
		if swPrefetch {
			var cfg *opt.SwPrefetchConfig
			if spDistance != 0 {
				cfg = &opt.SwPrefetchConfig{Distance: int(spDistance)}
			}
			o.Optimizations = append(o.Optimizations,
				OptimizationConfig{Kind: opt.KindSwPrefetch, SwPrefetch: cfg})
		}

		// Canonicalization is idempotent: a canonical form is its own
		// normal form.
		c := o.Canonical()
		if cc := c.Canonical(); !reflect.DeepEqual(cc, c) {
			t.Fatalf("Canonical not idempotent:\n once  %+v\n twice %+v", c, cc)
		}

		// Fingerprints are stable across canonicalization and repeated
		// computation, and are well-formed content addresses.
		fp := o.Fingerprint()
		if fp != o.Fingerprint() || fp != c.Fingerprint() {
			t.Fatalf("Fingerprint unstable: %s vs %s vs %s", fp, o.Fingerprint(), c.Fingerprint())
		}
		if len(fp) != 64 {
			t.Fatalf("Fingerprint %q is not a sha256 hex digest", fp)
		}
		pfp := o.PrefixFingerprint()
		if pfp != c.PrefixFingerprint() {
			t.Fatalf("PrefixFingerprint unstable under Canonical: %s vs %s", pfp, c.PrefixFingerprint())
		}

		// The prefix relation: options differing only in the sampling
		// interval share a prefix fingerprint when monitoring is on —
		// exactly the divergent-restore eligibility rule.
		div := o
		div.SamplingInterval = interval + 1
		if monitoring {
			if div.PrefixFingerprint() != pfp {
				t.Fatalf("interval change perturbed PrefixFingerprint")
			}
			if div.Fingerprint() == fp {
				t.Fatalf("interval change did not perturb exact Fingerprint")
			}
		} else if div.Fingerprint() != fp {
			// Without monitoring the interval is gated off entirely.
			t.Fatalf("gated-off interval perturbed Fingerprint")
		}

		// Passive observer knobs never reach the key.
		passive := o
		passive.Observe = !o.Observe
		passive.TraceCapacity = o.TraceCapacity + 1
		if passive.Fingerprint() != fp {
			t.Fatalf("passive obs fields perturbed Fingerprint")
		}

		// The optimization list's two co-allocation spellings are one
		// configuration: folding the legacy Coalloc switch into a
		// coalloc-kind entry must not move the key.
		if coalloc {
			folded := o
			folded.Coalloc = false
			folded.Optimizations = append([]OptimizationConfig{{Kind: opt.KindCoalloc}},
				o.Optimizations...)
			if folded.Fingerprint() != fp {
				t.Fatalf("coalloc-kind entry hashes differently from the legacy Coalloc switch:\n legacy %s\n entry  %s",
					o.CanonicalString(), folded.CanonicalString())
			}
		}

		// An empty (non-nil) list is the absence of the framework.
		empty := o
		empty.Optimizations = append([]OptimizationConfig{}, o.Optimizations...)
		if empty.Fingerprint() != fp {
			t.Fatalf("re-sliced optimization list perturbed Fingerprint")
		}

		// A codelayout entry is semantic: adding one must move the key.
		withCL := o
		if !codeLayout {
			withCL.Optimizations = append([]OptimizationConfig{{Kind: opt.KindCodeLayout}},
				o.Optimizations...)
			if withCL.Fingerprint() == fp {
				t.Fatalf("codelayout entry did not perturb Fingerprint")
			}
		}

		// So is a swprefetch entry.
		if !swPrefetch {
			withSP := o
			withSP.Optimizations = append([]OptimizationConfig{{Kind: opt.KindSwPrefetch}},
				o.Optimizations...)
			if withSP.Fingerprint() == fp {
				t.Fatalf("swprefetch entry did not perturb Fingerprint")
			}
		}
	})
}
