package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"reflect"
	"sort"
	"strings"

	"hpmvm/internal/coalloc"
	"hpmvm/internal/monitor"
	"hpmvm/internal/opt"
	"hpmvm/internal/vm/aos"
)

// This file defines the deterministic cache-key contract: a run is
// fully determined by (workload, resolved Options) — the simulator has
// no other inputs — so two Options values that resolve to the same
// behaviour must serialize identically, and any field that can change
// a simulated number must perturb the serialization. The serve layer
// builds its content-addressed result cache on top of Fingerprint.
//
// Contract (pinned by TestCanonicalFingerprint* via reflection, so a
// new Options field cannot silently bypass the key):
//
//   - Defaults are resolved before hashing: a zero Cache hashes like an
//     explicit DefaultP4, HeapLimit 0 like the 64 MiB default, and a
//     nil sub-config pointer like a pointer to its DefaultConfig.
//   - Fields gated off by their master switch are cleared: with
//     Monitoring false the sampling interval, event, monitor config and
//     tracked fields cannot reach the simulation, so they do not reach
//     the hash either.
//   - Passive fields are excluded: Observe and TraceCapacity attach the
//     obs layer, which never charges simulated cycles (pinned by
//     TestObserveCycleIdentical), so they cannot change a result.
//     Consumers whose *response* shape depends on them (the serve
//     layer returns obs metrics when asked) must fold them into their
//     own key on top of Fingerprint.
//   - Sampling is semantic, not passive: nil (exact) and non-nil
//     (sampled) are different simulations — sampled cycle counts are
//     estimates — so sampled runs hash to their own cache keys, with
//     the config's zero fields resolved to defaults like every other
//     sub-config. Sampled configs also never share a snapshot prefix
//     (sampled systems refuse Snapshot).

// canonicalIgnored lists the top-level Options fields excluded from
// the canonical serialization, with the invariant that justifies each
// exclusion. Every other field is hashed; the reflection test walks
// Options and fails if a field neither perturbs the hash nor appears
// here.
var canonicalIgnored = map[string]string{
	"Observe":       "passive observer, cycle-identical by TestObserveCycleIdentical",
	"TraceCapacity": "sizes the passive observer's ring buffer",
}

// Canonical returns the normalized form of o: defaults resolved,
// switch-gated fields cleared, passive fields zeroed, and sub-config
// pointers materialized with the same overrides NewSystemOpts applies
// when wiring (Auto follows SamplingInterval, TrackFields is copied
// into the monitor config). Two Options build behaviourally identical
// Systems iff their Canonical forms are deeply equal.
func (o Options) Canonical() Options {
	c := o.withDefaults()
	c.Observe = false
	c.TraceCapacity = 0
	if !c.Monitoring {
		c.SamplingInterval = 0
		c.Event = 0
		c.MonitorConfig = nil
		c.TrackFields = nil
	} else {
		mcfg := monitor.DefaultConfig()
		if c.MonitorConfig != nil {
			mcfg = *c.MonitorConfig
		}
		// Mirror the constructor's wiring: these two fields are always
		// overwritten from the top-level options, so whatever the caller
		// put in them is unreachable.
		mcfg.Auto = c.SamplingInterval == 0
		mcfg.TrackFields = c.TrackFields
		c.MonitorConfig = &mcfg
	}
	// Fold the optimization list: a coalloc-kind entry collapses into
	// the legacy Coalloc switch (the two spellings wire identical
	// systems, so they must hash identically), codelayout and swprefetch
	// entries get their config materialized with defaults resolved, and the
	// remainder — including unknown kinds, which still perturb the
	// hash — sorts by kind. Idempotent by construction.
	if len(c.Optimizations) > 0 {
		rest := make([]OptimizationConfig, 0, len(c.Optimizations))
		for _, e := range c.Optimizations {
			switch e.Kind {
			case opt.KindCoalloc:
				c.Coalloc = true
				if e.Coalloc != nil && c.CoallocConfig == nil {
					c.CoallocConfig = e.Coalloc
				}
			case opt.KindCodeLayout:
				cl := opt.DefaultCodeLayoutConfig()
				if e.CodeLayout != nil {
					cl = *e.CodeLayout
				}
				cl = cl.WithDefaults()
				e.CodeLayout = &cl
				rest = append(rest, e)
			case opt.KindSwPrefetch:
				sp := opt.DefaultSwPrefetchConfig()
				if e.SwPrefetch != nil {
					sp = *e.SwPrefetch
				}
				sp = sp.WithDefaults()
				e.SwPrefetch = &sp
				rest = append(rest, e)
			default:
				rest = append(rest, e)
			}
		}
		if len(rest) == 0 {
			rest = nil
		}
		sort.SliceStable(rest, func(i, j int) bool { return rest[i].Kind < rest[j].Kind })
		c.Optimizations = rest
	}
	if !c.Coalloc {
		c.CoallocConfig = nil
	} else if c.CoallocConfig == nil {
		ccfg := coalloc.DefaultConfig()
		c.CoallocConfig = &ccfg
	}
	if !c.Adaptive {
		c.AOSConfig = nil
	} else if c.AOSConfig == nil {
		acfg := aos.DefaultConfig()
		c.AOSConfig = &acfg
	}
	return c
}

// CanonicalString returns a stable, human-readable serialization of
// the canonical form. It is reflection-driven over the Options struct
// (minus canonicalIgnored), so adding a field to Options automatically
// includes it in the key; field types the serializer cannot order
// deterministically (funcs, channels, interfaces) panic, forcing a
// conscious decision instead of a silently unstable key.
func (o Options) CanonicalString() string {
	return canonicalString(o.Canonical())
}

// canonicalString serializes an already-canonicalized Options value.
func canonicalString(c Options) string {
	var b strings.Builder
	v := reflect.ValueOf(c)
	t := v.Type()
	b.WriteString("core.Options{")
	for i := 0; i < t.NumField(); i++ {
		name := t.Field(i).Name
		if _, skip := canonicalIgnored[name]; skip {
			continue
		}
		// A nil Sampling is omitted rather than serialized as
		// "Sampling=nil": exact mode is the *absence* of the sampling
		// subsystem, and omitting it keeps every pre-sampling exact
		// fingerprint stable — snapshot identities, serve-cache keys and
		// the golden corpus survive the field's introduction. Non-nil
		// configs serialize in full and hash distinctly.
		if name == "Sampling" && v.Field(i).IsNil() {
			continue
		}
		// Optimizations follows the same omit-when-empty rule: the empty
		// list is the absence of the framework's managed set (a
		// coalloc-only configuration folds into the legacy Coalloc
		// fields above), so every pre-framework fingerprint — snapshot
		// identities, serve-cache keys, the golden corpus — survives the
		// field's introduction.
		if name == "Optimizations" && v.Field(i).Len() == 0 {
			continue
		}
		appendCanonical(&b, name, v.Field(i))
	}
	b.WriteString("}")
	return b.String()
}

// Fingerprint returns the SHA-256 hex digest of CanonicalString — the
// content address of the run's configuration.
func (o Options) Fingerprint() string {
	sum := sha256.Sum256([]byte(o.CanonicalString()))
	return hex.EncodeToString(sum[:])
}

// prefixCanonical is the canonical form with the hardware sampling
// interval normalized away: SamplingInterval zeroed and the derived
// monitor Auto flag pinned false. Two monitoring configurations with
// equal prefix forms run the same simulation except for when samples
// are taken — the relationship the snapshot prefix cache exploits.
func (o Options) prefixCanonical() Options {
	c := o.Canonical()
	if c.Monitoring {
		c.SamplingInterval = 0
		mcfg := *c.MonitorConfig
		mcfg.Auto = false
		c.MonitorConfig = &mcfg
	}
	return c
}

// PrefixCanonicalString serializes the prefix-canonical form (see
// prefixCanonical).
func (o Options) PrefixCanonicalString() string {
	return canonicalString(o.prefixCanonical())
}

// PrefixFingerprint returns the SHA-256 hex digest of
// PrefixCanonicalString. A snapshot whose PrefixFingerprint matches a
// system's — while the exact Fingerprints differ — may be restored
// divergently: the shared warm prefix is reused and the system's own
// sampling interval is applied from the restore point on (see
// System.Restore).
func (o Options) PrefixFingerprint() string {
	sum := sha256.Sum256([]byte(o.PrefixCanonicalString()))
	return hex.EncodeToString(sum[:])
}

// appendCanonical serializes one value deterministically.
func appendCanonical(b *strings.Builder, name string, v reflect.Value) {
	switch v.Kind() {
	case reflect.Pointer:
		if v.IsNil() {
			fmt.Fprintf(b, "%s=nil;", name)
			return
		}
		appendCanonical(b, name, v.Elem())
	case reflect.Struct:
		fmt.Fprintf(b, "%s{", name)
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			appendCanonical(b, t.Field(i).Name, v.Field(i))
		}
		b.WriteString("};")
	case reflect.Slice, reflect.Array:
		fmt.Fprintf(b, "%s[", name)
		for i := 0; i < v.Len(); i++ {
			appendCanonical(b, fmt.Sprintf("%d", i), v.Index(i))
		}
		b.WriteString("];")
	case reflect.Map:
		// Maps iterate in random order; serialize entries sorted by
		// their rendered key so the result is stable.
		keys := v.MapKeys()
		rendered := make([]string, len(keys))
		for i, k := range keys {
			var kb strings.Builder
			appendCanonical(&kb, "k", k)
			var vb strings.Builder
			appendCanonical(&vb, "v", v.MapIndex(k))
			rendered[i] = kb.String() + vb.String()
		}
		sort.Strings(rendered)
		fmt.Fprintf(b, "%s<%s>;", name, strings.Join(rendered, ""))
	case reflect.Bool, reflect.String,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64:
		fmt.Fprintf(b, "%s=%v;", name, v.Interface())
	default:
		panic(fmt.Sprintf("core: field %s has kind %s, which has no canonical serialization — extend appendCanonical or add the field to canonicalIgnored", name, v.Kind()))
	}
}
