// Package core is the public façade of the reproduction: it wires the
// simulated Pentium 4 (CPU, caches, PEBS), the perfmon kernel module,
// the VM (compilers, AOS, runtime), a garbage collector, the HPM
// monitor and the co-allocation policy into one configurable System —
// the "dynamic compiler+runtime environment that incorporates
// machine-level information as an additional kind of feedback" the
// paper describes.
//
// Typical use:
//
//	sys, err := core.NewSystemWith(universe,
//		core.WithHeapLimit(64<<20),
//		core.WithMonitoring(25_000),
//		core.WithCoalloc(),
//	)
//	sys.Boot(plan, materialize)
//	err = sys.RunContext(ctx, entry, 0)
//	fmt.Println(sys.VM.Results(), sys.Hier().Stats().L1Misses)
//
// The struct-literal style (core.Options{...} with NewSystemOpts, or
// the legacy NewSystem) remains supported; both constructors converge
// on the same validation path.
package core

import (
	"context"
	"fmt"
	"math/rand"

	"hpmvm/internal/coalloc"
	"hpmvm/internal/gc/gencopy"
	"hpmvm/internal/gc/genms"
	"hpmvm/internal/hw/cache"
	"hpmvm/internal/hw/pebs"
	"hpmvm/internal/kernel/perfmon"
	"hpmvm/internal/monitor"
	"hpmvm/internal/obs"
	"hpmvm/internal/opt"
	"hpmvm/internal/stats"
	"hpmvm/internal/vm/aos"
	"hpmvm/internal/vm/classfile"
	"hpmvm/internal/vm/runtime"
)

// CollectorKind selects the GC policy.
type CollectorKind int

const (
	// GenMS is the generational mark-sweep collector (the paper's
	// default, and the only one supporting co-allocation).
	GenMS CollectorKind = iota
	// GenCopy is the generational copying comparator (Figure 6).
	GenCopy
)

func (k CollectorKind) String() string {
	if k == GenCopy {
		return "GenCopy"
	}
	return "GenMS"
}

// Options configures a System.
type Options struct {
	// Cache is the memory-hierarchy geometry; zero value selects the
	// paper's P4 (cache.DefaultP4).
	Cache cache.Config

	// Collector selects the GC policy; HeapLimit is the total heap
	// budget in bytes.
	Collector CollectorKind
	HeapLimit uint64

	// Monitoring enables the PEBS unit, kernel module and collector
	// thread. SamplingInterval selects the hardware interval in events
	// (e.g. 25_000); 0 selects the adaptive "auto" mode (§6.3). Event
	// defaults to L1 misses.
	Monitoring       bool
	SamplingInterval uint64
	Event            cache.EventKind
	MonitorConfig    *monitor.Config // optional overrides

	// Coalloc enables the HPM-guided co-allocation policy (requires
	// Monitoring and the GenMS collector).
	Coalloc       bool
	CoallocConfig *coalloc.Config // optional overrides

	// Optimizations selects managed online optimizations by kind
	// (opt.KindCoalloc, opt.KindCodeLayout, opt.KindSwPrefetch), each
	// with an optional
	// per-kind config. The legacy Coalloc switch is shorthand for (and
	// mutually exclusive with) a coalloc-kind entry; the two spellings
	// canonicalize — and therefore fingerprint — identically. Every
	// entry requires Monitoring (the pipeline consumes HPM samples).
	Optimizations []OptimizationConfig

	// Adaptive enables the AOS sampler for recompilation (plan
	// recording mode). The measured configurations instead replay a
	// pre-generated plan (§6.1).
	Adaptive  bool
	AOSConfig *aos.Config

	// Sampling, when non-nil, runs the simulation in sampled mode:
	// functional fast-forward alternating with detailed measured
	// regions per the runtime.SamplingConfig schedule (zero fields
	// select defaults). Architectural results are identical to an
	// exact run; cycle counts and cache statistics become estimates,
	// read via System.SamplingEstimate. A non-nil Sampling yields a
	// Fingerprint distinct from every exact configuration, and sampled
	// systems refuse Snapshot.
	Sampling *runtime.SamplingConfig

	// Seed drives the deterministic PRNG (interval randomization).
	// Runs repeated with different seeds model the paper's "average
	// over 3 executions".
	Seed int64

	// TrackFields restricts the monitor's time series to the named
	// fields ("Class::field"), as used by the Figure 7/8 experiments.
	TrackFields []string

	// Observe attaches the observability layer (package obs) to every
	// subsystem: counters are registered and a structured event trace
	// is recorded. The observer never charges simulated cycles, so
	// enabling it does not perturb measured results; disabled (the
	// default), every emission site is a nil check.
	Observe bool
	// TraceCapacity bounds the event ring buffer (0 selects
	// obs.DefaultTraceCapacity).
	TraceCapacity int
}

// System is a fully wired execution platform.
type System struct {
	Opts Options

	VM      *runtime.VM
	Unit    *pebs.Unit
	Module  *perfmon.Module
	Monitor *monitor.Monitor
	Policy  *coalloc.Policy
	AOS     *aos.AOS

	// OptManager drives the managed optimizations (non-nil iff any are
	// configured); CodeLayout and SwPrefetch are the code-layout and
	// prefetch-injection optimizations when enabled.
	OptManager *opt.Manager
	CodeLayout *opt.CodeLayout
	SwPrefetch *opt.SwPrefetch

	GenMS   *genms.Collector
	GenCopy *gencopy.Collector

	// Obs is the observability layer, non-nil iff Options.Observe.
	Obs *obs.Observer

	rng    *rand.Rand
	rngSrc *countedSource

	// Lifecycle flags backing the Snapshot/Restore contract (see
	// snapshot.go): Restore requires a booted system that has not yet
	// run, and Resume must reattach tickers exactly once.
	booted   bool
	ran      bool
	attached bool
}

// countedSource wraps the deterministic PRNG source and counts draws,
// so a snapshot can record the stream position and a restore can
// replay the source to it. Int63 and Uint64 each advance the
// underlying source by exactly one step, so the count alone pins the
// position regardless of which method consumers called.
type countedSource struct {
	src   rand.Source64
	draws uint64
}

func (c *countedSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

func (c *countedSource) Uint64() uint64 {
	c.draws++
	return c.src.Uint64()
}

func (c *countedSource) Seed(seed int64) { c.src.Seed(seed) }

// userFilter gates hardware events on CPU privilege mode so that only
// application activity is sampled (§5.3: VM-internal events excluded).
type userFilter struct {
	sys *System
}

func (f userFilter) HardwareEvent(kind cache.EventKind, addr uint64) {
	if f.sys.VM.CPU.UserMode() {
		f.sys.Unit.HardwareEvent(kind, addr)
	}
}

// NewSystem builds a System over an already-populated universe (all
// classes, methods and bytecode defined and Layout() called). It is
// the legacy constructor: it panics on an invalid option combination.
// New code should use NewSystemOpts or NewSystemWith, which return the
// validation error instead.
func NewSystem(u *classfile.Universe, opts Options) *System {
	s, err := NewSystemOpts(u, opts)
	if err != nil {
		panic(fmt.Sprintf("core.NewSystem: %v (use NewSystemOpts to handle the error)", err))
	}
	return s
}

// NewSystemWith builds a System from functional options (see Option).
// It validates the combination and returns an error wrapping
// ErrBadOptions on a mis-wiring the struct form would once have
// accepted silently.
func NewSystemWith(u *classfile.Universe, options ...Option) (*System, error) {
	var o Options
	for _, fn := range options {
		fn(&o)
	}
	return NewSystemOpts(u, o)
}

// NewSystemOpts is the converged constructor both NewSystem and
// NewSystemWith funnel into: validate, resolve defaults, wire.
func NewSystemOpts(u *classfile.Universe, opts Options) (*System, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	s := &System{Opts: opts}
	s.rngSrc = &countedSource{src: rand.NewSource(opts.Seed).(rand.Source64)}
	s.rng = rand.New(s.rngSrc)
	s.VM = runtime.New(u, opts.Cache)

	// Sampling hardware and kernel module exist unconditionally (the
	// hardware is always on the chip); they cost nothing unless a
	// session is started. The event listener is only wired up when a
	// session can exist: without it, the memory hierarchy's hot path
	// skips event delivery on every miss (a nil check instead of an
	// interface call plus a privilege-mode test per event).
	s.Unit = pebs.NewUnit(s.VM.CPU, s.rng)
	s.Module = perfmon.NewModule(s.Unit, s.VM.CPU, perfmon.DefaultConfig())
	if opts.Monitoring {
		s.VM.Hier.SetListener(userFilter{s})
	}

	switch opts.Collector {
	case GenCopy:
		s.GenCopy = gencopy.New(s.VM, gencopy.DefaultConfig(opts.HeapLimit))
	default:
		s.GenMS = genms.New(s.VM, genms.DefaultConfig(opts.HeapLimit))
	}

	if opts.Monitoring {
		mcfg := monitor.DefaultConfig()
		if opts.MonitorConfig != nil {
			mcfg = *opts.MonitorConfig
		}
		mcfg.Auto = opts.SamplingInterval == 0
		mcfg.TrackFields = opts.TrackFields
		s.Monitor = monitor.New(s.VM, s.Module, mcfg)

		if optcfgs := opts.effectiveOptimizations(); len(optcfgs) > 0 {
			// The manager registers its monitor observer at exactly the
			// point the pre-framework coalloc.New registered its own —
			// monitor observer order is part of the byte-identity
			// contract the golden corpus pins.
			s.OptManager = opt.NewManager(s.Monitor)
			for _, oc := range optcfgs {
				switch oc.Kind {
				case opt.KindCoalloc:
					ccfg := coalloc.DefaultConfig()
					if oc.Coalloc != nil {
						ccfg = *oc.Coalloc
					}
					s.Policy = coalloc.NewPolicy(s.Monitor, ccfg)
					s.OptManager.Register(s.Policy)
					if s.GenMS != nil {
						s.GenMS.SetAdvisor(s.Policy)
						s.Monitor.SetClassifier(s.GenMS.ClassifyAddr)
					}
				case opt.KindCodeLayout:
					clcfg := opt.DefaultCodeLayoutConfig()
					if oc.CodeLayout != nil {
						clcfg = *oc.CodeLayout
					}
					clcfg = clcfg.WithDefaults()
					s.VM.Hier.EnableICache(clcfg.ICacheSize, clcfg.ICacheAssoc)
					s.VM.CPU.SetIFetch(s.VM.Hier.IFetch, opts.Cache.LineSize)
					s.CodeLayout = opt.NewCodeLayout(s.VM, s.Monitor, clcfg)
					s.OptManager.Register(s.CodeLayout)
				case opt.KindSwPrefetch:
					spcfg := opt.DefaultSwPrefetchConfig()
					if oc.SwPrefetch != nil {
						spcfg = *oc.SwPrefetch
					}
					spcfg = spcfg.WithDefaults()
					s.VM.Hier.EnableSwPrefetch(s.VM.CPU, spcfg.IssueCycles)
					s.SwPrefetch = opt.NewSwPrefetch(s.VM, s.Monitor, spcfg)
					s.OptManager.Register(s.SwPrefetch)
				}
			}
		}
	}

	if opts.Adaptive {
		acfg := aos.DefaultConfig()
		if opts.AOSConfig != nil {
			acfg = *opts.AOSConfig
		}
		s.AOS = aos.New(s.VM, acfg)
	}

	if opts.Sampling != nil {
		sam, err := s.VM.EnableSampling(*opts.Sampling)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		if opts.Monitoring {
			sam.SetSampleCounter(func() uint64 { return s.Unit.Stats().SamplesTaken })
		}
	}

	if opts.Observe {
		s.attachObserver(opts.TraceCapacity)
	}
	return s, nil
}

// attachObserver builds the observability layer and wires it through
// every subsystem that exists under the current options. The observer
// is passive — it never charges simulated cycles — so attaching it
// changes no measured result (pinned by TestObserveCycleIdentical).
func (s *System) attachObserver(traceCapacity int) {
	o := obs.New(traceCapacity)
	s.Obs = o

	now := s.VM.CPU.Cycles
	s.VM.Hier.SetObserver(o, now)
	s.Unit.SetObserver(o)
	s.Module.SetObserver(o)
	if s.GenMS != nil {
		s.GenMS.SetObserver(o)
	}
	if s.Monitor != nil {
		s.Monitor.SetObserver(o)
	}
	if s.Policy != nil {
		s.Policy.SetObserver(o)
	}
	if s.OptManager != nil {
		s.OptManager.SetObserver(o)
	}

	recompiles := o.Counter("vm.recompiles")
	s.VM.OnRecompile(func(methodID int) {
		recompiles.Add(1)
		var level uint64
		if s.VM.OptInfo(methodID) != nil {
			level = 1
		}
		o.Emit(obs.EvRecompile, now(), uint64(methodID), level, 0)
	})
}

// Hier returns the memory hierarchy (for statistics).
func (s *System) Hier() *cache.Hierarchy { return s.VM.Hier }

// Boot materializes the program's constant objects, builds the
// dispatch tables and compiles every method under the given plan.
// materialize may be nil for programs without reference constants.
func (s *System) Boot(plan runtime.CompilePlan, materialize func(vm *runtime.VM)) error {
	if materialize != nil {
		materialize(s.VM)
	}
	s.VM.BuildDispatch()
	if err := s.VM.CompileAll(plan); err != nil {
		return err
	}
	s.VM.MarkBootComplete()
	s.booted = true
	return nil
}

// Run executes the entry method to completion (or the cycle budget)
// with monitoring configured per the options. It is a thin wrapper
// over RunContext with a background context.
func (s *System) Run(entry *classfile.Method, maxCycles uint64) error {
	return s.RunContext(context.Background(), entry, maxCycles)
}

// RunContext executes the entry method to completion (or the cycle
// budget), aborting early if ctx is cancelled. Cancellation is
// cooperative: the VM polls the context at safepoints (the run loop's
// scheduling points, at least every runtime.CancelCheckCycles
// simulated cycles) and returns an error wrapping ctx.Err(). A context
// that is never cancelled leaves the simulation cycle-identical to
// Run. Statistics are reset at the start of the run so boot work is
// excluded, matching the paper's measurement methodology.
func (s *System) RunContext(ctx context.Context, entry *classfile.Method, maxCycles uint64) error {
	_, err := s.runFrom(ctx, entry, maxCycles, 0)
	return err
}

// RunToCycle executes like RunContext but pauses — returning
// (true, nil) — once the simulated cycle counter reaches pauseAt (0
// means no pause point). A paused system sits at a VM scheduling point
// with its monitoring session still live; it is the state Snapshot is
// designed to capture. Resume with ResumeContext. A run paused and
// resumed is cycle- and byte-identical to one that never paused
// (pinned by the snapshot determinism tests). If the program finishes
// before pauseAt, RunToCycle returns (false, err) like RunContext —
// including the end-of-run monitor flush.
func (s *System) RunToCycle(ctx context.Context, entry *classfile.Method, maxCycles, pauseAt uint64) (paused bool, err error) {
	return s.runFrom(ctx, entry, maxCycles, pauseAt)
}

func (s *System) runFrom(ctx context.Context, entry *classfile.Method, maxCycles, pauseAt uint64) (bool, error) {
	if done := ctx.Done(); done != nil {
		s.VM.SetCancel(func() error {
			select {
			case <-done:
				return ctx.Err()
			default:
				return nil
			}
		})
		defer s.VM.SetCancel(nil)
	}
	// Cold caches and clean counters at program start.
	s.VM.Hier.Flush()
	s.VM.Hier.ResetStats()
	s.ran = true

	if s.Opts.Monitoring {
		pcfg := pebs.DefaultConfig()
		pcfg.Event = s.Opts.Event
		if s.Opts.SamplingInterval != 0 {
			pcfg.Interval = s.Opts.SamplingInterval
		} else {
			// Auto mode: start from a fine interval so the controller
			// has samples to steer with early in the (short, scaled)
			// run; it widens the interval as soon as the rate target
			// is exceeded.
			pcfg.Interval = 10_000
		}
		if err := s.Module.ConfigureSession(pcfg); err != nil {
			return false, fmt.Errorf("core: %w", err)
		}
		s.Module.Start()
		s.Monitor.Attach()
	}
	if s.AOS != nil {
		s.AOS.Attach()
	}
	s.attached = true

	if err := s.VM.Start(entry); err != nil {
		return false, err
	}
	paused, err := s.VM.RunUntil(maxCycles, pauseAt)
	if paused {
		// Mid-run pause: the session stays live so a snapshot captures
		// it; no stop, no flush.
		return true, nil
	}
	if s.Opts.Monitoring {
		s.Module.Stop()
		s.Monitor.Flush()
	}
	return false, err
}

// ResumeContext continues execution on a system that was paused by
// RunToCycle or rebuilt by RestoreSystem/System.Restore. Unlike
// RunContext it does not flush caches, reset statistics, reconfigure
// the sampling session, or restart the program — all of that state is
// exactly where the pause (or the restored snapshot) left it. On a
// restored system the monitor and AOS tickers are reattached without
// touching their restored deadlines. The run then proceeds to
// completion (or the cycle budget) with the usual end-of-run monitor
// flush.
func (s *System) ResumeContext(ctx context.Context, maxCycles uint64) error {
	if done := ctx.Done(); done != nil {
		s.VM.SetCancel(func() error {
			select {
			case <-done:
				return ctx.Err()
			default:
				return nil
			}
		})
		defer s.VM.SetCancel(nil)
	}
	if !s.attached {
		if s.Monitor != nil {
			s.Monitor.Reattach()
		}
		if s.AOS != nil {
			s.AOS.Reattach()
		}
		s.attached = true
	}
	s.ran = true
	err := s.VM.Run(maxCycles)
	if s.Opts.Monitoring {
		s.Module.Stop()
		s.Monitor.Flush()
	}
	return err
}

// SamplingEstimate extrapolates the full-run metrics of a sampled run
// from its measured regions (Options.Sampling non-nil). ok is false on
// an exact-mode system. Call after the run completes; a mid-run call
// extrapolates from the regions measured so far.
func (s *System) SamplingEstimate() (est stats.Estimate, ok bool) {
	sam := s.VM.Sampler()
	if sam == nil {
		return stats.Estimate{}, false
	}
	return sam.Estimate(), true
}

// CoallocPairs returns the number of co-allocated pairs (0 when the
// collector is not GenMS).
func (s *System) CoallocPairs() uint64 {
	if s.GenMS == nil {
		return 0
	}
	return s.GenMS.Stats().CoallocPairs
}

// GCStats returns (minor, major) collection counts.
func (s *System) GCStats() (uint64, uint64) {
	return s.VM.Collector.Collections()
}

// OptStats returns one decision/revert counter row per managed
// optimization, in registration order (nil when none are configured).
func (s *System) OptStats() []opt.KindStats {
	if s.OptManager == nil {
		return nil
	}
	return s.OptManager.Stats()
}
