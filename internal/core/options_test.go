package core_test

import (
	"errors"
	"testing"

	"hpmvm/internal/core"
	"hpmvm/internal/hw/cache"
	"hpmvm/internal/monitor"
	"hpmvm/internal/vm/aos"
	"hpmvm/internal/vm/classfile"
)

func TestValidateRejectsBadCombos(t *testing.T) {
	mcfg := monitor.DefaultConfig()
	acfg := aos.DefaultConfig()
	cases := []struct {
		name string
		opts core.Options
	}{
		{"unknown collector", core.Options{Collector: core.CollectorKind(99)}},
		{"coalloc without monitoring", core.Options{Coalloc: true}},
		{"coalloc on gencopy", core.Options{Collector: core.GenCopy, Monitoring: true, Coalloc: true}},
		{"event out of range", core.Options{Event: cache.NumEventKinds}},
		{"negative trace capacity", core.Options{TraceCapacity: -1}},
		{"monitor config without monitoring", core.Options{MonitorConfig: &mcfg}},
		{"aos config without adaptive", core.Options{AOSConfig: &acfg}},
	}
	for _, tc := range cases {
		err := tc.opts.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted the combination", tc.name)
			continue
		}
		if !errors.Is(err, core.ErrBadOptions) {
			t.Errorf("%s: error %v does not wrap core.ErrBadOptions", tc.name, err)
		}
	}

	good := []core.Options{
		{},
		{Monitoring: true, SamplingInterval: 25_000, Coalloc: true},
		{Collector: core.GenCopy, Monitoring: true},
		{Adaptive: true},
	}
	for _, o := range good {
		if err := o.Validate(); err != nil {
			t.Errorf("valid options %+v rejected: %v", o, err)
		}
	}
}

// TestNewSystemWithEquivalence pins that the functional-options
// constructor and the struct constructor build behaviourally identical
// systems: same canonical fingerprint going in, same results and cycle
// count coming out.
func TestNewSystemWithEquivalence(t *testing.T) {
	structOpts := core.Options{
		HeapLimit:        8 << 20,
		Monitoring:       true,
		SamplingInterval: 25_000,
		Coalloc:          true,
		Seed:             42,
		TrackFields:      []string{"Node::next"},
	}
	funcOpts := []core.Option{
		core.WithHeapLimit(8 << 20),
		core.WithMonitoring(25_000),
		core.WithCoalloc(),
		core.WithSeed(42),
		core.WithTrackFields("Node::next"),
	}

	run := func(mk func(u *classfile.Universe) (*core.System, error)) (*core.System, uint64) {
		u, main := buildListProgram(t, 3000)
		sys, err := mk(u)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Boot(nil, nil); err != nil {
			t.Fatal(err)
		}
		if err := sys.Run(main, 500_000_000); err != nil {
			t.Fatal(err)
		}
		return sys, sys.VM.Cycles()
	}

	sysA, cyclesA := run(func(u *classfile.Universe) (*core.System, error) {
		return core.NewSystemOpts(u, structOpts)
	})
	sysB, cyclesB := run(func(u *classfile.Universe) (*core.System, error) {
		return core.NewSystemWith(u, funcOpts...)
	})

	if cyclesA != cyclesB {
		t.Errorf("cycles differ: struct %d, functional %d", cyclesA, cyclesB)
	}
	ra, rb := sysA.VM.Results(), sysB.VM.Results()
	if len(ra) != len(rb) {
		t.Fatalf("result lengths differ: %v vs %v", ra, rb)
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Errorf("result[%d] differs: %d vs %d", i, ra[i], rb[i])
		}
	}

	var applied core.Options
	for _, o := range funcOpts {
		o(&applied)
	}
	if applied.Fingerprint() != structOpts.Fingerprint() {
		t.Errorf("functional options fingerprint differs from struct options:\n %s\n %s",
			applied.CanonicalString(), structOpts.CanonicalString())
	}
}

func TestNewSystemWithRejectsBadCombo(t *testing.T) {
	u, _ := buildListProgram(t, 10)
	_, err := core.NewSystemWith(u, core.WithCollector(core.GenCopy), core.WithMonitoring(0), core.WithCoalloc())
	if !errors.Is(err, core.ErrBadOptions) {
		t.Fatalf("NewSystemWith(gencopy+coalloc) error = %v, want core.ErrBadOptions", err)
	}
	_, err = core.NewSystemWith(u, core.WithCoalloc())
	if !errors.Is(err, core.ErrBadOptions) {
		t.Fatalf("NewSystemWith(coalloc without monitoring) error = %v, want core.ErrBadOptions", err)
	}
}
