package core_test

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"hpmvm/internal/core"
	"hpmvm/internal/obs"
	"hpmvm/internal/opt"
	"hpmvm/internal/vm/classfile"
)

// The keystone of the Snapshot/Restore contract: running to cycle C,
// snapshotting, restoring into a freshly built-and-booted System and
// running to the end must be byte-identical to the uninterrupted run —
// across both collectors, with and without monitoring/co-allocation,
// and through the AOS recompile-replay path. "Byte-identical" is
// checked at the strongest level available: the final whole-system
// snapshots of both runs must encode to equal bytes, which covers
// every register, page, cache line, counter, series sample and trace
// event in the simulation.

const (
	snapNodes  = 40_000
	snapPause  = 1_500_000
	snapBudget = 500_000_000
)

func snapConfigs() map[string]core.Options {
	return map[string]core.Options{
		"genms-plain": {HeapLimit: 8 << 20, Observe: true},
		"genms-monitoring": {HeapLimit: 8 << 20,
			Monitoring: true, SamplingInterval: 1000, Observe: true},
		"genms-monitoring-coalloc": {HeapLimit: 8 << 20,
			Monitoring: true, SamplingInterval: 500, Coalloc: true, Observe: true},
		"gencopy-monitoring": {Collector: core.GenCopy, HeapLimit: 12 << 20,
			Monitoring: true, SamplingInterval: 1000, Observe: true},
		"genms-adaptive": {HeapLimit: 8 << 20,
			Monitoring: true, SamplingInterval: 1000, Adaptive: true, Observe: true},
		// An eager swprefetch config (no sample floor, 1-poll window) so
		// the pause lands with live detector streams, an installed site
		// table and possibly an open decision — the opt/swprefetch and
		// cache sw-tail snapshot sections must carry all of it.
		"genms-monitoring-swprefetch": {HeapLimit: 8 << 20,
			Monitoring: true, SamplingInterval: 500, Observe: true,
			Optimizations: []core.OptimizationConfig{{Kind: opt.KindSwPrefetch,
				SwPrefetch: &opt.SwPrefetchConfig{MinSamples: 1, EvalPeriods: 1, MinConfidence: 2}}}},
	}
}

// buildSnapSystem builds and boots a list-workload system. Adaptive
// configurations boot baseline-everywhere so the AOS recompiles
// mid-run (exercising the recompile-log replay on restore); the rest
// boot under the all-optimized plan.
func buildSnapSystem(t *testing.T, opts core.Options) (*core.System, *classfile.Method) {
	t.Helper()
	u, main := buildListProgram(t, snapNodes)
	sys, err := core.NewSystemOpts(u, opts)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Adaptive {
		if err := sys.Boot(nil, nil); err != nil {
			t.Fatal(err)
		}
	} else {
		if err := sys.Boot(allOpt(2)(u), nil); err != nil {
			t.Fatal(err)
		}
	}
	return sys, main
}

// finalImage captures a finished system's full state as bytes.
func finalImage(t *testing.T, sys *core.System) []byte {
	t.Helper()
	sn, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return core.EncodeSnapshot(sn)
}

func checkListResults(t *testing.T, sys *core.System) {
	t.Helper()
	want := int64(snapNodes) * (snapNodes - 1) / 2
	got := sys.VM.Results()
	if len(got) != 2 || got[0] != want || got[1] != want {
		t.Fatalf("results = %v, want [%d %d]", got, want, want)
	}
}

// pausedSnapshot runs a fresh system to the pause cycle and captures
// it, returning the encoded snapshot.
func pausedSnapshot(t *testing.T, opts core.Options) []byte {
	t.Helper()
	origin, main := buildSnapSystem(t, opts)
	paused, err := origin.RunToCycle(context.Background(), main, snapBudget, snapPause)
	if err != nil {
		t.Fatal(err)
	}
	if !paused {
		t.Fatalf("program finished before pause cycle %d", snapPause)
	}
	sn, err := origin.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return core.EncodeSnapshot(sn)
}

func TestSnapshotRestoreByteIdentical(t *testing.T) {
	for name, opts := range snapConfigs() {
		opts := opts
		t.Run(name, func(t *testing.T) {
			ctx := context.Background()

			// Uninterrupted reference run.
			cold, main := buildSnapSystem(t, opts)
			if err := cold.RunContext(ctx, main, snapBudget); err != nil {
				t.Fatal(err)
			}
			checkListResults(t, cold)

			// Pause at C, snapshot, restore into a fresh system, resume.
			enc := pausedSnapshot(t, opts)
			warm, _ := buildSnapSystem(t, opts)
			if _, err := core.RestoreSystem(warm, enc); err != nil {
				t.Fatal(err)
			}
			// The pause lands at the first scheduling point at or after
			// pauseAt (instructions are atomic), so the restored counter
			// is >= the requested cycle, never behind it.
			if warm.VM.Cycles() < snapPause {
				t.Fatalf("restored cycle counter = %d, want >= %d", warm.VM.Cycles(), snapPause)
			}
			if err := warm.ResumeContext(ctx, snapBudget); err != nil {
				t.Fatal(err)
			}
			checkListResults(t, warm)

			if c, w := cold.VM.Cycles(), warm.VM.Cycles(); c != w {
				t.Errorf("final cycles: cold %d, warm %d", c, w)
			}
			coldImg := finalImage(t, cold)
			warmImg := finalImage(t, warm)
			if !bytes.Equal(coldImg, warmImg) {
				reportImageDiff(t, coldImg, warmImg)
			}
			// An exact restore must not leave a restore marker: the warm
			// trace has to be indistinguishable from the cold one.
			for _, e := range warm.Obs.Events() {
				if e.Kind == obs.EvSnapshotRestored {
					t.Error("exact restore emitted EvSnapshotRestored")
				}
			}
		})
	}
}

// reportImageDiff decodes both images and names the first component
// whose bytes differ, so a determinism regression points at a layer
// instead of a byte offset.
func reportImageDiff(t *testing.T, coldImg, warmImg []byte) {
	t.Helper()
	coldSn, err1 := core.DecodeSnapshot(coldImg)
	warmSn, err2 := core.DecodeSnapshot(warmImg)
	if err1 != nil || err2 != nil {
		t.Fatalf("final images differ and decode failed: %v / %v", err1, err2)
	}
	if coldSn.RngDraws != warmSn.RngDraws {
		t.Errorf("rng draws: cold %d, warm %d", coldSn.RngDraws, warmSn.RngDraws)
	}
	for i := range coldSn.Components {
		if i >= len(warmSn.Components) {
			break
		}
		c, w := coldSn.Components[i], warmSn.Components[i]
		if c.Component != w.Component {
			t.Errorf("component %d: cold %q, warm %q", i, c.Component, w.Component)
			continue
		}
		if !bytes.Equal(c.Data, w.Data) {
			t.Errorf("component %q state differs (%d vs %d bytes)", c.Component, len(c.Data), len(w.Data))
		}
	}
	t.Fatal("cold and warm final snapshots differ")
}

func TestSnapshotDivergentRestore(t *testing.T) {
	base := core.Options{HeapLimit: 8 << 20, Monitoring: true, SamplingInterval: 1000, Observe: true}
	enc := pausedSnapshot(t, base)

	div := base
	div.SamplingInterval = 2000
	warm, _ := buildSnapSystem(t, div)
	sn, err := core.RestoreSystem(warm, enc)
	if err != nil {
		t.Fatal(err)
	}
	if sn.SamplingInterval != 1000 {
		t.Errorf("snapshot interval = %d, want 1000", sn.SamplingInterval)
	}
	if got := warm.Module.Interval(); got != 2000 {
		t.Errorf("retargeted interval = %d, want 2000", got)
	}
	var marked bool
	for _, e := range warm.Obs.Events() {
		if e.Kind == obs.EvSnapshotRestored {
			marked = true
			if e.Arg1 != 1000 || e.Arg2 != 2000 {
				t.Errorf("EvSnapshotRestored args = (%d,%d), want (1000,2000)", e.Arg1, e.Arg2)
			}
		}
	}
	if !marked {
		t.Error("divergent restore did not emit EvSnapshotRestored")
	}
	if err := warm.ResumeContext(context.Background(), snapBudget); err != nil {
		t.Fatal(err)
	}
	checkListResults(t, warm)
}

func TestSnapshotMismatchSentinel(t *testing.T) {
	base := core.Options{HeapLimit: 8 << 20, Monitoring: true, SamplingInterval: 1000}
	enc := pausedSnapshot(t, base)

	for name, bad := range map[string]core.Options{
		"collector": {Collector: core.GenCopy, HeapLimit: 12 << 20,
			Monitoring: true, SamplingInterval: 1000},
		"heap-limit": {HeapLimit: 16 << 20, Monitoring: true, SamplingInterval: 1000},
		"seed":       {HeapLimit: 8 << 20, Monitoring: true, SamplingInterval: 1000, Seed: 7},
		"coalloc": {HeapLimit: 8 << 20,
			Monitoring: true, SamplingInterval: 1000, Coalloc: true},
		"no-monitoring": {HeapLimit: 8 << 20},
	} {
		t.Run(name, func(t *testing.T) {
			sys, _ := buildSnapSystem(t, bad)
			if _, err := core.RestoreSystem(sys, enc); !errors.Is(err, core.ErrSnapshotMismatch) {
				t.Fatalf("restore err = %v, want ErrSnapshotMismatch", err)
			}
		})
	}

	// Sampling interval alone is prefix-eligible, never a mismatch.
	t.Run("interval-is-prefix-eligible", func(t *testing.T) {
		div := base
		div.SamplingInterval = 4000
		sys, _ := buildSnapSystem(t, div)
		if _, err := core.RestoreSystem(sys, enc); err != nil {
			t.Fatalf("interval-only divergence should restore, got %v", err)
		}
	})
}

func TestSnapshotRestoreLifecycleErrors(t *testing.T) {
	base := core.Options{HeapLimit: 8 << 20}
	enc := pausedSnapshot(t, base)

	// A system that already ran refuses to restore.
	ran, main := buildSnapSystem(t, base)
	if err := ran.RunContext(context.Background(), main, snapBudget); err != nil {
		t.Fatal(err)
	}
	if _, err := core.RestoreSystem(ran, enc); err == nil {
		t.Fatal("restore into an already-run system succeeded")
	}

	// Corrupt and truncated payloads fail with decode errors, not
	// panics or partial restores.
	fresh, _ := buildSnapSystem(t, base)
	if _, err := core.RestoreSystem(fresh, enc[:len(enc)/2]); err == nil {
		t.Fatal("truncated snapshot restored")
	}
	garbled := bytes.Clone(enc)
	garbled[0] ^= 0xff
	if _, err := core.RestoreSystem(fresh, garbled); err == nil {
		t.Fatal("garbled snapshot restored")
	}
}

func TestSnapshotEncodeDecodeRoundTrip(t *testing.T) {
	enc := pausedSnapshot(t, core.Options{HeapLimit: 8 << 20, Monitoring: true, SamplingInterval: 1000})
	sn, err := core.DecodeSnapshot(enc)
	if err != nil {
		t.Fatal(err)
	}
	if sn.Version != core.SnapshotVersion || sn.Cycle < snapPause {
		t.Fatalf("decoded header: version %d cycle %d", sn.Version, sn.Cycle)
	}
	if !bytes.Equal(core.EncodeSnapshot(sn), enc) {
		t.Fatal("encode(decode(x)) != x")
	}
}
