package core

import (
	"errors"
	"fmt"
	"math/rand"

	"hpmvm/internal/obs"
	"hpmvm/internal/snap"
)

// This file is the composition layer of the Snapshot/Restore contract
// (package snap): System.Snapshot captures every live component's
// state into one versioned, deterministically encoded container, and
// System.Restore rebuilds a freshly booted System to that exact point.
//
// The contract is replay-based: a snapshot holds only mutable state.
// Code, dispatch tables and class metadata are reproduced by booting a
// fresh System for the same (workload, options) and replaying the
// VM's post-boot recompile log; Restore therefore requires a booted,
// not-yet-run receiver. Component order is significant and fixed by
// System.components: the VM restores first (the replay rebuilds the
// code layout), then memory and CPU (overwriting the replay's writes
// with the origin's exact image), then the devices and policies, and
// the observer last (overwriting any events the replay emitted).

// SnapshotVersion is the container format version.
const SnapshotVersion uint32 = 1

// snapshotMagic leads the binary encoding.
const snapshotMagic = "hpmvmsnap"

// ErrSnapshotMismatch is the sentinel wrapped when a snapshot is
// restored into a System whose options match neither the snapshot's
// exact fingerprint nor its prefix fingerprint. Callers distinguish
// configuration mismatches from corrupt payloads with
// errors.Is(err, core.ErrSnapshotMismatch).
var ErrSnapshotMismatch = errors.New("snapshot does not match system options")

// Snapshot is a whole-system checkpoint: the component states plus the
// identity needed to validate a restore target. Fingerprint ties the
// snapshot to the exact resolved Options of its origin;
// PrefixFingerprint to the origin's options minus the sampling
// interval (see Options.PrefixFingerprint). Tag is free-form caller
// identity — the bench engine stores the workload name and refuses to
// warm-start a different workload from it.
type Snapshot struct {
	Version           uint32
	Fingerprint       string
	PrefixFingerprint string
	Tag               string

	// Cycle is the simulated cycle the snapshot was taken at.
	Cycle uint64
	// RngDraws is the position of the deterministic PRNG stream.
	RngDraws uint64
	// SamplingInterval is the origin's configured hardware sampling
	// interval (0 in auto mode or without monitoring).
	SamplingInterval uint64

	Components []snap.ComponentState
}

// component pairs a checkpointable with its registered name.
type component struct {
	name string
	c    snap.Checkpointable
}

// components returns the live checkpointable components in capture
// order — which is also the restore order (see the file comment).
func (s *System) components() []component {
	list := []component{
		{"vm/runtime", s.VM},
		{"hw/mem", s.VM.Mem},
		{"hw/cpu", s.VM.CPU},
		{"hw/cache", s.VM.Hier},
		{"hw/pebs", s.Unit},
		{"kernel/perfmon", s.Module},
	}
	if s.GenMS != nil {
		list = append(list, component{"gc/genms", s.GenMS})
	}
	if s.GenCopy != nil {
		list = append(list, component{"gc/gencopy", s.GenCopy})
	}
	if s.Monitor != nil {
		list = append(list, component{"monitor", s.Monitor})
	}
	if s.Policy != nil {
		list = append(list, component{"coalloc", s.Policy})
	}
	if s.CodeLayout != nil {
		list = append(list, component{"opt/codelayout", s.CodeLayout})
	}
	if s.SwPrefetch != nil {
		list = append(list, component{"opt/swprefetch", s.SwPrefetch})
	}
	if s.AOS != nil {
		list = append(list, component{"vm/aos", s.AOS})
	}
	if s.Obs != nil {
		list = append(list, component{"obs", s.Obs})
	}
	return list
}

// Snapshot captures the full simulation state. The system should be at
// a scheduling point — freshly paused by RunToCycle, or finished — so
// no component is mid-operation. After the capture an EvSnapshotTaken
// event is emitted into the origin's own trace (never into the
// snapshot), so an exact restore reproduces the uninterrupted run's
// trace byte for byte.
func (s *System) Snapshot() (*Snapshot, error) {
	if !s.booted {
		return nil, fmt.Errorf("core: snapshot of an unbooted system")
	}
	if s.Opts.Sampling != nil {
		// The region scheduler's phase state is not a snapshot
		// component, and sampled cycle counts are estimates a restored
		// exact run could never line up with; sampled runs are cheap to
		// redo by construction, so they opt out of the contract.
		return nil, fmt.Errorf("core: snapshot of a sampled-simulation system is not supported")
	}
	comps := s.components()
	sn := &Snapshot{
		Version:           SnapshotVersion,
		Fingerprint:       s.Opts.Fingerprint(),
		PrefixFingerprint: s.Opts.PrefixFingerprint(),
		Cycle:             s.VM.Cycles(),
		RngDraws:          s.rngSrc.draws,
		SamplingInterval:  s.Opts.SamplingInterval,
		Components:        make([]snap.ComponentState, 0, len(comps)),
	}
	for _, c := range comps {
		sn.Components = append(sn.Components, c.c.Snapshot())
	}
	if s.Obs != nil {
		s.Obs.Emit(obs.EvSnapshotTaken, s.VM.Cycles(), sn.Cycle, uint64(len(sn.Components)), 0)
	}
	return sn, nil
}

// Restore rebuilds the receiver to the snapshot's exact point. The
// receiver must be freshly constructed (NewSystemOpts) and booted
// (Boot) for the same workload, and must not have run.
//
// Two restore modes exist:
//
//   - Exact: the snapshot's Fingerprint equals the system's. The
//     restored system is byte-identical to the origin; continuing it
//     with ResumeContext reproduces the uninterrupted run exactly. No
//     event is emitted.
//   - Divergent (prefix): only the PrefixFingerprint matches — the
//     options differ in the sampling interval alone. The warm prefix
//     is reused and the system's own interval is applied from here on
//     (a "retarget" experiment: NOT byte-identical to a cold run at
//     that interval, since the prefix was sampled at the origin's).
//     An EvSnapshotRestored event records the retarget.
//
// Anything else fails with an error wrapping ErrSnapshotMismatch.
func (s *System) Restore(sn *Snapshot) error {
	if sn.Version != SnapshotVersion {
		return fmt.Errorf("core: %w: snapshot version %d, supported %d",
			snap.ErrDecode, sn.Version, SnapshotVersion)
	}
	exact := sn.Fingerprint == s.Opts.Fingerprint()
	if !exact && sn.PrefixFingerprint != s.Opts.PrefixFingerprint() {
		return fmt.Errorf("core: %w (snapshot %.12s…, system %.12s…)",
			ErrSnapshotMismatch, sn.Fingerprint, s.Opts.Fingerprint())
	}
	if !s.booted {
		return fmt.Errorf("core: restore into an unbooted system")
	}
	if s.ran {
		return fmt.Errorf("core: restore into a system that has already run")
	}

	comps := s.components()
	byName := make(map[string]snap.ComponentState, len(sn.Components))
	for _, st := range sn.Components {
		if _, dup := byName[st.Component]; dup {
			return fmt.Errorf("core: %w: duplicate component %q", snap.ErrDecode, st.Component)
		}
		byName[st.Component] = st
	}
	if len(byName) != len(comps) {
		return fmt.Errorf("core: %w: snapshot has %d components, system has %d (options or observer mismatch)",
			ErrSnapshotMismatch, len(byName), len(comps))
	}
	for _, c := range comps {
		if _, ok := byName[c.name]; !ok {
			return fmt.Errorf("core: %w: snapshot missing component %q", ErrSnapshotMismatch, c.name)
		}
	}

	// Reposition the PRNG stream before any component runs: a divergent
	// restore's SetInterval below may draw from it.
	src := rand.NewSource(s.Opts.Seed).(rand.Source64)
	for i := uint64(0); i < sn.RngDraws; i++ {
		src.Uint64()
	}
	s.rngSrc.src = src
	s.rngSrc.draws = sn.RngDraws

	for _, c := range comps {
		if err := c.c.Restore(byName[c.name]); err != nil {
			return fmt.Errorf("core: restore %s: %w", c.name, err)
		}
	}

	if !exact {
		// Retarget: apply this system's own sampling interval on top of
		// the shared prefix. In auto mode (interval 0) the restored
		// interval stands and the monitor's controller takes over.
		if s.Opts.Monitoring && s.Opts.SamplingInterval != 0 {
			s.Module.SetInterval(s.Opts.SamplingInterval)
		}
		if s.Obs != nil {
			s.Obs.Emit(obs.EvSnapshotRestored, s.VM.Cycles(),
				sn.Cycle, sn.SamplingInterval, s.Opts.SamplingInterval)
		}
	}
	return nil
}

// EncodeSnapshot serializes sn into the deterministic binary container
// format: equal snapshots encode to equal bytes.
func EncodeSnapshot(sn *Snapshot) []byte {
	var w snap.Writer
	w.String(snapshotMagic)
	w.U32(sn.Version)
	w.String(sn.Fingerprint)
	w.String(sn.PrefixFingerprint)
	w.String(sn.Tag)
	w.U64(sn.Cycle)
	w.U64(sn.RngDraws)
	w.U64(sn.SamplingInterval)
	w.U64(uint64(len(sn.Components)))
	for _, st := range sn.Components {
		w.State(st)
	}
	return w.Bytes()
}

// DecodeSnapshot parses a container produced by EncodeSnapshot.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	r := snap.NewReader(data)
	if magic := r.String(); r.Err() == nil && magic != snapshotMagic {
		return nil, fmt.Errorf("core: %w: bad snapshot magic %q", snap.ErrDecode, magic)
	}
	sn := &Snapshot{}
	sn.Version = r.U32()
	if r.Err() == nil && sn.Version != SnapshotVersion {
		return nil, fmt.Errorf("core: %w: snapshot version %d, supported %d",
			snap.ErrDecode, sn.Version, SnapshotVersion)
	}
	sn.Fingerprint = r.String()
	sn.PrefixFingerprint = r.String()
	sn.Tag = r.String()
	sn.Cycle = r.U64()
	sn.RngDraws = r.U64()
	sn.SamplingInterval = r.U64()
	n := r.U64()
	sn.Components = make([]snap.ComponentState, 0, n)
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		sn.Components = append(sn.Components, r.State())
	}
	if err := r.Close(); err != nil {
		return nil, err
	}
	return sn, nil
}

// RestoreSystem decodes an encoded snapshot and restores it into sys —
// the one-call path the serve layer and bench engine use.
func RestoreSystem(sys *System, data []byte) (*Snapshot, error) {
	sn, err := DecodeSnapshot(data)
	if err != nil {
		return nil, err
	}
	if err := sys.Restore(sn); err != nil {
		return nil, err
	}
	return sn, nil
}
