package core

import (
	"reflect"
	"testing"

	"hpmvm/internal/coalloc"
	"hpmvm/internal/hw/cache"
	"hpmvm/internal/monitor"
	"hpmvm/internal/opt"
	"hpmvm/internal/vm/aos"
	"hpmvm/internal/vm/runtime"
)

// fullBase returns an Options value with every master switch on, so
// every field is live (nothing is cleared by the canonical gating) and
// a mutation of any behaviour-relevant field must perturb the hash.
func fullBase() Options {
	return Options{
		Cache:            cache.DefaultP4(),
		Collector:        GenMS,
		HeapLimit:        32 << 20,
		Monitoring:       true,
		SamplingInterval: 25_000,
		Event:            cache.EventL1Miss,
		Coalloc:          true,
		Adaptive:         true,
		Seed:             7,
		TrackFields:      []string{"String::value"},
		// A codelayout entry (not a coalloc one: that would fold into the
		// legacy Coalloc switch and mask its mutation) keeps the
		// optimization list live in the base hash.
		Optimizations: []OptimizationConfig{{Kind: opt.KindCodeLayout}},
	}
}

// mutate changes v (an addressable field value) to a different value,
// recursing into pointers and structs. Returns false if it found
// nothing mutable.
func mutate(v reflect.Value) bool {
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(!v.Bool())
		return true
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(v.Int() + 1)
		return true
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(v.Uint() + 1)
		return true
	case reflect.Float32, reflect.Float64:
		v.SetFloat(v.Float() + 1.5)
		return true
	case reflect.String:
		v.SetString(v.String() + "x")
		return true
	case reflect.Slice:
		v.Set(reflect.Append(v, reflect.Zero(v.Type().Elem())))
		return true
	case reflect.Pointer:
		elem := reflect.New(v.Type().Elem())
		if !mutate(elem.Elem()) {
			return false
		}
		v.Set(elem)
		return true
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if mutate(v.Field(i)) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// TestCanonicalFingerprintCoversEveryField walks Options by reflection
// and requires that mutating any field either changes the fingerprint
// or is explicitly listed in canonicalIgnored with its justification.
// A new Options field therefore cannot silently bypass the cache key:
// this test fails until the field is serialized or consciously waived.
func TestCanonicalFingerprintCoversEveryField(t *testing.T) {
	base := fullBase()
	h0 := base.Fingerprint()
	typ := reflect.TypeOf(base)
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		m := fullBase()
		fv := reflect.ValueOf(&m).Elem().Field(i)
		if !mutate(fv) {
			t.Fatalf("field %s: mutate found nothing to change — extend the helper", name)
		}
		h1 := m.Fingerprint()
		if _, ignored := canonicalIgnored[name]; ignored {
			if h1 != h0 {
				t.Errorf("field %s is declared passive (canonicalIgnored) but changed the fingerprint", name)
			}
			continue
		}
		if h1 == h0 {
			t.Errorf("field %s changed but the fingerprint did not — the cache would serve stale results; serialize it or add it to canonicalIgnored", name)
		}
	}
}

// TestCanonicalDefaultEquivalence pins the other half of the contract:
// values that resolve to the same behaviour hash identically.
func TestCanonicalDefaultEquivalence(t *testing.T) {
	mdef := monitor.DefaultConfig()
	cdef := coalloc.DefaultConfig()
	adef := aos.DefaultConfig()
	sdef := runtime.DefaultSamplingConfig()

	// The wiring overwrites Auto and TrackFields from the top-level
	// options, so differing values there are unreachable.
	mShadow := mdef
	mShadow.Auto = !mdef.Auto
	mShadow.TrackFields = []string{"unreachable"}

	cases := []struct {
		name string
		a, b Options
	}{
		{"zero vs explicit defaults",
			Options{},
			Options{Cache: cache.DefaultP4(), HeapLimit: 64 << 20}},
		{"nil vs default monitor config",
			Options{Monitoring: true, SamplingInterval: 1000},
			Options{Monitoring: true, SamplingInterval: 1000, MonitorConfig: &mdef}},
		{"monitor config differing only in overwritten fields",
			Options{Monitoring: true, SamplingInterval: 1000, MonitorConfig: &mdef},
			Options{Monitoring: true, SamplingInterval: 1000, MonitorConfig: &mShadow}},
		{"nil vs default coalloc config",
			Options{Monitoring: true, Coalloc: true},
			Options{Monitoring: true, Coalloc: true, CoallocConfig: &cdef}},
		{"nil vs default aos config",
			Options{Adaptive: true},
			Options{Adaptive: true, AOSConfig: &adef}},
		{"passive observer fields",
			Options{Seed: 3},
			Options{Seed: 3, Observe: true, TraceCapacity: 9999}},
		{"monitoring knobs unreachable when monitoring off",
			Options{},
			Options{SamplingInterval: 12345, Event: cache.EventDTLBMiss, TrackFields: []string{"A::b"}}},
		{"zero-value vs explicit-default sampling config",
			Options{Sampling: &runtime.SamplingConfig{}},
			Options{Sampling: &sdef}},
	}
	for _, tc := range cases {
		if ha, hb := tc.a.Fingerprint(), tc.b.Fingerprint(); ha != hb {
			t.Errorf("%s: fingerprints differ\n a=%s\n b=%s\n aStr=%s\n bStr=%s",
				tc.name, ha, hb, tc.a.CanonicalString(), tc.b.CanonicalString())
		}
	}

	// And the converse sanity check: a behaviour-relevant difference
	// must not collapse.
	a := Options{Seed: 1}
	b := Options{Seed: 2}
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("distinct seeds fingerprint identically")
	}

	// Sampling is semantic: exact (nil) and sampled (non-nil, even at
	// defaults) are different simulations and must not share cache keys.
	exact := Options{Seed: 1}
	sampled := Options{Seed: 1, Sampling: &runtime.SamplingConfig{}}
	if exact.Fingerprint() == sampled.Fingerprint() {
		t.Error("exact and sampled runs fingerprint identically — the run cache would serve estimates as exact results")
	}
	coarse := runtime.DefaultSamplingConfig()
	coarse.FFInstrs *= 2
	sampledCoarse := Options{Seed: 1, Sampling: &coarse}
	if sampled.Fingerprint() == sampledCoarse.Fingerprint() {
		t.Error("distinct sampling schedules fingerprint identically")
	}
}

// TestCanonicalOptimizationsEquivalence pins the cache-key contract of
// the generalized optimization list: the two spellings of co-allocation
// (legacy Coalloc switch, coalloc-kind entry) wire identical systems
// and must hash identically; codelayout configs resolve defaults before
// hashing; the empty list is the absence of the framework, so every
// pre-framework fingerprint survives the field's introduction.
func TestCanonicalOptimizationsEquivalence(t *testing.T) {
	ccfg := coalloc.DefaultConfig()
	clDef := opt.DefaultCodeLayoutConfig()
	clRes := clDef.WithDefaults()
	spDef := opt.DefaultSwPrefetchConfig()
	spRes := spDef.WithDefaults()

	equal := []struct {
		name string
		a, b Options
	}{
		{"legacy Coalloc vs coalloc-kind entry",
			Options{Monitoring: true, Coalloc: true},
			Options{Monitoring: true, Optimizations: []OptimizationConfig{{Kind: opt.KindCoalloc}}}},
		{"legacy CoallocConfig vs entry config",
			Options{Monitoring: true, Coalloc: true, CoallocConfig: &ccfg},
			Options{Monitoring: true, Optimizations: []OptimizationConfig{{Kind: opt.KindCoalloc, Coalloc: &ccfg}}}},
		{"both spellings at once vs one",
			Options{Monitoring: true, Coalloc: true,
				Optimizations: []OptimizationConfig{{Kind: opt.KindCoalloc}}},
			Options{Monitoring: true, Coalloc: true}},
		{"nil vs default codelayout config",
			Options{Monitoring: true, Optimizations: []OptimizationConfig{{Kind: opt.KindCodeLayout}}},
			Options{Monitoring: true, Optimizations: []OptimizationConfig{{Kind: opt.KindCodeLayout, CodeLayout: &clDef}}}},
		{"default vs defaults-resolved codelayout config",
			Options{Monitoring: true, Optimizations: []OptimizationConfig{{Kind: opt.KindCodeLayout, CodeLayout: &clDef}}},
			Options{Monitoring: true, Optimizations: []OptimizationConfig{{Kind: opt.KindCodeLayout, CodeLayout: &clRes}}}},
		{"nil vs default swprefetch config",
			Options{Monitoring: true, Optimizations: []OptimizationConfig{{Kind: opt.KindSwPrefetch}}},
			Options{Monitoring: true, Optimizations: []OptimizationConfig{{Kind: opt.KindSwPrefetch, SwPrefetch: &spDef}}}},
		{"default vs defaults-resolved swprefetch config",
			Options{Monitoring: true, Optimizations: []OptimizationConfig{{Kind: opt.KindSwPrefetch, SwPrefetch: &spDef}}},
			Options{Monitoring: true, Optimizations: []OptimizationConfig{{Kind: opt.KindSwPrefetch, SwPrefetch: &spRes}}}},
		{"nil vs empty optimization list",
			Options{Seed: 5},
			Options{Seed: 5, Optimizations: []OptimizationConfig{}}},
		{"entry order is canonicalized",
			Options{Monitoring: true, Optimizations: []OptimizationConfig{
				{Kind: opt.KindCodeLayout}, {Kind: opt.KindCoalloc}}},
			Options{Monitoring: true, Optimizations: []OptimizationConfig{
				{Kind: opt.KindCoalloc}, {Kind: opt.KindCodeLayout}}}},
	}
	for _, tc := range equal {
		if ha, hb := tc.a.Fingerprint(), tc.b.Fingerprint(); ha != hb {
			t.Errorf("%s: fingerprints differ\n aStr=%s\n bStr=%s",
				tc.name, tc.a.CanonicalString(), tc.b.CanonicalString())
		}
	}

	distinct := []struct {
		name string
		a, b Options
	}{
		{"codelayout presence",
			Options{Monitoring: true},
			Options{Monitoring: true, Optimizations: []OptimizationConfig{{Kind: opt.KindCodeLayout}}}},
		{"codelayout tuning",
			Options{Monitoring: true, Optimizations: []OptimizationConfig{{Kind: opt.KindCodeLayout}}},
			Options{Monitoring: true, Optimizations: []OptimizationConfig{{Kind: opt.KindCodeLayout,
				CodeLayout: &opt.CodeLayoutConfig{ICacheSize: 2 << 10}}}}},
		{"swprefetch presence",
			Options{Monitoring: true},
			Options{Monitoring: true, Optimizations: []OptimizationConfig{{Kind: opt.KindSwPrefetch}}}},
		{"swprefetch tuning",
			Options{Monitoring: true, Optimizations: []OptimizationConfig{{Kind: opt.KindSwPrefetch}}},
			Options{Monitoring: true, Optimizations: []OptimizationConfig{{Kind: opt.KindSwPrefetch,
				SwPrefetch: &opt.SwPrefetchConfig{Distance: 4}}}}},
		{"swprefetch vs codelayout entry",
			Options{Monitoring: true, Optimizations: []OptimizationConfig{{Kind: opt.KindSwPrefetch}}},
			Options{Monitoring: true, Optimizations: []OptimizationConfig{{Kind: opt.KindCodeLayout}}}},
		{"unknown kinds still perturb the hash",
			Options{Monitoring: true},
			Options{Monitoring: true, Optimizations: []OptimizationConfig{{Kind: "future"}}}},
	}
	for _, tc := range distinct {
		if tc.a.Fingerprint() == tc.b.Fingerprint() {
			t.Errorf("%s: fingerprints collapse\n aStr=%s\n bStr=%s",
				tc.name, tc.a.CanonicalString(), tc.b.CanonicalString())
		}
	}
}

// TestCanonicalStringStable pins that serialization is deterministic
// across invocations (map-free, ordered fields).
func TestCanonicalStringStable(t *testing.T) {
	o := fullBase()
	s1 := o.CanonicalString()
	s2 := o.CanonicalString()
	if s1 != s2 {
		t.Fatalf("canonical string unstable:\n%s\n%s", s1, s2)
	}
	if len(s1) == 0 {
		t.Fatal("empty canonical string")
	}
}
