package core

import (
	"errors"
	"fmt"
	"sort"

	"hpmvm/internal/coalloc"
	"hpmvm/internal/hw/cache"
	"hpmvm/internal/monitor"
	"hpmvm/internal/opt"
	"hpmvm/internal/vm/aos"
	"hpmvm/internal/vm/runtime"
)

// ErrBadOptions is the sentinel wrapped by every Options validation
// failure; callers distinguish configuration mistakes from run
// failures with errors.Is(err, core.ErrBadOptions).
var ErrBadOptions = errors.New("invalid options")

// OptimizationConfig selects one managed online optimization by kind,
// with an optional per-kind tuning config (nil selects the kind's
// defaults). Exactly the config matching Kind may be set.
type OptimizationConfig struct {
	// Kind is the optimization name: opt.KindCoalloc,
	// opt.KindCodeLayout or opt.KindSwPrefetch.
	Kind string
	// Coalloc tunes a coalloc-kind entry.
	Coalloc *coalloc.Config
	// CodeLayout tunes a codelayout-kind entry.
	CodeLayout *opt.CodeLayoutConfig
	// SwPrefetch tunes a swprefetch-kind entry.
	SwPrefetch *opt.SwPrefetchConfig
}

// effectiveOptimizations resolves the two configuration spellings into
// the list NewSystemOpts wires: the legacy Coalloc switch and a
// coalloc-kind entry merge into one leading coalloc entry (the policy
// always registers first, preserving the pre-framework observer
// order), and the remaining entries follow sorted by kind.
func (o Options) effectiveOptimizations() []OptimizationConfig {
	hasCoalloc := o.Coalloc
	coallocCfg := o.CoallocConfig
	var rest []OptimizationConfig
	for _, e := range o.Optimizations {
		if e.Kind == opt.KindCoalloc {
			hasCoalloc = true
			if e.Coalloc != nil {
				coallocCfg = e.Coalloc
			}
			continue
		}
		rest = append(rest, e)
	}
	sort.SliceStable(rest, func(i, j int) bool { return rest[i].Kind < rest[j].Kind })
	var out []OptimizationConfig
	if hasCoalloc {
		out = append(out, OptimizationConfig{Kind: opt.KindCoalloc, Coalloc: coallocCfg})
	}
	return append(out, rest...)
}

// Option is a functional setting applied by NewSystemWith. Options
// layer over the Options struct: every Option is a small mutation of
// an Options value, so the two construction styles are interchangeable
// and converge on the same validation path (Options.Validate).
type Option func(*Options)

// WithCache sets the memory-hierarchy geometry (default: the paper's
// P4, cache.DefaultP4).
func WithCache(cfg cache.Config) Option {
	return func(o *Options) { o.Cache = cfg }
}

// WithCollector selects the GC policy.
func WithCollector(k CollectorKind) Option {
	return func(o *Options) { o.Collector = k }
}

// WithHeapLimit sets the total heap budget in bytes.
func WithHeapLimit(bytes uint64) Option {
	return func(o *Options) { o.HeapLimit = bytes }
}

// WithMonitoring enables the PEBS unit, kernel module and collector
// thread at the given hardware sampling interval in events (0 selects
// the adaptive "auto" mode, §6.3).
func WithMonitoring(interval uint64) Option {
	return func(o *Options) {
		o.Monitoring = true
		o.SamplingInterval = interval
	}
}

// WithEvent selects the sampled hardware event (default: L1 misses).
func WithEvent(e cache.EventKind) Option {
	return func(o *Options) { o.Event = e }
}

// WithMonitorConfig overrides the collector-thread tuning.
func WithMonitorConfig(cfg monitor.Config) Option {
	return func(o *Options) { o.MonitorConfig = &cfg }
}

// WithCoalloc enables the HPM-guided co-allocation policy. Requires
// monitoring and the GenMS collector (validated).
func WithCoalloc() Option {
	return func(o *Options) { o.Coalloc = true }
}

// WithCoallocConfig enables co-allocation with explicit policy tuning.
func WithCoallocConfig(cfg coalloc.Config) Option {
	return func(o *Options) {
		o.Coalloc = true
		o.CoallocConfig = &cfg
	}
}

// WithCodeLayout enables the hot/cold code-layout optimization.
// Requires monitoring (validated).
func WithCodeLayout() Option {
	return func(o *Options) {
		o.Optimizations = append(o.Optimizations, OptimizationConfig{Kind: opt.KindCodeLayout})
	}
}

// WithCodeLayoutConfig enables code layout with explicit tuning.
func WithCodeLayoutConfig(cfg opt.CodeLayoutConfig) Option {
	return func(o *Options) {
		o.Optimizations = append(o.Optimizations,
			OptimizationConfig{Kind: opt.KindCodeLayout, CodeLayout: &cfg})
	}
}

// WithSwPrefetch enables the software prefetch-injection optimization.
// Requires monitoring (validated).
func WithSwPrefetch() Option {
	return func(o *Options) {
		o.Optimizations = append(o.Optimizations, OptimizationConfig{Kind: opt.KindSwPrefetch})
	}
}

// WithSwPrefetchConfig enables prefetch injection with explicit tuning.
func WithSwPrefetchConfig(cfg opt.SwPrefetchConfig) Option {
	return func(o *Options) {
		o.Optimizations = append(o.Optimizations,
			OptimizationConfig{Kind: opt.KindSwPrefetch, SwPrefetch: &cfg})
	}
}

// WithAdaptive enables the AOS sampler (plan recording mode).
func WithAdaptive() Option {
	return func(o *Options) { o.Adaptive = true }
}

// WithAOSConfig enables the AOS sampler with explicit tuning.
func WithAOSConfig(cfg aos.Config) Option {
	return func(o *Options) {
		o.Adaptive = true
		o.AOSConfig = &cfg
	}
}

// WithSampling enables sampled simulation with the given region
// schedule (zero fields select the defaults in
// runtime.DefaultSamplingConfig).
func WithSampling(cfg runtime.SamplingConfig) Option {
	return func(o *Options) { o.Sampling = &cfg }
}

// WithSeed sets the deterministic PRNG seed.
func WithSeed(seed int64) Option {
	return func(o *Options) { o.Seed = seed }
}

// WithTrackFields restricts the monitor's time series to the named
// fields ("Class::field").
func WithTrackFields(fields ...string) Option {
	return func(o *Options) { o.TrackFields = fields }
}

// WithObserver attaches the observability layer (package obs) with the
// given trace-ring capacity (0 selects obs.DefaultTraceCapacity). The
// observer is passive: it never charges simulated cycles.
func WithObserver(traceCapacity int) Option {
	return func(o *Options) {
		o.Observe = true
		o.TraceCapacity = traceCapacity
	}
}

// Validate reports whether the option combination is buildable. Every
// failure wraps ErrBadOptions. Both constructors (NewSystemOpts and
// NewSystemWith) run it, so an invalid combination — co-allocation
// without monitoring, or on the copying collector — is an error
// instead of a silently mis-wired System.
func (o Options) Validate() error {
	if o.Collector != GenMS && o.Collector != GenCopy {
		return fmt.Errorf("core: %w: unknown collector kind %d", ErrBadOptions, int(o.Collector))
	}
	if o.Coalloc && !o.Monitoring {
		return fmt.Errorf("core: %w: Coalloc requires Monitoring (the policy consumes HPM samples)", ErrBadOptions)
	}
	if o.Coalloc && o.Collector == GenCopy {
		return fmt.Errorf("core: %w: Coalloc requires the GenMS collector (GenCopy cannot co-allocate)", ErrBadOptions)
	}
	if o.Event < 0 || o.Event >= cache.NumEventKinds {
		return fmt.Errorf("core: %w: unknown hardware event kind %d", ErrBadOptions, int(o.Event))
	}
	if o.TraceCapacity < 0 {
		return fmt.Errorf("core: %w: negative TraceCapacity %d", ErrBadOptions, o.TraceCapacity)
	}
	if o.MonitorConfig != nil && !o.Monitoring {
		return fmt.Errorf("core: %w: MonitorConfig set without Monitoring", ErrBadOptions)
	}
	if o.CoallocConfig != nil && !o.Coalloc {
		return fmt.Errorf("core: %w: CoallocConfig set without Coalloc", ErrBadOptions)
	}
	if o.AOSConfig != nil && !o.Adaptive {
		return fmt.Errorf("core: %w: AOSConfig set without Adaptive", ErrBadOptions)
	}
	seen := make(map[string]bool, len(o.Optimizations))
	for i, e := range o.Optimizations {
		if seen[e.Kind] {
			return fmt.Errorf("core: %w: duplicate optimization kind %q", ErrBadOptions, e.Kind)
		}
		seen[e.Kind] = true
		switch e.Kind {
		case opt.KindCoalloc:
			if e.CodeLayout != nil {
				return fmt.Errorf("core: %w: coalloc optimization entry carries a CodeLayout config", ErrBadOptions)
			}
			if e.SwPrefetch != nil {
				return fmt.Errorf("core: %w: coalloc optimization entry carries a SwPrefetch config", ErrBadOptions)
			}
			if o.Coalloc {
				return fmt.Errorf("core: %w: both the legacy Coalloc switch and a coalloc optimization entry are set", ErrBadOptions)
			}
			if !o.Monitoring {
				return fmt.Errorf("core: %w: the coalloc optimization requires Monitoring (the policy consumes HPM samples)", ErrBadOptions)
			}
			if o.Collector == GenCopy {
				return fmt.Errorf("core: %w: the coalloc optimization requires the GenMS collector (GenCopy cannot co-allocate)", ErrBadOptions)
			}
		case opt.KindCodeLayout:
			if e.Coalloc != nil {
				return fmt.Errorf("core: %w: codelayout optimization entry carries a Coalloc config", ErrBadOptions)
			}
			if e.SwPrefetch != nil {
				return fmt.Errorf("core: %w: codelayout optimization entry carries a SwPrefetch config", ErrBadOptions)
			}
			if !o.Monitoring {
				return fmt.Errorf("core: %w: the codelayout optimization requires Monitoring (hotness comes from HPM samples)", ErrBadOptions)
			}
			if o.Sampling != nil {
				return fmt.Errorf("core: %w: the codelayout optimization is not supported in sampled mode (relocation changes the fetch cost model mid-run)", ErrBadOptions)
			}
		case opt.KindSwPrefetch:
			if e.Coalloc != nil {
				return fmt.Errorf("core: %w: swprefetch optimization entry carries a Coalloc config", ErrBadOptions)
			}
			if e.CodeLayout != nil {
				return fmt.Errorf("core: %w: swprefetch optimization entry carries a CodeLayout config", ErrBadOptions)
			}
			if !o.Monitoring {
				return fmt.Errorf("core: %w: the swprefetch optimization requires Monitoring (strides come from sampled miss addresses)", ErrBadOptions)
			}
			if o.Sampling != nil {
				return fmt.Errorf("core: %w: the swprefetch optimization is not supported in sampled mode (injected prefetches change the access cost model mid-run)", ErrBadOptions)
			}
		default:
			return fmt.Errorf("core: %w: unknown optimization kind %q (entry %d)", ErrBadOptions, e.Kind, i)
		}
	}
	return nil
}

// withDefaults resolves zero values to their documented defaults. It
// is the single place defaults live; NewSystemOpts and Canonical both
// use it so the built System and the cache key agree on what a zero
// field means.
func (o Options) withDefaults() Options {
	if o.Cache.LineSize == 0 {
		o.Cache = cache.DefaultP4()
	}
	if o.HeapLimit == 0 {
		o.HeapLimit = 64 * 1024 * 1024
	}
	if o.Sampling != nil {
		scfg := o.Sampling.WithDefaults()
		o.Sampling = &scfg
	}
	return o
}
