package core

import (
	"errors"
	"fmt"

	"hpmvm/internal/coalloc"
	"hpmvm/internal/hw/cache"
	"hpmvm/internal/monitor"
	"hpmvm/internal/vm/aos"
	"hpmvm/internal/vm/runtime"
)

// ErrBadOptions is the sentinel wrapped by every Options validation
// failure; callers distinguish configuration mistakes from run
// failures with errors.Is(err, core.ErrBadOptions).
var ErrBadOptions = errors.New("invalid options")

// Option is a functional setting applied by NewSystemWith. Options
// layer over the Options struct: every Option is a small mutation of
// an Options value, so the two construction styles are interchangeable
// and converge on the same validation path (Options.Validate).
type Option func(*Options)

// WithCache sets the memory-hierarchy geometry (default: the paper's
// P4, cache.DefaultP4).
func WithCache(cfg cache.Config) Option {
	return func(o *Options) { o.Cache = cfg }
}

// WithCollector selects the GC policy.
func WithCollector(k CollectorKind) Option {
	return func(o *Options) { o.Collector = k }
}

// WithHeapLimit sets the total heap budget in bytes.
func WithHeapLimit(bytes uint64) Option {
	return func(o *Options) { o.HeapLimit = bytes }
}

// WithMonitoring enables the PEBS unit, kernel module and collector
// thread at the given hardware sampling interval in events (0 selects
// the adaptive "auto" mode, §6.3).
func WithMonitoring(interval uint64) Option {
	return func(o *Options) {
		o.Monitoring = true
		o.SamplingInterval = interval
	}
}

// WithEvent selects the sampled hardware event (default: L1 misses).
func WithEvent(e cache.EventKind) Option {
	return func(o *Options) { o.Event = e }
}

// WithMonitorConfig overrides the collector-thread tuning.
func WithMonitorConfig(cfg monitor.Config) Option {
	return func(o *Options) { o.MonitorConfig = &cfg }
}

// WithCoalloc enables the HPM-guided co-allocation policy. Requires
// monitoring and the GenMS collector (validated).
func WithCoalloc() Option {
	return func(o *Options) { o.Coalloc = true }
}

// WithCoallocConfig enables co-allocation with explicit policy tuning.
func WithCoallocConfig(cfg coalloc.Config) Option {
	return func(o *Options) {
		o.Coalloc = true
		o.CoallocConfig = &cfg
	}
}

// WithAdaptive enables the AOS sampler (plan recording mode).
func WithAdaptive() Option {
	return func(o *Options) { o.Adaptive = true }
}

// WithAOSConfig enables the AOS sampler with explicit tuning.
func WithAOSConfig(cfg aos.Config) Option {
	return func(o *Options) {
		o.Adaptive = true
		o.AOSConfig = &cfg
	}
}

// WithSampling enables sampled simulation with the given region
// schedule (zero fields select the defaults in
// runtime.DefaultSamplingConfig).
func WithSampling(cfg runtime.SamplingConfig) Option {
	return func(o *Options) { o.Sampling = &cfg }
}

// WithSeed sets the deterministic PRNG seed.
func WithSeed(seed int64) Option {
	return func(o *Options) { o.Seed = seed }
}

// WithTrackFields restricts the monitor's time series to the named
// fields ("Class::field").
func WithTrackFields(fields ...string) Option {
	return func(o *Options) { o.TrackFields = fields }
}

// WithObserver attaches the observability layer (package obs) with the
// given trace-ring capacity (0 selects obs.DefaultTraceCapacity). The
// observer is passive: it never charges simulated cycles.
func WithObserver(traceCapacity int) Option {
	return func(o *Options) {
		o.Observe = true
		o.TraceCapacity = traceCapacity
	}
}

// Validate reports whether the option combination is buildable. Every
// failure wraps ErrBadOptions. Both constructors (NewSystemOpts and
// NewSystemWith) run it, so an invalid combination — co-allocation
// without monitoring, or on the copying collector — is an error
// instead of a silently mis-wired System.
func (o Options) Validate() error {
	if o.Collector != GenMS && o.Collector != GenCopy {
		return fmt.Errorf("core: %w: unknown collector kind %d", ErrBadOptions, int(o.Collector))
	}
	if o.Coalloc && !o.Monitoring {
		return fmt.Errorf("core: %w: Coalloc requires Monitoring (the policy consumes HPM samples)", ErrBadOptions)
	}
	if o.Coalloc && o.Collector == GenCopy {
		return fmt.Errorf("core: %w: Coalloc requires the GenMS collector (GenCopy cannot co-allocate)", ErrBadOptions)
	}
	if o.Event < 0 || o.Event >= cache.NumEventKinds {
		return fmt.Errorf("core: %w: unknown hardware event kind %d", ErrBadOptions, int(o.Event))
	}
	if o.TraceCapacity < 0 {
		return fmt.Errorf("core: %w: negative TraceCapacity %d", ErrBadOptions, o.TraceCapacity)
	}
	if o.MonitorConfig != nil && !o.Monitoring {
		return fmt.Errorf("core: %w: MonitorConfig set without Monitoring", ErrBadOptions)
	}
	if o.CoallocConfig != nil && !o.Coalloc {
		return fmt.Errorf("core: %w: CoallocConfig set without Coalloc", ErrBadOptions)
	}
	if o.AOSConfig != nil && !o.Adaptive {
		return fmt.Errorf("core: %w: AOSConfig set without Adaptive", ErrBadOptions)
	}
	return nil
}

// withDefaults resolves zero values to their documented defaults. It
// is the single place defaults live; NewSystemOpts and Canonical both
// use it so the built System and the cache key agree on what a zero
// field means.
func (o Options) withDefaults() Options {
	if o.Cache.LineSize == 0 {
		o.Cache = cache.DefaultP4()
	}
	if o.HeapLimit == 0 {
		o.HeapLimit = 64 * 1024 * 1024
	}
	if o.Sampling != nil {
		scfg := o.Sampling.WithDefaults()
		o.Sampling = &scfg
	}
	return o
}
