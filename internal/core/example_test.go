package core_test

import (
	"fmt"
	"log"

	"hpmvm/internal/core"
	"hpmvm/internal/vm/bytecode"
	"hpmvm/internal/vm/classfile"
	"hpmvm/internal/vm/runtime"
)

// ExampleSystem builds a minimal program, runs it on the simulated
// platform with monitoring enabled, and prints its (deterministic)
// result log — the smallest end-to-end use of the library.
func ExampleSystem() {
	u := classfile.NewUniverse()
	cl := u.DefineClass("Main", nil)
	main := u.AddMethod(cl, "main", false, nil, classfile.KindVoid)
	b := bytecode.NewBuilder(u, main)
	b.Local("i", classfile.KindInt)
	b.Local("sum", classfile.KindInt)
	b.Label("loop")
	b.Load("i").Const(10).If(bytecode.OpIfGE, "done")
	b.Load("sum").Load("i").Add().Store("sum")
	b.Inc("i", 1)
	b.Goto("loop")
	b.Label("done")
	b.Load("sum").Result()
	b.Return()
	b.MustBuild()
	u.Layout()

	sys := core.NewSystem(u, core.Options{
		HeapLimit:        8 << 20,
		Monitoring:       true,
		SamplingInterval: 1000,
	})
	plan := runtime.CompilePlan{}
	for _, m := range u.Methods() {
		if m.Code != nil {
			plan[m.ID] = 2
		}
	}
	if err := sys.Boot(plan, nil); err != nil {
		log.Fatal(err)
	}
	if err := sys.Run(main, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Println(sys.VM.Results())
	// Output: [45]
}
