package core_test

import (
	"errors"
	"testing"

	"hpmvm/internal/core"
	"hpmvm/internal/vm/bytecode"
	"hpmvm/internal/vm/classfile"
	"hpmvm/internal/vm/runtime"
)

// buildListProgram builds a program that allocates a linked list of n
// nodes (forcing nursery collections at small heaps), then walks it
// twice: summing values and counting nodes via a virtual method.
func buildListProgram(t testing.TB, n int64) (*classfile.Universe, *classfile.Method) {
	t.Helper()
	u := classfile.NewUniverse()
	node := u.DefineClass("Node", nil)
	fNext := u.AddField(node, "next", classfile.KindRef)
	fVal := u.AddField(node, "val", classfile.KindInt)

	getVal := u.AddMethod(node, "getVal", true, []classfile.Kind{classfile.KindRef}, classfile.KindInt)
	gb := bytecode.NewBuilder(u, getVal)
	gb.BindArg(0, "this")
	gb.Load("this").GetField(fVal).ReturnVal()
	if _, err := gb.Build(); err != nil {
		t.Fatal(err)
	}

	mainCl := u.DefineClass("Main", nil)
	main := u.AddMethod(mainCl, "main", false, nil, classfile.KindVoid)
	b := bytecode.NewBuilder(u, main)
	b.Local("head", classfile.KindRef)
	b.Local("i", classfile.KindInt)
	b.Local("p", classfile.KindRef)
	b.Local("sum", classfile.KindInt)
	b.Local("tmp", classfile.KindRef)

	// head = null; i = 0
	b.Null().Store("head")
	b.Const(0).Store("i")
	// build loop
	b.Label("build")
	b.Load("i").Const(n).If(bytecode.OpIfGE, "built")
	// One short-lived node per iteration keeps the nursery churning.
	b.New(node).Pop()
	b.New(node).Store("tmp")
	b.Load("tmp").Load("i").PutField(fVal)
	b.Load("tmp").Load("head").PutField(fNext)
	b.Load("tmp").Store("head")
	b.Inc("i", 1)
	b.Goto("build")
	b.Label("built")
	// sum loop (direct field access)
	b.Const(0).Store("sum")
	b.Load("head").Store("p")
	b.Label("walk")
	b.Load("p").IfNull("done")
	b.Load("sum").Load("p").GetField(fVal).Add().Store("sum")
	b.Load("p").GetField(fNext).Store("p")
	b.Goto("walk")
	b.Label("done")
	b.Load("sum").Result()
	// count loop (virtual calls)
	b.Const(0).Store("sum")
	b.Load("head").Store("p")
	b.Label("walk2")
	b.Load("p").IfNull("done2")
	b.Load("sum").Load("p").InvokeVirtual(getVal).Add().Store("sum")
	b.Load("p").GetField(fNext).Store("p")
	b.Goto("walk2")
	b.Label("done2")
	b.Load("sum").Result()
	b.Return()
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}

	u.Layout()
	return u, main
}

func runList(t *testing.T, n int64, opts core.Options, plan func(u *classfile.Universe) runtime.CompilePlan) *core.System {
	t.Helper()
	u, main := buildListProgram(t, n)
	sys := core.NewSystem(u, opts)
	var p runtime.CompilePlan
	if plan != nil {
		p = plan(u)
	}
	if err := sys.Boot(p, nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(main, 500_000_000); err != nil {
		t.Fatal(err)
	}
	want := n * (n - 1) / 2
	got := sys.VM.Results()
	if len(got) != 2 || got[0] != want || got[1] != want {
		t.Fatalf("results = %v, want [%d %d]", got, want, want)
	}
	return sys
}

func allOpt(level int) func(u *classfile.Universe) runtime.CompilePlan {
	return func(u *classfile.Universe) runtime.CompilePlan {
		plan := make(runtime.CompilePlan)
		for _, m := range u.Methods() {
			if m.Code != nil {
				plan[m.ID] = level
			}
		}
		return plan
	}
}

func TestSmokeBaselineNoGC(t *testing.T) {
	runList(t, 1000, core.Options{HeapLimit: 32 << 20}, nil)
}

func TestSmokeOptNoGC(t *testing.T) {
	runList(t, 1000, core.Options{HeapLimit: 32 << 20}, allOpt(2))
}

func TestSmokeBaselineWithGC(t *testing.T) {
	// 40k nodes * 32 bytes = 1.25 MB churn in a small heap forces
	// minor collections while the list is live.
	sys := runList(t, 100_000, core.Options{HeapLimit: 8 << 20}, nil)
	minor, _ := sys.GCStats()
	if minor == 0 {
		t.Fatal("expected at least one minor GC")
	}
}

func TestSmokeOptWithGC(t *testing.T) {
	sys := runList(t, 100_000, core.Options{HeapLimit: 8 << 20}, allOpt(2))
	minor, _ := sys.GCStats()
	if minor == 0 {
		t.Fatal("expected at least one minor GC")
	}
}

func TestSmokeGenCopyWithGC(t *testing.T) {
	sys := runList(t, 100_000, core.Options{Collector: core.GenCopy, HeapLimit: 12 << 20}, allOpt(2))
	minor, _ := sys.GCStats()
	if minor == 0 {
		t.Fatal("expected at least one minor GC")
	}
}

func TestSmokeMonitoring(t *testing.T) {
	sys := runList(t, 60_000, core.Options{
		HeapLimit:        8 << 20,
		Monitoring:       true,
		SamplingInterval: 1000,
	}, allOpt(2))
	if sys.Unit.Stats().EventsSeen == 0 {
		t.Fatal("expected hardware events")
	}
	if sys.Unit.Stats().SamplesTaken == 0 {
		t.Fatal("expected PEBS samples")
	}
	if sys.Monitor.Stats().SamplesDecoded == 0 {
		t.Fatal("expected decoded samples")
	}
}

func TestSmokeCoallocation(t *testing.T) {
	sys := runList(t, 60_000, core.Options{
		HeapLimit:        8 << 20,
		Monitoring:       true,
		SamplingInterval: 500,
		Coalloc:          true,
	}, allOpt(2))
	t.Logf("coalloc pairs: %d", sys.CoallocPairs())
	t.Logf("%s", sys.Monitor.Report(5))
}

func TestAdaptiveAOSWithMonitoring(t *testing.T) {
	// AOS recording mode plus HPM sampling: recompilation installs new
	// bodies mid-run while samples keep arriving (late samples resolve
	// through obsolete bodies' retained maps, §4.2).
	u, main := buildListProgram(t, 60_000)
	sys := core.NewSystem(u, core.Options{
		HeapLimit:        8 << 20,
		Monitoring:       true,
		SamplingInterval: 1000,
		Adaptive:         true,
	})
	if err := sys.Boot(nil, nil); err != nil { // baseline everywhere; AOS recompiles
		t.Fatal(err)
	}
	if err := sys.Run(main, 0); err != nil {
		t.Fatal(err)
	}
	want := int64(60_000) * (60_000 - 1) / 2
	got := sys.VM.Results()
	if len(got) != 2 || got[0] != want || got[1] != want {
		t.Fatalf("results = %v, want [%d %d]", got, want, want)
	}
	if sys.AOS.Recompilations() == 0 {
		t.Error("AOS never recompiled")
	}
	if sys.Monitor.Stats().SamplesDecoded == 0 {
		t.Error("no samples decoded during adaptive run")
	}
	// The plan must be replayable.
	plan := sys.AOS.Plan()
	if len(plan) == 0 {
		t.Fatal("empty recorded plan")
	}
	u2, main2 := buildListProgram(t, 60_000)
	sys2 := core.NewSystem(u2, core.Options{HeapLimit: 8 << 20})
	if err := sys2.Boot(plan, nil); err != nil {
		t.Fatal(err)
	}
	if err := sys2.Run(main2, 0); err != nil {
		t.Fatal(err)
	}
	if sys2.VM.Results()[0] != want {
		t.Error("replay diverged")
	}
}

func TestGenCopyRejectsCoalloc(t *testing.T) {
	// Co-allocation requires GenMS; requesting it with GenCopy was
	// once silently ignored and is now a validation error.
	u, _ := buildListProgram(t, 1_000)
	_, err := core.NewSystemOpts(u, core.Options{
		Collector:        core.GenCopy,
		HeapLimit:        8 << 20,
		Monitoring:       true,
		SamplingInterval: 2000,
		Coalloc:          true,
	})
	if !errors.Is(err, core.ErrBadOptions) {
		t.Fatalf("NewSystemOpts(GenCopy+Coalloc) err = %v, want ErrBadOptions", err)
	}
}
