package perfmon

import (
	"hpmvm/internal/hw/pebs"
	"hpmvm/internal/snap"
)

// Snapshot/Restore implement snap.Checkpointable for the kernel
// module. Mutable state is the programmed session config, the in-kernel
// sample buffer and the session counters; the unit/sink/observer wiring
// is construction-time and untouched. The pebs.Unit it owns is a
// separate component checkpointed by core.

const (
	snapComponent = "kernel/perfmon"
	snapVersion   = 1
)

// Snapshot serializes the session state.
func (m *Module) Snapshot() snap.ComponentState {
	var w snap.Writer
	pebs.EncodeConfig(&w, m.pcfg)
	w.U64(uint64(len(m.buf)))
	for i := range m.buf {
		pebs.EncodeSample(&w, &m.buf[i])
	}
	w.U64(m.lost)
	w.U64(m.reads)
	w.Bool(m.active)
	return snap.ComponentState{Component: snapComponent, Version: snapVersion, Data: w.Bytes()}
}

// Restore overwrites the session state. No syscall cycles are charged:
// restore recreates state, it does not re-execute the calls that built
// it.
func (m *Module) Restore(st snap.ComponentState) error {
	if err := snap.Check(st, snapComponent, snapVersion); err != nil {
		return err
	}
	r := snap.NewReader(st.Data)
	pcfg := pebs.DecodeConfig(r)
	n := r.U64()
	buf := make([]pebs.Sample, 0, n)
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		buf = append(buf, pebs.DecodeSample(r))
	}
	lost := r.U64()
	reads := r.U64()
	active := r.Bool()
	if err := r.Close(); err != nil {
		return err
	}
	m.pcfg = pcfg
	m.buf = buf
	m.lost = lost
	m.reads = reads
	m.active = active
	return nil
}
