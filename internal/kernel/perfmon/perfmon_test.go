package perfmon

import (
	"math/rand"
	"testing"

	"hpmvm/internal/hw/cache"
	"hpmvm/internal/hw/pebs"
)

type fakeCPU struct {
	cycles uint64
	regs   [pebs.NumRegs]uint64
}

func (f *fakeCPU) SamplePC() uint64                     { return 0x1234 }
func (f *fakeCPU) SampleRegs(dst *[pebs.NumRegs]uint64) { *dst = f.regs }
func (f *fakeCPU) CycleCount() uint64                   { return f.cycles }
func (f *fakeCPU) AddCycles(n uint64)                   { f.cycles += n }

func setup(t *testing.T, interval uint64, cpuBuf int) (*fakeCPU, *pebs.Unit, *Module) {
	t.Helper()
	cpu := &fakeCPU{}
	unit := pebs.NewUnit(cpu, rand.New(rand.NewSource(1)))
	mod := NewModule(unit, cpu, DefaultConfig())
	err := mod.ConfigureSession(pebs.Config{
		Event:         cache.EventL1Miss,
		Interval:      interval,
		BufferSamples: cpuBuf,
		WatermarkFrac: 0.5,
		CaptureCycles: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cpu, unit, mod
}

func TestSessionLifecycle(t *testing.T) {
	_, unit, mod := setup(t, 1, 64)
	if mod.Active() {
		t.Error("active before Start")
	}
	mod.Start()
	if !mod.Active() || !unit.Enabled() {
		t.Error("not active after Start")
	}
	mod.Stop()
	if mod.Active() || unit.Enabled() {
		t.Error("active after Stop")
	}
	if mod.Event() != cache.EventL1Miss {
		t.Error("configured event not reported")
	}
}

func TestInterruptDrainsCPUBuffer(t *testing.T) {
	_, unit, mod := setup(t, 1, 8) // watermark 4
	mod.Start()
	for i := 0; i < 4; i++ {
		unit.HardwareEvent(cache.EventL1Miss, uint64(i))
	}
	if unit.Pending() != 0 {
		t.Error("CPU buffer not drained by the interrupt handler")
	}
	if mod.Pending() != 4 {
		t.Errorf("kernel buffer has %d samples, want 4", mod.Pending())
	}
}

func TestReadSamples(t *testing.T) {
	_, unit, mod := setup(t, 1, 64)
	mod.Start()
	for i := 0; i < 6; i++ {
		unit.HardwareEvent(cache.EventL1Miss, uint64(100+i))
	}
	// 6 samples sit in the CPU buffer (below watermark 32); ReadSamples
	// must sweep them into user space.
	buf := make([]pebs.Sample, 4)
	n := mod.ReadSamples(buf)
	if n != 4 {
		t.Fatalf("first read = %d, want 4", n)
	}
	if buf[0].DataAddr != 100 {
		t.Errorf("sample order wrong: first DataAddr = %d", buf[0].DataAddr)
	}
	n = mod.ReadSamples(buf)
	if n != 2 {
		t.Fatalf("second read = %d, want 2", n)
	}
	if buf[0].DataAddr != 104 {
		t.Errorf("second batch starts at %d, want 104", buf[0].DataAddr)
	}
	if mod.ReadSamples(buf) != 0 {
		t.Error("third read should be empty")
	}
}

func TestKernelBufferOverflow(t *testing.T) {
	cpu := &fakeCPU{}
	unit := pebs.NewUnit(cpu, rand.New(rand.NewSource(1)))
	cfg := DefaultConfig()
	cfg.KernelBufferSamples = 4
	mod := NewModule(unit, cpu, cfg)
	if err := mod.ConfigureSession(pebs.Config{
		Event: cache.EventL1Miss, Interval: 1,
		BufferSamples: 2, WatermarkFrac: 0.5, // watermark 1: every sample interrupts
	}); err != nil {
		t.Fatal(err)
	}
	mod.Start()
	for i := 0; i < 10; i++ {
		unit.HardwareEvent(cache.EventL1Miss, uint64(i))
	}
	if mod.Pending() != 4 {
		t.Errorf("kernel buffer = %d, want capacity 4", mod.Pending())
	}
	if mod.Lost() != 6 {
		t.Errorf("Lost = %d, want 6", mod.Lost())
	}
}

func TestCycleCharging(t *testing.T) {
	cpu, unit, mod := setup(t, 1, 64)
	start := cpu.cycles
	mod.Start() // one syscall
	if cpu.cycles-start != DefaultConfig().SyscallCycles {
		t.Errorf("Start charged %d cycles", cpu.cycles-start)
	}
	unit.HardwareEvent(cache.EventL1Miss, 0)
	start = cpu.cycles
	buf := make([]pebs.Sample, 16)
	mod.ReadSamples(buf)
	want := DefaultConfig().SyscallCycles + 1*DefaultConfig().CopyCyclesPerSample
	if cpu.cycles-start != want {
		t.Errorf("ReadSamples charged %d cycles, want %d", cpu.cycles-start, want)
	}
}

func TestSetIntervalPassesThrough(t *testing.T) {
	_, unit, mod := setup(t, 100, 64)
	mod.SetInterval(4096)
	if unit.Interval() != 4096 || mod.Interval() != 4096 {
		t.Error("SetInterval did not reach the unit")
	}
}
