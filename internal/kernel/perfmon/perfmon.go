// Package perfmon simulates the Perfmon loadable kernel module the
// paper builds on (§4.1, part 1 of the system): it owns access to the
// performance counter hardware, hides platform-specific details from
// the VM, provides the interrupt handler invoked when the CPU's sample
// buffer fills, and buffers samples in kernel space until user space
// reads them.
package perfmon

import (
	"fmt"

	"hpmvm/internal/hw/cache"
	"hpmvm/internal/hw/pebs"
	"hpmvm/internal/obs"
)

// CycleSink is where the module charges the cycles its own work
// consumes (interrupt handling, buffer copies, syscall entry/exit). In
// practice this is the *cpu.CPU.
type CycleSink interface {
	AddCycles(n uint64)
}

// Config holds the kernel module's cost model and buffering parameters.
type Config struct {
	// KernelBufferSamples is the capacity of the in-kernel sample
	// buffer that accumulates drained CPU buffers between user-space
	// reads.
	KernelBufferSamples int
	// CopyCyclesPerSample is charged for moving one sample between
	// buffers (interrupt handler and read path).
	CopyCyclesPerSample uint64
	// SyscallCycles is charged per user-space read or control call.
	SyscallCycles uint64
}

// DefaultConfig returns costs roughly matching a Linux perfmon2 stack:
// a syscall plus buffer copy-out per poll, a few tens of cycles per
// sample moved.
func DefaultConfig() Config {
	return Config{
		KernelBufferSamples: 16 * 1024,
		CopyCyclesPerSample: 30,
		SyscallCycles:       3000,
	}
}

// Module is the simulated kernel module. It implements
// pebs.InterruptHandler so the sampling hardware can deliver overflow
// interrupts to it.
type Module struct {
	cfg    Config
	pcfg   pebs.Config
	unit   *pebs.Unit
	sink   CycleSink
	buf    []pebs.Sample
	lost   uint64 // samples dropped because the kernel buffer was full
	reads  uint64 // user-space read syscalls serviced
	active bool

	// obs, when non-nil, receives an EvPerfmonRead event per copy-out;
	// obsNow reads the global cycle counter for event stamps (nil when
	// the sink does not expose one).
	obs    *obs.Observer
	obsNow func() uint64
}

// NewModule loads the module over a sampling unit.
func NewModule(unit *pebs.Unit, sink CycleSink, cfg Config) *Module {
	m := &Module{cfg: cfg, unit: unit, sink: sink}
	unit.SetHandler(m)
	return m
}

// SetObserver attaches the observability layer: the module's counters
// are registered as sampled counters and every user-space copy-out is
// traced. Event cycle stamps come from the sink when it exposes a
// cycle counter (the production sink is the CPU); otherwise they are
// zero. Passing nil detaches.
func (m *Module) SetObserver(o *obs.Observer) {
	m.obs = o
	if o == nil {
		m.obsNow = nil
		return
	}
	if cr, ok := m.sink.(interface{ Cycles() uint64 }); ok {
		m.obsNow = cr.Cycles
	}
	o.RegisterSampled("perfmon.reads", func() uint64 { return m.reads })
	o.RegisterSampled("perfmon.lost", func() uint64 { return m.lost })
	o.RegisterSampled("perfmon.pending", func() uint64 { return uint64(len(m.buf)) })
}

// ConfigureSession programs the hardware for the given event and
// sampling parameters. It mirrors perfmon's context-programming
// syscalls.
func (m *Module) ConfigureSession(pcfg pebs.Config) error {
	m.sink.AddCycles(m.cfg.SyscallCycles)
	if err := m.unit.Configure(pcfg); err != nil {
		return fmt.Errorf("perfmon: %w", err)
	}
	m.pcfg = pcfg
	m.buf = m.buf[:0]
	return nil
}

// Start begins sampling.
func (m *Module) Start() {
	m.sink.AddCycles(m.cfg.SyscallCycles)
	m.unit.Start()
	m.active = true
}

// Stop halts sampling; buffered samples remain readable.
func (m *Module) Stop() {
	m.sink.AddCycles(m.cfg.SyscallCycles)
	m.unit.Stop()
	m.active = false
}

// Active reports whether a session is currently sampling.
func (m *Module) Active() bool { return m.active }

// SetInterval retargets the hardware sampling interval (used by the
// monitor's adaptive mode). Charged as a control syscall.
func (m *Module) SetInterval(interval uint64) {
	m.sink.AddCycles(m.cfg.SyscallCycles)
	m.unit.SetInterval(interval)
}

// Interval returns the current hardware sampling interval.
func (m *Module) Interval() uint64 { return m.unit.Interval() }

// Event returns the configured event kind.
func (m *Module) Event() cache.EventKind { return m.pcfg.Event }

// PEBSOverflow implements pebs.InterruptHandler: drain the CPU-side
// buffer into the kernel buffer.
func (m *Module) PEBSOverflow(u *pebs.Unit) {
	samples := u.Drain()
	m.sink.AddCycles(uint64(len(samples)) * m.cfg.CopyCyclesPerSample)
	m.absorb(samples)
}

func (m *Module) absorb(samples []pebs.Sample) {
	space := m.cfg.KernelBufferSamples - len(m.buf)
	if space < len(samples) {
		m.lost += uint64(len(samples) - space)
		samples = samples[:space]
	}
	m.buf = append(m.buf, samples...)
}

// ReadSamples copies up to len(dst) pending samples into dst (the
// user-space pre-allocated array) and returns the count. It first
// drains any samples still sitting in the CPU buffer so a poll sees
// everything collected so far. Costs one syscall plus per-sample copy.
func (m *Module) ReadSamples(dst []pebs.Sample) int {
	m.sink.AddCycles(m.cfg.SyscallCycles)
	m.reads++
	m.absorb(m.unit.Drain())
	n := copy(dst, m.buf)
	m.sink.AddCycles(uint64(n) * m.cfg.CopyCyclesPerSample)
	m.buf = m.buf[:copy(m.buf, m.buf[n:])]
	if m.obs != nil {
		var now uint64
		if m.obsNow != nil {
			now = m.obsNow()
		}
		m.obs.Emit(obs.EvPerfmonRead, now, uint64(n), uint64(len(m.buf)), m.lost)
	}
	return n
}

// UnitStats returns the sampling hardware's counters (events seen,
// samples taken, drops) — perfmon exposes these as virtual counters.
func (m *Module) UnitStats() pebs.Stats { return m.unit.Stats() }

// Pending returns the number of samples waiting in the kernel buffer
// (not counting the CPU-side buffer).
func (m *Module) Pending() int { return len(m.buf) }

// Lost returns the number of samples dropped due to kernel buffer
// overflow.
func (m *Module) Lost() uint64 { return m.lost }
