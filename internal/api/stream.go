package api

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// The stream protocol: POST /v1/stream takes the same Request body as
// /v1/run but answers 200 text/event-stream and replaces the one-shot
// response with Server-Sent Events, so a long run reports liveness
// instead of a silent multi-minute connection:
//
//	event: queued     data: StreamQueued   (once, after validation)
//	event: progress   data: StreamProgress (heartbeat while running)
//	event: meta       data: StreamMeta     (once, before the result)
//	event: result     data: <RunResponse>  (exact /v1/run body bytes)
//	event: error      data: <Error>        (terminal, replaces result)
//
// The result event's data is byte-for-byte the /v1/run response body
// (minus the trailing newline SSE framing forbids); a streaming client
// reassembles the identical bytes a one-shot client receives. Request
// errors detected before the stream opens (bad body, unknown workload)
// answer as plain JSON errors with their normal status — the stream
// only starts once the request is admitted.

// Stream event names.
const (
	EventQueued   = "queued"
	EventProgress = "progress"
	EventMeta     = "meta"
	EventResult   = "result"
	EventError    = "error"
)

// StreamQueued is the payload of the first event on a run stream.
type StreamQueued struct {
	Version  string `json:"version"`
	Workload string `json:"workload"`
	// Key is the request's content address — the same value the
	// X-Hpmvmd-Key header carries on /v1/run.
	Key string `json:"key"`
}

// StreamProgress is the heartbeat payload: proof of liveness while the
// simulation runs. Simulation state is single-writer and carries no
// atomic cycle counter, so the heartbeat reports wall-clock progress,
// not simulated cycles (DESIGN.md §13).
type StreamProgress struct {
	ElapsedMS int64 `json:"elapsed_ms"`
}

// StreamMeta carries the header metadata a one-shot response delivers
// in X-Hpmvmd-* headers; it always precedes the result event.
type StreamMeta struct {
	Cache    string `json:"cache"`
	Key      string `json:"key"`
	Snapshot string `json:"snapshot,omitempty"`
	Worker   string `json:"worker,omitempty"`
}

// StreamEvent is one decoded SSE frame.
type StreamEvent struct {
	Event string
	Data  []byte
}

// WriteStreamEvent writes one SSE frame. data must not contain raw
// newlines (json.Marshal output never does).
func WriteStreamEvent(w io.Writer, event string, data []byte) error {
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		return fmt.Errorf("api: stream event %q data contains a newline at offset %d", event, i)
	}
	_, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	return err
}

// WriteStreamJSON marshals v and writes it as one SSE frame.
func WriteStreamJSON(w io.Writer, event string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("api: marshal stream %s event: %w", event, err)
	}
	return WriteStreamEvent(w, event, data)
}

// maxStreamLine bounds one SSE line; a result event carries a whole
// RunResponse (an observe=true body includes the obs export), so the
// bound is generous.
const maxStreamLine = 16 << 20

// StreamDecoder decodes the SSE frames WriteStreamEvent produces. It
// implements the subset of the SSE grammar the server emits: "event:"
// and "data:" fields, one data line per frame, blank-line dispatch;
// unknown fields (comments, "id:", "retry:") are skipped.
type StreamDecoder struct {
	s *bufio.Scanner
}

// NewStreamDecoder wraps r.
func NewStreamDecoder(r io.Reader) *StreamDecoder {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 64<<10), maxStreamLine)
	return &StreamDecoder{s: s}
}

// Next returns the next event, or io.EOF at a clean end of stream. A
// stream that ends mid-frame returns io.ErrUnexpectedEOF.
func (d *StreamDecoder) Next() (StreamEvent, error) {
	var ev StreamEvent
	started := false
	for d.s.Scan() {
		line := d.s.Text()
		switch {
		case line == "":
			if started {
				return ev, nil
			}
			// Leading blank lines between frames: skip.
		case strings.HasPrefix(line, "event: "):
			ev.Event = strings.TrimPrefix(line, "event: ")
			started = true
		case strings.HasPrefix(line, "data: "):
			ev.Data = []byte(strings.TrimPrefix(line, "data: "))
			started = true
		default:
			// Unknown SSE field or comment: ignore per the grammar.
		}
	}
	if err := d.s.Err(); err != nil {
		return ev, err
	}
	if started {
		return ev, io.ErrUnexpectedEOF
	}
	return ev, io.EOF
}
