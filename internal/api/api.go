// Package api is the versioned wire contract of the hpmvmd run
// service: the request/response/statsz types, the JSON error envelope,
// the SSE stream framing, and the path/header constants shared by the
// server (internal/serve), the fleet coordinator, the typed Go client
// (internal/client) and the load generator (cmd/hpmvmbench).
//
// The coordinator↔worker protocol and the public API are the same
// contract: a fleet coordinator speaks to its workers with exactly the
// types in this package, so anything a worker can serve, the fleet can
// serve, byte-for-byte.
//
// Compatibility rules (DESIGN.md §13):
//
//   - The current version is "v1", rooted at /v1/. The unversioned
//     paths from the pre-v1 daemon remain as deprecated aliases; they
//     answer identically but carry a Deprecation header.
//   - Within v1, fields are only ever added, never renamed, removed or
//     re-typed; new fields must be omitempty so existing cached bodies
//     stay byte-identical.
//   - Error responses always carry the Error envelope with a stable
//     machine-readable Code; clients dispatch on Code, never on the
//     human-readable message.
package api

import (
	"hpmvm/internal/hw/cache"
	"hpmvm/internal/monitor"
	"hpmvm/internal/obs"
	"hpmvm/internal/opt"
	"hpmvm/internal/stats"
)

// Version is the wire API version this package describes.
const Version = "v1"

// Versioned paths.
const (
	PathRun       = "/v1/run"
	PathStream    = "/v1/stream"
	PathHealthz   = "/v1/healthz"
	PathStatsz    = "/v1/statsz"
	PathWorkloads = "/v1/workloads"
)

// Deprecated pre-v1 aliases. They serve the same handlers and bodies
// as their /v1 successors but answer with a Deprecation header and a
// Link to the successor path.
const (
	LegacyPathRun       = "/run"
	LegacyPathHealthz   = "/healthz"
	LegacyPathStatsz    = "/statsz"
	LegacyPathWorkloads = "/workloads"
)

// Response and routing headers.
const (
	// HeaderCache is the result-cache disposition: "hit", "shared" or
	// "miss".
	HeaderCache = "X-Hpmvmd-Cache"
	// HeaderKey is the content address (cache key) of the request.
	HeaderKey = "X-Hpmvmd-Key"
	// HeaderSnapshot is the warm-start snapshot disposition ("store"
	// or "hit"), present only on requests that led an execution with
	// warm_start_cycles set.
	HeaderSnapshot = "X-Hpmvmd-Snapshot"
	// HeaderWorker names the fleet worker that served the request;
	// absent on a single-process server.
	HeaderWorker = "X-Hpmvmd-Worker"
	// HeaderRoute, on a request to a fleet coordinator, pins the
	// request to the named worker, bypassing sticky/least-loaded
	// routing. Diagnostics only: hpmvmbench uses it to prove workers
	// answer byte-identically.
	HeaderRoute = "X-Hpmvmd-Route"
	// HeaderDeprecation marks a legacy unversioned path.
	HeaderDeprecation = "Deprecation"
)

// Request is the JSON body of POST /v1/run and /v1/stream. Zero values
// select the same defaults the hpmvm CLI uses.
type Request struct {
	// Version optionally names the wire version the client speaks.
	// Empty is accepted (the path already carries the version); any
	// other mismatch with Version is rejected with CodeBadRequest.
	Version string `json:"version,omitempty"`
	// Workload names a registered benchmark program.
	Workload string `json:"workload"`
	// HeapFactor sizes the heap as a multiple of the workload's
	// calibrated minimum (0 = 4x); HeapBytes overrides it exactly.
	HeapFactor float64 `json:"heap_factor,omitempty"`
	HeapBytes  uint64  `json:"heap_bytes,omitempty"`
	// Collector is "genms" (default) or "gencopy".
	Collector string `json:"collector,omitempty"`
	// Monitoring enables HPM sampling; Interval is the hardware
	// sampling interval in events (0 = adaptive auto mode). Event is
	// "l1" (default), "l2", "dtlb" or "l1i".
	Monitoring bool   `json:"monitoring,omitempty"`
	Interval   uint64 `json:"interval,omitempty"`
	Event      string `json:"event,omitempty"`
	// Coalloc enables HPM-guided co-allocation (implies monitoring).
	Coalloc bool `json:"coalloc,omitempty"`
	// CodeLayout enables the hot/cold code-layout optimization (implies
	// monitoring; incompatible with sampled).
	CodeLayout bool `json:"codelayout,omitempty"`
	// SwPrefetch enables the software prefetch-injection optimization
	// (implies monitoring; incompatible with sampled).
	SwPrefetch bool `json:"swprefetch,omitempty"`
	// Adaptive runs AOS recording mode instead of the all-opt plan.
	Adaptive bool `json:"adaptive,omitempty"`
	// Seed drives the deterministic PRNG.
	Seed int64 `json:"seed,omitempty"`
	// MaxCycles bounds the run (0 = no bound).
	MaxCycles uint64 `json:"max_cycles,omitempty"`
	// TrackFields restricts the monitor time series ("Class::field").
	TrackFields []string `json:"track_fields,omitempty"`
	// Observe attaches the obs layer; the response then carries the
	// final counter/phase snapshot.
	Observe bool `json:"observe,omitempty"`
	// WarmStartCycles, when non-zero, serves the run via the
	// snapshot-prefix cache: the first WarmStartCycles simulated cycles
	// execute once per distinct configuration and are checkpointed;
	// later requests sharing the prefix restore the snapshot and
	// simulate only the tail. An exact restore is byte-identical to the
	// cold run, so the response body is unchanged — only latency and
	// the X-Hpmvmd-Snapshot header differ. Must be below max_cycles
	// when a cycle budget is set. On a fleet, warm requests are
	// sticky-routed: every request sharing a snapshot prefix lands on
	// the worker that owns the stored snapshot.
	WarmStartCycles uint64 `json:"warm_start_cycles,omitempty"`
	// Sampled runs the two-lane sampled simulator (on the workload's
	// calibrated region schedule) instead of the cycle-exact one: the
	// response gains an Estimated block — extrapolated full-run metrics
	// with 95% confidence intervals — while Cycles and the cache stats
	// then report the sampled run's own distorted counters. A sampled
	// simulation is a different simulation, so it caches under its own
	// key, never aliasing the exact result. Incompatible with
	// warm_start_cycles: sampled systems refuse Snapshot.
	Sampled bool `json:"sampled,omitempty"`
}

// RunResponse is the JSON body of a successful run. Identical requests
// produce byte-identical bodies — cold, cached, streamed, single
// process or any fleet worker — which the serve tests, hpmvmbench and
// the smoke scripts assert.
type RunResponse struct {
	Version   string `json:"version"`
	Workload  string `json:"workload"`
	Key       string `json:"key"`
	HeapBytes uint64 `json:"heap_bytes"`
	Collector string `json:"collector"`
	Seed      int64  `json:"seed"`

	Cycles  uint64  `json:"cycles"`
	Instret uint64  `json:"instret"`
	CPI     float64 `json:"cpi"`

	Results []int64     `json:"results"`
	Cache   cache.Stats `json:"cache_stats"`

	MinorGCs      uint64  `json:"minor_gcs"`
	MajorGCs      uint64  `json:"major_gcs"`
	GCCycles      uint64  `json:"gc_cycles"`
	CoallocPairs  uint64  `json:"coalloc_pairs"`
	Fragmentation float64 `json:"fragmentation"`

	Monitor      *monitor.Stats `json:"monitor,omitempty"`
	SamplesTaken uint64         `json:"samples_taken"`

	// Sampled and Estimated are set iff the request asked for a sampled
	// run: Estimated carries the extrapolated full-run point estimates
	// with their 95% confidence intervals, and the exact-looking fields
	// above (Cycles, CPI, cache_stats) hold the sampled run's own
	// distorted counters — read Estimated instead.
	Sampled   bool            `json:"sampled,omitempty"`
	Estimated *stats.Estimate `json:"estimated,omitempty"`

	Obs *obs.Metrics `json:"obs,omitempty"`
}

// RunResult is the transport-level view of one run exchange: the exact
// response bytes plus the header metadata that travels beside them.
// Fleet backends and the typed client both speak in RunResults so the
// coordinator can relay worker responses without re-marshaling — the
// byte-identity guarantee rides on Body passing through untouched.
type RunResult struct {
	// Body is the exact response body, trailing newline included.
	Body []byte
	// Key, Cache, Snapshot and Worker mirror the X-Hpmvmd-* headers.
	Key      string
	Cache    string
	Snapshot string
	Worker   string
}

// WorkloadLatency is one workload's statsz latency row.
type WorkloadLatency struct {
	Workload string  `json:"workload"`
	Runs     uint64  `json:"runs"`
	Errors   uint64  `json:"errors"`
	MeanMS   float64 `json:"mean_ms"`
	MaxMS    float64 `json:"max_ms"`
}

// Statsz is the GET /v1/statsz body of a single server (or one fleet
// worker).
type Statsz struct {
	Version  string `json:"version"`
	Draining bool   `json:"draining"`

	Queue struct {
		Jobs        int `json:"jobs"`
		Depth       int `json:"depth"`
		Outstanding int `json:"outstanding"`
	} `json:"queue"`

	Cache struct {
		Entries   int     `json:"entries"`
		Capacity  int     `json:"capacity"`
		Hits      uint64  `json:"hits"`
		Shared    uint64  `json:"shared"`
		Misses    uint64  `json:"misses"`
		Evictions uint64  `json:"evictions"`
		HitRate   float64 `json:"hit_rate"`
	} `json:"cache"`

	Snapshots struct {
		Entries   int    `json:"entries"`
		Capacity  int    `json:"capacity"`
		Hits      uint64 `json:"hits"`
		Stores    uint64 `json:"stores"`
		Evictions uint64 `json:"evictions"`
	} `json:"snapshots"`

	Workloads []WorkloadLatency  `json:"workloads"`
	Counters  []obs.CounterValue `json:"counters"`

	// Optimizations carries one decisions/reverts counter row per
	// managed optimization kind, summed over this server's executed
	// runs (cache hits do not execute); sorted by kind, omitted until
	// a run uses the optimization framework.
	Optimizations []opt.KindStats `json:"optimizations,omitempty"`
}

// WorkerStatsz is one worker's row in a fleet statsz.
type WorkerStatsz struct {
	Name     string `json:"name"`
	Healthy  bool   `json:"healthy"`
	Inflight int    `json:"inflight"`
	// Statsz is the worker's own statsz snapshot; nil when the worker
	// could not be reached.
	Statsz *Statsz `json:"statsz,omitempty"`
	// Error describes why Statsz is nil.
	Error string `json:"error,omitempty"`
}

// FleetStatsz is the GET /v1/statsz body of a fleet coordinator.
type FleetStatsz struct {
	Version  string `json:"version"`
	Fleet    bool   `json:"fleet"`
	Workers  int    `json:"workers"`
	Draining bool   `json:"draining"`

	Routing struct {
		// Total counts routed run requests; Sticky the ones routed by
		// snapshot-prefix affinity, Pinned the ones forced by
		// HeaderRoute, Stolen the ones moved off their hash-primary
		// because it was full or unhealthy, Rejected the ones every
		// candidate refused.
		Total    uint64 `json:"total"`
		Sticky   uint64 `json:"sticky"`
		Pinned   uint64 `json:"pinned"`
		Stolen   uint64 `json:"stolen"`
		Rejected uint64 `json:"rejected"`
	} `json:"routing"`

	PerWorker []WorkerStatsz `json:"per_worker"`

	// Optimizations sums the per-kind decision/revert counters of every
	// reachable worker; sorted by kind, omitted while zero rows exist.
	Optimizations []opt.KindStats `json:"optimizations,omitempty"`
}

// WorkloadInfo is one GET /v1/workloads row: a registered workload
// with its calibration data.
type WorkloadInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	MinHeap     uint64 `json:"min_heap"`
	HotField    string `json:"hot_field,omitempty"`
}
