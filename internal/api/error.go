package api

import "net/http"

// Error is the one JSON error envelope every non-2xx response carries,
// across every endpoint and every status (400/404/405/429/500/503/504).
// Code is the stable machine-readable dispatch key; Message is for
// humans and carries no compatibility promise.
type Error struct {
	Version string `json:"version,omitempty"`
	Message string `json:"error"`
	Code    string `json:"code"`
	// RetryAfter, in seconds, is set when retrying the identical
	// request later can succeed (CodeQueueFull); it mirrors the
	// Retry-After response header.
	RetryAfter int `json:"retry_after,omitempty"`
}

// Error implements the error interface; the typed client returns
// *Error for every enveloped failure so callers can errors.As on it.
func (e *Error) Error() string { return e.Message }

// Stable machine-readable error codes. Codes are append-only: a code,
// once shipped, never changes meaning or HTTP status.
const (
	// CodeBadRequest: the request body or field combination is invalid.
	CodeBadRequest = "bad_request"
	// CodeUnknownWorkload: the named workload is not registered.
	CodeUnknownWorkload = "unknown_workload"
	// CodeMethodNotAllowed: wrong HTTP method for the endpoint.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeQueueFull: the bounded run queue is at capacity; retry after
	// RetryAfter seconds.
	CodeQueueFull = "queue_full"
	// CodeDraining: the instance began its graceful drain and admits
	// no new runs.
	CodeDraining = "draining"
	// CodeTimeout: the run exceeded the server's per-run wall-clock cap.
	CodeTimeout = "timeout"
	// CodeCancelled: the client went away and the run was cancelled at
	// its next safepoint.
	CodeCancelled = "cancelled"
	// CodeUnavailable: a fleet coordinator could not reach any worker
	// able to serve the request.
	CodeUnavailable = "unavailable"
	// CodeInternal: the run failed for a reason that is not a request
	// error; identical requests fail identically (runs are
	// deterministic), so there is no point retrying.
	CodeInternal = "internal"
)

// StatusForCode maps a stable error code onto its HTTP status. Unknown
// codes map to 500 so a future-coded response degrades safely.
func StatusForCode(code string) int {
	switch code {
	case CodeBadRequest:
		return http.StatusBadRequest
	case CodeUnknownWorkload:
		return http.StatusNotFound
	case CodeMethodNotAllowed:
		return http.StatusMethodNotAllowed
	case CodeQueueFull:
		return http.StatusTooManyRequests
	case CodeDraining, CodeCancelled, CodeUnavailable:
		return http.StatusServiceUnavailable
	case CodeTimeout:
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}
