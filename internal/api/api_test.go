package api

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestRequestRoundTrip pins the request wire names: a request marshals
// to exactly the field names the pre-v1 daemon accepted (plus the
// optional version), so every pre-v1 client body still decodes.
func TestRequestRoundTrip(t *testing.T) {
	in := Request{
		Version:         Version,
		Workload:        "db",
		HeapFactor:      2.5,
		Collector:       "gencopy",
		Monitoring:      true,
		Interval:        25000,
		Event:           "l2",
		Seed:            7,
		MaxCycles:       1 << 20,
		TrackFields:     []string{"String::value"},
		WarmStartCycles: 1000,
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		`"version":"v1"`, `"workload":"db"`, `"heap_factor":2.5`,
		`"collector":"gencopy"`, `"monitoring":true`, `"interval":25000`,
		`"event":"l2"`, `"seed":7`, `"max_cycles":1048576`,
		`"track_fields":["String::value"]`, `"warm_start_cycles":1000`,
	} {
		if !strings.Contains(string(b), name) {
			t.Errorf("marshaled request missing %s: %s", name, b)
		}
	}
	var out Request
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&out); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if out.Workload != in.Workload || out.Interval != in.Interval || out.WarmStartCycles != in.WarmStartCycles {
		t.Errorf("round trip mutated the request: %+v", out)
	}
}

// TestErrorEnvelope pins the envelope wire shape {error, code,
// retry_after?} and the error interface.
func TestErrorEnvelope(t *testing.T) {
	e := &Error{Version: Version, Message: "queue full", Code: CodeQueueFull, RetryAfter: 1}
	b, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"version":"v1","error":"queue full","code":"queue_full","retry_after":1}`
	if string(b) != want {
		t.Errorf("envelope = %s, want %s", b, want)
	}
	// retry_after is omitted when retrying cannot help.
	b, _ = json.Marshal(&Error{Message: "boom", Code: CodeInternal})
	if strings.Contains(string(b), "retry_after") {
		t.Errorf("retry_after serialized at zero: %s", b)
	}
	var ierr error = e
	if ierr.Error() != "queue full" {
		t.Errorf("Error() = %q", ierr.Error())
	}
	var ae *Error
	if !errors.As(ierr, &ae) || ae.Code != CodeQueueFull {
		t.Error("errors.As does not recover the envelope")
	}
}

// TestStatusForCode pins the code→status table; codes are append-only
// and never change status.
func TestStatusForCode(t *testing.T) {
	cases := []struct {
		code   string
		status int
	}{
		{CodeBadRequest, http.StatusBadRequest},
		{CodeUnknownWorkload, http.StatusNotFound},
		{CodeMethodNotAllowed, http.StatusMethodNotAllowed},
		{CodeQueueFull, http.StatusTooManyRequests},
		{CodeDraining, http.StatusServiceUnavailable},
		{CodeCancelled, http.StatusServiceUnavailable},
		{CodeUnavailable, http.StatusServiceUnavailable},
		{CodeTimeout, http.StatusGatewayTimeout},
		{CodeInternal, http.StatusInternalServerError},
		{"some_future_code", http.StatusInternalServerError},
	}
	for _, tc := range cases {
		if got := StatusForCode(tc.code); got != tc.status {
			t.Errorf("StatusForCode(%q) = %d, want %d", tc.code, got, tc.status)
		}
	}
}

// TestStreamRoundTrip encodes a full event sequence and decodes it
// back frame by frame.
func TestStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	body := []byte(`{"version":"v1","workload":"db","cycles":42}`)
	if err := WriteStreamJSON(&buf, EventQueued, StreamQueued{Version: Version, Workload: "db", Key: "k"}); err != nil {
		t.Fatal(err)
	}
	if err := WriteStreamJSON(&buf, EventProgress, StreamProgress{ElapsedMS: 12}); err != nil {
		t.Fatal(err)
	}
	if err := WriteStreamJSON(&buf, EventMeta, StreamMeta{Cache: "miss", Key: "k", Worker: "w1"}); err != nil {
		t.Fatal(err)
	}
	if err := WriteStreamEvent(&buf, EventResult, body); err != nil {
		t.Fatal(err)
	}

	d := NewStreamDecoder(&buf)
	wantEvents := []string{EventQueued, EventProgress, EventMeta, EventResult}
	var got []StreamEvent
	for {
		ev, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, ev)
	}
	if len(got) != len(wantEvents) {
		t.Fatalf("decoded %d events, want %d", len(got), len(wantEvents))
	}
	for i, ev := range got {
		if ev.Event != wantEvents[i] {
			t.Errorf("event %d = %q, want %q", i, ev.Event, wantEvents[i])
		}
	}
	if !bytes.Equal(got[3].Data, body) {
		t.Errorf("result data = %s, want %s", got[3].Data, body)
	}
	var q StreamQueued
	if err := json.Unmarshal(got[0].Data, &q); err != nil || q.Workload != "db" {
		t.Errorf("queued payload: %v %+v", err, q)
	}
}

// TestStreamRejectsNewlines: SSE data lines must be newline-free; the
// writer refuses rather than corrupting the frame.
func TestStreamRejectsNewlines(t *testing.T) {
	if err := WriteStreamEvent(io.Discard, EventResult, []byte("a\nb")); err == nil {
		t.Error("newline in data accepted")
	}
}

// TestStreamTruncated: a stream cut mid-frame surfaces
// io.ErrUnexpectedEOF, not a silent clean EOF.
func TestStreamTruncated(t *testing.T) {
	d := NewStreamDecoder(strings.NewReader("event: result\ndata: {}"))
	if _, err := d.Next(); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated frame: err = %v, want io.ErrUnexpectedEOF", err)
	}
}
