// Package obs is the unified observability layer: a zero-dependency
// counter registry plus a structured event trace shared by every layer
// of the simulated system (memory hierarchy, PEBS unit, perfmon
// module, monitor, GC, co-allocation policy, VM).
//
// The paper's premise is that cheap, always-on hardware monitoring can
// drive online decisions; debugging and comparing such a system needs
// an equally uniform view of what every layer did and when. Before
// this package each subsystem kept an ad-hoc Stats struct with its own
// snapshot call, no common timeline, and no export path. An Observer
// gives them one substrate:
//
//   - Counters: named monotonic uint64 counters, either owned
//     (Counter, updated by the producer) or sampled (RegisterSampled, a
//     closure over an existing stats field read only at snapshot time
//     so the producer's hot path is untouched).
//   - Trace: a fixed-size ring buffer of typed events (GC start/stop,
//     PEBS overflow interrupts, perfmon copy-outs, co-allocation
//     decisions, recompilations, cache-window snapshots), each stamped
//     with the simulated cycle it occurred at.
//   - Phases: named begin/end intervals aggregated into a per-phase
//     timeline (count + total simulated cycles), e.g. minor/major GC
//     and monitor polls.
//
// Overhead contract: the layer is strictly an outside observer of the
// simulated machine. No Observer method charges simulated cycles, so
// enabling it cannot perturb simulated cycle counts or experiment
// output. The disabled path in every producer is a nil pointer check
// (the same discipline as the cache event-listener gating), so with
// observability off the producers pay nothing.
//
// An Observer is safe for concurrent use: the parallel experiment
// engine gives every run its own Observer, but host-side consumers
// (progress callbacks, the bench engine) may snapshot while a run's
// producers emit.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is one owned, monotonically increasing counter. The zero
// Counter is unusable; obtain counters from Observer.Counter.
type Counter struct {
	name string
	v    atomic.Uint64
}

// Name returns the registered name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// entry is one registered counter: owned or sampled.
type entry struct {
	name    string
	owned   *Counter
	sampled func() uint64
}

// phaseTrack aggregates one named phase's begin/end intervals.
type phaseTrack struct {
	name   string
	count  uint64
	cycles uint64
	open   bool
	start  uint64
}

// DefaultTraceCapacity is the event-ring size used when New is given a
// non-positive capacity: 4096 events ≈ the largest traces the §6
// experiments produce, small enough to stay resident.
const DefaultTraceCapacity = 4096

// Observer is the shared observability hub. See the package comment
// for the model.
type Observer struct {
	mu      sync.Mutex
	byName  map[string]int
	entries []entry

	trace Trace

	phaseByName map[string]int
	phases      []*phaseTrack
}

// New returns an Observer whose trace ring holds capacity events
// (non-positive selects DefaultTraceCapacity).
func New(capacity int) *Observer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Observer{
		byName:      make(map[string]int),
		trace:       Trace{buf: make([]Event, capacity)},
		phaseByName: make(map[string]int),
	}
}

// Counter returns the owned counter registered under name, creating it
// on first use. Registering a name already claimed by a sampled
// counter panics: names are a flat namespace and a collision is a
// wiring bug.
func (o *Observer) Counter(name string) *Counter {
	o.mu.Lock()
	defer o.mu.Unlock()
	if i, ok := o.byName[name]; ok {
		if o.entries[i].owned == nil {
			panic(fmt.Sprintf("obs: counter %q already registered as sampled", name))
		}
		return o.entries[i].owned
	}
	c := &Counter{name: name}
	o.byName[name] = len(o.entries)
	o.entries = append(o.entries, entry{name: name, owned: c})
	return c
}

// RegisterSampled registers a counter whose value is read from fn only
// at snapshot time — the way producers export existing stats fields
// without adding a single instruction to their hot paths. fn must be
// safe to call whenever Snapshot is. Duplicate names panic.
func (o *Observer) RegisterSampled(name string, fn func() uint64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, ok := o.byName[name]; ok {
		panic(fmt.Sprintf("obs: duplicate counter %q", name))
	}
	o.byName[name] = len(o.entries)
	o.entries = append(o.entries, entry{name: name, sampled: fn})
}

// Emit appends one event to the trace ring, overwriting the oldest
// event when full (Dropped counts the overwrites). cycle is the
// simulated cycle counter at the time of the event.
func (o *Observer) Emit(kind EventKind, cycle, arg0, arg1, arg2 uint64) {
	o.mu.Lock()
	o.trace.emit(Event{Cycle: cycle, Kind: kind, Arg0: arg0, Arg1: arg1, Arg2: arg2})
	o.mu.Unlock()
}

// Events returns the traced events oldest-first.
func (o *Observer) Events() []Event {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.trace.events()
}

// TraceDump returns the trace contents plus its drop accounting, ready
// for export.
func (o *Observer) TraceDump() TraceDump {
	o.mu.Lock()
	defer o.mu.Unlock()
	return TraceDump{
		Events:   o.trace.events(),
		Capacity: len(o.trace.buf),
		Emitted:  o.trace.emitted,
		Dropped:  o.trace.dropped,
	}
}

// PhaseBegin opens the named phase at the given cycle. A begin while
// the phase is already open restarts it (the previous open interval is
// discarded) — producers are expected to pair begin/end.
func (o *Observer) PhaseBegin(name string, cycle uint64) {
	o.mu.Lock()
	p := o.phase(name)
	p.open = true
	p.start = cycle
	o.mu.Unlock()
}

// PhaseEnd closes the named phase at the given cycle, accumulating the
// interval into the phase's timeline. An end without a matching begin
// is ignored.
func (o *Observer) PhaseEnd(name string, cycle uint64) {
	o.mu.Lock()
	p := o.phase(name)
	if p.open {
		p.open = false
		p.count++
		if cycle > p.start {
			p.cycles += cycle - p.start
		}
	}
	o.mu.Unlock()
}

// phase returns the track for name, creating it; callers hold o.mu.
func (o *Observer) phase(name string) *phaseTrack {
	if i, ok := o.phaseByName[name]; ok {
		return o.phases[i]
	}
	p := &phaseTrack{name: name}
	o.phaseByName[name] = len(o.phases)
	o.phases = append(o.phases, p)
	return p
}

// CounterValue is one resolved counter in a snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// PhaseStat is one phase's aggregated timeline.
type PhaseStat struct {
	Name   string `json:"name"`
	Count  uint64 `json:"count"`
	Cycles uint64 `json:"cycles"`
}

// TraceStats summarizes the trace ring's accounting.
type TraceStats struct {
	Capacity int    `json:"capacity"`
	Emitted  uint64 `json:"emitted"`
	Dropped  uint64 `json:"dropped"`
}

// Metrics is a full counter/phase snapshot — the export unit of the
// registry. Counters and phases are sorted by name so snapshots are
// deterministic regardless of registration order.
type Metrics struct {
	Counters []CounterValue `json:"counters"`
	Phases   []PhaseStat    `json:"phases"`
	Trace    TraceStats     `json:"trace"`
}

// Metrics resolves every registered counter (owned values loaded,
// sampled closures invoked) and phase into a Metrics value. (The name
// Snapshot belongs to the snap.Checkpointable implementation in
// snapshot.go, which serializes the observer's state instead.)
func (o *Observer) Metrics() Metrics {
	o.mu.Lock()
	defer o.mu.Unlock()
	m := Metrics{
		Counters: make([]CounterValue, 0, len(o.entries)),
		Phases:   make([]PhaseStat, 0, len(o.phases)),
		Trace: TraceStats{
			Capacity: len(o.trace.buf),
			Emitted:  o.trace.emitted,
			Dropped:  o.trace.dropped,
		},
	}
	for _, e := range o.entries {
		v := CounterValue{Name: e.name}
		if e.owned != nil {
			v.Value = e.owned.Value()
		} else {
			v.Value = e.sampled()
		}
		m.Counters = append(m.Counters, v)
	}
	for _, p := range o.phases {
		m.Phases = append(m.Phases, PhaseStat{Name: p.name, Count: p.count, Cycles: p.cycles})
	}
	sort.Slice(m.Counters, func(i, j int) bool { return m.Counters[i].Name < m.Counters[j].Name })
	sort.Slice(m.Phases, func(i, j int) bool { return m.Phases[i].Name < m.Phases[j].Name })
	return m
}

// Get returns the current value of the named counter (owned or
// sampled) and whether it exists.
func (o *Observer) Get(name string) (uint64, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	i, ok := o.byName[name]
	if !ok {
		return 0, false
	}
	if e := o.entries[i]; e.owned != nil {
		return e.owned.Value(), true
	}
	return o.entries[i].sampled(), true
}
