package obs

import (
	"encoding/json"
	"fmt"
)

// EventKind identifies a traced event type. The taxonomy mirrors the
// paper's sample flow (§4.1): hardware overflow interrupts feed the
// kernel module, the monitor polls the module, and the decoded
// feedback drives GC-time co-allocation decisions — plus the GC and
// recompilation activity those decisions ride on.
type EventKind uint8

const (
	// EvGCStart marks the start of a collection. Arg0 is the
	// generation: 0 for a minor (nursery) GC, 1 for a major GC.
	EvGCStart EventKind = iota
	// EvGCEnd marks the end of a collection. Arg0 is the generation,
	// Arg1 the simulated cycles the collection consumed.
	EvGCEnd
	// EvPEBSInterrupt records a sample-buffer watermark interrupt.
	// Arg0 is the number of buffered samples at overflow, Arg1 the
	// unit's cumulative interrupt count.
	EvPEBSInterrupt
	// EvPerfmonRead records a user-space copy-out of kernel-buffered
	// samples. Arg0 is the number of samples copied, Arg1 the samples
	// still pending in the kernel buffer, Arg2 the cumulative samples
	// lost to kernel-buffer overflow.
	EvPerfmonRead
	// EvMonitorPoll records one collector-thread poll. Arg0 is the
	// number of samples read this poll, Arg1 the cumulative decoded
	// samples, Arg2 the cumulative dropped (unmapped-PC) samples.
	EvMonitorPoll
	// EvPhaseChange records a detected execution-phase change on a
	// field's miss-rate series. Arg0 is the field ID.
	EvPhaseChange
	// EvCoallocDecision records a co-allocation policy decision. Arg0
	// is the field ID, Arg1 the placement gap in bytes, Arg2 the
	// decision code (see DecisionActivate and friends).
	EvCoallocDecision
	// EvRecompile records a method recompilation. Arg0 is the method
	// ID, Arg1 the new optimization level.
	EvRecompile
	// EvCacheWindow records a cache measurement-window snapshot taken
	// when the window is closed (Hierarchy.ResetStats). Arg0 is the
	// window's demand accesses, Arg1 its L1 misses, Arg2 the memory
	// cycles charged in the window.
	EvCacheWindow
	// EvSnapshotTaken records a whole-system checkpoint, emitted into
	// the origin's trace after the state was captured (so the snapshot
	// itself never contains it and exact restores stay byte-identical
	// to uninterrupted runs). Arg0 is the snapshot cycle, Arg1 the
	// number of component states captured.
	EvSnapshotTaken
	// EvSnapshotRestored records a divergent (prefix) restore: the
	// snapshot's exact fingerprint did not match but its prefix
	// fingerprint did, and the system retargeted its own sampling
	// interval. Arg0 is the snapshot cycle, Arg1 the snapshot's
	// sampling interval, Arg2 the restored system's. Exact restores
	// emit nothing.
	EvSnapshotRestored
	// EvOptDecision records a decision applied by a managed online
	// optimization (internal/opt). Arg0 is the optimization's
	// registration index with the manager, Arg1 the decision target
	// (kind-specific: a layout epoch, a site ID), Arg2 the decision
	// code. The legacy co-allocation policy keeps emitting
	// EvCoallocDecision instead, so pre-framework traces are unchanged.
	EvOptDecision
	// EvOptRevert records a managed decision undone by the online
	// assessment (Figure-7-style bad-decision detection generalized to
	// any optimization kind). Arguments mirror EvOptDecision.
	EvOptRevert
	numEventKinds
)

// Decision codes carried in EvCoallocDecision's Arg2.
const (
	// DecisionActivate: a hot field entered active co-allocation.
	DecisionActivate uint64 = iota
	// DecisionRevertAB: the A/B assessment reverted a gapped placement.
	DecisionRevertAB
	// DecisionRevertRate: the rate fallback reverted a gapped placement.
	DecisionRevertRate
	// DecisionIntervene: the Figure 8 manual intervention forced a gap.
	DecisionIntervene
)

var kindNames = [numEventKinds]string{
	EvGCStart:          "gc_start",
	EvGCEnd:            "gc_end",
	EvPEBSInterrupt:    "pebs_interrupt",
	EvPerfmonRead:      "perfmon_read",
	EvMonitorPoll:      "monitor_poll",
	EvPhaseChange:      "phase_change",
	EvCoallocDecision:  "coalloc_decision",
	EvRecompile:        "recompile",
	EvCacheWindow:      "cache_window",
	EvSnapshotTaken:    "snapshot_taken",
	EvSnapshotRestored: "snapshot_restored",
	EvOptDecision:      "opt_decision",
	EvOptRevert:        "opt_revert",
}

// String returns the stable export name of the kind.
func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("event_kind_%d", uint8(k))
}

// KindFromString maps an export name back to its EventKind.
func KindFromString(s string) (EventKind, bool) {
	for k, name := range kindNames {
		if name == s {
			return EventKind(k), true
		}
	}
	return 0, false
}

// MarshalJSON encodes the kind as its stable name.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON decodes a kind name.
func (k *EventKind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	kind, ok := KindFromString(s)
	if !ok {
		return fmt.Errorf("obs: unknown event kind %q", s)
	}
	*k = kind
	return nil
}

// Event is one fixed-size trace record. The three argument words are
// interpreted per kind (see the EventKind constants).
type Event struct {
	Cycle uint64    `json:"cycle"`
	Kind  EventKind `json:"kind"`
	Arg0  uint64    `json:"arg0"`
	Arg1  uint64    `json:"arg1"`
	Arg2  uint64    `json:"arg2"`
}

// Trace is the fixed-size event ring. It is not safe for concurrent
// use on its own; the Observer serializes access.
type Trace struct {
	buf     []Event
	start   int // index of the oldest stored event
	n       int // number of stored events
	emitted uint64
	dropped uint64
}

// emit appends e, overwriting the oldest event when the ring is full.
func (t *Trace) emit(e Event) {
	t.emitted++
	if t.n < len(t.buf) {
		t.buf[(t.start+t.n)%len(t.buf)] = e
		t.n++
		return
	}
	t.buf[t.start] = e
	t.start = (t.start + 1) % len(t.buf)
	t.dropped++
}

// events returns the stored events oldest-first.
func (t *Trace) events() []Event {
	out := make([]Event, t.n)
	for i := 0; i < t.n; i++ {
		out[i] = t.buf[(t.start+i)%len(t.buf)]
	}
	return out
}
