package obs

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestCounterRegistry(t *testing.T) {
	o := New(8)
	c := o.Counter("gc.minor")
	c.Inc()
	c.Add(2)
	if got := c.Value(); got != 3 {
		t.Fatalf("counter value = %d, want 3", got)
	}
	// Same name returns the same counter.
	if o.Counter("gc.minor") != c {
		t.Fatal("Counter did not return the registered instance")
	}
	var backing uint64 = 41
	o.RegisterSampled("cache.accesses", func() uint64 { return backing })
	backing++
	if v, ok := o.Get("cache.accesses"); !ok || v != 42 {
		t.Fatalf("sampled counter = %d,%v want 42,true", v, ok)
	}
	if v, ok := o.Get("gc.minor"); !ok || v != 3 {
		t.Fatalf("owned counter via Get = %d,%v want 3,true", v, ok)
	}
	if _, ok := o.Get("nope"); ok {
		t.Fatal("Get of unregistered name reported ok")
	}
}

func TestRegistryCollisionPanics(t *testing.T) {
	o := New(8)
	o.RegisterSampled("x", func() uint64 { return 0 })
	mustPanic(t, "sampled dup", func() { o.RegisterSampled("x", func() uint64 { return 0 }) })
	mustPanic(t, "owned over sampled", func() { o.Counter("x") })
	o.Counter("y")
	mustPanic(t, "sampled over owned", func() { o.RegisterSampled("y", func() uint64 { return 0 }) })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestTraceRingWrap(t *testing.T) {
	o := New(4)
	for i := uint64(0); i < 7; i++ {
		o.Emit(EvGCStart, 100+i, i, 0, 0)
	}
	events := o.Events()
	if len(events) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(events))
	}
	// Oldest-first: events 3,4,5,6 survive.
	for i, e := range events {
		if want := uint64(i + 3); e.Arg0 != want || e.Cycle != 100+want {
			t.Errorf("event[%d] = {cycle %d, arg0 %d}, want {cycle %d, arg0 %d}",
				i, e.Cycle, e.Arg0, 100+want, want)
		}
	}
	d := o.TraceDump()
	if d.Emitted != 7 || d.Dropped != 3 || d.Capacity != 4 {
		t.Fatalf("dump accounting = emitted %d dropped %d cap %d, want 7/3/4",
			d.Emitted, d.Dropped, d.Capacity)
	}
}

func TestPhases(t *testing.T) {
	o := New(8)
	o.PhaseBegin("gc.minor", 100)
	o.PhaseEnd("gc.minor", 150)
	o.PhaseBegin("gc.minor", 200)
	o.PhaseEnd("gc.minor", 230)
	o.PhaseEnd("gc.major", 999) // end without begin: ignored
	m := o.Metrics()
	if len(m.Phases) != 2 {
		t.Fatalf("phase count = %d, want 2", len(m.Phases))
	}
	// Sorted by name: gc.major first.
	if p := m.Phases[0]; p.Name != "gc.major" || p.Count != 0 || p.Cycles != 0 {
		t.Errorf("gc.major = %+v, want zero count/cycles", p)
	}
	if p := m.Phases[1]; p.Name != "gc.minor" || p.Count != 2 || p.Cycles != 80 {
		t.Errorf("gc.minor = %+v, want count 2 cycles 80", p)
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	o := New(8)
	o.Counter("z.last")
	o.RegisterSampled("a.first", func() uint64 { return 1 })
	o.Counter("m.mid")
	m := o.Metrics()
	var names []string
	for _, c := range m.Counters {
		names = append(names, c.Name)
	}
	want := []string{"a.first", "m.mid", "z.last"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("counter order = %v, want %v", names, want)
	}
}

func TestMetricsJSONRoundTrip(t *testing.T) {
	o := New(4)
	o.Counter("vm.recompiles").Add(5)
	o.RegisterSampled("cache.l1_misses", func() uint64 { return 12345 })
	o.PhaseBegin("gc.minor", 10)
	o.PhaseEnd("gc.minor", 40)
	o.Emit(EvCacheWindow, 40, 1000, 12, 9999)
	want := o.Metrics()

	var buf bytes.Buffer
	if err := want.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseMetrics(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("metrics round trip drifted:\n got  %+v\n want %+v", got, want)
	}
}

func TestMetricsJSONSchema(t *testing.T) {
	o := New(4)
	o.Counter("gc.minor").Inc()
	o.PhaseBegin("gc.minor", 1)
	o.PhaseEnd("gc.minor", 2)
	var buf bytes.Buffer
	if err := o.Metrics().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// The field names are the export schema downstream tooling keys on.
	for _, key := range []string{
		`"counters"`, `"phases"`, `"trace"`,
		`"name"`, `"value"`, `"count"`, `"cycles"`,
		`"capacity"`, `"emitted"`, `"dropped"`,
	} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("metrics JSON missing schema key %s:\n%s", key, buf.String())
		}
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	o := New(8)
	o.Emit(EvGCStart, 100, 0, 0, 0)
	o.Emit(EvPEBSInterrupt, 200, 1536, 1, 0)
	o.Emit(EvCoallocDecision, 300, 7, 128, DecisionIntervene)
	want := o.TraceDump()

	var buf bytes.Buffer
	if err := want.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"kind": "pebs_interrupt"`) {
		t.Errorf("trace JSON does not use stable kind names:\n%s", buf.String())
	}
	got, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("trace round trip drifted:\n got  %+v\n want %+v", got, want)
	}
}

func TestTraceCSVRoundTrip(t *testing.T) {
	o := New(8)
	o.Emit(EvPerfmonRead, 1000, 64, 0, 2)
	o.Emit(EvRecompile, 2000, 17, 2, 0)
	d := o.TraceDump()

	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseTraceCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d.Events) {
		t.Fatalf("csv round trip drifted:\n got  %+v\n want %+v", got, d.Events)
	}
	if _, err := ParseTraceCSV(strings.NewReader("")); err == nil {
		t.Error("ParseTraceCSV accepted empty input")
	}
}

// TestSnapshotEventsExportRoundTrip pins the export contract of the
// snapshot lifecycle events: stable kind names on the wire and
// loss-free JSON and CSV round trips, so downstream tooling can key on
// when checkpoints were taken and restores retargeted.
func TestSnapshotEventsExportRoundTrip(t *testing.T) {
	o := New(8)
	o.Emit(EvSnapshotTaken, 1_500_000, 1_500_000, 12, 0)
	o.Emit(EvSnapshotRestored, 1_500_000, 1_500_000, 1000, 2000)
	want := o.TraceDump()

	var buf bytes.Buffer
	if err := want.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{`"kind": "snapshot_taken"`, `"kind": "snapshot_restored"`} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("trace JSON missing stable kind name %s:\n%s", name, buf.String())
		}
	}
	got, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("snapshot events JSON round trip drifted:\n got  %+v\n want %+v", got, want)
	}

	var csv bytes.Buffer
	if err := want.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	events, err := ParseTraceCSV(&csv)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(events, want.Events) {
		t.Fatalf("snapshot events CSV round trip drifted:\n got  %+v\n want %+v", events, want.Events)
	}
}

func TestKindNamesComplete(t *testing.T) {
	for k := EventKind(0); k < numEventKinds; k++ {
		name := k.String()
		if name == "" || strings.HasPrefix(name, "event_kind_") {
			t.Errorf("kind %d has no stable name", k)
		}
		back, ok := KindFromString(name)
		if !ok || back != k {
			t.Errorf("KindFromString(%q) = %v,%v want %v,true", name, back, ok, k)
		}
	}
}

// TestConcurrentUse exercises the Observer from several goroutines the
// way an instrumented run plus a host-side snapshot consumer would
// (run under -race via the Makefile race target).
func TestConcurrentUse(t *testing.T) {
	o := New(64)
	c := o.Counter("shared")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				o.Emit(EvMonitorPoll, uint64(i), uint64(g), 0, 0)
				if i%100 == 0 {
					o.Metrics()
					o.PhaseBegin("p", uint64(i))
					o.PhaseEnd("p", uint64(i+1))
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Value() != 4000 {
		t.Fatalf("counter = %d, want 4000", c.Value())
	}
	if d := o.TraceDump(); d.Emitted != 4000 || d.Dropped != 4000-64 {
		t.Fatalf("trace accounting = %d emitted %d dropped, want 4000/%d", d.Emitted, d.Dropped, 4000-64)
	}
}
