package obs

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// This file is the export/import surface of the observability layer:
// Metrics and TraceDump serialize to JSON (and the trace additionally
// to CSV for spreadsheet-side analysis), and parse back losslessly —
// the round trip is schema-tested so downstream tooling can rely on
// the field names.

// WriteJSON writes the metrics snapshot as indented JSON.
func (m Metrics) WriteJSON(w io.Writer) error {
	return writeJSON(w, m)
}

// ParseMetrics reads a Metrics snapshot written by WriteJSON.
func ParseMetrics(r io.Reader) (Metrics, error) {
	var m Metrics
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return Metrics{}, fmt.Errorf("obs: parse metrics: %w", err)
	}
	return m, nil
}

// TraceDump is the exportable form of the event trace.
type TraceDump struct {
	Events   []Event `json:"events"`
	Capacity int     `json:"capacity"`
	Emitted  uint64  `json:"emitted"`
	Dropped  uint64  `json:"dropped"`
}

// WriteJSON writes the trace as indented JSON.
func (d TraceDump) WriteJSON(w io.Writer) error {
	return writeJSON(w, d)
}

// ParseTrace reads a TraceDump written by WriteJSON.
func ParseTrace(r io.Reader) (TraceDump, error) {
	var d TraceDump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return TraceDump{}, fmt.Errorf("obs: parse trace: %w", err)
	}
	return d, nil
}

// traceCSVHeader is the column layout of the CSV trace export.
var traceCSVHeader = []string{"cycle", "kind", "arg0", "arg1", "arg2"}

// WriteCSV writes the trace as CSV with a header row; event kinds use
// their stable names.
func (d TraceDump) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(traceCSVHeader); err != nil {
		return err
	}
	for _, e := range d.Events {
		rec := []string{
			strconv.FormatUint(e.Cycle, 10),
			e.Kind.String(),
			strconv.FormatUint(e.Arg0, 10),
			strconv.FormatUint(e.Arg1, 10),
			strconv.FormatUint(e.Arg2, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ParseTraceCSV reads events written by WriteCSV.
func ParseTraceCSV(r io.Reader) ([]Event, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("obs: parse trace csv: %w", err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("obs: parse trace csv: missing header")
	}
	out := make([]Event, 0, len(recs)-1)
	for i, rec := range recs[1:] {
		if len(rec) != len(traceCSVHeader) {
			return nil, fmt.Errorf("obs: parse trace csv: row %d has %d columns, want %d", i+1, len(rec), len(traceCSVHeader))
		}
		kind, ok := KindFromString(rec[1])
		if !ok {
			return nil, fmt.Errorf("obs: parse trace csv: row %d: unknown kind %q", i+1, rec[1])
		}
		var e Event
		e.Kind = kind
		for j, dst := range []*uint64{&e.Cycle, &e.Arg0, &e.Arg1, &e.Arg2} {
			col := []int{0, 2, 3, 4}[j]
			v, err := strconv.ParseUint(rec[col], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("obs: parse trace csv: row %d col %s: %w", i+1, traceCSVHeader[col], err)
			}
			*dst = v
		}
		out = append(out, e)
	}
	return out, nil
}

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
